//===- examples/sampling_profiler.cpp - SP_EndSlice sampling --------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The paper's cited SP_EndSlice user is the Shadow Profiler [18]: profile
// only a prefix of each timeslice, then terminate the slice early to cap
// overhead. This example profiles basic-block execution with a per-slice
// sample budget and reports the hottest blocks, then compares the total
// runtime against full profiling.
//
//===----------------------------------------------------------------------===//

#include "pin/Runner.h"
#include "superpin/Engine.h"
#include "support/RawOstream.h"
#include "support/StringExtras.h"
#include "tools/Sampler.h"
#include "workloads/Spec2000.h"

#include <algorithm>
#include <cmath>
#include <vector>

using namespace spin;
using namespace spin::tools;

int main(int Argc, char **Argv) {
  const char *Name = Argc > 1 ? Argv[1] : "crafty";
  const workloads::WorkloadInfo &Info = workloads::findWorkload(Name);
  vm::Program Prog = workloads::buildWorkload(Info, /*Scale=*/0.25);
  os::CostModel Model;

  sp::SpOptions Opts;
  Opts.SliceMs = 100;
  Opts.Cpi = Info.Cpi;

  // Full profile: every block execution in every slice.
  auto Full = std::make_shared<SamplerResult>();
  sp::SpRunReport FullRep =
      sp::runSuperPin(Prog, makeSamplerTool(0, Full), Opts, Model);

  // Sampled: 2000 block executions per slice, then SP_EndSlice.
  auto Sampled = std::make_shared<SamplerResult>();
  sp::SpRunReport SampledRep =
      sp::runSuperPin(Prog, makeSamplerTool(2000, Sampled), Opts, Model);

  outs() << "full profile:    "
         << formatFixed(Model.ticksToSeconds(FullRep.WallTicks), 2) << "s, "
         << formatWithCommas(Full->SampledBlocks) << " block samples\n";
  outs() << "sampled profile: "
         << formatFixed(Model.ticksToSeconds(SampledRep.WallTicks), 2)
         << "s, " << formatWithCommas(Sampled->SampledBlocks)
         << " block samples, " << Sampled->SlicesEndedEarly
         << " slices ended early via SP_EndSlice\n\n";

  // Rank and compare the hottest blocks found by each profile.
  auto TopOf = [](const SamplerResult &R) {
    std::vector<std::pair<uint64_t, uint64_t>> Blocks(R.BlockCounts.begin(),
                                                      R.BlockCounts.end());
    std::sort(Blocks.begin(), Blocks.end(),
              [](const auto &A, const auto &B) {
                return A.second > B.second;
              });
    return Blocks;
  };
  auto FullTop = TopOf(*Full);
  auto SampledTop = TopOf(*Sampled);
  outs() << "hottest blocks (full vs sampled rank):\n";
  for (size_t I = 0; I != 5 && I < FullTop.size(); ++I) {
    outs() << "  ";
    outs().writeHex(FullTop[I].first);
    outs() << "  full=" << FullTop[I].second;
    for (size_t J = 0; J != SampledTop.size(); ++J)
      if (SampledTop[J].first == FullTop[I].first) {
        outs() << "  sampled-rank=" << (J + 1);
        break;
      }
    outs() << "\n";
  }
  outs().flush();
  return 0;
}
