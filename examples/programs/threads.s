; A two-thread demo for run_asm: the main thread and a worker each count
; in their own cell; main spin-joins (varying r8 per iteration — see
; docs/GUEST-MACHINE.md), then prints both totals as raw u64s and exits.

main:
  movi r10, 0
  movi r8, 0            ; spin-join counter (see join:)
  movi r0, 4            ; mmap_anon(65536) -> worker stack
  movi r1, 65536
  syscall
  addi r2, r0, 65536
  movi r1, worker
  movi r0, 11           ; thread_create(worker, stack_top)
  syscall
  movi r4, cella
  movi r5, 60000
mloop:
  incm [r4+0]
  addi r5, r5, -1
  bne r5, r10, mloop
  movi r6, flag
join:
  addi r8, r8, 1        ; varying spin counter
  ld64 r7, [r6+0]
  beq r7, r10, join
  movi r0, 1            ; write(1, cella, 16)
  movi r1, 1
  movi r2, cella
  movi r3, 16
  syscall
  movi r0, 0            ; exit(0)
  movi r1, 0
  syscall

worker:
  movi r10, 0           ; threads start with a fresh register file
  movi r4, cellb
  movi r5, 90000
wloop:
  incm [r4+0]
  addi r5, r5, -1
  bne r5, r10, wloop
  movi r7, 1
  movi r6, flag
  st64 [r6+0], r7
  movi r0, 12           ; thread_exit()
  syscall

.data
cella: .word64 0
cellb: .word64 0
flag:  .word64 0
