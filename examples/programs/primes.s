; Count primes below N by trial division, store the count, and exit.
; A compact hand-written guest program for run_asm; heavy enough to
; produce several SuperPin timeslices. (Primes below 10000: 1229.)
;
;   r1 = N (limit)     r2 = candidate    r3 = divisor
;   r4 = prime count   r5 = divisor^2    r7 = remainder

main:
  movi r1, 10000
  movi r2, 2
  movi r4, 0
  movi r10, 0            ; zero register

outer:
  bge r2, r1, done       ; while (candidate < N)
  movi r3, 2

check:
  mul r5, r3, r3
  blt r2, r5, isprime    ; divisor^2 > candidate: no factor exists
  remu r7, r2, r3
  beq r7, r10, notprime
  addi r3, r3, 1
  jmp check

isprime:
  addi r4, r4, 1

notprime:
  addi r2, r2, 1
  jmp outer

done:
  ; render the count as decimal ASCII (backwards into the buffer),
  ; newline-terminated, then write it
  movi r11, 10
  movi r5, outend
  addi r5, r5, -1
  st8 [r5+0], r11        ; '\n' == 10
digits:
  remu r7, r4, r11
  addi r7, r7, 48        ; '0' + digit
  addi r5, r5, -1
  st8 [r5+0], r7
  divu r4, r4, r11
  bne r4, r10, digits
  movi r3, outend        ; write(1, first_digit, outend - first_digit)
  sub r3, r3, r5
  mov r2, r5
  movi r0, 1
  movi r1, 1
  syscall
  movi r0, 0             ; exit(0)
  movi r1, 0
  syscall

.data
out: .space 24
outend:
