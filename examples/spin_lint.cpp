//===- examples/spin_lint.cpp - Static lint driver for guest programs -----===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Runs the src/analysis lint passes over guest programs and prints each
// diagnostic with the offending pc, its disassembly, and a few lines of
// surrounding context:
//
//   spin_lint prog.s [more.s ...]     lint assembly files
//   spin_lint -workload gzip          lint a generated SPEC2000 workload
//   spin_lint -context 3 prog.s      context lines around each finding
//   spin_lint -redux-report -workload gzip
//                                     print the loop forest and per-block
//                                     redundancy classification (-spredux)
//   spin_lint -redux-report -json ... same, as one spredux-report-v1 JSON
//                                     document (for CI diffing)
//
// Exit status is 1 when any file produced findings, 0 when all are clean.
// The redux report never fails the run: classification is advisory.
//
//===----------------------------------------------------------------------===//

#include "analysis/Passes.h"
#include "analysis/Redundancy.h"
#include "support/Json.h"
#include "support/RawOstream.h"
#include "support/StringExtras.h"
#include "vm/Assembler.h"
#include "vm/Disassembler.h"
#include "vm/Program.h"
#include "workloads/Spec2000.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace spin;

namespace {

std::string hexPc(uint64_t Pc) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "0x%06" PRIx64, Pc);
  return Buf;
}

/// Prints Context instructions around the finding, marking the offender.
void printContext(const vm::Program &Prog, const analysis::Finding &F,
                  uint64_t Context) {
  if (F.Issue.InstIndex == vm::ProgramIssueIndex || Prog.Text.empty())
    return;
  uint64_t Idx = F.Issue.InstIndex;
  if (Idx >= Prog.Text.size())
    return;
  uint64_t First = Idx > Context ? Idx - Context : 0;
  uint64_t Last = Idx + Context < Prog.Text.size() ? Idx + Context
                                                   : Prog.Text.size() - 1;
  for (uint64_t I = First; I <= Last; ++I) {
    outs() << (I == Idx ? "  >>> " : "      ");
    outs() << hexPc(vm::Program::addressOfIndex(I)) << "  "
           << vm::disassemble(Prog.Text[I]) << "\n";
  }
}

/// Lints one program; returns the number of findings.
size_t lintOne(const std::string &Label, const vm::Program &Prog,
               uint64_t Context) {
  analysis::ProgramAnalysis Static = analysis::analyzeProgram(Prog);
  std::vector<analysis::Finding> Findings = analysis::lintProgram(Static.G);
  for (const analysis::Finding &F : Findings) {
    outs() << Label << ": " << analysis::formatFinding(Prog, F) << "\n";
    printContext(Prog, F, Context);
  }
  if (Findings.empty())
    outs() << Label << ": clean (" << Prog.Text.size() << " instructions, "
           << Static.G.numBlocks() << " blocks, "
           << Static.SyscallSites.numSites() << " syscall sites, "
           << Static.SyscallSites.numClassified()
           << " statically classified)\n";
  return Findings.size();
}

/// Prints the human-readable redundancy report for one program.
void reduxReportText(const std::string &Label, const vm::Program &Prog,
                     const analysis::RedundancyInfo &RI) {
  const analysis::LoopForest &Forest = RI.forest();
  outs() << Label << ": redux report — " << RI.numBlocks() << " blocks, "
         << Forest.numLoops() << " loops, " << RI.numSuppressibleBlocks()
         << " suppressible blocks\n";
  for (uint32_t L = 0; L != Forest.numLoops(); ++L) {
    const analysis::Loop &Loop = Forest.loop(L);
    uint64_t HeaderPc = vm::Program::addressOfIndex(
        RI.cfg().block(Loop.Header).FirstIndex);
    outs() << "  loop " << L << ": header " << hexPc(HeaderPc) << ", depth "
           << Loop.Depth << ", " << Loop.Blocks.size() << " blocks, "
           << Loop.Latches.size() << " latches";
    if (Loop.SelfLoop)
      outs() << ", self-loop";
    if (Loop.HasCallOrSyscall)
      outs() << ", calls/syscalls";
    for (const analysis::Loop::InductionVar &IV : Loop.IVs)
      outs() << ", iv r" << unsigned(IV.Reg) << " step " << IV.Step;
    if (Loop.EstTrip)
      outs() << ", est-trip " << *Loop.EstTrip;
    outs() << "\n";
  }
  for (uint32_t B = 0; B != RI.numBlocks(); ++B) {
    const analysis::BlockReduxInfo &Info = RI.block(B);
    const analysis::BasicBlock &Block = RI.cfg().block(B);
    outs() << "  block " << B << " @ "
           << hexPc(vm::Program::addressOfIndex(Block.FirstIndex)) << " ("
           << Block.NumInsts << " insts): "
           << analysis::blockReduxName(Info.Kind);
    if (Info.LoopId != analysis::InvalidLoop)
      outs() << " [loop " << Info.LoopId << "]";
    outs() << " — " << Info.Why << "\n";
  }
}

/// Appends one program's redundancy report to the shared JSON document
/// (inside the top-level "programs" array).
void reduxReportJson(const std::string &Label, const vm::Program &Prog,
                     const analysis::RedundancyInfo &RI, JsonWriter &J) {
  const analysis::LoopForest &Forest = RI.forest();
  J.beginObject();
  J.field("name", std::string_view(Label));
  J.field("num_insts", static_cast<uint64_t>(Prog.Text.size()));
  J.field("num_blocks", RI.numBlocks());
  J.field("num_loops", Forest.numLoops());
  J.field("suppressible_blocks", RI.numSuppressibleBlocks());
  J.field("has_irreducible_regions", Forest.hasIrreducibleRegions());
  J.key("loops").beginArray();
  for (uint32_t L = 0; L != Forest.numLoops(); ++L) {
    const analysis::Loop &Loop = Forest.loop(L);
    J.beginObject();
    J.field("id", L);
    J.field("header_pc", vm::Program::addressOfIndex(
                             RI.cfg().block(Loop.Header).FirstIndex));
    J.field("depth", Loop.Depth);
    J.field("num_blocks", static_cast<uint64_t>(Loop.Blocks.size()));
    J.field("num_latches", static_cast<uint64_t>(Loop.Latches.size()));
    J.field("self_loop", Loop.SelfLoop);
    J.field("has_call_or_syscall", Loop.HasCallOrSyscall);
    J.key("ivs").beginArray();
    for (const analysis::Loop::InductionVar &IV : Loop.IVs) {
      J.beginObject();
      J.field("reg", static_cast<uint64_t>(IV.Reg));
      J.field("step", static_cast<int64_t>(IV.Step));
      J.endObject();
    }
    J.endArray();
    if (Loop.EstTrip)
      J.field("est_trip", *Loop.EstTrip);
    J.endObject();
  }
  J.endArray();
  J.key("blocks").beginArray();
  for (uint32_t B = 0; B != RI.numBlocks(); ++B) {
    const analysis::BlockReduxInfo &Info = RI.block(B);
    const analysis::BasicBlock &Block = RI.cfg().block(B);
    J.beginObject();
    J.field("id", B);
    J.field("pc", vm::Program::addressOfIndex(Block.FirstIndex));
    J.field("insts", Block.NumInsts);
    J.field("kind", analysis::blockReduxName(Info.Kind));
    if (Info.LoopId != analysis::InvalidLoop)
      J.field("loop", Info.LoopId);
    J.field("why", std::string_view(Info.Why));
    J.endObject();
  }
  J.endArray();
  J.endObject();
}

} // namespace

int main(int Argc, char **Argv) {
  uint64_t Context = 2;
  bool ReduxReport = false;
  bool Json = false;
  std::vector<std::string> Files;
  std::vector<std::string> Workloads;
  const char *Usage = "usage: spin_lint [-context N] [-workload NAME] "
                      "[-redux-report [-json]] [file.s ...]\n";
  for (int I = 1; I < Argc; ++I) {
    std::string_view A = Argv[I];
    if (A == "-context" && I + 1 < Argc) {
      if (auto V = parseUint(Argv[++I]))
        Context = *V;
    } else if (A == "-workload" && I + 1 < Argc) {
      Workloads.push_back(Argv[++I]);
    } else if (A == "-redux-report") {
      ReduxReport = true;
    } else if (A == "-json") {
      Json = true;
    } else if (!A.empty() && A[0] == '-') {
      errs() << Usage;
      return 1;
    } else {
      Files.emplace_back(A);
    }
  }
  if (Files.empty() && Workloads.empty()) {
    errs() << Usage;
    return 1;
  }
  if (Json && !ReduxReport) {
    errs() << "error: -json requires -redux-report\n" << Usage;
    return 1;
  }

  std::optional<JsonWriter> J;
  if (Json) {
    J.emplace(outs());
    J->beginObject();
    J->field("schema", std::string_view("spredux-report-v1"));
    J->key("programs").beginArray();
  }

  // Runs lint or the redux report on one assembled program.
  auto processOne = [&](const std::string &Label,
                        const vm::Program &Prog) -> size_t {
    if (!ReduxReport)
      return lintOne(Label, Prog, Context);
    analysis::Cfg G = analysis::buildCfg(Prog);
    analysis::RedundancyInfo RI(G);
    if (J)
      reduxReportJson(Label, Prog, RI, *J);
    else
      reduxReportText(Label, Prog, RI);
    return 0;
  };

  size_t TotalFindings = 0;
  for (const std::string &File : Files) {
    std::ifstream In(File);
    if (!In) {
      errs() << "error: cannot open '" << File << "'\n";
      return 1;
    }
    std::stringstream Buf;
    Buf << In.rdbuf();
    std::string Err;
    std::optional<vm::Program> Prog = vm::assemble(Buf.str(), File, Err);
    if (!Prog) {
      errs() << File << ": " << Err << "\n";
      return 1;
    }
    TotalFindings += processOne(File, *Prog);
  }
  for (const std::string &Name : Workloads) {
    const workloads::WorkloadInfo *Info = nullptr;
    for (const workloads::WorkloadInfo &W : workloads::spec2000Suite())
      if (W.Name == Name)
        Info = &W;
    if (!Info) {
      errs() << "error: unknown workload '" << Name << "' (see";
      for (const workloads::WorkloadInfo &W : workloads::spec2000Suite())
        errs() << " " << W.Name;
      errs() << ")\n";
      return 1;
    }
    vm::Program Prog = workloads::buildWorkload(*Info, 0.05);
    TotalFindings += processOne("workload:" + Name, Prog);
  }
  if (J) {
    J->endArray();
    J->endObject();
    J->complete();
    outs() << "\n";
  }
  outs().flush();
  return TotalFindings ? 1 : 0;
}
