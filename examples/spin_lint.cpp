//===- examples/spin_lint.cpp - Static lint driver for guest programs -----===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Runs the src/analysis lint passes over guest programs and prints each
// diagnostic with the offending pc, its disassembly, and a few lines of
// surrounding context:
//
//   spin_lint prog.s [more.s ...]     lint assembly files
//   spin_lint -workload gzip          lint a generated SPEC2000 workload
//   spin_lint -context 3 prog.s      context lines around each finding
//
// Exit status is 1 when any file produced findings, 0 when all are clean.
//
//===----------------------------------------------------------------------===//

#include "analysis/Passes.h"
#include "support/RawOstream.h"
#include "support/StringExtras.h"
#include "vm/Assembler.h"
#include "vm/Disassembler.h"
#include "vm/Program.h"
#include "workloads/Spec2000.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace spin;

namespace {

std::string hexPc(uint64_t Pc) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "0x%06" PRIx64, Pc);
  return Buf;
}

/// Prints Context instructions around the finding, marking the offender.
void printContext(const vm::Program &Prog, const analysis::Finding &F,
                  uint64_t Context) {
  if (F.Issue.InstIndex == vm::ProgramIssueIndex || Prog.Text.empty())
    return;
  uint64_t Idx = F.Issue.InstIndex;
  if (Idx >= Prog.Text.size())
    return;
  uint64_t First = Idx > Context ? Idx - Context : 0;
  uint64_t Last = Idx + Context < Prog.Text.size() ? Idx + Context
                                                   : Prog.Text.size() - 1;
  for (uint64_t I = First; I <= Last; ++I) {
    outs() << (I == Idx ? "  >>> " : "      ");
    outs() << hexPc(vm::Program::addressOfIndex(I)) << "  "
           << vm::disassemble(Prog.Text[I]) << "\n";
  }
}

/// Lints one program; returns the number of findings.
size_t lintOne(const std::string &Label, const vm::Program &Prog,
               uint64_t Context) {
  analysis::ProgramAnalysis Static = analysis::analyzeProgram(Prog);
  std::vector<analysis::Finding> Findings = analysis::lintProgram(Static.G);
  for (const analysis::Finding &F : Findings) {
    outs() << Label << ": " << analysis::formatFinding(Prog, F) << "\n";
    printContext(Prog, F, Context);
  }
  if (Findings.empty())
    outs() << Label << ": clean (" << Prog.Text.size() << " instructions, "
           << Static.G.numBlocks() << " blocks, "
           << Static.SyscallSites.numSites() << " syscall sites, "
           << Static.SyscallSites.numClassified()
           << " statically classified)\n";
  return Findings.size();
}

} // namespace

int main(int Argc, char **Argv) {
  uint64_t Context = 2;
  std::vector<std::string> Files;
  std::vector<std::string> Workloads;
  for (int I = 1; I < Argc; ++I) {
    std::string_view A = Argv[I];
    if (A == "-context" && I + 1 < Argc) {
      if (auto V = parseUint(Argv[++I]))
        Context = *V;
    } else if (A == "-workload" && I + 1 < Argc) {
      Workloads.push_back(Argv[++I]);
    } else if (!A.empty() && A[0] == '-') {
      errs() << "usage: spin_lint [-context N] [-workload NAME] [file.s ...]\n";
      return 1;
    } else {
      Files.emplace_back(A);
    }
  }
  if (Files.empty() && Workloads.empty()) {
    errs() << "usage: spin_lint [-context N] [-workload NAME] [file.s ...]\n";
    return 1;
  }

  size_t TotalFindings = 0;
  for (const std::string &File : Files) {
    std::ifstream In(File);
    if (!In) {
      errs() << "error: cannot open '" << File << "'\n";
      return 1;
    }
    std::stringstream Buf;
    Buf << In.rdbuf();
    std::string Err;
    std::optional<vm::Program> Prog = vm::assemble(Buf.str(), File, Err);
    if (!Prog) {
      errs() << File << ": " << Err << "\n";
      return 1;
    }
    TotalFindings += lintOne(File, *Prog, Context);
  }
  for (const std::string &Name : Workloads) {
    const workloads::WorkloadInfo *Info = nullptr;
    for (const workloads::WorkloadInfo &W : workloads::spec2000Suite())
      if (W.Name == Name)
        Info = &W;
    if (!Info) {
      errs() << "error: unknown workload '" << Name << "' (see";
      for (const workloads::WorkloadInfo &W : workloads::spec2000Suite())
        errs() << " " << W.Name;
      errs() << ")\n";
      return 1;
    }
    vm::Program Prog = workloads::buildWorkload(*Info, 0.05);
    TotalFindings += lintOne("workload:" + Name, Prog, Context);
  }
  outs().flush();
  return TotalFindings ? 1 : 0;
}
