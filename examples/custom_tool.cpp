//===- examples/custom_tool.cpp - Writing a SuperPin tool (Figure 2) ------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// A line-by-line analogue of the paper's Figure 2 ("SuperPin version of
// icount2") using the function-registration API, extended with a second
// auto-merged shared area counting memory references. Shows everything the
// paper's Section 5 API provides:
//
//   SP_Init                   -> slice-local reset (ToolReset)
//   SP_CreateSharedArea       -> manual (None) and automatic (Add64) merge
//   SP_AddSliceEndFunction    -> the manual Merge callback
//   TRACE_AddInstrumentFunction / PIN_AddFiniFunction
//
// The same tool runs unchanged under serial Pin (SP_Init returns false and
// the shared pointer degrades to the local counter).
//
//===----------------------------------------------------------------------===//

#include "pin/Runner.h"
#include "superpin/Engine.h"
#include "superpin/SpApi.h"
#include "support/RawOstream.h"
#include "workloads/Spec2000.h"

#include <cmath>
#include <memory>

using namespace spin;
using namespace spin::pin;

/// Builds the Figure 2 tool. Each slice gets its own instance, so the
/// "globals" live in a per-instance State captured by the callbacks.
static ToolFactory makeFigure2Tool() {
  return sp::makeFunctionTool("icount2-fig2", [](sp::SpToolContext &Ctx) {
    struct State {
      uint64_t Icount = 0;         // slice-local counter
      uint64_t *SharedData;        // -> shared total (or &Icount serially)
      uint64_t MemRefs[1] = {0};   // auto-merged area
      uint64_t *MemShared;
    };
    auto St = std::make_shared<State>();

    // BEGIN SuperPin (paper Figure 2).
    bool UsingSp = Ctx.SP_Init([St](uint32_t) { St->Icount = 0; });
    (void)UsingSp;
    St->SharedData = static_cast<uint64_t *>(Ctx.SP_CreateSharedArea(
        &St->Icount, sizeof(St->Icount), AutoMerge::None));
    Ctx.SP_AddSliceEndFunction(
        [St](uint32_t) { *St->SharedData += St->Icount; }); // Merge
    // Extension: an automatically merged area needs no Merge function.
    St->MemShared = static_cast<uint64_t *>(Ctx.SP_CreateSharedArea(
        St->MemRefs, sizeof(St->MemRefs), AutoMerge::Add64));
    // END SuperPin.

    Ctx.TRACE_AddInstrumentFunction([St](Trace &T) {
      for (uint32_t B = 0; B != T.numBbls(); ++B) {
        Bbl Block = T.bblAt(B);
        Block.insHead().insertCall(
            [St](const uint64_t *A) { St->Icount += A[0]; },
            {Arg::imm(Block.numIns())});
      }
      for (uint32_t I = 0; I != T.numIns(); ++I)
        if (T.insAt(I).isMemoryRead() || T.insAt(I).isMemoryWrite())
          T.insAt(I).insertCall(
              [St](const uint64_t *) { ++St->MemShared[0]; }, {});
    });

    Ctx.PIN_AddFiniFunction([St](RawOstream &OS) {
      OS << "Total Count: " << *St->SharedData << "\n";
      OS << "Memory Refs: " << St->MemShared[0] << "\n";
    });
  });
}

int main(int Argc, char **Argv) {
  const char *Name = Argc > 1 ? Argv[1] : "twolf";
  const workloads::WorkloadInfo &Info = workloads::findWorkload(Name);
  vm::Program Prog = workloads::buildWorkload(Info, /*Scale=*/0.2);
  os::CostModel Model;
  os::Ticks InstCost = static_cast<os::Ticks>(
      std::llround(Info.Cpi * double(Model.TicksPerInst)));

  outs() << "--- serial Pin ---\n";
  pin::RunReport Serial =
      pin::runSerialPin(Prog, Model, InstCost, makeFigure2Tool());
  outs() << Serial.FiniOutput;

  outs() << "--- SuperPin ---\n";
  sp::SpOptions Opts;
  Opts.SliceMs = 100;
  Opts.Cpi = Info.Cpi;
  sp::SpRunReport Sp = sp::runSuperPin(Prog, makeFigure2Tool(), Opts, Model);
  outs() << Sp.FiniOutput;
  outs() << "(" << Sp.NumSlices << " slices; outputs must agree)\n";
  outs().flush();
  return 0;
}
