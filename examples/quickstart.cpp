//===- examples/quickstart.cpp - SuperPin in five minutes -----------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The smallest complete use of the library: build a guest workload, run it
// three ways — natively, under serial Pin, and under SuperPin — with the
// icount2 Pintool, and compare counts and virtual wall-clock time.
//
//   $ quickstart [workload-name]          (default: gcc)
//
//===----------------------------------------------------------------------===//

#include "pin/Runner.h"
#include "superpin/Engine.h"
#include "support/RawOstream.h"
#include "support/StringExtras.h"
#include "tools/Icount.h"
#include "workloads/Spec2000.h"

#include <cmath>

using namespace spin;

int main(int Argc, char **Argv) {
  const char *Name = Argc > 1 ? Argv[1] : "gcc";
  const workloads::WorkloadInfo &Info = workloads::findWorkload(Name);
  vm::Program Prog = workloads::buildWorkload(Info, /*Scale=*/0.3);

  os::CostModel Model;
  os::Ticks InstCost = static_cast<os::Ticks>(
      std::llround(Info.Cpi * double(Model.TicksPerInst)));

  // 1. Native: the baseline every figure normalizes against.
  pin::RunReport Native = pin::runNative(Prog, Model, InstCost);
  outs() << "native:    " << formatFixed(Model.ticksToSeconds(Native.WallTicks), 2)
         << "s  (" << formatWithCommas(Native.Insts) << " instructions)\n";

  // 2. Serial Pin: the whole program runs instrumented.
  auto PinCount = std::make_shared<tools::IcountResult>();
  pin::RunReport Serial = pin::runSerialPin(
      Prog, Model, InstCost,
      tools::makeIcountTool(tools::IcountGranularity::BasicBlock, PinCount));
  outs() << "pin:       " << formatFixed(Model.ticksToSeconds(Serial.WallTicks), 2)
         << "s  icount=" << formatWithCommas(PinCount->Total) << "\n";

  // 3. SuperPin: uninstrumented master + parallel instrumented slices.
  sp::SpOptions Opts;
  Opts.SliceMs = 100;
  Opts.Cpi = Info.Cpi;
  auto SpCount = std::make_shared<tools::IcountResult>();
  sp::SpRunReport Sp = sp::runSuperPin(
      Prog,
      tools::makeIcountTool(tools::IcountGranularity::BasicBlock, SpCount),
      Opts, Model);
  outs() << "superpin:  " << formatFixed(Model.ticksToSeconds(Sp.WallTicks), 2)
         << "s  icount=" << formatWithCommas(SpCount->Total) << "  ("
         << Sp.NumSlices << " slices, "
         << Sp.TimeoutSlices << " by timeout, pipeline "
         << formatFixed(Model.ticksToSeconds(Sp.PipelineTicks), 2) << "s)\n\n";

  outs() << "pin slowdown:      "
         << formatFixed(double(Serial.WallTicks) / Native.WallTicks, 2)
         << "x\n";
  outs() << "superpin slowdown: "
         << formatFixed(double(Sp.WallTicks) / Native.WallTicks, 2) << "x\n";
  outs() << "counts match:      "
         << (PinCount->Total == SpCount->Total &&
                     PinCount->Total == Native.Insts
                 ? "yes"
                 : "NO")
         << "\n";
  outs().flush();
  return 0;
}
