//===- examples/cache_study.cpp - Data-cache simulation study -------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The paper's Section 5.2 use case: a data-cache simulator made
// SuperPin-compatible with assume-then-reconcile merging. Sweeps cache
// sizes over the pointer-chasing mcf workload and shows (a) SuperPin's
// hit/miss totals equal a serial simulation exactly for direct-mapped
// caches, and (b) the wall-clock advantage of simulating in parallel.
//
//===----------------------------------------------------------------------===//

#include "pin/Runner.h"
#include "superpin/Engine.h"
#include "support/RawOstream.h"
#include "support/StringExtras.h"
#include "support/Table.h"
#include "tools/DCache.h"
#include "workloads/Spec2000.h"

#include <cmath>

using namespace spin;
using namespace spin::tools;

int main(int Argc, char **Argv) {
  const char *Name = Argc > 1 ? Argv[1] : "mcf";
  const workloads::WorkloadInfo &Info = workloads::findWorkload(Name);
  vm::Program Prog = workloads::buildWorkload(Info, /*Scale=*/0.15);
  os::CostModel Model;
  os::Ticks InstCost = static_cast<os::Ticks>(
      std::llround(Info.Cpi * double(Model.TicksPerInst)));

  outs() << "Direct-mapped data-cache study on " << Name << "\n\n";
  Table T;
  T.addColumn("Cache", Table::Align::Left);
  T.addColumn("Accesses");
  T.addColumn("MissRate");
  T.addColumn("Reconciled");
  T.addColumn("Exact", Table::Align::Left);
  T.addColumn("Pin(s)");
  T.addColumn("SuperPin(s)");

  for (uint32_t SizeKiB : {16, 64, 256, 1024}) {
    DCacheConfig Config;
    Config.LineBytes = 64;
    Config.NumSets = SizeKiB * 1024 / 64;
    Config.Assoc = 1;

    auto SerialResult = std::make_shared<DCacheResult>();
    pin::RunReport Serial = pin::runSerialPin(
        Prog, Model, InstCost, makeDCacheTool(Config, SerialResult));

    sp::SpOptions Opts;
    Opts.SliceMs = 100;
    Opts.Cpi = Info.Cpi;
    auto SpResult = std::make_shared<DCacheResult>();
    sp::SpRunReport Sp = sp::runSuperPin(
        Prog, makeDCacheTool(Config, SpResult), Opts, Model);

    bool Exact = SerialResult->Hits == SpResult->Hits &&
                 SerialResult->Misses == SpResult->Misses &&
                 SerialResult->Accesses == SpResult->Accesses;
    T.startRow();
    T.cell(std::to_string(SizeKiB) + "KiB");
    T.cell(SpResult->Accesses);
    T.cellPercent(double(SpResult->Misses) /
                      double(SpResult->Accesses ? SpResult->Accesses : 1),
                  2);
    T.cell(SpResult->ReconciledAssumptions);
    T.cell(Exact ? "yes" : "NO");
    T.cell(Model.ticksToSeconds(Serial.WallTicks), 2);
    T.cell(Model.ticksToSeconds(Sp.WallTicks), 2);
  }
  T.print(outs());
  outs() << "\n'Reconciled' counts assumed hits corrected to misses at "
            "merge time (paper Section 5.2).\n";
  outs().flush();
  return 0;
}
