//===- examples/spin_record.cpp - Capture a SuperPin run to disk ----------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Runs a workload under SuperPin with the persistent capture sink attached
// and writes the resulting log (plus its JSON sidecar index):
//
//   spin_record -workload gcc -tool icount2 -sprecord gcc.sprl
//   spin_replay -log gcc.sprl            # re-execute it (spin_replay.cpp)
//
// -spdefer additionally enables deferred-slice mode: when all -spslices
// workers are busy the master spills the just-closed window to the log
// instead of stalling, and the spilled slices drain after it exits.
//
//===----------------------------------------------------------------------===//

#include "replay/CaptureWriter.h"
#include "superpin/Engine.h"
#include "superpin/Reporting.h"
#include "support/CommandLine.h"
#include "support/RawOstream.h"
#include "support/StringExtras.h"
#include "tools/Icount.h"
#include "tools/MemTrace.h"
#include "tools/OpcodeMix.h"
#include "workloads/Spec2000.h"

#include <cstdlib>

using namespace spin;
using namespace spin::tools;

static pin::ToolFactory makeTool(const std::string &Name) {
  if (Name == "icount1")
    return makeIcountTool(IcountGranularity::Instruction);
  if (Name == "icount2")
    return makeIcountTool(IcountGranularity::BasicBlock);
  if (Name == "opcodemix")
    return makeOpcodeMixTool();
  if (Name == "memtrace")
    return makeMemTraceTool(std::make_shared<MemTraceResult>());
  errs() << "unknown tool '" << Name
         << "' (try icount1, icount2, opcodemix, memtrace)\n";
  std::exit(1);
}

int main(int Argc, char **Argv) {
  OptionRegistry Registry;
  Opt<std::string> LogPath(Registry, "sprecord", "run.sprl",
                           "capture log output path");
  Opt<std::string> ToolName(Registry, "tool", "icount2", "Pintool to run");
  Opt<std::string> Workload(Registry, "workload", "gcc",
                            "SPEC2000 workload name");
  Opt<double> Scale(Registry, "scale", 0.3, "workload duration scale");
  Opt<uint64_t> SpMsec(Registry, "spmsec", 100, "timeslice milliseconds");
  Opt<uint64_t> SpSlices(Registry, "spslices", 8, "max running slices");
  Opt<uint64_t> SpSysrecs(Registry, "spsysrecs", 1000,
                          "max syscall records per slice (0 disables)");
  Opt<bool> SpDefer(Registry, "spdefer", false,
                    "spill slices instead of stalling at -spslices");
  Opt<bool> Report(Registry, "report", false, "print the full run report");
  Opt<bool> Help(Registry, "help", false, "print options");

  std::string Err;
  if (!Registry.parse(Argc, Argv, Err)) {
    errs() << "error: " << Err << "\n";
    return 1;
  }
  if (Help) {
    Registry.printHelp(outs());
    return 0;
  }

  const workloads::WorkloadInfo &Info = workloads::findWorkload(Workload);
  vm::Program Prog = workloads::buildWorkload(Info, Scale);
  os::CostModel Model;

  replay::CaptureWriter Writer;
  sp::SpOptions Opts;
  Opts.SliceMs = SpMsec;
  Opts.MaxSlices = static_cast<uint32_t>(uint64_t(SpSlices));
  Opts.MaxSysRecs = SpSysrecs;
  Opts.Cpi = Info.Cpi;
  Opts.Capture = &Writer;
  Opts.DeferSlices = SpDefer;
  if (std::string Bad = Opts.validate(); !Bad.empty()) {
    errs() << "error: " << Bad << "\n";
    return 1;
  }

  sp::SpRunReport Rep = sp::runSuperPin(Prog, makeTool(ToolName), Opts, Model);
  outs() << Rep.FiniOutput;
  if (!Writer.save(LogPath, &Err)) {
    errs() << "error: " << Err << "\n";
    return 1;
  }
  outs() << "captured " << Rep.NumSlices << " slices ("
         << formatWithCommas(Rep.SliceInsts) << " instructions, partition "
         << (Rep.PartitionOk ? "exact" : "BROKEN") << ") to " << LogPath
         << "\n";
  if (SpDefer)
    outs() << "deferred: " << Rep.SpilledSlices << " spilled, "
           << Rep.DrainedSlices << " drained, " << Rep.ReplayParityOk
           << " parity ok\n";
  if (Report) {
    outs() << "\n";
    sp::printReport(Rep, Model, outs());
  }
  outs().flush();
  return Rep.PartitionOk ? 0 : 1;
}
