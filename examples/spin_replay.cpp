//===- examples/spin_replay.cpp - Re-execute a captured run ---------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Loads a capture log written by spin_record and re-executes slices from
// it — with the same tool or a different one:
//
//   spin_replay -log gcc.sprl                      # all slices, icount2
//   spin_replay -log gcc.sprl -tool memtrace       # different tool
//   spin_replay -log gcc.sprl -slices 0,3,7        # subset
//   spin_replay -log gcc.sprl -list                # show the slice index
//
// Exits non-zero if any replayed slice diverges from the capture or fails
// icount/end-kind parity.
//
//===----------------------------------------------------------------------===//

#include "host/WorkerPool.h"
#include "obs/Doctor.h"
#include "obs/HostTraceRecorder.h"
#include "obs/TraceRecorder.h"
#include "prof/Profile.h"
#include "replay/ReplayEngine.h"
#include "superpin/SpOptions.h"
#include "support/CommandLine.h"
#include "support/RawOstream.h"
#include "support/StringExtras.h"
#include "tools/Icount.h"
#include "tools/MemTrace.h"
#include "tools/OpcodeMix.h"

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

using namespace spin;
using namespace spin::tools;

static pin::ToolFactory makeTool(const std::string &Name) {
  if (Name == "icount1")
    return makeIcountTool(IcountGranularity::Instruction);
  if (Name == "icount2")
    return makeIcountTool(IcountGranularity::BasicBlock);
  if (Name == "opcodemix")
    return makeOpcodeMixTool();
  if (Name == "memtrace")
    return makeMemTraceTool(std::make_shared<MemTraceResult>());
  errs() << "unknown tool '" << Name
         << "' (try icount1, icount2, opcodemix, memtrace)\n";
  std::exit(1);
}

/// Writes \p Emit's output to \p Path; exits with an error if the file
/// cannot be opened.
template <typename Fn>
static void writeFile(const std::string &Path, Fn Emit) {
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F) {
    errs() << "error: cannot open '" << Path << "' for writing\n";
    std::exit(1);
  }
  {
    RawFdOstream OS(F);
    Emit(OS);
    OS.flush();
  }
  std::fclose(F);
}

/// Parses "0,3,7" into slice numbers; exits on malformed input.
static std::vector<uint32_t> parseSliceList(const std::string &Spec) {
  std::vector<uint32_t> Nums;
  size_t Pos = 0;
  while (Pos < Spec.size()) {
    size_t Comma = Spec.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = Spec.size();
    std::string Item = Spec.substr(Pos, Comma - Pos);
    char *End = nullptr;
    unsigned long V = std::strtoul(Item.c_str(), &End, 10);
    if (Item.empty() || *End != '\0') {
      errs() << "error: bad slice list item '" << Item << "'\n";
      std::exit(1);
    }
    Nums.push_back(static_cast<uint32_t>(V));
    Pos = Comma + 1;
  }
  return Nums;
}

int main(int Argc, char **Argv) {
  OptionRegistry Registry;
  Opt<std::string> LogPath(Registry, "log", "run.sprl", "capture log to load");
  Opt<std::string> ToolName(Registry, "tool", "icount2", "Pintool to replay");
  Opt<std::string> Slices(Registry, "slices", "",
                          "comma-separated slice numbers (empty = all)");
  Opt<bool> List(Registry, "list", false, "list captured slices and exit");
  Opt<bool> SkipCorrupt(
      Registry, "skip-corrupt", false,
      "recover intact slices from a damaged log via the sidecar index");
  Opt<std::string> SpMp(Registry, "spmp", "0",
                        "host worker threads for slice re-execution (0 = run "
                        "on this thread; \"auto\" = host core count; parity "
                        "and fini output are identical for every value)");
  Opt<std::string> TracePath(Registry, "sptrace", "",
                             "write a Chrome-trace JSON of replay's virtual "
                             "timeline (byte-identical for every -spmp "
                             "value)");
  Opt<std::string> HostTracePath(
      Registry, "sphosttrace", "",
      "write a dual-axis Chrome-trace JSON with per-worker wall-clock "
      "tracks (requires -spmp)");
  Opt<bool> HostStats(Registry, "sphoststats", false,
                      "print the per-worker wall-time attribution table "
                      "(requires -spmp)");
  Opt<uint64_t> SpHostWatchdog(
      Registry, "sphostwatchdog", 0,
      "wall-clock ms before a silent -spmp worker is declared dead and its "
      "slice re-executes on this thread (0 = wait forever)");
  Opt<bool> SpProf(Registry, "spprof", false,
                   "attribute replay virtual time to overhead causes");
  Opt<std::string> SpProfOut(Registry, "spprof-out", "spprof.json",
                             "spprof-v1 output path (folded stacks go to "
                             "<path>.folded)");
  Opt<uint64_t> SpProfTopN(Registry, "spprof-topn", 20,
                           "hot blocks to keep in the spprof-v1 export");
  Opt<bool> SpDoctor(Registry, "spdoctor", false,
                     "print the spin_doctor diagnosis of the replay (serial "
                     "prepare/body chain, what host workers would buy)");
  Opt<std::string> SpDoctorOut(Registry, "spdoctor-out", "",
                               "write the spdoctor-v1 JSON diagnosis here");
  Opt<bool> Help(Registry, "help", false, "print options");

  std::string Err;
  if (!Registry.parse(Argc, Argv, Err)) {
    errs() << "error: " << Err << "\n";
    return 1;
  }
  if (Help) {
    Registry.printHelp(outs());
    return 0;
  }

  // -spmp parses exactly as in superpin_run; validation rides the same
  // SpOptions::validate() rules (worker-count cap).
  uint32_t HostWorkers = 0;
  if (SpMp.value() == "auto") {
    HostWorkers = sp::SpOptions::HostWorkersAuto;
  } else {
    char *End = nullptr;
    errno = 0;
    unsigned long long N = std::strtoull(SpMp.value().c_str(), &End, 10);
    if (End == SpMp.value().c_str() || *End != '\0') {
      errs() << "error: -spmp expects a worker count or \"auto\", got '"
             << SpMp.value() << "'\n";
      return 1;
    }
    // Reject rather than truncate: 4294967297 must not silently become 1.
    if (errno == ERANGE || N >= sp::SpOptions::HostWorkersAuto) {
      errs() << "error: -spmp " << SpMp.value()
             << " overflows the worker count\n";
      return 1;
    }
    HostWorkers = static_cast<uint32_t>(N);
  }
  {
    sp::SpOptions MpOpts;
    MpOpts.HostWorkers = HostWorkers;
    if (std::string Bad = MpOpts.validate(); !Bad.empty()) {
      errs() << "error: " << Bad << "\n";
      return 1;
    }
  }
  if (HostWorkers == sp::SpOptions::HostWorkersAuto)
    HostWorkers = host::WorkerPool::clampWorkers(HostWorkers);
  if ((!HostTracePath.value().empty() || HostStats) && HostWorkers == 0) {
    errs() << "error: -sphosttrace/-sphoststats require -spmp (there is no "
              "worker pool to observe on the serial path)\n";
    return 1;
  }
  replay::LogDiagnosis Diag;
  std::vector<uint32_t> Skipped;
  std::optional<replay::RunCapture> Cap =
      replay::loadCaptureLenient(LogPath, SkipCorrupt, &Diag, &Skipped);
  if (!Diag.ok()) {
    // Structured diagnostic: what broke, where, and the evidence.
    errs() << "error: " << Diag.Reason << "\n";
    errs() << "  file: " << LogPath << " (" << Diag.FileSize << " bytes)\n";
    errs() << "  offset: " << Diag.Offset;
    if (Diag.RecordIndex != ~uint64_t(0))
      errs() << ", slice record " << Diag.RecordIndex;
    errs() << "\n";
    if (Diag.ChecksumMismatch)
      errs() << "  checksum: expected " << Diag.ExpectedChecksum
             << ", actual " << Diag.ActualChecksum << "\n";
    if (Diag.Truncated)
      errs() << "  file ends before the format says it should\n";
    if (!Cap) {
      if (!SkipCorrupt && Diag.RecordIndex != ~uint64_t(0))
        errs() << "  hint: -skip-corrupt 1 recovers the intact slices\n";
      return 1;
    }
    errs() << "  recovered " << Cap->Slices.size() << " slices, skipped "
           << Skipped.size() << "\n";
  }
  if (!Cap) {
    errs() << "error: could not load '" << LogPath << "'\n";
    return 1;
  }

  // Sanity-check the embedded capture-time configuration the same way the
  // capturing CLIs do; a log that decodes but carries nonsense options
  // would replay garbage.
  sp::SpOptions CapOpts;
  CapOpts.SliceMs = Cap->SliceMs;
  CapOpts.MaxSlices = Cap->MaxSlices;
  CapOpts.MaxSysRecs = Cap->MaxSysRecs;
  CapOpts.Cpi = Cap->Cpi;
  if (std::string Bad = CapOpts.validate(); !Bad.empty()) {
    errs() << "error: capture log carries an invalid configuration: " << Bad
           << "\n";
    return 1;
  }

  if (List) {
    outs() << "program " << Cap->Prog.Name << ": " << Cap->Slices.size()
           << " slices, " << formatWithCommas(Cap->MasterInsts)
           << " master instructions, exit code " << Cap->ExitCode << "\n";
    for (const sp::SliceCaptureData &S : Cap->Slices)
      outs() << "  slice " << S.Num << ": start " << S.StartIndex << ", "
             << S.ExpectedInsts << " insts, " << S.Sys.size() << " syscalls, "
             << replay::endKindName(S.EndKind)
             << (S.Spilled ? ", spilled" : "") << "\n";
    outs().flush();
    return 0;
  }

  // Slices past the first corrupt record cannot be replayed even when
  // their own records survived: the master state is only reconstructible
  // through a contiguous window chain, and the gap's syscall effects are
  // gone with its record. Keep the intact prefix.
  if (!Skipped.empty()) {
    uint32_t Gap = *std::min_element(Skipped.begin(), Skipped.end());
    while (!Cap->Slices.empty() && Cap->Slices.back().Num >= Gap)
      Cap->Slices.pop_back();
    errs() << "  note: replaying the " << Cap->Slices.size()
           << " slices before the first corrupt record\n";
  }

  os::CostModel Model;
  replay::ReplayEngine Engine(*Cap, Model);
  prof::ProfileCollector Profile;
  if (SpProf)
    Engine.setProfile(&Profile);
  Engine.setHostWorkers(HostWorkers);
  Engine.setHostWatchdogMs(SpHostWatchdog);
  obs::TraceRecorder Trace;
  if (!TracePath.value().empty())
    Engine.setTrace(&Trace);
  obs::HostTraceRecorder HostTrace;
  if (!HostTracePath.value().empty() || HostStats)
    Engine.setHostTrace(&HostTrace);
  replay::ReplayReport Rep =
      Slices.value().empty()
          ? Engine.replayAll(makeTool(ToolName))
          : Engine.replay(makeTool(ToolName), parseSliceList(Slices));

  outs() << Rep.FiniOutput;
  outs() << "replayed " << Rep.SlicesReplayed << " of " << Cap->Slices.size()
         << " slices: " << formatWithCommas(Rep.ReplayedInsts)
         << " instructions, " << Rep.PlaybackSyscalls << " played back, "
         << Rep.DuplicatedSyscalls << " duplicated\n";
  outs() << "parity: " << Rep.ParityOk << " ok, " << Rep.ParityFailed
         << " failed\n";
  // Gated like superpin_run's host line: -spmp 0 output stays byte-stable.
  if (HostWorkers)
    outs() << "host: " << HostWorkers << " workers\n";
  if (Rep.HostWorkerExceptions || Rep.HostWatchdogKills ||
      Rep.HostFallbackSlices)
    outs() << "host faults: " << Rep.HostWorkerExceptions
           << " worker exceptions, " << Rep.HostWatchdogKills
           << " watchdog kills, " << Rep.HostFallbackSlices
           << " slices re-executed serially\n";
  if (HostStats) {
    const obs::HostAttribution Attr = HostTrace.attribution();
    for (const obs::HostLaneAttribution &L : Attr.Workers) {
      char Line[160];
      std::snprintf(Line, sizeof(Line),
                    "  worker-%u: %5.1f%% body, %5.1f%% dispatch-wait, "
                    "%5.1f%% merge-wait, %5.1f%% idle, %5.1f%% retire "
                    "(%" PRIu64 " bodies)\n",
                    L.Worker,
                    100.0 * double(L.BodyNs) / double(L.LifetimeNs ? L.LifetimeNs : 1),
                    100.0 * double(L.DispatchWaitNs) / double(L.LifetimeNs ? L.LifetimeNs : 1),
                    100.0 * double(L.MergeWaitNs) / double(L.LifetimeNs ? L.LifetimeNs : 1),
                    100.0 * double(L.IdleNs) / double(L.LifetimeNs ? L.LifetimeNs : 1),
                    100.0 * double(L.RetireNs) / double(L.LifetimeNs ? L.LifetimeNs : 1),
                    L.Bodies);
      outs() << Line;
    }
    if (!Attr.Workers.empty())
      outs() << "  pool: dominant stall "
             << obs::hostSpanName(Attr.dominantStall()) << "\n";
  }
  for (const replay::ReplaySliceResult &R : Rep.Slices)
    if (!R.ParityOk)
      outs() << "  slice " << R.Num << ": "
             << (R.Diverged ? R.Note : "icount/end-kind mismatch")
             << " (retired " << R.RetiredInsts << ")\n";
  if (!TracePath.value().empty())
    writeFile(TracePath, [&](RawOstream &OS) {
      Trace.writeChromeTrace(OS, Model.TicksPerMs);
    });
  // Dual-axis export: when -sptrace is also given the file carries the
  // deterministic virtual axis (pid 1) next to the wall-clock axis
  // (pid 2); otherwise only the host axis has events.
  if (!HostTracePath.value().empty())
    writeFile(HostTracePath, [&](RawOstream &OS) {
      Trace.writeChromeTrace(OS, Model.TicksPerMs, &HostTrace);
    });
  if (SpDoctor || !SpDoctorOut.value().empty()) {
    obs::ReplayDoctorInput In;
    In.WallTicks = Rep.WallTicks;
    In.HostWorkers = HostWorkers;
    for (const replay::ReplaySliceResult &R : Rep.Slices)
      In.Slices.push_back({R.Num, R.PrepTicks, R.BodyTicks});
    obs::DoctorReport Diag = obs::diagnoseReplay(In);
    if (SpDoctor) {
      outs() << "\n";
      obs::printDoctorReport(Diag, Model.TicksPerMs, outs());
    }
    if (!SpDoctorOut.value().empty())
      writeFile(SpDoctorOut, [&](RawOstream &OS) {
        obs::writeDoctorJson(Diag, Model.TicksPerMs, OS);
      });
  }
  if (SpProf) {
    writeFile(SpProfOut, [&](RawOstream &OS) {
      Profile.writeJson(OS, static_cast<unsigned>(uint64_t(SpProfTopN)));
    });
    writeFile(SpProfOut.value() + ".folded",
              [&](RawOstream &OS) { Profile.writeFolded(OS); });
    outs() << "profile: " << formatWithCommas(Profile.totalAttributed())
           << " attributed + " << formatWithCommas(Profile.totalNative())
           << " native of " << formatWithCommas(Profile.totalConsumed())
           << " ticks -> " << SpProfOut.value() << "\n";
  }
  outs().flush();
  return Rep.allOk() ? 0 : 1;
}
