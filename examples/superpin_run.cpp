//===- examples/superpin_run.cpp - Pin-style command-line driver ----------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// A command-line driver in the spirit of `pin -t tool -sp 1 -- app`:
//
//   superpin_run -tool icount2 -workload gcc -sp 1 -spmsec 100 -spslices 8
//
// Switches mirror the paper's Section 5 (-sp, -spmsec, -spslices,
// -spsysrecs) plus this reproduction's extensions (-spmemsig, -spsharedcc,
// -spquickcheck, -spadaptive, -spsyspredict, -spseed, and -spmp N for
// host-parallel slice execution on N real threads). With -sp 0 the tool
// runs under classic serial Pin instead.
//
//===----------------------------------------------------------------------===//

#include "analysis/Passes.h"
#include "analysis/Redundancy.h"
#include "fault/FaultPlan.h"
#include "obs/Metrics.h"
#include "obs/HostTraceRecorder.h"
#include "obs/TraceRecorder.h"
#include "pin/PinVm.h"
#include "pin/Runner.h"
#include "prof/Profile.h"
#include "superpin/Engine.h"
#include "superpin/Reporting.h"
#include "support/CommandLine.h"
#include "support/RawOstream.h"
#include "support/Statistic.h"
#include "support/StringExtras.h"
#include "tools/BranchProfile.h"
#include "tools/CallGraph.h"
#include "tools/DCache.h"
#include "tools/ICache.h"
#include "tools/Icount.h"
#include "tools/OpcodeMix.h"
#include "workloads/Spec2000.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <optional>

using namespace spin;
using namespace spin::tools;

/// Writes \p Emit's output to \p Path; exits with an error if the file
/// cannot be opened.
template <typename Fn>
static void writeFile(const std::string &Path, Fn Emit) {
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F) {
    errs() << "error: cannot open '" << Path << "' for writing\n";
    std::exit(1);
  }
  {
    RawFdOstream OS(F);
    Emit(OS);
    OS.flush();
  }
  std::fclose(F);
}

static pin::ToolFactory makeTool(const std::string &Name) {
  if (Name == "icount1")
    return makeIcountTool(IcountGranularity::Instruction);
  if (Name == "icount2")
    return makeIcountTool(IcountGranularity::BasicBlock);
  if (Name == "dcache")
    return makeDCacheTool(DCacheConfig());
  if (Name == "icache")
    return makeICacheTool(CacheGeometry());
  if (Name == "branch")
    return makeBranchProfileTool();
  if (Name == "opcodemix")
    return makeOpcodeMixTool();
  if (Name == "callgraph")
    return makeCallGraphTool(std::make_shared<CallGraphResult>());
  errs() << "unknown tool '" << Name
         << "' (try icount1, icount2, dcache, icache, branch, opcodemix, "
            "callgraph)\n";
  std::exit(1);
}

int main(int Argc, char **Argv) {
  OptionRegistry Registry;
  Opt<std::string> ToolName(Registry, "tool", "icount2", "Pintool to run");
  Opt<std::string> Workload(Registry, "workload", "gcc",
                            "SPEC2000 workload name");
  Opt<double> Scale(Registry, "scale", 0.3, "workload duration scale");
  Opt<bool> Sp(Registry, "sp", true, "use SuperPin (0 = serial Pin)");
  Opt<uint64_t> SpMsec(Registry, "spmsec", 100, "timeslice milliseconds");
  Opt<uint64_t> SpSlices(Registry, "spslices", 8, "max running slices");
  Opt<std::string> SpMp(Registry, "spmp", "0",
                        "host worker threads for slice bodies (0 = run on "
                        "the sim thread; \"auto\" = host core count; output "
                        "is byte-identical for every value)");
  Opt<uint64_t> SpSysrecs(Registry, "spsysrecs", 1000,
                          "max syscall records per slice (0 disables)");
  Opt<bool> SpQuick(Registry, "spquickcheck", true,
                    "inlined quick signature check");
  Opt<bool> SpMemsig(Registry, "spmemsig", false,
                     "memory-operand signature extension");
  Opt<bool> SpSharedCc(Registry, "spsharedcc", false,
                       "share the code cache across slices");
  Opt<bool> SpAdaptive(Registry, "spadaptive", false,
                       "adaptive timeslice throttling");
  Opt<uint64_t> SpAppMs(Registry, "spappms", 0,
                        "expected app duration hint for -spadaptive");
  Opt<bool> SpSysPredict(Registry, "spsyspredict", true,
                         "predict syscall classes from static analysis");
  Opt<bool> SpSeed(Registry, "spseed", false,
                   "seed code caches from the static CFG");
  Opt<bool> SpRedux(Registry, "spredux", false,
                    "suppress redundant analysis calls via static loop "
                    "analysis (byte-identical tool output)");
  Opt<double> SpFault(Registry, "spfault", 0.0,
                      "per-slice fault-injection probability (0 disables)");
  Opt<uint64_t> SpFaultSeed(Registry, "spfaultseed", 1,
                            "deterministic seed for the fault plan");
  Opt<double> SpHostFault(Registry, "sphostfault", 0.0,
                          "per-slice host-fault probability (worker "
                          "exception/hang/stream truncation; only fires on "
                          "bodies dispatched under -spmp, 0 disables)");
  Opt<uint64_t> SpHostWatchdog(
      Registry, "sphostwatchdog", 0,
      "wall-clock ms before a silent -spmp worker is declared dead and the "
      "slice re-executes sim-side (0 = derive from slice length)");
  Opt<uint64_t> SpHostBreaker(Registry, "sphostbreaker", 3,
                              "worker failures before -spmp degrades to "
                              "sim-thread execution for the rest of the run");
  Opt<uint64_t> SpRetries(Registry, "spretries", 2,
                          "re-fork attempts per failed slice window");
  Opt<uint64_t> SpWatchdogMargin(
      Registry, "spwatchdogmargin", 20000,
      "instructions past the window length before the watchdog kills");
  Opt<uint64_t> Cpus(Registry, "cpus", 8, "physical cores");
  Opt<uint64_t> Vcpus(Registry, "vcpus", 8, "scheduling contexts");
  Opt<bool> FiniOnly(Registry, "fini-only", false,
                     "print only the tool's fini output (the part that is "
                     "byte-identical across -sp/-spredux settings; for CI "
                     "diffs)");
  Opt<bool> Report(Registry, "report", false, "print the full run report");
  Opt<bool> Timeline(Registry, "timeline", false,
                     "print the Figure 1 slice timeline");
  Opt<std::string> TracePath(Registry, "sptrace", "",
                             "write a Chrome trace-event JSON timeline here");
  Opt<uint64_t> TraceCap(Registry, "sptracecap",
                         obs::TraceRecorder::DefaultCapacity,
                         "trace ring-buffer capacity (events)");
  Opt<bool> TraceWall(Registry, "sptracewall", false,
                      "also stamp trace events with host wall time");
  Opt<std::string> HostTracePath(
      Registry, "sphosttrace", "",
      "write a dual-axis Chrome trace here: virtual-time tracks plus one "
      "wall-clock track per -spmp worker and host counter tracks");
  Opt<bool> HostStats(Registry, "sphoststats", false,
                      "print the per-worker wall-time attribution table "
                      "(body/dispatch-wait/merge-wait/idle/retire)");
  Opt<std::string> MetricsPath(Registry, "spmetrics", "",
                               "write the spmetrics-v1 JSON document here");
  Opt<bool> SpProf(Registry, "spprof", false,
                   "attribute virtual time to overhead causes (src/prof)");
  Opt<std::string> SpProfOut(Registry, "spprof-out", "spprof.json",
                             "spprof-v1 output path (folded stacks go to "
                             "<path>.folded)");
  Opt<uint64_t> SpProfTopN(Registry, "spprof-topn", 20,
                           "hot blocks to keep in the spprof-v1 export");
  Opt<std::string> StatsJsonPath(Registry, "stats-json", "",
                                 "dump the final statistics registry as JSON");
  Opt<bool> SpDoctor(Registry, "spdoctor", false,
                     "print the spin_doctor critical-path diagnosis (top "
                     "bottlenecks, predicted scaling, recommended flags)");
  Opt<std::string> SpDoctorOut(Registry, "spdoctor-out", "",
                               "write the spdoctor-v1 JSON diagnosis here");
  Opt<std::string> SpFlightRec(
      Registry, "spflightrec", "",
      "arm the postmortem flight recorder: a containment event, breaker "
      "trip, or watchdog kill dumps a trace/counters/doctor bundle into "
      "this directory (clean runs write nothing)");
  Opt<bool> Help(Registry, "help", false, "print options");
  Opt<bool> List(Registry, "list", false, "list available workloads");

  std::string Err;
  if (!Registry.parse(Argc, Argv, Err)) {
    errs() << "error: " << Err << "\n";
    return 1;
  }
  if (Help) {
    Registry.printHelp(outs());
    return 0;
  }
  if (List) {
    for (const workloads::WorkloadInfo &Info : workloads::spec2000Suite())
      outs() << Info.Name << "  (cpi " << formatFixed(Info.Cpi, 2)
             << ", ~" << Info.DurationMs / 1000 << "s native)\n";
    outs().flush();
    return 0;
  }

  const workloads::WorkloadInfo &Info = workloads::findWorkload(Workload);
  vm::Program Prog = workloads::buildWorkload(Info, Scale);
  os::CostModel Model;
  os::Ticks InstCost = static_cast<os::Ticks>(
      std::llround(Info.Cpi * double(Model.TicksPerInst)));

  prof::ProfileCollector Profile;
  auto WriteProfile = [&] {
    if (!SpProf)
      return;
    writeFile(SpProfOut, [&](RawOstream &OS) {
      Profile.writeJson(OS, static_cast<unsigned>(uint64_t(SpProfTopN)));
    });
    writeFile(SpProfOut.value() + ".folded",
              [&](RawOstream &OS) { Profile.writeFolded(OS); });
    if (!FiniOnly)
      outs() << "profile: " << formatWithCommas(Profile.totalAttributed())
             << " attributed + " << formatWithCommas(Profile.totalNative())
             << " native of " << formatWithCommas(Profile.totalConsumed())
             << " ticks -> " << SpProfOut.value() << "\n";
  };

  if (!Sp) {
    pin::PinVmConfig SerialCfg;
    // RedundancyInfo holds a pointer into the Cfg, so both must outlive
    // the run.
    std::optional<analysis::Cfg> ReduxCfg;
    std::optional<analysis::RedundancyInfo> Redux;
    if (SpRedux) {
      ReduxCfg.emplace(analysis::buildCfg(Prog));
      Redux.emplace(*ReduxCfg);
      SerialCfg.Redux = &*Redux;
    }
    if (SpProf)
      SerialCfg.Prof = &Profile.master();
    pin::RunReport Rep = pin::runSerialPin(Prog, Model, InstCost,
                                           makeTool(ToolName), SerialCfg);
    outs() << Rep.FiniOutput;
    if (!FiniOnly)
      outs() << "serial pin: "
             << formatFixed(Model.ticksToSeconds(Rep.WallTicks), 2) << "s, "
             << formatWithCommas(Rep.Insts) << " instructions\n";
    WriteProfile();
    outs().flush();
    return 0;
  }

  sp::SpOptions Opts;
  Opts.SliceMs = SpMsec;
  Opts.MaxSlices = static_cast<uint32_t>(uint64_t(SpSlices));
  if (SpMp.value() == "auto") {
    Opts.HostWorkers = sp::SpOptions::HostWorkersAuto;
  } else {
    char *End = nullptr;
    errno = 0;
    unsigned long long N = std::strtoull(SpMp.value().c_str(), &End, 10);
    if (End == SpMp.value().c_str() || *End != '\0') {
      errs() << "error: -spmp expects a worker count or \"auto\", got '"
             << SpMp.value() << "'\n";
      return 1;
    }
    // Reject rather than truncate: 4294967297 must not silently become 1.
    if (errno == ERANGE || N >= sp::SpOptions::HostWorkersAuto) {
      errs() << "error: -spmp " << SpMp.value()
             << " overflows the worker count\n";
      return 1;
    }
    Opts.HostWorkers = static_cast<uint32_t>(N);
  }
  Opts.MaxSysRecs = SpSysrecs;
  Opts.QuickCheck = SpQuick;
  Opts.MemSignature = SpMemsig;
  Opts.SharedCodeCache = SpSharedCc;
  Opts.AdaptiveSlices = SpAdaptive;
  Opts.AppDurationHintMs = SpAppMs;
  Opts.StaticSyscallPrediction = SpSysPredict;
  Opts.StaticTraceSeed = SpSeed;
  Opts.Redux = SpRedux;
  Opts.PhysCpus = static_cast<unsigned>(uint64_t(Cpus));
  Opts.VirtCpus = static_cast<unsigned>(uint64_t(Vcpus));
  if (Opts.VirtCpus < Opts.PhysCpus)
    Opts.VirtCpus = Opts.PhysCpus;
  Opts.Cpi = Info.Cpi;
  Opts.RetryBudget = static_cast<uint32_t>(uint64_t(SpRetries));
  Opts.WatchdogMarginInsts = SpWatchdogMargin;
  Opts.HostWatchdogMs = SpHostWatchdog;
  Opts.HostBreakerLimit = static_cast<uint32_t>(uint64_t(SpHostBreaker));
  fault::FaultPlan Plan(SpFaultSeed, SpFault);
  Plan.setHostRate(SpHostFault);
  if (Plan.enabled())
    Opts.Fault = &Plan;

  obs::TraceRecorder Trace(static_cast<size_t>(uint64_t(TraceCap)));
  if (TraceWall)
    Trace.enableWallClock();
  // -sphosttrace implies virtual tracing too: the dual-axis document
  // carries both timelines, and virtual tracing is output-neutral.
  if (!TracePath.value().empty() || !HostTracePath.value().empty())
    Opts.Trace = &Trace;
  obs::HostTraceRecorder HostTrace;
  if (!HostTracePath.value().empty() || HostStats)
    Opts.HostTrace = &HostTrace;
  if (SpProf)
    Opts.Profile = &Profile;
  Opts.FlightDir = SpFlightRec;
  if (std::string Bad = Opts.validate(); !Bad.empty()) {
    errs() << "error: " << Bad << "\n";
    return 1;
  }

  sp::SpRunReport Rep = sp::runSuperPin(Prog, makeTool(ToolName), Opts, Model);
  outs() << Rep.FiniOutput;
  if (!FiniOnly) {
    outs() << "superpin: "
           << formatFixed(Model.ticksToSeconds(Rep.WallTicks), 2) << "s ("
           << "native " << formatFixed(Model.ticksToSeconds(Rep.NativeTicks), 2)
           << " + fork&others "
           << formatFixed(Model.ticksToSeconds(Rep.ForkOthersTicks), 2)
           << " + sleep "
           << formatFixed(Model.ticksToSeconds(Rep.SleepTicks), 2)
           << " + pipeline "
           << formatFixed(Model.ticksToSeconds(Rep.PipelineTicks), 2) << ")\n";
    outs() << "slices: " << Rep.NumSlices << " (" << Rep.TimeoutSlices
           << " timeout, " << Rep.SyscallSlices << " syscall), partition "
           << (Rep.PartitionOk ? "exact" : "BROKEN") << "\n";
    outs() << "syscalls: " << Rep.RecordedSyscalls << " recorded, "
           << Rep.PlaybackSyscalls << " played back, "
           << Rep.DuplicatedSyscalls << " duplicated, "
           << Rep.ForcedSliceSyscalls << " forced slices\n";
    outs() << "signature: " << Rep.Signature.QuickChecks << " quick, "
           << Rep.Signature.FullChecks << " full, " << Rep.Signature.Matches
           << " matches\n";
    // Host telemetry is wall-clock (nondeterministic), so it only appears
    // when -spmp is on — flags-off output stays byte-stable. -sphoststats
    // prints the same aggregate atop its table, so skip it here then.
    if (Rep.HostWorkers && !HostStats)
      outs() << "host: " << Rep.HostWorkers << " workers, "
             << Rep.HostDispatchedSlices << " bodies dispatched, "
             << formatWithCommas(Rep.HostStreamEvents) << " stream events, "
             << formatFixed(Rep.HostBodySeconds, 3) << "s body wall time\n";
    if (Rep.HostFaultsInjected || Rep.HostWorkerExceptions ||
        Rep.HostWatchdogKills || Rep.HostFallbackSlices || Rep.HostDegraded)
      outs() << "host faults: " << Rep.HostFaultsInjected << " injected, "
             << Rep.HostWorkerExceptions << " worker exceptions, "
             << Rep.HostWatchdogKills << " watchdog kills, "
             << Rep.HostFallbackSlices << " slices fell back to sim"
             << (Rep.HostDegraded ? ", pool DEGRADED" : "") << "\n";
    if (Rep.FaultsInjected || Rep.RetriedSlices || Rep.QuarantinedSlices ||
        Rep.LostSlices || Rep.BreakerTripped)
      outs() << "faults: " << Rep.FaultsInjected << " injected, "
             << Rep.RecoveredSlices << " recovered, " << Rep.LostSlices
             << " lost, coverage " << Rep.CoverageInsts << "/"
             << Rep.MasterInsts << " insts"
             << (Rep.BreakerTripped ? ", breaker TRIPPED" : "") << "\n";
    if (HostStats && !Report) {
      outs() << "\n";
      sp::printHostStats(Rep, outs());
    }
    if (Report) {
      outs() << "\n";
      sp::printReport(Rep, Model, outs());
    }
    if (Timeline) {
      outs() << "\n";
      sp::printTimeline(Rep, Model, outs());
    }
  }
  if (!TracePath.value().empty())
    writeFile(TracePath, [&](RawOstream &OS) {
      Trace.writeChromeTrace(OS, Model.TicksPerMs);
    });
  if (!HostTracePath.value().empty())
    writeFile(HostTracePath, [&](RawOstream &OS) {
      Trace.writeChromeTrace(OS, Model.TicksPerMs, &HostTrace);
    });
  if (!MetricsPath.value().empty())
    writeFile(MetricsPath, [&](RawOstream &OS) {
      sp::writeRunMetricsJson(Rep, Model, OS);
    });
  if (!StatsJsonPath.value().empty())
    writeFile(StatsJsonPath, [&](RawOstream &OS) {
      StatisticRegistry Stats;
      sp::exportStatistics(Rep, Stats);
      if (SpProf)
        Profile.exportStatistics(Stats);
      obs::writeRegistryJson(Stats, OS);
    });
  if (SpDoctor || !SpDoctorOut.value().empty()) {
    obs::DoctorReport Diag = obs::diagnose(sp::doctorInput(Rep, Opts));
    if (SpDoctor) {
      outs() << "\n";
      obs::printDoctorReport(Diag, Model.TicksPerMs, outs());
    }
    if (!SpDoctorOut.value().empty())
      writeFile(SpDoctorOut, [&](RawOstream &OS) {
        obs::writeDoctorJson(Diag, Model.TicksPerMs, OS);
      });
  }
  WriteProfile();
  outs().flush();
  return 0;
}
