//===- examples/memtrace_tool.cpp - Ordered trace merging -----------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Section 4.5's second merge pattern: "if we are tracing instructions,
// the slice output will be buffered, then appended to the output during
// merging." Each slice buffers its memory references; because merges run
// in slice order, the concatenated SuperPin trace is bit-identical to a
// serial Pin trace — verified here record by record.
//
//===----------------------------------------------------------------------===//

#include "pin/Runner.h"
#include "superpin/Engine.h"
#include "support/RawOstream.h"
#include "tools/MemTrace.h"
#include "workloads/Generator.h"

#include <cmath>

using namespace spin;
using namespace spin::tools;

int main() {
  workloads::GenParams P;
  P.Name = "trace-demo";
  P.TargetInsts = 150'000;
  P.NumFuncs = 5;
  P.BlocksPerFunc = 6;
  P.WorkingSetBytes = 1 << 14;
  P.SyscallMask = 63;
  P.Mix = workloads::SysMix::ReadWrite;
  vm::Program Prog = workloads::generateWorkload(P);
  os::CostModel Model;

  auto SerialTrace = std::make_shared<MemTraceResult>();
  pin::runSerialPin(Prog, Model, 100, makeMemTraceTool(SerialTrace));

  sp::SpOptions Opts;
  Opts.SliceMs = 20; // Many slices: a strong ordering test.
  auto SpTrace = std::make_shared<MemTraceResult>();
  sp::SpRunReport Rep =
      sp::runSuperPin(Prog, makeMemTraceTool(SpTrace), Opts, Model);

  outs() << "serial records:   " << SerialTrace->Records.size() << "\n";
  outs() << "superpin records: " << SpTrace->Records.size() << " (across "
         << Rep.NumSlices << " slices)\n";

  bool Identical = SerialTrace->Records == SpTrace->Records;
  outs() << "traces identical: " << (Identical ? "yes" : "NO") << "\n\n";

  outs() << "first records (pc, addr, size, rw):\n";
  size_t Show = SpTrace->Records.size() < 8 ? SpTrace->Records.size() : 8;
  for (size_t I = 0; I != Show; ++I) {
    const MemRecord &R = SpTrace->Records[I];
    outs() << "  ";
    outs().writeHex(R.Pc);
    outs() << "  ";
    outs().writeHex(R.Addr);
    outs() << "  " << R.Size << "  " << (R.IsWrite ? "W" : "R") << "\n";
  }
  outs().flush();
  return Identical ? 0 : 1;
}
