//===- examples/run_asm.cpp - Run a guest assembly file -------------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Assembles a guest program from a .s file (syntax in
// docs/GUEST-MACHINE.md) and runs it natively, under serial Pin, and
// under SuperPin with icount2:
//
//   run_asm examples/programs/primes.s [-spmsec N]
//
//===----------------------------------------------------------------------===//

#include "os/DirectRun.h"
#include "pin/Runner.h"
#include "superpin/Engine.h"
#include "superpin/Reporting.h"
#include "support/CommandLine.h"
#include "support/RawOstream.h"
#include "support/StringExtras.h"
#include "tools/Icount.h"
#include "vm/Assembler.h"
#include "vm/Verifier.h"

#include <fstream>
#include <sstream>

using namespace spin;

int main(int Argc, char **Argv) {
  if (Argc < 2) {
    errs() << "usage: run_asm <file.s> [-spmsec N]\n";
    return 1;
  }
  std::ifstream In(Argv[1]);
  if (!In) {
    errs() << "error: cannot open '" << Argv[1] << "'\n";
    return 1;
  }
  std::stringstream Buf;
  Buf << In.rdbuf();

  std::string Err;
  std::optional<vm::Program> Prog = vm::assemble(Buf.str(), Argv[1], Err);
  if (!Prog) {
    errs() << Argv[1] << ": " << Err << "\n";
    return 1;
  }
  for (const vm::VerifyIssue &Issue : vm::verifyProgram(*Prog))
    errs() << "warning: " << vm::formatVerifyIssue(*Prog, Issue) << "\n";

  uint64_t SliceMs = 50;
  for (int I = 2; I + 1 < Argc; I += 2)
    if (std::string_view(Argv[I]) == "-spmsec")
      if (auto V = parseUint(Argv[I + 1]))
        SliceMs = *V;

  os::CostModel Model;
  os::DirectRunResult Native = os::runDirect(*Prog);
  outs() << "--- native ---\n" << Native.Output;
  outs() << "(exit " << Native.ExitCode << ", "
         << formatWithCommas(Native.Insts) << " instructions, "
         << Native.Syscalls << " syscalls)\n\n";
  if (!Native.Exited) {
    errs() << "program did not terminate within the instruction cap\n";
    return 1;
  }

  auto PinCount = std::make_shared<tools::IcountResult>();
  pin::RunReport Serial = pin::runSerialPin(
      *Prog, Model, 100,
      tools::makeIcountTool(tools::IcountGranularity::BasicBlock, PinCount));
  outs() << "--- serial pin ---\n" << Serial.FiniOutput;
  outs() << "(" << formatFixed(Model.ticksToSeconds(Serial.WallTicks), 3)
         << " virtual s)\n\n";

  sp::SpOptions Opts;
  Opts.SliceMs = SliceMs;
  auto SpCount = std::make_shared<tools::IcountResult>();
  sp::SpRunReport Sp = sp::runSuperPin(
      *Prog,
      tools::makeIcountTool(tools::IcountGranularity::BasicBlock, SpCount),
      Opts, Model);
  outs() << "--- superpin ---\n" << Sp.FiniOutput;
  sp::printReport(Sp, Model, outs());
  outs() << "\n";
  sp::printTimeline(Sp, Model, outs());
  outs() << "\ncounts match: "
         << (PinCount->Total == SpCount->Total &&
                     PinCount->Total == Native.Insts
                 ? "yes"
                 : "NO")
         << "\n";
  outs().flush();
  return 0;
}
