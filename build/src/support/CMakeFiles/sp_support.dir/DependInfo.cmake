
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/support/CommandLine.cpp" "src/support/CMakeFiles/sp_support.dir/CommandLine.cpp.o" "gcc" "src/support/CMakeFiles/sp_support.dir/CommandLine.cpp.o.d"
  "/root/repo/src/support/ErrorHandling.cpp" "src/support/CMakeFiles/sp_support.dir/ErrorHandling.cpp.o" "gcc" "src/support/CMakeFiles/sp_support.dir/ErrorHandling.cpp.o.d"
  "/root/repo/src/support/Json.cpp" "src/support/CMakeFiles/sp_support.dir/Json.cpp.o" "gcc" "src/support/CMakeFiles/sp_support.dir/Json.cpp.o.d"
  "/root/repo/src/support/RawOstream.cpp" "src/support/CMakeFiles/sp_support.dir/RawOstream.cpp.o" "gcc" "src/support/CMakeFiles/sp_support.dir/RawOstream.cpp.o.d"
  "/root/repo/src/support/Statistic.cpp" "src/support/CMakeFiles/sp_support.dir/Statistic.cpp.o" "gcc" "src/support/CMakeFiles/sp_support.dir/Statistic.cpp.o.d"
  "/root/repo/src/support/StringExtras.cpp" "src/support/CMakeFiles/sp_support.dir/StringExtras.cpp.o" "gcc" "src/support/CMakeFiles/sp_support.dir/StringExtras.cpp.o.d"
  "/root/repo/src/support/Table.cpp" "src/support/CMakeFiles/sp_support.dir/Table.cpp.o" "gcc" "src/support/CMakeFiles/sp_support.dir/Table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
