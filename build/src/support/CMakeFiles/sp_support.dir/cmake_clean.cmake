file(REMOVE_RECURSE
  "CMakeFiles/sp_support.dir/CommandLine.cpp.o"
  "CMakeFiles/sp_support.dir/CommandLine.cpp.o.d"
  "CMakeFiles/sp_support.dir/ErrorHandling.cpp.o"
  "CMakeFiles/sp_support.dir/ErrorHandling.cpp.o.d"
  "CMakeFiles/sp_support.dir/Json.cpp.o"
  "CMakeFiles/sp_support.dir/Json.cpp.o.d"
  "CMakeFiles/sp_support.dir/RawOstream.cpp.o"
  "CMakeFiles/sp_support.dir/RawOstream.cpp.o.d"
  "CMakeFiles/sp_support.dir/Statistic.cpp.o"
  "CMakeFiles/sp_support.dir/Statistic.cpp.o.d"
  "CMakeFiles/sp_support.dir/StringExtras.cpp.o"
  "CMakeFiles/sp_support.dir/StringExtras.cpp.o.d"
  "CMakeFiles/sp_support.dir/Table.cpp.o"
  "CMakeFiles/sp_support.dir/Table.cpp.o.d"
  "libsp_support.a"
  "libsp_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
