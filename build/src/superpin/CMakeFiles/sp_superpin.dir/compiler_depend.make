# Empty compiler generated dependencies file for sp_superpin.
# This may be replaced when dependencies are built.
