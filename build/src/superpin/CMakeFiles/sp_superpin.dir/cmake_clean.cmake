file(REMOVE_RECURSE
  "CMakeFiles/sp_superpin.dir/Engine.cpp.o"
  "CMakeFiles/sp_superpin.dir/Engine.cpp.o.d"
  "CMakeFiles/sp_superpin.dir/Reporting.cpp.o"
  "CMakeFiles/sp_superpin.dir/Reporting.cpp.o.d"
  "CMakeFiles/sp_superpin.dir/SharedAreas.cpp.o"
  "CMakeFiles/sp_superpin.dir/SharedAreas.cpp.o.d"
  "CMakeFiles/sp_superpin.dir/Signature.cpp.o"
  "CMakeFiles/sp_superpin.dir/Signature.cpp.o.d"
  "CMakeFiles/sp_superpin.dir/SpApi.cpp.o"
  "CMakeFiles/sp_superpin.dir/SpApi.cpp.o.d"
  "libsp_superpin.a"
  "libsp_superpin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_superpin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
