file(REMOVE_RECURSE
  "libsp_superpin.a"
)
