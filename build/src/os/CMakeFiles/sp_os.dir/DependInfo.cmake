
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/os/DirectRun.cpp" "src/os/CMakeFiles/sp_os.dir/DirectRun.cpp.o" "gcc" "src/os/CMakeFiles/sp_os.dir/DirectRun.cpp.o.d"
  "/root/repo/src/os/Kernel.cpp" "src/os/CMakeFiles/sp_os.dir/Kernel.cpp.o" "gcc" "src/os/CMakeFiles/sp_os.dir/Kernel.cpp.o.d"
  "/root/repo/src/os/Process.cpp" "src/os/CMakeFiles/sp_os.dir/Process.cpp.o" "gcc" "src/os/CMakeFiles/sp_os.dir/Process.cpp.o.d"
  "/root/repo/src/os/Scheduler.cpp" "src/os/CMakeFiles/sp_os.dir/Scheduler.cpp.o" "gcc" "src/os/CMakeFiles/sp_os.dir/Scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vm/CMakeFiles/sp_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
