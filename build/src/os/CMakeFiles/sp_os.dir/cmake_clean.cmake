file(REMOVE_RECURSE
  "CMakeFiles/sp_os.dir/DirectRun.cpp.o"
  "CMakeFiles/sp_os.dir/DirectRun.cpp.o.d"
  "CMakeFiles/sp_os.dir/Kernel.cpp.o"
  "CMakeFiles/sp_os.dir/Kernel.cpp.o.d"
  "CMakeFiles/sp_os.dir/Process.cpp.o"
  "CMakeFiles/sp_os.dir/Process.cpp.o.d"
  "CMakeFiles/sp_os.dir/Scheduler.cpp.o"
  "CMakeFiles/sp_os.dir/Scheduler.cpp.o.d"
  "libsp_os.a"
  "libsp_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
