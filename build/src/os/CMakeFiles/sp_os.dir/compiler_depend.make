# Empty compiler generated dependencies file for sp_os.
# This may be replaced when dependencies are built.
