file(REMOVE_RECURSE
  "libsp_os.a"
)
