
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/Assembler.cpp" "src/vm/CMakeFiles/sp_vm.dir/Assembler.cpp.o" "gcc" "src/vm/CMakeFiles/sp_vm.dir/Assembler.cpp.o.d"
  "/root/repo/src/vm/Disassembler.cpp" "src/vm/CMakeFiles/sp_vm.dir/Disassembler.cpp.o" "gcc" "src/vm/CMakeFiles/sp_vm.dir/Disassembler.cpp.o.d"
  "/root/repo/src/vm/GuestMemory.cpp" "src/vm/CMakeFiles/sp_vm.dir/GuestMemory.cpp.o" "gcc" "src/vm/CMakeFiles/sp_vm.dir/GuestMemory.cpp.o.d"
  "/root/repo/src/vm/Instruction.cpp" "src/vm/CMakeFiles/sp_vm.dir/Instruction.cpp.o" "gcc" "src/vm/CMakeFiles/sp_vm.dir/Instruction.cpp.o.d"
  "/root/repo/src/vm/Interpreter.cpp" "src/vm/CMakeFiles/sp_vm.dir/Interpreter.cpp.o" "gcc" "src/vm/CMakeFiles/sp_vm.dir/Interpreter.cpp.o.d"
  "/root/repo/src/vm/Program.cpp" "src/vm/CMakeFiles/sp_vm.dir/Program.cpp.o" "gcc" "src/vm/CMakeFiles/sp_vm.dir/Program.cpp.o.d"
  "/root/repo/src/vm/ProgramBuilder.cpp" "src/vm/CMakeFiles/sp_vm.dir/ProgramBuilder.cpp.o" "gcc" "src/vm/CMakeFiles/sp_vm.dir/ProgramBuilder.cpp.o.d"
  "/root/repo/src/vm/Verifier.cpp" "src/vm/CMakeFiles/sp_vm.dir/Verifier.cpp.o" "gcc" "src/vm/CMakeFiles/sp_vm.dir/Verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/sp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
