file(REMOVE_RECURSE
  "CMakeFiles/sp_vm.dir/Assembler.cpp.o"
  "CMakeFiles/sp_vm.dir/Assembler.cpp.o.d"
  "CMakeFiles/sp_vm.dir/Disassembler.cpp.o"
  "CMakeFiles/sp_vm.dir/Disassembler.cpp.o.d"
  "CMakeFiles/sp_vm.dir/GuestMemory.cpp.o"
  "CMakeFiles/sp_vm.dir/GuestMemory.cpp.o.d"
  "CMakeFiles/sp_vm.dir/Instruction.cpp.o"
  "CMakeFiles/sp_vm.dir/Instruction.cpp.o.d"
  "CMakeFiles/sp_vm.dir/Interpreter.cpp.o"
  "CMakeFiles/sp_vm.dir/Interpreter.cpp.o.d"
  "CMakeFiles/sp_vm.dir/Program.cpp.o"
  "CMakeFiles/sp_vm.dir/Program.cpp.o.d"
  "CMakeFiles/sp_vm.dir/ProgramBuilder.cpp.o"
  "CMakeFiles/sp_vm.dir/ProgramBuilder.cpp.o.d"
  "CMakeFiles/sp_vm.dir/Verifier.cpp.o"
  "CMakeFiles/sp_vm.dir/Verifier.cpp.o.d"
  "libsp_vm.a"
  "libsp_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
