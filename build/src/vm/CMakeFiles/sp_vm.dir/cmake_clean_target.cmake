file(REMOVE_RECURSE
  "libsp_vm.a"
)
