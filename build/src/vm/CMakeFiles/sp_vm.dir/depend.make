# Empty dependencies file for sp_vm.
# This may be replaced when dependencies are built.
