
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/Generator.cpp" "src/workloads/CMakeFiles/sp_workloads.dir/Generator.cpp.o" "gcc" "src/workloads/CMakeFiles/sp_workloads.dir/Generator.cpp.o.d"
  "/root/repo/src/workloads/Spec2000.cpp" "src/workloads/CMakeFiles/sp_workloads.dir/Spec2000.cpp.o" "gcc" "src/workloads/CMakeFiles/sp_workloads.dir/Spec2000.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vm/CMakeFiles/sp_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/sp_os.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
