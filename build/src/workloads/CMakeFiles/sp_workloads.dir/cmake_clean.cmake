file(REMOVE_RECURSE
  "CMakeFiles/sp_workloads.dir/Generator.cpp.o"
  "CMakeFiles/sp_workloads.dir/Generator.cpp.o.d"
  "CMakeFiles/sp_workloads.dir/Spec2000.cpp.o"
  "CMakeFiles/sp_workloads.dir/Spec2000.cpp.o.d"
  "libsp_workloads.a"
  "libsp_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
