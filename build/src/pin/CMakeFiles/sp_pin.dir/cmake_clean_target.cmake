file(REMOVE_RECURSE
  "libsp_pin.a"
)
