# Empty dependencies file for sp_pin.
# This may be replaced when dependencies are built.
