file(REMOVE_RECURSE
  "CMakeFiles/sp_pin.dir/Compiler.cpp.o"
  "CMakeFiles/sp_pin.dir/Compiler.cpp.o.d"
  "CMakeFiles/sp_pin.dir/PinVm.cpp.o"
  "CMakeFiles/sp_pin.dir/PinVm.cpp.o.d"
  "CMakeFiles/sp_pin.dir/Runner.cpp.o"
  "CMakeFiles/sp_pin.dir/Runner.cpp.o.d"
  "CMakeFiles/sp_pin.dir/Tool.cpp.o"
  "CMakeFiles/sp_pin.dir/Tool.cpp.o.d"
  "CMakeFiles/sp_pin.dir/Trace.cpp.o"
  "CMakeFiles/sp_pin.dir/Trace.cpp.o.d"
  "libsp_pin.a"
  "libsp_pin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_pin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
