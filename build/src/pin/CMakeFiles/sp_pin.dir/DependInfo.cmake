
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pin/Compiler.cpp" "src/pin/CMakeFiles/sp_pin.dir/Compiler.cpp.o" "gcc" "src/pin/CMakeFiles/sp_pin.dir/Compiler.cpp.o.d"
  "/root/repo/src/pin/PinVm.cpp" "src/pin/CMakeFiles/sp_pin.dir/PinVm.cpp.o" "gcc" "src/pin/CMakeFiles/sp_pin.dir/PinVm.cpp.o.d"
  "/root/repo/src/pin/Runner.cpp" "src/pin/CMakeFiles/sp_pin.dir/Runner.cpp.o" "gcc" "src/pin/CMakeFiles/sp_pin.dir/Runner.cpp.o.d"
  "/root/repo/src/pin/Tool.cpp" "src/pin/CMakeFiles/sp_pin.dir/Tool.cpp.o" "gcc" "src/pin/CMakeFiles/sp_pin.dir/Tool.cpp.o.d"
  "/root/repo/src/pin/Trace.cpp" "src/pin/CMakeFiles/sp_pin.dir/Trace.cpp.o" "gcc" "src/pin/CMakeFiles/sp_pin.dir/Trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/sp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/sp_os.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/sp_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
