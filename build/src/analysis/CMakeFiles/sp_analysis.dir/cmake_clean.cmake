file(REMOVE_RECURSE
  "CMakeFiles/sp_analysis.dir/Cfg.cpp.o"
  "CMakeFiles/sp_analysis.dir/Cfg.cpp.o.d"
  "CMakeFiles/sp_analysis.dir/Passes.cpp.o"
  "CMakeFiles/sp_analysis.dir/Passes.cpp.o.d"
  "libsp_analysis.a"
  "libsp_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
