
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tools/BranchProfile.cpp" "src/tools/CMakeFiles/sp_tools.dir/BranchProfile.cpp.o" "gcc" "src/tools/CMakeFiles/sp_tools.dir/BranchProfile.cpp.o.d"
  "/root/repo/src/tools/CacheSim.cpp" "src/tools/CMakeFiles/sp_tools.dir/CacheSim.cpp.o" "gcc" "src/tools/CMakeFiles/sp_tools.dir/CacheSim.cpp.o.d"
  "/root/repo/src/tools/CallGraph.cpp" "src/tools/CMakeFiles/sp_tools.dir/CallGraph.cpp.o" "gcc" "src/tools/CMakeFiles/sp_tools.dir/CallGraph.cpp.o.d"
  "/root/repo/src/tools/Composite.cpp" "src/tools/CMakeFiles/sp_tools.dir/Composite.cpp.o" "gcc" "src/tools/CMakeFiles/sp_tools.dir/Composite.cpp.o.d"
  "/root/repo/src/tools/DCache.cpp" "src/tools/CMakeFiles/sp_tools.dir/DCache.cpp.o" "gcc" "src/tools/CMakeFiles/sp_tools.dir/DCache.cpp.o.d"
  "/root/repo/src/tools/ICache.cpp" "src/tools/CMakeFiles/sp_tools.dir/ICache.cpp.o" "gcc" "src/tools/CMakeFiles/sp_tools.dir/ICache.cpp.o.d"
  "/root/repo/src/tools/Icount.cpp" "src/tools/CMakeFiles/sp_tools.dir/Icount.cpp.o" "gcc" "src/tools/CMakeFiles/sp_tools.dir/Icount.cpp.o.d"
  "/root/repo/src/tools/LoadValueProfile.cpp" "src/tools/CMakeFiles/sp_tools.dir/LoadValueProfile.cpp.o" "gcc" "src/tools/CMakeFiles/sp_tools.dir/LoadValueProfile.cpp.o.d"
  "/root/repo/src/tools/MemTrace.cpp" "src/tools/CMakeFiles/sp_tools.dir/MemTrace.cpp.o" "gcc" "src/tools/CMakeFiles/sp_tools.dir/MemTrace.cpp.o.d"
  "/root/repo/src/tools/OpcodeMix.cpp" "src/tools/CMakeFiles/sp_tools.dir/OpcodeMix.cpp.o" "gcc" "src/tools/CMakeFiles/sp_tools.dir/OpcodeMix.cpp.o.d"
  "/root/repo/src/tools/Sampler.cpp" "src/tools/CMakeFiles/sp_tools.dir/Sampler.cpp.o" "gcc" "src/tools/CMakeFiles/sp_tools.dir/Sampler.cpp.o.d"
  "/root/repo/src/tools/Syscount.cpp" "src/tools/CMakeFiles/sp_tools.dir/Syscount.cpp.o" "gcc" "src/tools/CMakeFiles/sp_tools.dir/Syscount.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pin/CMakeFiles/sp_pin.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sp_support.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/sp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/sp_os.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/sp_vm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
