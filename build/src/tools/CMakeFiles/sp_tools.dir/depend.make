# Empty dependencies file for sp_tools.
# This may be replaced when dependencies are built.
