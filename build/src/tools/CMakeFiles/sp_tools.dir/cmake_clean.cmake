file(REMOVE_RECURSE
  "CMakeFiles/sp_tools.dir/BranchProfile.cpp.o"
  "CMakeFiles/sp_tools.dir/BranchProfile.cpp.o.d"
  "CMakeFiles/sp_tools.dir/CacheSim.cpp.o"
  "CMakeFiles/sp_tools.dir/CacheSim.cpp.o.d"
  "CMakeFiles/sp_tools.dir/CallGraph.cpp.o"
  "CMakeFiles/sp_tools.dir/CallGraph.cpp.o.d"
  "CMakeFiles/sp_tools.dir/Composite.cpp.o"
  "CMakeFiles/sp_tools.dir/Composite.cpp.o.d"
  "CMakeFiles/sp_tools.dir/DCache.cpp.o"
  "CMakeFiles/sp_tools.dir/DCache.cpp.o.d"
  "CMakeFiles/sp_tools.dir/ICache.cpp.o"
  "CMakeFiles/sp_tools.dir/ICache.cpp.o.d"
  "CMakeFiles/sp_tools.dir/Icount.cpp.o"
  "CMakeFiles/sp_tools.dir/Icount.cpp.o.d"
  "CMakeFiles/sp_tools.dir/LoadValueProfile.cpp.o"
  "CMakeFiles/sp_tools.dir/LoadValueProfile.cpp.o.d"
  "CMakeFiles/sp_tools.dir/MemTrace.cpp.o"
  "CMakeFiles/sp_tools.dir/MemTrace.cpp.o.d"
  "CMakeFiles/sp_tools.dir/OpcodeMix.cpp.o"
  "CMakeFiles/sp_tools.dir/OpcodeMix.cpp.o.d"
  "CMakeFiles/sp_tools.dir/Sampler.cpp.o"
  "CMakeFiles/sp_tools.dir/Sampler.cpp.o.d"
  "CMakeFiles/sp_tools.dir/Syscount.cpp.o"
  "CMakeFiles/sp_tools.dir/Syscount.cpp.o.d"
  "libsp_tools.a"
  "libsp_tools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
