file(REMOVE_RECURSE
  "libsp_tools.a"
)
