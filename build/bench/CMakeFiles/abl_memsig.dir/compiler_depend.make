# Empty compiler generated dependencies file for abl_memsig.
# This may be replaced when dependencies are built.
