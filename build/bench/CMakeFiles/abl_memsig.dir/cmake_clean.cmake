file(REMOVE_RECURSE
  "CMakeFiles/abl_memsig.dir/abl_memsig.cpp.o"
  "CMakeFiles/abl_memsig.dir/abl_memsig.cpp.o.d"
  "abl_memsig"
  "abl_memsig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_memsig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
