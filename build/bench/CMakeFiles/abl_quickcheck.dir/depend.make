# Empty dependencies file for abl_quickcheck.
# This may be replaced when dependencies are built.
