file(REMOVE_RECURSE
  "CMakeFiles/abl_quickcheck.dir/abl_quickcheck.cpp.o"
  "CMakeFiles/abl_quickcheck.dir/abl_quickcheck.cpp.o.d"
  "abl_quickcheck"
  "abl_quickcheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_quickcheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
