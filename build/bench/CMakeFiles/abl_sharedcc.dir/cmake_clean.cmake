file(REMOVE_RECURSE
  "CMakeFiles/abl_sharedcc.dir/abl_sharedcc.cpp.o"
  "CMakeFiles/abl_sharedcc.dir/abl_sharedcc.cpp.o.d"
  "abl_sharedcc"
  "abl_sharedcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_sharedcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
