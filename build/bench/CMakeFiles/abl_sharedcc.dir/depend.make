# Empty dependencies file for abl_sharedcc.
# This may be replaced when dependencies are built.
