file(REMOVE_RECURSE
  "CMakeFiles/tab_signature_stats.dir/tab_signature_stats.cpp.o"
  "CMakeFiles/tab_signature_stats.dir/tab_signature_stats.cpp.o.d"
  "tab_signature_stats"
  "tab_signature_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_signature_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
