# Empty compiler generated dependencies file for tab_signature_stats.
# This may be replaced when dependencies are built.
