
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/micro_engine.cpp" "bench/CMakeFiles/micro_engine.dir/micro_engine.cpp.o" "gcc" "bench/CMakeFiles/micro_engine.dir/micro_engine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/superpin/CMakeFiles/sp_superpin.dir/DependInfo.cmake"
  "/root/repo/build/src/tools/CMakeFiles/sp_tools.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/sp_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/sp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/pin/CMakeFiles/sp_pin.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/sp_os.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/sp_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
