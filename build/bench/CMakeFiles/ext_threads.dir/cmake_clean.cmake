file(REMOVE_RECURSE
  "CMakeFiles/ext_threads.dir/ext_threads.cpp.o"
  "CMakeFiles/ext_threads.dir/ext_threads.cpp.o.d"
  "ext_threads"
  "ext_threads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
