# Empty compiler generated dependencies file for ext_threads.
# This may be replaced when dependencies are built.
