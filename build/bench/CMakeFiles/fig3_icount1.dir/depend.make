# Empty dependencies file for fig3_icount1.
# This may be replaced when dependencies are built.
