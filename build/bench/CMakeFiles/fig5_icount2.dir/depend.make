# Empty dependencies file for fig5_icount2.
# This may be replaced when dependencies are built.
