file(REMOVE_RECURSE
  "CMakeFiles/fig5_icount2.dir/fig5_icount2.cpp.o"
  "CMakeFiles/fig5_icount2.dir/fig5_icount2.cpp.o.d"
  "fig5_icount2"
  "fig5_icount2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_icount2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
