# Empty compiler generated dependencies file for fig7_parallelism.
# This may be replaced when dependencies are built.
