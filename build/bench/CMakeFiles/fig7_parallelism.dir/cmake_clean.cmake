file(REMOVE_RECURSE
  "CMakeFiles/fig7_parallelism.dir/fig7_parallelism.cpp.o"
  "CMakeFiles/fig7_parallelism.dir/fig7_parallelism.cpp.o.d"
  "fig7_parallelism"
  "fig7_parallelism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_parallelism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
