file(REMOVE_RECURSE
  "CMakeFiles/tab_toolcosts.dir/tab_toolcosts.cpp.o"
  "CMakeFiles/tab_toolcosts.dir/tab_toolcosts.cpp.o.d"
  "tab_toolcosts"
  "tab_toolcosts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_toolcosts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
