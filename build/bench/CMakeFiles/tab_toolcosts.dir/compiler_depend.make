# Empty compiler generated dependencies file for tab_toolcosts.
# This may be replaced when dependencies are built.
