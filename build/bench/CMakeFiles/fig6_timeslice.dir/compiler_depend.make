# Empty compiler generated dependencies file for fig6_timeslice.
# This may be replaced when dependencies are built.
