file(REMOVE_RECURSE
  "CMakeFiles/fig6_timeslice.dir/fig6_timeslice.cpp.o"
  "CMakeFiles/fig6_timeslice.dir/fig6_timeslice.cpp.o.d"
  "fig6_timeslice"
  "fig6_timeslice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_timeslice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
