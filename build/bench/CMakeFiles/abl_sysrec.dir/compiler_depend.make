# Empty compiler generated dependencies file for abl_sysrec.
# This may be replaced when dependencies are built.
