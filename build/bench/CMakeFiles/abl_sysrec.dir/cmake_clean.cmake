file(REMOVE_RECURSE
  "CMakeFiles/abl_sysrec.dir/abl_sysrec.cpp.o"
  "CMakeFiles/abl_sysrec.dir/abl_sysrec.cpp.o.d"
  "abl_sysrec"
  "abl_sysrec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_sysrec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
