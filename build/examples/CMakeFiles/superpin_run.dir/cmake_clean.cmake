file(REMOVE_RECURSE
  "CMakeFiles/superpin_run.dir/superpin_run.cpp.o"
  "CMakeFiles/superpin_run.dir/superpin_run.cpp.o.d"
  "superpin_run"
  "superpin_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/superpin_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
