# Empty compiler generated dependencies file for superpin_run.
# This may be replaced when dependencies are built.
