file(REMOVE_RECURSE
  "CMakeFiles/spin_lint.dir/spin_lint.cpp.o"
  "CMakeFiles/spin_lint.dir/spin_lint.cpp.o.d"
  "spin_lint"
  "spin_lint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spin_lint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
