# Empty dependencies file for spin_lint.
# This may be replaced when dependencies are built.
