file(REMOVE_RECURSE
  "CMakeFiles/memtrace_tool.dir/memtrace_tool.cpp.o"
  "CMakeFiles/memtrace_tool.dir/memtrace_tool.cpp.o.d"
  "memtrace_tool"
  "memtrace_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memtrace_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
