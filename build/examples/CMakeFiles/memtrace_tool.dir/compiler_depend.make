# Empty compiler generated dependencies file for memtrace_tool.
# This may be replaced when dependencies are built.
