# Empty compiler generated dependencies file for sampling_profiler.
# This may be replaced when dependencies are built.
