file(REMOVE_RECURSE
  "CMakeFiles/sampling_profiler.dir/sampling_profiler.cpp.o"
  "CMakeFiles/sampling_profiler.dir/sampling_profiler.cpp.o.d"
  "sampling_profiler"
  "sampling_profiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sampling_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
