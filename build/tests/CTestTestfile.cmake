# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/vm_test[1]_include.cmake")
include("/root/repo/build/tests/os_test[1]_include.cmake")
include("/root/repo/build/tests/pin_test[1]_include.cmake")
include("/root/repo/build/tests/superpin_test[1]_include.cmake")
include("/root/repo/build/tests/tools_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/threads_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
