file(REMOVE_RECURSE
  "CMakeFiles/superpin_test.dir/superpin_test.cpp.o"
  "CMakeFiles/superpin_test.dir/superpin_test.cpp.o.d"
  "superpin_test"
  "superpin_test.pdb"
  "superpin_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/superpin_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
