# Empty compiler generated dependencies file for superpin_test.
# This may be replaced when dependencies are built.
