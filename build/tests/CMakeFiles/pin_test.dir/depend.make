# Empty dependencies file for pin_test.
# This may be replaced when dependencies are built.
