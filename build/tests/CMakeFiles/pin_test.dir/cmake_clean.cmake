file(REMOVE_RECURSE
  "CMakeFiles/pin_test.dir/pin_test.cpp.o"
  "CMakeFiles/pin_test.dir/pin_test.cpp.o.d"
  "pin_test"
  "pin_test.pdb"
  "pin_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pin_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
