//===- replay/CaptureWriter.cpp - CaptureSink -> RunCapture ---------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "replay/CaptureWriter.h"

#include "superpin/SpOptions.h"

#include <cassert>

using namespace spin;
using namespace spin::replay;
using namespace spin::sp;

void CaptureWriter::onRunBegin(const vm::Program &Prog, const SpOptions &Opts) {
  Cap = RunCapture();
  Cap.Prog = Prog;
  Cap.Cpi = Opts.Cpi;
  Cap.SliceMs = Opts.SliceMs;
  Cap.MaxSlices = Opts.MaxSlices;
  Cap.MaxSysRecs = Opts.MaxSysRecs;
  Cap.QuickCheck = Opts.QuickCheck;
  Cap.MemSignature = Opts.MemSignature;
  Cap.DeferSlices = Opts.DeferSlices;
}

void CaptureWriter::onWindowCaptured(SliceCaptureData Data) {
  assert(Data.Num == Cap.Slices.size() && "windows must close in order");
  Cap.Slices.push_back(std::move(Data));
}

void CaptureWriter::onSliceMerged(
    uint32_t Num, uint64_t RetiredInsts,
    std::vector<std::vector<uint8_t>> AreaSnapshots) {
  assert(Num < Cap.Slices.size() && "merge for an unknown slice");
  Cap.Slices[Num].RetiredInsts = RetiredInsts;
  Cap.Slices[Num].AreaSnapshots = std::move(AreaSnapshots);
}

void CaptureWriter::onRunEnd(const SpRunReport &Report) {
  Cap.MasterInsts = Report.MasterInsts;
  Cap.SliceInsts = Report.SliceInsts;
  Cap.SpilledSlices = Report.SpilledSlices;
  Cap.ExitCode = Report.ExitCode;
  Cap.Output = Report.Output;
}
