//===- replay/Log.h - Persistent run-capture log format ---------*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The on-disk capture-log format ("SPRL"): a versioned little-endian
/// binary file holding everything a live SuperPin run produced — the full
/// program image, the capture-time configuration, and every slice window
/// with its syscall-effects stream, boundary signature, and merge results —
/// plus a human-readable JSON sidecar (`<path>.json`) indexing the slices
/// by byte offset so external tooling can inspect a log without decoding
/// the binary. A trailing FNV-1a checksum detects truncation/corruption at
/// load time.
///
/// The format is self-contained: loadCapture + replay::ReplayEngine need
/// nothing but the file to re-execute any subset of slices with any tool.
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_REPLAY_LOG_H
#define SUPERPIN_REPLAY_LOG_H

#include "superpin/Capture.h"
#include "vm/Program.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace spin::replay {

/// "SPRL" in little-endian byte order.
constexpr uint32_t LogMagic = 0x4c525053u;
/// Bump when the binary layout changes; loaders reject unknown versions.
constexpr uint32_t LogVersion = 1;

/// A complete captured run: the program, the configuration that shaped the
/// slice windows, the per-slice records, and the live run's results (the
/// parity reference replay validates against).
struct RunCapture {
  vm::Program Prog;

  // --- Capture-time configuration (SpOptions subset that shapes replay) --
  double Cpi = 1.0;
  uint64_t SliceMs = 1000;
  uint32_t MaxSlices = 8;
  uint64_t MaxSysRecs = 1000;
  bool QuickCheck = true;
  bool MemSignature = false;
  bool DeferSlices = false;

  // --- Live-run results (replay parity reference) -----------------------
  uint64_t MasterInsts = 0;
  uint64_t SliceInsts = 0;
  uint64_t SpilledSlices = 0;
  int ExitCode = 0;
  std::string Output;

  std::vector<sp::SliceCaptureData> Slices;
};

/// Sidecar-index row: where slice \p Num's record lives in the binary.
struct SliceIndexEntry {
  uint32_t Num = 0;
  uint64_t Offset = 0; ///< byte offset of the slice record in the file
  uint64_t Size = 0;   ///< encoded size of the record in bytes
};

/// Printable name of a slice-end kind ("signature", "syscall", ...).
std::string_view endKindName(sp::SliceEndKind Kind);

/// Encodes \p Cap into the SPRL wire format (including the trailing
/// checksum). When \p Index is non-null it receives one entry per slice.
std::vector<uint8_t> encodeCapture(const RunCapture &Cap,
                                   std::vector<SliceIndexEntry> *Index = nullptr);

/// Decodes a buffer produced by encodeCapture. Returns std::nullopt on a
/// bad magic/version/checksum or malformed payload; \p Err (if non-null)
/// receives the reason.
std::optional<RunCapture> decodeCapture(const std::vector<uint8_t> &Bytes,
                                        std::string *Err = nullptr);

/// The JSON sidecar path for a log at \p Path (`<path>.json`).
std::string sidecarPath(const std::string &Path);

/// Writes \p Cap to \p Path and its index sidecar to sidecarPath(Path).
/// Returns false (with \p Err set) on I/O failure.
bool saveCapture(const RunCapture &Cap, const std::string &Path,
                 std::string *Err = nullptr);

/// Loads a log written by saveCapture. The sidecar is not consulted (the
/// binary is self-contained); it exists for external tooling.
std::optional<RunCapture> loadCapture(const std::string &Path,
                                      std::string *Err = nullptr);

/// Structured diagnosis of an SPRL load: what failed, where in the file,
/// and the checksum evidence. Filled by loadCaptureLenient on success and
/// failure alike; ok() distinguishes them.
struct LogDiagnosis {
  std::string Reason;  ///< empty = clean load; else the failure summary
  uint64_t FileSize = 0; ///< bytes read from disk
  uint64_t Offset = 0;   ///< byte offset where decoding failed
  /// Index of the failing slice record; ~0 when the failure is in the
  /// header, configuration block, or trailing checksum.
  uint64_t RecordIndex = ~uint64_t(0);
  uint64_t ExpectedChecksum = 0; ///< trailing checksum stored in the file
  uint64_t ActualChecksum = 0;   ///< checksum recomputed over the payload
  bool ChecksumMismatch = false;
  bool Truncated = false; ///< file ends before the format says it should

  bool ok() const { return Reason.empty(); }
};

/// Like loadCapture, but reports a structured LogDiagnosis instead of a
/// bare string and — with \p SkipCorrupt — recovers every intact slice
/// record from a damaged log by resyncing to the next record offset in the
/// JSON sidecar index. Skipped record indices land in *\p Skipped. Returns
/// nullopt only when nothing usable survives: unreadable file, bad
/// magic/version, malformed header, or any corruption with \p SkipCorrupt
/// off.
std::optional<RunCapture>
loadCaptureLenient(const std::string &Path, bool SkipCorrupt,
                   LogDiagnosis *Diag = nullptr,
                   std::vector<uint32_t> *Skipped = nullptr);

} // namespace spin::replay

#endif // SUPERPIN_REPLAY_LOG_H
