//===- replay/ReplayEngine.h - Deferred-slice replay ------------*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Re-executes slices of a captured run (Log.h) outside the live engine.
/// The ReplayEngine reconstructs the master by fast-forwarding the
/// uninstrumented interpreter through recorded windows — re-executing
/// duplicable syscalls against the rebuilt kernel state and playing back
/// everything else from the recorded effects — then COW-forks a slice at
/// any window start and runs it through pin::PinVm with an arbitrary tool,
/// exactly as the live engine would have. Per-slice parity (retired icount
/// and end kind against the capture's merge record) validates that replay
/// reproduced the live slice; tools different from the capture-time tool
/// replay fine as long as they do not perturb control flow (SP_EndSlice).
///
/// Reconstruction correctness rests on the same invariant the live slices
/// rely on: the guest schedule is a pure function of the retired-
/// instruction stream, because every executor caps run chunks at the
/// remaining thread quantum (see superpin/Capture.h's hashMachineState).
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_REPLAY_REPLAYENGINE_H
#define SUPERPIN_REPLAY_REPLAYENGINE_H

#include "os/Process.h"
#include "pin/Tool.h"
#include "replay/Log.h"
#include "superpin/SharedAreas.h"
#include "vm/Interpreter.h"

#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace spin::obs {
class HostTraceRecorder;
class TraceRecorder;
class TraceSink;
}

namespace spin::prof {
class ProfileCollector;
}

namespace spin::replay {

/// Outcome of re-executing one captured slice.
struct ReplaySliceResult {
  uint32_t Num = 0;
  uint64_t RetiredInsts = 0; ///< retired under replay instrumentation
  sp::SliceEndKind EndKind = sp::SliceEndKind::Signature;
  /// Retired icount and end kind both match the capture's merge record.
  bool ParityOk = false;
  /// The slice left the recorded window (syscall-sequence mismatch, missed
  /// signature, or runaway); Note says why. Always implies !ParityOk.
  bool Diverged = false;
  std::string Note;
  uint64_t PlaybackSyscalls = 0;
  uint64_t DuplicatedSyscalls = 0;
  /// Deterministic virtual ticks of the prepare segment (master
  /// fast-forward, fork, tool/VM construction) and the body loop; the two
  /// tile replay's clock and feed the -spdoctor replay diagnosis.
  os::Ticks PrepTicks = 0;
  os::Ticks BodyTicks = 0;
};

/// Aggregate outcome of a replay() call.
struct ReplayReport {
  uint64_t SlicesReplayed = 0;
  uint64_t ParityOk = 0;
  uint64_t ParityFailed = 0;
  uint64_t ReplayedInsts = 0;
  uint64_t PlaybackSyscalls = 0;
  uint64_t DuplicatedSyscalls = 0;
  /// Replay's deterministic clock at the end of the run (identical for
  /// every -spmp worker count; wall time is not).
  os::Ticks WallTicks = 0;
  std::string FiniOutput; ///< replay tool's Fini over the merged areas
  std::vector<ReplaySliceResult> Slices;

  // Host fault containment (-spmp only; always 0 on the serial path).
  uint64_t HostWorkerExceptions = 0; ///< bodies that died to a C++ exception
  uint64_t HostWatchdogKills = 0;    ///< bodies declared dead on the wall clock
  uint64_t HostFallbackSlices = 0;   ///< slices re-executed on this thread

  bool allOk() const { return ParityFailed == 0; }
};

/// Replays slices from \p Cap. The capture must outlive the engine.
class ReplayEngine {
public:
  ReplayEngine(const RunCapture &Cap, const os::CostModel &Model);

  /// Replays every captured slice in order.
  ReplayReport replayAll(const pin::ToolFactory &Factory);

  /// Replays the given subset (deduplicated, ascending). Out-of-range
  /// numbers are a fatal error.
  ReplayReport replay(const pin::ToolFactory &Factory,
                      std::vector<uint32_t> Nums);

  /// Attaches a trace recorder: replay emits ReplayForward spans (master
  /// lane) while rebuilding windows, a ReplaySlice span plus a parity
  /// instant per slice, and syscall-playback / JIT-compile instants, all
  /// on replay's own deterministic tick clock. Under -spmp the events are
  /// staged per slice and stitched in merge order onto a stitch clock that
  /// replays the serial timeline, so the trace is byte-identical for every
  /// worker count.
  void setTrace(obs::TraceRecorder *Recorder);

  /// Attaches an overhead-attribution collector (-spprof): master
  /// reconstruction accrues to the collector's master lane (native work),
  /// each replayed slice to its slice lane, on replay's deterministic
  /// clock. Attribution charges nothing, exactly as in the live engine.
  void setProfile(prof::ProfileCollector *Collector) { Prof = Collector; }

  /// Re-executes slice bodies on \p N host worker threads (-spmp; 0 =
  /// everything on the calling thread). Master reconstruction, forks, tool
  /// construction, and merges stay on the calling thread and slices retire
  /// in ascending slice order regardless of host finish order, so parity
  /// results, shared-area folds, profiles, fini output, and (via staged
  /// stitching) trace output are byte-identical for every N.
  void setHostWorkers(unsigned N) { HostWorkers = N; }

  /// Attaches a host wall-clock recorder (obs/HostTraceRecorder.h): the
  /// parallel replay path records per-worker spans and pool gauges into
  /// it. Ignored on the serial path (there is no pool to observe).
  void setHostTrace(obs::HostTraceRecorder *Recorder) {
    HostTrace = Recorder;
  }

  /// Host watchdog (-sphostwatchdog): wall-clock milliseconds the retire
  /// loop waits for a dispatched body's completion before declaring the
  /// worker dead and re-executing the slice on the calling thread. 0
  /// (default) waits forever — replay bodies are finite by construction,
  /// so the watchdog is opt-in here, unlike the live engine.
  void setHostWatchdogMs(uint64_t Ms) { HostWatchdogMs = Ms; }

  /// Test-only: runs on the worker at body start (before the body loop),
  /// with the slice number. A throwing hook exercises exception
  /// containment; a hook that spins until hostCancelRequested() exercises
  /// the watchdog ladder end to end.
  void setHostBodyHook(std::function<void(uint32_t)> H) {
    HostBodyHook = std::move(H);
  }

  /// Set once the watchdog declares any worker dead. Cooperative hang
  /// hooks poll it so a contained run can still join its pool cleanly.
  const std::atomic<bool> &hostCancelRequested() const { return HostCancel; }

private:
  const RunCapture &Cap;
  const os::CostModel &Model;
  os::Ticks InstCost;

  obs::TraceRecorder *Trace = nullptr;
  prof::ProfileCollector *Prof = nullptr;
  obs::HostTraceRecorder *HostTrace = nullptr;
  unsigned HostWorkers = 0;
  uint64_t HostWatchdogMs = 0;
  std::function<void(uint32_t)> HostBodyHook;
  std::atomic<bool> HostCancel{false};
  /// Replay's deterministic clock (replay runs outside the live
  /// scheduler): advances by the cost-model price of executed work.
  os::Ticks Now = 0;

  // Deterministic parallel tracing (-sptrace with -spmp): while the host
  // pool runs, every trace event is staged in its SliceRun with an offset
  // relative to its segment (prepare / body) and stitched into the master
  // recorder at retire time. StitchNow tiles [prepare)[body) per slice in
  // merge order, reproducing the serial timeline exactly; prepare-side
  // emitters (applyWindow) write through PrepSink with offsets relative to
  // PrepStartNow while it is set.
  bool StagingTrace = false;
  os::Ticks StitchNow = 0;
  obs::TraceSink *PrepSink = nullptr;
  os::Ticks PrepStartNow = 0;

  // Master reconstruction state: windows [0, NextWindow) applied.
  std::optional<os::Process> Master;
  std::optional<vm::Interpreter> Interp;
  uint32_t NextWindow = 0;
  uint64_t NextPid = 2;

  void resetMaster();
  /// Applies windows until window \p N is next (restarting if already
  /// past), leaving the master at slice N's fork point.
  void fastForwardTo(uint32_t N);
  /// Re-executes one window's instruction stream + syscalls on the master.
  void applyWindow(const sp::SliceCaptureData &W);

  ReplaySliceResult replaySlice(const sp::SliceCaptureData &W,
                                const pin::ToolFactory &Factory,
                                sp::SharedAreaRegistry &Areas);

  /// In-flight state of one slice re-execution, split so the body loop can
  /// run on a host worker between the (calling-thread) prepare and finish
  /// halves. Heap-allocated: the detection hook and end-slice hook capture
  /// stable pointers into it.
  struct SliceRun;

  /// Calling thread: fast-forwards the master to \p W's fork point,
  /// validates the start-state hash, forks the slice process, and builds
  /// its tool/VM (including shared-area creation and detection arming).
  std::unique_ptr<SliceRun> prepareSlice(const sp::SliceCaptureData &W,
                                         const pin::ToolFactory &Factory,
                                         sp::SharedAreaRegistry &Areas);
  /// The slice body loop. Worker-safe when \p HostThread: touches only the
  /// SliceRun's own state (never the engine clock, trace, or master).
  void runSliceBody(SliceRun &R, const sp::SliceCaptureData &W,
                    bool HostThread);
  /// Calling thread, in ascending slice order: merges shadows, judges
  /// parity, and (when \p HostMode) folds the body's consumed ticks into
  /// the engine clock.
  ReplaySliceResult finishSlice(SliceRun &R, const sp::SliceCaptureData &W,
                                bool HostMode);
};

} // namespace spin::replay

#endif // SUPERPIN_REPLAY_REPLAYENGINE_H
