//===- replay/Log.cpp - Persistent run-capture log format -----------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "replay/Log.h"

#include "support/BinaryStream.h"
#include "support/Json.h"
#include "support/RawOstream.h"

#include <algorithm>
#include <cstdio>

using namespace spin;
using namespace spin::replay;
using namespace spin::sp;

std::string_view spin::replay::endKindName(SliceEndKind Kind) {
  switch (Kind) {
  case SliceEndKind::Signature:
    return "signature";
  case SliceEndKind::SyscallBoundary:
    return "syscall";
  case SliceEndKind::AppExit:
    return "appexit";
  case SliceEndKind::ToolStop:
    return "toolstop";
  }
  return "unknown";
}

namespace {

uint64_t fnv1a(const uint8_t *Data, size_t Size) {
  uint64_t H = 0xcbf29ce484222325ULL;
  for (size_t I = 0; I != Size; ++I) {
    H ^= Data[I];
    H *= 0x100000001b3ULL;
  }
  return H;
}

void encodeProgram(const vm::Program &Prog, ByteWriter &W) {
  W.str(Prog.Name);
  W.u64(Prog.EntryPc);
  W.u64(Prog.Text.size());
  for (const vm::Instruction &I : Prog.Text) {
    W.u8(static_cast<uint8_t>(I.Op));
    W.u8(I.A);
    W.u8(I.B);
    W.u8(I.C);
    W.i64(I.Imm);
  }
  W.bytes(Prog.DataInit.data(), Prog.DataInit.size());
  // Symbols travel sorted by name so identical programs encode to
  // identical bytes regardless of hash-map iteration order.
  std::vector<std::pair<std::string, uint64_t>> Syms(Prog.Symbols.begin(),
                                                     Prog.Symbols.end());
  std::sort(Syms.begin(), Syms.end());
  W.u64(Syms.size());
  for (const auto &[Name, Addr] : Syms) {
    W.str(Name);
    W.u64(Addr);
  }
}

vm::Program decodeProgram(ByteReader &R) {
  vm::Program Prog;
  Prog.Name = R.str();
  Prog.EntryPc = R.u64();
  uint64_t NumInsts = R.u64();
  for (uint64_t I = 0; I != NumInsts && !R.failed(); ++I) {
    vm::Instruction Inst;
    Inst.Op = static_cast<vm::Opcode>(R.u8());
    Inst.A = R.u8();
    Inst.B = R.u8();
    Inst.C = R.u8();
    Inst.Imm = R.i64();
    Prog.Text.push_back(Inst);
  }
  Prog.DataInit = R.bytes();
  uint64_t NumSyms = R.u64();
  for (uint64_t I = 0; I != NumSyms && !R.failed(); ++I) {
    std::string Name = R.str();
    uint64_t Addr = R.u64();
    Prog.Symbols.emplace(std::move(Name), Addr);
  }
  return Prog;
}

void encodeSignature(const SliceSignature &Sig, ByteWriter &W) {
  W.u64(Sig.Pc);
  for (uint64_t Reg : Sig.Regs)
    W.u64(Reg);
  for (uint64_t Word : Sig.Stack)
    W.u64(Word);
  W.u8(Sig.QuickReg0);
  W.u8(Sig.QuickReg1);
  W.boolean(Sig.QuickRegsChosen);
  W.boolean(Sig.HasMemSig);
  W.u64(Sig.MemSigAddr);
  W.u64(Sig.MemSigValue);
  W.u64(Sig.ThreadPcs.size());
  for (uint64_t Pc : Sig.ThreadPcs)
    W.u64(Pc);
  W.u32(Sig.CurThread);
  W.u64(Sig.QuantumLeft);
}

SliceSignature decodeSignature(ByteReader &R) {
  SliceSignature Sig;
  Sig.Pc = R.u64();
  for (uint64_t &Reg : Sig.Regs)
    Reg = R.u64();
  for (uint64_t &Word : Sig.Stack)
    Word = R.u64();
  Sig.QuickReg0 = R.u8();
  Sig.QuickReg1 = R.u8();
  Sig.QuickRegsChosen = R.boolean();
  Sig.HasMemSig = R.boolean();
  Sig.MemSigAddr = R.u64();
  Sig.MemSigValue = R.u64();
  uint64_t NumPcs = R.u64();
  for (uint64_t I = 0; I != NumPcs && !R.failed(); ++I)
    Sig.ThreadPcs.push_back(R.u64());
  Sig.CurThread = R.u32();
  Sig.QuantumLeft = R.u64();
  return Sig;
}

void encodeSlice(const SliceCaptureData &S, ByteWriter &W) {
  W.u32(S.Num);
  W.u64(S.StartIndex);
  W.u64(S.StartStateHash);
  W.u8(static_cast<uint8_t>(S.EndKind));
  W.boolean(S.Spilled);
  W.u64(S.ExpectedInsts);
  W.u64(S.RetiredInsts);
  encodeSignature(S.Sig, W);
  W.u64(S.Sys.size());
  for (const CapturedSyscall &CS : S.Sys) {
    W.u8(static_cast<uint8_t>(CS.Kind));
    os::encodeSyscallEffects(CS.Effects, W);
  }
  W.u64(S.AreaSnapshots.size());
  for (const std::vector<uint8_t> &Area : S.AreaSnapshots)
    W.bytes(Area.data(), Area.size());
}

SliceCaptureData decodeSlice(ByteReader &R) {
  SliceCaptureData S;
  S.Num = R.u32();
  S.StartIndex = R.u64();
  S.StartStateHash = R.u64();
  S.EndKind = static_cast<SliceEndKind>(R.u8());
  S.Spilled = R.boolean();
  S.ExpectedInsts = R.u64();
  S.RetiredInsts = R.u64();
  S.Sig = decodeSignature(R);
  uint64_t NumSys = R.u64();
  for (uint64_t I = 0; I != NumSys && !R.failed(); ++I) {
    CapturedSyscall CS;
    CS.Kind = static_cast<CapturedSysKind>(R.u8());
    CS.Effects = os::decodeSyscallEffects(R);
    S.Sys.push_back(std::move(CS));
  }
  uint64_t NumAreas = R.u64();
  for (uint64_t I = 0; I != NumAreas && !R.failed(); ++I)
    S.AreaSnapshots.push_back(R.bytes());
  return S;
}

/// Decodes everything between the magic/version words and the slice list.
void decodeConfigAndResults(ByteReader &R, RunCapture &Cap) {
  Cap.Prog = decodeProgram(R);
  Cap.Cpi = R.f64();
  Cap.SliceMs = R.u64();
  Cap.MaxSlices = R.u32();
  Cap.MaxSysRecs = R.u64();
  Cap.QuickCheck = R.boolean();
  Cap.MemSignature = R.boolean();
  Cap.DeferSlices = R.boolean();
  Cap.MasterInsts = R.u64();
  Cap.SliceInsts = R.u64();
  Cap.SpilledSlices = R.u64();
  Cap.ExitCode = static_cast<int>(R.i64());
  Cap.Output = R.str();
}

bool readFileBytes(const std::string &Path, std::vector<uint8_t> &Bytes) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return false;
  uint8_t Buf[1 << 16];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Bytes.insert(Bytes.end(), Buf, Buf + N);
  std::fclose(F);
  return true;
}

} // namespace

std::vector<uint8_t>
spin::replay::encodeCapture(const RunCapture &Cap,
                            std::vector<SliceIndexEntry> *Index) {
  ByteWriter W;
  W.u32(LogMagic);
  W.u32(LogVersion);
  encodeProgram(Cap.Prog, W);
  W.f64(Cap.Cpi);
  W.u64(Cap.SliceMs);
  W.u32(Cap.MaxSlices);
  W.u64(Cap.MaxSysRecs);
  W.boolean(Cap.QuickCheck);
  W.boolean(Cap.MemSignature);
  W.boolean(Cap.DeferSlices);
  W.u64(Cap.MasterInsts);
  W.u64(Cap.SliceInsts);
  W.u64(Cap.SpilledSlices);
  W.i64(Cap.ExitCode);
  W.str(Cap.Output);
  W.u64(Cap.Slices.size());
  for (const SliceCaptureData &S : Cap.Slices) {
    size_t Begin = W.size();
    encodeSlice(S, W);
    if (Index)
      Index->push_back({S.Num, Begin, W.size() - Begin});
  }
  const std::vector<uint8_t> &Payload = W.buffer();
  W.u64(fnv1a(Payload.data(), Payload.size()));
  return W.take();
}

std::optional<RunCapture>
spin::replay::decodeCapture(const std::vector<uint8_t> &Bytes,
                            std::string *Err) {
  auto Fail = [&](std::string_view Why) {
    if (Err)
      *Err = std::string(Why);
    return std::nullopt;
  };
  if (Bytes.size() < 16)
    return Fail("capture log truncated");
  // The checksum covers everything before its own 8 bytes.
  ByteReader Tail(Bytes.data() + Bytes.size() - 8, 8);
  if (Tail.u64() != fnv1a(Bytes.data(), Bytes.size() - 8))
    return Fail("capture log checksum mismatch (corrupt or truncated)");

  ByteReader R(Bytes.data(), Bytes.size() - 8);
  if (R.u32() != LogMagic)
    return Fail("not a capture log (bad magic)");
  if (uint32_t V = R.u32(); V != LogVersion)
    return Fail("unsupported capture log version " + std::to_string(V));
  RunCapture Cap;
  decodeConfigAndResults(R, Cap);
  uint64_t NumSlices = R.u64();
  for (uint64_t I = 0; I != NumSlices && !R.failed(); ++I)
    Cap.Slices.push_back(decodeSlice(R));
  if (!R.exhausted())
    return Fail("malformed capture log payload");
  return Cap;
}

std::string spin::replay::sidecarPath(const std::string &Path) {
  return Path + ".json";
}

static void writeSidecar(const RunCapture &Cap,
                         const std::vector<SliceIndexEntry> &Index,
                         RawOstream &OS) {
  JsonWriter J(OS);
  J.beginObject();
  J.field("format", "sprl");
  J.field("version", LogVersion);
  J.field("program", Cap.Prog.Name);
  J.field("masterinsts", Cap.MasterInsts);
  J.field("sliceinsts", Cap.SliceInsts);
  J.field("spilled", Cap.SpilledSlices);
  J.field("exitcode", static_cast<int64_t>(Cap.ExitCode));
  J.key("slices").beginArray();
  for (size_t I = 0; I != Cap.Slices.size(); ++I) {
    const sp::SliceCaptureData &S = Cap.Slices[I];
    J.beginObject();
    J.field("num", S.Num);
    J.field("start", S.StartIndex);
    J.field("insts", S.ExpectedInsts);
    J.field("retired", S.RetiredInsts);
    J.field("end", endKindName(S.EndKind));
    J.field("spilled", S.Spilled);
    J.field("syscalls", static_cast<uint64_t>(S.Sys.size()));
    J.field("offset", Index[I].Offset);
    J.field("size", Index[I].Size);
    J.endObject();
  }
  J.endArray();
  J.endObject();
  OS << "\n";
}

bool spin::replay::saveCapture(const RunCapture &Cap, const std::string &Path,
                               std::string *Err) {
  std::vector<SliceIndexEntry> Index;
  std::vector<uint8_t> Bytes = encodeCapture(Cap, &Index);

  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F) {
    if (Err)
      *Err = "cannot open '" + Path + "' for writing";
    return false;
  }
  size_t Written = std::fwrite(Bytes.data(), 1, Bytes.size(), F);
  bool Ok = Written == Bytes.size() && std::fclose(F) == 0;
  if (!Ok) {
    if (Err)
      *Err = "short write to '" + Path + "'";
    return false;
  }

  std::FILE *SF = std::fopen(sidecarPath(Path).c_str(), "wb");
  if (!SF) {
    if (Err)
      *Err = "cannot open '" + sidecarPath(Path) + "' for writing";
    return false;
  }
  {
    RawFdOstream OS(SF);
    writeSidecar(Cap, Index, OS);
    OS.flush();
  }
  if (std::fclose(SF) != 0) {
    if (Err)
      *Err = "short write to '" + sidecarPath(Path) + "'";
    return false;
  }
  return true;
}

std::optional<RunCapture> spin::replay::loadCapture(const std::string &Path,
                                                    std::string *Err) {
  std::vector<uint8_t> Bytes;
  if (!readFileBytes(Path, Bytes)) {
    if (Err)
      *Err = "cannot open '" + Path + "'";
    return std::nullopt;
  }
  return decodeCapture(Bytes, Err);
}

/// Slice-record offsets from the JSON sidecar, the resync map for
/// loadCaptureLenient. Empty when the sidecar is missing or unparsable.
static std::vector<SliceIndexEntry>
loadSidecarIndex(const std::string &Path) {
  std::vector<SliceIndexEntry> Index;
  std::vector<uint8_t> Bytes;
  if (!readFileBytes(sidecarPath(Path), Bytes))
    return Index;
  std::string Text(Bytes.begin(), Bytes.end());
  std::optional<JsonValue> Doc = parseJson(Text);
  if (!Doc)
    return Index;
  const JsonValue *Slices = Doc->get("slices");
  if (!Slices)
    return Index;
  for (const JsonValue &S : Slices->array()) {
    const JsonValue *Num = S.get("num");
    const JsonValue *Off = S.get("offset");
    const JsonValue *Size = S.get("size");
    if (!Num || !Off || !Size)
      continue;
    Index.push_back({static_cast<uint32_t>(Num->asUInt()), Off->asUInt(),
                     Size->asUInt()});
  }
  return Index;
}

std::optional<RunCapture>
spin::replay::loadCaptureLenient(const std::string &Path, bool SkipCorrupt,
                                 LogDiagnosis *Diag,
                                 std::vector<uint32_t> *Skipped) {
  LogDiagnosis Local;
  LogDiagnosis &D = Diag ? *Diag : Local;
  D = LogDiagnosis();

  std::vector<uint8_t> Bytes;
  if (!readFileBytes(Path, Bytes)) {
    D.Reason = "cannot open '" + Path + "'";
    return std::nullopt;
  }
  D.FileSize = Bytes.size();
  if (Bytes.size() < 16) {
    D.Truncated = true;
    D.Offset = Bytes.size();
    D.Reason = "capture log truncated (shorter than header + checksum)";
    return std::nullopt;
  }
  size_t PaySize = Bytes.size() - 8;
  {
    ByteReader Tail(Bytes.data() + PaySize, 8);
    D.ExpectedChecksum = Tail.u64();
  }
  D.ActualChecksum = fnv1a(Bytes.data(), PaySize);
  if (D.ExpectedChecksum != D.ActualChecksum) {
    D.ChecksumMismatch = true;
    D.Offset = PaySize;
    D.Reason = "capture log checksum mismatch (corrupt or truncated)";
    if (!SkipCorrupt)
      return std::nullopt;
    // Best-effort decode below; per-record sanity limits the damage.
  }

  ByteReader R(Bytes.data(), PaySize);
  if (R.u32() != LogMagic) {
    D.Offset = 0;
    D.Reason = "not a capture log (bad magic)";
    return std::nullopt;
  }
  if (uint32_t V = R.u32(); V != LogVersion) {
    D.Offset = 4;
    D.Reason = "unsupported capture log version " + std::to_string(V);
    return std::nullopt;
  }
  RunCapture Cap;
  decodeConfigAndResults(R, Cap);
  uint64_t NumSlices = R.u64();
  if (R.failed()) {
    // Nothing to resync to: the program image itself is unusable.
    D.Offset = R.position();
    D.Reason = "malformed capture log header";
    return std::nullopt;
  }

  std::vector<SliceIndexEntry> Index;
  bool IndexLoaded = false;
  auto NextSync = [&](uint64_t After) -> uint64_t {
    if (!IndexLoaded) {
      Index = loadSidecarIndex(Path);
      IndexLoaded = true;
    }
    uint64_t Best = 0;
    for (const SliceIndexEntry &E : Index)
      if (E.Offset > After && E.Offset < PaySize &&
          (Best == 0 || E.Offset < Best))
        Best = E.Offset;
    return Best;
  };

  // A slice record is hundreds of bytes at minimum; a count that cannot
  // possibly fit is itself corruption. Fall back to the sidecar's count.
  if (NumSlices > (PaySize - R.position()) / 64 + 1) {
    D.Offset = R.position() - 8;
    D.Reason = "implausible slice count " + std::to_string(NumSlices);
    if (!SkipCorrupt)
      return std::nullopt;
    NextSync(0); // Force the sidecar load.
    NumSlices = Index.size();
  }

  uint64_t Cursor = R.position();
  for (uint64_t I = 0; I != NumSlices; ++I) {
    if (Cursor >= PaySize) {
      if (D.Reason.empty()) {
        D.Truncated = true;
        D.Offset = Cursor;
        D.RecordIndex = I;
        D.Reason = "capture log truncated at slice record " +
                   std::to_string(I);
      }
      if (!SkipCorrupt)
        return std::nullopt;
      if (Skipped)
        Skipped->push_back(static_cast<uint32_t>(I));
      continue; // Count every missing record, there is nothing to decode.
    }
    ByteReader SR(Bytes.data() + Cursor, PaySize - Cursor);
    SliceCaptureData S = decodeSlice(SR);
    // The record's own number doubles as a cheap integrity check: encode
    // writes slices in order, so a mismatch means garbage decoded
    // "successfully".
    if (!SR.failed() && S.Num == I) {
      Cursor += SR.position();
      Cap.Slices.push_back(std::move(S));
      continue;
    }
    if (D.Reason.empty()) {
      D.Offset = Cursor;
      D.RecordIndex = I;
      D.Reason = "corrupt slice record " + std::to_string(I) +
                 " at byte offset " + std::to_string(Cursor);
    }
    if (!SkipCorrupt)
      return std::nullopt;
    if (Skipped)
      Skipped->push_back(static_cast<uint32_t>(I));
    uint64_t Next = NextSync(Cursor);
    if (Next == 0) {
      // No later record to resync to; everything after this is lost.
      for (uint64_t J = I + 1; J < NumSlices; ++J)
        if (Skipped)
          Skipped->push_back(static_cast<uint32_t>(J));
      break;
    }
    Cursor = Next;
  }
  if (Cursor != PaySize && D.Reason.empty()) {
    D.Offset = Cursor;
    D.Reason = "malformed capture log payload (trailing bytes)";
    if (!SkipCorrupt)
      return std::nullopt;
  }
  return Cap;
}
