//===- replay/CaptureWriter.h - CaptureSink -> RunCapture -------*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The standard CaptureSink implementation (-sprecord): accumulates the
/// engine's capture events into an in-memory RunCapture, which the caller
/// saves with Log.h's saveCapture after the run returns.
///
///   replay::CaptureWriter Writer;
///   Opts.Capture = &Writer;
///   runSuperPin(Prog, Factory, Opts, Model);
///   Writer.save("run.sprl", &Err);
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_REPLAY_CAPTUREWRITER_H
#define SUPERPIN_REPLAY_CAPTUREWRITER_H

#include "replay/Log.h"

namespace spin::replay {

class CaptureWriter final : public sp::CaptureSink {
public:
  void onRunBegin(const vm::Program &Prog, const sp::SpOptions &Opts) override;
  void onWindowCaptured(sp::SliceCaptureData Data) override;
  void onSliceMerged(uint32_t Num, uint64_t RetiredInsts,
                     std::vector<std::vector<uint8_t>> AreaSnapshots) override;
  void onRunEnd(const sp::SpRunReport &Report) override;

  /// The accumulated capture (complete once onRunEnd fired).
  const RunCapture &capture() const { return Cap; }
  RunCapture take() { return std::move(Cap); }

  /// Convenience: saveCapture(capture(), Path, Err).
  bool save(const std::string &Path, std::string *Err = nullptr) const {
    return saveCapture(Cap, Path, Err);
  }

private:
  RunCapture Cap;
};

} // namespace spin::replay

#endif // SUPERPIN_REPLAY_CAPTUREWRITER_H
