//===- replay/ReplayEngine.cpp - Deferred-slice replay --------------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Two layers, mirroring the live engine's split:
//
//  * Master reconstruction (resetMaster/fastForwardTo/applyWindow): the
//    uninstrumented interpreter re-runs the captured instruction stream.
//    Chunking mirrors MasterTask::runChunk — every chunk is capped at the
//    remaining thread quantum, quantum-expired threads drain to the next
//    block boundary, rotation happens under the same condition — so the
//    schedule replays bit-exactly regardless of where replay's chunk
//    boundaries fall. Each window start is validated against the capture's
//    hashMachineState record.
//
//  * Slice re-execution (replaySlice): mirrors SliceTask::runSlice /
//    handleSyscall against the captured syscall stream, with the capture's
//    extra recording (duplicable effects, the boundary syscall) making the
//    stream self-delimiting: a Boundary entry is the end-of-window marker.
//
//===----------------------------------------------------------------------===//

#include "replay/ReplayEngine.h"

#include "host/CompletionQueue.h"
#include "host/WorkerPool.h"
#include "obs/HostTraceRecorder.h"
#include "obs/TraceRecorder.h"
#include "os/Kernel.h"
#include "os/Scheduler.h"
#include "pin/CodeCache.h"
#include "pin/PinVm.h"
#include "prof/Profile.h"
#include "support/ErrorHandling.h"
#include "support/RawOstream.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <deque>

using namespace spin;
using namespace spin::os;
using namespace spin::pin;
using namespace spin::replay;
using namespace spin::sp;
using namespace spin::vm;

/// Ticks granted per replay step; replay runs outside the discrete-time
/// scheduler, so the "budget" only bounds work between loop iterations.
static constexpr Ticks ReplayStepTicks = 1'000'000'000;

namespace {

/// One trace event staged during a host-parallel replay, with a tick
/// offset relative to its segment start (prepare start or body start)
/// instead of an absolute timestamp. Stitching rebases the offset onto
/// the merge-order stitch clock, which replays the serial timeline.
struct StagedTraceEvent {
  Ticks Offset;
  uint64_t Arg;
  uint32_t Lane;
  obs::EventKind Kind;
  obs::EventPhase Phase;
};

/// TraceSink that appends to a SliceRun-owned staging vector. The Ts the
/// caller passes is already a segment-relative offset.
class StagingSink final : public obs::TraceSink {
public:
  explicit StagingSink(std::vector<StagedTraceEvent> &Out) : Out(Out) {}
  void push(uint32_t Lane, obs::EventKind K, obs::EventPhase Ph, Ticks Ts,
            uint64_t Arg) override {
    Out.push_back({Ts, Arg, Lane, K, Ph});
  }

private:
  std::vector<StagedTraceEvent> &Out;
};

} // namespace

ReplayEngine::ReplayEngine(const RunCapture &Cap, const CostModel &Model)
    : Cap(Cap), Model(Model),
      InstCost(static_cast<Ticks>(
          std::llround(Cap.Cpi * static_cast<double>(Model.TicksPerInst)))) {
  resetMaster();
}

void ReplayEngine::setTrace(obs::TraceRecorder *Recorder) {
  Trace = Recorder;
  if (Trace) {
    Trace->setProcessName("spin-replay");
    Trace->setLaneName(obs::TraceRecorder::MasterLane, "replay-master");
  }
}

void ReplayEngine::resetMaster() {
  Master.emplace(Process::create(Cap.Prog));
  // Interp holds references into Master; rebuild it after every reset.
  Interp.emplace(Cap.Prog, Master->Cpu, Master->Mem);
  // §4.1 bubble, exactly as MasterTask::allocateBubble materializes it.
  for (uint64_t P = 0; P != SpBubblePages; ++P)
    Master->Mem.write64(AddressLayout::BubbleBase + P * vm::PageSize, 0);
  NextWindow = 0;
  NextPid = 2;
}

void ReplayEngine::fastForwardTo(uint32_t N) {
  if (N < NextWindow)
    resetMaster();
  while (NextWindow < N) {
    applyWindow(Cap.Slices[NextWindow]);
    ++NextWindow;
  }
}

void ReplayEngine::applyWindow(const SliceCaptureData &W) {
  if (Interp->instructionsRetired() != W.StartIndex)
    reportFatalError("replay: window " + std::to_string(W.Num) +
                     " does not start at the master's position");
  // Under staged tracing, master-reconstruction events go to the current
  // slice's prepare buffer with offsets relative to the prepare start.
  obs::TraceSink *Sink =
      PrepSink ? PrepSink : static_cast<obs::TraceSink *>(Trace);
  auto TraceTs = [this] { return PrepSink ? Now - PrepStartNow : Now; };
  if (Sink)
    Sink->begin(obs::TraceRecorder::MasterLane, obs::EventKind::ReplayForward,
                TraceTs(), W.Num);
  uint64_t End = W.StartIndex + W.ExpectedInsts;
  size_t SysPos = 0;
  while (Interp->instructionsRetired() < End &&
         Master->Status == ProcStatus::Running) {
    uint64_t Max = End - Interp->instructionsRetired();
    RunResult R;
    if (Master->quantumExpired()) {
      R = Interp->runToBlockEnd(Max);
    } else {
      if (Max > Master->quantumLeft())
        Max = Master->quantumLeft();
      R = Interp->run(Max);
    }
    Master->noteRetired(R.InstsExecuted);
    Now += R.InstsExecuted * InstCost;
    if (Prof) {
      Prof->master().noteNative(R.InstsExecuted * InstCost);
      Prof->master().noteConsumed(R.InstsExecuted * InstCost);
    }
    switch (R.Reason) {
    case StopReason::Syscall: {
      if (SysPos == W.Sys.size())
        reportFatalError("replay: master syscall not in window " +
                         std::to_string(W.Num) + "'s capture record");
      const CapturedSyscall &CS = W.Sys[SysPos++];
      uint64_t Number = pendingSyscallNumber(*Master);
      if (CS.Effects.Number != Number)
        reportFatalError("replay: master diverged from window " +
                         std::to_string(W.Num) + "'s syscall sequence");
      // Duplicable syscalls re-execute so kernel state (brk, mmap cursor,
      // RNG) evolves as it did live; so do the thread syscalls, which
      // playback cannot reproduce (they switch the current thread). All
      // other effects — including clock reads and file-creating opens,
      // whose downstream reads also play back — apply verbatim.
      bool Reexecute =
          CS.Kind == CapturedSysKind::Duplicate ||
          Number == static_cast<uint64_t>(Sys::ThreadCreate) ||
          Number == static_cast<uint64_t>(Sys::ThreadExit);
      if (Reexecute) {
        SystemContext Ctx;
        Ctx.SuppressOutput = true;
        Ctx.Trace = Sink;
        Ctx.TraceLane = obs::TraceRecorder::MasterLane;
        Ctx.TraceNow = TraceTs();
        serviceSyscall(*Master, Ctx, nullptr);
      } else {
        playbackSyscall(*Master, CS.Effects);
      }
      Interp->noteSyscallRetired();
      Master->noteRetired(1);
      Now += InstCost + Model.SyscallCost;
      if (Prof) {
        Prof->master().noteNative(InstCost + Model.SyscallCost);
        Prof->master().noteConsumed(InstCost + Model.SyscallCost);
      }
      break;
    }
    case StopReason::Halt:
    case StopReason::BadPc:
      reportFatalError("replay: master fault while rebuilding window " +
                       std::to_string(W.Num));
    case StopReason::Budget:
    case StopReason::BlockEnd:
      break;
    }
    if (Master->quantumExpired() && (R.Reason == StopReason::BlockEnd ||
                                     R.Reason == StopReason::Syscall ||
                                     R.EndedAtBlockBoundary))
      Master->rotateThread();
  }
  if (SysPos != W.Sys.size())
    reportFatalError("replay: window " + std::to_string(W.Num) + " ended with " +
                     std::to_string(W.Sys.size() - SysPos) +
                     " unconsumed syscall records");
  if (Sink)
    Sink->end(obs::TraceRecorder::MasterLane, obs::EventKind::ReplayForward,
              TraceTs(), W.Num);
}

/// Everything one slice re-execution needs across the prepare / body /
/// finish split. Heap-allocated and address-stable: the detection and
/// end-slice hooks capture pointers into it, and under -spmp the body
/// half runs on a host worker while the engine prepares later slices.
struct ReplayEngine::SliceRun {
  ReplaySliceResult Res;
  uint32_t Lane = 0;
  std::optional<Process> Proc;
  std::optional<SliceServices> Services;
  std::unique_ptr<Tool> ToolInst;
  std::unique_ptr<CodeCache> Cache;
  std::unique_ptr<PinVm> Vm;
  prof::SliceProfile *SliceProf = nullptr;

  // The recorded in-window stream; a trailing Boundary entry (if any) is
  // the window's end marker, counted but never executed by the slice.
  size_t InWindow = 0;
  size_t SysPos = 0;

  TickLedger Ledger;
  SignatureStats SigSt;
  bool End = false;
  // Runaway guard: a missed boundary (e.g. a tool that perturbs control
  // flow) must surface as divergence, not an endless loop.
  uint64_t RunawayCap = 0;
  /// Virtual ticks the body consumed; folded into the engine clock at
  /// finish time when the body ran on a worker (the worker must never
  /// touch the engine clock itself).
  Ticks BodyTicks = 0;
  /// Host mode only: extra references to every page the fork shares with
  /// the master, held until this run retires. Serial replay gets the same
  /// guarantee for free — the master cannot advance (and privatize pages)
  /// while a body runs on its own thread — so pinning keeps the body's
  /// COW-copy charge sequence identical and makes the in-place-write /
  /// COW-read race between the fast-forwarding master and the worker
  /// impossible (see GuestMemory::pinPages).
  std::vector<std::shared_ptr<const void>> PagePins;
  /// Staged tracing (-sptrace with -spmp): prepare-segment events (master
  /// reconstruction + the ReplaySlice begin) and body-segment events, with
  /// offsets relative to their segment start; stitched in merge order at
  /// finish time. Body staging is worker-written, SliceRun-owned state.
  std::vector<StagedTraceEvent> PrepEvents, BodyEvents;
  std::optional<StagingSink> PrepStage, BodyStage;
  Ticks PrepTicks = 0;

  void diverge(std::string Why) {
    Res.Diverged = true;
    Res.Note = std::move(Why);
    End = true;
    Vm->disarmDetection();
  }
  void endSlice(SliceEndKind Kind) {
    Res.EndKind = Kind;
    End = true;
    Vm->disarmDetection();
  }
};

std::unique_ptr<ReplayEngine::SliceRun>
ReplayEngine::prepareSlice(const SliceCaptureData &W,
                           const ToolFactory &Factory,
                           SharedAreaRegistry &Areas) {
  auto Run = std::make_unique<SliceRun>();
  SliceRun *R = Run.get();
  R->Res.Num = W.Num;
  const Ticks PrepBegin = Now;
  if (StagingTrace) {
    R->PrepStage.emplace(R->PrepEvents);
    R->BodyStage.emplace(R->BodyEvents);
    PrepSink = &*R->PrepStage;
    PrepStartNow = Now;
  }

  fastForwardTo(W.Num);
  if (hashMachineState(*Master, Interp->instructionsRetired()) !=
      W.StartStateHash)
    reportFatalError("replay: reconstructed master state diverges from the "
                     "capture at slice " + std::to_string(W.Num) +
                     "'s fork point");

  R->Lane = obs::TraceRecorder::sliceLane(W.Num);
  if (Trace) {
    // Lane naming goes straight to the recorder: names render in lane
    // order regardless of registration order, so this is stitch-safe.
    Trace->setLaneName(R->Lane, "replay-slice-" + std::to_string(W.Num));
    if (StagingTrace)
      R->PrepStage->begin(R->Lane, obs::EventKind::ReplaySlice,
                          Now - PrepStartNow, W.Num);
    else
      Trace->begin(R->Lane, obs::EventKind::ReplaySlice, Now, W.Num);
  }

  R->Proc.emplace(Master->fork(NextPid++));
  R->Proc->Mem.discardRange(AddressLayout::BubbleBase,
                            SpBubblePages * vm::PageSize);
  R->Services.emplace(Areas, W.Num);
  R->ToolInst = Factory(*R->Services);
  R->Cache = std::make_unique<CodeCache>();
  PinVmConfig Cfg;
  Cfg.InstCost = InstCost;
  Cfg.SliceNum = W.Num;
  R->SliceProf = Prof ? &Prof->slice(W.Num) : nullptr;
  Cfg.Prof = R->SliceProf;
  if (Trace) {
    Cfg.TraceLane = R->Lane;
    if (StagingTrace) {
      // The body's jit.* instants stage with BodyTicks offsets; the clock
      // lambda reads only SliceRun state, so it is worker-safe.
      Cfg.Trace = &*R->BodyStage;
      Cfg.TraceClock = [R] { return R->BodyTicks; };
    } else {
      Cfg.Trace = Trace;
      Cfg.TraceClock = [this] { return Now; };
    }
  }
  R->Vm = std::make_unique<PinVm>(*R->Proc, Model, R->ToolInst.get(),
                                  *R->Cache, Cfg);
  R->Services->setEndSliceHook([R] { R->Vm->requestStop(); });
  R->ToolInst->onSliceBegin(W.Num);

  R->InWindow = W.Sys.size();
  if (R->InWindow && W.Sys.back().Kind == CapturedSysKind::Boundary)
    --R->InWindow;

  if (W.EndKind == SliceEndKind::Signature) {
    auto Hook = [this, R, &W](TickLedger &L) {
      // Mirrors SliceTask::installDetection: the boundary state includes
      // the recorded syscalls' effects, so detection is meaningless (and
      // known false) while any are pending — but the check still runs and
      // is charged, as in the paper.
      if (R->SysPos != R->InWindow) {
        if (Cap.QuickCheck) {
          L.charge(Model.InlinedCheckCost);
          ++R->SigSt.QuickChecks;
        } else {
          L.charge(Model.SigFullCheckCost);
          ++R->SigSt.FullChecks;
        }
        return false;
      }
      return checkSignature(W.Sig, *R->Proc, Model, Cap.QuickCheck,
                            R->Vm->runCapRemaining(), L, R->SigSt);
    };
    prof::SliceProfile *SliceProf = R->SliceProf;
    R->Vm->armDetection(W.Sig.Pc, [Hook, SliceProf](TickLedger &L) {
      if (!SliceProf)
        return Hook(L);
      Ticks Base = L.totalCharged();
      bool Found = Hook(L);
      SliceProf->charge(prof::Cause::SigSearch, L.totalCharged() - Base);
      return Found;
    });
  }

  R->RunawayCap = W.ExpectedInsts * 2 + 10'000;
  R->PrepTicks = Now - PrepBegin;
  if (StagingTrace)
    PrepSink = nullptr;
  return Run;
}

void ReplayEngine::runSliceBody(SliceRun &R, const SliceCaptureData &W,
                                bool HostThread) {
  while (!R.End) {
    R.Ledger.beginStep(ReplayStepTicks);
    R.Vm->setRunCap(R.Proc->quantumExpired() ? 0 : R.Proc->quantumLeft());
    uint64_t Before = R.Vm->retired();
    VmStop Stop = R.Vm->run(R.Ledger);
    R.Proc->noteRetired(R.Vm->retired() - Before);
    switch (Stop) {
    case VmStop::Budget:
    case VmStop::InstCap:
      break;
    case VmStop::Detected:
      R.endSlice(SliceEndKind::Signature);
      break;
    case VmStop::ToolStop:
      R.endSlice(SliceEndKind::ToolStop);
      break;
    case VmStop::Syscall: {
      uint64_t Number = pendingSyscallNumber(*R.Proc);
      R.ToolInst->onSyscall(Number);
      if (R.SysPos < R.InWindow) {
        const CapturedSyscall &CS = W.Sys[R.SysPos++];
        if (CS.Effects.Number != Number) {
          R.diverge("syscall sequence diverged from the capture");
          break;
        }
        if (CS.Kind == CapturedSysKind::Playback) {
          playbackSyscall(*R.Proc, CS.Effects);
          ++R.Res.PlaybackSyscalls;
          // Staged body events carry BodyTicks offsets (worker-safe:
          // SliceRun-owned state only); the direct path stamps the engine
          // clock, which only the serial path may read.
          if (R.BodyStage)
            R.BodyStage->instant(R.Lane, obs::EventKind::SysPlayback,
                                 R.BodyTicks, Number);
          else if (Trace)
            Trace->instant(R.Lane, obs::EventKind::SysPlayback, Now, Number);
        } else {
          SystemContext Ctx;
          Ctx.SuppressOutput = true;
          Ctx.TraceLane = R.Lane;
          if (R.BodyStage) {
            Ctx.Trace = &*R.BodyStage;
            Ctx.TraceNow = R.BodyTicks;
          } else {
            Ctx.Trace = Trace;
            Ctx.TraceNow = Trace ? Now : 0;
          }
          serviceSyscall(*R.Proc, Ctx, nullptr);
          ++R.Res.DuplicatedSyscalls;
        }
        R.Vm->noteSyscallRetired();
        R.Proc->noteRetired(1);
        if (R.Proc->Status == ProcStatus::Exited)
          R.endSlice(SliceEndKind::AppExit);
        break;
      }
      if (R.SysPos < W.Sys.size()) {
        // The boundary marker: counted (its IPOINT_BEFORE analysis ran),
        // executed only by the master; the successor starts after it.
        if (W.Sys[R.SysPos].Effects.Number != Number) {
          R.diverge("boundary syscall diverged from the capture");
          break;
        }
        ++R.SysPos;
        R.Vm->noteSyscallRetired();
        R.endSlice(SliceEndKind::SyscallBoundary);
        break;
      }
      R.diverge("overran the window into an unrecorded syscall");
      break;
    }
    case VmStop::BadPc:
      R.diverge("control left the text segment");
      break;
    }
    if (R.Proc->quantumExpired() && !R.End &&
        (Stop == VmStop::InstCap || Stop == VmStop::Syscall)) {
      R.Proc->rotateThread();
      R.Vm->noteContextSwitch();
    }
    if (!R.End && R.Vm->retired() > R.RunawayCap)
      R.diverge("ran past the window without reaching its boundary");
    R.BodyTicks += R.Ledger.used();
    if (!HostThread)
      Now += R.Ledger.used();
    if (R.SliceProf)
      R.SliceProf->noteConsumed(R.Ledger.used());
  }
}

ReplaySliceResult ReplayEngine::finishSlice(SliceRun &R,
                                            const SliceCaptureData &W,
                                            bool HostMode) {
  if (HostMode)
    Now += R.BodyTicks;
  R.ToolInst->onSliceEnd(W.Num);
  R.Services->mergeShadows();
  R.Res.RetiredInsts = R.Vm->retired();
  R.Res.PrepTicks = R.PrepTicks;
  R.Res.BodyTicks = R.BodyTicks;
  R.Res.ParityOk = !R.Res.Diverged && R.Res.EndKind == W.EndKind &&
                   R.Res.RetiredInsts == W.RetiredInsts;
  if (Trace) {
    if (StagingTrace) {
      // Stitch in merge order: prepare events, then body events, each
      // rebased onto the stitch clock. StitchNow tiles [prepare)[body)
      // exactly as serial replay's engine clock would, so the recorder's
      // contents — and the trace JSON — are byte-identical for every
      // worker count.
      for (const StagedTraceEvent &E : R.PrepEvents)
        Trace->push(E.Lane, E.Kind, E.Phase, StitchNow + E.Offset, E.Arg);
      StitchNow += R.PrepTicks;
      for (const StagedTraceEvent &E : R.BodyEvents)
        Trace->push(E.Lane, E.Kind, E.Phase, StitchNow + E.Offset, E.Arg);
      StitchNow += R.BodyTicks;
      Trace->end(R.Lane, obs::EventKind::ReplaySlice, StitchNow,
                 R.Vm->retired());
      Trace->instant(R.Lane, obs::EventKind::ReplayParity, StitchNow,
                     R.Res.ParityOk ? 1 : 0);
    } else {
      Trace->end(R.Lane, obs::EventKind::ReplaySlice, Now, R.Vm->retired());
      Trace->instant(R.Lane, obs::EventKind::ReplayParity, Now,
                     R.Res.ParityOk ? 1 : 0);
    }
  }
  return std::move(R.Res);
}

ReplaySliceResult ReplayEngine::replaySlice(const SliceCaptureData &W,
                                            const ToolFactory &Factory,
                                            SharedAreaRegistry &Areas) {
  std::unique_ptr<SliceRun> R = prepareSlice(W, Factory, Areas);
  runSliceBody(*R, W, /*HostThread=*/false);
  return finishSlice(*R, W, /*HostMode=*/false);
}

ReplayReport ReplayEngine::replayAll(const ToolFactory &Factory) {
  std::vector<uint32_t> Nums(Cap.Slices.size());
  for (uint32_t I = 0; I != Nums.size(); ++I)
    Nums[I] = I;
  return replay(Factory, std::move(Nums));
}

ReplayReport ReplayEngine::replay(const ToolFactory &Factory,
                                  std::vector<uint32_t> Nums) {
  std::sort(Nums.begin(), Nums.end());
  Nums.erase(std::unique(Nums.begin(), Nums.end()), Nums.end());
  for (uint32_t Num : Nums)
    if (Num >= Cap.Slices.size())
      reportFatalError("replay: slice " + std::to_string(Num) +
                       " not in the capture (have " +
                       std::to_string(Cap.Slices.size()) + ")");

  ReplayReport Rep;
  SharedAreaRegistry Areas;
  auto Accumulate = [&Rep](ReplaySliceResult Res) {
    ++Rep.SlicesReplayed;
    Rep.ReplayedInsts += Res.RetiredInsts;
    Rep.PlaybackSyscalls += Res.PlaybackSyscalls;
    Rep.DuplicatedSyscalls += Res.DuplicatedSyscalls;
    if (Res.ParityOk)
      ++Rep.ParityOk;
    else
      ++Rep.ParityFailed;
    Rep.Slices.push_back(std::move(Res));
  };

  if (HostWorkers == 0) {
    for (uint32_t Num : Nums)
      Accumulate(replaySlice(Cap.Slices[Num], Factory, Areas));
  } else {
    // Host-parallel re-execution: bodies run on the pool while this thread
    // keeps preparing later slices (master reconstruction, forks, tool
    // construction) and retires finished bodies strictly in ascending
    // slice order — merge order, and with it all shared-area folds and the
    // fini output, never depends on host finish order.
    struct Pending {
      uint32_t Num;
      std::unique_ptr<SliceRun> Run;
    };
    // Declared before the pool: its destructor joins the workers, whose
    // jobs reference the queue and the pending runs.
    host::CompletionQueue Done;
    std::deque<Pending> InFlight;
    // Runs abandoned by the watchdog. A declared-dead worker may still be
    // executing its body, so its SliceRun must outlive the pool join;
    // parking it here (before the pool, destroyed after it) keeps the
    // zombie's state valid without blocking containment.
    std::vector<std::unique_ptr<SliceRun>> Zombies;
    HostCancel.store(false, std::memory_order_relaxed);
    // Staged tracing: bodies record into SliceRun-owned buffers and the
    // retire loop stitches them here, in merge order, onto a stitch clock
    // seeded from the serial position. Byte-identity with serial replay
    // holds fault-free; a contained slice's re-execution re-forwards the
    // master, which the stitch clock charges like any other prepare.
    StagingTrace = Trace != nullptr;
    StitchNow = Now;
    if (HostTrace) {
      // Lanes must exist before the pool threads start; this (calling)
      // thread takes the sim lane for its merge-side waits.
      HostTrace->initLanes(HostWorkers);
      HostTrace->bindThread(HostTrace->simLane());
      HostTrace->laneStarted(HostTrace->simLane(), HostTrace->nowNs());
    }
    {
      host::WorkerPool Pool(HostWorkers, nullptr, HostTrace);
      // Each pending slice holds a COW fork of the master; keep just
      // enough in flight to cover prepare latency without hoarding forks.
      const size_t MaxInFlight = Pool.size() + 2;
      auto RetireFront = [&] {
        Pending P = std::move(InFlight.front());
        InFlight.pop_front();
        uint64_t HB0 = HostTrace ? HostTrace->nowNs() : 0;
        host::SliceCompletion SC;
        bool Got = HostWatchdogMs ? Done.popFor(P.Num, HostWatchdogMs, SC)
                                  : (SC = Done.pop(P.Num), true);
        if (HostTrace)
          HostTrace->span(HostTrace->simLane(), obs::HostSpanKind::SimRetire,
                          HB0, HostTrace->nowNs(), P.Num);
        if (!Got) {
          // Watchdog: the worker never completed this body. Flag every
          // cooperative hang to stand down (so the pool can still join),
          // park the possibly-still-running body's state, and re-execute
          // the slice from scratch on this thread. The zombie never
          // reaches finishSlice, so the shared areas only ever see the
          // serial re-execution — merge order and folds stay exact.
          HostCancel.store(true, std::memory_order_seq_cst);
          ++Rep.HostWatchdogKills;
          ++Rep.HostFallbackSlices;
          errs() << "replay: slice " << P.Num << " worker timed out after "
                 << HostWatchdogMs << " ms; re-executing serially\n";
          Zombies.push_back(std::move(P.Run));
          Accumulate(replaySlice(Cap.Slices[P.Num], Factory, Areas));
          return;
        }
        if (SC.Exception) {
          // The body died to a C++ exception on the worker; its partial
          // state is dead weight. Containment is a fresh serial run.
          ++Rep.HostWorkerExceptions;
          ++Rep.HostFallbackSlices;
          Accumulate(replaySlice(Cap.Slices[P.Num], Factory, Areas));
          return;
        }
        Accumulate(finishSlice(*P.Run, Cap.Slices[P.Num], /*HostMode=*/true));
      };
      for (uint32_t Num : Nums) {
        while (InFlight.size() >= MaxInFlight)
          RetireFront();
        std::unique_ptr<SliceRun> Run =
            prepareSlice(Cap.Slices[Num], Factory, Areas);
        // Pin the fork's pages for the body's lifetime so neither side of
        // a shared page can ever write it in place while the other
        // COW-copies it (the master keeps fast-forwarding while this body
        // runs).
        Run->PagePins = Run->Proc->Mem.pinPages();
        SliceRun *R = Run.get();
        InFlight.push_back(Pending{Num, std::move(Run)});
        Pool.submit([this, R, Num, &Done](host::WorkerContext &WC) {
          // Exception isolation: a throwing body (or test hook) must not
          // unwind into the pool lane — it publishes a flagged completion
          // and the retire loop re-executes the slice serially.
          bool Threw = false;
          try {
            if (HostBodyHook)
              HostBodyHook(Num);
            runSliceBody(*R, Cap.Slices[Num], /*HostThread=*/true);
          } catch (...) {
            Threw = true;
          }
          if (HostTrace) {
            WC.BodyEndNs = HostTrace->nowNs();
            WC.BodyArg = Num;
          }
          host::SliceCompletion C;
          C.SliceNum = Num;
          C.Worker = WC.Worker;
          C.Failed = Threw;
          C.Exception = Threw;
          Done.push(C);
        });
      }
      while (!InFlight.empty())
        RetireFront();
      // Pool destructor joins the workers here, publishing every lane.
    }
    if (HostTrace)
      HostTrace->laneStopped(HostTrace->simLane(), HostTrace->nowNs());
    StagingTrace = false;
  }

  Rep.WallTicks = Now;

  // Fini over the merged areas, exactly like MasterTask::runFini.
  SliceServices FiniServices(Areas, static_cast<uint32_t>(Cap.Slices.size()),
                             /*FiniMode=*/true);
  std::unique_ptr<Tool> FiniTool = Factory(FiniServices);
  RawStringOstream OS(Rep.FiniOutput);
  FiniTool->onFini(OS);
  return Rep;
}

