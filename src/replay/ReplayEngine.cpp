//===- replay/ReplayEngine.cpp - Deferred-slice replay --------------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Two layers, mirroring the live engine's split:
//
//  * Master reconstruction (resetMaster/fastForwardTo/applyWindow): the
//    uninstrumented interpreter re-runs the captured instruction stream.
//    Chunking mirrors MasterTask::runChunk — every chunk is capped at the
//    remaining thread quantum, quantum-expired threads drain to the next
//    block boundary, rotation happens under the same condition — so the
//    schedule replays bit-exactly regardless of where replay's chunk
//    boundaries fall. Each window start is validated against the capture's
//    hashMachineState record.
//
//  * Slice re-execution (replaySlice): mirrors SliceTask::runSlice /
//    handleSyscall against the captured syscall stream, with the capture's
//    extra recording (duplicable effects, the boundary syscall) making the
//    stream self-delimiting: a Boundary entry is the end-of-window marker.
//
//===----------------------------------------------------------------------===//

#include "replay/ReplayEngine.h"

#include "obs/TraceRecorder.h"
#include "os/Kernel.h"
#include "os/Scheduler.h"
#include "pin/CodeCache.h"
#include "pin/PinVm.h"
#include "prof/Profile.h"
#include "support/ErrorHandling.h"
#include "support/RawOstream.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace spin;
using namespace spin::os;
using namespace spin::pin;
using namespace spin::replay;
using namespace spin::sp;
using namespace spin::vm;

/// Ticks granted per replay step; replay runs outside the discrete-time
/// scheduler, so the "budget" only bounds work between loop iterations.
static constexpr Ticks ReplayStepTicks = 1'000'000'000;

ReplayEngine::ReplayEngine(const RunCapture &Cap, const CostModel &Model)
    : Cap(Cap), Model(Model),
      InstCost(static_cast<Ticks>(
          std::llround(Cap.Cpi * static_cast<double>(Model.TicksPerInst)))) {
  resetMaster();
}

void ReplayEngine::setTrace(obs::TraceRecorder *Recorder) {
  Trace = Recorder;
  if (Trace) {
    Trace->setProcessName("spin-replay");
    Trace->setLaneName(obs::TraceRecorder::MasterLane, "replay-master");
  }
}

void ReplayEngine::resetMaster() {
  Master.emplace(Process::create(Cap.Prog));
  // Interp holds references into Master; rebuild it after every reset.
  Interp.emplace(Cap.Prog, Master->Cpu, Master->Mem);
  // §4.1 bubble, exactly as MasterTask::allocateBubble materializes it.
  for (uint64_t P = 0; P != SpBubblePages; ++P)
    Master->Mem.write64(AddressLayout::BubbleBase + P * vm::PageSize, 0);
  NextWindow = 0;
  NextPid = 2;
}

void ReplayEngine::fastForwardTo(uint32_t N) {
  if (N < NextWindow)
    resetMaster();
  while (NextWindow < N) {
    applyWindow(Cap.Slices[NextWindow]);
    ++NextWindow;
  }
}

void ReplayEngine::applyWindow(const SliceCaptureData &W) {
  if (Interp->instructionsRetired() != W.StartIndex)
    reportFatalError("replay: window " + std::to_string(W.Num) +
                     " does not start at the master's position");
  if (Trace)
    Trace->begin(obs::TraceRecorder::MasterLane,
                 obs::EventKind::ReplayForward, Now, W.Num);
  uint64_t End = W.StartIndex + W.ExpectedInsts;
  size_t SysPos = 0;
  while (Interp->instructionsRetired() < End &&
         Master->Status == ProcStatus::Running) {
    uint64_t Max = End - Interp->instructionsRetired();
    RunResult R;
    if (Master->quantumExpired()) {
      R = Interp->runToBlockEnd(Max);
    } else {
      if (Max > Master->quantumLeft())
        Max = Master->quantumLeft();
      R = Interp->run(Max);
    }
    Master->noteRetired(R.InstsExecuted);
    Now += R.InstsExecuted * InstCost;
    if (Prof) {
      Prof->master().noteNative(R.InstsExecuted * InstCost);
      Prof->master().noteConsumed(R.InstsExecuted * InstCost);
    }
    switch (R.Reason) {
    case StopReason::Syscall: {
      if (SysPos == W.Sys.size())
        reportFatalError("replay: master syscall not in window " +
                         std::to_string(W.Num) + "'s capture record");
      const CapturedSyscall &CS = W.Sys[SysPos++];
      uint64_t Number = pendingSyscallNumber(*Master);
      if (CS.Effects.Number != Number)
        reportFatalError("replay: master diverged from window " +
                         std::to_string(W.Num) + "'s syscall sequence");
      // Duplicable syscalls re-execute so kernel state (brk, mmap cursor,
      // RNG) evolves as it did live; so do the thread syscalls, which
      // playback cannot reproduce (they switch the current thread). All
      // other effects — including clock reads and file-creating opens,
      // whose downstream reads also play back — apply verbatim.
      bool Reexecute =
          CS.Kind == CapturedSysKind::Duplicate ||
          Number == static_cast<uint64_t>(Sys::ThreadCreate) ||
          Number == static_cast<uint64_t>(Sys::ThreadExit);
      if (Reexecute) {
        SystemContext Ctx;
        Ctx.SuppressOutput = true;
        Ctx.Trace = Trace;
        Ctx.TraceLane = obs::TraceRecorder::MasterLane;
        Ctx.TraceNow = Now;
        serviceSyscall(*Master, Ctx, nullptr);
      } else {
        playbackSyscall(*Master, CS.Effects);
      }
      Interp->noteSyscallRetired();
      Master->noteRetired(1);
      Now += InstCost + Model.SyscallCost;
      if (Prof) {
        Prof->master().noteNative(InstCost + Model.SyscallCost);
        Prof->master().noteConsumed(InstCost + Model.SyscallCost);
      }
      break;
    }
    case StopReason::Halt:
    case StopReason::BadPc:
      reportFatalError("replay: master fault while rebuilding window " +
                       std::to_string(W.Num));
    case StopReason::Budget:
    case StopReason::BlockEnd:
      break;
    }
    if (Master->quantumExpired() && (R.Reason == StopReason::BlockEnd ||
                                     R.Reason == StopReason::Syscall ||
                                     R.EndedAtBlockBoundary))
      Master->rotateThread();
  }
  if (SysPos != W.Sys.size())
    reportFatalError("replay: window " + std::to_string(W.Num) + " ended with " +
                     std::to_string(W.Sys.size() - SysPos) +
                     " unconsumed syscall records");
  if (Trace)
    Trace->end(obs::TraceRecorder::MasterLane, obs::EventKind::ReplayForward,
               Now, W.Num);
}

ReplaySliceResult ReplayEngine::replaySlice(const SliceCaptureData &W,
                                            const ToolFactory &Factory,
                                            SharedAreaRegistry &Areas) {
  fastForwardTo(W.Num);
  if (hashMachineState(*Master, Interp->instructionsRetired()) !=
      W.StartStateHash)
    reportFatalError("replay: reconstructed master state diverges from the "
                     "capture at slice " + std::to_string(W.Num) +
                     "'s fork point");

  ReplaySliceResult Res;
  Res.Num = W.Num;

  uint32_t Lane = obs::TraceRecorder::sliceLane(W.Num);
  if (Trace) {
    Trace->setLaneName(Lane, "replay-slice-" + std::to_string(W.Num));
    Trace->begin(Lane, obs::EventKind::ReplaySlice, Now, W.Num);
  }

  Process Proc = Master->fork(NextPid++);
  Proc.Mem.discardRange(AddressLayout::BubbleBase,
                        SpBubblePages * vm::PageSize);
  SliceServices Services(Areas, W.Num);
  std::unique_ptr<Tool> ToolInst = Factory(Services);
  CodeCache Cache;
  PinVmConfig Cfg;
  Cfg.InstCost = InstCost;
  Cfg.SliceNum = W.Num;
  prof::SliceProfile *SliceProf = Prof ? &Prof->slice(W.Num) : nullptr;
  Cfg.Prof = SliceProf;
  if (Trace) {
    Cfg.Trace = Trace;
    Cfg.TraceLane = Lane;
    Cfg.TraceClock = [this] { return Now; };
  }
  PinVm Vm(Proc, Model, ToolInst.get(), Cache, Cfg);
  Services.setEndSliceHook([&Vm] { Vm.requestStop(); });
  ToolInst->onSliceBegin(W.Num);

  // The recorded in-window stream; a trailing Boundary entry (if any) is
  // the window's end marker, counted but never executed by the slice.
  size_t InWindow = W.Sys.size();
  if (InWindow && W.Sys.back().Kind == CapturedSysKind::Boundary)
    --InWindow;
  size_t SysPos = 0;

  TickLedger Ledger;
  SignatureStats SigSt;
  bool End = false;
  if (W.EndKind == SliceEndKind::Signature) {
    auto Hook = [&](TickLedger &L) {
      // Mirrors SliceTask::installDetection: the boundary state includes
      // the recorded syscalls' effects, so detection is meaningless (and
      // known false) while any are pending — but the check still runs and
      // is charged, as in the paper.
      if (SysPos != InWindow) {
        if (Cap.QuickCheck) {
          L.charge(Model.InlinedCheckCost);
          ++SigSt.QuickChecks;
        } else {
          L.charge(Model.SigFullCheckCost);
          ++SigSt.FullChecks;
        }
        return false;
      }
      return checkSignature(W.Sig, Proc, Model, Cap.QuickCheck,
                            Vm.runCapRemaining(), L, SigSt);
    };
    Vm.armDetection(W.Sig.Pc, [Hook, SliceProf](TickLedger &L) {
      if (!SliceProf)
        return Hook(L);
      Ticks Base = L.totalCharged();
      bool Found = Hook(L);
      SliceProf->charge(prof::Cause::SigSearch, L.totalCharged() - Base);
      return Found;
    });
  }

  auto Diverge = [&](std::string Why) {
    Res.Diverged = true;
    Res.Note = std::move(Why);
    End = true;
    Vm.disarmDetection();
  };
  auto EndSlice = [&](SliceEndKind Kind) {
    Res.EndKind = Kind;
    End = true;
    Vm.disarmDetection();
  };

  // Runaway guard: a missed boundary (e.g. a tool that perturbs control
  // flow) must surface as divergence, not an endless loop.
  uint64_t RunawayCap = W.ExpectedInsts * 2 + 10'000;

  while (!End) {
    Ledger.beginStep(ReplayStepTicks);
    Vm.setRunCap(Proc.quantumExpired() ? 0 : Proc.quantumLeft());
    uint64_t Before = Vm.retired();
    VmStop Stop = Vm.run(Ledger);
    Proc.noteRetired(Vm.retired() - Before);
    switch (Stop) {
    case VmStop::Budget:
    case VmStop::InstCap:
      break;
    case VmStop::Detected:
      EndSlice(SliceEndKind::Signature);
      break;
    case VmStop::ToolStop:
      EndSlice(SliceEndKind::ToolStop);
      break;
    case VmStop::Syscall: {
      uint64_t Number = pendingSyscallNumber(Proc);
      ToolInst->onSyscall(Number);
      if (SysPos < InWindow) {
        const CapturedSyscall &CS = W.Sys[SysPos++];
        if (CS.Effects.Number != Number) {
          Diverge("syscall sequence diverged from the capture");
          break;
        }
        if (CS.Kind == CapturedSysKind::Playback) {
          playbackSyscall(Proc, CS.Effects);
          ++Res.PlaybackSyscalls;
          if (Trace)
            Trace->instant(Lane, obs::EventKind::SysPlayback, Now, Number);
        } else {
          SystemContext Ctx;
          Ctx.SuppressOutput = true;
          Ctx.Trace = Trace;
          Ctx.TraceLane = Lane;
          Ctx.TraceNow = Now;
          serviceSyscall(Proc, Ctx, nullptr);
          ++Res.DuplicatedSyscalls;
        }
        Vm.noteSyscallRetired();
        Proc.noteRetired(1);
        if (Proc.Status == ProcStatus::Exited)
          EndSlice(SliceEndKind::AppExit);
        break;
      }
      if (SysPos < W.Sys.size()) {
        // The boundary marker: counted (its IPOINT_BEFORE analysis ran),
        // executed only by the master; the successor starts after it.
        if (W.Sys[SysPos].Effects.Number != Number) {
          Diverge("boundary syscall diverged from the capture");
          break;
        }
        ++SysPos;
        Vm.noteSyscallRetired();
        EndSlice(SliceEndKind::SyscallBoundary);
        break;
      }
      Diverge("overran the window into an unrecorded syscall");
      break;
    }
    case VmStop::BadPc:
      Diverge("control left the text segment");
      break;
    }
    if (Proc.quantumExpired() && !End &&
        (Stop == VmStop::InstCap || Stop == VmStop::Syscall)) {
      Proc.rotateThread();
      Vm.noteContextSwitch();
    }
    if (!End && Vm.retired() > RunawayCap)
      Diverge("ran past the window without reaching its boundary");
    Now += Ledger.used();
    if (SliceProf)
      SliceProf->noteConsumed(Ledger.used());
  }

  ToolInst->onSliceEnd(W.Num);
  Services.mergeShadows();
  Res.RetiredInsts = Vm.retired();
  Res.ParityOk = !Res.Diverged && Res.EndKind == W.EndKind &&
                 Res.RetiredInsts == W.RetiredInsts;
  if (Trace) {
    Trace->end(Lane, obs::EventKind::ReplaySlice, Now, Vm.retired());
    Trace->instant(Lane, obs::EventKind::ReplayParity, Now,
                   Res.ParityOk ? 1 : 0);
  }
  return Res;
}

ReplayReport ReplayEngine::replayAll(const ToolFactory &Factory) {
  std::vector<uint32_t> Nums(Cap.Slices.size());
  for (uint32_t I = 0; I != Nums.size(); ++I)
    Nums[I] = I;
  return replay(Factory, std::move(Nums));
}

ReplayReport ReplayEngine::replay(const ToolFactory &Factory,
                                  std::vector<uint32_t> Nums) {
  std::sort(Nums.begin(), Nums.end());
  Nums.erase(std::unique(Nums.begin(), Nums.end()), Nums.end());
  for (uint32_t Num : Nums)
    if (Num >= Cap.Slices.size())
      reportFatalError("replay: slice " + std::to_string(Num) +
                       " not in the capture (have " +
                       std::to_string(Cap.Slices.size()) + ")");

  ReplayReport Rep;
  SharedAreaRegistry Areas;
  for (uint32_t Num : Nums) {
    ReplaySliceResult Res = replaySlice(Cap.Slices[Num], Factory, Areas);
    ++Rep.SlicesReplayed;
    Rep.ReplayedInsts += Res.RetiredInsts;
    Rep.PlaybackSyscalls += Res.PlaybackSyscalls;
    Rep.DuplicatedSyscalls += Res.DuplicatedSyscalls;
    if (Res.ParityOk)
      ++Rep.ParityOk;
    else
      ++Rep.ParityFailed;
    Rep.Slices.push_back(std::move(Res));
  }

  // Fini over the merged areas, exactly like MasterTask::runFini.
  SliceServices FiniServices(Areas, static_cast<uint32_t>(Cap.Slices.size()),
                             /*FiniMode=*/true);
  std::unique_ptr<Tool> FiniTool = Factory(FiniServices);
  RawStringOstream OS(Rep.FiniOutput);
  FiniTool->onFini(OS);
  return Rep;
}

