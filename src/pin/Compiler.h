//===- pin/Compiler.h - Trace formation and instrumentation -----*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MiniPin JIT front end: decodes a trace of guest code starting at a
/// given pc (continuing through the fall-through side of conditional
/// branches, as Pin traces do), then runs the tool's instrumentation
/// callback over it.
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_PIN_COMPILER_H
#define SUPERPIN_PIN_COMPILER_H

#include "pin/Trace.h"

#include <memory>

namespace spin::analysis {
class RedundancyInfo;
}

namespace spin::vm {
class Program;
}

namespace spin::pin {

class Tool;

/// Trace-formation limits (Pin-like defaults).
struct CompilerLimits {
  uint32_t MaxInsts = 48;
  uint32_t MaxBbls = 3;
  /// Forced trace boundary: no trace may flow *through* this address (it
  /// may only start one). SuperPin slices set it to their signature
  /// detection pc so basic blocks never span the slice boundary —
  /// otherwise BBL-granularity tools (icount2) would attribute the
  /// unexecuted bbl tail to the wrong slice. 0 disables.
  uint64_t BoundaryPc = 0;
};

/// Compiles the trace starting at \p StartPc: decodes guest instructions,
/// assigns basic-block boundaries, computes the compile cost, and lets
/// \p UserTool (if non-null) insert analysis calls.
///
/// When \p Redux is non-null (the hot-trace recompile path behind
/// -spredux), a post-instrumentation pass marks Batched every call site
/// that is (a) declared eligible by the tool (Tool::instrKind() !=
/// Stateful), (b) inserted via Ins::insertAggregableCall (has an Agg, no
/// predicate, immediate-only arguments), and (c) on an instruction whose
/// static block classifies Aggregatable or Hoistable. The resulting
/// trace sets ReduxApplied so the VM recompiles each hot trace once.
///
/// \pre \p StartPc addresses a valid text instruction.
std::unique_ptr<CompiledTrace>
compileTrace(const vm::Program &Prog, uint64_t StartPc,
             const os::CostModel &Model, Tool *UserTool,
             CompilerLimits Limits = CompilerLimits(),
             const analysis::RedundancyInfo *Redux = nullptr);

} // namespace spin::pin

#endif // SUPERPIN_PIN_COMPILER_H
