//===- pin/Compiler.h - Trace formation and instrumentation -----*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MiniPin JIT front end: decodes a trace of guest code starting at a
/// given pc (continuing through the fall-through side of conditional
/// branches, as Pin traces do), then runs the tool's instrumentation
/// callback over it.
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_PIN_COMPILER_H
#define SUPERPIN_PIN_COMPILER_H

#include "pin/Trace.h"

#include <memory>

namespace spin::vm {
class Program;
}

namespace spin::pin {

class Tool;

/// Trace-formation limits (Pin-like defaults).
struct CompilerLimits {
  uint32_t MaxInsts = 48;
  uint32_t MaxBbls = 3;
  /// Forced trace boundary: no trace may flow *through* this address (it
  /// may only start one). SuperPin slices set it to their signature
  /// detection pc so basic blocks never span the slice boundary —
  /// otherwise BBL-granularity tools (icount2) would attribute the
  /// unexecuted bbl tail to the wrong slice. 0 disables.
  uint64_t BoundaryPc = 0;
};

/// Compiles the trace starting at \p StartPc: decodes guest instructions,
/// assigns basic-block boundaries, computes the compile cost, and lets
/// \p UserTool (if non-null) insert analysis calls.
///
/// \pre \p StartPc addresses a valid text instruction.
std::unique_ptr<CompiledTrace>
compileTrace(const vm::Program &Prog, uint64_t StartPc,
             const os::CostModel &Model, Tool *UserTool,
             CompilerLimits Limits = CompilerLimits());

} // namespace spin::pin

#endif // SUPERPIN_PIN_COMPILER_H
