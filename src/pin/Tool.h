//===- pin/Tool.h - Pintool interface and SuperPin services -----*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Pintool interface. A tool instruments traces at compile time and
/// receives lifecycle callbacks; under SuperPin one tool instance exists per
/// slice, with slice-local data merged through SpServices shared areas
/// (paper Section 5's API: SP_Init / SP_CreateSharedArea /
/// SP_AddSliceBegin/EndFunction / SP_EndSlice map onto this interface; a
/// literal free-function facade is provided in superpin/SpApi.h).
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_PIN_TOOL_H
#define SUPERPIN_PIN_TOOL_H

#include "pin/Trace.h"

#include <cstddef>
#include <functional>
#include <memory>
#include <string_view>

namespace spin {
class RawOstream;
}

namespace spin::pin {

/// How a tool's analysis payloads relate to the instrumented iteration
/// stream — the tool's aggregation-eligibility declaration consumed by
/// the redundancy-suppressing JIT (-spredux, analysis/Redundancy.h).
enum class InstrKind : uint8_t {
  /// Payloads depend on per-iteration state or ordering (cache
  /// simulators, memory tracers): never suppress. The safe default.
  Stateful,
  /// Payloads are additive and order-insensitive (counters): N deferred
  /// iterations may be replayed as one Agg(Args, N) call at a flush
  /// boundary (icount, opcode mix, branch-profile totals).
  Aggregatable,
  /// Payloads are idempotent per loop visit: one call per loop entry
  /// would suffice. Treated like Aggregatable by the runtime (an
  /// aggregate replay subsumes an idempotent one).
  Invariant,
};

/// How a shared area combines slice-local contributions at slice end
/// (the autoMerge argument of SP_CreateSharedArea).
enum class AutoMerge : uint8_t {
  None,  ///< manual: the tool merges in its onSliceEnd callback
  Add64, ///< treat as uint64[] and sum slice-local values into the total
  Max64, ///< element-wise maximum
  Min64, ///< element-wise minimum
};

/// Runtime services a tool sees. The serial-Pin implementation (this base
/// class) reports isSuperPin()==false and hands back local pointers, which
/// is exactly how the paper's tools degrade to traditional Pin mode.
class SpServices {
public:
  virtual ~SpServices();

  /// True when running under SuperPin (the SP_Init return value).
  virtual bool isSuperPin() const { return false; }

  /// Current slice number; 0 in serial mode.
  virtual uint32_t sliceNumber() const { return 0; }

  /// SP_CreateSharedArea: returns a pointer the tool uses instead of its
  /// local buffer. Serial mode returns \p LocalData unchanged. Under
  /// SuperPin: for AutoMerge::None the true cross-slice shared buffer
  /// (initialized from the first creator's \p LocalData); otherwise a
  /// slice-local shadow that the runtime folds into the shared buffer at
  /// merge time.
  virtual void *createSharedArea(void *LocalData, size_t Size,
                                 AutoMerge Mode) {
    (void)Size;
    (void)Mode;
    return LocalData;
  }

  /// SP_EndSlice: asks the runtime to terminate the current slice at the
  /// next instruction boundary. No-op in serial mode.
  virtual void endSlice() {}
};

/// Base class for all Pintools.
///
/// Lifecycle under serial Pin: construct -> instrumentTrace (per trace) ->
/// onFini. Under SuperPin, per slice: construct -> onSliceBegin ->
/// instrumentTrace/execution -> onSliceEnd (merge point, called in slice
/// order) -> destruct; onFini runs once on the last instance after all
/// merges.
class Tool {
public:
  explicit Tool(SpServices &Services) : Services(&Services) {}
  virtual ~Tool();

  virtual std::string_view name() const = 0;

  /// Aggregation eligibility (see InstrKind). Tools whose analysis
  /// routines are pure additive counters opt in by returning Aggregatable
  /// and inserting their calls via Ins::insertAggregableCall; everything
  /// else inherits Stateful and is never suppressed, regardless of flags
  /// or static classification.
  virtual InstrKind instrKind() const { return InstrKind::Stateful; }

  /// Called when the JIT compiles a new trace; insert analysis calls here.
  virtual void instrumentTrace(Trace &T) = 0;

  /// Called when the instrumented process is about to perform a syscall.
  virtual void onSyscall(uint64_t Number) { (void)Number; }

  /// SP_AddSliceBeginFunction: reset slice-local statistics.
  virtual void onSliceBegin(uint32_t SliceNum) { (void)SliceNum; }

  /// SP_AddSliceEndFunction: merge slice-local data into shared totals.
  /// Called in slice order, never concurrently.
  virtual void onSliceEnd(uint32_t SliceNum) { (void)SliceNum; }

  /// PIN_AddFiniFunction: final output after the program (and all slices)
  /// completed.
  virtual void onFini(RawOstream &OS) { (void)OS; }

protected:
  SpServices &services() const { return *Services; }

private:
  SpServices *Services;
};

/// Creates a fresh tool instance bound to \p Services. SuperPin invokes
/// the factory once per slice (each slice has its own copy of the Pintool,
/// as in the paper); serial Pin invokes it once.
using ToolFactory =
    std::function<std::unique_ptr<Tool>(SpServices &Services)>;

} // namespace spin::pin

#endif // SUPERPIN_PIN_TOOL_H
