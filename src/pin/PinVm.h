//===- pin/PinVm.h - Instrumented execution engine --------------*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MiniPin virtual machine: the dispatcher + code cache + JIT loop that
/// executes a guest process with instrumentation. It mirrors Pin's VM:
/// look up the next region in the code cache, compile on miss (paying
/// compile cost), execute the instrumented trace (paying dispatch and
/// analysis-call costs), and stop at syscalls so the environment (the
/// serial-Pin runner, or a SuperPin slice controller) can service them.
///
/// SuperPin hooks:
///  * an "armed pc" — a detection hook invoked whenever execution reaches a
///    given instruction address, used by the signature detector (§4.4); the
///    hook models the paper's INS_InsertIfCall/InsertThenCall costs;
///  * requestStop() — asynchronous slice termination (SP_EndSlice).
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_PIN_PINVM_H
#define SUPERPIN_PIN_PINVM_H

#include "os/Process.h"
#include "os/Scheduler.h"
#include "pin/CodeCache.h"
#include "pin/Compiler.h"

#include <functional>

namespace spin::analysis {
class Cfg;
class RedundancyInfo;
}

namespace spin::obs {
class TraceSink;
}

namespace spin::prof {
class SliceProfile;
}

namespace spin::pin {

class Tool;

/// Why PinVm::run returned.
enum class VmStop : uint8_t {
  Budget,   ///< tick ledger exhausted; call run() again to resume
  Syscall,  ///< pc at an unexecuted syscall (its IPOINT_BEFORE calls ran)
  Detected, ///< the armed-pc hook reported a signature match
  ToolStop, ///< requestStop()/SP_EndSlice
  InstCap,  ///< setRunCap() reached (guest-thread quantum boundary)
  BadPc,    ///< control left the text segment
};

/// Configuration of one PinVm instance.
struct PinVmConfig {
  /// Per-guest-instruction base cost in ticks (workload CPI × TicksPerInst).
  os::Ticks InstCost = 100;
  /// Shared-code-cache mode (paper §8 future work): non-null enables it.
  /// Adds a consistency-check cost per trace entry; traces another slice
  /// already compiled are adopted at a fraction of full compile cost.
  SharedJitRegistry *SharedJit = nullptr;
  /// Slice number reported through ArgKind::SliceNum (0 in serial mode).
  uint32_t SliceNum = 0;
  CompilerLimits Limits;
  /// Analysis-guided trace seeding: when set, the first run() compiles a
  /// trace at every reachable static basic-block leader in one batch
  /// (charged at Model.JitSeedPerInst per instruction, as ledger debt)
  /// before executing, so the code cache warms up in one pass instead of
  /// stalling execution trace by trace. Seeding happens inside run() —
  /// after armDetection() — so seeded traces respect the slice boundary.
  const analysis::Cfg *SeedCfg = nullptr;
  /// Instrumentation-redundancy suppression (-spredux): when set, traces
  /// that stay hot past ReduxHotThreshold entries are recompiled once
  /// with Batched marks on eligible call sites (see compileTrace). A
  /// batched site charges Model.ReduxDeferCost per iteration instead of a
  /// full analysis call and accumulates a pending count; at every
  /// tool-observable VM exit (syscall, detection, tool stop, quantum cap,
  /// bad pc — everything except a plain budget pause) the VM replays each
  /// pending site as one full-cost Agg(Args, Count) call, so tool output
  /// is byte-identical with the flag off by construction.
  const analysis::RedundancyInfo *Redux = nullptr;
  /// Trace-entry count after which a redux-eligible trace is recompiled.
  uint32_t ReduxHotThreshold = 16;
  /// Observability (src/obs): when set, the VM emits a "jit.compile"
  /// instant per on-demand trace compile and one "jit.seed" instant per
  /// batch seed, on \p TraceLane, timestamped via \p TraceClock (the
  /// environment's virtual-time source; 0 when absent).
  obs::TraceSink *Trace = nullptr;
  uint32_t TraceLane = 0;
  std::function<os::Ticks()> TraceClock;
  /// Overhead attribution (src/prof): when set, every tick this VM charges
  /// is also reported to the lane profile — compile/seed as jit.compile,
  /// dispatch and per-instruction VM overhead as jit.execute, analysis
  /// calls as instr.analysis — plus per-block instrumented-vs-native cost
  /// keyed by trace-head pc. Detection-hook charges are NOT attributed
  /// here; the hook's owner attributes them (sig.search).
  prof::SliceProfile *Prof = nullptr;
};

/// Executes one guest process with instrumentation.
class PinVm {
public:
  /// \p Cache may be shared between PinVm instances when
  /// \p Config.SharedCache is set; otherwise it must be exclusive.
  PinVm(os::Process &Proc, const os::CostModel &Model, Tool *UserTool,
        CodeCache &Cache, PinVmConfig Config);

  /// Detection hook: invoked with the ledger (for cost charging) each time
  /// execution reaches the armed pc, before analysis calls and before the
  /// instruction executes. Returning true stops the VM with
  /// VmStop::Detected.
  using DetectHook = std::function<bool(os::TickLedger &)>;

  /// \pre No trace has been compiled yet into this VM's private cache
  /// (the boundary must shape every trace; SuperPin arms detection before
  /// a slice starts executing).
  void armDetection(uint64_t Pc, DetectHook Hook) {
    assert(NumTracesCompiled == 0 || Config.Limits.BoundaryPc == Pc);
    ArmedPc = Pc;
    Config.Limits.BoundaryPc = Pc;
    Detect = std::move(Hook);
  }
  void disarmDetection() { Detect = nullptr; }

  /// Requests a stop at the next instruction boundary (SP_EndSlice).
  void requestStop() { StopRequested = true; }

  /// Caps the next run() at \p Insts retired instructions (guest-thread
  /// quantum support): the VM stops with VmStop::InstCap exactly at the
  /// boundary, before executing the next instruction.
  void setRunCap(uint64_t Insts) { CapRemaining = Insts; }

  /// The executor switched guest threads: the process's current pc is no
  /// longer where this VM left off, so drop the trace cursor.
  void noteContextSwitch() { CurTrace = nullptr; }

  /// Instructions left before the current run cap (the live guest-thread
  /// quantum when the cap was armed from Process::quantumLeft(); the
  /// signature detector compares this against the recorded quantum).
  uint64_t runCapRemaining() const { return CapRemaining; }

  /// Redirects attribution (host-parallel mode points it at a worker-local
  /// profile for the body's duration, folding into the lane at retire).
  void setProfSink(prof::SliceProfile *P) { Config.Prof = P; }

  /// Replaces the trace sink. Host-parallel mode points it at a per-slice
  /// staging sink for the body's duration: the master recorder and the
  /// virtual clock are simulation-thread state a worker must not touch, so
  /// the body's jit.* instants ride the charge stream and are restamped by
  /// the replaying sim thread (null clock — staging ignores timestamps).
  void setTraceSink(obs::TraceSink *T) {
    Config.Trace = T;
    Config.TraceClock = nullptr;
  }

  /// Executes until the ledger runs out or an architectural event occurs.
  VmStop run(os::TickLedger &Ledger);

  /// Retired guest instructions (syscalls counted via noteSyscallRetired).
  uint64_t retired() const { return Retired; }
  void noteSyscallRetired() { ++Retired; }

  os::Process &process() { return Proc; }

  // Engine statistics.
  uint64_t analysisCalls() const { return NumAnalysisCalls; }
  uint64_t inlinedChecks() const { return NumInlinedChecks; }
  uint64_t tracesEntered() const { return NumTraceEntries; }
  uint64_t tracesCompiled() const { return NumTracesCompiled; }
  os::Ticks compileTicks() const { return CompileTicks; }
  /// Traces precompiled from static block leaders (not counted in
  /// tracesCompiled(), which keeps meaning on-demand compile stalls).
  uint64_t tracesSeeded() const { return NumTracesSeeded; }
  os::Ticks seedTicks() const { return SeedTicks; }
  // Redundancy suppression (-spredux; all zero when it is off).
  uint64_t analysisCallsSuppressed() const { return NumCallsSuppressed; }
  uint64_t reduxFlushes() const { return NumReduxFlushes; }
  uint64_t tracesRecompiled() const { return NumTracesRecompiled; }
  os::Ticks recompileTicks() const { return RecompileTicks; }
  /// Net ticks the deferral saved (deferred-call discounts minus flush
  /// repayments); clamped at zero for degenerate loops that flush every
  /// iteration.
  os::Ticks reduxSavedTicks() const {
    return SavedTicks > 0 ? static_cast<os::Ticks>(SavedTicks) : 0;
  }
  const CodeCache &cache() const { return Cache; }

private:
  os::Process &Proc;
  const os::CostModel &Model;
  Tool *UserTool;
  CodeCache &Cache;
  PinVmConfig Config;

  const CompiledTrace *CurTrace = nullptr;
  uint32_t CurStep = 0;
  uint64_t ArmedPc = 0;
  DetectHook Detect;
  bool StopRequested = false;
  uint64_t CapRemaining = ~uint64_t(0);

  uint64_t Retired = 0;
  uint64_t NumAnalysisCalls = 0;
  uint64_t NumInlinedChecks = 0;
  uint64_t NumTraceEntries = 0;
  uint64_t NumTracesCompiled = 0;
  os::Ticks CompileTicks = 0;
  bool Seeded = false;
  uint64_t NumTracesSeeded = 0;
  os::Ticks SeedTicks = 0;
  uint64_t NumCallsSuppressed = 0;
  uint64_t NumReduxFlushes = 0;
  uint64_t NumTracesRecompiled = 0;
  os::Ticks RecompileTicks = 0;
  int64_t SavedTicks = 0;

  /// One deferred (Batched) call site awaiting flush: the argument values
  /// captured at first deferral (immediate-only, so any capture point
  /// yields the same values) and the iteration count accumulated since.
  /// Count == 0 means the slot is idle and Site/Values are stale.
  struct PendingAgg {
    const CallSite *Site = nullptr;
    uint64_t Count = 0;
    uint64_t Values[MaxAnalysisArgs];
  };
  /// Deferred-aggregate table indexed by CallSite::BatchSlot: O(1) per
  /// deferred iteration on the hottest VM path (a linear scan here is
  /// O(sites^2) per loop iteration with per-instruction tools).
  std::vector<PendingAgg> PendingBySlot;
  /// Slots with Count > 0, in first-deferral order (the flush replay
  /// order, matching the old insertion-ordered pending list).
  std::vector<uint32_t> ActiveSlots;
  /// Batch slots handed out so far (recompiled hot traces only).
  uint32_t NumBatchSlots = 0;

  /// Replays every pending deferred site as one full-cost aggregate call.
  /// Must run before any tool-observable stop and before any cached trace
  /// is replaced (active slots hold pointers into trace call sites).
  void flushRedux(os::TickLedger &Ledger);

  /// One-shot batch compile of all reachable static block leaders.
  void seedFromCfg(os::TickLedger &Ledger);

  /// Ensures CurTrace/CurStep address Proc.Cpu.Pc; charges dispatch and
  /// compile costs. Returns false if pc is outside text.
  bool dispatch(os::TickLedger &Ledger);

  /// Evaluates \p Args against current architectural state into \p Out.
  void evalArgs(const std::vector<Arg> &Args, const TraceStep &Step,
                uint64_t *Out) const;

  /// Runs the analysis calls attached to \p Step for one insertion point
  /// (\p After selects IPOINT_AFTER sites), charging costs.
  void runAnalysisCalls(const TraceStep &Step, os::TickLedger &Ledger,
                        bool After);
};

} // namespace spin::pin

#endif // SUPERPIN_PIN_PINVM_H
