//===- pin/PinVm.cpp - Instrumented execution engine ----------------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "pin/PinVm.h"

#include "analysis/Cfg.h"
#include "obs/TraceRecorder.h"
#include "pin/Tool.h"
#include "prof/Profile.h"
#include "vm/Exec.h"

#include <cassert>

using namespace spin;
using namespace spin::os;
using namespace spin::pin;
using namespace spin::vm;

PinVm::PinVm(Process &Proc, const CostModel &Model, Tool *UserTool,
             CodeCache &Cache, PinVmConfig Config)
    : Proc(Proc), Model(Model), UserTool(UserTool), Cache(Cache),
      Config(Config) {}

bool PinVm::dispatch(TickLedger &Ledger) {
  Ticks DispatchCost = Model.TraceDispatchCost +
                       (Config.SharedJit ? Model.SharedCacheCheckCost : 0);
  Ledger.charge(DispatchCost);
  ++NumTraceEntries;
  Ticks CompileHere = 0;
  CompiledTrace *T = Cache.lookup(Proc.Cpu.Pc);
  if (T && Config.Redux && !T->ReduxApplied &&
      T->Entries >= Config.ReduxHotThreshold) {
    // Hot trace: recompile once with redundancy-suppression marks, at full
    // compile price (this is extra work the optimization chooses to do, so
    // no shared-JIT adopt discount applies). Flush pending aggregates
    // first — they hold pointers into the call sites the replacement
    // destroys.
    flushRedux(Ledger);
    std::unique_ptr<CompiledTrace> Fresh =
        compileTrace(Proc.program(), Proc.Cpu.Pc, Model, UserTool,
                     Config.Limits, Config.Redux);
    Fresh->Entries = T->Entries;
    // Give every batched site a dense VM-wide slot so each deferred
    // iteration indexes its pending entry directly instead of scanning.
    // Safe because code caches are exclusive to one VM (SharedJit shares
    // only compiled pcs, never trace objects).
    for (TraceStep &Step : Fresh->Steps)
      for (CallSite &Site : Step.Calls)
        if (Site.Batched)
          Site.BatchSlot = NumBatchSlots++;
    Ticks Cost = Fresh->CompileCost;
    Ledger.charge(Cost);
    RecompileTicks += Cost;
    CompileHere = Cost;
    ++NumTracesRecompiled;
    if (Config.Trace)
      Config.Trace->instant(Config.TraceLane, obs::EventKind::JitCompile,
                            Config.TraceClock ? Config.TraceClock() : 0,
                            Fresh->Steps.size());
    T = Cache.insert(std::move(Fresh));
  }
  if (!T) {
    if (!Proc.program().fetch(Proc.Cpu.Pc))
      return false;
    std::unique_ptr<CompiledTrace> Fresh = compileTrace(
        Proc.program(), Proc.Cpu.Pc, Model, UserTool, Config.Limits);
    Ticks Cost = Fresh->CompileCost;
    if (Config.SharedJit) {
      if (Config.SharedJit->Compiled.count(Fresh->StartPc))
        Cost /= SharedJitRegistry::AdoptDiscount; // adopt, don't recompile
      else
        Config.SharedJit->Compiled.insert(Fresh->StartPc);
    }
    Ledger.charge(Cost);
    CompileTicks += Cost;
    CompileHere = Cost;
    ++NumTracesCompiled;
    if (Config.Trace)
      Config.Trace->instant(Config.TraceLane, obs::EventKind::JitCompile,
                            Config.TraceClock ? Config.TraceClock() : 0,
                            Fresh->Steps.size());
    T = Cache.insert(std::move(Fresh));
  }
  ++T->Entries;
  if (Config.Prof) {
    Config.Prof->charge(prof::Cause::JitExecute, DispatchCost);
    if (CompileHere)
      Config.Prof->charge(prof::Cause::JitCompile, CompileHere);
    // Dispatch and any compile stall it triggered belong to the entered
    // block's instrumented cost.
    Config.Prof->noteBlock(T->StartPc, /*Insts=*/0, DispatchCost + CompileHere,
                           /*NativeT=*/0, /*Entries=*/1);
  }
  CurTrace = T;
  CurStep = 0;
  return true;
}

void PinVm::evalArgs(const std::vector<Arg> &Args, const TraceStep &Step,
                     uint64_t *Out) const {
  const CpuState &S = Proc.Cpu;
  for (size_t I = 0; I != Args.size(); ++I) {
    const Arg &A = Args[I];
    switch (A.Kind) {
    case ArgKind::Uint64:
      Out[I] = A.Payload;
      break;
    case ArgKind::InstPtr:
      Out[I] = Step.Pc;
      break;
    case ArgKind::MemoryEa: {
      uint32_t Size;
      Out[I] = computeMemEA(*Step.Inst, S, Size);
      break;
    }
    case ArgKind::MemorySize: {
      uint32_t Size;
      computeMemEA(*Step.Inst, S, Size);
      Out[I] = Size;
      break;
    }
    case ArgKind::BranchTaken:
      Out[I] = wouldBranch(*Step.Inst, S) ? 1 : 0;
      break;
    case ArgKind::BranchTarget:
      Out[I] = branchTargetOf(*Step.Inst, Step.Pc, S, Proc.Mem);
      break;
    case ArgKind::RegValue:
      assert(A.Payload < NumRegs && "bad register in analysis arg");
      Out[I] = S.Regs[A.Payload];
      break;
    case ArgKind::ThreadId:
      Out[I] = Proc.currentThread();
      break;
    case ArgKind::SliceNum:
      Out[I] = Config.SliceNum;
      break;
    }
  }
}

void PinVm::runAnalysisCalls(const TraceStep &Step, TickLedger &Ledger,
                             bool After) {
  uint64_t Values[MaxAnalysisArgs];
  for (const CallSite &Site : Step.Calls) {
    if (Site.After != After)
      continue;
    if (Site.Batched && Config.Redux) {
      // Deferred iteration: bump the pending count at a fraction of the
      // call cost; the full call is repaid at the next flush boundary.
      Ticks FullCost = Model.AnalysisCallBase +
                       Site.Args.size() * Model.AnalysisCallPerArg +
                       Site.FnUserCost;
      Ledger.charge(Model.ReduxDeferCost);
      ++NumCallsSuppressed;
      SavedTicks += static_cast<int64_t>(FullCost) -
                    static_cast<int64_t>(Model.ReduxDeferCost);
      if (Config.Prof)
        Config.Prof->noteRedux(/*Suppressed=*/1, /*Flushes=*/0,
                               static_cast<int64_t>(FullCost) -
                                   static_cast<int64_t>(Model.ReduxDeferCost));
      if (PendingBySlot.size() < NumBatchSlots)
        PendingBySlot.resize(NumBatchSlots);
      PendingAgg &P = PendingBySlot[Site.BatchSlot];
      if (P.Count == 0) {
        P.Site = &Site;
        // Immediate-only arguments (the compiler gate verifies it), so
        // capturing at first deferral loses nothing.
        evalArgs(Site.Args, Step, P.Values);
        ActiveSlots.push_back(Site.BatchSlot);
      }
      ++P.Count;
      continue;
    }
    if (Site.If) {
      Ledger.charge(Model.InlinedCheckCost + Site.IfUserCost);
      ++NumInlinedChecks;
      evalArgs(Site.IfArgs, Step, Values);
      if (Site.If(Values) == 0)
        continue;
      if (!Site.Fn)
        continue; // If without Then: predicate only.
    }
    Ledger.charge(Model.AnalysisCallBase +
                  Site.Args.size() * Model.AnalysisCallPerArg +
                  Site.FnUserCost);
    ++NumAnalysisCalls;
    evalArgs(Site.Args, Step, Values);
    Site.Fn(Values);
  }
}

void PinVm::flushRedux(TickLedger &Ledger) {
  if (ActiveSlots.empty())
    return;
  for (uint32_t Slot : ActiveSlots) {
    PendingAgg &P = PendingBySlot[Slot];
    Ticks Cost = Model.AnalysisCallBase +
                 P.Site->Args.size() * Model.AnalysisCallPerArg +
                 P.Site->FnUserCost;
    Ledger.charge(Cost);
    SavedTicks -= static_cast<int64_t>(Cost);
    ++NumAnalysisCalls;
    ++NumReduxFlushes;
    // Flushes run outside run()'s attribution brackets, so charge the
    // profile directly.
    if (Config.Prof) {
      Config.Prof->charge(prof::Cause::InstrAnalysis, Cost);
      Config.Prof->noteRedux(/*Suppressed=*/0, /*Flushes=*/1,
                             -static_cast<int64_t>(Cost));
    }
    P.Site->Agg(P.Values, P.Count);
    P.Count = 0;
  }
  ActiveSlots.clear();
}

void PinVm::seedFromCfg(TickLedger &Ledger) {
  Seeded = true;
  for (uint64_t Pc : Config.SeedCfg->reachableLeaderPcs()) {
    if (Cache.contains(Pc))
      continue;
    std::unique_ptr<CompiledTrace> Fresh =
        compileTrace(Proc.program(), Pc, Model, UserTool, Config.Limits);
    Ticks Cost = Model.JitSeedPerInst * Fresh->Steps.size();
    if (Config.SharedJit) {
      if (Config.SharedJit->Compiled.count(Pc))
        Cost /= SharedJitRegistry::AdoptDiscount; // adopt, don't recompile
      else
        Config.SharedJit->Compiled.insert(Pc);
    }
    Ledger.charge(Cost);
    if (Config.Prof)
      Config.Prof->charge(prof::Cause::JitCompile, Cost);
    SeedTicks += Cost;
    ++NumTracesSeeded;
    Cache.insert(std::move(Fresh));
  }
  if (Config.Trace && NumTracesSeeded)
    Config.Trace->instant(Config.TraceLane, obs::EventKind::JitSeed,
                          Config.TraceClock ? Config.TraceClock() : 0,
                          NumTracesSeeded);
}

VmStop PinVm::run(TickLedger &Ledger) {
  if (Config.SeedCfg && !Seeded)
    seedFromCfg(Ledger);
  while (Ledger.hasBudget()) {
    if (StopRequested) {
      StopRequested = false;
      flushRedux(Ledger);
      return VmStop::ToolStop;
    }
    if (!CurTrace) {
      if (!dispatch(Ledger)) {
        flushRedux(Ledger);
        return VmStop::BadPc;
      }
      continue; // Re-check budget after paying dispatch/compile cost.
    }
    assert(CurStep < CurTrace->Steps.size() && "trace cursor out of range");
    const TraceStep &Step = CurTrace->Steps[CurStep];
    assert(Step.Pc == Proc.Cpu.Pc && "trace desynchronized from pc");

    // 1. Signature detection (SuperPin §4.4) fires before anything else at
    //    the armed address; a match means this instruction belongs to the
    //    next slice and must not execute or be counted here.
    if (Detect && Step.Pc == ArmedPc) {
      if (Detect(Ledger)) {
        flushRedux(Ledger);
        return VmStop::Detected;
      }
    }

    // 2. IPOINT_BEFORE analysis calls. Attribution brackets analysis with
    //    totalCharged() deltas (user-cost charges are opaque); the bracket
    //    opens after the detect hook so sig.search charges stay with the
    //    hook's owner.
    uint64_t HeadPc = CurTrace->StartPc;
    Ticks StepBase = Config.Prof ? Ledger.totalCharged() : 0;
    runAnalysisCalls(Step, Ledger, /*After=*/false);
    if (Config.Prof)
      Config.Prof->charge(prof::Cause::InstrAnalysis,
                          Ledger.totalCharged() - StepBase);

    // 3. The instruction itself.
    ExecInfo Info;
    ExecStatus Status =
        executeInstruction(*Step.Inst, Step.Pc, Proc.Cpu, Proc.Mem, Info);
    if (Status == ExecStatus::Syscall) {
      // Leave the cursor past this trace; the environment services the
      // syscall and the next run() dispatches at the post-syscall pc.
      // Pending aggregates must land before the tool observes the syscall.
      CurTrace = nullptr;
      flushRedux(Ledger);
      return VmStop::Syscall;
    }
    Ledger.charge(Config.InstCost + Model.PinDispatchPerInst);
    if (Config.Prof)
      Config.Prof->charge(prof::Cause::JitExecute,
                          Config.InstCost + Model.PinDispatchPerInst);
    ++Retired;
    if (CapRemaining != ~uint64_t(0) && CapRemaining != 0)
      --CapRemaining;
    if (Status == ExecStatus::Halt) {
      flushRedux(Ledger);
      return VmStop::BadPc; // Guests must exit via syscall.
    }

    // 4. IPOINT_AFTER analysis calls (post-execution state).
    Ticks AfterBase = Config.Prof ? Ledger.totalCharged() : 0;
    runAnalysisCalls(Step, Ledger, /*After=*/true);
    if (Config.Prof) {
      Config.Prof->charge(prof::Cause::InstrAnalysis,
                          Ledger.totalCharged() - AfterBase);
      // The block pays everything this step charged; uninstrumented, the
      // same instruction would have cost InstCost alone.
      Config.Prof->noteBlock(HeadPc, /*Insts=*/1,
                             Ledger.totalCharged() - StepBase,
                             /*NativeT=*/Config.InstCost, /*Entries=*/0);
    }

    // 5. Advance within the trace or re-dispatch.
    bool LeftTrace = Info.BranchTaken || CurStep + 1 >= CurTrace->Steps.size();
    if (LeftTrace)
      CurTrace = nullptr;
    else
      ++CurStep;

    // 6. Guest-thread quantum: once the cap is spent, stop at the first
    //    dynamic basic-block boundary (a retired control-flow instruction)
    //    so preemption never splits a block (see Process::noteRetired).
    if (CapRemaining == 0 && Step.Inst->isControlFlow()) {
      flushRedux(Ledger);
      return VmStop::InstCap;
    }
  }
  // Budget pauses are not tool-observable: pending aggregates survive the
  // pause and flush at the next architectural stop.
  return VmStop::Budget;
}
