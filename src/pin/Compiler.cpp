//===- pin/Compiler.cpp - Trace formation and instrumentation -------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "pin/Compiler.h"

#include "analysis/Redundancy.h"
#include "pin/Tool.h"
#include "vm/Program.h"

#include <cassert>

using namespace spin;
using namespace spin::pin;
using namespace spin::vm;

std::unique_ptr<CompiledTrace>
spin::pin::compileTrace(const Program &Prog, uint64_t StartPc,
                        const os::CostModel &Model, Tool *UserTool,
                        CompilerLimits Limits,
                        const analysis::RedundancyInfo *Redux) {
  assert(Prog.fetch(StartPc) && "trace start outside text segment");
  auto T = std::make_unique<CompiledTrace>();
  T->StartPc = StartPc;
  T->BblStart.push_back(0);

  uint64_t Pc = StartPc;
  uint32_t BblIndex = 0;
  while (T->Steps.size() < Limits.MaxInsts) {
    if (Pc == Limits.BoundaryPc && Pc != StartPc)
      break; // Detection sites start their own trace (see CompilerLimits).
    const Instruction *I = Prog.fetch(Pc);
    if (!I)
      break; // Fell off the end of text; runtime reports BadPc there.
    TraceStep Step;
    Step.Inst = I;
    Step.Pc = Pc;
    Step.BblIndex = BblIndex;
    T->Steps.push_back(std::move(Step));
    if (I->endsTrace())
      break;
    if (I->isCondBranch()) {
      // The fall-through side continues the trace in a new basic block,
      // unless the block budget is exhausted.
      if (BblIndex + 1 >= Limits.MaxBbls)
        break;
      ++BblIndex;
      T->BblStart.push_back(static_cast<uint32_t>(T->Steps.size()));
    }
    Pc += InstSize;
  }
  // A trailing empty block can appear when the instruction budget ends
  // exactly at a conditional branch; drop it.
  if (T->BblStart.back() == T->Steps.size())
    T->BblStart.pop_back();
  T->NumBbls = static_cast<uint32_t>(T->BblStart.size());
  T->CompileCost = Model.JitCompilePerInst * T->Steps.size();

  if (UserTool && !T->Steps.empty()) {
    Trace View(*T);
    UserTool->instrumentTrace(View);
  }

  // Redundancy-suppression marks (the hot-trace recompile form). All
  // three gates must agree — tool eligibility, call-site shape, and the
  // static block classification — before a site may be deferred.
  if (Redux) {
    T->ReduxApplied = true;
    if (UserTool && UserTool->instrKind() != InstrKind::Stateful) {
      // insertAggregableCall asserts immediate-only arguments, but that
      // check vanishes in NDEBUG builds; re-verify here so a buggy tool
      // can never batch a site whose argument values vary per iteration.
      auto AllImmediate = [](const std::vector<Arg> &Args) {
        for (const Arg &A : Args)
          if (A.Kind != ArgKind::Uint64)
            return false;
        return true;
      };
      for (TraceStep &Step : T->Steps) {
        if (Redux->classifyPc(Step.Pc) == analysis::BlockRedux::Stateful)
          continue;
        for (CallSite &Site : Step.Calls)
          if (Site.Agg && !Site.If && AllImmediate(Site.Args))
            Site.Batched = true;
      }
    }
  }
  return T;
}
