//===- pin/Runner.cpp - Native and serial-Pin timed runs ------------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "pin/Runner.h"

#include "os/Kernel.h"
#include "os/Scheduler.h"
#include "prof/Profile.h"
#include "support/ErrorHandling.h"
#include "support/RawOstream.h"
#include "vm/Interpreter.h"

using namespace spin;
using namespace spin::os;
using namespace spin::pin;
using namespace spin::vm;

namespace {

/// Charges page events of one process to a ledger.
class ChargingListener : public vm::MemoryEventListener {
public:
  ChargingListener(const CostModel &Model, prof::SliceProfile *Prof = nullptr)
      : Model(Model), Prof(Prof) {}

  void attach(TickLedger *NewLedger) { Ledger = NewLedger; }

  void onCowCopy(uint64_t) override {
    if (Ledger) {
      Ledger->charge(Model.CowCopyPageCost);
      if (Prof)
        Prof->charge(prof::Cause::Fork, Model.CowCopyPageCost);
    }
    ++CowCopies;
  }
  void onPageAlloc(uint64_t) override {
    if (Ledger) {
      Ledger->charge(Model.PageAllocCost);
      if (Prof)
        Prof->charge(prof::Cause::Fork, Model.PageAllocCost);
    }
    ++PageAllocs;
  }

  uint64_t CowCopies = 0;
  uint64_t PageAllocs = 0;

private:
  const CostModel &Model;
  prof::SliceProfile *Prof;
  TickLedger *Ledger = nullptr;
};

/// Uninstrumented single-process task.
class NativeTask : public SimTask {
public:
  NativeTask(const Program &Prog, const CostModel &Model, Ticks InstCost,
             Scheduler &Sched, RunReport &Report)
      : Proc(Process::create(Prog)), Interp(Prog, Proc.Cpu, Proc.Mem),
        Model(Model), InstCost(InstCost), Sched(Sched), Report(Report),
        Listener(Model) {
    Proc.Mem.setListener(&Listener);
  }

  std::string_view name() const override { return "native"; }

  TaskStep step(Ticks Budget) override {
    Ledger.beginStep(Budget);
    Listener.attach(&Ledger);
    while (Ledger.hasBudget() && Proc.Status == ProcStatus::Running) {
      uint64_t MaxInsts = Ledger.remaining() / InstCost;
      if (MaxInsts == 0)
        MaxInsts = 1;
      RunResult R;
      if (Proc.quantumExpired()) {
        R = Interp.runToBlockEnd(MaxInsts);
      } else {
        if (MaxInsts > Proc.quantumLeft())
          MaxInsts = Proc.quantumLeft(); // guest-thread quantum
        R = Interp.run(MaxInsts);
      }
      Ledger.charge(R.InstsExecuted * InstCost);
      Proc.noteRetired(R.InstsExecuted);
      switch (R.Reason) {
      case StopReason::Syscall: {
        SystemContext Ctx;
        Ctx.NowMs = Sched.nowMs();
        Ctx.OutputBuf = &Report.Output;
        serviceSyscall(Proc, Ctx, nullptr);
        Interp.noteSyscallRetired();
        Proc.noteRetired(1);
        Ledger.charge(InstCost + Model.SyscallCost);
        ++Report.Syscalls;
        break;
      }
      case StopReason::Halt:
      case StopReason::BadPc:
        reportFatalError("native run: guest fault in '" +
                         Proc.program().Name + "'");
      case StopReason::Budget:
      case StopReason::BlockEnd:
        break;
      }
      if (Proc.quantumExpired() && (R.Reason == StopReason::BlockEnd ||
                                    R.Reason == StopReason::Syscall ||
                                    R.EndedAtBlockBoundary))
        Proc.rotateThread();
    }
    Listener.attach(nullptr);
    if (Proc.Status == ProcStatus::Exited && !Ledger.inDebt()) {
      Report.Insts = Interp.instructionsRetired();
      Report.ExitCode = Proc.ExitCode;
      return {Ledger.used(), TaskStatus::Exited};
    }
    return {Ledger.used(), TaskStatus::Runnable};
  }

private:
  Process Proc;
  Interpreter Interp;
  const CostModel &Model;
  Ticks InstCost;
  Scheduler &Sched;
  RunReport &Report;
  ChargingListener Listener;
  TickLedger Ledger;
};

/// Classic serial Pin task: the whole program runs instrumented.
class SerialPinTask : public SimTask {
public:
  SerialPinTask(const Program &Prog, const CostModel &Model, Ticks InstCost,
                const ToolFactory &Factory, PinVmConfig Config,
                Scheduler &Sched, RunReport &Report)
      : Proc(Process::create(Prog)), Model(Model), InstCost(InstCost),
        Sched(Sched), Report(Report), Listener(Model, Config.Prof),
        Prof(Config.Prof), ToolInstance(Factory(SerialServices)),
        Vm(Proc, Model, ToolInstance.get(), Cache,
           withInstCost(Config, InstCost)) {
    Proc.Mem.setListener(&Listener);
  }

  std::string_view name() const override { return "serial-pin"; }

  TaskStep step(Ticks Budget) override {
    Ledger.beginStep(Budget);
    Listener.attach(&Ledger);
    while (Ledger.hasBudget() && Proc.Status == ProcStatus::Running) {
      // A zero cap drains the current basic block before InstCap.
      Vm.setRunCap(Proc.quantumExpired() ? 0 : Proc.quantumLeft());
      uint64_t Before = Vm.retired();
      VmStop Stop = Vm.run(Ledger);
      Proc.noteRetired(Vm.retired() - Before);
      switch (Stop) {
      case VmStop::Syscall: {
        ToolInstance->onSyscall(pendingSyscallNumber(Proc));
        SystemContext Ctx;
        Ctx.NowMs = Sched.nowMs();
        Ctx.OutputBuf = &Report.Output;
        serviceSyscall(Proc, Ctx, nullptr);
        Vm.noteSyscallRetired();
        Proc.noteRetired(1);
        Ledger.charge(InstCost + Model.SyscallCost);
        if (Prof) // The kernel service is work a native run pays too.
          Prof->noteNative(InstCost + Model.SyscallCost);
        ++Report.Syscalls;
        break;
      }
      case VmStop::BadPc:
        reportFatalError("serial pin: guest fault in '" +
                         Proc.program().Name + "'");
      case VmStop::Budget:
      case VmStop::Detected:
      case VmStop::ToolStop:
      case VmStop::InstCap:
        break;
      }
      if (Proc.quantumExpired() &&
          (Stop == VmStop::InstCap || Stop == VmStop::Syscall)) {
        Proc.rotateThread();
        Vm.noteContextSwitch();
      }
      if (Stop == VmStop::Budget)
        break;
    }
    Listener.attach(nullptr);
    if (Prof)
      Prof->noteConsumed(Ledger.used());
    if (Proc.Status == ProcStatus::Exited && !Ledger.inDebt()) {
      finishReport();
      return {Ledger.used(), TaskStatus::Exited};
    }
    return {Ledger.used(), TaskStatus::Runnable};
  }

private:
  static PinVmConfig withInstCost(PinVmConfig Config, Ticks InstCost) {
    Config.InstCost = InstCost;
    return Config;
  }

  Process Proc;
  const CostModel &Model;
  Ticks InstCost;
  Scheduler &Sched;
  RunReport &Report;
  ChargingListener Listener;
  prof::SliceProfile *Prof;
  SpServices SerialServices;
  CodeCache Cache;
  std::unique_ptr<Tool> ToolInstance;
  PinVm Vm;
  TickLedger Ledger;

  void finishReport() {
    Report.Insts = Vm.retired();
    Report.ExitCode = Proc.ExitCode;
    Report.AnalysisCalls = Vm.analysisCalls();
    Report.TracesCompiled = Vm.tracesCompiled();
    Report.CompileTicks = Vm.compileTicks();
    Report.TracesSeeded = Vm.tracesSeeded();
    Report.SeedTicks = Vm.seedTicks();
    Report.CallsSuppressed = Vm.analysisCallsSuppressed();
    Report.ReduxFlushes = Vm.reduxFlushes();
    Report.TracesRecompiled = Vm.tracesRecompiled();
    Report.RecompileTicks = Vm.recompileTicks();
    Report.ReduxSavedTicks = Vm.reduxSavedTicks();
    RawStringOstream OS(Report.FiniOutput);
    ToolInstance->onFini(OS);
  }
};

} // namespace

RunReport spin::pin::runNative(const Program &Prog, const CostModel &Model,
                               Ticks InstCost) {
  RunReport Report;
  Scheduler Sched(Model, 1, 1);
  Sched.addTask(
      std::make_unique<NativeTask>(Prog, Model, InstCost, Sched, Report));
  Sched.runToCompletion();
  Report.WallTicks = Sched.now();
  Report.CpuTicks = Sched.cpuTime(0);
  return Report;
}

RunReport spin::pin::runSerialPin(const Program &Prog, const CostModel &Model,
                                  Ticks InstCost, const ToolFactory &Factory,
                                  PinVmConfig Config) {
  RunReport Report;
  Scheduler Sched(Model, 1, 1);
  Sched.addTask(std::make_unique<SerialPinTask>(Prog, Model, InstCost,
                                                Factory, Config, Sched,
                                                Report));
  Sched.runToCompletion();
  Report.WallTicks = Sched.now();
  Report.CpuTicks = Sched.cpuTime(0);
  return Report;
}
