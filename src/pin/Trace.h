//===- pin/Trace.h - Compiled traces and instrumentation views --*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MiniPin compilation unit: a trace of straight-line guest code
/// (possibly spanning several basic blocks past not-taken conditional
/// branches, like Pin traces), plus the Trace/Bbl/Ins views a Pintool uses
/// to insert analysis calls during compilation.
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_PIN_TRACE_H
#define SUPERPIN_PIN_TRACE_H

#include "os/CostModel.h"
#include "pin/Args.h"
#include "vm/Instruction.h"

#include <memory>
#include <vector>

namespace spin::pin {

/// One analysis call site attached to an instruction (IPOINT_BEFORE).
/// Either a plain call (If empty) or an If/Then pair: If is evaluated
/// inline cheaply; Fn runs only when If returns nonzero (or always, for
/// plain calls).
struct CallSite {
  PredicateFn If;          ///< empty for plain calls
  AnalysisFn Fn;           ///< the analysis routine (Then for If/Then)
  std::vector<Arg> Args;   ///< arguments for Fn
  std::vector<Arg> IfArgs; ///< arguments for If
  os::Ticks FnUserCost = 0; ///< modeled cost of the routine body
  os::Ticks IfUserCost = 0; ///< modeled extra cost of the If body
  /// IPOINT_AFTER: run after the instruction executes, with arguments
  /// evaluated against post-execution state. Not allowed on syscalls.
  bool After = false;
  /// Batched form (insertAggregableCall); empty for ordinary sites.
  /// Contract: Agg(Args, N) must equal N consecutive Fn(Args) calls.
  AggregateFn Agg;
  /// Set by the redux compile pass (Compiler.cpp with a RedundancyInfo):
  /// the VM defers this site into a pending count instead of calling Fn,
  /// and replays it through Agg at the next flush boundary. Only ever set
  /// on sites with Agg, no predicate, and pure-immediate arguments.
  bool Batched = false;
  /// Dense index into the owning VM's deferred-aggregate table, assigned
  /// by PinVm when the hot trace is recompiled with redux marks (code
  /// caches are exclusive to one VM, so VM-wide indices are safe).
  /// Meaningless unless Batched.
  uint32_t BatchSlot = 0;
};

/// One guest instruction within a compiled trace.
struct TraceStep {
  const vm::Instruction *Inst = nullptr;
  uint64_t Pc = 0;
  uint32_t BblIndex = 0; ///< which basic block of the trace this is in
  std::vector<CallSite> Calls;
};

/// A compiled, instrumented trace stored in the code cache.
struct CompiledTrace {
  uint64_t StartPc = 0;
  std::vector<TraceStep> Steps;
  uint32_t NumBbls = 0;
  os::Ticks CompileCost = 0;

  /// Index of the first step of basic block \p B.
  std::vector<uint32_t> BblStart;

  /// Dispatches into this trace; drives the redux hot-trace recompile
  /// threshold (PinVmConfig::ReduxHotThreshold).
  uint64_t Entries = 0;
  /// Compiled with redundancy marks (the recompiled hot form, or the
  /// tool/classifier found nothing to batch — either way, final).
  bool ReduxApplied = false;
};

class Bbl;
class Trace;

/// Instrumentation-time view of one instruction (Pin's INS).
class Ins {
public:
  Ins(CompiledTrace &Owner, uint32_t StepIndex)
      : Owner(&Owner), StepIndex(StepIndex) {}

  uint64_t address() const { return step().Pc; }
  const vm::Instruction &inst() const { return *step().Inst; }

  bool isMemoryRead() const { return inst().isMemRead(); }
  bool isMemoryWrite() const { return inst().isMemWrite(); }
  bool isBranch() const { return inst().isControlFlow(); }
  bool isCall() const { return inst().isCall(); }
  bool isRet() const { return inst().isRet(); }
  bool isSyscall() const { return inst().isSyscall(); }
  bool hasMemOperand() const { return inst().hasMemOperand(); }

  /// Pin's INS_InsertCall at IPOINT_BEFORE: \p Fn runs with \p Args every
  /// time this instruction executes. \p UserCost models the virtual-time
  /// cost of the routine body (the call/spill overhead is added by the
  /// cost model).
  void insertCall(AnalysisFn Fn, std::vector<Arg> Args,
                  os::Ticks UserCost = 100);

  /// Pin's INS_InsertCall at IPOINT_AFTER: \p Fn runs after the
  /// instruction executes; RegValue arguments observe post-execution
  /// state (e.g. a load's destination). Memory/branch argument kinds are
  /// meaningless here and asserted against, as are syscall instructions
  /// (which the VM never executes itself).
  void insertAfterCall(AnalysisFn Fn, std::vector<Arg> Args,
                       os::Ticks UserCost = 100);

  /// Aggregation-eligible insertCall (IPOINT_BEFORE): like insertCall,
  /// but additionally supplies the batched form \p Agg with the contract
  /// Agg(Args, N) == N consecutive Fn(Args) calls. All arguments must be
  /// immediates (Arg::imm) — iteration-varying argument kinds cannot be
  /// replayed from a flush boundary. Without -spredux (or when the block
  /// is classified stateful) the site behaves exactly like insertCall.
  void insertAggregableCall(AnalysisFn Fn, AggregateFn Agg,
                            std::vector<Arg> Args, os::Ticks UserCost = 100);

  /// Pin's INS_InsertIfCall: \p If is inlined at this instruction; pair it
  /// with insertThenCall. Asserts if called twice without a Then.
  void insertIfCall(PredicateFn If, std::vector<Arg> Args,
                    os::Ticks UserCost = 0);

  /// Pin's INS_InsertThenCall: binds \p Fn to the preceding insertIfCall.
  void insertThenCall(AnalysisFn Fn, std::vector<Arg> Args,
                      os::Ticks UserCost = 100);

private:
  friend class Bbl;
  friend class Trace;
  CompiledTrace *Owner;
  uint32_t StepIndex;

  TraceStep &step() const { return Owner->Steps[StepIndex]; }
};

/// Instrumentation-time view of one basic block (Pin's BBL).
class Bbl {
public:
  Bbl(CompiledTrace &Owner, uint32_t BblIndex)
      : Owner(&Owner), BblIndex(BblIndex) {}

  uint64_t address() const { return Owner->Steps[firstStep()].Pc; }
  uint32_t numIns() const;

  /// First instruction of the block (Pin's BBL_InsHead).
  Ins insHead() const { return Ins(*Owner, firstStep()); }

  /// The \p I-th instruction of the block.
  Ins insAt(uint32_t I) const;

private:
  CompiledTrace *Owner;
  uint32_t BblIndex;

  uint32_t firstStep() const { return Owner->BblStart[BblIndex]; }
};

/// Instrumentation-time view of a whole trace (Pin's TRACE).
class Trace {
public:
  explicit Trace(CompiledTrace &Owner) : Owner(&Owner) {}

  uint64_t address() const { return Owner->StartPc; }
  uint32_t numBbls() const { return Owner->NumBbls; }
  uint32_t numIns() const {
    return static_cast<uint32_t>(Owner->Steps.size());
  }

  Bbl bblAt(uint32_t B) const { return Bbl(*Owner, B); }
  Ins insAt(uint32_t StepIndex) const { return Ins(*Owner, StepIndex); }

private:
  CompiledTrace *Owner;
};

} // namespace spin::pin

#endif // SUPERPIN_PIN_TRACE_H
