//===- pin/Trace.cpp - Instrumentation view implementations ---------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "pin/Trace.h"

#include <cassert>

using namespace spin;
using namespace spin::pin;

void Ins::insertCall(AnalysisFn Fn, std::vector<Arg> Args,
                     os::Ticks UserCost) {
  assert(Args.size() <= MaxAnalysisArgs && "too many analysis arguments");
  CallSite Site;
  Site.Fn = std::move(Fn);
  Site.Args = std::move(Args);
  Site.FnUserCost = UserCost;
  step().Calls.push_back(std::move(Site));
}

void Ins::insertAfterCall(AnalysisFn Fn, std::vector<Arg> Args,
                          os::Ticks UserCost) {
  assert(Args.size() <= MaxAnalysisArgs && "too many analysis arguments");
  assert(!inst().isSyscall() && "IPOINT_AFTER unsupported on syscalls");
#ifndef NDEBUG
  for (const Arg &A : Args)
    assert(A.Kind != ArgKind::MemoryEa && A.Kind != ArgKind::MemorySize &&
           A.Kind != ArgKind::BranchTaken &&
           A.Kind != ArgKind::BranchTarget &&
           "argument kind undefined at IPOINT_AFTER");
#endif
  CallSite Site;
  Site.Fn = std::move(Fn);
  Site.Args = std::move(Args);
  Site.FnUserCost = UserCost;
  Site.After = true;
  step().Calls.push_back(std::move(Site));
}

void Ins::insertAggregableCall(AnalysisFn Fn, AggregateFn Agg,
                               std::vector<Arg> Args, os::Ticks UserCost) {
  assert(Args.size() <= MaxAnalysisArgs && "too many analysis arguments");
#ifndef NDEBUG
  for (const Arg &A : Args)
    assert(A.Kind == ArgKind::Uint64 &&
           "aggregable calls take immediate arguments only");
#endif
  CallSite Site;
  Site.Fn = std::move(Fn);
  Site.Agg = std::move(Agg);
  Site.Args = std::move(Args);
  Site.FnUserCost = UserCost;
  step().Calls.push_back(std::move(Site));
}

void Ins::insertIfCall(PredicateFn If, std::vector<Arg> Args,
                       os::Ticks UserCost) {
  assert(Args.size() <= MaxAnalysisArgs && "too many analysis arguments");
  assert((step().Calls.empty() || step().Calls.back().Fn) &&
         "insertIfCall after an unpaired insertIfCall");
  CallSite Site;
  Site.If = std::move(If);
  Site.IfArgs = std::move(Args);
  Site.IfUserCost = UserCost;
  step().Calls.push_back(std::move(Site));
}

void Ins::insertThenCall(AnalysisFn Fn, std::vector<Arg> Args,
                         os::Ticks UserCost) {
  assert(Args.size() <= MaxAnalysisArgs && "too many analysis arguments");
  assert(!step().Calls.empty() && step().Calls.back().If &&
         !step().Calls.back().Fn &&
         "insertThenCall without a preceding insertIfCall");
  CallSite &Site = step().Calls.back();
  Site.Fn = std::move(Fn);
  Site.Args = std::move(Args);
  Site.FnUserCost = UserCost;
}

uint32_t Bbl::numIns() const {
  uint32_t Begin = Owner->BblStart[BblIndex];
  uint32_t End = BblIndex + 1 < Owner->NumBbls
                     ? Owner->BblStart[BblIndex + 1]
                     : static_cast<uint32_t>(Owner->Steps.size());
  return End - Begin;
}

Ins Bbl::insAt(uint32_t I) const {
  assert(I < numIns() && "instruction index out of range");
  return Ins(*Owner, firstStep() + I);
}
