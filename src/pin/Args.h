//===- pin/Args.h - Analysis-call argument marshalling ----------*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The IARG_* equivalents of Pin's analysis-call argument system. A tool
/// attaches a list of Arg descriptors to each inserted call; the VM
/// evaluates them against pre-execution architectural state and passes the
/// resulting uint64 values to the analysis function.
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_PIN_ARGS_H
#define SUPERPIN_PIN_ARGS_H

#include <cstdint>
#include <functional>
#include <vector>

namespace spin::pin {

/// What a marshalled argument evaluates to (Pin's IARG_...).
enum class ArgKind : uint8_t {
  Uint64,      ///< IARG_UINT64: the constant in Payload
  InstPtr,     ///< IARG_INST_PTR: pc of the instrumented instruction
  MemoryEa,    ///< IARG_MEMORY{READ,WRITE}_EA: effective address
  MemorySize,  ///< IARG_MEMORY{READ,WRITE}_SIZE: access width in bytes
  BranchTaken, ///< IARG_BRANCH_TAKEN: 1 if the branch will be taken
  BranchTarget, ///< IARG_BRANCH_TARGET_ADDR: where control transfers to
  RegValue,    ///< IARG_REG_VALUE: value of register index Payload
  ThreadId,    ///< IARG_THREAD_ID: current guest thread index
  SliceNum,    ///< SuperPin extension: current slice number (0 serially)
};

/// One argument descriptor.
struct Arg {
  ArgKind Kind;
  uint64_t Payload = 0;

  static Arg imm(uint64_t Value) { return {ArgKind::Uint64, Value}; }
  static Arg instPtr() { return {ArgKind::InstPtr, 0}; }
  static Arg memoryEa() { return {ArgKind::MemoryEa, 0}; }
  static Arg memorySize() { return {ArgKind::MemorySize, 0}; }
  static Arg branchTaken() { return {ArgKind::BranchTaken, 0}; }
  static Arg branchTarget() { return {ArgKind::BranchTarget, 0}; }
  static Arg regValue(unsigned Reg) { return {ArgKind::RegValue, Reg}; }
  static Arg threadId() { return {ArgKind::ThreadId, 0}; }
  static Arg sliceNum() { return {ArgKind::SliceNum, 0}; }
};

/// Evaluated arguments are passed as a pointer to this fixed-size array.
constexpr unsigned MaxAnalysisArgs = 6;
using ArgValues = uint64_t[MaxAnalysisArgs];

/// An analysis routine. Pin would call a bare function pointer; tools here
/// bind member functions/lambdas, which std::function carries.
using AnalysisFn = std::function<void(const uint64_t *Args)>;

/// The batched form of an aggregation-eligible analysis routine
/// (Ins::insertAggregableCall): must satisfy, for every Args and Count,
///
///   Agg(Args, Count)  ==  Count consecutive calls of Fn(Args)
///
/// observed through the tool's state (e.g. `Icount += A[0] * Count`).
/// The redundancy-suppressing JIT replays deferred iterations through
/// this at flush boundaries; the contract is what keeps -spredux runs
/// byte-identical to unsuppressed ones.
using AggregateFn =
    std::function<void(const uint64_t *Args, uint64_t Count)>;

/// An InsertIfCall predicate: nonzero means "run the Then call".
using PredicateFn = std::function<uint64_t(const uint64_t *Args)>;

} // namespace spin::pin

#endif // SUPERPIN_PIN_ARGS_H
