//===- pin/CodeCache.h - Compiled trace cache -------------------*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The code cache: compiled traces keyed by entry pc. Each SuperPin slice
/// normally owns a private cache that starts cold — the source of the
/// paper's "compilation slowdown" (Section 6.3 item 2). The cache can also
/// be shared across slices (the Section 8 future-work optimization); the
/// shared mode is exercised by the abl_sharedcc benchmark.
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_PIN_CODECACHE_H
#define SUPERPIN_PIN_CODECACHE_H

#include "pin/Trace.h"

#include <memory>
#include <unordered_map>
#include <unordered_set>

namespace spin::pin {

/// Registry of trace entry points that some slice has already compiled.
/// This models the paper's Section 8 shared-code-cache proposal: because
/// each tool instance holds slice-local data, instrumented code itself
/// stays per-slice, but the expensive JIT work is shared — a slice
/// adopting an already-compiled trace pays only a cheap consistency-check
/// cost instead of full compilation.
struct SharedJitRegistry {
  std::unordered_set<uint64_t> Compiled;
  /// Divisor applied to compile cost for adopted traces.
  static constexpr uint64_t AdoptDiscount = 20;
};

class CodeCache {
public:
  /// Returns the trace starting at \p Pc, or nullptr on a miss.
  CompiledTrace *lookup(uint64_t Pc) {
    ++Lookups;
    auto It = Traces.find(Pc);
    if (It == Traces.end()) {
      ++Misses;
      return nullptr;
    }
    return It->second.get();
  }

  /// True if a trace starting at \p Pc is cached. Unlike lookup(), does
  /// not touch the lookup/miss statistics (used by batch seeding).
  bool contains(uint64_t Pc) const { return Traces.count(Pc) != 0; }

  /// Inserts a freshly compiled trace and returns a stable pointer to it.
  CompiledTrace *insert(std::unique_ptr<CompiledTrace> T) {
    uint64_t Pc = T->StartPc;
    CompiledTrace *Raw = T.get();
    CompiledInsts += T->Steps.size();
    Traces[Pc] = std::move(T);
    return Raw;
  }

  /// Drops every trace (cache flush).
  void flush() { Traces.clear(); }

  uint64_t numTraces() const { return Traces.size(); }
  uint64_t lookups() const { return Lookups; }
  uint64_t misses() const { return Misses; }
  uint64_t compiledInsts() const { return CompiledInsts; }

private:
  std::unordered_map<uint64_t, std::unique_ptr<CompiledTrace>> Traces;
  uint64_t Lookups = 0;
  uint64_t Misses = 0;
  uint64_t CompiledInsts = 0;
};

} // namespace spin::pin

#endif // SUPERPIN_PIN_CODECACHE_H
