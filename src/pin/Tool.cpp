//===- pin/Tool.cpp - Pintool interface anchors ---------------------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "pin/Tool.h"

using namespace spin;
using namespace spin::pin;

SpServices::~SpServices() = default;
Tool::~Tool() = default;
