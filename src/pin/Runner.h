//===- pin/Runner.h - Native and serial-Pin timed runs ----------*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Timed whole-program runs on the discrete-time machine: uninstrumented
/// ("native") and classic serial Pin. These are the two baselines every
/// figure in the paper compares SuperPin against.
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_PIN_RUNNER_H
#define SUPERPIN_PIN_RUNNER_H

#include "os/CostModel.h"
#include "pin/PinVm.h"
#include "pin/Tool.h"

#include <string>

namespace spin::vm {
class Program;
}

namespace spin::pin {

/// Result of a timed single-process run.
struct RunReport {
  os::Ticks WallTicks = 0;  ///< virtual wall-clock duration
  os::Ticks CpuTicks = 0;   ///< work consumed
  uint64_t Insts = 0;       ///< retired guest instructions
  uint64_t Syscalls = 0;
  int ExitCode = 0;
  std::string Output;       ///< guest program output
  std::string FiniOutput;   ///< tool onFini output (empty for native)
  // Engine statistics (serial Pin only).
  uint64_t AnalysisCalls = 0;
  uint64_t TracesCompiled = 0;
  os::Ticks CompileTicks = 0;
  // Static trace seeding (PinVmConfig::SeedCfg): precompiled traces and
  // their batch-compile cost.
  uint64_t TracesSeeded = 0;
  os::Ticks SeedTicks = 0;
  // Redundancy suppression (PinVmConfig::Redux, -spredux): deferred
  // analysis calls, aggregate replays, hot-trace recompiles, and the net
  // ticks the deferral saved.
  uint64_t CallsSuppressed = 0;
  uint64_t ReduxFlushes = 0;
  uint64_t TracesRecompiled = 0;
  os::Ticks RecompileTicks = 0;
  os::Ticks ReduxSavedTicks = 0;
};

/// Runs \p Prog uninstrumented on one CPU of the simulated machine.
/// \p InstCost is the per-instruction cost in ticks (workload CPI ×
/// Model.TicksPerInst).
RunReport runNative(const vm::Program &Prog, const os::CostModel &Model,
                    os::Ticks InstCost);

/// Runs \p Prog under classic serial Pin with the tool \p Factory builds.
RunReport runSerialPin(const vm::Program &Prog, const os::CostModel &Model,
                       os::Ticks InstCost, const ToolFactory &Factory,
                       PinVmConfig Config = PinVmConfig());

} // namespace spin::pin

#endif // SUPERPIN_PIN_RUNNER_H
