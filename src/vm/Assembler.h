//===- vm/Assembler.h - Two-pass guest assembler ----------------*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A two-pass assembler for the guest ISA. It exists so tests and examples
/// can express guest programs readably; the workload generators use the
/// ProgramBuilder API instead.
///
/// Syntax:
/// \code
///   ; line comment (also #)
///   .text                 ; switch to text section (default)
///   .data                 ; switch to data section
///   main:                 ; label (text: instruction addr; data: byte addr)
///     movi r1, 100
///     movi r2, buf        ; labels are address constants
///   loop:
///     addi r1, r1, -1
///     bne  r1, r0, loop
///     ld64 r3, [r2+8]
///     st64 [r2+16], r3
///     syscall
///   .data
///   buf:  .space 64
///   vals: .word64 1, 2, 3
///   msg:  .asciiz "hi"
///   .align 8
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_VM_ASSEMBLER_H
#define SUPERPIN_VM_ASSEMBLER_H

#include "vm/Program.h"

#include <optional>
#include <string>
#include <string_view>

namespace spin::vm {

/// Assembles \p Source into a Program named \p Name. The entry point is the
/// `main` label if present, otherwise the first text instruction.
///
/// \returns the program, or std::nullopt with a "line N: message" diagnostic
/// in \p ErrorMsg.
std::optional<Program> assemble(std::string_view Source, std::string_view Name,
                                std::string &ErrorMsg);

} // namespace spin::vm

#endif // SUPERPIN_VM_ASSEMBLER_H
