//===- vm/ProgramBuilder.h - Programmatic guest code emission ---*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An emission API for constructing guest programs in C++. The SPEC2000-like
/// workload generators use this to synthesize programs with controlled code
/// footprint, loop structure, memory behaviour, and syscall frequency.
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_VM_PROGRAMBUILDER_H
#define SUPERPIN_VM_PROGRAMBUILDER_H

#include "vm/Program.h"

#include <string>
#include <vector>

namespace spin::vm {

/// Register operand wrapper for builder calls; implicit from unsigned.
struct Reg {
  uint8_t Index;
  constexpr Reg(unsigned Index) : Index(static_cast<uint8_t>(Index)) {
    assert(Index < NumRegs && "bad register");
  }
};

/// Builds a Program instruction by instruction with label fixups.
class ProgramBuilder {
public:
  explicit ProgramBuilder(std::string Name) { Prog.Name = std::move(Name); }

  using LabelId = uint32_t;

  /// Creates an unbound label.
  LabelId createLabel();

  /// Binds \p Label to the next emitted instruction.
  void bind(LabelId Label);

  /// Defines a named symbol at the next emitted instruction (for Program
  /// consumers; "main" sets the entry point).
  void defineSymbol(const std::string &Name);

  /// Reserves \p Size bytes in the data segment, \p Align-aligned.
  /// \returns the guest address of the block.
  uint64_t allocData(uint64_t Size, uint64_t Align = 8);

  /// Writes a 64-bit initial value into the data segment at \p Addr.
  void initData64(uint64_t Addr, uint64_t Value);

  /// Writes raw bytes into the data segment at \p Addr.
  void initDataBytes(uint64_t Addr, const void *Data, uint64_t Size);

  /// Current instruction address (address the next emit will have).
  uint64_t currentAddress() const {
    return Program::addressOfIndex(Prog.Text.size());
  }

  // --- Instruction emitters (one per opcode, grouped by format) ---
  void nop() { emit({Opcode::Nop}); }
  void halt() { emit({Opcode::Halt}); }
  void mov(Reg D, Reg A) { emit({Opcode::Mov, D.Index, A.Index}); }
  void movi(Reg D, int64_t Imm) {
    emit({Opcode::Movi, D.Index, 0, 0, Imm});
  }
  /// movi of a code label's address (resolved at take()).
  void moviLabel(Reg D, LabelId Label);

  void add(Reg D, Reg A, Reg B) {
    emit({Opcode::Add, D.Index, A.Index, B.Index});
  }
  void sub(Reg D, Reg A, Reg B) {
    emit({Opcode::Sub, D.Index, A.Index, B.Index});
  }
  void mul(Reg D, Reg A, Reg B) {
    emit({Opcode::Mul, D.Index, A.Index, B.Index});
  }
  void divu(Reg D, Reg A, Reg B) {
    emit({Opcode::Divu, D.Index, A.Index, B.Index});
  }
  void remu(Reg D, Reg A, Reg B) {
    emit({Opcode::Remu, D.Index, A.Index, B.Index});
  }
  void and_(Reg D, Reg A, Reg B) {
    emit({Opcode::And, D.Index, A.Index, B.Index});
  }
  void or_(Reg D, Reg A, Reg B) {
    emit({Opcode::Or, D.Index, A.Index, B.Index});
  }
  void xor_(Reg D, Reg A, Reg B) {
    emit({Opcode::Xor, D.Index, A.Index, B.Index});
  }
  void shl(Reg D, Reg A, Reg B) {
    emit({Opcode::Shl, D.Index, A.Index, B.Index});
  }
  void shr(Reg D, Reg A, Reg B) {
    emit({Opcode::Shr, D.Index, A.Index, B.Index});
  }
  void sar(Reg D, Reg A, Reg B) {
    emit({Opcode::Sar, D.Index, A.Index, B.Index});
  }
  void slt(Reg D, Reg A, Reg B) {
    emit({Opcode::Slt, D.Index, A.Index, B.Index});
  }
  void sltu(Reg D, Reg A, Reg B) {
    emit({Opcode::Sltu, D.Index, A.Index, B.Index});
  }

  void addi(Reg D, Reg A, int64_t Imm) {
    emit({Opcode::Addi, D.Index, A.Index, 0, Imm});
  }
  void muli(Reg D, Reg A, int64_t Imm) {
    emit({Opcode::Muli, D.Index, A.Index, 0, Imm});
  }
  void andi(Reg D, Reg A, int64_t Imm) {
    emit({Opcode::Andi, D.Index, A.Index, 0, Imm});
  }
  void ori(Reg D, Reg A, int64_t Imm) {
    emit({Opcode::Ori, D.Index, A.Index, 0, Imm});
  }
  void xori(Reg D, Reg A, int64_t Imm) {
    emit({Opcode::Xori, D.Index, A.Index, 0, Imm});
  }
  void shli(Reg D, Reg A, int64_t Imm) {
    emit({Opcode::Shli, D.Index, A.Index, 0, Imm});
  }
  void shri(Reg D, Reg A, int64_t Imm) {
    emit({Opcode::Shri, D.Index, A.Index, 0, Imm});
  }
  void slti(Reg D, Reg A, int64_t Imm) {
    emit({Opcode::Slti, D.Index, A.Index, 0, Imm});
  }

  void ld8u(Reg D, Reg Base, int64_t Off) {
    emit({Opcode::Ld8u, D.Index, Base.Index, 0, Off});
  }
  void ld16u(Reg D, Reg Base, int64_t Off) {
    emit({Opcode::Ld16u, D.Index, Base.Index, 0, Off});
  }
  void ld32u(Reg D, Reg Base, int64_t Off) {
    emit({Opcode::Ld32u, D.Index, Base.Index, 0, Off});
  }
  void ld64(Reg D, Reg Base, int64_t Off) {
    emit({Opcode::Ld64, D.Index, Base.Index, 0, Off});
  }
  void st8(Reg Base, int64_t Off, Reg V) {
    emit({Opcode::St8, Base.Index, V.Index, 0, Off});
  }
  void st16(Reg Base, int64_t Off, Reg V) {
    emit({Opcode::St16, Base.Index, V.Index, 0, Off});
  }
  void st32(Reg Base, int64_t Off, Reg V) {
    emit({Opcode::St32, Base.Index, V.Index, 0, Off});
  }
  void st64(Reg Base, int64_t Off, Reg V) {
    emit({Opcode::St64, Base.Index, V.Index, 0, Off});
  }
  void incm(Reg Base, int64_t Off) {
    emit({Opcode::Incm, 0, Base.Index, 0, Off});
  }

  void push(Reg A) { emit({Opcode::Push, A.Index}); }
  void pop(Reg D) { emit({Opcode::Pop, D.Index}); }

  void jmp(LabelId Target) { emitWithLabel({Opcode::Jmp}, Target); }
  void jr(Reg A) { emit({Opcode::Jr, A.Index}); }
  void call(LabelId Target) { emitWithLabel({Opcode::Call}, Target); }
  void callr(Reg A) { emit({Opcode::Callr, A.Index}); }
  void ret() { emit({Opcode::Ret}); }

  void beq(Reg A, Reg B, LabelId T) {
    emitWithLabel({Opcode::Beq, A.Index, B.Index}, T);
  }
  void bne(Reg A, Reg B, LabelId T) {
    emitWithLabel({Opcode::Bne, A.Index, B.Index}, T);
  }
  void blt(Reg A, Reg B, LabelId T) {
    emitWithLabel({Opcode::Blt, A.Index, B.Index}, T);
  }
  void bge(Reg A, Reg B, LabelId T) {
    emitWithLabel({Opcode::Bge, A.Index, B.Index}, T);
  }
  void bltu(Reg A, Reg B, LabelId T) {
    emitWithLabel({Opcode::Bltu, A.Index, B.Index}, T);
  }
  void bgeu(Reg A, Reg B, LabelId T) {
    emitWithLabel({Opcode::Bgeu, A.Index, B.Index}, T);
  }

  void syscall() { emit({Opcode::Syscall}); }

  /// Finalizes the program: resolves all fixups and returns the image.
  /// The builder must not be reused afterwards.
  Program take();

private:
  Program Prog;
  std::vector<int64_t> LabelAddrs; ///< -1 while unbound
  struct Fixup {
    uint64_t InstIndex;
    LabelId Label;
  };
  std::vector<Fixup> Fixups;
  uint64_t DataSize = 0;

  void emit(Instruction I) { Prog.Text.push_back(I); }
  void emitWithLabel(Instruction I, LabelId Label);
};

} // namespace spin::vm

#endif // SUPERPIN_VM_PROGRAMBUILDER_H
