//===- vm/Exec.h - Single-instruction execution semantics -------*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one place that defines guest instruction semantics. Both the plain
/// interpreter (native execution of the master application) and the MiniPin
/// JIT-compiled traces (instrumented slice execution) call executeInstruction
/// so the two paths can never diverge behaviourally — a prerequisite for
/// SuperPin's slices reproducing exactly the master's computation.
///
/// Division by zero follows the RISC-V convention (quotient = all ones,
/// remainder = dividend) so no instruction can fault; the only architectural
/// events are Syscall and Halt.
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_VM_EXEC_H
#define SUPERPIN_VM_EXEC_H

#include "support/ErrorHandling.h"
#include "vm/GuestMemory.h"
#include "vm/Instruction.h"
#include "vm/Program.h"

namespace spin::vm {

/// Outcome classification of one instruction.
enum class ExecStatus : uint8_t {
  Ok,      ///< executed; CpuState advanced
  Syscall, ///< NOT executed; the environment must service it and advance Pc
  Halt,    ///< halt instruction reached
};

/// Side-channel facts about an executed instruction, consumed by the
/// instrumentation argument marshalling (IARG_* equivalents).
struct ExecInfo {
  uint64_t MemAddr = 0;    ///< effective address if the op touches memory
  uint32_t MemSize = 0;    ///< access size in bytes (0 if none)
  bool BranchTaken = false;
};

/// Computes the effective address of \p I's memory operand (including the
/// implicit stack accesses of push/pop/call/ret) given pre-execution state.
/// Returns 0 and sets \p Size to 0 for non-memory instructions.
inline uint64_t computeMemEA(const Instruction &I, const CpuState &S,
                             uint32_t &Size) {
  switch (I.Op) {
  case Opcode::Ld8u:
    Size = 1;
    return S.Regs[I.B] + static_cast<uint64_t>(I.Imm);
  case Opcode::Ld16u:
    Size = 2;
    return S.Regs[I.B] + static_cast<uint64_t>(I.Imm);
  case Opcode::Ld32u:
    Size = 4;
    return S.Regs[I.B] + static_cast<uint64_t>(I.Imm);
  case Opcode::Ld64:
  case Opcode::Incm:
    Size = 8;
    return S.Regs[I.B] + static_cast<uint64_t>(I.Imm);
  case Opcode::St8:
    Size = 1;
    return S.Regs[I.A] + static_cast<uint64_t>(I.Imm);
  case Opcode::St16:
    Size = 2;
    return S.Regs[I.A] + static_cast<uint64_t>(I.Imm);
  case Opcode::St32:
    Size = 4;
    return S.Regs[I.A] + static_cast<uint64_t>(I.Imm);
  case Opcode::St64:
    Size = 8;
    return S.Regs[I.A] + static_cast<uint64_t>(I.Imm);
  case Opcode::Push:
  case Opcode::Call:
  case Opcode::Callr:
    Size = 8;
    return S.sp() - 8;
  case Opcode::Pop:
  case Opcode::Ret:
    Size = 8;
    return S.sp();
  default:
    Size = 0;
    return 0;
  }
}

/// Evaluates, without side effects, whether control-flow instruction \p I
/// would transfer control (true for unconditional transfers). Used to
/// marshal IARG_BRANCH_TAKEN before the instruction executes.
inline bool wouldBranch(const Instruction &I, const CpuState &S) {
  switch (I.Op) {
  case Opcode::Beq:
    return S.Regs[I.A] == S.Regs[I.B];
  case Opcode::Bne:
    return S.Regs[I.A] != S.Regs[I.B];
  case Opcode::Blt:
    return static_cast<int64_t>(S.Regs[I.A]) <
           static_cast<int64_t>(S.Regs[I.B]);
  case Opcode::Bge:
    return static_cast<int64_t>(S.Regs[I.A]) >=
           static_cast<int64_t>(S.Regs[I.B]);
  case Opcode::Bltu:
    return S.Regs[I.A] < S.Regs[I.B];
  case Opcode::Bgeu:
    return S.Regs[I.A] >= S.Regs[I.B];
  default:
    return I.isControlFlow();
  }
}

/// Evaluates, without side effects, where control-flow instruction \p I
/// would transfer to if taken (IARG_BRANCH_TARGET_ADDR). Returns the
/// fall-through address for non-control-flow instructions.
inline uint64_t branchTargetOf(const Instruction &I, uint64_t Pc,
                               const CpuState &S, const GuestMemory &M) {
  switch (I.Op) {
  case Opcode::Jmp:
  case Opcode::Call:
  case Opcode::Beq:
  case Opcode::Bne:
  case Opcode::Blt:
  case Opcode::Bge:
  case Opcode::Bltu:
  case Opcode::Bgeu:
    return static_cast<uint64_t>(I.Imm);
  case Opcode::Jr:
  case Opcode::Callr:
    return S.Regs[I.A];
  case Opcode::Ret:
    return M.read64(S.sp());
  default:
    return Pc + InstSize;
  }
}

/// Executes \p I at \p Pc, updating \p S (including S.Pc) and \p M.
/// \p Info receives memory/branch facts for instrumentation.
inline ExecStatus executeInstruction(const Instruction &I, uint64_t Pc,
                                     CpuState &S, GuestMemory &M,
                                     ExecInfo &Info) {
  uint64_t NextPc = Pc + InstSize;
  Info.BranchTaken = false;
  Info.MemAddr = computeMemEA(I, S, Info.MemSize);

  switch (I.Op) {
  case Opcode::Nop:
    break;
  case Opcode::Halt:
    S.Pc = Pc;
    return ExecStatus::Halt;
  case Opcode::Mov:
    S.Regs[I.A] = S.Regs[I.B];
    break;
  case Opcode::Movi:
    S.Regs[I.A] = static_cast<uint64_t>(I.Imm);
    break;
  case Opcode::Add:
    S.Regs[I.A] = S.Regs[I.B] + S.Regs[I.C];
    break;
  case Opcode::Sub:
    S.Regs[I.A] = S.Regs[I.B] - S.Regs[I.C];
    break;
  case Opcode::Mul:
    S.Regs[I.A] = S.Regs[I.B] * S.Regs[I.C];
    break;
  case Opcode::Divu:
    S.Regs[I.A] =
        S.Regs[I.C] == 0 ? ~uint64_t(0) : S.Regs[I.B] / S.Regs[I.C];
    break;
  case Opcode::Remu:
    S.Regs[I.A] = S.Regs[I.C] == 0 ? S.Regs[I.B] : S.Regs[I.B] % S.Regs[I.C];
    break;
  case Opcode::And:
    S.Regs[I.A] = S.Regs[I.B] & S.Regs[I.C];
    break;
  case Opcode::Or:
    S.Regs[I.A] = S.Regs[I.B] | S.Regs[I.C];
    break;
  case Opcode::Xor:
    S.Regs[I.A] = S.Regs[I.B] ^ S.Regs[I.C];
    break;
  case Opcode::Shl:
    S.Regs[I.A] = S.Regs[I.B] << (S.Regs[I.C] & 63);
    break;
  case Opcode::Shr:
    S.Regs[I.A] = S.Regs[I.B] >> (S.Regs[I.C] & 63);
    break;
  case Opcode::Sar:
    S.Regs[I.A] = static_cast<uint64_t>(static_cast<int64_t>(S.Regs[I.B]) >>
                                        (S.Regs[I.C] & 63));
    break;
  case Opcode::Slt:
    S.Regs[I.A] = static_cast<int64_t>(S.Regs[I.B]) <
                          static_cast<int64_t>(S.Regs[I.C])
                      ? 1
                      : 0;
    break;
  case Opcode::Sltu:
    S.Regs[I.A] = S.Regs[I.B] < S.Regs[I.C] ? 1 : 0;
    break;
  case Opcode::Addi:
    S.Regs[I.A] = S.Regs[I.B] + static_cast<uint64_t>(I.Imm);
    break;
  case Opcode::Muli:
    S.Regs[I.A] = S.Regs[I.B] * static_cast<uint64_t>(I.Imm);
    break;
  case Opcode::Andi:
    S.Regs[I.A] = S.Regs[I.B] & static_cast<uint64_t>(I.Imm);
    break;
  case Opcode::Ori:
    S.Regs[I.A] = S.Regs[I.B] | static_cast<uint64_t>(I.Imm);
    break;
  case Opcode::Xori:
    S.Regs[I.A] = S.Regs[I.B] ^ static_cast<uint64_t>(I.Imm);
    break;
  case Opcode::Shli:
    S.Regs[I.A] = S.Regs[I.B] << (static_cast<uint64_t>(I.Imm) & 63);
    break;
  case Opcode::Shri:
    S.Regs[I.A] = S.Regs[I.B] >> (static_cast<uint64_t>(I.Imm) & 63);
    break;
  case Opcode::Slti:
    S.Regs[I.A] =
        static_cast<int64_t>(S.Regs[I.B]) < I.Imm ? 1 : 0;
    break;
  case Opcode::Ld8u:
    S.Regs[I.A] = M.read8(Info.MemAddr);
    break;
  case Opcode::Ld16u:
    S.Regs[I.A] = M.read16(Info.MemAddr);
    break;
  case Opcode::Ld32u:
    S.Regs[I.A] = M.read32(Info.MemAddr);
    break;
  case Opcode::Ld64:
    S.Regs[I.A] = M.read64(Info.MemAddr);
    break;
  case Opcode::St8:
    M.write8(Info.MemAddr, static_cast<uint8_t>(S.Regs[I.B]));
    break;
  case Opcode::St16:
    M.write16(Info.MemAddr, static_cast<uint16_t>(S.Regs[I.B]));
    break;
  case Opcode::St32:
    M.write32(Info.MemAddr, static_cast<uint32_t>(S.Regs[I.B]));
    break;
  case Opcode::St64:
    M.write64(Info.MemAddr, S.Regs[I.B]);
    break;
  case Opcode::Incm:
    M.write64(Info.MemAddr, M.read64(Info.MemAddr) + 1);
    break;
  case Opcode::Push:
    S.setSp(S.sp() - 8);
    M.write64(S.sp(), S.Regs[I.A]);
    break;
  case Opcode::Pop:
    S.Regs[I.A] = M.read64(S.sp());
    S.setSp(S.sp() + 8);
    break;
  case Opcode::Jmp:
    NextPc = static_cast<uint64_t>(I.Imm);
    Info.BranchTaken = true;
    break;
  case Opcode::Jr:
    NextPc = S.Regs[I.A];
    Info.BranchTaken = true;
    break;
  case Opcode::Call:
    S.setSp(S.sp() - 8);
    M.write64(S.sp(), Pc + InstSize);
    NextPc = static_cast<uint64_t>(I.Imm);
    Info.BranchTaken = true;
    break;
  case Opcode::Callr:
    S.setSp(S.sp() - 8);
    M.write64(S.sp(), Pc + InstSize);
    NextPc = S.Regs[I.A];
    Info.BranchTaken = true;
    break;
  case Opcode::Ret:
    NextPc = M.read64(S.sp());
    S.setSp(S.sp() + 8);
    Info.BranchTaken = true;
    break;
  case Opcode::Beq:
    Info.BranchTaken = S.Regs[I.A] == S.Regs[I.B];
    break;
  case Opcode::Bne:
    Info.BranchTaken = S.Regs[I.A] != S.Regs[I.B];
    break;
  case Opcode::Blt:
    Info.BranchTaken = static_cast<int64_t>(S.Regs[I.A]) <
                       static_cast<int64_t>(S.Regs[I.B]);
    break;
  case Opcode::Bge:
    Info.BranchTaken = static_cast<int64_t>(S.Regs[I.A]) >=
                       static_cast<int64_t>(S.Regs[I.B]);
    break;
  case Opcode::Bltu:
    Info.BranchTaken = S.Regs[I.A] < S.Regs[I.B];
    break;
  case Opcode::Bgeu:
    Info.BranchTaken = S.Regs[I.A] >= S.Regs[I.B];
    break;
  case Opcode::Syscall:
    S.Pc = Pc; // Not executed; environment services it and advances Pc.
    return ExecStatus::Syscall;
  case Opcode::NumOpcodes:
    sp_unreachable("invalid opcode");
  }

  if (I.isCondBranch() && Info.BranchTaken)
    NextPc = static_cast<uint64_t>(I.Imm);
  S.Pc = NextPc;
  return ExecStatus::Ok;
}

} // namespace spin::vm

#endif // SUPERPIN_VM_EXEC_H
