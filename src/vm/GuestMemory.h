//===- vm/GuestMemory.h - Paged copy-on-write guest memory ------*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The guest address space: a sparse map of 4 KiB pages with copy-on-write
/// sharing. GuestMemory::fork() produces a child that shares every page with
/// the parent; the first write to a shared page clones it and reports a COW
/// fault to the listener. This is the substrate for SuperPin's slice
/// spawning — the paper's fork() + COW page-fault overhead ("Fork Overhead"
/// in Section 6.3) is reproduced by charging the listener per cloned page.
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_VM_GUESTMEMORY_H
#define SUPERPIN_VM_GUESTMEMORY_H

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

namespace spin::vm {

constexpr uint64_t PageSize = 4096;
constexpr uint64_t PageShift = 12;

/// Receives memory events so the simulation can charge cycle costs and
/// collect statistics. All callbacks have empty defaults.
class MemoryEventListener {
public:
  virtual ~MemoryEventListener();

  /// A shared page was cloned because of a write (a COW fault).
  virtual void onCowCopy(uint64_t PageAddr) { (void)PageAddr; }

  /// A fresh zero page was materialized.
  virtual void onPageAlloc(uint64_t PageAddr) { (void)PageAddr; }
};

/// Sparse, paged, copy-on-write guest memory.
///
/// Reads of unmapped addresses return zeroes without materializing a page;
/// writes materialize (or clone) the page. All accessors handle accesses
/// that straddle page boundaries.
class GuestMemory {
public:
  GuestMemory() = default;

  /// COW fork: the clone shares every page with this memory. O(pages) for
  /// the page-table copy; page contents are copied lazily on write.
  GuestMemory fork() const;

  /// Deep copy: every page is physically duplicated, so the clone holds
  /// no references into this memory and cannot perturb any COW use
  /// count. O(pages * PageSize). This is what host-fault containment
  /// checkpoints use — a fork() would keep the source's pages shared for
  /// the checkpoint's lifetime and silently change which writes take the
  /// (charged) copy-on-write path.
  GuestMemory clone() const;

  /// Sets the event listener (not inherited by fork()).
  void setListener(MemoryEventListener *NewListener) {
    Listener = NewListener;
  }

  // Typed little-endian accessors.
  uint8_t read8(uint64_t Addr) const;
  uint16_t read16(uint64_t Addr) const;
  uint32_t read32(uint64_t Addr) const;
  uint64_t read64(uint64_t Addr) const;
  void write8(uint64_t Addr, uint8_t Value);
  void write16(uint64_t Addr, uint16_t Value);
  void write32(uint64_t Addr, uint32_t Value);
  void write64(uint64_t Addr, uint64_t Value);

  /// Bulk helpers used by the loader, kernel, and syscall playback.
  void readBytes(uint64_t Addr, void *Out, uint64_t Size) const;
  void writeBytes(uint64_t Addr, const void *Data, uint64_t Size);

  /// Number of materialized pages in this address space.
  uint64_t numPages() const { return Pages.size(); }

  /// Number of pages currently shared with another address space.
  uint64_t numSharedPages() const;

  /// True if the page containing \p Addr is materialized.
  bool isMapped(uint64_t Addr) const {
    return Pages.count(Addr >> PageShift) != 0;
  }

  /// Drops all pages in [Addr, Addr+Size); used by munmap and by the memory
  /// bubble release. Partial pages at the ends are zero-filled rather than
  /// dropped.
  void discardRange(uint64_t Addr, uint64_t Size);

  /// Opaque extra references to every currently materialized page. While
  /// a pin set lives, no page it covers can reach sole ownership, so every
  /// write to it — from this memory or any fork sharing it — takes the
  /// copy-on-write path instead of mutating in place. This is what makes
  /// cross-thread COW safe: the sole-ownership test (use_count() == 1)
  /// carries no acquire ordering, so an in-place write after the other
  /// side's COW copy would race with that copy's read. Host-parallel
  /// replay pins a fork's pages for a slice body's lifetime; it also keeps
  /// the body's charge sequence identical to serial replay, where the
  /// not-yet-advanced master holds the same references.
  std::vector<std::shared_ptr<const void>> pinPages() const;

private:
  struct Page {
    std::array<uint8_t, PageSize> Bytes{};
  };
  using PagePtr = std::shared_ptr<Page>;

  std::unordered_map<uint64_t, PagePtr> Pages;
  MemoryEventListener *Listener = nullptr;

  /// Returns the page for reading, or nullptr if unmapped.
  const Page *getPageForRead(uint64_t PageNum) const;

  /// Returns an exclusively-owned page for writing, materializing or
  /// cloning as needed.
  Page *getPageForWrite(uint64_t PageNum);

  template <typename T> T readScalar(uint64_t Addr) const;
  template <typename T> void writeScalar(uint64_t Addr, T Value);
};

} // namespace spin::vm

#endif // SUPERPIN_VM_GUESTMEMORY_H
