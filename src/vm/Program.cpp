//===- vm/Program.cpp - Guest program image -------------------------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "vm/Program.h"

#include "vm/GuestMemory.h"

using namespace spin;
using namespace spin::vm;

void Program::loadDataInto(GuestMemory &Memory) const {
  if (!DataInit.empty())
    Memory.writeBytes(AddressLayout::DataBase, DataInit.data(),
                      DataInit.size());
}
