//===- vm/Verifier.cpp - Static guest-program verification ----------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "vm/Verifier.h"

#include "vm/Disassembler.h"
#include "vm/Program.h"

#include <cinttypes>
#include <cstdio>

using namespace spin;
using namespace spin::vm;

static bool isTextAddress(const Program &Prog, uint64_t Addr) {
  return Addr >= AddressLayout::TextBase && Addr < Prog.textEnd() &&
         (Addr % InstSize) == 0;
}

std::vector<VerifyIssue> spin::vm::verifyProgram(const Program &Prog) {
  std::vector<VerifyIssue> Issues;
  auto Report = [&](uint64_t Index, std::string Msg) {
    Issues.push_back(VerifyIssue{Index, std::move(Msg)});
  };

  if (Prog.Text.empty()) {
    Report(ProgramIssueIndex, "program has no instructions");
    return Issues;
  }
  if (!isTextAddress(Prog, Prog.EntryPc))
    Report(ProgramIssueIndex, "entry point outside the text segment");

  for (uint64_t Index = 0; Index != Prog.Text.size(); ++Index) {
    const Instruction &I = Prog.Text[Index];

    // Register ranges (assembler-produced programs always pass; this
    // defends hand-constructed Instruction streams).
    auto CheckReg = [&](uint8_t Reg, const char *Which) {
      if (Reg >= NumRegs)
        Report(Index, std::string("register operand ") + Which +
                          " out of range");
    };
    switch (I.info().Format) {
    case OpFormat::R3:
      CheckReg(I.C, "C");
      [[fallthrough]];
    case OpFormat::R2:
    case OpFormat::R2I:
    case OpFormat::Mem:
    case OpFormat::MemStore:
    case OpFormat::Branch:
      CheckReg(I.B, "B");
      [[fallthrough]];
    case OpFormat::R1:
    case OpFormat::R1I:
      CheckReg(I.A, "A");
      break;
    case OpFormat::None:
    case OpFormat::JumpI:
      break;
    }

    // Direct control-flow targets must land on text instructions.
    bool HasDirectTarget =
        I.isControlFlow() && !I.isIndirect() &&
        (I.info().Format == OpFormat::JumpI ||
         I.info().Format == OpFormat::Branch);
    if (HasDirectTarget &&
        !isTextAddress(Prog, static_cast<uint64_t>(I.Imm)))
      Report(Index, "control-flow target outside the text segment");

    if (I.Op == Opcode::Halt)
      Report(Index, "halt instruction (guests must exit via syscall)");
  }

  // Falling off the end: the last instruction must not have fall-through.
  const Instruction &Last = Prog.Text.back();
  bool LastFallsThrough =
      !(Last.isControlFlow() && Last.isUnconditional()) && !Last.isSyscall();
  if (LastFallsThrough)
    Report(Prog.Text.size() - 1,
           "control flow can run past the end of the text segment");

  return Issues;
}

std::string spin::vm::formatVerifyIssue(const Program &Prog,
                                        const VerifyIssue &Issue) {
  if (Issue.InstIndex == ProgramIssueIndex)
    return "program: " + Issue.Message;
  char Pc[32];
  std::snprintf(Pc, sizeof(Pc), "pc 0x%" PRIx64,
                Program::addressOfIndex(Issue.InstIndex));
  std::string Text(Pc);
  if (Issue.InstIndex < Prog.Text.size())
    Text += " (" + disassemble(Prog.Text[Issue.InstIndex]) + ")";
  return Text + ": " + Issue.Message;
}
