//===- vm/Program.h - Guest program image -----------------------*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A loaded guest program: text (decoded instructions), initialized data,
/// symbols, and the standard address-space layout. Text is immutable and
/// fetched by index (the guest ISA has no self-modifying code, which the
/// original SuperPin also could not slice through).
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_VM_PROGRAM_H
#define SUPERPIN_VM_PROGRAM_H

#include "vm/Instruction.h"

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace spin::vm {

class GuestMemory;

/// Standard guest address-space layout. The wide gaps leave room for the
/// heap to grow (brk), for mmap regions, and for SuperPin's memory bubble.
struct AddressLayout {
  static constexpr uint64_t TextBase = 0x0000000000010000ULL;
  static constexpr uint64_t DataBase = 0x0000000004000000ULL;
  static constexpr uint64_t HeapBase = 0x0000000008000000ULL;
  static constexpr uint64_t MmapBase = 0x0000000100000000ULL;
  static constexpr uint64_t BubbleBase = 0x0000000200000000ULL;
  static constexpr uint64_t BubbleSize = 0x0000000010000000ULL;
  static constexpr uint64_t StackTop = 0x0000000300000000ULL;
  static constexpr uint64_t StackSize = 0x0000000000800000ULL;
};

/// An immutable guest program image.
class Program {
public:
  std::string Name;
  std::vector<Instruction> Text;
  std::vector<uint8_t> DataInit;
  std::unordered_map<std::string, uint64_t> Symbols;
  uint64_t EntryPc = AddressLayout::TextBase;

  /// Guest address of instruction index \p Index.
  static uint64_t addressOfIndex(uint64_t Index) {
    return AddressLayout::TextBase + Index * InstSize;
  }

  /// Instruction index of guest address \p Pc (asserts alignment).
  static uint64_t indexOfAddress(uint64_t Pc) {
    assert(Pc >= AddressLayout::TextBase && (Pc % InstSize) == 0 &&
           "pc outside text segment");
    return (Pc - AddressLayout::TextBase) / InstSize;
  }

  /// Fetches the instruction at guest address \p Pc, or nullptr if \p Pc is
  /// outside the text segment.
  const Instruction *fetch(uint64_t Pc) const {
    if (Pc < AddressLayout::TextBase || (Pc % InstSize) != 0)
      return nullptr;
    uint64_t Index = (Pc - AddressLayout::TextBase) / InstSize;
    if (Index >= Text.size())
      return nullptr;
    return &Text[Index];
  }

  /// Address one past the last text instruction.
  uint64_t textEnd() const { return addressOfIndex(Text.size()); }

  /// Looks up a symbol; asserts that it exists.
  uint64_t symbol(const std::string &Sym) const {
    auto It = Symbols.find(Sym);
    assert(It != Symbols.end() && "unknown symbol");
    return It->second;
  }

  /// Copies the initialized data segment into \p Memory at DataBase.
  void loadDataInto(GuestMemory &Memory) const;
};

/// Architectural register state of a guest hardware thread.
struct CpuState {
  std::array<uint64_t, NumRegs> Regs{};
  uint64_t Pc = 0;

  uint64_t sp() const { return Regs[RegSp]; }
  void setSp(uint64_t Value) { Regs[RegSp] = Value; }

  bool operator==(const CpuState &Other) const = default;
};

} // namespace spin::vm

#endif // SUPERPIN_VM_PROGRAM_H
