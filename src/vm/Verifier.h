//===- vm/Verifier.h - Static guest-program verification --------*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A static well-formedness checker for guest programs. The workload
/// generators and the assembler are both verified against it in tests, and
/// library users can run it before handing programs to the engines.
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_VM_VERIFIER_H
#define SUPERPIN_VM_VERIFIER_H

#include <cstdint>
#include <string>
#include <vector>

namespace spin::vm {

class Program;

/// Sentinel InstIndex for issues that concern the whole program rather
/// than one instruction.
inline constexpr uint64_t ProgramIssueIndex = ~0ull;

struct VerifyIssue {
  uint64_t InstIndex; ///< offending instruction, or ProgramIssueIndex
  std::string Message;
};

/// Checks \p Prog for static problems:
///  * direct branch/jump/call targets outside the text segment or
///    misaligned;
///  * an entry point outside text;
///  * control flow that can fall off the end of the text segment;
///  * register operands out of range (defends hand-built Instructions);
///  * use of the halt instruction (guests must exit via syscall).
///
/// These checks are also "pass zero" of the CFG-based lint driver in
/// analysis/Passes.h, which layers reachability, uninitialized-register,
/// and stack-balance analyses on top.
///
/// \returns all issues found (empty = verified).
std::vector<VerifyIssue> verifyProgram(const Program &Prog);

/// Renders \p Issue for humans: "pc 0x10008 (bne r1, r0, 0x10000):
/// message" for instruction-level issues, "program: message" for
/// program-level ones (the raw ProgramIssueIndex sentinel would otherwise
/// print as a garbage 20-digit number).
std::string formatVerifyIssue(const Program &Prog, const VerifyIssue &Issue);

} // namespace spin::vm

#endif // SUPERPIN_VM_VERIFIER_H
