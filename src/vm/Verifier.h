//===- vm/Verifier.h - Static guest-program verification --------*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A static well-formedness checker for guest programs. The workload
/// generators and the assembler are both verified against it in tests, and
/// library users can run it before handing programs to the engines.
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_VM_VERIFIER_H
#define SUPERPIN_VM_VERIFIER_H

#include <cstdint>
#include <string>
#include <vector>

namespace spin::vm {

class Program;

struct VerifyIssue {
  uint64_t InstIndex; ///< offending instruction (or ~0 for program-level)
  std::string Message;
};

/// Checks \p Prog for static problems:
///  * direct branch/jump/call targets outside the text segment or
///    misaligned;
///  * an entry point outside text;
///  * control flow that can fall off the end of the text segment;
///  * register operands out of range (defends hand-built Instructions);
///  * use of the halt instruction (guests must exit via syscall).
///
/// \returns all issues found (empty = verified).
std::vector<VerifyIssue> verifyProgram(const Program &Prog);

} // namespace spin::vm

#endif // SUPERPIN_VM_VERIFIER_H
