//===- vm/Interpreter.cpp - Resumable guest interpreter -------------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "vm/Interpreter.h"

#include "vm/Exec.h"

using namespace spin;
using namespace spin::vm;

RunResult Interpreter::runToBlockEnd(uint64_t SafetyCap) {
  uint64_t Executed = 0;
  ExecInfo Info;
  while (Executed < SafetyCap) {
    const Instruction *I = Prog.fetch(Cpu.Pc);
    if (!I) {
      Retired += Executed;
      return {StopReason::BadPc, Executed, false};
    }
    ExecStatus Status = executeInstruction(*I, Cpu.Pc, Cpu, Mem, Info);
    if (Status == ExecStatus::Syscall) {
      Retired += Executed;
      return {StopReason::Syscall, Executed, false};
    }
    ++Executed;
    if (Status == ExecStatus::Halt) {
      Retired += Executed;
      return {StopReason::Halt, Executed, false};
    }
    if (I->isControlFlow()) {
      Retired += Executed;
      return {StopReason::BlockEnd, Executed, true};
    }
  }
  Retired += Executed;
  return {StopReason::Budget, Executed, false};
}

RunResult Interpreter::run(uint64_t MaxInsts) {
  uint64_t Executed = 0;
  bool LastWasCF = false;
  ExecInfo Info;
  while (Executed < MaxInsts) {
    const Instruction *I = Prog.fetch(Cpu.Pc);
    if (!I) {
      Retired += Executed;
      return {StopReason::BadPc, Executed, LastWasCF};
    }
    ExecStatus Status = executeInstruction(*I, Cpu.Pc, Cpu, Mem, Info);
    if (Status == ExecStatus::Syscall) {
      Retired += Executed;
      return {StopReason::Syscall, Executed, LastWasCF};
    }
    ++Executed;
    LastWasCF = I->isControlFlow();
    if (Status == ExecStatus::Halt) {
      Retired += Executed;
      return {StopReason::Halt, Executed, LastWasCF};
    }
  }
  Retired += Executed;
  return {StopReason::Budget, Executed, LastWasCF};
}
