//===- vm/Instruction.cpp - Guest ISA instruction metadata ----------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "vm/Instruction.h"

using namespace spin;
using namespace spin::vm;

static const OpcodeInfo OpcodeTable[] = {
#define VISA_OP(NAME, MNEMONIC, FORMAT, FLAGS)                                 \
  {MNEMONIC, OpFormat::FORMAT, static_cast<uint16_t>(FLAGS)},
#include "vm/Opcodes.def"
};

const OpcodeInfo &spin::vm::getOpcodeInfo(Opcode Op) {
  assert(static_cast<unsigned>(Op) < NumOpcodes && "invalid opcode");
  return OpcodeTable[static_cast<unsigned>(Op)];
}

std::string_view spin::vm::getRegName(unsigned Reg) {
  static const std::string_view Names[NumRegs] = {
      "r0", "r1", "r2",  "r3",  "r4",  "r5",  "r6",  "r7",
      "r8", "r9", "r10", "r11", "r12", "r13", "r14", "sp"};
  assert(Reg < NumRegs && "invalid register number");
  return Names[Reg];
}
