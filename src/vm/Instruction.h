//===- vm/Instruction.h - Guest ISA instruction representation --*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The guest instruction set ("VISA") enumeration, per-opcode metadata, and
/// the decoded Instruction struct. The guest ISA plays the role IA-32 played
/// in the original SuperPin: a deterministic machine language that the
/// MiniPin JIT decodes, instruments, and executes.
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_VM_INSTRUCTION_H
#define SUPERPIN_VM_INSTRUCTION_H

#include <cassert>
#include <cstdint>
#include <string_view>

namespace spin::vm {

/// Operand encoding shape of an opcode.
enum class OpFormat : uint8_t {
  None,     ///< no operands (nop, ret, syscall, halt)
  R1,       ///< one register (jr, push, pop, callr)
  R2,       ///< rd, ra (mov)
  R3,       ///< rd, ra, rb (ALU)
  R1I,      ///< rd, imm (movi)
  R2I,      ///< rd, ra, imm (ALU-immediate)
  Mem,      ///< rd, [ra + imm] (loads; INCM uses [ra + imm] only)
  MemStore, ///< [ra + imm], rb (stores)
  JumpI,    ///< imm target (jmp, call)
  Branch,   ///< ra, rb, imm target
};

/// Semantic property bits per opcode.
enum OpFlags : uint16_t {
  OF_None = 0,
  OF_MemRead = 1 << 0,
  OF_MemWrite = 1 << 1,
  OF_CtrlFlow = 1 << 2,
  OF_Uncond = 1 << 3,
  OF_IsCall = 1 << 4,
  OF_IsRet = 1 << 5,
  OF_IsSyscall = 1 << 6,
  OF_Indirect = 1 << 7,  ///< target comes from a register or the stack
  OF_EndsTrace = 1 << 8, ///< JIT never continues a trace past this opcode
};

/// Guest opcodes, generated from Opcodes.def.
enum class Opcode : uint8_t {
#define VISA_OP(NAME, MNEMONIC, FORMAT, FLAGS) NAME,
#include "vm/Opcodes.def"
  NumOpcodes
};

constexpr unsigned NumOpcodes = static_cast<unsigned>(Opcode::NumOpcodes);

/// Static metadata for one opcode.
struct OpcodeInfo {
  std::string_view Mnemonic;
  OpFormat Format;
  uint16_t Flags;
};

/// Returns the metadata row for \p Op.
const OpcodeInfo &getOpcodeInfo(Opcode Op);

/// Number of general-purpose registers. r15 doubles as the stack pointer.
constexpr unsigned NumRegs = 16;
constexpr uint8_t RegSp = 15;

/// Guest instructions occupy 4 bytes of guest address space each, so
/// pc arithmetic looks like a classic RISC.
constexpr uint64_t InstSize = 4;

/// A decoded guest instruction. The assembler produces these directly; there
/// is no binary encoding step (the JIT and interpreter consume the decoded
/// form, as Pin's decoder cache would).
struct Instruction {
  Opcode Op = Opcode::Nop;
  uint8_t A = 0;  ///< rd, or ra for stores/branches
  uint8_t B = 0;  ///< ra, or rb
  uint8_t C = 0;  ///< rb (R3 format only)
  int64_t Imm = 0;

  const OpcodeInfo &info() const { return getOpcodeInfo(Op); }

  bool isMemRead() const { return info().Flags & OF_MemRead; }
  bool isMemWrite() const { return info().Flags & OF_MemWrite; }
  bool isControlFlow() const { return info().Flags & OF_CtrlFlow; }
  bool isUnconditional() const { return info().Flags & OF_Uncond; }
  bool isCall() const { return info().Flags & OF_IsCall; }
  bool isRet() const { return info().Flags & OF_IsRet; }
  bool isSyscall() const { return info().Flags & OF_IsSyscall; }
  bool isIndirect() const { return info().Flags & OF_Indirect; }
  bool endsTrace() const { return info().Flags & OF_EndsTrace; }

  /// Conditional branch: control flow that can fall through.
  bool isCondBranch() const { return isControlFlow() && !isUnconditional(); }

  /// True if the instruction computes a [base + offset] effective address.
  bool hasMemOperand() const {
    OpFormat F = info().Format;
    return F == OpFormat::Mem || F == OpFormat::MemStore;
  }
};

/// Returns the register name ("r0".."r14", "sp").
std::string_view getRegName(unsigned Reg);

} // namespace spin::vm

#endif // SUPERPIN_VM_INSTRUCTION_H
