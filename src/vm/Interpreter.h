//===- vm/Interpreter.h - Resumable guest interpreter -----------*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The plain (uninstrumented) guest interpreter. This is "native execution"
/// in the SuperPin model: the master application runs here at full speed
/// while instrumented slices run under the MiniPin VM. The interpreter is
/// resumable — run() executes up to a budget of instructions and returns,
/// so the discrete-time scheduler can interleave it with other tasks.
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_VM_INTERPRETER_H
#define SUPERPIN_VM_INTERPRETER_H

#include "vm/Program.h"

#include <cstdint>

namespace spin::vm {

class GuestMemory;

/// Why a run() call returned.
enum class StopReason : uint8_t {
  Budget,    ///< instruction budget exhausted; call run() again to resume
  Syscall,   ///< pc points at an unexecuted syscall instruction
  Halt,      ///< halt instruction reached
  BadPc,     ///< pc left the text segment (wild jump)
  BlockEnd,  ///< runToBlockEnd: a control-flow instruction retired
};

struct RunResult {
  StopReason Reason;
  uint64_t InstsExecuted;
  /// True when the last executed instruction was control flow, i.e. the
  /// stop position is a dynamic basic-block boundary. Guest-thread
  /// executors rotate immediately in that case instead of draining.
  bool EndedAtBlockBoundary = false;
};

/// Executes a guest program against externally-owned CPU and memory state.
class Interpreter {
public:
  Interpreter(const Program &Prog, CpuState &Cpu, GuestMemory &Mem)
      : Prog(Prog), Cpu(Cpu), Mem(Mem) {}

  /// Runs until the budget is exhausted or an architectural event occurs.
  /// On StopReason::Syscall the syscall instruction has NOT been executed;
  /// the caller services it and must advance Cpu.Pc past it.
  RunResult run(uint64_t MaxInsts);

  /// Runs until a control-flow instruction retires (StopReason::BlockEnd),
  /// bounded by \p SafetyCap. Guest-thread executors use this to align
  /// context switches to dynamic basic-block boundaries.
  RunResult runToBlockEnd(uint64_t SafetyCap);

  /// Total instructions retired across all run() calls.
  uint64_t instructionsRetired() const { return Retired; }

  /// The environment calls this after servicing a syscall so that syscall
  /// instructions count exactly once in the retired-instruction stream
  /// (keeping native, Pin, and SuperPin counts comparable).
  void noteSyscallRetired() { ++Retired; }

private:
  const Program &Prog;
  CpuState &Cpu;
  GuestMemory &Mem;
  uint64_t Retired = 0;
};

} // namespace spin::vm

#endif // SUPERPIN_VM_INTERPRETER_H
