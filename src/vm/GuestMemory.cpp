//===- vm/GuestMemory.cpp - Paged copy-on-write guest memory --------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "vm/GuestMemory.h"

#include <cassert>
#include <cstring>

using namespace spin;
using namespace spin::vm;

MemoryEventListener::~MemoryEventListener() = default;

GuestMemory GuestMemory::fork() const {
  GuestMemory Child;
  Child.Pages = Pages; // Shares every page; both sides now COW.
  return Child;
}

GuestMemory GuestMemory::clone() const {
  GuestMemory Child;
  Child.Pages.reserve(Pages.size());
  for (const auto &[PageNum, Ptr] : Pages)
    Child.Pages.emplace(PageNum, std::make_shared<Page>(*Ptr));
  return Child;
}

std::vector<std::shared_ptr<const void>> GuestMemory::pinPages() const {
  std::vector<std::shared_ptr<const void>> Pins;
  Pins.reserve(Pages.size());
  for (const auto &[PageNum, Ptr] : Pages)
    Pins.emplace_back(Ptr);
  return Pins;
}

uint64_t GuestMemory::numSharedPages() const {
  uint64_t Shared = 0;
  for (const auto &[PageNum, Ptr] : Pages)
    if (Ptr.use_count() > 1)
      ++Shared;
  return Shared;
}

const GuestMemory::Page *GuestMemory::getPageForRead(uint64_t PageNum) const {
  auto It = Pages.find(PageNum);
  return It == Pages.end() ? nullptr : It->second.get();
}

GuestMemory::Page *GuestMemory::getPageForWrite(uint64_t PageNum) {
  PagePtr &Slot = Pages[PageNum];
  if (!Slot) {
    Slot = std::make_shared<Page>();
    if (Listener)
      Listener->onPageAlloc(PageNum << PageShift);
  } else if (Slot.use_count() > 1) {
    Slot = std::make_shared<Page>(*Slot);
    if (Listener)
      Listener->onCowCopy(PageNum << PageShift);
  }
  return Slot.get();
}

template <typename T> T GuestMemory::readScalar(uint64_t Addr) const {
  uint64_t Offset = Addr & (PageSize - 1);
  if (Offset + sizeof(T) <= PageSize) {
    const Page *P = getPageForRead(Addr >> PageShift);
    if (!P)
      return T(0);
    T Value;
    std::memcpy(&Value, P->Bytes.data() + Offset, sizeof(T));
    return Value;
  }
  // Slow path: straddles a page boundary.
  T Value;
  readBytes(Addr, &Value, sizeof(T));
  return Value;
}

template <typename T> void GuestMemory::writeScalar(uint64_t Addr, T Value) {
  uint64_t Offset = Addr & (PageSize - 1);
  if (Offset + sizeof(T) <= PageSize) {
    Page *P = getPageForWrite(Addr >> PageShift);
    std::memcpy(P->Bytes.data() + Offset, &Value, sizeof(T));
    return;
  }
  writeBytes(Addr, &Value, sizeof(T));
}

uint8_t GuestMemory::read8(uint64_t Addr) const {
  return readScalar<uint8_t>(Addr);
}
uint16_t GuestMemory::read16(uint64_t Addr) const {
  return readScalar<uint16_t>(Addr);
}
uint32_t GuestMemory::read32(uint64_t Addr) const {
  return readScalar<uint32_t>(Addr);
}
uint64_t GuestMemory::read64(uint64_t Addr) const {
  return readScalar<uint64_t>(Addr);
}
void GuestMemory::write8(uint64_t Addr, uint8_t Value) {
  writeScalar(Addr, Value);
}
void GuestMemory::write16(uint64_t Addr, uint16_t Value) {
  writeScalar(Addr, Value);
}
void GuestMemory::write32(uint64_t Addr, uint32_t Value) {
  writeScalar(Addr, Value);
}
void GuestMemory::write64(uint64_t Addr, uint64_t Value) {
  writeScalar(Addr, Value);
}

void GuestMemory::readBytes(uint64_t Addr, void *Out, uint64_t Size) const {
  uint8_t *Dest = static_cast<uint8_t *>(Out);
  while (Size > 0) {
    uint64_t Offset = Addr & (PageSize - 1);
    uint64_t Chunk = PageSize - Offset;
    if (Chunk > Size)
      Chunk = Size;
    if (const Page *P = getPageForRead(Addr >> PageShift))
      std::memcpy(Dest, P->Bytes.data() + Offset, Chunk);
    else
      std::memset(Dest, 0, Chunk);
    Dest += Chunk;
    Addr += Chunk;
    Size -= Chunk;
  }
}

void GuestMemory::writeBytes(uint64_t Addr, const void *Data, uint64_t Size) {
  const uint8_t *Src = static_cast<const uint8_t *>(Data);
  while (Size > 0) {
    uint64_t Offset = Addr & (PageSize - 1);
    uint64_t Chunk = PageSize - Offset;
    if (Chunk > Size)
      Chunk = Size;
    Page *P = getPageForWrite(Addr >> PageShift);
    std::memcpy(P->Bytes.data() + Offset, Src, Chunk);
    Src += Chunk;
    Addr += Chunk;
    Size -= Chunk;
  }
}

void GuestMemory::discardRange(uint64_t Addr, uint64_t Size) {
  uint64_t End = Addr + Size;
  while (Addr < End) {
    uint64_t Offset = Addr & (PageSize - 1);
    uint64_t Chunk = PageSize - Offset;
    if (Chunk > End - Addr)
      Chunk = End - Addr;
    if (Offset == 0 && Chunk == PageSize) {
      Pages.erase(Addr >> PageShift);
    } else if (Pages.count(Addr >> PageShift)) {
      // Zero the partial range without dropping the page.
      Page *P = getPageForWrite(Addr >> PageShift);
      std::memset(P->Bytes.data() + Offset, 0, Chunk);
    }
    Addr += Chunk;
  }
}
