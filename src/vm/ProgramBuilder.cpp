//===- vm/ProgramBuilder.cpp - Programmatic guest code emission -----------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "vm/ProgramBuilder.h"

#include "support/ErrorHandling.h"
#include "support/MathExtras.h"

using namespace spin;
using namespace spin::vm;

ProgramBuilder::LabelId ProgramBuilder::createLabel() {
  LabelAddrs.push_back(-1);
  return static_cast<LabelId>(LabelAddrs.size() - 1);
}

void ProgramBuilder::bind(LabelId Label) {
  assert(Label < LabelAddrs.size() && "unknown label");
  assert(LabelAddrs[Label] == -1 && "label bound twice");
  LabelAddrs[Label] = static_cast<int64_t>(currentAddress());
}

void ProgramBuilder::defineSymbol(const std::string &Name) {
  assert(!Prog.Symbols.count(Name) && "symbol redefined");
  Prog.Symbols.emplace(Name, currentAddress());
}

uint64_t ProgramBuilder::allocData(uint64_t Size, uint64_t Align) {
  assert(isPowerOf2(Align) && "alignment must be a power of two");
  DataSize = alignTo(DataSize, Align);
  uint64_t Addr = AddressLayout::DataBase + DataSize;
  DataSize += Size;
  return Addr;
}

void ProgramBuilder::initData64(uint64_t Addr, uint64_t Value) {
  assert(Addr >= AddressLayout::DataBase && "address below data segment");
  uint64_t Offset = Addr - AddressLayout::DataBase;
  assert(Offset + 8 <= DataSize && "initializer outside allocated data");
  if (Prog.DataInit.size() < Offset + 8)
    Prog.DataInit.resize(Offset + 8, 0);
  for (unsigned I = 0; I != 8; ++I)
    Prog.DataInit[Offset + I] = static_cast<uint8_t>(Value >> (8 * I));
}

void ProgramBuilder::initDataBytes(uint64_t Addr, const void *Data,
                                   uint64_t Size) {
  assert(Addr >= AddressLayout::DataBase && "address below data segment");
  uint64_t Offset = Addr - AddressLayout::DataBase;
  assert(Offset + Size <= DataSize && "initializer outside allocated data");
  if (Prog.DataInit.size() < Offset + Size)
    Prog.DataInit.resize(Offset + Size, 0);
  const uint8_t *Bytes = static_cast<const uint8_t *>(Data);
  for (uint64_t I = 0; I != Size; ++I)
    Prog.DataInit[Offset + I] = Bytes[I];
}

void ProgramBuilder::moviLabel(Reg D, LabelId Label) {
  Fixups.push_back(Fixup{Prog.Text.size(), Label});
  emit({Opcode::Movi, D.Index, 0, 0, 0});
}

void ProgramBuilder::emitWithLabel(Instruction I, LabelId Label) {
  Fixups.push_back(Fixup{Prog.Text.size(), Label});
  emit(I);
}

Program ProgramBuilder::take() {
  for (const Fixup &F : Fixups) {
    assert(F.Label < LabelAddrs.size() && "unknown label in fixup");
    if (LabelAddrs[F.Label] == -1)
      reportFatalError("program builder: unbound label used in '" +
                       Prog.Name + "'");
    Prog.Text[F.InstIndex].Imm = LabelAddrs[F.Label];
  }
  Fixups.clear();
  auto MainIt = Prog.Symbols.find("main");
  Prog.EntryPc = MainIt != Prog.Symbols.end() ? MainIt->second
                                              : AddressLayout::TextBase;
  if (Prog.Text.empty())
    reportFatalError("program builder: empty program '" + Prog.Name + "'");
  return std::move(Prog);
}
