//===- vm/Disassembler.h - Guest instruction printing -----------*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders decoded guest instructions back to assembly text. The output is
/// accepted by the Assembler, which the round-trip tests rely on.
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_VM_DISASSEMBLER_H
#define SUPERPIN_VM_DISASSEMBLER_H

#include "vm/Instruction.h"

#include <string>

namespace spin::vm {

class Program;

/// Renders \p I as one line of assembly (no trailing newline).
std::string disassemble(const Instruction &I);

/// Renders the whole program with addresses and label comments.
std::string disassembleProgram(const Program &Prog);

} // namespace spin::vm

#endif // SUPERPIN_VM_DISASSEMBLER_H
