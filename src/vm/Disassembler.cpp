//===- vm/Disassembler.cpp - Guest instruction printing -------------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "vm/Disassembler.h"

#include "support/ErrorHandling.h"
#include "vm/Program.h"

#include <cstdio>

using namespace spin;
using namespace spin::vm;

static std::string immString(int64_t Imm) { return std::to_string(Imm); }

std::string spin::vm::disassemble(const Instruction &I) {
  const OpcodeInfo &Info = I.info();
  std::string Out(Info.Mnemonic);
  auto Reg = [](uint8_t R) { return std::string(getRegName(R)); };
  switch (Info.Format) {
  case OpFormat::None:
    break;
  case OpFormat::R1:
    Out += " " + Reg(I.A);
    break;
  case OpFormat::R2:
    Out += " " + Reg(I.A) + ", " + Reg(I.B);
    break;
  case OpFormat::R3:
    Out += " " + Reg(I.A) + ", " + Reg(I.B) + ", " + Reg(I.C);
    break;
  case OpFormat::R1I:
    Out += " " + Reg(I.A) + ", " + immString(I.Imm);
    break;
  case OpFormat::R2I:
    Out += " " + Reg(I.A) + ", " + Reg(I.B) + ", " + immString(I.Imm);
    break;
  case OpFormat::Mem:
    if (I.Op == Opcode::Incm)
      Out += " [" + Reg(I.B) + (I.Imm >= 0 ? "+" : "") + immString(I.Imm) +
             "]";
    else
      Out += " " + Reg(I.A) + ", [" + Reg(I.B) + (I.Imm >= 0 ? "+" : "") +
             immString(I.Imm) + "]";
    break;
  case OpFormat::MemStore:
    Out += " [" + Reg(I.A) + (I.Imm >= 0 ? "+" : "") + immString(I.Imm) +
           "], " + Reg(I.B);
    break;
  case OpFormat::JumpI:
    Out += " " + immString(I.Imm);
    break;
  case OpFormat::Branch:
    Out += " " + Reg(I.A) + ", " + Reg(I.B) + ", " + immString(I.Imm);
    break;
  }
  return Out;
}

std::string spin::vm::disassembleProgram(const Program &Prog) {
  // Build a reverse symbol map for label comments.
  std::unordered_map<uint64_t, std::string> Labels;
  for (const auto &[Name, Addr] : Prog.Symbols)
    Labels.emplace(Addr, Name);

  std::string Out;
  for (uint64_t Index = 0; Index != Prog.Text.size(); ++Index) {
    uint64_t Addr = Program::addressOfIndex(Index);
    auto LabelIt = Labels.find(Addr);
    if (LabelIt != Labels.end()) {
      Out += LabelIt->second;
      Out += ":\n";
    }
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "  %08llx:  ",
                  static_cast<unsigned long long>(Addr));
    Out += Buf;
    Out += disassemble(Prog.Text[Index]);
    Out += '\n';
  }
  return Out;
}
