//===- vm/Assembler.cpp - Two-pass guest assembler ------------------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "vm/Assembler.h"

#include "support/StringExtras.h"

#include <cassert>
#include <cstring>

using namespace spin;
using namespace spin::vm;

namespace {

/// One pending instruction plus unresolved label references.
struct PendingInst {
  Instruction Inst;
  std::string ImmLabel; ///< label to resolve into Inst.Imm, if nonempty
  unsigned Line = 0;
};

/// A label reference inside a .wordN directive (jump tables, function
/// pointers in data), patched once all labels are known.
struct DataFixup {
  size_t Offset = 0; ///< byte offset into the data image
  unsigned Width = 0;
  std::string Label;
  unsigned Line = 0;
};

class Assembler {
public:
  Assembler(std::string_view Source, std::string_view Name)
      : Source(Source), Name(Name) {}

  std::optional<Program> run(std::string &ErrorMsg);

private:
  std::string_view Source;
  std::string_view Name;

  std::vector<PendingInst> Pending;
  std::vector<DataFixup> DataFixups;
  std::vector<uint8_t> Data;
  std::unordered_map<std::string, uint64_t> Symbols;
  bool InData = false;
  unsigned LineNo = 0;
  std::string Error;

  bool fail(std::string Msg) {
    Error = "line " + std::to_string(LineNo) + ": " + std::move(Msg);
    return false;
  }

  bool parseLine(std::string_view Line);
  bool parseDirective(std::string_view Head, std::string_view Rest);
  bool parseInstruction(std::string_view Head, std::string_view Rest);
  bool parseReg(std::string_view Token, uint8_t &Reg);
  bool parseImmOrLabel(std::string_view Token, PendingInst &PI);
  bool parseMemOperand(std::string_view Token, uint8_t &Base, int64_t &Off);
  bool defineLabel(std::string_view Label);
  bool parseStringLiteral(std::string_view Token, std::string &Out);
};

} // namespace

bool Assembler::parseReg(std::string_view Token, uint8_t &Reg) {
  Token = trim(Token);
  if (Token == "sp") {
    Reg = RegSp;
    return true;
  }
  if (Token.size() >= 2 && Token[0] == 'r') {
    std::optional<uint64_t> Num = parseUint(Token.substr(1));
    if (Num && *Num < NumRegs) {
      Reg = static_cast<uint8_t>(*Num);
      return true;
    }
  }
  return fail("expected register, got '" + std::string(Token) + "'");
}

bool Assembler::parseImmOrLabel(std::string_view Token, PendingInst &PI) {
  Token = trim(Token);
  if (std::optional<int64_t> Value = parseInt(Token)) {
    PI.Inst.Imm = *Value;
    return true;
  }
  if (isValidIdentifier(Token)) {
    PI.ImmLabel = std::string(Token);
    return true;
  }
  return fail("expected immediate or label, got '" + std::string(Token) +
              "'");
}

bool Assembler::parseMemOperand(std::string_view Token, uint8_t &Base,
                                int64_t &Off) {
  Token = trim(Token);
  if (Token.size() < 3 || Token.front() != '[' || Token.back() != ']')
    return fail("expected memory operand [reg+off], got '" +
                std::string(Token) + "'");
  std::string_view Inner = trim(Token.substr(1, Token.size() - 2));
  // Find a +/- separator after the register name (if any).
  size_t SepPos = Inner.find_first_of("+-", 1);
  std::string_view RegPart =
      SepPos == std::string_view::npos ? Inner : Inner.substr(0, SepPos);
  if (!parseReg(RegPart, Base))
    return false;
  Off = 0;
  if (SepPos != std::string_view::npos) {
    std::optional<int64_t> Value = parseInt(Inner.substr(SepPos));
    if (!Value)
      return fail("bad memory offset in '" + std::string(Token) + "'");
    Off = *Value;
  }
  return true;
}

bool Assembler::defineLabel(std::string_view Label) {
  if (!isValidIdentifier(Label))
    return fail("invalid label '" + std::string(Label) + "'");
  std::string Key(Label);
  if (Symbols.count(Key))
    return fail("redefinition of label '" + Key + "'");
  uint64_t Addr = InData ? AddressLayout::DataBase + Data.size()
                         : Program::addressOfIndex(Pending.size());
  Symbols.emplace(std::move(Key), Addr);
  return true;
}

bool Assembler::parseStringLiteral(std::string_view Token, std::string &Out) {
  Token = trim(Token);
  if (Token.size() < 2 || Token.front() != '"' || Token.back() != '"')
    return fail("expected string literal");
  std::string_view Body = Token.substr(1, Token.size() - 2);
  for (size_t I = 0; I != Body.size(); ++I) {
    char C = Body[I];
    if (C == '\\' && I + 1 != Body.size()) {
      ++I;
      switch (Body[I]) {
      case 'n':
        Out.push_back('\n');
        break;
      case 't':
        Out.push_back('\t');
        break;
      case '0':
        Out.push_back('\0');
        break;
      case '\\':
        Out.push_back('\\');
        break;
      case '"':
        Out.push_back('"');
        break;
      default:
        return fail("unknown escape in string literal");
      }
    } else {
      Out.push_back(C);
    }
  }
  return true;
}

bool Assembler::parseDirective(std::string_view Head, std::string_view Rest) {
  if (Head == ".text") {
    InData = false;
    return true;
  }
  if (Head == ".data") {
    InData = true;
    return true;
  }
  if (!InData)
    return fail("directive '" + std::string(Head) +
                "' only allowed in .data section");
  if (Head == ".space") {
    std::optional<uint64_t> Size = parseUint(Rest);
    if (!Size)
      return fail(".space needs a size");
    Data.resize(Data.size() + *Size, 0);
    return true;
  }
  if (Head == ".align") {
    std::optional<uint64_t> Align = parseUint(Rest);
    if (!Align || *Align == 0 || (*Align & (*Align - 1)) != 0)
      return fail(".align needs a power-of-two argument");
    while (Data.size() % *Align != 0)
      Data.push_back(0);
    return true;
  }
  if (Head == ".asciiz") {
    std::string Text;
    if (!parseStringLiteral(Rest, Text))
      return false;
    for (char C : Text)
      Data.push_back(static_cast<uint8_t>(C));
    Data.push_back(0);
    return true;
  }
  unsigned Width = 0;
  if (Head == ".word8")
    Width = 1;
  else if (Head == ".word16")
    Width = 2;
  else if (Head == ".word32")
    Width = 4;
  else if (Head == ".word64")
    Width = 8;
  else
    return fail("unknown directive '" + std::string(Head) + "'");
  for (std::string_view Piece : split(Rest, ',')) {
    std::string_view Tok = trim(Piece);
    std::optional<int64_t> Value = parseInt(Tok);
    if (!Value) {
      // A label reference (e.g. a jump-table entry): emit zeros now and
      // patch the address in pass 2.
      if (!isValidIdentifier(Tok))
        return fail("bad value in " + std::string(Head));
      DataFixups.push_back({Data.size(), Width, std::string(Tok), LineNo});
      Value = 0;
    }
    uint64_t Bits = static_cast<uint64_t>(*Value);
    for (unsigned I = 0; I != Width; ++I)
      Data.push_back(static_cast<uint8_t>(Bits >> (8 * I)));
  }
  return true;
}

bool Assembler::parseInstruction(std::string_view Head,
                                 std::string_view Rest) {
  if (InData)
    return fail("instruction in .data section");

  // Find the opcode by mnemonic.
  Opcode Op = Opcode::NumOpcodes;
  for (unsigned I = 0; I != NumOpcodes; ++I) {
    if (getOpcodeInfo(static_cast<Opcode>(I)).Mnemonic == Head) {
      Op = static_cast<Opcode>(I);
      break;
    }
  }
  if (Op == Opcode::NumOpcodes)
    return fail("unknown mnemonic '" + std::string(Head) + "'");

  PendingInst PI;
  PI.Inst.Op = Op;
  PI.Line = LineNo;
  std::vector<std::string_view> Ops;
  for (std::string_view Piece : split(Rest, ','))
    if (!trim(Piece).empty())
      Ops.push_back(trim(Piece));

  auto Expect = [&](size_t N) {
    if (Ops.size() == N)
      return true;
    return fail("expected " + std::to_string(N) + " operand(s) for '" +
                std::string(Head) + "'");
  };

  const OpcodeInfo &Info = getOpcodeInfo(Op);
  switch (Info.Format) {
  case OpFormat::None:
    if (!Expect(0))
      return false;
    break;
  case OpFormat::R1:
    if (!Expect(1) || !parseReg(Ops[0], PI.Inst.A))
      return false;
    break;
  case OpFormat::R2:
    if (!Expect(2) || !parseReg(Ops[0], PI.Inst.A) ||
        !parseReg(Ops[1], PI.Inst.B))
      return false;
    break;
  case OpFormat::R3:
    if (!Expect(3) || !parseReg(Ops[0], PI.Inst.A) ||
        !parseReg(Ops[1], PI.Inst.B) || !parseReg(Ops[2], PI.Inst.C))
      return false;
    break;
  case OpFormat::R1I:
    if (!Expect(2) || !parseReg(Ops[0], PI.Inst.A) ||
        !parseImmOrLabel(Ops[1], PI))
      return false;
    break;
  case OpFormat::R2I:
    if (!Expect(3) || !parseReg(Ops[0], PI.Inst.A) ||
        !parseReg(Ops[1], PI.Inst.B) || !parseImmOrLabel(Ops[2], PI))
      return false;
    break;
  case OpFormat::Mem:
    if (PI.Inst.Op == Opcode::Incm) {
      if (!Expect(1) || !parseMemOperand(Ops[0], PI.Inst.B, PI.Inst.Imm))
        return false;
    } else if (!Expect(2) || !parseReg(Ops[0], PI.Inst.A) ||
               !parseMemOperand(Ops[1], PI.Inst.B, PI.Inst.Imm)) {
      return false;
    }
    break;
  case OpFormat::MemStore:
    if (!Expect(2) || !parseMemOperand(Ops[0], PI.Inst.A, PI.Inst.Imm) ||
        !parseReg(Ops[1], PI.Inst.B))
      return false;
    break;
  case OpFormat::JumpI:
    if (!Expect(1) || !parseImmOrLabel(Ops[0], PI))
      return false;
    break;
  case OpFormat::Branch:
    if (!Expect(3) || !parseReg(Ops[0], PI.Inst.A) ||
        !parseReg(Ops[1], PI.Inst.B) || !parseImmOrLabel(Ops[2], PI))
      return false;
    break;
  }
  Pending.push_back(std::move(PI));
  return true;
}

bool Assembler::parseLine(std::string_view Line) {
  // Strip comments.
  size_t CommentPos = Line.find_first_of(";#");
  if (CommentPos != std::string_view::npos)
    Line = Line.substr(0, CommentPos);
  Line = trim(Line);
  if (Line.empty())
    return true;

  // Leading labels (possibly several).
  while (true) {
    size_t Colon = Line.find(':');
    if (Colon == std::string_view::npos)
      break;
    std::string_view Candidate = trim(Line.substr(0, Colon));
    // A colon inside a string literal or operand list is not a label.
    if (!isValidIdentifier(Candidate))
      break;
    if (!defineLabel(Candidate))
      return false;
    Line = trim(Line.substr(Colon + 1));
    if (Line.empty())
      return true;
  }

  // Split mnemonic/directive from operands.
  size_t SpacePos = Line.find_first_of(" \t");
  std::string_view Head =
      SpacePos == std::string_view::npos ? Line : Line.substr(0, SpacePos);
  std::string_view Rest =
      SpacePos == std::string_view::npos ? "" : trim(Line.substr(SpacePos));

  if (!Head.empty() && Head[0] == '.')
    return parseDirective(Head, Rest);
  return parseInstruction(Head, Rest);
}

std::optional<Program> Assembler::run(std::string &ErrorMsg) {
  // Pass 1: parse everything, collecting labels and pending instructions.
  size_t Pos = 0;
  while (Pos <= Source.size()) {
    size_t Eol = Source.find('\n', Pos);
    if (Eol == std::string_view::npos)
      Eol = Source.size();
    ++LineNo;
    if (!parseLine(Source.substr(Pos, Eol - Pos))) {
      ErrorMsg = Error;
      return std::nullopt;
    }
    Pos = Eol + 1;
  }

  // Pass 2: resolve label immediates.
  for (const DataFixup &F : DataFixups) {
    auto It = Symbols.find(F.Label);
    if (It == Symbols.end()) {
      ErrorMsg = "line " + std::to_string(F.Line) + ": undefined label '" +
                 F.Label + "'";
      return std::nullopt;
    }
    for (unsigned I = 0; I != F.Width; ++I)
      Data[F.Offset + I] = static_cast<uint8_t>(It->second >> (8 * I));
  }
  Program Prog;
  Prog.Name = std::string(Name);
  Prog.Symbols = Symbols;
  Prog.DataInit = std::move(Data);
  Prog.Text.reserve(Pending.size());
  for (PendingInst &PI : Pending) {
    if (!PI.ImmLabel.empty()) {
      auto It = Symbols.find(PI.ImmLabel);
      if (It == Symbols.end()) {
        ErrorMsg = "line " + std::to_string(PI.Line) +
                   ": undefined label '" + PI.ImmLabel + "'";
        return std::nullopt;
      }
      PI.Inst.Imm = static_cast<int64_t>(It->second);
    }
    Prog.Text.push_back(PI.Inst);
  }
  if (Prog.Text.empty()) {
    ErrorMsg = "program has no instructions";
    return std::nullopt;
  }
  auto MainIt = Symbols.find("main");
  Prog.EntryPc = MainIt != Symbols.end() ? MainIt->second
                                         : AddressLayout::TextBase;
  return Prog;
}

std::optional<Program> spin::vm::assemble(std::string_view Source,
                                          std::string_view Name,
                                          std::string &ErrorMsg) {
  Assembler Asm(Source, Name);
  return Asm.run(ErrorMsg);
}
