//===- tools/BranchProfile.h - Branch profiling Pintool ---------*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A branch-profiling Pintool demonstrating the auto-merge shared-area
/// mode (SP_CreateSharedArea with addition): conditional branch and taken
/// counts accumulate in a slice-local shadow that the runtime sums into
/// the shared totals at merge time — no manual merge function needed.
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_TOOLS_BRANCHPROFILE_H
#define SUPERPIN_TOOLS_BRANCHPROFILE_H

#include "pin/Tool.h"

#include <memory>

namespace spin::tools {

struct BranchProfileResult {
  uint64_t CondBranches = 0;
  uint64_t Taken = 0;
  uint64_t Calls = 0;
  uint64_t Returns = 0;
  uint64_t IndirectJumps = 0;
};

pin::ToolFactory
makeBranchProfileTool(std::shared_ptr<BranchProfileResult> Result = nullptr);

} // namespace spin::tools

#endif // SUPERPIN_TOOLS_BRANCHPROFILE_H
