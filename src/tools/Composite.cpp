//===- tools/Composite.cpp - Run several Pintools at once -----------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "tools/Composite.h"

#include <memory>

using namespace spin;
using namespace spin::pin;
using namespace spin::tools;

namespace {

class CompositeTool final : public Tool {
public:
  CompositeTool(SpServices &Services,
                const std::vector<ToolFactory> &Factories)
      : Tool(Services) {
    SubTools.reserve(Factories.size());
    for (const ToolFactory &F : Factories)
      SubTools.push_back(F(Services));
  }

  std::string_view name() const override { return "composite"; }

  /// A composite is only as batchable as its least batchable member: any
  /// Stateful sub-tool vetoes -spredux suppression for the whole group
  /// (eligibility is declared per tool, and the compiler sees one tool).
  InstrKind instrKind() const override {
    for (const auto &Sub : SubTools)
      if (Sub->instrKind() == InstrKind::Stateful)
        return InstrKind::Stateful;
    return InstrKind::Aggregatable;
  }

  void instrumentTrace(Trace &T) override {
    for (auto &Sub : SubTools)
      Sub->instrumentTrace(T);
  }
  void onSyscall(uint64_t Number) override {
    for (auto &Sub : SubTools)
      Sub->onSyscall(Number);
  }
  void onSliceBegin(uint32_t SliceNum) override {
    for (auto &Sub : SubTools)
      Sub->onSliceBegin(SliceNum);
  }
  void onSliceEnd(uint32_t SliceNum) override {
    for (auto &Sub : SubTools)
      Sub->onSliceEnd(SliceNum);
  }
  void onFini(RawOstream &OS) override {
    for (auto &Sub : SubTools)
      Sub->onFini(OS);
  }

private:
  std::vector<std::unique_ptr<Tool>> SubTools;
};

} // namespace

ToolFactory
spin::tools::makeCompositeTool(std::vector<ToolFactory> Factories) {
  return [Factories = std::move(Factories)](SpServices &Services) {
    return std::make_unique<CompositeTool>(Services, Factories);
  };
}
