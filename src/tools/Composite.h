//===- tools/Composite.h - Run several Pintools at once ---------*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tool adapter that multiplexes any number of Pintools into a single
/// instrumented run: every sub-tool instruments every trace and receives
/// every lifecycle callback, in registration order. Shared-area creation
/// order stays deterministic because sub-tools construct in order, so
/// composite tools work under SuperPin exactly like single ones.
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_TOOLS_COMPOSITE_H
#define SUPERPIN_TOOLS_COMPOSITE_H

#include "pin/Tool.h"

#include <vector>

namespace spin::tools {

/// Combines \p Factories into one ToolFactory.
pin::ToolFactory
makeCompositeTool(std::vector<pin::ToolFactory> Factories);

} // namespace spin::tools

#endif // SUPERPIN_TOOLS_COMPOSITE_H
