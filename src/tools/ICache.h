//===- tools/ICache.h - Instruction-cache simulator Pintool -----*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An instruction-cache simulator — the other classic "cache simulation
/// driver" use case from the paper's introduction. Drives the shared
/// CacheSim core with the instruction-fetch stream (one access per
/// executed instruction at its pc) and merges across SuperPin slices with
/// the same assume-then-reconcile recipe as the data cache.
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_TOOLS_ICACHE_H
#define SUPERPIN_TOOLS_ICACHE_H

#include "pin/Tool.h"
#include "tools/CacheSim.h"

#include <memory>

namespace spin::tools {

struct ICacheResult {
  uint64_t Accesses = 0;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t ReconciledAssumptions = 0;
};

pin::ToolFactory makeICacheTool(CacheGeometry Geometry,
                                std::shared_ptr<ICacheResult> Result = nullptr);

} // namespace spin::tools

#endif // SUPERPIN_TOOLS_ICACHE_H
