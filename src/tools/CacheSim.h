//===- tools/CacheSim.h - Sliceable cache simulation core -------*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cache-simulation core shared by the data-cache and instruction-
/// cache Pintools: an LRU set-associative cache with the paper's Section
/// 5.2 assume-then-reconcile support for SuperPin slices.
///
/// In assume mode (a slice with unknown pre-slice cache contents), the
/// first accesses that would fill a set's unknown residual capacity are
/// assumed to hit and recorded; mergeInto() later compares each assumption
/// against the previous slices' final state in the shared area, converts
/// wrong assumptions to misses, and installs this slice's final state.
/// For direct-mapped caches the reconstruction is exact.
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_TOOLS_CACHESIM_H
#define SUPERPIN_TOOLS_CACHESIM_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace spin::tools {

struct CacheGeometry {
  uint32_t LineBytes = 64;
  uint32_t NumSets = 1024;
  uint32_t Assoc = 1; ///< 1 = direct-mapped (the paper's §5.2 example)

  uint64_t sizeBytes() const {
    return uint64_t(LineBytes) * NumSets * Assoc;
  }
};

/// One simulated cache instance with slice-local counters.
///
/// Shared-area layout (produced by initSharedImage, consumed/updated by
/// mergeInto): four uint64 totals [accesses, hits, misses, reconciled]
/// followed by NumSets*Assoc line slots in MRU-to-LRU order.
class SlicedCacheModel {
public:
  explicit SlicedCacheModel(CacheGeometry Geometry);

  /// Assume mode on = SuperPin slice semantics; off = classic serial
  /// simulation (cold start counts as misses).
  void setAssumeMode(bool Assume) { AssumeMode = Assume; }

  /// Simulates one access; updates local counters.
  void access(uint64_t Addr);

  /// Clears slice-local state (start of a new slice).
  void reset();

  // Slice-local counters.
  uint64_t accesses() const { return LocalAccesses; }
  uint64_t hits() const { return LocalHits; }
  uint64_t misses() const { return LocalMisses; }

  /// Bytes the cross-slice shared area needs.
  size_t sharedSizeBytes() const;

  /// Writes the initial shared image (zero totals, empty sets).
  void initSharedImage(void *Base) const;

  /// Reconciles assumptions against \p SharedBase, installs this
  /// instance's final set states, and adds local counters to the shared
  /// totals. Call in slice order.
  void mergeInto(void *SharedBase);

  /// Reads the four totals out of a shared image.
  static void readTotals(const void *Base, uint64_t &Accesses,
                         uint64_t &Hits, uint64_t &Misses,
                         uint64_t &Reconciled);

private:
  struct SetState {
    std::vector<uint64_t> Mru; ///< present lines, MRU first (<= Assoc)
    std::vector<uint64_t> Assumed;
    bool Evicted = false;
    bool Touched = false;
  };

  CacheGeometry Geometry;
  bool AssumeMode = false;
  std::vector<SetState> Sets;
  uint64_t LocalAccesses = 0;
  uint64_t LocalHits = 0;
  uint64_t LocalMisses = 0;
  uint64_t LocalReconciled = 0;
};

} // namespace spin::tools

#endif // SUPERPIN_TOOLS_CACHESIM_H
