//===- tools/OpcodeMix.cpp - Opcode histogram Pintool ---------------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "tools/OpcodeMix.h"

#include "support/RawOstream.h"

using namespace spin;
using namespace spin::pin;
using namespace spin::tools;
using namespace spin::vm;

namespace {

class OpcodeMixTool final : public Tool {
public:
  OpcodeMixTool(SpServices &Services, std::shared_ptr<OpcodeMixResult> Result)
      : Tool(Services), Result(std::move(Result)) {
    Counts = static_cast<uint64_t *>(services().createSharedArea(
        Local.data(), Local.size() * sizeof(uint64_t), AutoMerge::Add64));
  }

  std::string_view name() const override { return "opcodemix"; }

  /// Histogram bumps are additive per opcode, so N deferred iterations
  /// fold into one Counts[op] += N: eligible for -spredux batching.
  InstrKind instrKind() const override { return InstrKind::Aggregatable; }

  void instrumentTrace(Trace &T) override {
    for (uint32_t I = 0; I != T.numIns(); ++I) {
      Ins In = T.insAt(I);
      In.insertAggregableCall(
          [this](const uint64_t *A) { ++Counts[A[0]]; },
          [this](const uint64_t *A, uint64_t N) { Counts[A[0]] += N; },
          {Arg::imm(static_cast<uint64_t>(In.inst().Op))});
    }
  }

  void onFini(RawOstream &OS) override {
    OS << "opcode mix:\n";
    for (unsigned I = 0; I != NumOpcodes; ++I) {
      if (Counts[I] == 0)
        continue;
      OS << "  ";
      OS.writePadded(getOpcodeInfo(static_cast<Opcode>(I)).Mnemonic, 10);
      OS << Counts[I] << '\n';
    }
    if (Result)
      for (unsigned I = 0; I != NumOpcodes; ++I)
        Result->Counts[I] = Counts[I];
  }

private:
  std::shared_ptr<OpcodeMixResult> Result;
  std::array<uint64_t, NumOpcodes> Local{};
  uint64_t *Counts;
};

} // namespace

ToolFactory
spin::tools::makeOpcodeMixTool(std::shared_ptr<OpcodeMixResult> Result) {
  return [Result](SpServices &Services) {
    return std::make_unique<OpcodeMixTool>(Services, Result);
  };
}
