//===- tools/CacheSim.cpp - Sliceable cache simulation core ---------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "tools/CacheSim.h"

#include <algorithm>
#include <cassert>
#include <cstring>

using namespace spin;
using namespace spin::tools;

static constexpr uint64_t EmptyLine = ~uint64_t(0);
static constexpr size_t TotalsWords = 4;

SlicedCacheModel::SlicedCacheModel(CacheGeometry Geometry)
    : Geometry(Geometry), Sets(Geometry.NumSets) {
  assert(Geometry.LineBytes > 0 && Geometry.NumSets > 0 &&
         Geometry.Assoc > 0 && "degenerate cache geometry");
}

void SlicedCacheModel::reset() {
  for (SetState &S : Sets) {
    S.Mru.clear();
    S.Assumed.clear();
    S.Evicted = false;
    S.Touched = false;
  }
  LocalAccesses = LocalHits = LocalMisses = LocalReconciled = 0;
}

void SlicedCacheModel::access(uint64_t Addr) {
  uint64_t Line = Addr / Geometry.LineBytes;
  SetState &S = Sets[Line % Geometry.NumSets];
  S.Touched = true;
  ++LocalAccesses;
  auto It = std::find(S.Mru.begin(), S.Mru.end(), Line);
  if (It != S.Mru.end()) {
    ++LocalHits;
    std::rotate(S.Mru.begin(), It, It + 1); // Move to MRU position.
    return;
  }
  // While the set has unknown residual capacity (no eviction yet, ways
  // left), assume the pre-slice contents held this line (§5.2).
  if (AssumeMode && !S.Evicted && S.Mru.size() < Geometry.Assoc) {
    ++LocalHits;
    S.Assumed.push_back(Line);
    S.Mru.insert(S.Mru.begin(), Line);
    return;
  }
  ++LocalMisses;
  S.Mru.insert(S.Mru.begin(), Line);
  if (S.Mru.size() > Geometry.Assoc) {
    S.Mru.pop_back();
    S.Evicted = true;
  }
}

size_t SlicedCacheModel::sharedSizeBytes() const {
  return (TotalsWords + size_t(Geometry.NumSets) * Geometry.Assoc) * 8;
}

void SlicedCacheModel::initSharedImage(void *Base) const {
  uint64_t *Words = static_cast<uint64_t *>(Base);
  std::memset(Words, 0, TotalsWords * 8);
  uint64_t *Lines = Words + TotalsWords;
  for (size_t I = 0; I != size_t(Geometry.NumSets) * Geometry.Assoc; ++I)
    Lines[I] = EmptyLine;
}

void SlicedCacheModel::mergeInto(void *SharedBase) {
  uint64_t *Totals = static_cast<uint64_t *>(SharedBase);
  uint64_t *Lines = Totals + TotalsWords;
  for (uint32_t SetIdx = 0; SetIdx != Geometry.NumSets; ++SetIdx) {
    SetState &S = Sets[SetIdx];
    if (!S.Touched)
      continue;
    uint64_t *Prev = Lines + size_t(SetIdx) * Geometry.Assoc;
    // Reconcile: an assumed hit whose line was not resident at the slice
    // boundary was really a miss.
    for (uint64_t Line : S.Assumed) {
      bool WasResident = false;
      for (uint32_t W = 0; W != Geometry.Assoc; ++W)
        if (Prev[W] == Line)
          WasResident = true;
      if (!WasResident) {
        --LocalHits;
        ++LocalMisses;
        ++LocalReconciled;
      }
    }
    // Install this slice's final view, backfilled with surviving
    // pre-slice lines (exact for direct-mapped; LRU-approximate wider).
    std::vector<uint64_t> Final = S.Mru;
    for (uint32_t W = 0;
         W != Geometry.Assoc && Final.size() < Geometry.Assoc; ++W) {
      uint64_t Line = Prev[W];
      if (Line != EmptyLine &&
          std::find(Final.begin(), Final.end(), Line) == Final.end())
        Final.push_back(Line);
    }
    for (uint32_t W = 0; W != Geometry.Assoc; ++W)
      Prev[W] = W < Final.size() ? Final[W] : EmptyLine;
  }
  Totals[0] += LocalAccesses;
  Totals[1] += LocalHits;
  Totals[2] += LocalMisses;
  Totals[3] += LocalReconciled;
}

void SlicedCacheModel::readTotals(const void *Base, uint64_t &Accesses,
                                  uint64_t &Hits, uint64_t &Misses,
                                  uint64_t &Reconciled) {
  const uint64_t *Totals = static_cast<const uint64_t *>(Base);
  Accesses = Totals[0];
  Hits = Totals[1];
  Misses = Totals[2];
  Reconciled = Totals[3];
}
