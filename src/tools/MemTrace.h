//===- tools/MemTrace.h - Memory tracing Pintool ----------------*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An ordered memory-reference tracer demonstrating the paper's Section
/// 4.5 trace-merging recipe: "the slice output will be buffered, then
/// appended to the output during merging". Each slice buffers its records
/// locally; merges run in slice order, so the concatenated SuperPin trace
/// equals a serial Pin trace exactly (a tested invariant).
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_TOOLS_MEMTRACE_H
#define SUPERPIN_TOOLS_MEMTRACE_H

#include "pin/Tool.h"

#include <memory>
#include <vector>

namespace spin::tools {

struct MemRecord {
  uint64_t Pc;
  uint64_t Addr;
  uint32_t Size;
  bool IsWrite;

  bool operator==(const MemRecord &Other) const = default;
};

/// Receives the ordered, merged trace.
struct MemTraceResult {
  std::vector<MemRecord> Records;
};

pin::ToolFactory makeMemTraceTool(std::shared_ptr<MemTraceResult> Result);

} // namespace spin::tools

#endif // SUPERPIN_TOOLS_MEMTRACE_H
