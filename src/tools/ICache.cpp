//===- tools/ICache.cpp - Instruction-cache simulator Pintool -------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "tools/ICache.h"

#include "support/RawOstream.h"

#include <vector>

using namespace spin;
using namespace spin::pin;
using namespace spin::tools;

namespace {

class ICacheTool final : public Tool {
public:
  ICacheTool(SpServices &Services, CacheGeometry Geometry,
             std::shared_ptr<ICacheResult> Result)
      : Tool(Services), Result(std::move(Result)), Cache(Geometry) {
    InitImage.resize(Cache.sharedSizeBytes());
    Cache.initSharedImage(InitImage.data());
    SharedBase = services().createSharedArea(
        InitImage.data(), InitImage.size(), AutoMerge::None);
    Cache.setAssumeMode(services().isSuperPin());
  }

  std::string_view name() const override { return "icache"; }

  /// Cache simulation is order- and state-dependent: exempt from -spredux
  /// suppression (the inherited default, made explicit on purpose).
  InstrKind instrKind() const override { return InstrKind::Stateful; }

  void instrumentTrace(Trace &T) override {
    // The fetch stream: every instruction accesses the cache at its pc.
    // Guest instructions are InstSize bytes, so consecutive instructions
    // share lines naturally.
    for (uint32_t I = 0; I != T.numIns(); ++I)
      T.insAt(I).insertCall(
          [this](const uint64_t *A) { Cache.access(A[0]); },
          {Arg::instPtr()},
          /*UserCost=*/200);
  }

  void onSliceBegin(uint32_t) override { Cache.reset(); }

  void onSliceEnd(uint32_t) override { Cache.mergeInto(SharedBase); }

  void onFini(RawOstream &OS) override {
    uint64_t Accesses, Hits, Misses, Reconciled;
    if (services().isSuperPin()) {
      SlicedCacheModel::readTotals(SharedBase, Accesses, Hits, Misses,
                                   Reconciled);
    } else {
      Accesses = Cache.accesses();
      Hits = Cache.hits();
      Misses = Cache.misses();
      Reconciled = 0;
    }
    OS << "icache: accesses " << Accesses << " hits " << Hits << " misses "
       << Misses << " reconciled " << Reconciled << '\n';
    if (Result) {
      Result->Accesses = Accesses;
      Result->Hits = Hits;
      Result->Misses = Misses;
      Result->ReconciledAssumptions = Reconciled;
    }
  }

private:
  std::shared_ptr<ICacheResult> Result;
  SlicedCacheModel Cache;
  std::vector<uint8_t> InitImage;
  void *SharedBase;
};

} // namespace

ToolFactory
spin::tools::makeICacheTool(CacheGeometry Geometry,
                            std::shared_ptr<ICacheResult> Result) {
  return [Geometry, Result](SpServices &Services) {
    return std::make_unique<ICacheTool>(Services, Geometry, Result);
  };
}
