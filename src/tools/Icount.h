//===- tools/Icount.h - Instruction counting Pintools -----------*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's two instruction-counting Pintools (Sections 5.1 and 6):
///
///  * icount1 — a counter increment inserted before every instruction;
///    the instrumentation-limited tool of Figures 3 and 4.
///  * icount2 — one increment per basic block, adding BBL_NumIns; the
///    lighter tool of Figure 5.
///
/// Both degrade to traditional Pin mode exactly as the paper's Figure 2
/// tool does: SP_CreateSharedArea returns the local counter serially.
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_TOOLS_ICOUNT_H
#define SUPERPIN_TOOLS_ICOUNT_H

#include "pin/Tool.h"

#include <memory>

namespace spin::tools {

enum class IcountGranularity : uint8_t {
  Instruction, ///< icount1: one call per instruction
  BasicBlock,  ///< icount2: one call per basic block
};

/// Receives the final count at Fini time (shared across tool instances).
struct IcountResult {
  uint64_t Total = 0;
};

/// Builds the icount tool factory. \p Result, if non-null, receives the
/// merged total when the tool's Fini runs.
pin::ToolFactory
makeIcountTool(IcountGranularity Granularity,
               std::shared_ptr<IcountResult> Result = nullptr);

} // namespace spin::tools

#endif // SUPERPIN_TOOLS_ICOUNT_H
