//===- tools/LoadValueProfile.cpp - Load-value width profiler -------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "tools/LoadValueProfile.h"

#include "support/RawOstream.h"
#include "vm/Instruction.h"

using namespace spin;
using namespace spin::pin;
using namespace spin::tools;

namespace {

class LoadValueProfileTool final : public Tool {
public:
  LoadValueProfileTool(SpServices &Services,
                       std::shared_ptr<LoadValueProfileResult> Result)
      : Tool(Services), Result(std::move(Result)) {
    // [loads, zero, fit8, fit16, fit32, wide]
    Counters = static_cast<uint64_t *>(services().createSharedArea(
        Local, sizeof(Local), AutoMerge::Add64));
  }

  std::string_view name() const override { return "loadvalues"; }

  void instrumentTrace(Trace &T) override {
    for (uint32_t I = 0; I != T.numIns(); ++I) {
      Ins In = T.insAt(I);
      const vm::Instruction &Inst = In.inst();
      // Plain loads only: pop/ret also read memory but model control/stack
      // traffic rather than data values.
      bool IsLoad = Inst.Op == vm::Opcode::Ld8u ||
                    Inst.Op == vm::Opcode::Ld16u ||
                    Inst.Op == vm::Opcode::Ld32u ||
                    Inst.Op == vm::Opcode::Ld64;
      if (!IsLoad)
        continue;
      In.insertAfterCall(
          [this](const uint64_t *A) { classify(A[0]); },
          {Arg::regValue(Inst.A)});
    }
  }

  void onFini(RawOstream &OS) override {
    OS << "loads: " << Counters[0] << " zero " << Counters[1] << " fit8 "
       << Counters[2] << " fit16 " << Counters[3] << " fit32 "
       << Counters[4] << " wide " << Counters[5] << '\n';
    if (Result) {
      Result->Loads = Counters[0];
      Result->ZeroLoads = Counters[1];
      Result->Fit8 = Counters[2];
      Result->Fit16 = Counters[3];
      Result->Fit32 = Counters[4];
      Result->Wide = Counters[5];
    }
  }

private:
  std::shared_ptr<LoadValueProfileResult> Result;
  uint64_t Local[6] = {};
  uint64_t *Counters;

  void classify(uint64_t Value) {
    ++Counters[0];
    if (Value == 0)
      ++Counters[1];
    else if (Value < (1u << 8))
      ++Counters[2];
    else if (Value < (1u << 16))
      ++Counters[3];
    else if (Value < (uint64_t(1) << 32))
      ++Counters[4];
    else
      ++Counters[5];
  }
};

} // namespace

ToolFactory spin::tools::makeLoadValueProfileTool(
    std::shared_ptr<LoadValueProfileResult> Result) {
  return [Result](SpServices &Services) {
    return std::make_unique<LoadValueProfileTool>(Services, Result);
  };
}
