//===- tools/DCache.cpp - Data-cache simulator Pintool --------------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "tools/DCache.h"

#include "support/RawOstream.h"

#include <vector>

using namespace spin;
using namespace spin::pin;
using namespace spin::tools;

namespace {

class DCacheTool final : public Tool {
public:
  DCacheTool(SpServices &Services, DCacheConfig Config,
             std::shared_ptr<DCacheResult> Result)
      : Tool(Services), Result(std::move(Result)), Cache(Config) {
    InitImage.resize(Cache.sharedSizeBytes());
    Cache.initSharedImage(InitImage.data());
    SharedBase = services().createSharedArea(
        InitImage.data(), InitImage.size(), AutoMerge::None);
    Cache.setAssumeMode(services().isSuperPin());
  }

  std::string_view name() const override { return "dcache"; }

  /// Cache simulation is order- and state-dependent (each access mutates
  /// replacement state), so the tool must see every iteration: exempt
  /// from -spredux suppression. Stateful is the inherited default; the
  /// override documents that the exemption is deliberate.
  InstrKind instrKind() const override { return InstrKind::Stateful; }

  void instrumentTrace(Trace &T) override {
    for (uint32_t I = 0; I != T.numIns(); ++I) {
      Ins In = T.insAt(I);
      if (!In.isMemoryRead() && !In.isMemoryWrite())
        continue;
      In.insertCall([this](const uint64_t *A) { Cache.access(A[0]); },
                    {Arg::memoryEa()},
                    /*UserCost=*/250);
    }
  }

  void onSliceBegin(uint32_t) override { Cache.reset(); }

  void onSliceEnd(uint32_t) override { Cache.mergeInto(SharedBase); }

  void onFini(RawOstream &OS) override {
    uint64_t Accesses, Hits, Misses, Reconciled;
    if (services().isSuperPin()) {
      SlicedCacheModel::readTotals(SharedBase, Accesses, Hits, Misses,
                                   Reconciled);
    } else {
      Accesses = Cache.accesses();
      Hits = Cache.hits();
      Misses = Cache.misses();
      Reconciled = 0;
    }
    OS << "dcache: accesses " << Accesses << " hits " << Hits << " misses "
       << Misses << " reconciled " << Reconciled << '\n';
    if (Result) {
      Result->Accesses = Accesses;
      Result->Hits = Hits;
      Result->Misses = Misses;
      Result->ReconciledAssumptions = Reconciled;
    }
  }

private:
  std::shared_ptr<DCacheResult> Result;
  SlicedCacheModel Cache;
  std::vector<uint8_t> InitImage;
  void *SharedBase;
};

} // namespace

ToolFactory spin::tools::makeDCacheTool(DCacheConfig Config,
                                        std::shared_ptr<DCacheResult> Result) {
  return [Config, Result](SpServices &Services) {
    return std::make_unique<DCacheTool>(Services, Config, Result);
  };
}
