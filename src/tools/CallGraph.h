//===- tools/CallGraph.h - Dynamic call-graph Pintool -----------*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dynamic call-graph profiler: counts caller->callee edges by
/// maintaining a shadow call stack through call/ret instrumentation.
///
/// SuperPin caveat (a live illustration of the paper's Section 4.5
/// discussion of inter-slice dependences): a slice starts mid-program with
/// an unknown call stack, so edges whose caller frame was inherited from
/// the previous slice are attributed to the UnknownCaller sentinel rather
/// than reconstructed. Total edge counts are preserved; only attribution
/// of those boundary frames degrades. Returns that pop past the inherited
/// stack are simply ignored.
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_TOOLS_CALLGRAPH_H
#define SUPERPIN_TOOLS_CALLGRAPH_H

#include "pin/Tool.h"

#include <map>
#include <memory>

namespace spin::tools {

/// Sentinel caller address for frames inherited across a slice boundary.
constexpr uint64_t UnknownCaller = ~uint64_t(0);

struct CallGraphResult {
  /// (caller entry pc, callee entry pc) -> call count. The caller key is
  /// the target of the call that created the enclosing frame (or the
  /// program entry / UnknownCaller).
  std::map<std::pair<uint64_t, uint64_t>, uint64_t> Edges;
  uint64_t TotalCalls = 0;

  /// Sum of counts on edges from UnknownCaller (slice-boundary frames).
  uint64_t unknownCallerCalls() const {
    uint64_t Sum = 0;
    for (const auto &[Edge, Count] : Edges)
      if (Edge.first == UnknownCaller)
        Sum += Count;
    return Sum;
  }
};

pin::ToolFactory
makeCallGraphTool(std::shared_ptr<CallGraphResult> Result);

} // namespace spin::tools

#endif // SUPERPIN_TOOLS_CALLGRAPH_H
