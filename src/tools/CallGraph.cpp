//===- tools/CallGraph.cpp - Dynamic call-graph Pintool -------------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "tools/CallGraph.h"

#include "support/RawOstream.h"
#include "vm/Program.h"

#include <vector>

using namespace spin;
using namespace spin::pin;
using namespace spin::tools;

namespace {

class CallGraphTool final : public Tool {
public:
  CallGraphTool(SpServices &Services, std::shared_ptr<CallGraphResult> Result)
      : Tool(Services), Result(std::move(Result)) {
    resetStack();
  }

  std::string_view name() const override { return "callgraph"; }

  void instrumentTrace(Trace &T) override {
    for (uint32_t I = 0; I != T.numIns(); ++I) {
      Ins In = T.insAt(I);
      if (In.isCall()) {
        In.insertCall(
            [this](const uint64_t *A) {
              uint64_t Callee = A[0];
              std::vector<uint64_t> &Stack = stackOf(A[1]);
              ++Local[{Stack.back(), Callee}];
              ++Calls;
              Stack.push_back(Callee);
            },
            {Arg::branchTarget(), Arg::threadId()});
      } else if (In.isRet()) {
        In.insertCall(
            [this](const uint64_t *A) {
              // Popping past the inherited stack means this return
              // belongs to a frame created before the slice started.
              std::vector<uint64_t> &Stack = stackOf(A[0]);
              if (Stack.size() > 1)
                Stack.pop_back();
            },
            {Arg::threadId()});
      }
    }
  }

  void onSliceBegin(uint32_t SliceNum) override {
    Local.clear();
    Calls = 0;
    resetStack();
    // Slice 0 starts at the program entry with a real (empty) stack;
    // later slices inherit unknown frames (one shadow stack per thread).
    BaseCaller = SliceNum == 0 ? EntrySentinel : UnknownCaller;
    Stacks.clear();
  }

  void onSliceEnd(uint32_t) override { flush(); }

  void onFini(RawOstream &OS) override {
    if (!services().isSuperPin())
      flush();
    OS << "callgraph: " << Result->Edges.size() << " edges, "
       << Result->TotalCalls << " calls\n";
  }

private:
  /// Caller key for top-level code (the program entry frame).
  static constexpr uint64_t EntrySentinel = 0;

  std::shared_ptr<CallGraphResult> Result;
  std::map<std::pair<uint64_t, uint64_t>, uint64_t> Local;
  /// One shadow stack per guest thread id.
  std::map<uint64_t, std::vector<uint64_t>> Stacks;
  uint64_t BaseCaller = EntrySentinel;
  uint64_t Calls = 0;

  void resetStack() { Stacks.clear(); }

  std::vector<uint64_t> &stackOf(uint64_t Tid) {
    std::vector<uint64_t> &Stack = Stacks[Tid];
    if (Stack.empty())
      Stack.push_back(BaseCaller);
    return Stack;
  }

  void flush() {
    for (const auto &[Edge, Count] : Local)
      Result->Edges[Edge] += Count;
    Result->TotalCalls += Calls;
    Local.clear();
    Calls = 0;
  }
};

} // namespace

ToolFactory
spin::tools::makeCallGraphTool(std::shared_ptr<CallGraphResult> Result) {
  return [Result](SpServices &Services) {
    return std::make_unique<CallGraphTool>(Services, Result);
  };
}
