//===- tools/Sampler.h - SP_EndSlice sampling profiler ----------*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A sampled profiler in the style of Shadow Profiling [18], the paper's
/// cited SP_EndSlice user: each slice profiles only its first SampleBudget
/// basic-block executions and then calls SP_EndSlice, trading coverage for
/// overhead. The merged result is a pc histogram of the sampled prefix of
/// every timeslice.
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_TOOLS_SAMPLER_H
#define SUPERPIN_TOOLS_SAMPLER_H

#include "pin/Tool.h"

#include <map>
#include <memory>

namespace spin::tools {

struct SamplerResult {
  /// Block address -> sampled execution count (ordered for determinism).
  std::map<uint64_t, uint64_t> BlockCounts;
  uint64_t SampledBlocks = 0;
  uint64_t SlicesEndedEarly = 0;
};

/// \p SampleBudget: basic-block executions profiled per slice before the
/// tool requests SP_EndSlice (0 = unlimited, never end early).
pin::ToolFactory makeSamplerTool(uint64_t SampleBudget,
                                 std::shared_ptr<SamplerResult> Result);

} // namespace spin::tools

#endif // SUPERPIN_TOOLS_SAMPLER_H
