//===- tools/Syscount.h - Syscall counting Pintool --------------*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Counts system calls by number, in the spirit of Pin's classic syscount
/// sample tool. Exercises the Tool::onSyscall notification path: under
/// SuperPin the hook fires inside slices for every syscall the slice
/// consumes (played back, re-executed, or boundary), so the merged counts
/// equal a serial run's.
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_TOOLS_SYSCOUNT_H
#define SUPERPIN_TOOLS_SYSCOUNT_H

#include "pin/Tool.h"

#include <map>
#include <memory>

namespace spin::tools {

struct SyscountResult {
  std::map<uint64_t, uint64_t> CountByNumber;

  uint64_t total() const {
    uint64_t Sum = 0;
    for (const auto &[Number, Count] : CountByNumber)
      Sum += Count;
    return Sum;
  }
};

pin::ToolFactory makeSyscountTool(std::shared_ptr<SyscountResult> Result);

} // namespace spin::tools

#endif // SUPERPIN_TOOLS_SYSCOUNT_H
