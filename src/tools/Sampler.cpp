//===- tools/Sampler.cpp - SP_EndSlice sampling profiler ------------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "tools/Sampler.h"

#include "support/RawOstream.h"

using namespace spin;
using namespace spin::pin;
using namespace spin::tools;

namespace {

class SamplerTool final : public Tool {
public:
  SamplerTool(SpServices &Services, uint64_t SampleBudget,
              std::shared_ptr<SamplerResult> Result)
      : Tool(Services), SampleBudget(SampleBudget), Result(std::move(Result)) {
  }

  std::string_view name() const override { return "sampler"; }

  void instrumentTrace(Trace &T) override {
    for (uint32_t B = 0; B != T.numBbls(); ++B) {
      Bbl Block = T.bblAt(B);
      uint64_t Addr = Block.address();
      Block.insHead().insertCall(
          [this, Addr](const uint64_t *) {
            if (Done)
              return;
            ++Local[Addr];
            ++Sampled;
            if (SampleBudget != 0 && Sampled >= SampleBudget) {
              Done = true;
              ++EndedEarly;
              services().endSlice(); // SP_EndSlice
            }
          },
          {});
    }
  }

  void onSliceBegin(uint32_t) override {
    Local.clear();
    Sampled = 0;
    EndedEarly = 0;
    Done = false;
  }

  void onSliceEnd(uint32_t) override { flush(); }

  void onFini(RawOstream &OS) override {
    if (!services().isSuperPin())
      flush();
    OS << "sampler: " << Result->SampledBlocks << " block samples, "
       << Result->SlicesEndedEarly << " slices ended early\n";
  }

private:
  uint64_t SampleBudget;
  std::shared_ptr<SamplerResult> Result;
  std::map<uint64_t, uint64_t> Local;
  uint64_t Sampled = 0;
  uint64_t EndedEarly = 0;
  bool Done = false;

  void flush() {
    for (const auto &[Addr, Count] : Local)
      Result->BlockCounts[Addr] += Count;
    Result->SampledBlocks += Sampled;
    Result->SlicesEndedEarly += EndedEarly;
    Local.clear();
  }
};

} // namespace

ToolFactory
spin::tools::makeSamplerTool(uint64_t SampleBudget,
                             std::shared_ptr<SamplerResult> Result) {
  return [SampleBudget, Result](SpServices &Services) {
    return std::make_unique<SamplerTool>(Services, SampleBudget, Result);
  };
}
