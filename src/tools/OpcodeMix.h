//===- tools/OpcodeMix.h - Opcode histogram Pintool -------------*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Counts dynamic executions per opcode ("profiling dynamic instruction
/// types", one of the paper's motivating workload-analysis tasks). Uses an
/// auto-merged uint64 array indexed by opcode.
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_TOOLS_OPCODEMIX_H
#define SUPERPIN_TOOLS_OPCODEMIX_H

#include "pin/Tool.h"
#include "vm/Instruction.h"

#include <array>
#include <memory>

namespace spin::tools {

struct OpcodeMixResult {
  std::array<uint64_t, vm::NumOpcodes> Counts{};

  uint64_t total() const {
    uint64_t Sum = 0;
    for (uint64_t C : Counts)
      Sum += C;
    return Sum;
  }
};

pin::ToolFactory
makeOpcodeMixTool(std::shared_ptr<OpcodeMixResult> Result = nullptr);

} // namespace spin::tools

#endif // SUPERPIN_TOOLS_OPCODEMIX_H
