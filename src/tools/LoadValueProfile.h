//===- tools/LoadValueProfile.h - Load-value width profiler -----*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Profiles the values produced by load instructions using IPOINT_AFTER
/// instrumentation (the destination register is observed after the load
/// executes): how many loads return zero, and how many significant bits
/// the loaded values carry (≤8/≤16/≤32/64). This is the classic
/// value-compressibility analysis, and it doubles as the engine's
/// IPOINT_AFTER regression tool. Uses an auto-merged shared area.
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_TOOLS_LOADVALUEPROFILE_H
#define SUPERPIN_TOOLS_LOADVALUEPROFILE_H

#include "pin/Tool.h"

#include <memory>

namespace spin::tools {

struct LoadValueProfileResult {
  uint64_t Loads = 0;
  uint64_t ZeroLoads = 0;
  uint64_t Fit8 = 0;  ///< nonzero values fitting in 8 bits
  uint64_t Fit16 = 0; ///< in 16 but not 8
  uint64_t Fit32 = 0; ///< in 32 but not 16
  uint64_t Wide = 0;  ///< needing more than 32 bits
};

pin::ToolFactory
makeLoadValueProfileTool(std::shared_ptr<LoadValueProfileResult> Result);

} // namespace spin::tools

#endif // SUPERPIN_TOOLS_LOADVALUEPROFILE_H
