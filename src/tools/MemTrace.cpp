//===- tools/MemTrace.cpp - Memory tracing Pintool ------------------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "tools/MemTrace.h"

#include "support/RawOstream.h"

using namespace spin;
using namespace spin::pin;
using namespace spin::tools;

namespace {

class MemTraceTool final : public Tool {
public:
  MemTraceTool(SpServices &Services, std::shared_ptr<MemTraceResult> Result)
      : Tool(Services), Result(std::move(Result)) {}

  std::string_view name() const override { return "memtrace"; }

  /// The trace log is ordered per-access data — collapsing N iterations
  /// into one record would lose the log itself: exempt from -spredux
  /// suppression (the inherited default, made explicit on purpose).
  InstrKind instrKind() const override { return InstrKind::Stateful; }

  void instrumentTrace(Trace &T) override {
    for (uint32_t I = 0; I != T.numIns(); ++I) {
      Ins In = T.insAt(I);
      if (!In.isMemoryRead() && !In.isMemoryWrite())
        continue;
      bool IsWrite = In.isMemoryWrite();
      In.insertCall(
          [this, IsWrite](const uint64_t *A) {
            Buffer.push_back(MemRecord{A[0], A[1],
                                       static_cast<uint32_t>(A[2]), IsWrite});
          },
          {Arg::instPtr(), Arg::memoryEa(), Arg::memorySize()},
          /*UserCost=*/300);
    }
  }

  void onSliceBegin(uint32_t) override { Buffer.clear(); }

  /// §4.5: buffered slice output is appended at merge time (slice order).
  void onSliceEnd(uint32_t) override { flush(); }

  void onFini(RawOstream &OS) override {
    if (!services().isSuperPin())
      flush(); // Serial mode: no merge phase; flush at the end.
    OS << "memtrace: " << Result->Records.size() << " references\n";
  }

private:
  std::shared_ptr<MemTraceResult> Result;
  std::vector<MemRecord> Buffer;

  void flush() {
    Result->Records.insert(Result->Records.end(), Buffer.begin(),
                           Buffer.end());
    Buffer.clear();
  }
};

} // namespace

ToolFactory
spin::tools::makeMemTraceTool(std::shared_ptr<MemTraceResult> Result) {
  return [Result](SpServices &Services) {
    return std::make_unique<MemTraceTool>(Services, Result);
  };
}
