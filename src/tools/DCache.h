//===- tools/DCache.h - Data-cache simulator Pintool ------------*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Section 5.2 data-cache SuperTool: a data-cache simulator
/// converted to SuperPin with the assume-then-reconcile recipe of
/// Section 4.5 (implemented by tools/CacheSim.h). Each slice starts with
/// an unknown cache; the first access to each set is assumed to hit and
/// recorded; at merge time (slice order) the assumptions are compared
/// against the previous slices' final cache state and corrected, then the
/// slice's final state overwrites the shared state.
///
/// For a direct-mapped cache this reconstruction is exact: SuperPin's
/// hit/miss totals equal a serial simulation bit-for-bit (a tested
/// invariant). For set-associative caches the slice-initial LRU order is
/// unknowable, so results are a close approximation (documented; access
/// counts remain exact).
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_TOOLS_DCACHE_H
#define SUPERPIN_TOOLS_DCACHE_H

#include "pin/Tool.h"
#include "tools/CacheSim.h"

#include <cstdint>
#include <memory>

namespace spin::tools {

using DCacheConfig = CacheGeometry;

struct DCacheResult {
  uint64_t Accesses = 0;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t ReconciledAssumptions = 0; ///< assumed hits corrected to misses
};

pin::ToolFactory makeDCacheTool(DCacheConfig Config,
                                std::shared_ptr<DCacheResult> Result = nullptr);

} // namespace spin::tools

#endif // SUPERPIN_TOOLS_DCACHE_H
