//===- tools/Syscount.cpp - Syscall counting Pintool ----------------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "tools/Syscount.h"

#include "os/Syscalls.h"
#include "support/RawOstream.h"

using namespace spin;
using namespace spin::pin;
using namespace spin::tools;

namespace {

class SyscountTool final : public Tool {
public:
  SyscountTool(SpServices &Services, std::shared_ptr<SyscountResult> Result)
      : Tool(Services), Result(std::move(Result)) {}

  std::string_view name() const override { return "syscount"; }

  void instrumentTrace(Trace &) override {}

  void onSyscall(uint64_t Number) override { ++Local[Number]; }

  void onSliceBegin(uint32_t) override { Local.clear(); }

  void onSliceEnd(uint32_t) override { flush(); }

  void onFini(RawOstream &OS) override {
    if (!services().isSuperPin())
      flush();
    OS << "syscalls:\n";
    for (const auto &[Number, Count] : Result->CountByNumber) {
      OS << "  ";
      OS.writePadded(os::getSyscallName(Number), 12);
      OS << Count << '\n';
    }
  }

private:
  std::shared_ptr<SyscountResult> Result;
  std::map<uint64_t, uint64_t> Local;

  void flush() {
    for (const auto &[Number, Count] : Local)
      Result->CountByNumber[Number] += Count;
    Local.clear();
  }
};

} // namespace

ToolFactory
spin::tools::makeSyscountTool(std::shared_ptr<SyscountResult> Result) {
  return [Result](SpServices &Services) {
    return std::make_unique<SyscountTool>(Services, Result);
  };
}
