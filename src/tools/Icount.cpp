//===- tools/Icount.cpp - Instruction counting Pintools -------------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "tools/Icount.h"

#include "support/RawOstream.h"

using namespace spin;
using namespace spin::pin;
using namespace spin::tools;

namespace {

/// Direct translation of the paper's Figure 2 tool into the class API.
class IcountTool final : public Tool {
public:
  IcountTool(SpServices &Services, IcountGranularity Granularity,
             std::shared_ptr<IcountResult> Result)
      : Tool(Services), Granularity(Granularity), Result(std::move(Result)) {
    // sharedData points to shared memory under SuperPin, to the local
    // counter under traditional Pin.
    SharedData = static_cast<uint64_t *>(
        services().createSharedArea(&Icount, sizeof(Icount),
                                    AutoMerge::None));
  }

  std::string_view name() const override {
    return Granularity == IcountGranularity::Instruction ? "icount1"
                                                         : "icount2";
  }

  /// Pure additive counting: N deferred iterations fold into one
  /// Icount += A[0] * N, so the tool opts into -spredux batching.
  InstrKind instrKind() const override { return InstrKind::Aggregatable; }

  void instrumentTrace(Trace &T) override {
    auto Fn = [this](const uint64_t *A) { Icount += A[0]; };
    auto Agg = [this](const uint64_t *A, uint64_t N) { Icount += A[0] * N; };
    if (Granularity == IcountGranularity::Instruction) {
      // icount1: a counter call at every single instruction.
      for (uint32_t I = 0; I != T.numIns(); ++I)
        T.insAt(I).insertAggregableCall(Fn, Agg, {Arg::imm(1)});
      return;
    }
    // icount2: BBL granularity, adding BBL_NumIns at each block head.
    for (uint32_t B = 0; B != T.numBbls(); ++B) {
      Bbl Block = T.bblAt(B);
      Block.insHead().insertAggregableCall(Fn, Agg,
                                           {Arg::imm(Block.numIns())});
    }
  }

  /// ToolReset: clears slice-local data.
  void onSliceBegin(uint32_t) override { Icount = 0; }

  /// Merge: local to shared, in slice order.
  void onSliceEnd(uint32_t) override { *SharedData += Icount; }

  void onFini(RawOstream &OS) override {
    OS << "Total Count: " << *SharedData << '\n';
    if (Result)
      Result->Total = *SharedData;
  }

private:
  IcountGranularity Granularity;
  std::shared_ptr<IcountResult> Result;
  uint64_t Icount = 0;
  uint64_t *SharedData;
};

} // namespace

ToolFactory spin::tools::makeIcountTool(IcountGranularity Granularity,
                                        std::shared_ptr<IcountResult> Result) {
  return [Granularity, Result](SpServices &Services) {
    return std::make_unique<IcountTool>(Services, Granularity, Result);
  };
}
