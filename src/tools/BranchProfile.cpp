//===- tools/BranchProfile.cpp - Branch profiling Pintool -----------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "tools/BranchProfile.h"

#include "support/RawOstream.h"

using namespace spin;
using namespace spin::pin;
using namespace spin::tools;

namespace {

class BranchProfileTool final : public Tool {
public:
  BranchProfileTool(SpServices &Services,
                    std::shared_ptr<BranchProfileResult> Result)
      : Tool(Services), Result(std::move(Result)) {
    // Auto-merged area: [cond, taken, calls, rets, indirect]. The runtime
    // hands a slice-local shadow and sums it into the shared totals.
    Counters = static_cast<uint64_t *>(services().createSharedArea(
        Local, sizeof(Local), AutoMerge::Add64));
  }

  std::string_view name() const override { return "branchprofile"; }

  /// All counters are additive. The taken counter needs the dynamic
  /// Arg::branchTaken() value, so that site stays a plain insertCall (the
  /// runtime only batches immediate-argument sites); the no-argument
  /// call/ret/indirect counters opt into -spredux batching.
  InstrKind instrKind() const override { return InstrKind::Aggregatable; }

  void instrumentTrace(Trace &T) override {
    for (uint32_t I = 0; I != T.numIns(); ++I) {
      Ins In = T.insAt(I);
      if (!In.isBranch())
        continue;
      if (In.inst().isCondBranch()) {
        In.insertCall(
            [this](const uint64_t *A) {
              ++Counters[0];
              Counters[1] += A[0];
            },
            {Arg::branchTaken()});
      } else if (In.isCall()) {
        In.insertAggregableCall(
            [this](const uint64_t *) { ++Counters[2]; },
            [this](const uint64_t *, uint64_t N) { Counters[2] += N; }, {});
      } else if (In.isRet()) {
        In.insertAggregableCall(
            [this](const uint64_t *) { ++Counters[3]; },
            [this](const uint64_t *, uint64_t N) { Counters[3] += N; }, {});
      } else if (In.inst().isIndirect()) {
        In.insertAggregableCall(
            [this](const uint64_t *) { ++Counters[4]; },
            [this](const uint64_t *, uint64_t N) { Counters[4] += N; }, {});
      }
    }
  }

  void onFini(RawOstream &OS) override {
    OS << "branches: cond " << Counters[0] << " taken " << Counters[1]
       << " calls " << Counters[2] << " rets " << Counters[3]
       << " indirect " << Counters[4] << '\n';
    if (Result) {
      Result->CondBranches = Counters[0];
      Result->Taken = Counters[1];
      Result->Calls = Counters[2];
      Result->Returns = Counters[3];
      Result->IndirectJumps = Counters[4];
    }
  }

private:
  std::shared_ptr<BranchProfileResult> Result;
  uint64_t Local[5] = {0, 0, 0, 0, 0};
  uint64_t *Counters;
};

} // namespace

ToolFactory spin::tools::makeBranchProfileTool(
    std::shared_ptr<BranchProfileResult> Result) {
  return [Result](SpServices &Services) {
    return std::make_unique<BranchProfileTool>(Services, Result);
  };
}
