//===- support/Json.cpp - Streaming JSON writer ---------------------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include "support/RawOstream.h"
#include "support/StringExtras.h"

#include <cassert>
#include <cstdio>

using namespace spin;

JsonWriter::~JsonWriter() {
  assert(Stack.empty() && "JSON document left open");
}

void JsonWriter::beforeValue() {
  if (Stack.empty()) {
    assert(!WroteTopLevel && "second top-level JSON value");
    WroteTopLevel = true;
    return;
  }
  if (Stack.back() == Scope::Object) {
    assert(PendingKey && "object value without a key");
    PendingKey = false;
    return;
  }
  if (!FirstInScope.back())
    OS << ',';
  FirstInScope.back() = false;
}

void JsonWriter::writeEscaped(std::string_view Str) {
  OS << '"';
  for (char C : Str) {
    switch (C) {
    case '"':
      OS << "\\\"";
      break;
    case '\\':
      OS << "\\\\";
      break;
    case '\n':
      OS << "\\n";
      break;
    case '\t':
      OS << "\\t";
      break;
    case '\r':
      OS << "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        OS << Buf;
      } else {
        OS << C;
      }
    }
  }
  OS << '"';
}

JsonWriter &JsonWriter::beginObject() {
  beforeValue();
  OS << '{';
  Stack.push_back(Scope::Object);
  FirstInScope.push_back(true);
  return *this;
}

JsonWriter &JsonWriter::endObject() {
  assert(!Stack.empty() && Stack.back() == Scope::Object &&
         !PendingKey && "mismatched endObject");
  OS << '}';
  Stack.pop_back();
  FirstInScope.pop_back();
  return *this;
}

JsonWriter &JsonWriter::beginArray() {
  beforeValue();
  OS << '[';
  Stack.push_back(Scope::Array);
  FirstInScope.push_back(true);
  return *this;
}

JsonWriter &JsonWriter::endArray() {
  assert(!Stack.empty() && Stack.back() == Scope::Array &&
         "mismatched endArray");
  OS << ']';
  Stack.pop_back();
  FirstInScope.pop_back();
  return *this;
}

JsonWriter &JsonWriter::key(std::string_view Name) {
  assert(!Stack.empty() && Stack.back() == Scope::Object &&
         "key outside an object");
  assert(!PendingKey && "two keys in a row");
  if (!FirstInScope.back())
    OS << ',';
  FirstInScope.back() = false;
  writeEscaped(Name);
  OS << ':';
  PendingKey = true;
  return *this;
}

JsonWriter &JsonWriter::value(std::string_view Str) {
  beforeValue();
  writeEscaped(Str);
  return *this;
}

JsonWriter &JsonWriter::value(uint64_t N) {
  beforeValue();
  OS << N;
  return *this;
}

JsonWriter &JsonWriter::value(int64_t N) {
  beforeValue();
  OS << N;
  return *this;
}

JsonWriter &JsonWriter::value(double D) {
  beforeValue();
  // JSON requires a leading digit and no inf/nan; clamp oddities to null.
  if (D != D) {
    OS << "null";
    return *this;
  }
  OS << formatFixed(D, 6);
  return *this;
}

JsonWriter &JsonWriter::value(bool B) {
  beforeValue();
  OS << (B ? "true" : "false");
  return *this;
}
