//===- support/Json.cpp - Streaming JSON writer ---------------------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include "support/RawOstream.h"
#include "support/StringExtras.h"

#include <cassert>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

using namespace spin;

JsonWriter::~JsonWriter() {
  assert(Stack.empty() && "JSON document left open");
}

void JsonWriter::beforeValue() {
  if (Stack.empty()) {
    assert(!WroteTopLevel && "second top-level JSON value");
    WroteTopLevel = true;
    return;
  }
  if (Stack.back() == Scope::Object) {
    assert(PendingKey && "object value without a key");
    PendingKey = false;
    return;
  }
  if (!FirstInScope.back())
    OS << ',';
  FirstInScope.back() = false;
}

void JsonWriter::writeEscaped(std::string_view Str) {
  OS << '"';
  for (char C : Str) {
    switch (C) {
    case '"':
      OS << "\\\"";
      break;
    case '\\':
      OS << "\\\\";
      break;
    case '\n':
      OS << "\\n";
      break;
    case '\t':
      OS << "\\t";
      break;
    case '\r':
      OS << "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        OS << Buf;
      } else {
        OS << C;
      }
    }
  }
  OS << '"';
}

JsonWriter &JsonWriter::beginObject() {
  beforeValue();
  OS << '{';
  Stack.push_back(Scope::Object);
  FirstInScope.push_back(true);
  return *this;
}

JsonWriter &JsonWriter::endObject() {
  assert(!Stack.empty() && Stack.back() == Scope::Object &&
         !PendingKey && "mismatched endObject");
  OS << '}';
  Stack.pop_back();
  FirstInScope.pop_back();
  return *this;
}

JsonWriter &JsonWriter::beginArray() {
  beforeValue();
  OS << '[';
  Stack.push_back(Scope::Array);
  FirstInScope.push_back(true);
  return *this;
}

JsonWriter &JsonWriter::endArray() {
  assert(!Stack.empty() && Stack.back() == Scope::Array &&
         "mismatched endArray");
  OS << ']';
  Stack.pop_back();
  FirstInScope.pop_back();
  return *this;
}

JsonWriter &JsonWriter::key(std::string_view Name) {
  assert(!Stack.empty() && Stack.back() == Scope::Object &&
         "key outside an object");
  assert(!PendingKey && "two keys in a row");
  if (!FirstInScope.back())
    OS << ',';
  FirstInScope.back() = false;
  writeEscaped(Name);
  OS << ':';
  PendingKey = true;
  return *this;
}

JsonWriter &JsonWriter::value(std::string_view Str) {
  beforeValue();
  writeEscaped(Str);
  return *this;
}

JsonWriter &JsonWriter::value(uint64_t N) {
  beforeValue();
  OS << N;
  return *this;
}

JsonWriter &JsonWriter::value(int64_t N) {
  beforeValue();
  OS << N;
  return *this;
}

JsonWriter &JsonWriter::value(double D) {
  beforeValue();
  // JSON requires a leading digit and no inf/nan; clamp oddities to null.
  if (D != D) {
    OS << "null";
    return *this;
  }
  OS << formatFixed(D, 6);
  return *this;
}

JsonWriter &JsonWriter::value(bool B) {
  beforeValue();
  OS << (B ? "true" : "false");
  return *this;
}

//===----------------------------------------------------------------------===//
// Reader
//===----------------------------------------------------------------------===//

double JsonValue::asDouble() const {
  switch (K) {
  case Kind::UInt:
    return static_cast<double>(UInt);
  case Kind::Int:
    return static_cast<double>(Int);
  case Kind::Double:
    return Double;
  default:
    return 0.0;
  }
}

const JsonValue *JsonValue::get(std::string_view Key) const {
  if (K != Kind::Object)
    return nullptr;
  for (const auto &[Name, Val] : Members)
    if (Name == Key)
      return &Val;
  return nullptr;
}

namespace spin {

class JsonParser {
public:
  JsonParser(std::string_view Text) : Text(Text) {}

  std::optional<JsonValue> run(std::string *Err) {
    JsonValue V;
    if (!parseValue(V) || (skipWs(), Pos != Text.size())) {
      if (!Failed)
        fail("trailing characters after document");
      if (Err)
        *Err = Msg + " at offset " + std::to_string(Pos);
      return std::nullopt;
    }
    return V;
  }

private:
  std::string_view Text;
  size_t Pos = 0;
  bool Failed = false;
  std::string Msg;

  bool fail(std::string_view Why) {
    if (!Failed) {
      Failed = true;
      Msg = Why;
    }
    return false;
  }

  void skipWs() {
    while (Pos < Text.size() && (Text[Pos] == ' ' || Text[Pos] == '\t' ||
                                 Text[Pos] == '\n' || Text[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C) {
    skipWs();
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool expect(char C, std::string_view What) {
    if (consume(C))
      return true;
    return fail(What);
  }

  bool literal(std::string_view Word) {
    if (Text.substr(Pos, Word.size()) != Word)
      return false;
    Pos += Word.size();
    return true;
  }

  bool parseValue(JsonValue &Out) {
    skipWs();
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    char C = Text[Pos];
    switch (C) {
    case '{':
      return parseObject(Out);
    case '[':
      return parseArray(Out);
    case '"':
      Out.K = JsonValue::Kind::String;
      return parseString(Out.Str);
    case 't':
      if (!literal("true"))
        return fail("bad literal");
      Out.K = JsonValue::Kind::Bool;
      Out.Boolean = true;
      return true;
    case 'f':
      if (!literal("false"))
        return fail("bad literal");
      Out.K = JsonValue::Kind::Bool;
      Out.Boolean = false;
      return true;
    case 'n':
      if (!literal("null"))
        return fail("bad literal");
      Out.K = JsonValue::Kind::Null;
      return true;
    default:
      return parseNumber(Out);
    }
  }

  bool parseObject(JsonValue &Out) {
    ++Pos; // '{'
    Out.K = JsonValue::Kind::Object;
    if (consume('}'))
      return true;
    while (true) {
      skipWs();
      std::string Key;
      if (Pos >= Text.size() || Text[Pos] != '"' || !parseString(Key))
        return fail("expected object key");
      if (!expect(':', "expected ':' after object key"))
        return false;
      JsonValue Member;
      if (!parseValue(Member))
        return false;
      Out.Members.emplace_back(std::move(Key), std::move(Member));
      if (consume(','))
        continue;
      return expect('}', "expected ',' or '}' in object");
    }
  }

  bool parseArray(JsonValue &Out) {
    ++Pos; // '['
    Out.K = JsonValue::Kind::Array;
    if (consume(']'))
      return true;
    while (true) {
      JsonValue Elem;
      if (!parseValue(Elem))
        return false;
      Out.Elements.push_back(std::move(Elem));
      if (consume(','))
        continue;
      return expect(']', "expected ',' or ']' in array");
    }
  }

  bool parseString(std::string &Out) {
    ++Pos; // opening quote
    Out.clear();
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return true;
      if (C != '\\') {
        Out.push_back(C);
        continue;
      }
      if (Pos >= Text.size())
        break;
      char E = Text[Pos++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        Out.push_back(E);
        break;
      case 'n':
        Out.push_back('\n');
        break;
      case 't':
        Out.push_back('\t');
        break;
      case 'r':
        Out.push_back('\r');
        break;
      case 'b':
        Out.push_back('\b');
        break;
      case 'f':
        Out.push_back('\f');
        break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return fail("truncated \\u escape");
        unsigned Code = 0;
        for (int I = 0; I != 4; ++I) {
          char H = Text[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= H - '0';
          else if (H >= 'a' && H <= 'f')
            Code |= H - 'a' + 10;
          else if (H >= 'A' && H <= 'F')
            Code |= H - 'A' + 10;
          else
            return fail("bad \\u escape");
        }
        // The writer only emits \u for control characters; decode the
        // one-byte cases and pass anything wider through as '?'.
        Out.push_back(Code < 0x100 ? static_cast<char>(Code) : '?');
        break;
      }
      default:
        return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  /// Integer literals stay integers: a non-negative one parses into the
  /// full uint64_t range (Kind::UInt), a negative one into int64_t
  /// (Kind::Int). Fractions, exponents, and out-of-range magnitudes fall
  /// back to double.
  bool parseNumber(JsonValue &Out) {
    size_t Start = Pos;
    bool Negative = Pos < Text.size() && Text[Pos] == '-';
    if (Negative)
      ++Pos;
    uint64_t Mag = 0;
    bool Overflow = false;
    size_t DigitsStart = Pos;
    while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9') {
      uint64_t Digit = Text[Pos] - '0';
      if (Mag > (~uint64_t(0) - Digit) / 10)
        Overflow = true;
      else
        Mag = Mag * 10 + Digit;
      ++Pos;
    }
    if (Pos == DigitsStart)
      return fail("expected a value");
    bool Fractional = false;
    if (Pos < Text.size() && Text[Pos] == '.') {
      Fractional = true;
      ++Pos;
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
        ++Pos;
    }
    if (Pos < Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      Fractional = true;
      ++Pos;
      if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
        ++Pos;
    }
    if (!Fractional && !Overflow) {
      if (!Negative) {
        Out.K = JsonValue::Kind::UInt;
        Out.UInt = Mag;
        Out.Int = static_cast<int64_t>(Mag);
        return true;
      }
      if (Mag <= static_cast<uint64_t>(INT64_MAX) + 1) {
        Out.K = JsonValue::Kind::Int;
        Out.Int = static_cast<int64_t>(0 - Mag);
        return true;
      }
    }
    Out.K = JsonValue::Kind::Double;
    Out.Double =
        std::strtod(std::string(Text.substr(Start, Pos - Start)).c_str(),
                    nullptr);
    return true;
  }
};

} // namespace spin

std::optional<JsonValue> spin::parseJson(std::string_view Text,
                                         std::string *Err) {
  return JsonParser(Text).run(Err);
}
