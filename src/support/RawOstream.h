//===- support/RawOstream.h - Lightweight output streams --------*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal raw_ostream-style stream hierarchy. The LLVM coding standards
/// forbid <iostream> in library code (static constructor injection); this
/// header provides the small subset of raw_ostream functionality the project
/// needs: buffered output to stdout/stderr/files and to std::string.
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_SUPPORT_RAWOSTREAM_H
#define SUPERPIN_SUPPORT_RAWOSTREAM_H

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace spin {

/// Abstract base for all project output streams.
///
/// Subclasses implement writeImpl; operator<< overloads format common types.
/// Unlike std::ostream there is no locale machinery and no static
/// constructors, and integer formatting never allocates.
class RawOstream {
public:
  RawOstream() = default;
  RawOstream(const RawOstream &) = delete;
  RawOstream &operator=(const RawOstream &) = delete;
  virtual ~RawOstream();

  RawOstream &operator<<(std::string_view Str) {
    writeImpl(Str.data(), Str.size());
    return *this;
  }

  RawOstream &operator<<(const char *Str) {
    return *this << std::string_view(Str);
  }

  RawOstream &operator<<(const std::string &Str) {
    return *this << std::string_view(Str);
  }

  RawOstream &operator<<(char C) {
    writeImpl(&C, 1);
    return *this;
  }

  RawOstream &operator<<(bool B) { return *this << (B ? "true" : "false"); }

  RawOstream &operator<<(uint64_t N);
  RawOstream &operator<<(int64_t N);
  RawOstream &operator<<(uint32_t N) { return *this << uint64_t(N); }
  RawOstream &operator<<(int32_t N) { return *this << int64_t(N); }
  RawOstream &operator<<(uint16_t N) { return *this << uint64_t(N); }
  RawOstream &operator<<(int16_t N) { return *this << int64_t(N); }
  RawOstream &operator<<(double D);

  /// Writes \p N as 0x-prefixed lowercase hexadecimal.
  RawOstream &writeHex(uint64_t N);

  /// Writes \p Str left-justified in a field of \p Width characters.
  RawOstream &writePadded(std::string_view Str, size_t Width);

  /// Writes \p Str right-justified in a field of \p Width characters.
  RawOstream &writeRightPadded(std::string_view Str, size_t Width);

  /// Writes \p Count spaces.
  RawOstream &indent(unsigned Count);

  /// Flushes any buffering the subclass performs. Default is a no-op.
  virtual void flush() {}

protected:
  virtual void writeImpl(const char *Data, size_t Size) = 0;
};

/// Stream backed by a C FILE handle; does not own the handle by default.
class RawFdOstream : public RawOstream {
public:
  explicit RawFdOstream(std::FILE *File, bool Owned = false)
      : File(File), Owned(Owned) {}
  ~RawFdOstream() override;

  void flush() override { std::fflush(File); }

protected:
  void writeImpl(const char *Data, size_t Size) override;

private:
  std::FILE *File;
  bool Owned;
};

/// Stream that appends into a caller-owned std::string.
class RawStringOstream : public RawOstream {
public:
  explicit RawStringOstream(std::string &Storage) : Storage(Storage) {}
  ~RawStringOstream() override;

  /// Returns the accumulated contents.
  const std::string &str() const { return Storage; }

protected:
  void writeImpl(const char *Data, size_t Size) override {
    Storage.append(Data, Size);
  }

private:
  std::string &Storage;
};

/// Stream that discards all output; handy for silencing reports in tests.
class RawNullOstream : public RawOstream {
public:
  ~RawNullOstream() override;

protected:
  void writeImpl(const char *, size_t) override {}
};

/// Returns a stream for standard output. Safe to call at any time; the
/// stream is lazily constructed (no static constructor).
RawOstream &outs();

/// Returns a stream for standard error.
RawOstream &errs();

/// Returns a stream that discards everything.
RawOstream &nulls();

} // namespace spin

#endif // SUPERPIN_SUPPORT_RAWOSTREAM_H
