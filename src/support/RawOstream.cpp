//===- support/RawOstream.cpp - Lightweight output streams ----------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/RawOstream.h"

#include <cinttypes>
#include <cstring>

using namespace spin;

RawOstream::~RawOstream() = default;
RawStringOstream::~RawStringOstream() = default;
RawNullOstream::~RawNullOstream() = default;

RawOstream &RawOstream::operator<<(uint64_t N) {
  char Buf[24];
  int Len = std::snprintf(Buf, sizeof(Buf), "%" PRIu64, N);
  writeImpl(Buf, static_cast<size_t>(Len));
  return *this;
}

RawOstream &RawOstream::operator<<(int64_t N) {
  char Buf[24];
  int Len = std::snprintf(Buf, sizeof(Buf), "%" PRId64, N);
  writeImpl(Buf, static_cast<size_t>(Len));
  return *this;
}

RawOstream &RawOstream::operator<<(double D) {
  char Buf[40];
  int Len = std::snprintf(Buf, sizeof(Buf), "%g", D);
  writeImpl(Buf, static_cast<size_t>(Len));
  return *this;
}

RawOstream &RawOstream::writeHex(uint64_t N) {
  char Buf[24];
  int Len = std::snprintf(Buf, sizeof(Buf), "0x%" PRIx64, N);
  writeImpl(Buf, static_cast<size_t>(Len));
  return *this;
}

RawOstream &RawOstream::writePadded(std::string_view Str, size_t Width) {
  *this << Str;
  if (Str.size() < Width)
    indent(static_cast<unsigned>(Width - Str.size()));
  return *this;
}

RawOstream &RawOstream::writeRightPadded(std::string_view Str, size_t Width) {
  if (Str.size() < Width)
    indent(static_cast<unsigned>(Width - Str.size()));
  return *this << Str;
}

RawOstream &RawOstream::indent(unsigned Count) {
  static const char Spaces[] = "                                ";
  while (Count > 0) {
    unsigned Chunk = Count < 32 ? Count : 32;
    writeImpl(Spaces, Chunk);
    Count -= Chunk;
  }
  return *this;
}

RawFdOstream::~RawFdOstream() {
  std::fflush(File);
  if (Owned)
    std::fclose(File);
}

void RawFdOstream::writeImpl(const char *Data, size_t Size) {
  std::fwrite(Data, 1, Size, File);
}

RawOstream &spin::outs() {
  static RawFdOstream Stream(stdout);
  return Stream;
}

RawOstream &spin::errs() {
  static RawFdOstream Stream(stderr);
  return Stream;
}

RawOstream &spin::nulls() {
  static RawNullOstream Stream;
  return Stream;
}
