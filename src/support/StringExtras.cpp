//===- support/StringExtras.cpp - String helpers --------------------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/StringExtras.h"

#include <cctype>
#include <cstdio>

using namespace spin;

static bool isSpaceChar(char C) {
  return C == ' ' || C == '\t' || C == '\r' || C == '\n';
}

std::string_view spin::trim(std::string_view Str) {
  size_t Begin = 0;
  while (Begin < Str.size() && isSpaceChar(Str[Begin]))
    ++Begin;
  size_t End = Str.size();
  while (End > Begin && isSpaceChar(Str[End - 1]))
    --End;
  return Str.substr(Begin, End - Begin);
}

std::vector<std::string_view> spin::split(std::string_view Str, char Sep) {
  std::vector<std::string_view> Pieces;
  size_t Start = 0;
  for (size_t I = 0; I != Str.size(); ++I) {
    if (Str[I] != Sep)
      continue;
    Pieces.push_back(Str.substr(Start, I - Start));
    Start = I + 1;
  }
  Pieces.push_back(Str.substr(Start));
  return Pieces;
}

std::vector<std::string_view> spin::splitWhitespace(std::string_view Str) {
  std::vector<std::string_view> Pieces;
  size_t I = 0;
  while (I < Str.size()) {
    while (I < Str.size() && isSpaceChar(Str[I]))
      ++I;
    size_t Start = I;
    while (I < Str.size() && !isSpaceChar(Str[I]))
      ++I;
    if (I > Start)
      Pieces.push_back(Str.substr(Start, I - Start));
  }
  return Pieces;
}

/// Shared digit-loop for parseInt/parseUint. \p Str must already have sign
/// and prefix stripped.
static std::optional<uint64_t> parseDigits(std::string_view Str,
                                           unsigned Radix) {
  if (Str.empty())
    return std::nullopt;
  uint64_t Value = 0;
  for (char C : Str) {
    unsigned Digit;
    if (C >= '0' && C <= '9')
      Digit = static_cast<unsigned>(C - '0');
    else if (C >= 'a' && C <= 'f')
      Digit = static_cast<unsigned>(C - 'a' + 10);
    else if (C >= 'A' && C <= 'F')
      Digit = static_cast<unsigned>(C - 'A' + 10);
    else
      return std::nullopt;
    if (Digit >= Radix)
      return std::nullopt;
    uint64_t Next = Value * Radix + Digit;
    if (Next / Radix != Value) // Overflow.
      return std::nullopt;
    Value = Next;
  }
  return Value;
}

std::optional<uint64_t> spin::parseUint(std::string_view Str) {
  Str = trim(Str);
  unsigned Radix = 10;
  if (Str.size() > 2 && Str[0] == '0' && (Str[1] == 'x' || Str[1] == 'X')) {
    Radix = 16;
    Str.remove_prefix(2);
  } else if (Str.size() > 2 && Str[0] == '0' &&
             (Str[1] == 'b' || Str[1] == 'B')) {
    Radix = 2;
    Str.remove_prefix(2);
  }
  return parseDigits(Str, Radix);
}

std::optional<int64_t> spin::parseInt(std::string_view Str) {
  Str = trim(Str);
  bool Negative = false;
  if (!Str.empty() && (Str[0] == '+' || Str[0] == '-')) {
    Negative = Str[0] == '-';
    Str.remove_prefix(1);
  }
  std::optional<uint64_t> Magnitude = parseUint(Str);
  if (!Magnitude)
    return std::nullopt;
  if (Negative) {
    // Allow down to INT64_MIN whose magnitude is 2^63.
    if (*Magnitude > (uint64_t(1) << 63))
      return std::nullopt;
    return -static_cast<int64_t>(*Magnitude);
  }
  if (*Magnitude > static_cast<uint64_t>(INT64_MAX))
    return std::nullopt;
  return static_cast<int64_t>(*Magnitude);
}

bool spin::isValidIdentifier(std::string_view Str) {
  if (Str.empty())
    return false;
  if (std::isdigit(static_cast<unsigned char>(Str[0])))
    return false;
  for (char C : Str) {
    bool Ok = std::isalnum(static_cast<unsigned char>(C)) || C == '_' ||
              C == '.' || C == '$';
    if (!Ok)
      return false;
  }
  return true;
}

std::string spin::formatWithCommas(uint64_t Value) {
  char Buf[24];
  int Len = std::snprintf(Buf, sizeof(Buf), "%llu",
                          static_cast<unsigned long long>(Value));
  std::string Result;
  for (int I = 0; I != Len; ++I) {
    if (I != 0 && (Len - I) % 3 == 0)
      Result.push_back(',');
    Result.push_back(Buf[I]);
  }
  return Result;
}

std::string spin::formatFixed(double Value, unsigned Decimals) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", static_cast<int>(Decimals), Value);
  return Buf;
}

std::string spin::formatPercent(double Ratio, unsigned Decimals) {
  return formatFixed(Ratio * 100.0, Decimals) + "%";
}
