//===- support/Random.h - Deterministic pseudo-random numbers ---*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, fast, deterministic PRNG (SplitMix64) used by the workload
/// generators and property tests. Determinism across platforms is essential
/// for reproducible experiment tables, so std::mt19937 (whose distributions
/// are implementation-defined) is deliberately avoided.
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_SUPPORT_RANDOM_H
#define SUPERPIN_SUPPORT_RANDOM_H

#include <cassert>
#include <cstdint>

namespace spin {

/// SplitMix64: passes BigCrush, two xor-shift-multiply rounds per draw.
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t Seed) : State(Seed) {}

  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Uniform value in [0, Bound). \p Bound must be nonzero. Uses the
  /// widening-multiply trick to avoid modulo bias for small bounds.
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound != 0 && "bound must be positive");
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(next()) * Bound) >> 64);
  }

  /// Uniform value in [Lo, Hi] inclusive.
  uint64_t nextInRange(uint64_t Lo, uint64_t Hi) {
    assert(Lo <= Hi && "empty range");
    return Lo + nextBelow(Hi - Lo + 1);
  }

  /// Uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// True with probability \p P.
  bool nextBool(double P) { return nextDouble() < P; }

private:
  uint64_t State;
};

} // namespace spin

#endif // SUPERPIN_SUPPORT_RANDOM_H
