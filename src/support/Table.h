//===- support/Table.h - Aligned text table writer --------------*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small text-table formatter used by the benchmark harnesses to print the
/// paper's figures and tables as aligned columns (and optionally CSV for
/// plotting).
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_SUPPORT_TABLE_H
#define SUPERPIN_SUPPORT_TABLE_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace spin {

class RawOstream;

/// Accumulates rows of string cells and prints them with aligned columns.
class Table {
public:
  enum class Align { Left, Right };

  /// Adds a column header. All columns must be added before any row.
  void addColumn(std::string_view Header, Align Alignment = Align::Right);

  /// Starts a new row; subsequent cell() calls fill it left to right.
  void startRow();

  /// Appends a cell to the current row.
  void cell(std::string_view Text);
  void cell(uint64_t Value);
  void cell(double Value, unsigned Decimals);

  /// Appends a percentage cell, e.g. 1.253 -> "125.3%".
  void cellPercent(double Ratio, unsigned Decimals = 1);

  /// Prints the table with a header rule.
  void print(RawOstream &OS) const;

  /// Prints the table as RFC-4180 CSV: cells containing a comma, quote, or
  /// newline are quoted, with embedded quotes doubled; simple cells stay
  /// bare.
  void printCsv(RawOstream &OS) const;

  /// Prints the table as a JSON array of objects keyed by column header.
  /// Cells added through the typed overloads (cell(uint64_t),
  /// cell(double, Decimals)) emit JSON numbers; text and percent cells
  /// stay JSON strings.
  void printJson(RawOstream &OS) const;

  size_t numRows() const { return Rows.size(); }

private:
  struct Column {
    std::string Header;
    Align Alignment;
  };
  /// One cell: the formatted text used by print()/printCsv(), plus the
  /// original typed value so printJson() can emit real numbers.
  struct Cell {
    enum class Kind : uint8_t { String, UInt, Double };
    std::string Text;
    Kind K = Kind::String;
    uint64_t UInt = 0;
    double Double = 0.0;
  };
  std::vector<Column> Columns;
  std::vector<std::vector<Cell>> Rows;

  Cell &addCell(std::string_view Text);
};

} // namespace spin

#endif // SUPERPIN_SUPPORT_TABLE_H
