//===- support/Histogram.h - Log2-bucketed value histogram ------*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size histogram over uint64 values with power-of-two buckets:
/// bucket 0 holds exact zeros and bucket i (i >= 1) holds values in
/// [2^(i-1), 2^i). Recording is a handful of instructions (count leading
/// zeros + array increment), so engines can record per-slice and per-check
/// distributions on hot paths without measurable overhead; 65 buckets cover
/// the full uint64 range. Deterministic: identical value streams produce
/// identical state on every platform.
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_SUPPORT_HISTOGRAM_H
#define SUPERPIN_SUPPORT_HISTOGRAM_H

#include <array>
#include <bit>
#include <cstdint>

namespace spin {

class RawOstream;

class Histogram {
public:
  /// Bucket 0 plus one bucket per bit position.
  static constexpr unsigned NumBuckets = 65;

  /// Bucket index for \p V: 0 for 0, else 1 + floor(log2(V)).
  static unsigned bucketFor(uint64_t V) {
    if (V == 0)
      return 0;
    return 64 - static_cast<unsigned>(std::countl_zero(V));
  }

  /// Inclusive lower bound of bucket \p I.
  static uint64_t bucketLow(unsigned I) {
    return I <= 1 ? 0 : uint64_t(1) << (I - 1);
  }

  /// Inclusive upper bound of bucket \p I.
  static uint64_t bucketHigh(unsigned I) {
    if (I == 0)
      return 0;
    if (I == 64)
      return ~uint64_t(0);
    return (uint64_t(1) << I) - 1;
  }

  void record(uint64_t V) {
    ++Buckets[bucketFor(V)];
    ++Count;
    Sum += V;
    if (V < MinV)
      MinV = V;
    if (V > MaxV)
      MaxV = V;
  }

  void reset() {
    Buckets.fill(0);
    Count = 0;
    Sum = 0;
    MinV = ~uint64_t(0);
    MaxV = 0;
  }

  void mergeFrom(const Histogram &Other);

  uint64_t count() const { return Count; }
  uint64_t sum() const { return Sum; }
  uint64_t min() const { return Count ? MinV : 0; }
  uint64_t max() const { return MaxV; }
  double mean() const {
    return Count ? static_cast<double>(Sum) / static_cast<double>(Count) : 0.0;
  }
  uint64_t bucketCount(unsigned I) const { return Buckets[I]; }

  /// Upper bound of the bucket containing the \p P-quantile (0 < P <= 1);
  /// 0 when empty. An over-approximation by at most 2x, which is all a
  /// log2 histogram can promise.
  uint64_t quantileBound(double P) const;

  /// One-line summary: "count=N sum=S min=m max=M p50<=A p99<=B".
  void printSummary(RawOstream &OS) const;

  bool operator==(const Histogram &Other) const = default;

private:
  std::array<uint64_t, NumBuckets> Buckets{};
  uint64_t Count = 0;
  uint64_t Sum = 0;
  uint64_t MinV = ~uint64_t(0);
  uint64_t MaxV = 0;
};

} // namespace spin

#endif // SUPERPIN_SUPPORT_HISTOGRAM_H
