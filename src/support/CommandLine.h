//===- support/CommandLine.h - Pin-style option parsing ---------*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Pin-style command-line option ("knob") facility. Pin invocations look
/// like `pin -t tool -sp 1 -spmsec 1000 -- application args...`; options are
/// single-dash name/value pairs and `--` separates the guest application's
/// own arguments. Options are registered explicitly with an OptionRegistry
/// (no static constructors, per the coding standards).
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_SUPPORT_COMMANDLINE_H
#define SUPERPIN_SUPPORT_COMMANDLINE_H

#include <cassert>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace spin {

class RawOstream;
class OptionRegistry;

/// Base class for a registered option. Holds the name, help text, and the
/// occurrence state; subclasses parse and store the typed value.
class OptionBase {
public:
  OptionBase(std::string_view Name, std::string_view Help)
      : Name(Name), Help(Help) {}
  virtual ~OptionBase();

  const std::string &name() const { return Name; }
  const std::string &help() const { return Help; }
  bool wasSet() const { return Occurred; }

  /// Parses \p Text into the typed value. \returns false on syntax error.
  virtual bool parseValue(std::string_view Text) = 0;

  /// Renders the default value for help output.
  virtual std::string defaultString() const = 0;

protected:
  friend class OptionRegistry;
  std::string Name;
  std::string Help;
  bool Occurred = false;
};

/// Typed option. Supported types: bool, uint64_t, int64_t, double,
/// std::string.
template <typename T> class Opt : public OptionBase {
public:
  Opt(OptionRegistry &Registry, std::string_view Name, T Default,
      std::string_view Help);

  const T &value() const { return Value; }
  operator const T &() const { return Value; }

  /// Sets the value programmatically (used by tests and sweep harnesses).
  void setValue(T NewValue) {
    Value = NewValue;
    Occurred = true;
  }

  bool parseValue(std::string_view Text) override;
  std::string defaultString() const override;

private:
  T Value;
  T Default;
};

/// Holds all options for one engine/tool invocation and parses argv.
class OptionRegistry {
public:
  /// Registers \p Option; asserts on duplicate names.
  void registerOption(OptionBase *Option);

  /// Parses \p Args as `-name value` pairs until `--` or the end. Tokens
  /// after `--` are collected as guest-application arguments.
  ///
  /// \returns true on success; on failure writes a diagnostic into
  /// \p ErrorMsg and returns false.
  bool parse(const std::vector<std::string> &Args, std::string &ErrorMsg);

  /// Convenience overload for C-style argv (argv[0] is skipped).
  bool parse(int Argc, const char *const *Argv, std::string &ErrorMsg);

  /// Application arguments found after `--`.
  const std::vector<std::string> &appArgs() const { return AppArgs; }

  /// Looks up an option by name; returns nullptr if not registered.
  OptionBase *lookup(std::string_view Name) const;

  /// Prints a help table of all registered options.
  void printHelp(RawOstream &OS) const;

private:
  std::vector<OptionBase *> Options;
  std::vector<std::string> AppArgs;
};

extern template class Opt<bool>;
extern template class Opt<uint64_t>;
extern template class Opt<int64_t>;
extern template class Opt<double>;
extern template class Opt<std::string>;

} // namespace spin

#endif // SUPERPIN_SUPPORT_COMMANDLINE_H
