//===- support/Compiler.h - Compiler abstraction macros ---------*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small compiler-abstraction macros used throughout the project.
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_SUPPORT_COMPILER_H
#define SUPERPIN_SUPPORT_COMPILER_H

#if defined(__GNUC__) || defined(__clang__)
#define SP_LIKELY(X) __builtin_expect(!!(X), 1)
#define SP_UNLIKELY(X) __builtin_expect(!!(X), 0)
#define SP_NOINLINE __attribute__((noinline))
#define SP_ALWAYS_INLINE inline __attribute__((always_inline))
#else
#define SP_LIKELY(X) (X)
#define SP_UNLIKELY(X) (X)
#define SP_NOINLINE
#define SP_ALWAYS_INLINE inline
#endif

#endif // SUPERPIN_SUPPORT_COMPILER_H
