//===- support/Statistic.cpp - Named counter registry ---------------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/Statistic.h"

#include "support/RawOstream.h"

using namespace spin;

StatisticRegistry::Entry *StatisticRegistry::find(std::string_view Name) {
  for (Entry &E : Entries)
    if (E.Name == Name)
      return &E;
  return nullptr;
}

const StatisticRegistry::Entry *
StatisticRegistry::find(std::string_view Name) const {
  for (const Entry &E : Entries)
    if (E.Name == Name)
      return &E;
  return nullptr;
}

uint64_t &StatisticRegistry::counter(std::string_view Name) {
  if (Entry *E = find(Name))
    return E->Value;
  Entries.push_back(Entry{std::string(Name), 0});
  return Entries.back().Value;
}

uint64_t StatisticRegistry::get(std::string_view Name) const {
  const Entry *E = find(Name);
  return E ? E->Value : 0;
}

Histogram &StatisticRegistry::histogram(std::string_view Name) {
  for (HistEntry &H : Hists)
    if (H.Name == Name)
      return H.Hist;
  Hists.push_back(HistEntry{std::string(Name), Histogram()});
  return Hists.back().Hist;
}

const Histogram *StatisticRegistry::getHistogram(std::string_view Name) const {
  for (const HistEntry &H : Hists)
    if (H.Name == Name)
      return &H.Hist;
  return nullptr;
}

void StatisticRegistry::reset() {
  for (Entry &E : Entries)
    E.Value = 0;
  for (HistEntry &H : Hists)
    H.Hist.reset();
}

void StatisticRegistry::mergeFrom(const StatisticRegistry &Other) {
  for (const Entry &E : Other.Entries)
    counter(E.Name) += E.Value;
  for (const HistEntry &H : Other.Hists)
    histogram(H.Name).mergeFrom(H.Hist);
}

void StatisticRegistry::print(RawOstream &OS) const {
  size_t Width = 0;
  for (const Entry &E : Entries)
    Width = E.Name.size() > Width ? E.Name.size() : Width;
  for (const HistEntry &H : Hists)
    Width = H.Name.size() > Width ? H.Name.size() : Width;
  Width += 2; // At least two spaces between the name and value columns.
  for (const Entry &E : Entries) {
    OS.writePadded(E.Name, Width);
    OS << E.Value << '\n';
  }
  for (const HistEntry &H : Hists) {
    OS.writePadded(H.Name, Width);
    H.Hist.printSummary(OS);
    OS << '\n';
  }
}
