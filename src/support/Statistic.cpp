//===- support/Statistic.cpp - Named counter registry ---------------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/Statistic.h"

#include "support/RawOstream.h"

using namespace spin;

StatisticRegistry::Entry *StatisticRegistry::find(std::string_view Name) {
  for (Entry &E : Entries)
    if (E.Name == Name)
      return &E;
  return nullptr;
}

const StatisticRegistry::Entry *
StatisticRegistry::find(std::string_view Name) const {
  for (const Entry &E : Entries)
    if (E.Name == Name)
      return &E;
  return nullptr;
}

uint64_t &StatisticRegistry::counter(std::string_view Name) {
  if (Entry *E = find(Name))
    return E->Value;
  Entries.push_back(Entry{std::string(Name), 0});
  return Entries.back().Value;
}

uint64_t StatisticRegistry::get(std::string_view Name) const {
  const Entry *E = find(Name);
  return E ? E->Value : 0;
}

void StatisticRegistry::reset() {
  for (Entry &E : Entries)
    E.Value = 0;
}

void StatisticRegistry::mergeFrom(const StatisticRegistry &Other) {
  for (const Entry &E : Other.Entries)
    counter(E.Name) += E.Value;
}

void StatisticRegistry::print(RawOstream &OS) const {
  for (const Entry &E : Entries) {
    OS.writePadded(E.Name, 32);
    OS << E.Value << '\n';
  }
}
