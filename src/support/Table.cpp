//===- support/Table.cpp - Aligned text table writer ----------------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/Table.h"

#include "support/Json.h"
#include "support/RawOstream.h"
#include "support/StringExtras.h"

#include <cassert>

using namespace spin;

void Table::addColumn(std::string_view Header, Align Alignment) {
  assert(Rows.empty() && "columns must be added before rows");
  Columns.push_back(Column{std::string(Header), Alignment});
}

void Table::startRow() {
  assert(!Columns.empty() && "add columns first");
  Rows.emplace_back();
}

void Table::cell(std::string_view Text) {
  assert(!Rows.empty() && "startRow() before cell()");
  assert(Rows.back().size() < Columns.size() && "too many cells in row");
  Rows.back().emplace_back(Text);
}

void Table::cell(uint64_t Value) { cell(std::to_string(Value)); }

void Table::cell(double Value, unsigned Decimals) {
  cell(formatFixed(Value, Decimals));
}

void Table::cellPercent(double Ratio, unsigned Decimals) {
  cell(formatPercent(Ratio, Decimals));
}

void Table::print(RawOstream &OS) const {
  std::vector<size_t> Widths(Columns.size());
  for (size_t C = 0; C != Columns.size(); ++C)
    Widths[C] = Columns[C].Header.size();
  for (const std::vector<std::string> &Row : Rows)
    for (size_t C = 0; C != Row.size(); ++C)
      if (Row[C].size() > Widths[C])
        Widths[C] = Row[C].size();

  auto PrintCell = [&](std::string_view Text, size_t C) {
    if (Columns[C].Alignment == Align::Left)
      OS.writePadded(Text, Widths[C]);
    else
      OS.writeRightPadded(Text, Widths[C]);
    if (C + 1 != Columns.size())
      OS << "  ";
  };

  for (size_t C = 0; C != Columns.size(); ++C)
    PrintCell(Columns[C].Header, C);
  OS << '\n';
  size_t RuleWidth = 0;
  for (size_t C = 0; C != Columns.size(); ++C)
    RuleWidth += Widths[C] + (C + 1 != Columns.size() ? 2 : 0);
  for (size_t I = 0; I != RuleWidth; ++I)
    OS << '-';
  OS << '\n';
  for (const std::vector<std::string> &Row : Rows) {
    for (size_t C = 0; C != Row.size(); ++C)
      PrintCell(Row[C], C);
    OS << '\n';
  }
}

void Table::printJson(RawOstream &OS) const {
  JsonWriter J(OS);
  J.beginArray();
  for (const std::vector<std::string> &Row : Rows) {
    J.beginObject();
    for (size_t C = 0; C != Row.size(); ++C)
      J.field(Columns[C].Header, std::string_view(Row[C]));
    J.endObject();
  }
  J.endArray();
  OS << '\n';
}

void Table::printCsv(RawOstream &OS) const {
  for (size_t C = 0; C != Columns.size(); ++C) {
    OS << Columns[C].Header;
    OS << (C + 1 != Columns.size() ? "," : "\n");
  }
  for (const std::vector<std::string> &Row : Rows) {
    for (size_t C = 0; C != Row.size(); ++C) {
      OS << Row[C];
      OS << (C + 1 != Row.size() ? "," : "\n");
    }
  }
}
