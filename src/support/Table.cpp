//===- support/Table.cpp - Aligned text table writer ----------------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/Table.h"

#include "support/Json.h"
#include "support/RawOstream.h"
#include "support/StringExtras.h"

#include <cassert>

using namespace spin;

void Table::addColumn(std::string_view Header, Align Alignment) {
  assert(Rows.empty() && "columns must be added before rows");
  Columns.push_back(Column{std::string(Header), Alignment});
}

void Table::startRow() {
  assert(!Columns.empty() && "add columns first");
  Rows.emplace_back();
}

Table::Cell &Table::addCell(std::string_view Text) {
  assert(!Rows.empty() && "startRow() before cell()");
  assert(Rows.back().size() < Columns.size() && "too many cells in row");
  Rows.back().push_back(Cell{std::string(Text)});
  return Rows.back().back();
}

void Table::cell(std::string_view Text) { addCell(Text); }

void Table::cell(uint64_t Value) {
  Cell &C = addCell(std::to_string(Value));
  C.K = Cell::Kind::UInt;
  C.UInt = Value;
}

void Table::cell(double Value, unsigned Decimals) {
  Cell &C = addCell(formatFixed(Value, Decimals));
  C.K = Cell::Kind::Double;
  C.Double = Value;
}

void Table::cellPercent(double Ratio, unsigned Decimals) {
  cell(formatPercent(Ratio, Decimals));
}

void Table::print(RawOstream &OS) const {
  std::vector<size_t> Widths(Columns.size());
  for (size_t C = 0; C != Columns.size(); ++C)
    Widths[C] = Columns[C].Header.size();
  for (const std::vector<Cell> &Row : Rows)
    for (size_t C = 0; C != Row.size(); ++C)
      if (Row[C].Text.size() > Widths[C])
        Widths[C] = Row[C].Text.size();

  auto PrintCell = [&](std::string_view Text, size_t C) {
    if (Columns[C].Alignment == Align::Left)
      OS.writePadded(Text, Widths[C]);
    else
      OS.writeRightPadded(Text, Widths[C]);
    if (C + 1 != Columns.size())
      OS << "  ";
  };

  for (size_t C = 0; C != Columns.size(); ++C)
    PrintCell(Columns[C].Header, C);
  OS << '\n';
  size_t RuleWidth = 0;
  for (size_t C = 0; C != Columns.size(); ++C)
    RuleWidth += Widths[C] + (C + 1 != Columns.size() ? 2 : 0);
  for (size_t I = 0; I != RuleWidth; ++I)
    OS << '-';
  OS << '\n';
  for (const std::vector<Cell> &Row : Rows) {
    for (size_t C = 0; C != Row.size(); ++C)
      PrintCell(Row[C].Text, C);
    OS << '\n';
  }
}

void Table::printJson(RawOstream &OS) const {
  JsonWriter J(OS);
  J.beginArray();
  for (const std::vector<Cell> &Row : Rows) {
    J.beginObject();
    for (size_t C = 0; C != Row.size(); ++C) {
      const Cell &Cl = Row[C];
      switch (Cl.K) {
      case Cell::Kind::UInt:
        J.field(Columns[C].Header, Cl.UInt);
        break;
      case Cell::Kind::Double:
        J.field(Columns[C].Header, Cl.Double);
        break;
      case Cell::Kind::String:
        J.field(Columns[C].Header, std::string_view(Cl.Text));
        break;
      }
    }
    J.endObject();
  }
  J.endArray();
  OS << '\n';
}

/// Writes one CSV field, quoting per RFC 4180 only when the text needs it.
static void writeCsvField(RawOstream &OS, std::string_view Text) {
  if (Text.find_first_of(",\"\r\n") == std::string_view::npos) {
    OS << Text;
    return;
  }
  OS << '"';
  for (char Ch : Text) {
    if (Ch == '"')
      OS << '"';
    OS << Ch;
  }
  OS << '"';
}

void Table::printCsv(RawOstream &OS) const {
  for (size_t C = 0; C != Columns.size(); ++C) {
    writeCsvField(OS, Columns[C].Header);
    OS << (C + 1 != Columns.size() ? "," : "\n");
  }
  for (const std::vector<Cell> &Row : Rows) {
    for (size_t C = 0; C != Row.size(); ++C) {
      writeCsvField(OS, Row[C].Text);
      OS << (C + 1 != Row.size() ? "," : "\n");
    }
  }
}
