//===- support/ErrorHandling.cpp - Fatal error reporting ------------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/ErrorHandling.h"

#include <cstdio>
#include <cstdlib>

using namespace spin;

void spin::reportFatalError(std::string_view Msg) {
  std::fprintf(stderr, "superpin fatal error: %.*s\n",
               static_cast<int>(Msg.size()), Msg.data());
  std::abort();
}

void spin::spUnreachableInternal(const char *Msg, const char *File,
                                 unsigned Line) {
  std::fprintf(stderr, "unreachable executed at %s:%u: %s\n", File, Line, Msg);
  std::abort();
}
