//===- support/StringExtras.h - String helpers ------------------*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// String-manipulation helpers used by the assembler, the command-line
/// parser, and report formatting. All functions operate on string_view and
/// never throw.
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_SUPPORT_STRINGEXTRAS_H
#define SUPERPIN_SUPPORT_STRINGEXTRAS_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace spin {

/// Removes leading and trailing whitespace (spaces, tabs, CR, LF).
std::string_view trim(std::string_view Str);

/// Splits \p Str at every occurrence of \p Sep. Empty pieces are kept so
/// that join(split(S)) round-trips.
std::vector<std::string_view> split(std::string_view Str, char Sep);

/// Splits \p Str at whitespace runs; empty pieces are dropped.
std::vector<std::string_view> splitWhitespace(std::string_view Str);

/// Parses a signed integer with optional 0x/0b prefix and +/- sign.
/// \returns std::nullopt on any syntax error or overflow.
std::optional<int64_t> parseInt(std::string_view Str);

/// Parses an unsigned integer with optional 0x/0b prefix.
std::optional<uint64_t> parseUint(std::string_view Str);

/// \returns true if \p Str consists only of identifier characters
/// ([A-Za-z0-9_.$]) and starts with a non-digit. Used for label validation.
bool isValidIdentifier(std::string_view Str);

/// Formats \p Value with thousands separators, e.g. 1234567 -> "1,234,567".
std::string formatWithCommas(uint64_t Value);

/// Formats \p Value as a fixed-point decimal with \p Decimals digits.
std::string formatFixed(double Value, unsigned Decimals);

/// Formats \p Ratio as a percentage string, e.g. 0.253 -> "25.3%".
std::string formatPercent(double Ratio, unsigned Decimals = 1);

} // namespace spin

#endif // SUPERPIN_SUPPORT_STRINGEXTRAS_H
