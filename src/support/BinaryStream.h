//===- support/BinaryStream.h - Little-endian byte (de)serialization -*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal fixed-layout binary (de)serialization used by the replay log.
/// All multi-byte values are little-endian regardless of host order, so a
/// capture file written on one machine loads on any other. The reader is
/// non-throwing: any out-of-bounds access latches an error flag and yields
/// zeros, letting callers validate once at the end instead of checking
/// every field.
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_SUPPORT_BINARYSTREAM_H
#define SUPERPIN_SUPPORT_BINARYSTREAM_H

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace spin {

/// Appends fixed-layout little-endian values to a growable byte buffer.
class ByteWriter {
public:
  void u8(uint8_t V) { Buf.push_back(V); }

  void u32(uint32_t V) {
    for (int I = 0; I != 4; ++I)
      Buf.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }

  void u64(uint64_t V) {
    for (int I = 0; I != 8; ++I)
      Buf.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }

  void i64(int64_t V) { u64(static_cast<uint64_t>(V)); }

  /// Raw doubles travel as their IEEE-754 bit pattern.
  void f64(double V) {
    uint64_t Bits;
    std::memcpy(&Bits, &V, sizeof(Bits));
    u64(Bits);
  }

  void boolean(bool V) { u8(V ? 1 : 0); }

  /// Length-prefixed byte blob.
  void bytes(const void *Data, size_t Size) {
    u64(Size);
    const uint8_t *P = static_cast<const uint8_t *>(Data);
    Buf.insert(Buf.end(), P, P + Size);
  }

  void str(const std::string &S) { bytes(S.data(), S.size()); }

  size_t size() const { return Buf.size(); }
  const std::vector<uint8_t> &buffer() const { return Buf; }
  std::vector<uint8_t> take() { return std::move(Buf); }

private:
  std::vector<uint8_t> Buf;
};

/// Reads fixed-layout little-endian values from a byte buffer.
class ByteReader {
public:
  ByteReader(const uint8_t *Data, size_t Size) : Data(Data), Size(Size) {}
  explicit ByteReader(const std::vector<uint8_t> &Buf)
      : Data(Buf.data()), Size(Buf.size()) {}

  uint8_t u8() {
    if (!need(1))
      return 0;
    return Data[Pos++];
  }

  uint32_t u32() {
    if (!need(4))
      return 0;
    uint32_t V = 0;
    for (int I = 0; I != 4; ++I)
      V |= static_cast<uint32_t>(Data[Pos + I]) << (8 * I);
    Pos += 4;
    return V;
  }

  uint64_t u64() {
    if (!need(8))
      return 0;
    uint64_t V = 0;
    for (int I = 0; I != 8; ++I)
      V |= static_cast<uint64_t>(Data[Pos + I]) << (8 * I);
    Pos += 8;
    return V;
  }

  int64_t i64() { return static_cast<int64_t>(u64()); }

  double f64() {
    uint64_t Bits = u64();
    double V;
    std::memcpy(&V, &Bits, sizeof(V));
    return V;
  }

  bool boolean() { return u8() != 0; }

  std::vector<uint8_t> bytes() {
    uint64_t N = u64();
    if (!need(N))
      return {};
    std::vector<uint8_t> Out(Data + Pos, Data + Pos + N);
    Pos += N;
    return Out;
  }

  std::string str() {
    uint64_t N = u64();
    if (!need(N))
      return {};
    std::string Out(reinterpret_cast<const char *>(Data + Pos), N);
    Pos += N;
    return Out;
  }

  size_t position() const { return Pos; }
  size_t remaining() const { return Size - Pos; }
  bool failed() const { return Failed; }
  /// True when every byte was consumed without error.
  bool exhausted() const { return !Failed && Pos == Size; }

private:
  bool need(uint64_t N) {
    if (Failed || N > Size - Pos) {
      Failed = true;
      return false;
    }
    return true;
  }

  const uint8_t *Data;
  size_t Size;
  size_t Pos = 0;
  bool Failed = false;
};

} // namespace spin

#endif // SUPERPIN_SUPPORT_BINARYSTREAM_H
