//===- support/Histogram.cpp - Log2-bucketed value histogram --------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/Histogram.h"

#include "support/RawOstream.h"

using namespace spin;

/// Saturating uint64 add: merged totals pin at the maximum instead of
/// wrapping, so repeated merges of huge counters stay monotone.
static uint64_t satAdd(uint64_t A, uint64_t B) {
  uint64_t R = A + B;
  return R < A ? ~uint64_t(0) : R;
}

void Histogram::mergeFrom(const Histogram &Other) {
  for (unsigned I = 0; I != NumBuckets; ++I)
    Buckets[I] = satAdd(Buckets[I], Other.Buckets[I]);
  Count = satAdd(Count, Other.Count);
  Sum = satAdd(Sum, Other.Sum);
  if (Other.Count && Other.MinV < MinV)
    MinV = Other.MinV;
  if (Other.MaxV > MaxV)
    MaxV = Other.MaxV;
}

uint64_t Histogram::quantileBound(double P) const {
  if (Count == 0)
    return 0;
  // Smallest rank covering the quantile, clamped into [1, Count].
  uint64_t Rank = static_cast<uint64_t>(P * static_cast<double>(Count));
  if (Rank == 0)
    Rank = 1;
  if (Rank > Count)
    Rank = Count;
  uint64_t Seen = 0;
  for (unsigned I = 0; I != NumBuckets; ++I) {
    Seen += Buckets[I];
    if (Seen >= Rank) {
      // The true maximum never exceeds the recorded max.
      uint64_t Hi = bucketHigh(I);
      return Hi < MaxV ? Hi : MaxV;
    }
  }
  return MaxV;
}

void Histogram::printSummary(RawOstream &OS) const {
  OS << "count=" << Count << " sum=" << Sum << " min=" << min()
     << " max=" << MaxV << " p50<=" << quantileBound(0.50)
     << " p99<=" << quantileBound(0.99);
}
