//===- support/Statistic.h - Named counter registry -------------*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A registry of named uint64 counters modeled on llvm::Statistic, scoped to
/// an explicit StatisticRegistry instance so engine runs do not share state.
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_SUPPORT_STATISTIC_H
#define SUPERPIN_SUPPORT_STATISTIC_H

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>

namespace spin {

class RawOstream;

/// Owns a set of named counters. Counters are created on first access and
/// keep registration order for deterministic reporting.
class StatisticRegistry {
public:
  struct Entry {
    std::string Name;
    uint64_t Value = 0;
  };

  /// Returns a reference to the counter named \p Name, creating it at zero
  /// if needed. References stay valid for the registry's lifetime (entries
  /// live in a deque, which never relocates on growth).
  uint64_t &counter(std::string_view Name);

  /// Returns the counter value, or 0 if it was never created.
  uint64_t get(std::string_view Name) const;

  /// Resets every counter to zero without forgetting names.
  void reset();

  /// Merges all counters from \p Other into this registry by addition.
  void mergeFrom(const StatisticRegistry &Other);

  /// Prints "name: value" lines in registration order.
  void print(RawOstream &OS) const;

  const std::deque<Entry> &entries() const { return Entries; }

private:
  std::deque<Entry> Entries;

  Entry *find(std::string_view Name);
  const Entry *find(std::string_view Name) const;
};

} // namespace spin

#endif // SUPERPIN_SUPPORT_STATISTIC_H
