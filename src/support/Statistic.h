//===- support/Statistic.h - Named counter registry -------------*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A registry of named uint64 counters modeled on llvm::Statistic, scoped to
/// an explicit StatisticRegistry instance so engine runs do not share state.
/// Besides scalar counters the registry owns named log2-bucketed histograms
/// (support/Histogram.h) so distributions export through the same named,
/// registration-ordered channel as counters.
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_SUPPORT_STATISTIC_H
#define SUPERPIN_SUPPORT_STATISTIC_H

#include "support/Histogram.h"

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>

namespace spin {

class RawOstream;

/// Owns a set of named counters and histograms. Both are created on first
/// access and keep registration order for deterministic reporting.
class StatisticRegistry {
public:
  struct Entry {
    std::string Name;
    uint64_t Value = 0;
  };

  struct HistEntry {
    std::string Name;
    Histogram Hist;
  };

  /// Returns a reference to the counter named \p Name, creating it at zero
  /// if needed. References stay valid for the registry's lifetime (entries
  /// live in a deque, which never relocates on growth).
  uint64_t &counter(std::string_view Name);

  /// Returns the counter value, or 0 if it was never created.
  uint64_t get(std::string_view Name) const;

  /// Returns a reference to the histogram named \p Name, creating it empty
  /// if needed. Same stability guarantee as counter().
  Histogram &histogram(std::string_view Name);

  /// Histogram lookup; returns nullptr when never created.
  const Histogram *getHistogram(std::string_view Name) const;

  /// Resets every counter and histogram without forgetting names.
  void reset();

  /// Merges all counters and histograms from \p Other by addition.
  void mergeFrom(const StatisticRegistry &Other);

  /// Prints "name  value" lines in registration order — counters first,
  /// then histogram summaries — with names padded to the longest so the
  /// value column aligns.
  void print(RawOstream &OS) const;

  const std::deque<Entry> &entries() const { return Entries; }
  const std::deque<HistEntry> &histogramEntries() const { return Hists; }

private:
  std::deque<Entry> Entries;
  std::deque<HistEntry> Hists;

  Entry *find(std::string_view Name);
  const Entry *find(std::string_view Name) const;
};

} // namespace spin

#endif // SUPERPIN_SUPPORT_STATISTIC_H
