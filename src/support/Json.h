//===- support/Json.h - Streaming JSON writer -------------------*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small streaming JSON writer used by the benchmark harnesses to emit
/// machine-readable experiment data (-json), plus a matching recursive-
/// descent reader (JsonValue / parseJson) used by the replay-log sidecar
/// index. The writer handles comma placement, nesting, and string
/// escaping; asserts on malformed nesting. The reader keeps integer
/// literals in 64-bit integer form — a uint64_t counter such as a replay
/// icount survives a write/parse round trip losslessly instead of being
/// squeezed through a double (which is exact only up to 2^53).
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_SUPPORT_JSON_H
#define SUPERPIN_SUPPORT_JSON_H

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace spin {

class RawOstream;

/// Streaming writer: beginObject/key/value/endObject etc. Values may be
/// emitted at the top level (one document), as array elements, or after a
/// key inside an object.
class JsonWriter {
public:
  explicit JsonWriter(RawOstream &OS) : OS(OS) {}
  ~JsonWriter();

  JsonWriter &beginObject();
  JsonWriter &endObject();
  JsonWriter &beginArray();
  JsonWriter &endArray();

  /// Emits an object key; must be inside an object, directly before the
  /// corresponding value.
  JsonWriter &key(std::string_view Name);

  JsonWriter &value(std::string_view Str);
  JsonWriter &value(const char *Str) { return value(std::string_view(Str)); }
  JsonWriter &value(uint64_t N);
  JsonWriter &value(int64_t N);
  JsonWriter &value(int N) { return value(static_cast<int64_t>(N)); }
  JsonWriter &value(unsigned N) { return value(static_cast<uint64_t>(N)); }
  JsonWriter &value(double D);
  JsonWriter &value(bool B);

  /// Convenience: key + value in one call.
  template <typename T> JsonWriter &field(std::string_view Name, T &&V) {
    key(Name);
    return value(std::forward<T>(V));
  }

  /// True once every scope has been closed.
  bool complete() const { return Stack.empty() && WroteTopLevel; }

private:
  enum class Scope : uint8_t { Object, Array };

  RawOstream &OS;
  std::vector<Scope> Stack;
  std::vector<bool> FirstInScope;
  bool PendingKey = false;
  bool WroteTopLevel = false;

  void beforeValue();
  void writeEscaped(std::string_view Str);
};

/// A parsed JSON document node. Numbers keep their most faithful native
/// representation: non-negative integer literals parse as UInt (full
/// uint64_t range), negative integer literals as Int, and only literals
/// with a fraction/exponent (or beyond 64-bit range) fall back to Double.
class JsonValue {
public:
  enum class Kind : uint8_t { Null, Bool, UInt, Int, Double, String, Array,
                              Object };

  JsonValue() = default;

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }

  bool asBool() const { return Boolean; }
  /// Valid for UInt; Int/Double callers should check kind() first.
  uint64_t asUInt() const { return UInt; }
  int64_t asInt() const { return Int; }
  /// Numeric value as a double, whatever the stored kind.
  double asDouble() const;
  const std::string &asString() const { return Str; }

  const std::vector<JsonValue> &array() const { return Elements; }
  const std::vector<std::pair<std::string, JsonValue>> &members() const {
    return Members;
  }
  /// Object member lookup; returns nullptr when absent or not an object.
  const JsonValue *get(std::string_view Key) const;

private:
  friend class JsonParser;

  Kind K = Kind::Null;
  bool Boolean = false;
  uint64_t UInt = 0;
  int64_t Int = 0;
  double Double = 0.0;
  std::string Str;
  std::vector<JsonValue> Elements;
  std::vector<std::pair<std::string, JsonValue>> Members;
};

/// Parses one JSON document. Returns std::nullopt on malformed input and,
/// when \p Err is non-null, stores a position-annotated message there.
std::optional<JsonValue> parseJson(std::string_view Text,
                                   std::string *Err = nullptr);

} // namespace spin

#endif // SUPERPIN_SUPPORT_JSON_H
