//===- support/Json.h - Streaming JSON writer -------------------*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small streaming JSON writer used by the benchmark harnesses to emit
/// machine-readable experiment data (-json). Handles comma placement,
/// nesting, and string escaping; asserts on malformed nesting.
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_SUPPORT_JSON_H
#define SUPERPIN_SUPPORT_JSON_H

#include <cstdint>
#include <string_view>
#include <vector>

namespace spin {

class RawOstream;

/// Streaming writer: beginObject/key/value/endObject etc. Values may be
/// emitted at the top level (one document), as array elements, or after a
/// key inside an object.
class JsonWriter {
public:
  explicit JsonWriter(RawOstream &OS) : OS(OS) {}
  ~JsonWriter();

  JsonWriter &beginObject();
  JsonWriter &endObject();
  JsonWriter &beginArray();
  JsonWriter &endArray();

  /// Emits an object key; must be inside an object, directly before the
  /// corresponding value.
  JsonWriter &key(std::string_view Name);

  JsonWriter &value(std::string_view Str);
  JsonWriter &value(const char *Str) { return value(std::string_view(Str)); }
  JsonWriter &value(uint64_t N);
  JsonWriter &value(int64_t N);
  JsonWriter &value(int N) { return value(static_cast<int64_t>(N)); }
  JsonWriter &value(unsigned N) { return value(static_cast<uint64_t>(N)); }
  JsonWriter &value(double D);
  JsonWriter &value(bool B);

  /// Convenience: key + value in one call.
  template <typename T> JsonWriter &field(std::string_view Name, T &&V) {
    key(Name);
    return value(std::forward<T>(V));
  }

  /// True once every scope has been closed.
  bool complete() const { return Stack.empty() && WroteTopLevel; }

private:
  enum class Scope : uint8_t { Object, Array };

  RawOstream &OS;
  std::vector<Scope> Stack;
  std::vector<bool> FirstInScope;
  bool PendingKey = false;
  bool WroteTopLevel = false;

  void beforeValue();
  void writeEscaped(std::string_view Str);
};

} // namespace spin

#endif // SUPERPIN_SUPPORT_JSON_H
