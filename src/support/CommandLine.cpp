//===- support/CommandLine.cpp - Pin-style option parsing -----------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/CommandLine.h"

#include "support/RawOstream.h"
#include "support/StringExtras.h"

#include <algorithm>
#include <cstdio>

using namespace spin;

OptionBase::~OptionBase() = default;

template <typename T>
Opt<T>::Opt(OptionRegistry &Registry, std::string_view Name, T Default,
            std::string_view Help)
    : OptionBase(Name, Help), Value(Default), Default(Default) {
  Registry.registerOption(this);
}

template <typename T> bool Opt<T>::parseValue(std::string_view Text) {
  if constexpr (std::is_same_v<T, bool>) {
    if (Text == "1" || Text == "true") {
      Value = true;
    } else if (Text == "0" || Text == "false") {
      Value = false;
    } else {
      return false;
    }
  } else if constexpr (std::is_same_v<T, uint64_t>) {
    std::optional<uint64_t> Parsed = parseUint(Text);
    if (!Parsed)
      return false;
    Value = *Parsed;
  } else if constexpr (std::is_same_v<T, int64_t>) {
    std::optional<int64_t> Parsed = parseInt(Text);
    if (!Parsed)
      return false;
    Value = *Parsed;
  } else if constexpr (std::is_same_v<T, double>) {
    char *End = nullptr;
    std::string Copy(Text);
    double Parsed = std::strtod(Copy.c_str(), &End);
    if (End != Copy.c_str() + Copy.size() || Copy.empty())
      return false;
    Value = Parsed;
  } else {
    Value = T(Text);
  }
  Occurred = true;
  return true;
}

template <typename T> std::string Opt<T>::defaultString() const {
  if constexpr (std::is_same_v<T, bool>)
    return Default ? "1" : "0";
  else if constexpr (std::is_same_v<T, uint64_t>)
    return std::to_string(Default);
  else if constexpr (std::is_same_v<T, int64_t>)
    return std::to_string(Default);
  else if constexpr (std::is_same_v<T, double>)
    return formatFixed(Default, 3);
  else
    return Default;
}

template class spin::Opt<bool>;
template class spin::Opt<uint64_t>;
template class spin::Opt<int64_t>;
template class spin::Opt<double>;
template class spin::Opt<std::string>;

void OptionRegistry::registerOption(OptionBase *Option) {
  assert(!lookup(Option->name()) && "duplicate option name");
  Options.push_back(Option);
}

OptionBase *OptionRegistry::lookup(std::string_view Name) const {
  for (OptionBase *Option : Options)
    if (Option->name() == Name)
      return Option;
  return nullptr;
}

bool OptionRegistry::parse(const std::vector<std::string> &Args,
                           std::string &ErrorMsg) {
  AppArgs.clear();
  size_t I = 0;
  while (I < Args.size()) {
    const std::string &Token = Args[I];
    if (Token == "--") {
      AppArgs.assign(Args.begin() + static_cast<long>(I) + 1, Args.end());
      return true;
    }
    if (Token.empty() || Token[0] != '-') {
      ErrorMsg = "expected option, got '" + Token + "'";
      return false;
    }
    std::string_view Name = std::string_view(Token).substr(1);
    std::string_view Inline;
    bool HasInline = false;
    if (size_t Eq = Name.find('='); Eq != std::string_view::npos) {
      Inline = Name.substr(Eq + 1);
      Name = Name.substr(0, Eq);
      HasInline = true;
    }
    OptionBase *Option = lookup(Name);
    if (!Option) {
      ErrorMsg = "unknown option '-" + std::string(Name) + "'";
      return false;
    }
    std::string_view ValueText;
    if (HasInline) {
      ValueText = Inline;
      ++I;
    } else {
      if (I + 1 >= Args.size()) {
        ErrorMsg = "option '-" + std::string(Name) + "' requires a value";
        return false;
      }
      ValueText = Args[I + 1];
      I += 2;
    }
    if (!Option->parseValue(ValueText)) {
      ErrorMsg = "invalid value '" + std::string(ValueText) +
                 "' for option '-" + std::string(Name) + "'";
      return false;
    }
  }
  return true;
}

bool OptionRegistry::parse(int Argc, const char *const *Argv,
                           std::string &ErrorMsg) {
  std::vector<std::string> Args;
  for (int I = 1; I < Argc; ++I)
    Args.emplace_back(Argv[I]);
  return parse(Args, ErrorMsg);
}

void OptionRegistry::printHelp(RawOstream &OS) const {
  std::vector<OptionBase *> Sorted = Options;
  std::sort(Sorted.begin(), Sorted.end(),
            [](const OptionBase *A, const OptionBase *B) {
              return A->name() < B->name();
            });
  for (const OptionBase *Option : Sorted) {
    OS << "  -";
    OS.writePadded(Option->name(), 14);
    OS << Option->help() << " (default: " << Option->defaultString() << ")\n";
  }
}
