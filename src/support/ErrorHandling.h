//===- support/ErrorHandling.h - Fatal error reporting ----------*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fatal-error reporting and an llvm_unreachable-style marker. Following the
/// LLVM convention the library never throws; programmatic errors abort with a
/// diagnostic and recoverable errors are reported through return values.
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_SUPPORT_ERRORHANDLING_H
#define SUPERPIN_SUPPORT_ERRORHANDLING_H

#include <string_view>

namespace spin {

/// Prints \p Msg to stderr and aborts. Used for unrecoverable invariant
/// violations detected at runtime (kept in release builds, unlike assert).
[[noreturn]] void reportFatalError(std::string_view Msg);

/// Internal helper behind \c sp_unreachable.
[[noreturn]] void spUnreachableInternal(const char *Msg, const char *File,
                                        unsigned Line);

} // namespace spin

/// Marks a point in code that must never be reached. Prints the message,
/// file, and line, then aborts.
#define sp_unreachable(MSG)                                                    \
  ::spin::spUnreachableInternal(MSG, __FILE__, __LINE__)

#endif // SUPERPIN_SUPPORT_ERRORHANDLING_H
