//===- support/MathExtras.h - Integer math helpers --------------*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Integer arithmetic helpers used by the memory subsystem and cost model.
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_SUPPORT_MATHEXTRAS_H
#define SUPERPIN_SUPPORT_MATHEXTRAS_H

#include <cassert>
#include <cstdint>

namespace spin {

/// \returns true if \p Value is a power of two (0 is not).
constexpr bool isPowerOf2(uint64_t Value) {
  return Value != 0 && (Value & (Value - 1)) == 0;
}

/// Rounds \p Value up to the next multiple of \p Align (a power of two).
constexpr uint64_t alignTo(uint64_t Value, uint64_t Align) {
  return (Value + Align - 1) & ~(Align - 1);
}

/// Rounds \p Value down to a multiple of \p Align (a power of two).
constexpr uint64_t alignDown(uint64_t Value, uint64_t Align) {
  return Value & ~(Align - 1);
}

/// Ceiling division for unsigned integers.
constexpr uint64_t divideCeil(uint64_t Numerator, uint64_t Denominator) {
  return (Numerator + Denominator - 1) / Denominator;
}

/// log2 of a power of two.
constexpr unsigned log2Exact(uint64_t Value) {
  unsigned Result = 0;
  while (Value > 1) {
    Value >>= 1;
    ++Result;
  }
  return Result;
}

/// Saturating subtraction: max(A - B, 0) for unsigned operands.
constexpr uint64_t saturatingSub(uint64_t A, uint64_t B) {
  return A > B ? A - B : 0;
}

} // namespace spin

#endif // SUPERPIN_SUPPORT_MATHEXTRAS_H
