//===- superpin/SharedAreas.h - Cross-slice shared memory -------*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SP_CreateSharedArea runtime (paper Section 5). Each slice's tool
/// instance creates areas in the same order, so areas are identified by
/// creation index. Manual-merge areas (AutoMerge::None) hand every slice
/// the one true shared buffer — tools touch it only inside onSliceEnd,
/// which the runtime serializes in slice order. Auto-merge areas hand each
/// slice a private shadow initialized to the mode's identity; the runtime
/// folds shadows into the shared buffer at merge time.
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_SUPERPIN_SHAREDAREAS_H
#define SUPERPIN_SUPERPIN_SHAREDAREAS_H

#include "pin/Tool.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace spin::sp {

/// Owns the canonical shared buffers, keyed by creation index.
class SharedAreaRegistry {
public:
  /// Returns the canonical buffer for area \p Index, creating it from
  /// \p InitData (the first creator's local data) if new. Asserts that
  /// size and mode agree across creators.
  void *canonical(uint32_t Index, const void *InitData, size_t Size,
                  pin::AutoMerge Mode);

  /// Folds a slice-local \p Shadow into area \p Index per its merge mode.
  void fold(uint32_t Index, const void *Shadow);

  /// Total bytes across all areas (merge cost model input).
  uint64_t totalBytes() const { return TotalBytes; }

  size_t numAreas() const { return Areas.size(); }

  /// Byte-copies of every area's canonical buffer in creation order (the
  /// capture log snapshots these after each merge).
  std::vector<std::vector<uint8_t>> snapshot() const {
    std::vector<std::vector<uint8_t>> Out;
    Out.reserve(Areas.size());
    for (const Area &A : Areas)
      Out.push_back(A.Data);
    return Out;
  }

private:
  struct Area {
    std::vector<uint8_t> Data;
    pin::AutoMerge Mode = pin::AutoMerge::None;
  };
  std::vector<Area> Areas;
  uint64_t TotalBytes = 0;
};

/// The SpServices implementation handed to each slice's tool instance.
class SliceServices : public pin::SpServices {
public:
  /// \p FiniMode builds the services for the post-merge Fini tool
  /// instance: createSharedArea then always returns the canonical buffer
  /// (so onFini reads merged totals), never a shadow.
  SliceServices(SharedAreaRegistry &Registry, uint32_t SliceNum,
                bool FiniMode = false)
      : Registry(&Registry), SliceNum(SliceNum), FiniMode(FiniMode) {}

  bool isSuperPin() const override { return true; }
  uint32_t sliceNumber() const override { return SliceNum; }

  void *createSharedArea(void *LocalData, size_t Size,
                         pin::AutoMerge Mode) override;

  /// Binds the end-slice request sink (the slice task installs itself).
  void setEndSliceHook(std::function<void()> Hook) {
    EndSliceHook = std::move(Hook);
  }
  void endSlice() override {
    if (EndSliceHook)
      EndSliceHook();
  }

  /// Folds all auto-merge shadows into the registry. Called by the slice
  /// task during its merge turn (slice order is enforced by the caller).
  void mergeShadows();

private:
  struct Shadow {
    uint32_t Index;
    std::vector<uint8_t> Data;
  };

  SharedAreaRegistry *Registry;
  uint32_t SliceNum;
  bool FiniMode;
  uint32_t NextIndex = 0;
  std::vector<std::unique_ptr<Shadow>> Shadows;
  std::function<void()> EndSliceHook;
};

} // namespace spin::sp

#endif // SUPERPIN_SUPERPIN_SHAREDAREAS_H
