//===- superpin/Reporting.cpp - Run-report rendering ----------------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "superpin/Reporting.h"

#include "obs/Metrics.h"
#include "prof/Profile.h"
#include "support/RawOstream.h"
#include "support/Statistic.h"
#include "support/StringExtras.h"
#include "support/Table.h"

#include <algorithm>
#include <string>

using namespace spin;
using namespace spin::os;
using namespace spin::sp;

void spin::sp::printReport(const SpRunReport &Report, const CostModel &Model,
                           RawOstream &OS) {
  auto Sec = [&](Ticks T) { return formatFixed(Model.ticksToSeconds(T), 3); };
  OS << "=== SuperPin run report ===\n";
  OS << "wall time            " << Sec(Report.WallTicks) << "s\n";
  OS << "  native             " << Sec(Report.NativeTicks) << "s\n";
  OS << "  fork & others      " << Sec(Report.ForkOthersTicks) << "s\n";
  OS << "  sleep (stalls)     " << Sec(Report.SleepTicks) << "s\n";
  OS << "  pipeline drain     " << Sec(Report.PipelineTicks) << "s\n";
  OS << "master: " << Report.MasterInsts << " instructions, "
     << Report.MasterSyscalls << " syscalls, exit code " << Report.ExitCode
     << "\n";
  OS << "slices: " << Report.NumSlices << " total ("
     << Report.TimeoutSlices << " timeout, " << Report.SyscallSlices
     << " syscall-boundary), " << Report.SliceInsts
     << " instrumented instructions, partition "
     << (Report.PartitionOk ? "exact" : "BROKEN") << "\n";
  OS << "syscalls: " << Report.RecordedSyscalls << " recorded, "
     << Report.PlaybackSyscalls << " played back, "
     << Report.DuplicatedSyscalls << " duplicated, "
     << Report.ForcedSliceSyscalls << " forced slices\n";
  // Only with -spdefer activity, so reports from runs without the replay
  // subsystem (tab_overheads et al.) are byte-identical to before.
  if (Report.SpilledSlices || Report.DrainedSlices)
    OS << "deferred: " << Report.SpilledSlices << " spilled, "
       << Report.DrainedSlices << " drained, " << Report.ReplayParityOk
       << " parity ok\n";
  if (Report.StaticSyscallSites)
    OS << "analysis: " << Report.StaticSyscallSites
       << " syscall sites mapped, " << Report.PredictedSyscallSites
       << " predicted / " << Report.TrapClassifiedSyscalls
       << " trap-classified boundaries, " << Report.TracesSeeded
       << " traces seeded (" << Sec(Report.SeedTicks) << "s)\n";
  // Only on fault-plan activity (-spfault), so fault-off reports stay
  // byte-identical to before src/fault existed.
  if (Report.FaultsInjected || Report.RetriedSlices ||
      Report.QuarantinedSlices || Report.RecoveredSlices ||
      Report.LostSlices || Report.WatchdogKills ||
      Report.PlaybackDivergences || Report.BreakerTripped) {
    OS << "faults: " << Report.FaultsInjected << " injected, "
       << Report.WatchdogKills << " watchdog kills, "
       << Report.PlaybackDivergences << " playback divergences, "
       << Report.WastedSliceInsts << " wasted instructions\n";
    OS << "recovery: " << Report.RetriedSlices << " retries, "
       << Report.QuarantinedSlices << " quarantined, "
       << Report.RecoveredSlices << " recovered, " << Report.LostSlices
       << " lost, " << Report.ReexecutedSyscalls
       << " syscalls re-executed, coverage " << Report.CoverageInsts << "/"
       << Report.MasterInsts << " insts, breaker "
       << (Report.BreakerTripped ? "TRIPPED" : "armed") << "\n";
  }
  // Only with -spredux activity, so redux-off reports stay byte-identical
  // to before the suppression subsystem existed.
  if (Report.CallsSuppressed || Report.TracesRecompiled)
    OS << "redux: " << Report.CallsSuppressed << " calls suppressed, "
       << Report.ReduxFlushes << " flushes, " << Report.TracesRecompiled
       << " traces recompiled (" << Sec(Report.RecompileTicks) << "s), saved "
       << Sec(Report.ReduxSavedTicks) << "s\n";
  OS << "signature: " << Report.Signature.QuickChecks << " quick / "
     << Report.Signature.FullChecks << " full / "
     << Report.Signature.StackChecks << " stack / "
     << Report.Signature.Matches << " matches\n";
  OS << "engine: " << Report.TracesCompiled << " traces compiled ("
     << Sec(Report.CompileTicks) << "s), COW " << Report.MasterCowCopies
     << " master / " << Report.SliceCowCopies << " slice, peak parallelism "
     << Report.PeakParallelism << "\n";
  // Only on -spmp runs (wall-clock fields are nondeterministic), so
  // serial reports stay byte-identical to before the host subsystem.
  printHostStats(Report, OS);
}

void spin::sp::printHostStats(const SpRunReport &Report, RawOstream &OS) {
  if (!Report.HostWorkers)
    return;
  OS << "host: " << Report.HostWorkers << " workers, "
     << Report.HostDispatchedSlices << " bodies dispatched, "
     << Report.HostStreamEvents << " stream events, "
     << formatFixed(Report.HostBodySeconds, 3) << "s body wall time\n";
  // Containment line only when something actually went wrong (or was
  // injected), so healthy -spmp reports are unchanged.
  if (Report.HostFaultsInjected || Report.HostWorkerExceptions ||
      Report.HostWatchdogKills || Report.HostCancelledBodies ||
      Report.HostFallbackSlices || Report.HostDegraded)
    OS << "host faults: " << Report.HostFaultsInjected << " injected, "
       << Report.HostWorkerExceptions << " worker exceptions, "
       << Report.HostWatchdogKills << " watchdog kills, "
       << Report.HostCancelledBodies << " bodies cancelled, "
       << Report.HostFallbackSlices << " slices fell back to sim, pool "
       << (Report.HostDegraded ? "DEGRADED" : "healthy") << "\n";
  bool HaveAttr = !Report.HostAttr.Workers.empty();
  Table T;
  T.addColumn("worker", Table::Align::Left);
  T.addColumn("bodies");
  T.addColumn("body(s)");
  if (HaveAttr) {
    T.addColumn("body%");
    T.addColumn("dispatch%");
    T.addColumn("merge%");
    T.addColumn("idle%");
    T.addColumn("retire%");
  }
  for (const SpRunReport::HostWorkerStats &WS : Report.HostWorkerTable) {
    T.startRow();
    T.cell("worker-" + std::to_string(WS.Worker));
    T.cell(WS.Bodies);
    T.cell(WS.BodySeconds, 3);
    if (HaveAttr && WS.Worker < Report.HostAttr.Workers.size()) {
      const obs::HostLaneAttribution &L = Report.HostAttr.Workers[WS.Worker];
      double Life =
          L.LifetimeNs ? static_cast<double>(L.LifetimeNs) : 1.0;
      T.cellPercent(static_cast<double>(L.BodyNs) / Life);
      T.cellPercent(static_cast<double>(L.DispatchWaitNs) / Life);
      T.cellPercent(static_cast<double>(L.MergeWaitNs) / Life);
      T.cellPercent(static_cast<double>(L.IdleNs) / Life);
      T.cellPercent(static_cast<double>(L.RetireNs) / Life);
    }
  }
  T.print(OS);
  if (HaveAttr)
    OS << "pool: lifetime "
       << formatFixed(static_cast<double>(Report.HostAttr.PoolLifetimeNs) /
                          1e9,
                      3)
       << "s, dominant stall "
       << obs::hostSpanName(Report.HostAttr.dominantStall()) << "\n";
}

void spin::sp::exportStatistics(const SpRunReport &Report,
                                StatisticRegistry &Stats) {
  Stats.counter("superpin.wall.ticks") = Report.WallTicks;
  Stats.counter("superpin.wall.native") = Report.NativeTicks;
  Stats.counter("superpin.wall.forkothers") = Report.ForkOthersTicks;
  Stats.counter("superpin.wall.sleep") = Report.SleepTicks;
  Stats.counter("superpin.wall.pipeline") = Report.PipelineTicks;
  Stats.counter("superpin.master.insts") = Report.MasterInsts;
  Stats.counter("superpin.master.syscalls") = Report.MasterSyscalls;
  Stats.counter("superpin.slices.total") = Report.NumSlices;
  Stats.counter("superpin.slices.timeout") = Report.TimeoutSlices;
  Stats.counter("superpin.slices.syscall") = Report.SyscallSlices;
  Stats.counter("superpin.slices.insts") = Report.SliceInsts;
  Stats.counter("superpin.sys.recorded") = Report.RecordedSyscalls;
  Stats.counter("superpin.sys.playback") = Report.PlaybackSyscalls;
  Stats.counter("superpin.sys.duplicated") = Report.DuplicatedSyscalls;
  Stats.counter("superpin.sys.forced") = Report.ForcedSliceSyscalls;
  Stats.counter("superpin.slice.spilled") = Report.SpilledSlices;
  Stats.counter("superpin.slice.drained") = Report.DrainedSlices;
  Stats.counter("superpin.replay.parityok") = Report.ReplayParityOk;
  Stats.counter("superpin.sig.quick") = Report.Signature.QuickChecks;
  Stats.counter("superpin.sig.full") = Report.Signature.FullChecks;
  Stats.counter("superpin.sig.stack") = Report.Signature.StackChecks;
  Stats.counter("superpin.sig.matches") = Report.Signature.Matches;
  Stats.counter("superpin.jit.traces") = Report.TracesCompiled;
  Stats.counter("superpin.jit.ticks") = Report.CompileTicks;
  Stats.counter("superpin.jit.seeded") = Report.TracesSeeded;
  Stats.counter("superpin.jit.seedticks") = Report.SeedTicks;
  Stats.counter("superpin.redux.suppressed") = Report.CallsSuppressed;
  Stats.counter("superpin.redux.flushes") = Report.ReduxFlushes;
  Stats.counter("superpin.redux.recompiled") = Report.TracesRecompiled;
  Stats.counter("superpin.redux.recompileticks") = Report.RecompileTicks;
  Stats.counter("superpin.redux.savedticks") = Report.ReduxSavedTicks;
  Stats.counter("superpin.static.sites") = Report.StaticSyscallSites;
  Stats.counter("superpin.sys.predicted") = Report.PredictedSyscallSites;
  Stats.counter("superpin.sys.trapclassified") = Report.TrapClassifiedSyscalls;
  Stats.counter("superpin.cow.master") = Report.MasterCowCopies;
  Stats.counter("superpin.cow.slices") = Report.SliceCowCopies;
  Stats.counter("superpin.fault.injected") = Report.FaultsInjected;
  Stats.counter("superpin.fault.watchdogkills") = Report.WatchdogKills;
  Stats.counter("superpin.fault.divergences") = Report.PlaybackDivergences;
  Stats.counter("superpin.fault.reexecsys") = Report.ReexecutedSyscalls;
  Stats.counter("superpin.fault.retried") = Report.RetriedSlices;
  Stats.counter("superpin.fault.recovered") = Report.RecoveredSlices;
  Stats.counter("superpin.fault.quarantined") = Report.QuarantinedSlices;
  Stats.counter("superpin.fault.lost") = Report.LostSlices;
  Stats.counter("superpin.fault.wastedinsts") = Report.WastedSliceInsts;
  Stats.counter("superpin.fault.coverageinsts") = Report.CoverageInsts;
  Stats.counter("superpin.fault.breakertripped") =
      Report.BreakerTripped ? 1 : 0;
  Stats.histogram("superpin.hist.slice.insts") = Report.SliceLenHist;
  Stats.histogram("superpin.hist.slice.sysrecs") = Report.SliceSysRecsHist;
  Stats.histogram("superpin.hist.slice.waitticks") = Report.SliceWaitHist;
  Stats.histogram("superpin.hist.sig.checkdist") = Report.SigCheckDistHist;
  Stats.histogram("superpin.hist.slice.attempts") = Report.SliceAttemptsHist;
  // Trace-ring truncation telemetry, gated on attachment so runs without
  // recorders keep the golden default name set.
  if (Report.TraceAttached)
    Stats.counter("obs.trace.dropped") = Report.TraceDropped;
  if (Report.HostTraceAttached)
    Stats.counter("host.trace.droppedspans") = Report.HostTraceDropped;
  // Host wall-clock gauges exist only on -spmp runs (and the attribution
  // set only when a HostTraceRecorder was attached); the gate keeps the
  // default export list — pinned by the golden-names test — unchanged.
  if (Report.HostWorkers) {
    Stats.counter("host.workers") = Report.HostWorkers;
    Stats.counter("host.dispatched.slices") = Report.HostDispatchedSlices;
    Stats.counter("host.stream.events") = Report.HostStreamEvents;
    Stats.counter("host.arena.peakbytes") = Report.HostArenaBytes;
    Stats.counter("host.body.us") =
        static_cast<uint64_t>(Report.HostBodySeconds * 1e6);
    Stats.counter("host.fault.injected") = Report.HostFaultsInjected;
    Stats.counter("host.fault.exceptions") = Report.HostWorkerExceptions;
    Stats.counter("host.fault.watchdogkills") = Report.HostWatchdogKills;
    Stats.counter("host.fault.cancelled") = Report.HostCancelledBodies;
    Stats.counter("host.fault.degraded") = Report.HostDegraded ? 1 : 0;
    Stats.counter("superpin.host.fallback") = Report.HostFallbackSlices;
    if (!Report.HostAttr.Workers.empty()) {
      Stats.counter("host.pool.lifetime.ns") = Report.HostAttr.PoolLifetimeNs;
      Stats.counter("host.attr.body.ns") =
          Report.HostAttr.totalNs(obs::HostSpanKind::Body);
      Stats.counter("host.attr.dispatchwait.ns") =
          Report.HostAttr.totalNs(obs::HostSpanKind::DispatchWait);
      Stats.counter("host.attr.mergewait.ns") =
          Report.HostAttr.totalNs(obs::HostSpanKind::MergeWait);
      Stats.counter("host.attr.idle.ns") =
          Report.HostAttr.totalNs(obs::HostSpanKind::Idle);
      Stats.counter("host.attr.retire.ns") =
          Report.HostAttr.totalNs(obs::HostSpanKind::Retire);
      Stats.histogram("superpin.hist.host.utilization") =
          Report.HostUtilizationHist;
    }
  }
}

void spin::sp::printTimeline(const SpRunReport &Report,
                             const CostModel &Model, RawOstream &OS,
                             unsigned Columns, unsigned MaxSlices) {
  if (Columns < 8)
    return;
  // A zero-length run (the guest exits before any tick elapses) still
  // renders: every phase lands in column 0 instead of dividing by zero.
  Ticks Wall = Report.WallTicks ? Report.WallTicks : 1;
  double TicksPerCol = double(Wall) / double(Columns);
  auto Col = [&](Ticks T) {
    unsigned C = static_cast<unsigned>(double(T) / TicksPerCol);
    return C < Columns ? C : Columns - 1;
  };

  OS << "timeline ('.' sleep, '#' run, '|' merge; full width = "
     << formatFixed(Model.ticksToSeconds(Report.WallTicks), 2) << "s)\n";
  // Master lane: runs from 0 to MasterExit.
  std::string Lane(Columns, ' ');
  for (unsigned C = 0; C <= Col(Report.MasterExitTicks); ++C)
    Lane[C] = '#';
  OS << "  master   ";
  OS << Lane << '\n';

  unsigned Shown = 0;
  for (const SliceInfo &S : Report.Slices) {
    if (Shown++ >= MaxSlices) {
      OS << "  ... (" << (Report.Slices.size() - MaxSlices)
         << " more slices)\n";
      break;
    }
    std::string Row(Columns, ' ');
    unsigned CSpawn = Col(S.SpawnTime);
    unsigned CReady = Col(S.ReadyTime);
    unsigned CEnd = Col(S.EndTime);
    unsigned CMerge = Col(S.MergeTime);
    for (unsigned C = CSpawn; C <= CReady; ++C)
      Row[C] = '.';
    for (unsigned C = CReady; C <= CEnd; ++C)
      Row[C] = '#';
    Row[CMerge] = '|';
    OS << "  S" << (S.Num + 1);
    OS.indent(S.Num + 1 < 10 ? 7 : (S.Num + 1 < 100 ? 6 : 5));
    OS << Row << '\n';
  }
}

obs::DoctorInput spin::sp::doctorInput(const SpRunReport &Report,
                                       const SpOptions &Opts) {
  obs::DoctorInput In;
  In.WallTicks = Report.WallTicks;
  In.MasterExitTicks = Report.MasterExitTicks;
  In.NativeTicks = Report.NativeTicks;
  In.ForkOthersTicks = Report.ForkOthersTicks;
  In.SleepTicks = Report.SleepTicks;
  In.MaxSlices = Opts.MaxSlices;
  In.HostWorkers = Report.HostWorkers;
  if (Opts.Profile) {
    for (unsigned I = 0; I < prof::NumCauses; ++I)
      In.CauseNames.push_back(
          prof::causeName(static_cast<prof::Cause>(I)));
    const prof::SliceProfile &M = Opts.Profile->masterProfile();
    In.MasterNativeCauseTicks = M.nativeTicks();
    for (unsigned I = 0; I < prof::NumCauses; ++I)
      In.MasterCauseTicks.push_back(
          M.cause(static_cast<prof::Cause>(I)));
  }
  In.Slices.reserve(Report.Slices.size());
  for (const SliceInfo &S : Report.Slices) {
    obs::DoctorSliceInput D;
    D.Num = S.Num;
    D.SpawnTime = S.SpawnTime;
    D.ReadyTime = S.ReadyTime;
    D.EndTime = S.EndTime;
    D.MergeTime = S.MergeTime;
    D.Attempts = S.Attempts;
    if (Opts.Profile)
      if (const prof::SliceProfile *P = Opts.Profile->findSlice(S.Num))
        for (unsigned I = 0; I < prof::NumCauses; ++I)
          D.CauseTicks.push_back(P->cause(static_cast<prof::Cause>(I)));
    In.Slices.push_back(std::move(D));
  }
  return In;
}

void spin::sp::writeRunMetricsJson(const SpRunReport &Report,
                                   const CostModel &Model, RawOstream &OS) {
  StatisticRegistry Stats;
  exportStatistics(Report, Stats);
  std::vector<obs::PhaseSample> Phases;
  auto Phase = [&](const char *Name, Ticks T) {
    Phases.push_back({Name, T, Model.ticksToSeconds(T)});
  };
  Phase("wall", Report.WallTicks);
  Phase("native", Report.NativeTicks);
  Phase("forkothers", Report.ForkOthersTicks);
  Phase("sleep", Report.SleepTicks);
  Phase("pipeline", Report.PipelineTicks);
  obs::writeMetricsJson(Stats, Phases, OS);
}
