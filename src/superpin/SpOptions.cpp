//===- superpin/SpOptions.cpp - Option validation -------------------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "superpin/SpOptions.h"

#include "fault/FaultPlan.h"

using namespace spin;
using namespace spin::sp;

std::string SpOptions::validate() const {
  // The serial path (-sp 0) ignores the slice knobs, but a nonsensical
  // value is still a user error worth flagging before a long run.
  if (MaxSlices == 0)
    return "-spslices must be at least 1 (0 running slices can never make "
           "progress; use -sp 0 for serial Pin)";
  // Host-parallel execution (-spmp). HostWorkersAuto is resolved by the
  // engine against hardware_concurrency(); any other huge value is a
  // typo, not a machine.
  if (HostWorkers != HostWorkersAuto && HostWorkers > 1024)
    return "-spmp worker count is implausibly large (max 1024; use "
           "-spmp auto for the host core count)";
  if (HostWorkers != 0 && SharedCodeCache)
    return "-spmp cannot be combined with -spsharedcc (the shared code "
           "cache is not thread-safe; slices would race on trace "
           "publication)";
  if (HostTrace && HostWorkers == 0)
    return "-sphosttrace/-sphoststats require -spmp (there is no worker "
           "pool to observe on the serial path)";
  if (SliceMs == 0)
    return "-spmsec must be at least 1 (a zero-length timeslice would "
           "spawn unbounded zero-work slices)";
  // MaxSysRecs feeds per-slice record vectors sized/stored as 32-bit
  // counts in the SPRL capture format; cap it well below that.
  if (MaxSysRecs > (1ull << 32))
    return "-spsysrecs exceeds the 2^32 record-count limit of the capture "
           "format";
  if (PhysCpus == 0)
    return "machine shape requires at least 1 physical CPU";
  if (VirtCpus < PhysCpus)
    return "virtual CPUs (scheduling contexts) must be >= physical CPUs";
  if (Cpi <= 0.0)
    return "CPI must be positive";
  if (AdaptiveSlices && MinSliceMs == 0)
    return "adaptive timeslices require a nonzero minimum slice length";
  if (BreakerFailRate < 0.0 || BreakerFailRate > 1.0)
    return "circuit-breaker failure rate must be within [0, 1]";
  if (Fault && Fault->enabled() && Fault->rate() > 1.0)
    return "-spfault rate must be within [0, 1]";
  // -sphostfault without -spmp is deliberately legal: host faults only
  // hit dispatched bodies, so the serial run of the same flags never
  // fires them — it is the byte-identity baseline the containment tests
  // compare against.
  if (Fault && Fault->hostRate() > 1.0)
    return "-sphostfault rate must be within [0, 1]";
  if (HostWatchdogMs != 0 && HostWorkers == 0)
    return "-sphostwatchdog requires -spmp (there is no host execution to "
           "watch on the serial path)";
  if (HostWatchdogMs == HostWatchdogOff && Fault && Fault->hostEnabled())
    return "disabling the host watchdog with host faults armed would "
           "deadlock on the first injected hang or truncation";
  if (HostBreakerLimit == 0)
    return "host circuit-breaker limit must be at least 1 (0 would degrade "
           "to serial before the first body ran; use -spmp 0 instead)";
  return {};
}
