//===- superpin/SharedAreas.cpp - Cross-slice shared memory ---------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "superpin/SharedAreas.h"

#include "support/ErrorHandling.h"

#include <cassert>
#include <cstring>

using namespace spin;
using namespace spin::pin;
using namespace spin::sp;

void *SharedAreaRegistry::canonical(uint32_t Index, const void *InitData,
                                    size_t Size, AutoMerge Mode) {
  if (Index == Areas.size()) {
    Area A;
    A.Data.resize(Size);
    std::memcpy(A.Data.data(), InitData, Size);
    A.Mode = Mode;
    TotalBytes += Size;
    Areas.push_back(std::move(A));
  }
  if (Index >= Areas.size())
    reportFatalError("shared areas created out of order across slices");
  Area &A = Areas[Index];
  if (A.Data.size() != Size || A.Mode != Mode)
    reportFatalError("shared area shape mismatch across slices (tools must "
                     "create identical areas in identical order)");
  return A.Data.data();
}

void SharedAreaRegistry::fold(uint32_t Index, const void *Shadow) {
  assert(Index < Areas.size() && "unknown shared area");
  Area &A = Areas[Index];
  assert(A.Mode != AutoMerge::None && "folding a manual-merge area");
  assert(A.Data.size() % 8 == 0 && "auto-merge areas must be uint64[]");
  size_t Words = A.Data.size() / 8;
  uint64_t *Dst = reinterpret_cast<uint64_t *>(A.Data.data());
  const uint64_t *Src = static_cast<const uint64_t *>(Shadow);
  for (size_t I = 0; I != Words; ++I) {
    switch (A.Mode) {
    case AutoMerge::Add64:
      Dst[I] += Src[I];
      break;
    case AutoMerge::Max64:
      if (Src[I] > Dst[I])
        Dst[I] = Src[I];
      break;
    case AutoMerge::Min64:
      if (Src[I] < Dst[I])
        Dst[I] = Src[I];
      break;
    case AutoMerge::None:
      break;
    }
  }
}

void *SliceServices::createSharedArea(void *LocalData, size_t Size,
                                      AutoMerge Mode) {
  uint32_t Index = NextIndex++;
  void *Canonical = Registry->canonical(Index, LocalData, Size, Mode);
  if (Mode == AutoMerge::None || FiniMode)
    return Canonical;
  if (Size % 8 != 0)
    reportFatalError("auto-merge shared areas must be multiples of 8 bytes");
  // Private shadow initialized to the mode's identity element.
  auto S = std::make_unique<Shadow>();
  S->Index = Index;
  uint64_t Identity = Mode == AutoMerge::Min64 ? ~uint64_t(0) : 0;
  S->Data.resize(Size);
  uint64_t *Words = reinterpret_cast<uint64_t *>(S->Data.data());
  for (size_t I = 0; I != Size / 8; ++I)
    Words[I] = Identity;
  void *Ptr = S->Data.data();
  Shadows.push_back(std::move(S));
  return Ptr;
}

void SliceServices::mergeShadows() {
  for (const std::unique_ptr<Shadow> &S : Shadows)
    Registry->fold(S->Index, S->Data.data());
}
