//===- superpin/Engine.cpp - The SuperPin runtime -------------------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Structure: runSuperPin builds a Coordinator (shared run state), a
// MasterTask, and — as the master executes — SliceTasks, all scheduled on
// the discrete-time multiprocessor.
//
// The MasterTask folds the paper's control and timer processes into the
// master's own step loop (their decisions happen at master syscall stops
// and timeouts; their costs are charged to the master), which is
// semantically equivalent to separate ptrace-attached processes and keeps
// the simulation deterministic (see DESIGN.md §5).
//
// Fault injection & recovery (src/fault): when SpOptions::Fault carries an
// enabled plan, every slice takes a COW checkpoint of its start state and
// the engine runs a recovery ladder around each window:
//
//   detect (watchdog / stall / crash / playback divergence)
//     -> retry: re-fork from the checkpoint, up to SpOptions::RetryBudget
//     -> quarantine: park the window for a post-exit relaxed re-execution
//        (icount-bounded, no signature reliance, lenient playback that
//        re-executes unverifiable records)
//     -> account: a window that still cannot cover its instructions is
//        reported in LostSlices with its partial CoverageInsts.
//
// An engine-level circuit breaker watches the window failure rate; once it
// trips, new windows stop running concurrently and are routed straight to
// the post-exit drain (serial-Pin-like degradation). With no plan
// installed, none of this machinery runs and every run is tick- and
// byte-identical to an engine without it.
//
//===----------------------------------------------------------------------===//

#include "superpin/Engine.h"

#include "analysis/Passes.h"
#include "analysis/Redundancy.h"
#include "fault/FaultPlan.h"
#include "host/ChargeStream.h"
#include "host/CompletionQueue.h"
#include "host/WorkerPool.h"
#include "obs/FlightRecorder.h"
#include "obs/Metrics.h"
#include "obs/TraceRecorder.h"
#include "os/Kernel.h"
#include "os/Process.h"
#include "os/Scheduler.h"
#include "pin/PinVm.h"
#include "pin/Runner.h"
#include "prof/Profile.h"
#include "superpin/Capture.h"
#include "superpin/Reporting.h"
#include "superpin/SharedAreas.h"
#include "support/ErrorHandling.h"
#include "support/RawOstream.h"
#include "support/Statistic.h"
#include "vm/Interpreter.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <cmath>
#include <memory>
#include <optional>
#include <stdexcept>
#include <thread>

using namespace spin;
using namespace spin::os;
using namespace spin::pin;
using namespace spin::sp;
using namespace spin::vm;

namespace {

/// Pid for the containment checkpoint fork on pool runs without a fault
/// plan. The checkpoint never executes under this pid (a containment
/// re-fork reuses the dead attempt's own pid), and it must not consume
/// Coordinator::NextPid: pids are guest-visible through getpid, so the
/// draw sequence has to match the -spmp 0 run exactly.
constexpr uint64_t ContainmentShadowPid = ~uint64_t(0);

/// One syscall the master performed inside a slice's window: either a
/// recorded-effects playback entry or a "re-execute it yourself" marker
/// for duplicable calls.
struct WindowSyscall {
  bool IsPlayback;
  SyscallEffects Effects; ///< Number always valid; full effects if playback
  /// FNV-1a digest of Effects taken at record time (fault runs only);
  /// playback verifies the record against it before applying it.
  uint64_t Check = 0;
};

/// Everything a slice needs to replay its window and find its end.
struct SliceWindow {
  std::vector<WindowSyscall> Sys;
  enum class End : uint8_t { Signature, SyscallBoundary, AppExit } EndKind;
  SliceSignature Sig; ///< valid for End::Signature
  uint64_t ExpectedInsts = 0;
  /// Injected SpillLoss: the parked window was lost before the drain.
  bool Lost = false;
};

/// How a closed window reaches its slice.
enum class WindowRoute : uint8_t {
  Live,       ///< runs concurrently with the master (the normal path)
  Deferred,   ///< -spdefer spill: parks until the post-exit drain
  Quarantine, ///< circuit breaker: routed straight to the post-exit drain
};

class SliceTask;

/// Run-report deltas produced by slice-body code (the code that executes
/// a window: runSlice, handleSyscall, the detection hook, failAttempt,
/// memory-event listeners). The body always accumulates here instead of
/// writing Coordinator state directly so the identical code can run on a
/// host worker thread (-spmp) without racing the simulation thread; the
/// sim thread folds the deltas into SpRunReport at merge. Every field is
/// an additive counter (or a bucket histogram), so fold order cannot
/// change the final report.
struct BodyStats {
  uint64_t PlaybackSyscalls = 0;
  uint64_t DuplicatedSyscalls = 0;
  uint64_t ReexecutedSyscalls = 0;
  uint64_t SliceCowCopies = 0;
  uint64_t WastedSliceInsts = 0;
  uint64_t WatchdogKills = 0;
  uint64_t PlaybackDivergences = 0;
  /// Faults this window's plan actually fired (0 or 1; noteFaultFired's
  /// FaultCounted latch). Routed through BodyStats because the firing
  /// point may run on a worker thread: writing Report.FaultsInjected
  /// there would race the sim thread.
  uint64_t FaultsFired = 0;
  // Dead-attempt VM statistics folded at failAttempt (a retry rebuilds
  // the VM, so they must be banked before it dies).
  uint64_t TracesCompiled = 0;
  Ticks CompileTicks = 0;
  uint64_t TracesSeeded = 0;
  Ticks SeedTicks = 0;
  uint64_t CallsSuppressed = 0;
  uint64_t ReduxFlushes = 0;
  uint64_t TracesRecompiled = 0;
  Ticks RecompileTicks = 0;
  Ticks ReduxSavedTicks = 0;
  Histogram SigCheckDist; ///< folds into SpRunReport::SigCheckDistHist
};

/// Shared mutable state of one SuperPin run.
struct Coordinator {
  Coordinator(Scheduler &Sched, const CostModel &Model, const SpOptions &Opts,
              const Program &Prog, const ToolFactory &Factory,
              SpRunReport &Report)
      : Sched(Sched), Model(Model), Opts(Opts), Prog(Prog), Factory(Factory),
        Report(Report),
        InstCost(static_cast<Ticks>(
            std::llround(Opts.Cpi * static_cast<double>(Model.TicksPerInst)))) {
  }

  Scheduler &Sched;
  const CostModel &Model;
  const SpOptions &Opts;
  const Program &Prog;
  const ToolFactory &Factory;
  SpRunReport &Report;
  Ticks InstCost;

  SharedAreaRegistry Areas;
  SharedJitRegistry SharedJit;

  /// Static syscall-site map (SpOptions::StaticSyscallPrediction); null
  /// when prediction is disabled.
  const os::StaticSyscallMap *SysMap = nullptr;
  /// Static CFG used to seed slice code caches
  /// (SpOptions::StaticTraceSeed); null when seeding is disabled.
  const analysis::Cfg *SeedCfg = nullptr;
  /// Loop/redundancy classification consumed by every slice VM
  /// (SpOptions::Redux); null when suppression is disabled.
  const analysis::RedundancyInfo *Redux = nullptr;

  /// Capture sink (-sprecord); null when capture is off.
  CaptureSink *Sink = nullptr;

  /// Trace recorder (-sptrace); null when tracing is off. Emission charges
  /// no virtual time, so traced runs stay tick-identical to untraced ones.
  obs::TraceRecorder *Tr = nullptr;

  /// Fault plan; null unless SpOptions::Fault is set AND enabled(), so a
  /// disabled plan behaves exactly like no plan. All recovery machinery
  /// (checkpoints, watchdog caps, playback verification) keys off this.
  const fault::FaultPlan *Fault = nullptr;

  /// Overhead-attribution collector (-spprof); null when profiling is off.
  /// Attribution charges no virtual time, so profiled runs stay
  /// tick-identical to unprofiled ones.
  prof::ProfileCollector *Prof = nullptr;

  /// Postmortem flight recorder (-spflightrec); null when off. Armed by
  /// the first containment event / breaker trip / watchdog kill; the
  /// bundle itself is dumped at run teardown when the full report exists.
  obs::FlightRecorder *Flight = nullptr;

  /// Host wall-clock recorder (-sphosttrace/-sphoststats); null when off
  /// or when Pool is null. Wall-clock only: never consulted for virtual
  /// time, so -spmp results are byte-identical with it attached.
  obs::HostTraceRecorder *HostTr = nullptr;
  /// Slices dispatched to the pool but not yet retired (sim-thread-only
  /// gauge sampled into HostTr's in-flight counter track).
  uint32_t HostInFlight = 0;
  /// Start of the sim thread's in-progress charge-stream starve wait
  /// (only the sim thread touches it; set/consumed by the starve hook).
  uint64_t SimStarveBeginNs = 0;

  /// Worker -> sim completion queue (meaningful only with Pool): drained
  /// strictly in slice order at each body's retire point; doubles as the
  /// barrier after which a slice's stream arena may be freed. Declared
  /// before Pool so the pool's destructor (which joins every worker)
  /// runs first — a worker may still be returning from its final push
  /// when the run completes.
  host::CompletionQueue Completion;
  /// Host-parallel worker pool (-spmp, src/host); null runs every slice
  /// body on the simulation thread. Never consulted for virtual-time
  /// decisions: dispatched bodies record their check/charge sequence and
  /// the sim thread replays it, so results are byte-identical either way.
  std::unique_ptr<host::WorkerPool> Pool;

  Scheduler::TaskId MasterId = 0;
  std::vector<SliceTask *> Slices;
  std::vector<Scheduler::TaskId> SliceIds;
  uint32_t RunningSlices = 0;
  uint32_t NextMerge = 0;
  uint32_t MergedCount = 0;
  uint64_t NextPid = 2;
  /// True once the master exited and deferred slices may run (-spdefer).
  bool Draining = false;
  /// True once the master application has exited (drain decisions made by
  /// slices that fail afterwards depend on it).
  bool MasterExited = false;
  /// Some window is parked awaiting the post-exit drain for a fault
  /// reason (quarantine or breaker), so the drain must start even
  /// without -spdefer.
  bool HasParkedFailures = false;
  /// Circuit breaker state (fault runs only).
  bool BreakerTripped = false;
  uint32_t ClosedWindows = 0;
  uint32_t FailedWindows = 0;
  /// Spilled windows (-spdefer) not yet resumed by the post-exit drain
  /// (sampled into the sp.defer.backlog counter track).
  uint32_t DeferBacklogCount = 0;

  // --- Host fault containment (meaningful only with Pool) ---------------
  /// Resolved -sphostwatchdog deadline in nanoseconds: how long the sim
  /// thread lets a dispatched body's charge stream starve before
  /// declaring the worker dead.
  uint64_t HostWatchdogNs = 0;
  /// Worker deaths and watchdog kills so far (host breaker input).
  uint32_t HostFailures = 0;
  /// Host breaker tripped: no further bodies are dispatched; every later
  /// window runs on the sim thread.
  bool HostDegraded = false;

  bool allMerged() const { return MergedCount == Slices.size(); }

  void sliceEnded() {
    assert(RunningSlices > 0 && "slice end underflow");
    --RunningSlices;
    Sched.wake(MasterId); // Possibly stalled at -spslices.
  }

  /// Master exited: release every deferred slice into the pipeline phase.
  void startDrain() {
    Draining = true;
    for (Scheduler::TaskId Id : SliceIds)
      Sched.wake(Id);
  }

  /// A window failed (quarantined or lost). Trips the circuit breaker
  /// once the failure rate over closed windows crosses the threshold.
  void noteWindowFailed() {
    ++FailedWindows;
    if (BreakerTripped || ClosedWindows < Opts.BreakerMinWindows)
      return;
    if (static_cast<double>(FailedWindows) >=
        Opts.BreakerFailRate * static_cast<double>(ClosedWindows)) {
      BreakerTripped = true;
      Report.BreakerTripped = true;
      if (Tr)
        Tr->instant(obs::TraceRecorder::MasterLane,
                    obs::EventKind::BreakerTrip, Sched.now(), FailedWindows);
      if (Flight)
        Flight->recordEvent("breaker.trip", ~0u, 0, Sched.now(),
                            std::to_string(FailedWindows) + " of " +
                                std::to_string(ClosedWindows) +
                                " windows failed");
    }
  }

  /// A dispatched body died (worker exception, cancelled hang, truncated
  /// stream). After SpOptions::HostBreakerLimit of them, stop dispatching
  /// and degrade the rest of the run to sim-thread execution with a
  /// single warning; in-flight bodies drain naturally. Output is
  /// byte-identical either way — containment already re-executed every
  /// dead body's window serially, so degradation only changes which host
  /// thread runs future bodies.
  void noteHostFailure() {
    ++HostFailures;
    if (HostDegraded || HostFailures < Opts.HostBreakerLimit)
      return;
    HostDegraded = true;
    Report.HostDegraded = true;
    errs() << "superpin: host circuit breaker tripped after " << HostFailures
           << " worker failures; degrading -spmp to sim-thread execution "
              "(output is unaffected)\n";
    if (HostTr)
      HostTr->instant(HostTr->simLane(), obs::HostInstantKind::PoolDegrade,
                      HostTr->nowNs(), HostFailures);
    if (Flight)
      Flight->recordEvent("host.degraded", ~0u, 0, Sched.now(),
                          std::to_string(HostFailures) +
                              " worker failures tripped the host breaker");
  }

  void sliceMerged();
};

/// Per-slice staging sink for dispatched bodies (-spmp -sptrace): trace
/// events the body emits are interleaved into its charge stream at their
/// exact canonical position (RecordingTap::noteTrace). The sim thread's
/// replayer re-emits them into the master recorder stamped with the
/// replay-position virtual clock — the timestamp and ring position the
/// serial engine would have produced — so the exported trace stays
/// byte-identical for every worker count. Lane and Ts are ignored here:
/// the lane is constant per slice and the clock is sim-thread state.
class StagingTraceSink final : public obs::TraceSink {
public:
  explicit StagingTraceSink(host::RecordingTap &Tap) : Tap(Tap) {}
  void push(uint32_t, obs::EventKind K, obs::EventPhase Ph, os::Ticks,
            uint64_t Arg) override {
    Tap.noteTrace(K, Ph, Arg);
  }

private:
  host::RecordingTap &Tap;
};

/// An instrumented timeslice (paper Section 3): a COW fork of the master
/// executing under its own Pin VM and tool instance.
class SliceTask final : public SimTask, vm::MemoryEventListener {
public:
  SliceTask(Coordinator &C, const Process &Master, uint32_t Num,
            uint64_t StartIndex, bool ChargeSigRecord)
      : C(C), Num(Num), Proc(Master.fork(C.NextPid++)),
        Label("slice-" + std::to_string(Num)) {
    if (C.Prof)
      Prof = &C.Prof->slice(Num);
    BodyProf = Prof;
    Tb = C.Tr;
    if (C.Fault) {
      Fault = C.Fault->forSlice(Num);
      // Host-substrate faults hit dispatched bodies only: without a pool
      // the draw is pointless (and the serial run of the same flags is
      // the containment tests' byte-identity baseline).
      if (C.Pool)
        HostFault = C.Fault->hostForSlice(Num);
    }
    Services.emplace(C.Areas, Num);
    ToolInst = C.Factory(*Services);
    Vm.emplace(Proc, C.Model, ToolInst.get(), PrivateCache,
               makeConfig(C, Num));
    Info.Num = Num;
    Info.StartIndex = StartIndex;
    Info.SpawnTime = C.Sched.now();
    if (C.Tr) {
      C.Tr->setLaneName(lane(), Label);
      C.Tr->begin(lane(), obs::EventKind::SliceSleep, Info.SpawnTime);
    }
    Proc.Mem.setListener(this);
    // §4.1: the slice releases the memory bubble so its VM allocations
    // land there, preserving identical app mappings with the master.
    Proc.Mem.discardRange(AddressLayout::BubbleBase,
                          SpBubblePages * vm::PageSize);
    // Fault runs: checkpoint the post-bubble start state so a failed
    // attempt can re-fork exactly what the first attempt saw. Pool runs
    // without a plan take their containment checkpoint at dispatch time
    // instead (dispatchHostBody) — as a deep copy, because a COW fork
    // held across the body would inflate page use counts and change
    // which writes take the charged copy-on-write path, breaking
    // -spmp/-spmp 0 byte identity.
    if (C.Fault)
      StartState.emplace(Proc.fork(C.NextPid++));
    Services->setEndSliceHook([this] { Vm->requestStop(); });
    ToolInst->onSliceBegin(Num);
    if (ChargeSigRecord) {
      Ledger.charge(C.Model.SigRecordCost); // §4.4 recording mode
      if (Prof)
        Prof->charge(prof::Cause::SigSearch, C.Model.SigRecordCost);
    }
    // Fault runs: snapshot the attribution state so a failed attempt can
    // be re-judged as retry.waste (the sig recording above is charged
    // once per window and survives retries, so it stays outside).
    if (Prof && C.Fault)
      AttemptBase.emplace(*Prof);
  }

  std::string_view name() const override { return Label; }

  /// Called by the master when this slice's window closes; wakes the
  /// task. Only from this point on does the slice count as "running" for
  /// the -spslices stall limit (a slice sleeping for its window consumes no
  /// CPU, matching the paper's "maximum number of running slices").
  ///
  /// Non-live routes park the window instead: the slice does not count as
  /// running and stays blocked until Coordinator::startDrain() after the
  /// master exits. The COW fork taken at spawn time acts as the slice's
  /// checkpoint, so draining re-executes exactly the state a live run
  /// would have.
  void completeWindow(SliceWindow W, WindowRoute R) {
    assert(!Window && "window completed twice");
    Window.emplace(std::move(W));
    Route = R;
    if (R != WindowRoute::Live) {
      // Injected SpillLoss: the parked window never survives to the
      // drain. Counts as a failed window the moment it is parked.
      if (faultArmed(fault::FaultKind::SpillLoss)) {
        noteFaultFired();
        Window->Lost = true;
        C.noteWindowFailed();
      }
      if (R == WindowRoute::Quarantine) {
        C.HasParkedFailures = true;
        ++C.Report.QuarantinedSlices;
        if (C.Tr)
          C.Tr->instant(lane(), obs::EventKind::SliceQuarantine,
                        C.Sched.now(), Num);
      }
      return;
    }
    Info.ReadyTime = C.Sched.now();
    if (C.Tr) {
      C.Tr->end(lane(), obs::EventKind::SliceSleep, Info.ReadyTime);
      C.Tr->begin(lane(), obs::EventKind::SliceRun, Info.ReadyTime);
    }
    ++C.RunningSlices;
    CountedRunning = true;
    // Host-parallel mode: hand the body to a worker thread. Stall-fault
    // slices stay on the sim thread — an injected stall burns whatever
    // budget the current step granted, which only exists sim-side. A
    // tripped host breaker keeps every later body sim-side too. Either
    // way the degradation is counted, never silent.
    if (C.Pool) {
      if (!C.HostDegraded && !faultArmed(fault::FaultKind::SliceStall))
        dispatchHostBody();
      else
        ++C.Report.HostFallbackSlices;
    }
    C.Sched.wake(C.SliceIds[Num]);
  }

  TaskStep step(Ticks Budget) override {
    Ledger.beginStep(Budget);
    // While a worker owns the body, CurLedger stays pinned to the
    // recording ledger (memory events fire on the worker); the sim side
    // only replays charges and must not retarget it.
    if (!HostActive)
      CurLedger = &Ledger;
    TaskStatus St = stepImpl();
    if (!HostActive)
      CurLedger = nullptr;
    if (Prof)
      Prof->noteConsumed(Ledger.used());
    return {Ledger.used(), St};
  }

  void onCowCopy(uint64_t) override {
    if (CurLedger) {
      CurLedger->charge(C.Model.CowCopyPageCost);
      if (BodyProf)
        BodyProf->charge(prof::Cause::Fork, C.Model.CowCopyPageCost);
    }
    ++BS.SliceCowCopies;
  }
  void onPageAlloc(uint64_t) override {
    if (CurLedger) {
      CurLedger->charge(C.Model.PageAllocCost);
      if (BodyProf)
        BodyProf->charge(prof::Cause::Fork, C.Model.PageAllocCost);
    }
  }

private:
  enum class Phase : uint8_t { WaitWindow, Running, WaitDrain, WaitMerge,
                               Drain };
  /// Why an attempt was aborted (fault runs only).
  enum class FailReason : uint8_t { Crash, Watchdog, Stall, Divergence };

  Coordinator &C;
  uint32_t Num;
  Process Proc;
  /// Checkpoint for re-forking failed attempts (fault runs only).
  std::optional<Process> StartState;
  /// Services/Vm live in optionals so a retry can rebuild them in place
  /// (PinVm holds references; SliceServices is not move-assignable).
  /// Declaration order fixes destruction order: Vm dies before the tool,
  /// the tool before its services.
  std::optional<SliceServices> Services;
  std::unique_ptr<Tool> ToolInst;
  CodeCache PrivateCache;
  std::optional<PinVm> Vm;
  std::string Label;
  TickLedger Ledger;
  TickLedger *CurLedger = nullptr;
  Phase Ph = Phase::WaitWindow;
  std::optional<SliceWindow> Window;
  size_t SysPos = 0;
  SignatureStats SigSt;
  SliceInfo Info;
  bool EndReached = false;
  WindowRoute Route = WindowRoute::Live;
  bool CountedRunning = false; ///< currently counted in C.RunningSlices
  bool SigSearchOpen = false;  ///< an open SigSearch trace span
  /// This slice's attribution lane (-spprof); null when profiling is off.
  prof::SliceProfile *Prof = nullptr;
  /// Attribution snapshot at attempt start (fault runs with -spprof):
  /// failAttempt rewinds to it, re-judging the attempt as retry.waste.
  std::optional<prof::SliceProfile> AttemptBase;

  // --- Dual-mode body plumbing (src/host, -spmp) ------------------------
  // Body code (runSlice, handleSyscall, the detection hook, failAttempt,
  // memory-event listeners) charges and reports through these pointers so
  // the identical code runs on the sim thread or on a worker.
  /// Ledger the body charges: &Ledger serially, &RecLedger on a worker.
  TickLedger *ExecLedger = &Ledger;
  /// Attribution sink for body charges: the lane profile serially, the
  /// worker-local HostProf while a worker owns the body.
  prof::SliceProfile *BodyProf = nullptr;
  /// Trace sink for body instants: C.Tr serially, the per-slice staging
  /// sink while a worker owns the body (events ride the charge stream
  /// and are restamped by the replaying sim thread, so the exported
  /// trace is byte-identical across worker counts).
  obs::TraceSink *Tb = nullptr;
  /// Run-report deltas the body accumulates; flushed at doMerge.
  BodyStats BS;

  // --- Host-parallel state (meaningful only between dispatch/retire) ----
  /// True while a worker owns the body (Proc/Vm/Tool/BS/Window). The sim
  /// thread must not touch those fields until retireHostBody.
  bool HostActive = false;
  std::optional<host::ChargeStream> Stream;
  std::optional<host::RecordingTap> Rec;
  std::optional<host::StreamReplayer> Replayer;
  /// Body-visible trace sink while a worker owns the body (-sptrace).
  std::optional<StagingTraceSink> Staging;
  /// Always-budgeted ledger the worker charges; its tap canonicalises the
  /// body's check/charge sequence into Stream for sim-side replay.
  TickLedger RecLedger;
  /// Worker-local attribution; folded into the lane profile at retire.
  std::optional<prof::SliceProfile> HostProf;

  // --- Host fault containment state (src/fault host kinds, -spmp) -------
  /// Injected host-substrate fault for this slice (worker-exception,
  /// worker-hang, stream-truncation), drawn at construction and armed at
  /// dispatch. Null without a plan, a host rate, or a pool.
  std::optional<fault::FaultSpec> HostFault;
  /// Cooperative cancellation token. The sim thread sets it when the
  /// host watchdog declares this body dead; the worker's recording
  /// ledger checks it at every budget gate (TickLedger::setCancelToken),
  /// so the body exits at its next gate with no new unwinding path.
  std::atomic<bool> HostCancel{false};
  /// Set by the worker at body entry. Until then the job is only queued,
  /// and a starving replay is backpressure the watchdog must not punish.
  std::atomic<bool> HostBodyStarted{false};

  // --- Fault state (inert unless C.Fault) -------------------------------
  std::optional<fault::FaultSpec> Fault; ///< this slice's planned fault
  bool FaultCounted = false;  ///< FaultsInjected incremented already
  uint32_t Attempt = 0;       ///< 0 = first execution of the window
  bool Relaxed = false;       ///< post-exit re-execution semantics
  bool AttemptFailed = false; ///< current attempt aborted; resolve it
  bool Failed = false;        ///< final attempt failed; merge partially
  bool Quarantined = false;   ///< window went through quarantine
  Ticks StallTicks = 0;       ///< burnt by an injected stall so far

  uint32_t lane() const { return obs::TraceRecorder::sliceLane(Num); }

  bool faultArmed(fault::FaultKind K) const {
    return Fault && Fault->Kind == K && Attempt < Fault->FailAttempts;
  }

  void noteFaultFired() {
    if (FaultCounted)
      return;
    FaultCounted = true;
    // Via BodyStats, not Report: the firing point may be on a worker.
    ++BS.FaultsFired;
  }

  static PinVmConfig makeConfig(Coordinator &C, uint32_t Num) {
    PinVmConfig Cfg;
    Cfg.InstCost = C.InstCost;
    Cfg.SliceNum = Num;
    if (C.Opts.SharedCodeCache)
      Cfg.SharedJit = &C.SharedJit;
    Cfg.SeedCfg = C.SeedCfg; // null unless -spseed
    Cfg.Redux = C.Redux;     // null unless -spredux
    if (C.Prof)
      Cfg.Prof = &C.Prof->slice(Num);
    if (C.Tr) {
      Cfg.Trace = C.Tr;
      Cfg.TraceLane = obs::TraceRecorder::sliceLane(Num);
      Scheduler &Sched = C.Sched;
      Cfg.TraceClock = [&Sched] { return Sched.now(); };
    }
    return Cfg;
  }

  TaskStatus stepImpl() {
    if (Ledger.inDebt())
      return TaskStatus::Runnable; // Paying off an expensive action.
    while (true) {
      switch (Ph) {
      case Phase::WaitWindow:
        if (!Window || (Route != WindowRoute::Live && !C.Draining))
          return TaskStatus::Blocked;
        if (Route != WindowRoute::Live) {
          Info.ReadyTime = C.Sched.now(); // Drain start = resume moment.
          if (Route == WindowRoute::Deferred && C.DeferBacklogCount)
            --C.DeferBacklogCount;
          if (C.Tr) {
            C.Tr->end(lane(), obs::EventKind::SliceSleep, Info.ReadyTime);
            if (Route == WindowRoute::Deferred) {
              C.Tr->instant(lane(), obs::EventKind::DeferDrain,
                            Info.ReadyTime, Num);
              C.Tr->counter(obs::EventKind::DeferBacklog, Info.ReadyTime,
                            C.DeferBacklogCount);
            }
            C.Tr->begin(lane(), obs::EventKind::SliceRun, Info.ReadyTime);
          }
          if (Route == WindowRoute::Quarantine)
            Relaxed = true; // Breaker route: serial-Pin-like re-execution.
          if (Window->Lost) {
            // The parked window is gone; nothing to execute. Merge as a
            // zero-coverage loss so the partition gap is accounted.
            Failed = true;
            EndReached = true;
            Info.EndKind = endKindOf(Window->EndKind);
          }
        }
        // Host-dispatched bodies arm detection on the worker (hostBody);
        // the sim thread must not touch the VM while the worker owns it.
        if (!HostActive && !EndReached && !Relaxed)
          installDetection();
        Ph = Phase::Running;
        break;
      case Phase::Running:
        if (HostActive) {
          // The body runs (or already ran) on a worker; replay its
          // recorded check/charge sequence against the real ledger so
          // this slice pauses and resumes at exactly the tick boundaries
          // a sim-thread execution would have hit. When the replay
          // outruns the worker's published events, the stream's starve
          // hook (set at dispatch) records a SimReplay span; worker idle
          // time overlapping those spans becomes merge-wait. A wait that
          // starves past the host watchdog deadline means the worker is
          // dead (hung, truncated stream, or silently gone): contain it
          // and re-execute the window here.
          host::StreamReplayer::Step R =
              Replayer->replay(Ledger, C.HostWatchdogNs);
          if (R == host::StreamReplayer::Step::NeedBudget)
            return TaskStatus::Runnable;
          if (R == host::StreamReplayer::Step::Starve) {
            // Only a body that actually started can be hung. A job still
            // sitting in the pool queue (backlog, adversarial dispatch
            // delays, CPU oversubscription) is backpressure, not a fault:
            // keep waiting — other sim-side tasks run in the meantime.
            if (!HostBodyStarted.load(std::memory_order_acquire))
              return TaskStatus::Runnable;
            containAfterStarve();
            return TaskStatus::Runnable; // Body re-runs sim-side next step.
          }
          if (retireHostBody(R == host::StreamReplayer::Step::Fail))
            return TaskStatus::Runnable; // Contained: same deal.
        } else {
          runSlice();
        }
        if (AttemptFailed) {
          resolveFailure();
          break; // Re-enter: retry, quarantine wait, or merge a failure.
        }
        if (!EndReached)
          return TaskStatus::Runnable; // Budget exhausted.
        Info.EndTime = C.Sched.now();
        if (C.Tr)
          C.Tr->end(lane(), obs::EventKind::SliceRun, Info.EndTime,
                    Vm->retired());
        if (CountedRunning) {
          C.sliceEnded(); // Deferred slices never counted as running.
          CountedRunning = false;
        }
        Ph = Phase::WaitMerge;
        break;
      case Phase::WaitDrain:
        // Quarantined after exhausting retries: parked until the
        // post-exit drain grants a final relaxed re-execution.
        if (!C.Draining)
          return TaskStatus::Blocked;
        if (C.Tr) {
          C.Tr->end(lane(), obs::EventKind::SliceSleep, C.Sched.now());
          C.Tr->begin(lane(), obs::EventKind::SliceRun, C.Sched.now());
        }
        Relaxed = true;
        ++Attempt;
        beginAttempt();
        Ph = Phase::Running;
        break;
      case Phase::WaitMerge:
        if (C.NextMerge != Num)
          return TaskStatus::Blocked;
        doMerge();
        Ph = Phase::Drain;
        break;
      case Phase::Drain:
        return Ledger.inDebt() ? TaskStatus::Runnable : TaskStatus::Exited;
      }
    }
  }

  void installDetection() {
    if (Window->EndKind != SliceWindow::End::Signature)
      return;
    // Injected SigSuppress: the detection hook is never armed, so the
    // slice overruns its window until the watchdog kills the attempt.
    if (faultArmed(fault::FaultKind::SigSuppress)) {
      noteFaultFired();
      return;
    }
    auto Hook = [this](TickLedger &L) {
      // Detection is meaningless while recorded syscalls are pending: the
      // boundary state includes their effects. The check instrumentation
      // still executes (and is charged) as in the paper.
      if (SysPos != Window->Sys.size()) {
        if (C.Opts.QuickCheck) {
          L.charge(C.Model.InlinedCheckCost);
          ++SigSt.QuickChecks;
        } else {
          L.charge(C.Model.SigFullCheckCost);
          ++SigSt.FullChecks;
        }
        return false;
      }
      if (Tb && !SigSearchOpen) {
        SigSearchOpen = true;
        Tb->begin(lane(), obs::EventKind::SigSearch, bodyNow());
      }
      uint64_t Ret = Vm->retired();
      uint64_t Exp = Window->ExpectedInsts;
      BS.SigCheckDist.record(Exp > Ret ? Exp - Ret : Ret - Exp);
      return checkSignature(Window->Sig, Proc, C.Model, C.Opts.QuickCheck,
                            Vm->runCapRemaining(), L, SigSt);
    };
    // Everything the hook charges (inlined checks, full/stack/memory
    // signature comparisons) is §4.4 signature-search overhead; bracket
    // with totalCharged() because checkSignature charges internally.
    Vm->armDetection(Window->Sig.Pc, [this, Hook](TickLedger &L) {
      if (!BodyProf)
        return Hook(L);
      Ticks Base = L.totalCharged();
      bool Found = Hook(L);
      BodyProf->charge(prof::Cause::SigSearch, L.totalCharged() - Base);
      return Found;
    });
  }

  /// Ticks an injected stall may burn before the stall watchdog kills the
  /// attempt: generously past anything a healthy slice spends.
  Ticks stallLimit() const {
    return C.Model.msTicks(C.Opts.SliceMs) * 2 + C.Model.ForkBaseCost;
  }

  void runSlice() {
    while (ExecLedger->hasBudget() && !EndReached) {
      // Injected stall: the slice burns scheduling budget without
      // retiring anything until the stall watchdog fires. Never runs on
      // a worker (completeWindow keeps stall-armed slices sim-side): the
      // burn depends on the live step budget, which only exists here.
      if (faultArmed(fault::FaultKind::SliceStall)) {
        noteFaultFired();
        Ticks Burn = ExecLedger->remaining();
        StallTicks += Burn;
        ExecLedger->charge(Burn);
        if (BodyProf) // Stalled progress is recovery waste by definition.
          BodyProf->charge(prof::Cause::RetryWaste, Burn);
        if (StallTicks > stallLimit())
          failAttempt(FailReason::Stall);
        return;
      }
      // A zero cap drains the current basic block before InstCap.
      uint64_t Cap = Proc.quantumExpired() ? 0 : Proc.quantumLeft();
      if (C.Fault && Cap != 0) {
        // Clamp so the attempt stops exactly at its watchdog limit,
        // injected crash point, or (relaxed) window end. Block-drain
        // overshoot from a zero cap is caught by the post-run checks.
        uint64_t Ret = Vm->retired();
        uint64_t Margin = std::max<uint64_t>(C.Opts.WatchdogMarginInsts, 1);
        uint64_t Watch = Window->ExpectedInsts + Margin + 1;
        Cap = std::min(Cap, Watch > Ret ? Watch - Ret : 1);
        if (Relaxed && Window->ExpectedInsts > Ret)
          Cap = std::min(Cap, Window->ExpectedInsts - Ret);
        if (faultArmed(fault::FaultKind::SliceCrash))
          Cap = std::min(Cap,
                         Fault->AtInst > Ret ? Fault->AtInst - Ret : 1);
      }
      Vm->setRunCap(Cap);
      uint64_t Before = Vm->retired();
      VmStop Stop = Vm->run(*ExecLedger);
      Proc.noteRetired(Vm->retired() - Before);
      switch (Stop) {
      case VmStop::Budget:
        return;
      case VmStop::InstCap:
        break; // Quantum boundary at a block end; rotate below.
      case VmStop::Detected:
        endSlice(SliceEndKind::Signature);
        break;
      case VmStop::ToolStop:
        endSlice(SliceEndKind::ToolStop);
        break;
      case VmStop::Syscall:
        handleSyscall();
        break;
      case VmStop::BadPc:
        if (!C.Fault)
          reportFatalError("slice " + std::to_string(Num) +
                           ": control left the text segment (divergence)");
        failAttempt(FailReason::Crash);
        break;
      }
      if (AttemptFailed)
        return;
      if (C.Fault && !EndReached) {
        uint64_t Ret = Vm->retired();
        if (faultArmed(fault::FaultKind::SliceCrash) &&
            Ret >= Fault->AtInst) {
          noteFaultFired();
          failAttempt(FailReason::Crash);
          return;
        }
        uint64_t Margin = std::max<uint64_t>(C.Opts.WatchdogMarginInsts, 1);
        if (Ret > Window->ExpectedInsts + Margin) {
          // Runaway watchdog: the attempt overran its instruction budget
          // (window length + margin) without finding its end.
          failAttempt(FailReason::Watchdog);
          return;
        }
        if (Relaxed && Ret >= Window->ExpectedInsts) {
          // Relaxed re-execution ends on icount, not signatures.
          endSlice(endKindOf(Window->EndKind));
        }
      }
      if (Proc.quantumExpired() && !EndReached &&
          (Stop == VmStop::InstCap || Stop == VmStop::Syscall)) {
        Proc.rotateThread();
        Vm->noteContextSwitch();
      }
    }
  }

  /// Relaxed-mode fallback for a record that cannot be played back:
  /// re-execute the syscall against the slice's forked kernel state, the
  /// way duplicable calls always run ("on-demand re-execution").
  void reexecuteSyscall() {
    SystemContext Ctx;
    Ctx.NowMs = bodyNowMs();
    Ctx.SuppressOutput = true;
    Ctx.Trace = Tb;
    Ctx.TraceLane = lane();
    Ctx.TraceNow = Tb ? bodyNow() : 0;
    serviceSyscall(Proc, Ctx, nullptr);
    ExecLedger->charge(C.InstCost + C.Model.SyscallCost);
    if (BodyProf)
      BodyProf->charge(prof::Cause::SysPlayback,
                       C.InstCost + C.Model.SyscallCost);
    ++BS.ReexecutedSyscalls;
    Vm->noteSyscallRetired();
    Proc.noteRetired(1);
    if (Proc.Status == ProcStatus::Exited)
      endSlice(SliceEndKind::AppExit);
  }

  void handleSyscall() {
    uint64_t Number = pendingSyscallNumber(Proc);
    ToolInst->onSyscall(Number);
    // Injected SysrecDrop: the SysIndex-th record vanished from the
    // window, desynchronising playback from the recorded sequence.
    if (faultArmed(fault::FaultKind::SysrecDrop) &&
        SysPos == Fault->SysIndex && SysPos < Window->Sys.size()) {
      noteFaultFired();
      ++SysPos;
    }
    if (SysPos < Window->Sys.size()) {
      WindowSyscall &WS = Window->Sys[SysPos];
      bool Mismatch = WS.Effects.Number != Number;
      bool Corrupt = false;
      if (C.Fault && WS.IsPlayback && !Mismatch) {
        // Playback verification: digest the record as presented and
        // compare against the digest taken at record time. An injected
        // PlaybackCorrupt presents a tampered copy.
        SyscallEffects Probe = WS.Effects;
        if (faultArmed(fault::FaultKind::PlaybackCorrupt) &&
            SysPos == Fault->SysIndex) {
          noteFaultFired();
          Probe.RetVal ^= 0x5EEDull;
        }
        Corrupt = hashSyscallEffects(Probe) != WS.Check;
      }
      if (Mismatch || Corrupt) {
        if (!C.Fault)
          reportFatalError("slice " + std::to_string(Num) +
                           ": syscall sequence diverged from master");
        if (!Relaxed) {
          // Abort playback at a clean syscall boundary; the retry (or
          // quarantine) re-runs the window from its checkpoint.
          failAttempt(FailReason::Divergence);
          return;
        }
        // Relaxed: recover the lost information by re-executing the call
        // itself. A corrupt record (numbers matched) is consumed; a
        // sequence mismatch leaves the record for a later syscall.
        if (!Mismatch)
          ++SysPos;
        reexecuteSyscall();
        return;
      }
      ++SysPos;
      if (WS.IsPlayback) {
        playbackSyscall(Proc, WS.Effects);
        ExecLedger->charge(C.InstCost + C.Model.SyscallPlaybackCost);
        if (BodyProf)
          BodyProf->charge(prof::Cause::SysPlayback,
                           C.InstCost + C.Model.SyscallPlaybackCost);
        ++Info.PlayedBackSyscalls;
        ++BS.PlaybackSyscalls;
        if (Tb)
          Tb->instant(lane(), obs::EventKind::SysPlayback, bodyNow(),
                      WS.Effects.Number);
      } else {
        // Duplicable: re-execute against this slice's forked kernel state
        // with output suppressed.
        SystemContext Ctx;
        Ctx.NowMs = bodyNowMs();
        Ctx.SuppressOutput = true;
        Ctx.Trace = Tb;
        Ctx.TraceLane = lane();
        Ctx.TraceNow = Tb ? bodyNow() : 0;
        serviceSyscall(Proc, Ctx, nullptr);
        ExecLedger->charge(C.InstCost + C.Model.SyscallCost);
        if (BodyProf)
          BodyProf->charge(prof::Cause::SysPlayback,
                           C.InstCost + C.Model.SyscallCost);
        ++Info.DuplicatedSyscalls;
        ++BS.DuplicatedSyscalls;
      }
      Vm->noteSyscallRetired();
      Proc.noteRetired(1);
      if (Proc.Status == ProcStatus::Exited)
        endSlice(SliceEndKind::AppExit);
      return;
    }
    // Past the recorded list: this must be the window's boundary syscall.
    // It is counted here (its IPOINT_BEFORE analysis already ran) but
    // executed only by the master; the successor starts after it.
    // Relaxed mode additionally requires the icount to line up, since a
    // re-executed window can reach stray syscalls the master never saw.
    if (Window->EndKind == SliceWindow::End::SyscallBoundary &&
        (!Relaxed || Vm->retired() + 1 == Window->ExpectedInsts)) {
      Vm->noteSyscallRetired();
      endSlice(SliceEndKind::SyscallBoundary);
      return;
    }
    if (!C.Fault)
      reportFatalError(
          "slice " + std::to_string(Num) +
          ": overran its window into an unrecorded syscall (missed "
          "signature?) retired=" + std::to_string(Vm->retired()) +
          " expected=" + std::to_string(Window->ExpectedInsts) +
          " sigpc=" + std::to_string(Window->Sig.Pc) +
          " sigquantum=" + std::to_string(Window->Sig.QuantumLeft) +
          " sigthread=" + std::to_string(Window->Sig.CurThread) +
          " curthread=" + std::to_string(Proc.currentThread()) +
          " syscallnum=" + std::to_string(pendingSyscallNumber(Proc)));
    if (Relaxed) {
      reexecuteSyscall();
      return;
    }
    failAttempt(FailReason::Divergence);
  }

  void endSlice(SliceEndKind Kind) {
    Info.EndKind = Kind;
    EndReached = true;
    Vm->disarmDetection();
    if (Tb && SigSearchOpen) {
      SigSearchOpen = false;
      Tb->end(lane(), obs::EventKind::SigSearch, bodyNow());
    }
  }

  static SliceEndKind endKindOf(SliceWindow::End E) {
    switch (E) {
    case SliceWindow::End::Signature:
      return SliceEndKind::Signature;
    case SliceWindow::End::SyscallBoundary:
      return SliceEndKind::SyscallBoundary;
    case SliceWindow::End::AppExit:
      break;
    }
    return SliceEndKind::AppExit;
  }

  /// Aborts the current attempt (fault runs only): folds the wasted work
  /// into the report, charges the kill, and flags the failure so
  /// stepImpl's Running phase resolves it (retry / quarantine / merge).
  void failAttempt(FailReason R) {
    assert(C.Fault && "attempts only fail under an active fault plan");
    AttemptFailed = true;
    Vm->disarmDetection();
    if (Tb && SigSearchOpen) {
      SigSearchOpen = false;
      Tb->end(lane(), obs::EventKind::SigSearch, bodyNow());
    }
    BS.WastedSliceInsts += Vm->retired();
    BS.TracesCompiled += Vm->tracesCompiled();
    BS.CompileTicks += Vm->compileTicks();
    BS.TracesSeeded += Vm->tracesSeeded();
    BS.SeedTicks += Vm->seedTicks();
    BS.CallsSuppressed += Vm->analysisCallsSuppressed();
    BS.ReduxFlushes += Vm->reduxFlushes();
    BS.TracesRecompiled += Vm->tracesRecompiled();
    BS.RecompileTicks += Vm->recompileTicks();
    BS.ReduxSavedTicks += Vm->reduxSavedTicks();
    // Re-judge everything the dead attempt charged as retry.waste, then
    // add the kill itself.
    if (BodyProf) {
      if (HostActive) {
        // The worker-local profile started empty at dispatch, so an empty
        // rewind base re-judges exactly what this attempt charged — the
        // same delta a serial rewind to AttemptBase computes (the lane
        // gains nothing between the snapshot and the dispatch).
        prof::SliceProfile Empty;
        BodyProf->rewindAttempt(Empty);
      } else if (AttemptBase) {
        BodyProf->rewindAttempt(*AttemptBase);
      }
    }
    ExecLedger->charge(C.Model.SliceKillCost);
    if (BodyProf)
      BodyProf->charge(prof::Cause::RetryWaste, C.Model.SliceKillCost);
    switch (R) {
    case FailReason::Watchdog:
    case FailReason::Stall:
      ++BS.WatchdogKills;
      if (Tb)
        Tb->instant(lane(), obs::EventKind::WatchdogKill, bodyNow(),
                    Vm->retired());
      if (C.Flight)
        C.Flight->recordEvent("watchdog.kill", Num, Info.Attempts, bodyNow(),
                              std::to_string(Vm->retired()) +
                                  " insts retired when killed");
      break;
    case FailReason::Divergence:
      ++BS.PlaybackDivergences;
      if (Tb)
        Tb->instant(lane(), obs::EventKind::PlaybackDivergence,
                    bodyNow(), SysPos);
      break;
    case FailReason::Crash:
      break; // The retry/quarantine instants tell the story.
    }
  }

  /// Decides what the failed attempt becomes: another retry, a parked
  /// quarantine, or (when already relaxed) a partially-covered merge.
  void resolveFailure() {
    AttemptFailed = false;
    if (Relaxed) {
      // The last-resort re-execution failed too: merge what was covered.
      Failed = true;
      EndReached = true;
      Info.EndKind = endKindOf(Window->EndKind);
      return; // Running phase re-enters and takes the EndReached path.
    }
    if (Attempt < C.Opts.RetryBudget) {
      ++Attempt;
      ++C.Report.RetriedSlices;
      if (C.Tr)
        C.Tr->instant(lane(), obs::EventKind::SliceRetry, C.Sched.now(),
                      Attempt);
      if (C.Flight)
        C.Flight->recordEvent("slice.retry", Num, Attempt, C.Sched.now(),
                              "attempt failed; re-forked from the checkpoint");
      beginAttempt();
      return; // Still Running; runSlice continues with the fresh fork.
    }
    quarantine();
  }

  /// Retries exhausted: release the worker, park the window, and wait
  /// for the post-exit drain to grant a final relaxed re-execution.
  void quarantine() {
    if (CountedRunning) {
      C.sliceEnded(); // Free the -spslices slot the dead attempt held.
      CountedRunning = false;
    }
    Quarantined = true;
    ++C.Report.QuarantinedSlices;
    C.HasParkedFailures = true;
    C.noteWindowFailed();
    Ledger.charge(C.Model.QuarantineCost);
    if (Prof)
      Prof->charge(prof::Cause::RetryWaste, C.Model.QuarantineCost);
    if (C.Tr) {
      C.Tr->instant(lane(), obs::EventKind::SliceQuarantine, C.Sched.now(),
                    Num);
      C.Tr->end(lane(), obs::EventKind::SliceRun, C.Sched.now());
      C.Tr->begin(lane(), obs::EventKind::SliceSleep, C.Sched.now());
    }
    if (C.Flight)
      C.Flight->recordEvent("slice.quarantine", Num, Attempt, C.Sched.now(),
                            "retry budget exhausted; parked for the "
                            "post-exit relaxed re-execution");
    if (C.MasterExited)
      C.startDrain(); // The drain signal already passed; raise it now.
    Ph = Phase::WaitDrain;
  }

  /// Rebuilds the execution state for a fresh attempt: re-fork from the
  /// checkpoint and recreate the VM/tool/services trio. The private code
  /// cache must be flushed — its call sites bind the dead tool instance.
  void beginAttempt() {
    assert(StartState && "no checkpoint to re-fork from");
    Ledger.charge(C.Model.ForkBaseCost +
                  StartState->Mem.numPages() * C.Model.ForkPerPageCost);
    // The re-fork exists only because an attempt failed: recovery cost.
    if (Prof)
      Prof->charge(prof::Cause::RetryWaste,
                   C.Model.ForkBaseCost +
                       StartState->Mem.numPages() * C.Model.ForkPerPageCost);
    Vm.reset();
    ToolInst.reset();
    Services.reset();
    PrivateCache.flush();
    Proc = StartState->fork(C.NextPid++);
    Proc.Mem.setListener(this);
    Services.emplace(C.Areas, Num);
    Services->setEndSliceHook([this] { Vm->requestStop(); });
    ToolInst = C.Factory(*Services);
    Vm.emplace(Proc, C.Model, ToolInst.get(), PrivateCache,
               makeConfig(C, Num));
    ToolInst->onSliceBegin(Num);
    SysPos = 0;
    EndReached = false;
    StallTicks = 0;
    if (Prof)
      AttemptBase.emplace(*Prof); // Fresh rewind point for this attempt.
    if (!Relaxed)
      installDetection();
  }

  /// Virtual wall-clock for body-visible syscall contexts. A worker must
  /// not read the sim clock; none of the duplicable syscalls consume
  /// NowMs, so 0 is safe there (the byte-identity tests pin this down).
  uint64_t bodyNowMs() const { return HostActive ? 0 : C.Sched.nowMs(); }

  /// Virtual timestamp for body-side trace emission. On a worker the
  /// staging sink ignores it (the replayer restamps at replay position),
  /// and the sim clock is off-limits there anyway.
  Ticks bodyNow() const { return HostActive ? 0 : C.Sched.now(); }

  /// Hands this slice's body to the worker pool (-spmp). Called by
  /// completeWindow on the sim thread, before the slice's next step; from
  /// here until retireHostBody the worker owns Proc/Vm/Tool/Window/BS and
  /// the sim thread only replays the recorded charge stream.
  void dispatchHostBody() {
    // Containment checkpoint: if a worker dies mid-body, the window is
    // re-executed sim-side from this state. Fault runs already hold the
    // ctor checkpoint; otherwise take a DEEP copy — it shares no pages,
    // so unlike fork() it cannot inflate COW use counts and perturb the
    // body's charged copy sequence. The copy is pure host-side work: no
    // virtual time, no pid draw (getpid must match the -spmp 0 run).
    if (!StartState)
      StartState.emplace(Proc.snapshot(ContainmentShadowPid));
    Stream.emplace();
    Rec.emplace(*Stream);
    Replayer.emplace(*Stream);
    RecLedger = TickLedger();
    RecLedger.setTap(&*Rec);
    // One always-budgeted step: the body runs to its end in a single
    // pass, recording where the budget gates were; real budgeting
    // happens when the sim thread replays the stream.
    RecLedger.beginStep(~Ticks(0));
    // Cancellation token: once the sim thread flips it, every budget
    // gate the body reaches returns false and runSlice exits cleanly.
    // Pointless without the watchdog (nothing ever flips it), so a
    // disabled watchdog also skips the per-gate token check.
    HostCancel.store(false, std::memory_order_relaxed);
    HostBodyStarted.store(false, std::memory_order_relaxed);
    RecLedger.setCancelToken(C.HostWatchdogNs ? &HostCancel : nullptr);
    ExecLedger = &RecLedger;
    CurLedger = &RecLedger; // Memory events now fire on the worker.
    // The master recorder and the sim clock are off-limits on a worker.
    // With tracing on, the body emits into a staging sink that rides the
    // charge stream; the replayer below re-emits each marker into C.Tr at
    // its replay position, reproducing the serial timestamps and ring
    // order exactly. With tracing off, body emission is simply dark.
    if (C.Tr) {
      Staging.emplace(*Rec);
      Tb = &*Staging;
      Vm->setTraceSink(&*Staging);
      Replayer->setTraceFn(
          [this](obs::EventKind K, obs::EventPhase Ph, uint64_t Arg) {
            C.Tr->push(lane(), K, Ph, C.Sched.now(), Arg);
          });
    } else {
      Tb = nullptr;
      Vm->setTraceSink(nullptr);
    }
    if (Prof) {
      HostProf.emplace();
      BodyProf = &*HostProf;
      Vm->setProfSink(&*HostProf);
    }
    HostActive = true;
    ++C.Report.HostDispatchedSlices;
    // Arm the injected host fault (sim thread, deterministic). Exception
    // and hang fire unconditionally once dispatched, so they count here;
    // truncation only counts if it actually cuts the stream, which the
    // completion record reports at containment time.
    if (HostFault) {
      if (HostFault->Kind == fault::FaultKind::StreamTruncation)
        Rec->setTruncateAfter(HostFault->AtInst);
      else
        ++C.Report.HostFaultsInjected;
    }
    if (C.HostTr) {
      // Arena-growth samples land in the lane of whichever worker runs
      // the body (counterHere resolves the thread binding); the in-flight
      // gauge is sampled here on the sim lane.
      Stream->setGrowthHook([HT = C.HostTr](uint64_t Bytes) {
        HT->counterHere(obs::HostCounterKind::ArenaBytes, Bytes);
      });
      // SimReplay spans mark genuine starvation only: the hook fires when
      // the sim thread's replay outruns this worker's published events
      // and enters the blocking wait. The non-starved replay fast path
      // stays unobserved — bracketing every replay() call would put two
      // clock reads in the scheduler's per-quantum loop (measurable; see
      // bench/micro_hostobs) and would bury the sim lane's ring in
      // sub-microsecond spans.
      Stream->setStarveHook(
          [HT = C.HostTr, &Co = C, Num = Num](bool Enter) {
            if (Enter)
              Co.SimStarveBeginNs = HT->nowNs();
            else
              HT->span(HT->simLane(), obs::HostSpanKind::SimReplay,
                       Co.SimStarveBeginNs, HT->nowNs(), Num);
          });
      ++C.HostInFlight;
      C.HostTr->counterHere(obs::HostCounterKind::InFlight, C.HostInFlight);
    }
    C.Pool->submit([this](host::WorkerContext &WC) { hostBody(WC); });
  }

  /// The slice body, on a worker thread. Mirrors the serial attempt-0
  /// path: arm detection, run the window to its end or first failure.
  /// The terminal stream event is the worker's last touch of shared
  /// state; the completion record is pushed after it, so the sim's
  /// retire-time pop doubles as the barrier for freeing the arena.
  void hostBody(host::WorkerContext &WC) {
    auto T0 = std::chrono::steady_clock::now();
    // From here on a starving replay may legitimately blame this body;
    // while it was only queued, starvation was the sim thread's own
    // backlog. Release pairs with the watchdog's acquire load.
    HostBodyStarted.store(true, std::memory_order_release);
    bool Threw = false;
    bool Hung = false;
    if (HostFault && HostFault->Kind == fault::FaultKind::WorkerHang) {
      // Injected hang: the body goes silent without publishing anything,
      // exactly the shape of a deadlocked or livelocked worker. It
      // spins until the sim-side watchdog cancels it — the test of the
      // whole detection ladder, not of the body.
      while (!HostCancel.load(std::memory_order_acquire))
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      Hung = true;
    } else {
      try {
        if (HostFault && HostFault->Kind == fault::FaultKind::WorkerException)
          throw std::runtime_error("injected worker exception");
        installDetection();
        runSlice();
      } catch (...) {
        // Exception isolation: a body that throws (tool bug, bad_alloc,
        // injected) is contained to this slice. The stream gets a
        // terminal Fail and the completion record carries the flag; the
        // sim thread re-executes the window serially.
        Threw = true;
      }
    }
    bool BodyFailed = AttemptFailed;
    // A cancel-token exit leaves the body unfinished with no sim-side
    // failure: runSlice returned because every gate went dry, not
    // because the window ended or a sim fault fired.
    bool Cancelled = Hung || (!Threw && !BodyFailed && !EndReached &&
                              HostCancel.load(std::memory_order_acquire));
    bool Contained = Threw || Cancelled;
    if (C.HostTr) {
      // Everything after this stamp (stream finish, completion publish)
      // is the job's retire tail; the pool splits the job span here.
      WC.BodyEndNs = C.HostTr->nowNs();
      WC.BodyArg = Num;
    }
    Rec->finish(BodyFailed || Contained);
    host::SliceCompletion SC;
    SC.SliceNum = Num;
    SC.Worker = WC.Worker;
    SC.Failed = BodyFailed || Contained;
    SC.Exception = Threw;
    SC.Cancelled = Cancelled;
    SC.Truncated = Rec->truncated();
    SC.StreamEvents = Stream->eventCount();
    SC.ArenaBytes = Stream->arenaBytes();
    SC.HostSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
            .count();
    C.Completion.push(SC);
    if (C.HostTr)
      C.HostTr->counterHere(obs::HostCounterKind::CompletionDepth,
                            C.HostTr->addCompletionDepth(+1));
  }

  /// Folds a completion record's host telemetry into the run report and
  /// updates the sim-lane gauges. Shared by the retire and containment
  /// paths; \p PopNs stamps when the completion pop began.
  void foldHostCompletion(const host::SliceCompletion &SC, uint64_t PopNs) {
    if (C.HostTr) {
      C.HostTr->span(C.HostTr->simLane(), obs::HostSpanKind::SimRetire, PopNs,
                     C.HostTr->nowNs(), Num);
      C.HostTr->counterHere(obs::HostCounterKind::CompletionDepth,
                            C.HostTr->addCompletionDepth(-1));
      --C.HostInFlight;
      C.HostTr->counterHere(obs::HostCounterKind::InFlight, C.HostInFlight);
    }
    C.Report.HostStreamEvents += SC.StreamEvents;
    C.Report.HostArenaBytes = std::max(C.Report.HostArenaBytes, SC.ArenaBytes);
    C.Report.HostBodySeconds += SC.HostSeconds;
    if (SC.Worker < C.Report.HostWorkerTable.size()) {
      SpRunReport::HostWorkerStats &WS = C.Report.HostWorkerTable[SC.Worker];
      ++WS.Bodies;
      WS.BodySeconds += SC.HostSeconds;
    }
  }

  /// Restores sim-thread plumbing after the worker's last touch of this
  /// slice's state (proved by the completion pop). \p DeadAttempt: the
  /// body died without a sim-side failAttempt (exception or cancel), so
  /// its worker-local attribution has not been re-judged as waste yet.
  void restoreSimPlumbing(bool DeadAttempt) {
    Stream->releaseArena();
    HostActive = false;
    ExecLedger = &Ledger;
    CurLedger = &Ledger; // Mid-step: the rest of this step is sim-side.
    Tb = C.Tr;
    if (Prof) {
      if (DeadAttempt) {
        // The worker-local profile holds only this attempt's charges; an
        // empty rewind base re-judges all of it as recovery waste (the
        // same delta failAttempt computes on the worker).
        prof::SliceProfile Empty;
        HostProf->rewindAttempt(Empty);
      }
      Prof->foldAttribution(*HostProf);
      Vm->setProfSink(Prof);
      HostProf.reset();
      BodyProf = Prof;
    }
    // Drop the staging sink: a clean body's VM never runs again, and a
    // failed one is rebuilt (beginAttempt / containHostBody) with full
    // sim plumbing via makeConfig. Detach the VM first so no stale
    // pointer survives the optional's reset.
    if (Staging) {
      Vm->setTraceSink(nullptr);
      Staging.reset();
    }
  }

  /// Sim-side retire: the replayed stream reached its terminal, so the
  /// worker has already made its last touch of this slice's state (the
  /// completion pop proves it has returned). Returns true when the body
  /// was contained (worker died; the window re-executes sim-side).
  bool retireHostBody(bool BodyFailed) {
    uint64_t HB0 = C.HostTr ? C.HostTr->nowNs() : 0;
    host::SliceCompletion SC = C.Completion.pop(Num);
    assert(SC.Failed == BodyFailed && "stream/completion disagree");
    (void)BodyFailed;
    foldHostCompletion(SC, HB0);
    // A failed stream without a sim-side failure means the worker itself
    // died (exception, or a cancel that raced a late finish) rather than
    // the attempt: contain it instead of running the recovery ladder.
    bool Contained = SC.Failed && !AttemptFailed;
    restoreSimPlumbing(Contained);
    if (Contained)
      containHostBody(SC);
    return Contained;
  }

  /// The replay starved past the host watchdog deadline: the worker is
  /// hung, its stream was truncated, or it died without a terminal.
  /// Cancel the body, wait (bounded) for the worker's completion record
  /// — the barrier proving its last touch of this slice — then contain.
  void containAfterStarve() {
    HostCancel.store(true, std::memory_order_seq_cst);
    ++C.Report.HostWatchdogKills;
    if (C.HostTr)
      C.HostTr->instant(C.HostTr->simLane(), obs::HostInstantKind::WatchdogKill,
                        C.HostTr->nowNs(), Num);
    if (C.Flight)
      C.Flight->recordEvent("host.watchdog", Num, Info.Attempts, C.Sched.now(),
                            "charge stream starved past " +
                                std::to_string(C.Opts.hostWatchdogDeadlineMs()) +
                                " ms; worker declared dead");
    // Generous drain bound: a cancelled worker only needs to reach its
    // next budget gate and publish its completion record. Expiry means
    // the worker is wedged beyond cooperative recovery (e.g. stuck
    // inside a tool call that never charges); the slice state it owns
    // can never be reclaimed safely, so this is fatal by design — the
    // process must not silently corrupt or deadlock instead.
    uint64_t DrainMs = C.Opts.hostWatchdogDeadlineMs() * 4 + 1000;
    uint64_t HB0 = C.HostTr ? C.HostTr->nowNs() : 0;
    host::SliceCompletion SC;
    if (!C.Completion.popFor(Num, DrainMs, SC))
      reportFatalError("slice " + std::to_string(Num) +
                       ": worker unresponsive to cancellation after " +
                       std::to_string(DrainMs) + " ms; cannot contain");
    foldHostCompletion(SC, HB0);
    // A worker that failed its attempt sim-side (terminal truncated away)
    // already re-judged its own attribution in failAttempt.
    restoreSimPlumbing(/*DeadAttempt=*/!AttemptFailed);
    containHostBody(SC);
  }

  /// Containment core: the dispatched body is dead and the worker has
  /// retired (completion popped, arena released, plumbing restored).
  /// Classifies and counts the failure, then re-executes the window on
  /// the sim thread as the SAME attempt: no retry budget is consumed, no
  /// pid is drawn, and the window's body-side counters restart from
  /// zero, so sim-fault behaviour, retry ladders, pid draws, and tool
  /// output all match the -spmp 0 run of the same seed exactly. At most
  /// one containment per slice is possible (a body is dispatched once),
  /// so this cannot loop.
  void containHostBody(const host::SliceCompletion &SC) {
    if (SC.Truncated)
      ++C.Report.HostFaultsInjected; // counted only when it actually cut
    if (SC.Exception)
      ++C.Report.HostWorkerExceptions;
    if (C.Flight)
      C.Flight->recordEvent(SC.Exception ? "host.exception" : "host.contained",
                            Num, Info.Attempts, C.Sched.now(),
                            SC.Exception ? "worker body threw; contained"
                                         : "dead body contained; window "
                                           "re-executes on the sim thread");
    if (SC.Cancelled)
      ++C.Report.HostCancelledBodies;
    ++C.Report.HostFallbackSlices;
    C.noteHostFailure();
    if (C.HostTr && (SC.Exception || SC.Cancelled))
      C.HostTr->instant(C.HostTr->simLane(),
                        SC.Exception ? obs::HostInstantKind::WorkerException
                                     : obs::HostInstantKind::BodyCancel,
                        C.HostTr->nowNs(), Num);
    // The dead body's work is waste. Its replayed charge prefix already
    // advanced this slice's virtual clock and stays charged (the honest
    // cost of the failure — virtual timing legitimately differs from a
    // clean serial run; tool output does not). Reset the window's
    // body-side counters so the re-execution recounts playback /
    // duplication / COW exactly as -spmp 0 would; only the fault-fired
    // latch survives the reset (FaultCounted stays set, so a sim fault
    // the dead body fired is still counted exactly once).
    uint64_t FaultsFired = BS.FaultsFired;
    uint64_t DeadRetired = Vm->retired();
    BS = BodyStats();
    BS.FaultsFired = FaultsFired;
    BS.WastedSliceInsts = DeadRetired;
    Info.PlayedBackSyscalls = 0;
    Info.DuplicatedSyscalls = 0;
    Ledger.charge(C.Model.SliceKillCost);
    if (Prof)
      Prof->charge(prof::Cause::RetryWaste, C.Model.SliceKillCost);
    // Rebuild from the checkpoint, reusing the dead attempt's own pid:
    // getpid is guest-visible and duplicable, so the re-execution must
    // observe exactly the pid the -spmp 0 body would have.
    uint64_t Pid = Proc.Kern.Pid;
    AttemptFailed = false;
    Vm.reset();
    ToolInst.reset();
    Services.reset();
    PrivateCache.flush();
    Proc = StartState->fork(Pid);
    Proc.Mem.setListener(this);
    Services.emplace(C.Areas, Num);
    Services->setEndSliceHook([this] { Vm->requestStop(); });
    ToolInst = C.Factory(*Services);
    Vm.emplace(Proc, C.Model, ToolInst.get(), PrivateCache,
               makeConfig(C, Num));
    ToolInst->onSliceBegin(Num);
    SysPos = 0;
    EndReached = false;
    StallTicks = 0;
    if (Prof)
      AttemptBase.emplace(*Prof); // Fresh rewind point, waste included.
    if (!Relaxed) // Dispatched routes are always Live, but stay uniform.
      installDetection();
  }

  /// Folds the body's accumulated report deltas into the run report.
  /// Runs exactly once per slice, at merge (every window reaches doMerge,
  /// including failed and drained ones), always on the sim thread.
  void flushBodyStats() {
    C.Report.PlaybackSyscalls += BS.PlaybackSyscalls;
    C.Report.DuplicatedSyscalls += BS.DuplicatedSyscalls;
    C.Report.ReexecutedSyscalls += BS.ReexecutedSyscalls;
    C.Report.SliceCowCopies += BS.SliceCowCopies;
    C.Report.WastedSliceInsts += BS.WastedSliceInsts;
    C.Report.WatchdogKills += BS.WatchdogKills;
    C.Report.PlaybackDivergences += BS.PlaybackDivergences;
    C.Report.TracesCompiled += BS.TracesCompiled;
    C.Report.CompileTicks += BS.CompileTicks;
    C.Report.TracesSeeded += BS.TracesSeeded;
    C.Report.SeedTicks += BS.SeedTicks;
    C.Report.CallsSuppressed += BS.CallsSuppressed;
    C.Report.ReduxFlushes += BS.ReduxFlushes;
    C.Report.TracesRecompiled += BS.TracesRecompiled;
    C.Report.RecompileTicks += BS.RecompileTicks;
    C.Report.ReduxSavedTicks += BS.ReduxSavedTicks;
    C.Report.SigCheckDistHist.mergeFrom(BS.SigCheckDist);
    // Sim faults fired by dispatched bodies fold in here rather than at
    // the firing point, which may be on a worker thread.
    C.Report.FaultsInjected += BS.FaultsFired;
    BS = BodyStats();
  }

  void doMerge() {
    flushBodyStats();
    // §4.5: merges run in slice order; the coordinator guarantees it.
    Ledger.charge(C.Model.MergeBaseCost +
                  C.Areas.totalBytes() * C.Model.MergePerByteCost);
    if (Prof)
      Prof->charge(prof::Cause::Merge,
                   C.Model.MergeBaseCost +
                       C.Areas.totalBytes() * C.Model.MergePerByteCost);
    ToolInst->onSliceEnd(Num);
    Services->mergeShadows();
    Info.MergeTime = C.Sched.now();
    Info.RetiredInsts = Vm->retired();
    Info.ExpectedInsts = Window->ExpectedInsts;
    Info.Attempts = Attempt + 1;
    C.Report.SliceLenHist.record(Window->ExpectedInsts);
    C.Report.SliceWaitHist.record(Info.ReadyTime - Info.SpawnTime);
    uint64_t Recs = 0;
    for (const WindowSyscall &WS : Window->Sys)
      Recs += WS.IsPlayback ? 1 : 0;
    C.Report.SliceSysRecsHist.record(Recs);
    C.Report.SliceAttemptsHist.record(Info.Attempts);
    if (C.Tr) {
      C.Tr->instant(lane(), obs::EventKind::SliceMerge, Info.MergeTime,
                    Vm->retired());
      C.Tr->counter(obs::EventKind::SlicesRetired, Info.MergeTime,
                    C.MergedCount + 1);
      C.Tr->counter(obs::EventKind::LiveForks, Info.MergeTime,
                    C.Slices.size() - (C.MergedCount + 1));
    }
    C.Report.SliceInsts += Vm->retired();
    C.Report.Signature.mergeFrom(SigSt);
    C.Report.TracesCompiled += Vm->tracesCompiled();
    C.Report.CompileTicks += Vm->compileTicks();
    C.Report.TracesSeeded += Vm->tracesSeeded();
    C.Report.SeedTicks += Vm->seedTicks();
    C.Report.CallsSuppressed += Vm->analysisCallsSuppressed();
    C.Report.ReduxFlushes += Vm->reduxFlushes();
    C.Report.TracesRecompiled += Vm->tracesRecompiled();
    C.Report.RecompileTicks += Vm->recompileTicks();
    C.Report.ReduxSavedTicks += Vm->reduxSavedTicks();
    // Coverage: how much of the window the final attempt successfully
    // instrumented. A failed attempt that overran contributes nothing
    // (its prefix cannot be trusted past the divergence point).
    uint64_t Covered;
    if (!Failed)
      Covered = std::min(Info.RetiredInsts, Info.ExpectedInsts);
    else
      Covered = Info.RetiredInsts <= Info.ExpectedInsts ? Info.RetiredInsts
                                                        : 0;
    Info.CoveredInsts = Covered;
    C.Report.CoverageInsts += Covered;
    // A window the fault machinery touched either recovered completely
    // or is explicitly a (possibly partial) loss.
    bool FaultPath =
        Failed || Quarantined || Attempt > 0 || Window->Lost || FaultCounted;
    if (FaultPath) {
      if (Covered == Info.ExpectedInsts && !Failed && !Window->Lost)
        ++C.Report.RecoveredSlices;
      else
        ++C.Report.LostSlices;
    }
    if (Route == WindowRoute::Deferred) {
      ++C.Report.DrainedSlices;
      // In-engine replay parity: a drained slice re-executed its window
      // from the fork checkpoint; exact icount match means the deferred
      // re-execution reproduced the live window.
      if (Vm->retired() == Window->ExpectedInsts)
        ++C.Report.ReplayParityOk;
    }
    C.Report.Slices.push_back(Info);
    if (C.Sink)
      C.Sink->onSliceMerged(Num, Vm->retired(), C.Areas.snapshot());
    C.sliceMerged();
  }
};

void Coordinator::sliceMerged() {
  ++MergedCount;
  ++NextMerge;
  if (NextMerge < SliceIds.size())
    Sched.wake(SliceIds[NextMerge]);
  Sched.wake(MasterId); // Possibly waiting for all merges before Fini.
}

/// The master application plus the folded-in control and timer processes.
class MasterTask final : public SimTask, vm::MemoryEventListener {
public:
  MasterTask(Coordinator &C)
      : C(C), Proc(Process::create(C.Prog)),
        Interp(C.Prog, Proc.Cpu, Proc.Mem) {
    if (C.Prof)
      Prof = &C.Prof->master();
    Proc.Mem.setListener(this);
    if (C.Tr) {
      C.Tr->setLaneName(obs::TraceRecorder::MasterLane, "master");
      C.Tr->begin(obs::TraceRecorder::MasterLane, obs::EventKind::MasterRun,
                  C.Sched.now());
    }
  }

  std::string_view name() const override { return "master"; }

  TaskStep step(Ticks Budget) override {
    Ledger.beginStep(Budget);
    CurLedger = &Ledger;
    TaskStatus St = stepImpl();
    CurLedger = nullptr;
    if (Prof)
      Prof->noteConsumed(Ledger.used());
    return {Ledger.used(), St};
  }

  void onCowCopy(uint64_t) override {
    if (CurLedger) {
      CurLedger->charge(C.Model.CowCopyPageCost);
      if (Prof)
        Prof->charge(prof::Cause::Fork, C.Model.CowCopyPageCost);
    }
    ++C.Report.MasterCowCopies;
  }
  void onPageAlloc(uint64_t) override {
    if (CurLedger) {
      CurLedger->charge(C.Model.PageAllocCost);
      if (Prof)
        Prof->charge(prof::Cause::Fork, C.Model.PageAllocCost);
    }
  }

private:
  enum class Phase : uint8_t {
    Startup,
    Running,
    Stalled,
    WaitMerges,
    Done,
  };
  enum class SpawnKind : uint8_t { None, Timeout, Boundary };

  Coordinator &C;
  Process Proc;
  Interpreter Interp;
  TickLedger Ledger;
  TickLedger *CurLedger = nullptr;
  Phase Ph = Phase::Startup;

  Ticks Deadline = 0;
  uint64_t WindowStart = 0;
  std::vector<WindowSyscall> WindowSys;
  uint64_t RecordedInWindow = 0;
  SpawnKind Pending = SpawnKind::None;
  Ticks StallStart = 0;
  /// The master's attribution lane (-spprof); null when profiling is off.
  prof::SliceProfile *Prof = nullptr;
  /// Capture record of the open window (meaningful only with C.Sink);
  /// initialized at spawnSlice, emitted and reset at finishWindow.
  SliceCaptureData PendingCap;

  TaskStatus stepImpl() {
    if (Ledger.inDebt())
      return TaskStatus::Runnable;
    while (true) {
      switch (Ph) {
      case Phase::Startup:
        allocateBubble();
        spawnSlice(/*ChargeSigRecord=*/false);
        Deadline = C.Sched.now() + effectiveSliceTicks();
        Ph = Phase::Running;
        break;
      case Phase::Running: {
        if (Pending != SpawnKind::None) {
          bool Saturated = C.RunningSlices >= C.Opts.MaxSlices;
          // A tripped breaker routes windows straight to the post-exit
          // drain, so the master never sleeps for a worker again.
          if (Saturated && !C.Opts.DeferSlices && !C.BreakerTripped) {
            Ph = Phase::Stalled;
            StallStart = C.Sched.now();
            if (C.Tr)
              C.Tr->begin(obs::TraceRecorder::MasterLane,
                          obs::EventKind::MasterStall, StallStart);
            return TaskStatus::Blocked;
          }
          // -spdefer: under saturation the just-closed window is spilled
          // (the slice parks until the post-exit drain) so the master
          // keeps running instead of sleeping.
          doPendingSpawn(/*Defer=*/Saturated);
        }
        if (C.Sched.now() >= Deadline) {
          if (Interp.instructionsRetired() > WindowStart) {
            Pending = SpawnKind::Timeout;
            continue; // Re-enter to apply the stall check.
          }
          // Empty window (master made no progress): just re-arm the timer.
          Deadline = C.Sched.now() + effectiveSliceTicks();
        }
        if (!Ledger.hasBudget())
          return TaskStatus::Runnable;
        runChunk();
        break;
      }
      case Phase::Stalled:
        // Woken: a slice finished (or merged). Account the sleep.
        C.Report.SleepTicks += C.Sched.now() - StallStart;
        if (C.Tr)
          C.Tr->end(obs::TraceRecorder::MasterLane,
                    obs::EventKind::MasterStall, C.Sched.now());
        Ph = Phase::Running;
        break;
      case Phase::WaitMerges:
        if (!C.allMerged())
          return TaskStatus::Blocked;
        runFini();
        Ph = Phase::Done;
        return TaskStatus::Exited;
      case Phase::Done:
        return TaskStatus::Exited;
      }
    }
  }

  Ticks effectiveSliceTicks() const {
    uint64_t Ms = C.Opts.SliceMs;
    if (C.Opts.AdaptiveSlices && C.Opts.AppDurationHintMs > 0) {
      // §8 future work: shrink slices near the expected end so the final
      // pipeline drain is short.
      uint64_t Elapsed = C.Model.ticksToMs(C.Sched.now());
      uint64_t Remain = C.Opts.AppDurationHintMs > Elapsed
                            ? C.Opts.AppDurationHintMs - Elapsed
                            : 0;
      uint64_t Target = Remain / (C.Opts.MaxSlices ? C.Opts.MaxSlices : 1);
      if (Target < C.Opts.MinSliceMs)
        Target = C.Opts.MinSliceMs;
      if (Target < Ms)
        Ms = Target;
    }
    return C.Model.msTicks(Ms);
  }

  void allocateBubble() {
    // §4.1: materialize the bubble pages so they are part of every fork's
    // page table and the slices can release them.
    for (uint64_t P = 0; P != SpBubblePages; ++P)
      Proc.Mem.write64(AddressLayout::BubbleBase + P * vm::PageSize, 0);
  }

  void runChunk() {
    uint64_t MaxInsts = Ledger.remaining() / C.InstCost;
    if (MaxInsts == 0)
      MaxInsts = 1;
    RunResult R;
    if (Proc.quantumExpired()) {
      R = Interp.runToBlockEnd(MaxInsts);
    } else {
      if (MaxInsts > Proc.quantumLeft())
        MaxInsts = Proc.quantumLeft(); // guest-thread quantum
      R = Interp.run(MaxInsts);
    }
    Proc.noteRetired(R.InstsExecuted);
    Ledger.charge(R.InstsExecuted * C.InstCost);
    if (Prof)
      Prof->noteNative(R.InstsExecuted * C.InstCost);
    C.Report.NativeTicks += R.InstsExecuted * C.InstCost;
    switch (R.Reason) {
    case StopReason::Syscall:
      handleSyscall();
      break;
    case StopReason::Halt:
    case StopReason::BadPc:
      reportFatalError("master: guest fault in '" + C.Prog.Name + "'");
    case StopReason::Budget:
    case StopReason::BlockEnd:
      break;
    }
    if (Proc.quantumExpired() && (R.Reason == StopReason::BlockEnd ||
                                  R.Reason == StopReason::Syscall ||
                                  R.EndedAtBlockBoundary))
      Proc.rotateThread();
  }

  void handleSyscall() {
    uint64_t Number = pendingSyscallNumber(Proc);
    // Prefer the static site classification (the pc still points at the
    // unexecuted syscall instruction). Behavior-neutral by construction:
    // the class is taken from the map only when the statically resolved
    // number matches what actually trapped, so it is identical to what
    // classifySyscall would return.
    SyscallClass Cls;
    const SyscallSite *Site = C.SysMap ? C.SysMap->site(Proc.Cpu.Pc) : nullptr;
    if (Site && Site->NumberKnown && Site->Number == Number) {
      Cls = Site->Class;
      ++C.Report.PredictedSyscallSites;
    } else {
      Cls = classifySyscall(Number);
      ++C.Report.TrapClassifiedSyscalls;
    }
    // The syscall instruction + kernel service are native work; the
    // ptrace stop is control overhead (lands in the fork&others residual).
    Ledger.charge(C.InstCost + C.Model.SyscallCost);
    C.Report.NativeTicks += C.InstCost + C.Model.SyscallCost;
    Ledger.charge(C.Model.PtraceStopCost);
    if (Prof) {
      Prof->noteNative(C.InstCost + C.Model.SyscallCost);
      Prof->charge(prof::Cause::Fork, C.Model.PtraceStopCost);
    }
    ++C.Report.MasterSyscalls;

    SystemContext Ctx;
    Ctx.NowMs = C.Sched.nowMs();
    Ctx.OutputBuf = &C.Report.Output;
    Ctx.Trace = C.Tr;
    Ctx.TraceLane = obs::TraceRecorder::MasterLane;
    Ctx.TraceNow = C.Sched.now();

    switch (Cls) {
    case SyscallClass::Duplicable: {
      // The live window only needs the number (slices re-execute), but a
      // capture also records the effects so replay can validate its
      // duplicated results against the master's.
      SyscallEffects Eff;
      serviceSyscall(Proc, Ctx, C.Sink ? &Eff : nullptr);
      Interp.noteSyscallRetired();
      Proc.noteRetired(1);
      WindowSyscall WS;
      WS.IsPlayback = false;
      WS.Effects.Number = Number;
      WindowSys.push_back(std::move(WS));
      captureSyscall(CapturedSysKind::Duplicate, std::move(Eff));
      break;
    }
    case SyscallClass::Replayable: {
      bool CanRecord = C.Opts.MaxSysRecs > 0 &&
                       RecordedInWindow < C.Opts.MaxSysRecs;
      SyscallEffects Eff;
      serviceSyscall(Proc, Ctx, CanRecord || C.Sink ? &Eff : nullptr);
      Interp.noteSyscallRetired();
      Proc.noteRetired(1);
      if (CanRecord) {
        Ledger.charge(C.Model.SyscallRecordCost);
        if (Prof)
          Prof->charge(prof::Cause::SysPlayback, C.Model.SyscallRecordCost);
        if (C.Tr)
          C.Tr->instant(obs::TraceRecorder::MasterLane,
                        obs::EventKind::SysRecord, C.Sched.now(), Number);
        captureSyscall(CapturedSysKind::Playback, Eff);
        WindowSyscall WS;
        WS.IsPlayback = true;
        WS.Effects = std::move(Eff);
        // Digest at record time (host-side, charges nothing): the
        // playback end verifies the record against this.
        if (C.Fault)
          WS.Check = hashSyscallEffects(WS.Effects);
        WindowSys.push_back(std::move(WS));
        ++RecordedInWindow;
        ++C.Report.RecordedSyscalls;
      } else {
        // §4.2: recording disabled or over -spsysrecs: force a new slice.
        // The capture keeps the effects anyway: they are the boundary
        // syscall's outcome, which replay plays back to rebuild the
        // master past the window.
        ++C.Report.ForcedSliceSyscalls;
        Pending = SpawnKind::Boundary;
        captureSyscall(CapturedSysKind::Boundary, std::move(Eff));
      }
      break;
    }
    case SyscallClass::ForceSlice: {
      SyscallEffects Eff;
      serviceSyscall(Proc, Ctx, C.Sink ? &Eff : nullptr);
      Interp.noteSyscallRetired();
      Proc.noteRetired(1);
      ++C.Report.ForcedSliceSyscalls;
      Pending = SpawnKind::Boundary;
      captureSyscall(CapturedSysKind::Boundary, std::move(Eff));
      break;
    }
    case SyscallClass::Exit: {
      SyscallEffects Eff;
      serviceSyscall(Proc, Ctx, &Eff);
      Interp.noteSyscallRetired();
      Proc.noteRetired(1);
      if (C.Tr) // The exit records like any §4.2 playback entry.
        C.Tr->instant(obs::TraceRecorder::MasterLane,
                      obs::EventKind::SysRecord, C.Sched.now(), Number);
      captureSyscall(CapturedSysKind::Playback, Eff);
      WindowSyscall WS;
      WS.IsPlayback = true;
      WS.Effects = std::move(Eff);
      if (C.Fault)
        WS.Check = hashSyscallEffects(WS.Effects);
      WindowSys.push_back(std::move(WS));
      ++C.Report.RecordedSyscalls;
      finishWindow(SliceWindow::End::AppExit, SliceSignature());
      C.Report.MasterInsts = Interp.instructionsRetired();
      C.Report.MasterExitTicks = C.Sched.now();
      C.Report.ExitCode = Proc.ExitCode;
      if (C.Tr)
        C.Tr->end(obs::TraceRecorder::MasterLane, obs::EventKind::MasterRun,
                  C.Report.MasterExitTicks, Interp.instructionsRetired());
      Ph = Phase::WaitMerges;
      C.MasterExited = true;
      if (C.Opts.DeferSlices || C.HasParkedFailures)
        C.startDrain();
      break;
    }
    }
  }

  /// Appends one syscall to the open window's capture record. Non-playback
  /// entries are capture-only extra recording work, charged like a §4.2
  /// record so -sprecord overhead shows up in virtual time.
  void captureSyscall(CapturedSysKind Kind, SyscallEffects Eff) {
    if (!C.Sink)
      return;
    if (Kind != CapturedSysKind::Playback) {
      Ledger.charge(C.Model.SyscallRecordCost);
      if (Prof)
        Prof->charge(prof::Cause::SysPlayback, C.Model.SyscallRecordCost);
    }
    CapturedSyscall CS;
    CS.Kind = Kind;
    CS.Effects = std::move(Eff);
    PendingCap.Sys.push_back(std::move(CS));
  }

  void doPendingSpawn(bool Defer = false) {
    SpawnKind Kind = Pending;
    Pending = SpawnKind::None;
    if (Kind == SpawnKind::Timeout) {
      SliceSignature Sig =
          recordSignature(Proc, C.Opts.MemSignature);
      finishWindow(SliceWindow::End::Signature, std::move(Sig), Defer);
      spawnSlice(/*ChargeSigRecord=*/true);
      ++C.Report.TimeoutSlices;
    } else {
      finishWindow(SliceWindow::End::SyscallBoundary, SliceSignature(),
                   Defer);
      spawnSlice(/*ChargeSigRecord=*/false);
      ++C.Report.SyscallSlices;
    }
    Deadline = C.Sched.now() + effectiveSliceTicks();
  }

  static SliceEndKind endKindOf(SliceWindow::End E) {
    switch (E) {
    case SliceWindow::End::Signature:
      return SliceEndKind::Signature;
    case SliceWindow::End::SyscallBoundary:
      return SliceEndKind::SyscallBoundary;
    case SliceWindow::End::AppExit:
      break;
    }
    return SliceEndKind::AppExit;
  }

  /// Closes the current window and hands it to the last spawned slice.
  /// \p Defer parks the slice for the post-exit drain (-spdefer) and
  /// charges the spill serialization instead of a master sleep. A tripped
  /// circuit breaker overrides both and quarantines the window.
  void finishWindow(SliceWindow::End EndKind, SliceSignature Sig,
                    bool Defer = false) {
    assert(!C.Slices.empty() && "no slice owns the open window");
    ++C.ClosedWindows;
    WindowRoute Route = WindowRoute::Live;
    if (C.Fault && C.BreakerTripped)
      Route = WindowRoute::Quarantine;
    else if (Defer)
      Route = WindowRoute::Deferred;
    SliceWindow W;
    W.Sys = std::move(WindowSys);
    W.EndKind = EndKind;
    W.Sig = std::move(Sig);
    W.ExpectedInsts = Interp.instructionsRetired() - WindowStart;
    if (Route != WindowRoute::Live) {
      // Spill cost: fixed bookkeeping plus serializing the signature
      // (~116 words) and every recorded effect.
      uint64_t Bytes = 960;
      for (const WindowSyscall &WS : W.Sys)
        Bytes += WS.Effects.sizeBytes();
      Ledger.charge(C.Model.SpillSliceCost +
                    Bytes * C.Model.SpillPerByteCost);
      if (Prof)
        Prof->charge(prof::Cause::Fork,
                     C.Model.SpillSliceCost + Bytes * C.Model.SpillPerByteCost);
      if (Route == WindowRoute::Deferred) {
        ++C.Report.SpilledSlices;
        ++C.DeferBacklogCount;
        if (C.Tr) {
          C.Tr->instant(obs::TraceRecorder::MasterLane,
                        obs::EventKind::DeferSpill, C.Sched.now(),
                        C.Slices.size() - 1);
          C.Tr->counter(obs::EventKind::DeferBacklog, C.Sched.now(),
                        C.DeferBacklogCount);
        }
      }
    }
    if (C.Sink) {
      PendingCap.EndKind = endKindOf(EndKind);
      PendingCap.Spilled = Route == WindowRoute::Deferred;
      PendingCap.ExpectedInsts = W.ExpectedInsts;
      PendingCap.Sig = W.Sig;
      C.Sink->onWindowCaptured(std::move(PendingCap));
      PendingCap = SliceCaptureData();
    }
    C.Slices.back()->completeWindow(std::move(W), Route);
    WindowStart = Interp.instructionsRetired();
    WindowSys.clear();
    RecordedInWindow = 0;
  }

  void spawnSlice(bool ChargeSigRecord) {
    // §6.3 fork overhead: base cost plus the page-table copy.
    Ledger.charge(C.Model.ForkBaseCost +
                  Proc.Mem.numPages() * C.Model.ForkPerPageCost);
    if (Prof)
      Prof->charge(prof::Cause::Fork,
                   C.Model.ForkBaseCost +
                       Proc.Mem.numPages() * C.Model.ForkPerPageCost);
    uint32_t Num = static_cast<uint32_t>(C.Slices.size());
    if (C.Tr)
      C.Tr->instant(obs::TraceRecorder::MasterLane, obs::EventKind::SliceFork,
                    C.Sched.now(), Num);
    auto Slice = std::make_unique<SliceTask>(
        C, Proc, Num, Interp.instructionsRetired(), ChargeSigRecord);
    C.Slices.push_back(Slice.get());
    C.SliceIds.push_back(C.Sched.addTask(std::move(Slice)));
    ++C.Report.NumSlices;
    if (C.Tr) // Live forks: forked-so-far minus merged-so-far.
      C.Tr->counter(obs::EventKind::LiveForks, C.Sched.now(),
                    C.Slices.size() - C.MergedCount);
    if (C.Sink) {
      PendingCap = SliceCaptureData();
      PendingCap.Num = Num;
      PendingCap.StartIndex = Interp.instructionsRetired();
      PendingCap.StartStateHash =
          hashMachineState(Proc, Interp.instructionsRetired());
    }
  }

  void runFini() {
    SliceServices FiniServices(C.Areas, static_cast<uint32_t>(C.Slices.size()),
                               /*FiniMode=*/true);
    std::unique_ptr<Tool> FiniTool = C.Factory(FiniServices);
    RawStringOstream OS(C.Report.FiniOutput);
    FiniTool->onFini(OS);
  }
};

} // namespace

SpRunReport spin::sp::runSuperPin(const Program &Prog,
                                  const ToolFactory &Factory,
                                  const SpOptions &Opts,
                                  const CostModel &Model) {
  // Ahead-of-time analysis (shared by both execution modes). Built once
  // per run; the engine only reads it.
  std::optional<analysis::ProgramAnalysis> Static;
  if (Opts.StaticSyscallPrediction || Opts.StaticTraceSeed || Opts.Redux)
    Static.emplace(analysis::analyzeProgram(Prog));
  // Loop forest + block redundancy classification (-spredux), derived from
  // the shared static CFG. Outlives both execution modes below.
  std::optional<analysis::RedundancyInfo> Redux;
  if (Opts.Redux)
    Redux.emplace(Static->G);

  if (!Opts.Enabled) {
    // -sp 0: degrade to traditional serial Pin (paper Section 5) and
    // express the outcome in SpRunReport terms.
    Ticks InstCost = static_cast<Ticks>(
        std::llround(Opts.Cpi * static_cast<double>(Model.TicksPerInst)));
    PinVmConfig Config;
    if (Opts.StaticTraceSeed)
      Config.SeedCfg = &Static->G;
    if (Redux)
      Config.Redux = &*Redux;
    if (Opts.Profile)
      Config.Prof = &Opts.Profile->master();
    pin::RunReport Serial =
        pin::runSerialPin(Prog, Model, InstCost, Factory, Config);
    SpRunReport Report;
    Report.WallTicks = Serial.WallTicks;
    Report.MasterExitTicks = Serial.WallTicks;
    Report.NativeTicks = Serial.WallTicks;
    Report.MasterInsts = Serial.Insts;
    Report.SliceInsts = Serial.Insts;
    Report.CoverageInsts = Serial.Insts; // Serial Pin instruments all.
    Report.MasterSyscalls = Serial.Syscalls;
    Report.ExitCode = Serial.ExitCode;
    Report.Output = std::move(Serial.Output);
    Report.FiniOutput = std::move(Serial.FiniOutput);
    Report.TracesCompiled = Serial.TracesCompiled;
    Report.CompileTicks = Serial.CompileTicks;
    Report.TracesSeeded = Serial.TracesSeeded;
    Report.SeedTicks = Serial.SeedTicks;
    Report.CallsSuppressed = Serial.CallsSuppressed;
    Report.ReduxFlushes = Serial.ReduxFlushes;
    Report.TracesRecompiled = Serial.TracesRecompiled;
    Report.RecompileTicks = Serial.RecompileTicks;
    Report.ReduxSavedTicks = Serial.ReduxSavedTicks;
    if (Static)
      Report.StaticSyscallSites = Static->SyscallSites.numSites();
    Report.PeakParallelism = 1;
    return Report;
  }

  SpRunReport Report;
  Scheduler Sched(Model, Opts.PhysCpus, Opts.VirtCpus);
  Coordinator C(Sched, Model, Opts, Prog, Factory, Report);
  C.Sink = Opts.Capture;
  C.Tr = Opts.Trace;
  C.Prof = Opts.Profile;
  // -spflightrec: arm the postmortem recorder. When no -sptrace recorder
  // was attached, keep an engine-internal ring so a triggered bundle still
  // carries the retained trace window (emission charges no virtual time,
  // so arming stays tick-identical).
  std::optional<obs::FlightRecorder> Flight;
  std::optional<obs::TraceRecorder> FlightTrace;
  if (!Opts.FlightDir.empty()) {
    Flight.emplace(Opts.FlightDir, Model.TicksPerMs);
    C.Flight = &*Flight;
    if (!C.Tr) {
      FlightTrace.emplace();
      C.Tr = &*FlightTrace;
    }
  }
  // Normalize: a disabled plan is exactly like no plan, so the whole
  // recovery apparatus stays inert and flags-off runs are byte-identical.
  C.Fault = Opts.Fault && Opts.Fault->enabled() ? Opts.Fault : nullptr;
  // -spmp: bring up the host worker pool. The pool never affects the
  // virtual timeline (bodies record, the sim thread replays), so every
  // worker count produces the same report modulo the Host* telemetry.
  if (Opts.HostWorkers != 0) {
    bool Clamped = false;
    unsigned N = Opts.HostWorkers == SpOptions::HostWorkersAuto
                     ? host::WorkerPool::clampWorkers(~0u)
                     : host::WorkerPool::clampWorkers(Opts.HostWorkers,
                                                      &Clamped);
    if (Clamped)
      errs() << "superpin: -spmp " << Opts.HostWorkers << " clamped to " << N
             << " (4x hardware concurrency); more threads than that only "
                "add scheduling overhead\n";
    // Host watchdog: how long the sim thread lets a dispatched body's
    // charge stream starve before declaring the worker dead. 0 = derive
    // from the slice length and virtual watchdog margin (SpOptions);
    // HostWatchdogOff = untimed waits and no cancellation plumbing.
    C.HostWatchdogNs = Opts.HostWatchdogMs == SpOptions::HostWatchdogOff
                           ? 0
                           : Opts.hostWatchdogDeadlineMs() * 1'000'000ull;
    if (Opts.HostTrace) {
      // Lanes must exist before the first pool thread starts; the sim
      // thread binds to the extra lane for its merge-side spans.
      C.HostTr = Opts.HostTrace;
      C.HostTr->initLanes(N);
      C.HostTr->bindThread(C.HostTr->simLane());
      C.HostTr->laneStarted(C.HostTr->simLane(), C.HostTr->nowNs());
    }
    C.Pool = std::make_unique<host::WorkerPool>(N, Opts.HostJobHook, C.HostTr);
    Report.HostWorkers = C.Pool->size();
    Report.HostWorkerTable.resize(C.Pool->size());
    for (unsigned W = 0; W != C.Pool->size(); ++W)
      Report.HostWorkerTable[W].Worker = W;
  }
  if (C.Tr)
    Sched.setTrace(C.Tr);
  if (C.Sink)
    C.Sink->onRunBegin(Prog, Opts);
  if (Static) {
    Report.StaticSyscallSites = Static->SyscallSites.numSites();
    if (Opts.StaticSyscallPrediction)
      C.SysMap = &Static->SyscallSites;
    if (Opts.StaticTraceSeed)
      C.SeedCfg = &Static->G;
    if (Redux)
      C.Redux = &*Redux;
  }
  C.MasterId = Sched.addTask(std::make_unique<MasterTask>(C));
  Sched.runToCompletion();

  // Tear the pool down before finalizing the report: the joins publish
  // every worker lane, after which the merged wall-clock attribution can
  // be folded in (worker idle overlapping sim blocked spans = merge-wait).
  if (C.Pool) {
    // Exceptions that escaped a body wrapper (e.g. thrown while publishing
    // the completion) are caught at the pool lane level; fold them in so
    // the report never silently under-counts worker deaths.
    Report.HostWorkerExceptions += C.Pool->exceptionsCaught();
    C.Pool.reset();
    if (C.HostTr) {
      C.HostTr->laneStopped(C.HostTr->simLane(), C.HostTr->nowNs());
      Report.HostAttr = C.HostTr->attribution();
      for (const obs::HostLaneAttribution &L : Report.HostAttr.Workers)
        Report.HostUtilizationHist.record(
            static_cast<uint64_t>(L.utilizationPct() + 0.5));
    }
  }

  Report.WallTicks = Sched.now();
  Report.PipelineTicks = Report.WallTicks - Report.MasterExitTicks;
  Ticks Accounted = Report.NativeTicks + Report.SleepTicks;
  Report.ForkOthersTicks = Report.MasterExitTicks > Accounted
                               ? Report.MasterExitTicks - Accounted
                               : 0;
  Report.PeakParallelism = Sched.peakParallelism();

  // Partition invariant: slice windows must tile the master's dynamic
  // instruction stream exactly (SP_EndSlice gaps, §4.4 false positives,
  // and unrecovered faults legitimately break this; the report records
  // it, and CoverageInsts quantifies the gap).
  uint64_t Cursor = 0;
  for (const SliceInfo &S : Report.Slices) {
    if (S.StartIndex != Cursor || S.RetiredInsts != S.ExpectedInsts)
      Report.PartitionOk = false;
    Cursor = S.StartIndex + S.ExpectedInsts;
  }
  if (Cursor != Report.MasterInsts)
    Report.PartitionOk = false;

  // Trace-ring telemetry: fold the recorders' drop counts into the report
  // (exported as obs.trace.dropped / host.trace.droppedspans, gated on the
  // attachment flags so the default counter-name set is unchanged).
  if (C.Tr) {
    Report.TraceAttached = true;
    Report.TraceDropped = C.Tr->dropped();
  }
  if (C.HostTr) {
    Report.HostTraceAttached = true;
    Report.HostTraceDropped = C.HostTr->droppedSpans();
  }

  // Postmortem bundle (-spflightrec): a containment event, breaker trip,
  // or watchdog kill armed the recorder during the run; now that the full
  // report exists, dump the evidence and name the directory on stderr.
  if (Flight && Flight->triggered()) {
    StatisticRegistry Stats;
    exportStatistics(Report, Stats);
    Flight->writeCounters(Stats);
    if (C.Tr)
      Flight->writeTrace(*C.Tr, C.HostTr);
    Flight->writeDoctor(obs::diagnose(doctorInput(Report, Opts)));
    Flight->writeManifest();
    if (!Flight->error().empty())
      errs() << "superpin: flight recorder: " << Flight->error() << "\n";
    else
      errs() << "superpin: flight recorder bundle written to '"
             << Flight->dir() << "' (" << Flight->eventCount()
             << " events)\n";
  }

  if (C.Sink)
    C.Sink->onRunEnd(Report);
  return Report;
}
