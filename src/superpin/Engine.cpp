//===- superpin/Engine.cpp - The SuperPin runtime -------------------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Structure: runSuperPin builds a Coordinator (shared run state), a
// MasterTask, and — as the master executes — SliceTasks, all scheduled on
// the discrete-time multiprocessor.
//
// The MasterTask folds the paper's control and timer processes into the
// master's own step loop (their decisions happen at master syscall stops
// and timeouts; their costs are charged to the master), which is
// semantically equivalent to separate ptrace-attached processes and keeps
// the simulation deterministic (see DESIGN.md §5).
//
//===----------------------------------------------------------------------===//

#include "superpin/Engine.h"

#include "analysis/Passes.h"
#include "obs/TraceRecorder.h"
#include "os/Kernel.h"
#include "os/Process.h"
#include "os/Scheduler.h"
#include "pin/PinVm.h"
#include "pin/Runner.h"
#include "superpin/Capture.h"
#include "superpin/SharedAreas.h"
#include "support/ErrorHandling.h"
#include "support/RawOstream.h"
#include "vm/Interpreter.h"

#include <cassert>
#include <cmath>
#include <optional>

using namespace spin;
using namespace spin::os;
using namespace spin::pin;
using namespace spin::sp;
using namespace spin::vm;

namespace {

/// One syscall the master performed inside a slice's window: either a
/// recorded-effects playback entry or a "re-execute it yourself" marker
/// for duplicable calls.
struct WindowSyscall {
  bool IsPlayback;
  SyscallEffects Effects; ///< Number always valid; full effects if playback
};

/// Everything a slice needs to replay its window and find its end.
struct SliceWindow {
  std::vector<WindowSyscall> Sys;
  enum class End : uint8_t { Signature, SyscallBoundary, AppExit } EndKind;
  SliceSignature Sig; ///< valid for End::Signature
  uint64_t ExpectedInsts = 0;
};

class SliceTask;

/// Shared mutable state of one SuperPin run.
struct Coordinator {
  Coordinator(Scheduler &Sched, const CostModel &Model, const SpOptions &Opts,
              const Program &Prog, const ToolFactory &Factory,
              SpRunReport &Report)
      : Sched(Sched), Model(Model), Opts(Opts), Prog(Prog), Factory(Factory),
        Report(Report),
        InstCost(static_cast<Ticks>(
            std::llround(Opts.Cpi * static_cast<double>(Model.TicksPerInst)))) {
  }

  Scheduler &Sched;
  const CostModel &Model;
  const SpOptions &Opts;
  const Program &Prog;
  const ToolFactory &Factory;
  SpRunReport &Report;
  Ticks InstCost;

  SharedAreaRegistry Areas;
  SharedJitRegistry SharedJit;

  /// Static syscall-site map (SpOptions::StaticSyscallPrediction); null
  /// when prediction is disabled.
  const os::StaticSyscallMap *SysMap = nullptr;
  /// Static CFG used to seed slice code caches
  /// (SpOptions::StaticTraceSeed); null when seeding is disabled.
  const analysis::Cfg *SeedCfg = nullptr;

  /// Capture sink (-sprecord); null when capture is off.
  CaptureSink *Sink = nullptr;

  /// Trace recorder (-sptrace); null when tracing is off. Emission charges
  /// no virtual time, so traced runs stay tick-identical to untraced ones.
  obs::TraceRecorder *Tr = nullptr;

  Scheduler::TaskId MasterId = 0;
  std::vector<SliceTask *> Slices;
  std::vector<Scheduler::TaskId> SliceIds;
  uint32_t RunningSlices = 0;
  uint32_t NextMerge = 0;
  uint32_t MergedCount = 0;
  uint64_t NextPid = 2;
  /// True once the master exited and deferred slices may run (-spdefer).
  bool Draining = false;

  bool allMerged() const { return MergedCount == Slices.size(); }

  void sliceEnded() {
    assert(RunningSlices > 0 && "slice end underflow");
    --RunningSlices;
    Sched.wake(MasterId); // Possibly stalled at -spmp.
  }

  /// Master exited: release every deferred slice into the pipeline phase.
  void startDrain() {
    Draining = true;
    for (Scheduler::TaskId Id : SliceIds)
      Sched.wake(Id);
  }

  void sliceMerged();
};

/// An instrumented timeslice (paper Section 3): a COW fork of the master
/// executing under its own Pin VM and tool instance.
class SliceTask final : public SimTask, vm::MemoryEventListener {
public:
  SliceTask(Coordinator &C, const Process &Master, uint32_t Num,
            uint64_t StartIndex, bool ChargeSigRecord)
      : C(C), Num(Num), Proc(Master.fork(C.NextPid++)),
        Services(C.Areas, Num), ToolInst(C.Factory(Services)),
        Vm(Proc, C.Model, ToolInst.get(),
           PrivateCache, makeConfig(C, Num)),
        Label("slice-" + std::to_string(Num)) {
    Info.Num = Num;
    Info.StartIndex = StartIndex;
    Info.SpawnTime = C.Sched.now();
    if (C.Tr) {
      C.Tr->setLaneName(lane(), Label);
      C.Tr->begin(lane(), obs::EventKind::SliceSleep, Info.SpawnTime);
    }
    Proc.Mem.setListener(this);
    // §4.1: the slice releases the memory bubble so its VM allocations
    // land there, preserving identical app mappings with the master.
    Proc.Mem.discardRange(AddressLayout::BubbleBase,
                          SpBubblePages * vm::PageSize);
    Services.setEndSliceHook([this] { Vm.requestStop(); });
    ToolInst->onSliceBegin(Num);
    if (ChargeSigRecord)
      Ledger.charge(C.Model.SigRecordCost); // §4.4 recording mode
  }

  std::string_view name() const override { return Label; }

  /// Called by the master when this slice's window closes; wakes the
  /// task. Only from this point on does the slice count as "running" for
  /// the -spmp stall limit (a slice sleeping for its window consumes no
  /// CPU, matching the paper's "maximum number of running slices").
  ///
  /// With \p Deferred set (-spdefer under saturation) the window is
  /// parked instead: the slice does not count as running and stays
  /// blocked until Coordinator::startDrain() after the master exits. The
  /// COW fork taken at spawn time acts as the slice's checkpoint, so
  /// draining re-executes exactly the state a live run would have.
  void completeWindow(SliceWindow W, bool Deferred) {
    assert(!Window && "window completed twice");
    Window.emplace(std::move(W));
    DeferredSlice = Deferred;
    if (Deferred)
      return;
    Info.ReadyTime = C.Sched.now();
    if (C.Tr) {
      C.Tr->end(lane(), obs::EventKind::SliceSleep, Info.ReadyTime);
      C.Tr->begin(lane(), obs::EventKind::SliceRun, Info.ReadyTime);
    }
    ++C.RunningSlices;
    C.Sched.wake(C.SliceIds[Num]);
  }

  TaskStep step(Ticks Budget) override {
    Ledger.beginStep(Budget);
    CurLedger = &Ledger;
    TaskStatus St = stepImpl();
    CurLedger = nullptr;
    return {Ledger.used(), St};
  }

  void onCowCopy(uint64_t) override {
    if (CurLedger)
      CurLedger->charge(C.Model.CowCopyPageCost);
    ++C.Report.SliceCowCopies;
  }
  void onPageAlloc(uint64_t) override {
    if (CurLedger)
      CurLedger->charge(C.Model.PageAllocCost);
  }

private:
  enum class Phase : uint8_t { WaitWindow, Running, WaitMerge, Drain };

  Coordinator &C;
  uint32_t Num;
  Process Proc;
  SliceServices Services;
  std::unique_ptr<Tool> ToolInst;
  CodeCache PrivateCache;
  PinVm Vm;
  std::string Label;
  TickLedger Ledger;
  TickLedger *CurLedger = nullptr;
  Phase Ph = Phase::WaitWindow;
  std::optional<SliceWindow> Window;
  size_t SysPos = 0;
  SignatureStats SigSt;
  SliceInfo Info;
  bool EndReached = false;
  bool DeferredSlice = false;
  bool SigSearchOpen = false; ///< an open SigSearch trace span

  uint32_t lane() const { return obs::TraceRecorder::sliceLane(Num); }

  static PinVmConfig makeConfig(Coordinator &C, uint32_t Num) {
    PinVmConfig Cfg;
    Cfg.InstCost = C.InstCost;
    Cfg.SliceNum = Num;
    if (C.Opts.SharedCodeCache)
      Cfg.SharedJit = &C.SharedJit;
    Cfg.SeedCfg = C.SeedCfg; // null unless -spseed
    if (C.Tr) {
      Cfg.Trace = C.Tr;
      Cfg.TraceLane = obs::TraceRecorder::sliceLane(Num);
      Scheduler &Sched = C.Sched;
      Cfg.TraceClock = [&Sched] { return Sched.now(); };
    }
    return Cfg;
  }

  TaskStatus stepImpl() {
    if (Ledger.inDebt())
      return TaskStatus::Runnable; // Paying off an expensive action.
    while (true) {
      switch (Ph) {
      case Phase::WaitWindow:
        if (!Window || (DeferredSlice && !C.Draining))
          return TaskStatus::Blocked;
        if (DeferredSlice) {
          Info.ReadyTime = C.Sched.now(); // Drain start = resume moment.
          if (C.Tr) {
            C.Tr->end(lane(), obs::EventKind::SliceSleep, Info.ReadyTime);
            C.Tr->instant(lane(), obs::EventKind::DeferDrain, Info.ReadyTime,
                          Num);
            C.Tr->begin(lane(), obs::EventKind::SliceRun, Info.ReadyTime);
          }
        }
        installDetection();
        Ph = Phase::Running;
        break;
      case Phase::Running:
        runSlice();
        if (!EndReached)
          return TaskStatus::Runnable; // Budget exhausted.
        Info.EndTime = C.Sched.now();
        if (C.Tr)
          C.Tr->end(lane(), obs::EventKind::SliceRun, Info.EndTime,
                    Vm.retired());
        if (!DeferredSlice)
          C.sliceEnded(); // Deferred slices never counted as running.
        Ph = Phase::WaitMerge;
        break;
      case Phase::WaitMerge:
        if (C.NextMerge != Num)
          return TaskStatus::Blocked;
        doMerge();
        Ph = Phase::Drain;
        break;
      case Phase::Drain:
        return Ledger.inDebt() ? TaskStatus::Runnable : TaskStatus::Exited;
      }
    }
  }

  void installDetection() {
    if (Window->EndKind != SliceWindow::End::Signature)
      return;
    Vm.armDetection(Window->Sig.Pc, [this](TickLedger &L) {
      // Detection is meaningless while recorded syscalls are pending: the
      // boundary state includes their effects. The check instrumentation
      // still executes (and is charged) as in the paper.
      if (SysPos != Window->Sys.size()) {
        if (C.Opts.QuickCheck) {
          L.charge(C.Model.InlinedCheckCost);
          ++SigSt.QuickChecks;
        } else {
          L.charge(C.Model.SigFullCheckCost);
          ++SigSt.FullChecks;
        }
        return false;
      }
      if (C.Tr && !SigSearchOpen) {
        SigSearchOpen = true;
        C.Tr->begin(lane(), obs::EventKind::SigSearch, C.Sched.now());
      }
      uint64_t Ret = Vm.retired();
      uint64_t Exp = Window->ExpectedInsts;
      C.Report.SigCheckDistHist.record(Exp > Ret ? Exp - Ret : Ret - Exp);
      return checkSignature(Window->Sig, Proc, C.Model, C.Opts.QuickCheck,
                            Vm.runCapRemaining(), L, SigSt);
    });
  }

  void runSlice() {
    while (Ledger.hasBudget() && !EndReached) {
      // A zero cap drains the current basic block before InstCap.
      Vm.setRunCap(Proc.quantumExpired() ? 0 : Proc.quantumLeft());
      uint64_t Before = Vm.retired();
      VmStop Stop = Vm.run(Ledger);
      Proc.noteRetired(Vm.retired() - Before);
      switch (Stop) {
      case VmStop::Budget:
        return;
      case VmStop::InstCap:
        break; // Quantum boundary at a block end; rotate below.
      case VmStop::Detected:
        endSlice(SliceEndKind::Signature);
        break;
      case VmStop::ToolStop:
        endSlice(SliceEndKind::ToolStop);
        break;
      case VmStop::Syscall:
        handleSyscall();
        break;
      case VmStop::BadPc:
        reportFatalError("slice " + std::to_string(Num) +
                         ": control left the text segment (divergence)");
      }
      if (Proc.quantumExpired() && !EndReached &&
          (Stop == VmStop::InstCap || Stop == VmStop::Syscall)) {
        Proc.rotateThread();
        Vm.noteContextSwitch();
      }
    }
  }

  void handleSyscall() {
    uint64_t Number = pendingSyscallNumber(Proc);
    ToolInst->onSyscall(Number);
    if (SysPos < Window->Sys.size()) {
      WindowSyscall &WS = Window->Sys[SysPos++];
      if (WS.Effects.Number != Number)
        reportFatalError("slice " + std::to_string(Num) +
                         ": syscall sequence diverged from master");
      if (WS.IsPlayback) {
        playbackSyscall(Proc, WS.Effects);
        Ledger.charge(C.InstCost + C.Model.SyscallPlaybackCost);
        ++Info.PlayedBackSyscalls;
        ++C.Report.PlaybackSyscalls;
        if (C.Tr)
          C.Tr->instant(lane(), obs::EventKind::SysPlayback, C.Sched.now(),
                        WS.Effects.Number);
      } else {
        // Duplicable: re-execute against this slice's forked kernel state
        // with output suppressed.
        SystemContext Ctx;
        Ctx.NowMs = C.Sched.nowMs();
        Ctx.SuppressOutput = true;
        Ctx.Trace = C.Tr;
        Ctx.TraceLane = lane();
        Ctx.TraceNow = C.Sched.now();
        serviceSyscall(Proc, Ctx, nullptr);
        Ledger.charge(C.InstCost + C.Model.SyscallCost);
        ++Info.DuplicatedSyscalls;
        ++C.Report.DuplicatedSyscalls;
      }
      Vm.noteSyscallRetired();
      Proc.noteRetired(1);
      if (Proc.Status == ProcStatus::Exited)
        endSlice(SliceEndKind::AppExit);
      return;
    }
    // Past the recorded list: this must be the window's boundary syscall.
    // It is counted here (its IPOINT_BEFORE analysis already ran) but
    // executed only by the master; the successor starts after it.
    if (Window->EndKind == SliceWindow::End::SyscallBoundary) {
      Vm.noteSyscallRetired();
      endSlice(SliceEndKind::SyscallBoundary);
      return;
    }
    reportFatalError(
        "slice " + std::to_string(Num) +
        ": overran its window into an unrecorded syscall (missed "
        "signature?) retired=" + std::to_string(Vm.retired()) +
        " expected=" + std::to_string(Window->ExpectedInsts) +
        " sigpc=" + std::to_string(Window->Sig.Pc) +
        " sigquantum=" + std::to_string(Window->Sig.QuantumLeft) +
        " sigthread=" + std::to_string(Window->Sig.CurThread) +
        " curthread=" + std::to_string(Proc.currentThread()) +
        " syscallnum=" + std::to_string(pendingSyscallNumber(Proc)));
  }

  void endSlice(SliceEndKind Kind) {
    Info.EndKind = Kind;
    EndReached = true;
    Vm.disarmDetection();
    if (C.Tr && SigSearchOpen) {
      SigSearchOpen = false;
      C.Tr->end(lane(), obs::EventKind::SigSearch, C.Sched.now());
    }
  }

  void doMerge() {
    // §4.5: merges run in slice order; the coordinator guarantees it.
    Ledger.charge(C.Model.MergeBaseCost +
                  C.Areas.totalBytes() * C.Model.MergePerByteCost);
    ToolInst->onSliceEnd(Num);
    Services.mergeShadows();
    Info.MergeTime = C.Sched.now();
    Info.RetiredInsts = Vm.retired();
    Info.ExpectedInsts = Window->ExpectedInsts;
    C.Report.SliceLenHist.record(Window->ExpectedInsts);
    C.Report.SliceWaitHist.record(Info.ReadyTime - Info.SpawnTime);
    uint64_t Recs = 0;
    for (const WindowSyscall &WS : Window->Sys)
      Recs += WS.IsPlayback ? 1 : 0;
    C.Report.SliceSysRecsHist.record(Recs);
    if (C.Tr)
      C.Tr->instant(lane(), obs::EventKind::SliceMerge, Info.MergeTime,
                    Vm.retired());
    C.Report.SliceInsts += Vm.retired();
    C.Report.Signature.mergeFrom(SigSt);
    C.Report.TracesCompiled += Vm.tracesCompiled();
    C.Report.CompileTicks += Vm.compileTicks();
    C.Report.TracesSeeded += Vm.tracesSeeded();
    C.Report.SeedTicks += Vm.seedTicks();
    if (DeferredSlice) {
      ++C.Report.DrainedSlices;
      // In-engine replay parity: a drained slice re-executed its window
      // from the fork checkpoint; exact icount match means the deferred
      // re-execution reproduced the live window.
      if (Vm.retired() == Window->ExpectedInsts)
        ++C.Report.ReplayParityOk;
    }
    C.Report.Slices.push_back(Info);
    if (C.Sink)
      C.Sink->onSliceMerged(Num, Vm.retired(), C.Areas.snapshot());
    C.sliceMerged();
  }
};

void Coordinator::sliceMerged() {
  ++MergedCount;
  ++NextMerge;
  if (NextMerge < SliceIds.size())
    Sched.wake(SliceIds[NextMerge]);
  Sched.wake(MasterId); // Possibly waiting for all merges before Fini.
}

/// The master application plus the folded-in control and timer processes.
class MasterTask final : public SimTask, vm::MemoryEventListener {
public:
  MasterTask(Coordinator &C)
      : C(C), Proc(Process::create(C.Prog)),
        Interp(C.Prog, Proc.Cpu, Proc.Mem) {
    Proc.Mem.setListener(this);
    if (C.Tr) {
      C.Tr->setLaneName(obs::TraceRecorder::MasterLane, "master");
      C.Tr->begin(obs::TraceRecorder::MasterLane, obs::EventKind::MasterRun,
                  C.Sched.now());
    }
  }

  std::string_view name() const override { return "master"; }

  TaskStep step(Ticks Budget) override {
    Ledger.beginStep(Budget);
    CurLedger = &Ledger;
    TaskStatus St = stepImpl();
    CurLedger = nullptr;
    return {Ledger.used(), St};
  }

  void onCowCopy(uint64_t) override {
    if (CurLedger)
      CurLedger->charge(C.Model.CowCopyPageCost);
    ++C.Report.MasterCowCopies;
  }
  void onPageAlloc(uint64_t) override {
    if (CurLedger)
      CurLedger->charge(C.Model.PageAllocCost);
  }

private:
  enum class Phase : uint8_t {
    Startup,
    Running,
    Stalled,
    WaitMerges,
    Done,
  };
  enum class SpawnKind : uint8_t { None, Timeout, Boundary };

  Coordinator &C;
  Process Proc;
  Interpreter Interp;
  TickLedger Ledger;
  TickLedger *CurLedger = nullptr;
  Phase Ph = Phase::Startup;

  Ticks Deadline = 0;
  uint64_t WindowStart = 0;
  std::vector<WindowSyscall> WindowSys;
  uint64_t RecordedInWindow = 0;
  SpawnKind Pending = SpawnKind::None;
  Ticks StallStart = 0;
  /// Capture record of the open window (meaningful only with C.Sink);
  /// initialized at spawnSlice, emitted and reset at finishWindow.
  SliceCaptureData PendingCap;

  TaskStatus stepImpl() {
    if (Ledger.inDebt())
      return TaskStatus::Runnable;
    while (true) {
      switch (Ph) {
      case Phase::Startup:
        allocateBubble();
        spawnSlice(/*ChargeSigRecord=*/false);
        Deadline = C.Sched.now() + effectiveSliceTicks();
        Ph = Phase::Running;
        break;
      case Phase::Running: {
        if (Pending != SpawnKind::None) {
          bool Saturated = C.RunningSlices >= C.Opts.MaxSlices;
          if (Saturated && !C.Opts.DeferSlices) {
            Ph = Phase::Stalled;
            StallStart = C.Sched.now();
            if (C.Tr)
              C.Tr->begin(obs::TraceRecorder::MasterLane,
                          obs::EventKind::MasterStall, StallStart);
            return TaskStatus::Blocked;
          }
          // -spdefer: under saturation the just-closed window is spilled
          // (the slice parks until the post-exit drain) so the master
          // keeps running instead of sleeping.
          doPendingSpawn(/*Defer=*/Saturated);
        }
        if (C.Sched.now() >= Deadline) {
          if (Interp.instructionsRetired() > WindowStart) {
            Pending = SpawnKind::Timeout;
            continue; // Re-enter to apply the stall check.
          }
          // Empty window (master made no progress): just re-arm the timer.
          Deadline = C.Sched.now() + effectiveSliceTicks();
        }
        if (!Ledger.hasBudget())
          return TaskStatus::Runnable;
        runChunk();
        break;
      }
      case Phase::Stalled:
        // Woken: a slice finished (or merged). Account the sleep.
        C.Report.SleepTicks += C.Sched.now() - StallStart;
        if (C.Tr)
          C.Tr->end(obs::TraceRecorder::MasterLane,
                    obs::EventKind::MasterStall, C.Sched.now());
        Ph = Phase::Running;
        break;
      case Phase::WaitMerges:
        if (!C.allMerged())
          return TaskStatus::Blocked;
        runFini();
        Ph = Phase::Done;
        return TaskStatus::Exited;
      case Phase::Done:
        return TaskStatus::Exited;
      }
    }
  }

  Ticks effectiveSliceTicks() const {
    uint64_t Ms = C.Opts.SliceMs;
    if (C.Opts.AdaptiveSlices && C.Opts.AppDurationHintMs > 0) {
      // §8 future work: shrink slices near the expected end so the final
      // pipeline drain is short.
      uint64_t Elapsed = C.Model.ticksToMs(C.Sched.now());
      uint64_t Remain = C.Opts.AppDurationHintMs > Elapsed
                            ? C.Opts.AppDurationHintMs - Elapsed
                            : 0;
      uint64_t Target = Remain / (C.Opts.MaxSlices ? C.Opts.MaxSlices : 1);
      if (Target < C.Opts.MinSliceMs)
        Target = C.Opts.MinSliceMs;
      if (Target < Ms)
        Ms = Target;
    }
    return C.Model.msTicks(Ms);
  }

  void allocateBubble() {
    // §4.1: materialize the bubble pages so they are part of every fork's
    // page table and the slices can release them.
    for (uint64_t P = 0; P != SpBubblePages; ++P)
      Proc.Mem.write64(AddressLayout::BubbleBase + P * vm::PageSize, 0);
  }

  void runChunk() {
    uint64_t MaxInsts = Ledger.remaining() / C.InstCost;
    if (MaxInsts == 0)
      MaxInsts = 1;
    RunResult R;
    if (Proc.quantumExpired()) {
      R = Interp.runToBlockEnd(MaxInsts);
    } else {
      if (MaxInsts > Proc.quantumLeft())
        MaxInsts = Proc.quantumLeft(); // guest-thread quantum
      R = Interp.run(MaxInsts);
    }
    Proc.noteRetired(R.InstsExecuted);
    Ledger.charge(R.InstsExecuted * C.InstCost);
    C.Report.NativeTicks += R.InstsExecuted * C.InstCost;
    switch (R.Reason) {
    case StopReason::Syscall:
      handleSyscall();
      break;
    case StopReason::Halt:
    case StopReason::BadPc:
      reportFatalError("master: guest fault in '" + C.Prog.Name + "'");
    case StopReason::Budget:
    case StopReason::BlockEnd:
      break;
    }
    if (Proc.quantumExpired() && (R.Reason == StopReason::BlockEnd ||
                                  R.Reason == StopReason::Syscall ||
                                  R.EndedAtBlockBoundary))
      Proc.rotateThread();
  }

  void handleSyscall() {
    uint64_t Number = pendingSyscallNumber(Proc);
    // Prefer the static site classification (the pc still points at the
    // unexecuted syscall instruction). Behavior-neutral by construction:
    // the class is taken from the map only when the statically resolved
    // number matches what actually trapped, so it is identical to what
    // classifySyscall would return.
    SyscallClass Cls;
    const SyscallSite *Site = C.SysMap ? C.SysMap->site(Proc.Cpu.Pc) : nullptr;
    if (Site && Site->NumberKnown && Site->Number == Number) {
      Cls = Site->Class;
      ++C.Report.PredictedSyscallSites;
    } else {
      Cls = classifySyscall(Number);
      ++C.Report.TrapClassifiedSyscalls;
    }
    // The syscall instruction + kernel service are native work; the
    // ptrace stop is control overhead (lands in the fork&others residual).
    Ledger.charge(C.InstCost + C.Model.SyscallCost);
    C.Report.NativeTicks += C.InstCost + C.Model.SyscallCost;
    Ledger.charge(C.Model.PtraceStopCost);
    ++C.Report.MasterSyscalls;

    SystemContext Ctx;
    Ctx.NowMs = C.Sched.nowMs();
    Ctx.OutputBuf = &C.Report.Output;
    Ctx.Trace = C.Tr;
    Ctx.TraceLane = obs::TraceRecorder::MasterLane;
    Ctx.TraceNow = C.Sched.now();

    switch (Cls) {
    case SyscallClass::Duplicable: {
      // The live window only needs the number (slices re-execute), but a
      // capture also records the effects so replay can validate its
      // duplicated results against the master's.
      SyscallEffects Eff;
      serviceSyscall(Proc, Ctx, C.Sink ? &Eff : nullptr);
      Interp.noteSyscallRetired();
      Proc.noteRetired(1);
      WindowSyscall WS;
      WS.IsPlayback = false;
      WS.Effects.Number = Number;
      WindowSys.push_back(std::move(WS));
      captureSyscall(CapturedSysKind::Duplicate, std::move(Eff));
      break;
    }
    case SyscallClass::Replayable: {
      bool CanRecord = C.Opts.MaxSysRecs > 0 &&
                       RecordedInWindow < C.Opts.MaxSysRecs;
      SyscallEffects Eff;
      serviceSyscall(Proc, Ctx, CanRecord || C.Sink ? &Eff : nullptr);
      Interp.noteSyscallRetired();
      Proc.noteRetired(1);
      if (CanRecord) {
        Ledger.charge(C.Model.SyscallRecordCost);
        if (C.Tr)
          C.Tr->instant(obs::TraceRecorder::MasterLane,
                        obs::EventKind::SysRecord, C.Sched.now(), Number);
        captureSyscall(CapturedSysKind::Playback, Eff);
        WindowSyscall WS;
        WS.IsPlayback = true;
        WS.Effects = std::move(Eff);
        WindowSys.push_back(std::move(WS));
        ++RecordedInWindow;
        ++C.Report.RecordedSyscalls;
      } else {
        // §4.2: recording disabled or over -spsysrecs: force a new slice.
        // The capture keeps the effects anyway: they are the boundary
        // syscall's outcome, which replay plays back to rebuild the
        // master past the window.
        ++C.Report.ForcedSliceSyscalls;
        Pending = SpawnKind::Boundary;
        captureSyscall(CapturedSysKind::Boundary, std::move(Eff));
      }
      break;
    }
    case SyscallClass::ForceSlice: {
      SyscallEffects Eff;
      serviceSyscall(Proc, Ctx, C.Sink ? &Eff : nullptr);
      Interp.noteSyscallRetired();
      Proc.noteRetired(1);
      ++C.Report.ForcedSliceSyscalls;
      Pending = SpawnKind::Boundary;
      captureSyscall(CapturedSysKind::Boundary, std::move(Eff));
      break;
    }
    case SyscallClass::Exit: {
      SyscallEffects Eff;
      serviceSyscall(Proc, Ctx, &Eff);
      Interp.noteSyscallRetired();
      Proc.noteRetired(1);
      if (C.Tr) // The exit records like any §4.2 playback entry.
        C.Tr->instant(obs::TraceRecorder::MasterLane,
                      obs::EventKind::SysRecord, C.Sched.now(), Number);
      captureSyscall(CapturedSysKind::Playback, Eff);
      WindowSyscall WS;
      WS.IsPlayback = true;
      WS.Effects = std::move(Eff);
      WindowSys.push_back(std::move(WS));
      ++C.Report.RecordedSyscalls;
      finishWindow(SliceWindow::End::AppExit, SliceSignature());
      C.Report.MasterInsts = Interp.instructionsRetired();
      C.Report.MasterExitTicks = C.Sched.now();
      C.Report.ExitCode = Proc.ExitCode;
      if (C.Tr)
        C.Tr->end(obs::TraceRecorder::MasterLane, obs::EventKind::MasterRun,
                  C.Report.MasterExitTicks, Interp.instructionsRetired());
      Ph = Phase::WaitMerges;
      if (C.Opts.DeferSlices)
        C.startDrain();
      break;
    }
    }
  }

  /// Appends one syscall to the open window's capture record. Non-playback
  /// entries are capture-only extra recording work, charged like a §4.2
  /// record so -sprecord overhead shows up in virtual time.
  void captureSyscall(CapturedSysKind Kind, SyscallEffects Eff) {
    if (!C.Sink)
      return;
    if (Kind != CapturedSysKind::Playback)
      Ledger.charge(C.Model.SyscallRecordCost);
    CapturedSyscall CS;
    CS.Kind = Kind;
    CS.Effects = std::move(Eff);
    PendingCap.Sys.push_back(std::move(CS));
  }

  void doPendingSpawn(bool Defer = false) {
    SpawnKind Kind = Pending;
    Pending = SpawnKind::None;
    if (Kind == SpawnKind::Timeout) {
      SliceSignature Sig =
          recordSignature(Proc, C.Opts.MemSignature);
      finishWindow(SliceWindow::End::Signature, std::move(Sig), Defer);
      spawnSlice(/*ChargeSigRecord=*/true);
      ++C.Report.TimeoutSlices;
    } else {
      finishWindow(SliceWindow::End::SyscallBoundary, SliceSignature(),
                   Defer);
      spawnSlice(/*ChargeSigRecord=*/false);
      ++C.Report.SyscallSlices;
    }
    Deadline = C.Sched.now() + effectiveSliceTicks();
  }

  static SliceEndKind endKindOf(SliceWindow::End E) {
    switch (E) {
    case SliceWindow::End::Signature:
      return SliceEndKind::Signature;
    case SliceWindow::End::SyscallBoundary:
      return SliceEndKind::SyscallBoundary;
    case SliceWindow::End::AppExit:
      break;
    }
    return SliceEndKind::AppExit;
  }

  /// Closes the current window and hands it to the last spawned slice.
  /// \p Defer parks the slice for the post-exit drain (-spdefer) and
  /// charges the spill serialization instead of a master sleep.
  void finishWindow(SliceWindow::End EndKind, SliceSignature Sig,
                    bool Defer = false) {
    assert(!C.Slices.empty() && "no slice owns the open window");
    SliceWindow W;
    W.Sys = std::move(WindowSys);
    W.EndKind = EndKind;
    W.Sig = std::move(Sig);
    W.ExpectedInsts = Interp.instructionsRetired() - WindowStart;
    if (Defer) {
      // Spill cost: fixed bookkeeping plus serializing the signature
      // (~116 words) and every recorded effect.
      uint64_t Bytes = 960;
      for (const WindowSyscall &WS : W.Sys)
        Bytes += WS.Effects.sizeBytes();
      Ledger.charge(C.Model.SpillSliceCost +
                    Bytes * C.Model.SpillPerByteCost);
      ++C.Report.SpilledSlices;
      if (C.Tr)
        C.Tr->instant(obs::TraceRecorder::MasterLane,
                      obs::EventKind::DeferSpill, C.Sched.now(),
                      C.Slices.size() - 1);
    }
    if (C.Sink) {
      PendingCap.EndKind = endKindOf(EndKind);
      PendingCap.Spilled = Defer;
      PendingCap.ExpectedInsts = W.ExpectedInsts;
      PendingCap.Sig = W.Sig;
      C.Sink->onWindowCaptured(std::move(PendingCap));
      PendingCap = SliceCaptureData();
    }
    C.Slices.back()->completeWindow(std::move(W), Defer);
    WindowStart = Interp.instructionsRetired();
    WindowSys.clear();
    RecordedInWindow = 0;
  }

  void spawnSlice(bool ChargeSigRecord) {
    // §6.3 fork overhead: base cost plus the page-table copy.
    Ledger.charge(C.Model.ForkBaseCost +
                  Proc.Mem.numPages() * C.Model.ForkPerPageCost);
    uint32_t Num = static_cast<uint32_t>(C.Slices.size());
    if (C.Tr)
      C.Tr->instant(obs::TraceRecorder::MasterLane, obs::EventKind::SliceFork,
                    C.Sched.now(), Num);
    auto Slice = std::make_unique<SliceTask>(
        C, Proc, Num, Interp.instructionsRetired(), ChargeSigRecord);
    C.Slices.push_back(Slice.get());
    C.SliceIds.push_back(C.Sched.addTask(std::move(Slice)));
    ++C.Report.NumSlices;
    if (C.Sink) {
      PendingCap = SliceCaptureData();
      PendingCap.Num = Num;
      PendingCap.StartIndex = Interp.instructionsRetired();
      PendingCap.StartStateHash =
          hashMachineState(Proc, Interp.instructionsRetired());
    }
  }

  void runFini() {
    SliceServices FiniServices(C.Areas, static_cast<uint32_t>(C.Slices.size()),
                               /*FiniMode=*/true);
    std::unique_ptr<Tool> FiniTool = C.Factory(FiniServices);
    RawStringOstream OS(C.Report.FiniOutput);
    FiniTool->onFini(OS);
  }
};

} // namespace

SpRunReport spin::sp::runSuperPin(const Program &Prog,
                                  const ToolFactory &Factory,
                                  const SpOptions &Opts,
                                  const CostModel &Model) {
  // Ahead-of-time analysis (shared by both execution modes). Built once
  // per run; the engine only reads it.
  std::optional<analysis::ProgramAnalysis> Static;
  if (Opts.StaticSyscallPrediction || Opts.StaticTraceSeed)
    Static.emplace(analysis::analyzeProgram(Prog));

  if (!Opts.Enabled) {
    // -sp 0: degrade to traditional serial Pin (paper Section 5) and
    // express the outcome in SpRunReport terms.
    Ticks InstCost = static_cast<Ticks>(
        std::llround(Opts.Cpi * static_cast<double>(Model.TicksPerInst)));
    PinVmConfig Config;
    if (Opts.StaticTraceSeed)
      Config.SeedCfg = &Static->G;
    pin::RunReport Serial =
        pin::runSerialPin(Prog, Model, InstCost, Factory, Config);
    SpRunReport Report;
    Report.WallTicks = Serial.WallTicks;
    Report.MasterExitTicks = Serial.WallTicks;
    Report.NativeTicks = Serial.WallTicks;
    Report.MasterInsts = Serial.Insts;
    Report.SliceInsts = Serial.Insts;
    Report.MasterSyscalls = Serial.Syscalls;
    Report.ExitCode = Serial.ExitCode;
    Report.Output = std::move(Serial.Output);
    Report.FiniOutput = std::move(Serial.FiniOutput);
    Report.TracesCompiled = Serial.TracesCompiled;
    Report.CompileTicks = Serial.CompileTicks;
    Report.TracesSeeded = Serial.TracesSeeded;
    Report.SeedTicks = Serial.SeedTicks;
    if (Static)
      Report.StaticSyscallSites = Static->SyscallSites.numSites();
    Report.PeakParallelism = 1;
    return Report;
  }

  SpRunReport Report;
  Scheduler Sched(Model, Opts.PhysCpus, Opts.VirtCpus);
  Coordinator C(Sched, Model, Opts, Prog, Factory, Report);
  C.Sink = Opts.Capture;
  C.Tr = Opts.Trace;
  if (C.Tr)
    Sched.setTrace(C.Tr);
  if (C.Sink)
    C.Sink->onRunBegin(Prog, Opts);
  if (Static) {
    Report.StaticSyscallSites = Static->SyscallSites.numSites();
    if (Opts.StaticSyscallPrediction)
      C.SysMap = &Static->SyscallSites;
    if (Opts.StaticTraceSeed)
      C.SeedCfg = &Static->G;
  }
  C.MasterId = Sched.addTask(std::make_unique<MasterTask>(C));
  Sched.runToCompletion();

  Report.WallTicks = Sched.now();
  Report.PipelineTicks = Report.WallTicks - Report.MasterExitTicks;
  Ticks Accounted = Report.NativeTicks + Report.SleepTicks;
  Report.ForkOthersTicks = Report.MasterExitTicks > Accounted
                               ? Report.MasterExitTicks - Accounted
                               : 0;
  Report.PeakParallelism = Sched.peakParallelism();

  // Partition invariant: slice windows must tile the master's dynamic
  // instruction stream exactly (SP_EndSlice gaps and §4.4 false positives
  // legitimately break this; the report records it).
  uint64_t Cursor = 0;
  for (const SliceInfo &S : Report.Slices) {
    if (S.StartIndex != Cursor || S.RetiredInsts != S.ExpectedInsts)
      Report.PartitionOk = false;
    Cursor = S.StartIndex + S.ExpectedInsts;
  }
  if (Cursor != Report.MasterInsts)
    Report.PartitionOk = false;
  if (C.Sink)
    C.Sink->onRunEnd(Report);
  return Report;
}
