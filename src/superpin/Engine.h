//===- superpin/Engine.h - The SuperPin runtime -----------------*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SuperPin engine: runs an uninstrumented master application at full
/// speed while forking instrumented timeslices that execute in parallel on
/// the simulated multiprocessor, then merges slice results in order
/// (paper Sections 3-5). runSuperPin() is the main entry point of this
/// library; RunNative/RunSerialPin in pin/Runner.h provide the baselines.
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_SUPERPIN_ENGINE_H
#define SUPERPIN_SUPERPIN_ENGINE_H

#include "obs/HostTraceRecorder.h"
#include "os/CostModel.h"
#include "pin/Tool.h"
#include "superpin/Signature.h"
#include "superpin/SpOptions.h"
#include "support/Histogram.h"

#include <string>
#include <vector>

namespace spin::vm {
class Program;
}

namespace spin::sp {

/// Why a slice terminated.
enum class SliceEndKind : uint8_t {
  Signature,       ///< §4.4 signature detection at a timeout boundary
  SyscallBoundary, ///< stopped at a force-slice syscall boundary
  AppExit,         ///< final slice: played back the application's exit
  ToolStop,        ///< the tool requested SP_EndSlice
};

/// Per-slice record for reports and invariant checking.
struct SliceInfo {
  uint32_t Num = 0;
  /// Master dynamic-instruction index at which this slice starts.
  uint64_t StartIndex = 0;
  /// Instructions the master executed in this slice's window.
  uint64_t ExpectedInsts = 0;
  /// Instructions the slice actually retired under instrumentation.
  uint64_t RetiredInsts = 0;
  SliceEndKind EndKind = SliceEndKind::Signature;
  os::Ticks SpawnTime = 0;
  /// When the window closed (the successor recorded its signature) and
  /// the slice stopped sleeping — Figure 1's "resume" moment.
  os::Ticks ReadyTime = 0;
  os::Ticks EndTime = 0;
  os::Ticks MergeTime = 0;
  uint64_t PlayedBackSyscalls = 0;
  uint64_t DuplicatedSyscalls = 0;
  /// Execution attempts this window consumed (1 = clean first run; each
  /// retry and the quarantine re-run add one).
  uint32_t Attempts = 1;
  /// Window instructions successfully instrumented by the final attempt
  /// (== ExpectedInsts when the window fully recovered).
  uint64_t CoveredInsts = 0;
};

/// Everything a SuperPin run produces. Time buckets follow Figure 6:
/// WallTicks = NativeTicks + ForkOthersTicks + SleepTicks + PipelineTicks.
struct SpRunReport {
  // --- Time ---------------------------------------------------------
  os::Ticks WallTicks = 0;       ///< run end (last merge + fini)
  os::Ticks MasterExitTicks = 0; ///< when the master application exited
  os::Ticks NativeTicks = 0;     ///< master productive execution
  os::Ticks ForkOthersTicks = 0; ///< fork, COW, control, contention losses
  os::Ticks SleepTicks = 0;      ///< master stalled at -spslices
  os::Ticks PipelineTicks = 0;   ///< post-exit drain of remaining slices

  // --- Master -------------------------------------------------------
  uint64_t MasterInsts = 0;
  uint64_t MasterSyscalls = 0;
  int ExitCode = 0;
  std::string Output;     ///< application output (master's, canonical)
  std::string FiniOutput; ///< tool Fini output after all merges

  // --- Slices ---------------------------------------------------------
  uint64_t NumSlices = 0;
  uint64_t TimeoutSlices = 0;
  uint64_t SyscallSlices = 0;
  uint64_t SliceInsts = 0; ///< total instrumented instructions retired
  std::vector<SliceInfo> Slices;
  /// True when slice windows exactly partition the master's instruction
  /// stream (false indicates the §4.4 false positive, or a bug).
  bool PartitionOk = true;

  // --- Syscall handling (§4.2) -----------------------------------------
  uint64_t RecordedSyscalls = 0;
  uint64_t PlaybackSyscalls = 0;
  uint64_t DuplicatedSyscalls = 0;
  uint64_t ForcedSliceSyscalls = 0;

  // --- Deferred-slice mode (SpOptions::DeferSlices) ---------------------
  uint64_t SpilledSlices = 0; ///< windows spilled instead of stalling
  uint64_t DrainedSlices = 0; ///< spilled slices re-executed post-exit
  /// Drained slices whose retired icount matched the live window exactly
  /// (the in-engine replay parity check).
  uint64_t ReplayParityOk = 0;

  // --- Static analysis (SpOptions::StaticSyscallPrediction / -TraceSeed)
  uint64_t StaticSyscallSites = 0;    ///< sites in the static map (0 = off)
  uint64_t PredictedSyscallSites = 0; ///< master classifications from the map
  uint64_t TrapClassifiedSyscalls = 0; ///< fell back to trap-time classify
  uint64_t TracesSeeded = 0;          ///< slice traces precompiled from leaders
  os::Ticks SeedTicks = 0;            ///< batch-seeding JIT cost

  // --- Redundancy suppression (SpOptions::Redux, -spredux) ---------------
  uint64_t CallsSuppressed = 0;  ///< analysis calls deferred to a flush
  uint64_t ReduxFlushes = 0;     ///< aggregate replays at flush boundaries
  uint64_t TracesRecompiled = 0; ///< hot traces recompiled with marks
  os::Ticks RecompileTicks = 0;  ///< JIT cost of those recompiles
  os::Ticks ReduxSavedTicks = 0; ///< net ticks the deferral saved

  // --- Fault injection & recovery (src/fault) ---------------------------
  // All zero (and absent from reports) unless SpOptions::Fault is set.
  uint64_t FaultsInjected = 0;   ///< slices the plan actually faulted
  uint64_t WatchdogKills = 0;    ///< runaway/stalled attempts killed
  uint64_t PlaybackDivergences = 0; ///< playback verification aborts
  uint64_t RetriedSlices = 0;    ///< re-fork attempts consumed
  uint64_t QuarantinedSlices = 0; ///< windows parked for post-exit rerun
  uint64_t RecoveredSlices = 0;  ///< faulted windows fully covered anyway
  uint64_t LostSlices = 0;       ///< faulted windows with a coverage gap
  uint64_t ReexecutedSyscalls = 0; ///< playback records re-executed in
                                   ///< relaxed (quarantine) mode
  uint64_t WastedSliceInsts = 0; ///< instructions retired by killed attempts
  /// Master instructions successfully instrumented across all windows
  /// (== MasterInsts on a fully clean or fully recovered run).
  uint64_t CoverageInsts = 0;
  /// The engine fell back to serial-Pin semantics mid-run because the
  /// window failure rate crossed SpOptions::BreakerFailRate.
  bool BreakerTripped = false;

  // --- Host fault containment (src/host + src/fault, -spmp) -------------
  // All zero when HostWorkers == 0. Deterministic under seeded injection:
  // host faults are drawn per slice from the plan, and containment always
  // converges to the serial result, so these counters are bit-stable run
  // to run for a fixed seed.
  uint64_t HostFaultsInjected = 0;  ///< host-fault specs that actually fired
  uint64_t HostWorkerExceptions = 0; ///< bodies that threw (caught + contained)
  uint64_t HostWatchdogKills = 0;   ///< bodies declared dead on the wall clock
  uint64_t HostCancelledBodies = 0; ///< bodies that exited via the cancel token
  /// Slices that fell back from host to sim-thread execution for any
  /// reason: stall-fault dispatch suppression, containment re-execution,
  /// or post-degrade serial execution (satellite: no silent degradation).
  uint64_t HostFallbackSlices = 0;
  /// The host circuit breaker tripped: after SpOptions::HostBreakerLimit
  /// worker deaths/timeouts the run degraded from -spmp to sim-thread
  /// execution (one warning, byte-identical output).
  bool HostDegraded = false;

  // --- Trace-ring telemetry (src/obs, -sptrace / -sphosttrace) ----------
  // Attachment flags gate the export so the default counter-name set is
  // unchanged on runs without recorders; the dropped counts make a
  // wrapped (truncated) ring visible in the artifacts themselves.
  bool TraceAttached = false;
  uint64_t TraceDropped = 0; ///< TraceRecorder events overwritten (ring wrap)
  bool HostTraceAttached = false;
  uint64_t HostTraceDropped = 0; ///< HostTraceRecorder spans overwritten

  // --- Signature mechanism (§4.4) ---------------------------------------
  SignatureStats Signature;

  // --- Distributions (src/obs) ------------------------------------------
  // Log2-bucketed histograms, always collected (recording is a few
  // instructions per sample and fully deterministic). Exported alongside
  // the counters by sp::exportStatistics.
  Histogram SliceLenHist;     ///< instructions per slice window
  Histogram SliceSysRecsHist; ///< playback records per slice window
  Histogram SliceWaitHist;    ///< ticks a slice slept awaiting its window
  Histogram SigCheckDistHist; ///< |insts from boundary| at signature checks
  Histogram SliceAttemptsHist; ///< attempts per window (1 = clean)

  // --- Engine ---------------------------------------------------------
  uint64_t MasterCowCopies = 0;
  uint64_t SliceCowCopies = 0;
  uint64_t TracesCompiled = 0;
  os::Ticks CompileTicks = 0;
  unsigned PeakParallelism = 0;

  // --- Host-parallel execution (src/host, -spmp) ------------------------
  // All zero when HostWorkers == 0. Virtual-time results are byte-
  // identical either way; only these host-side telemetry fields (and real
  // wall time) change. HostBodySeconds is wall-clock and therefore the
  // one nondeterministic field in the report — report printers must gate
  // it behind HostWorkers so flags-off output stays byte-stable.
  unsigned HostWorkers = 0;        ///< resolved -spmp worker count
  uint64_t HostDispatchedSlices = 0; ///< slice bodies run on the pool
  uint64_t HostStreamEvents = 0;   ///< charge-stream events replayed
  uint64_t HostArenaBytes = 0;     ///< peak single-stream arena footprint
  double HostBodySeconds = 0;      ///< summed wall seconds of worker bodies

  /// Per-worker host telemetry (one entry per pool worker, indexed by
  /// worker id). Empty when HostWorkers == 0; Bodies/BodySeconds are
  /// always filled on -spmp runs. Wall-clock, so printers gate on
  /// HostWorkers like HostBodySeconds.
  struct HostWorkerStats {
    unsigned Worker = 0;
    uint64_t Bodies = 0;    ///< slice bodies this worker ran
    double BodySeconds = 0; ///< summed wall seconds of those bodies
  };
  std::vector<HostWorkerStats> HostWorkerTable;

  /// Wall-time attribution from obs::HostTraceRecorder: every worker
  /// nanosecond charged to body / dispatch-wait / merge-wait / idle /
  /// retire with an exact per-lane sum-to-lifetime invariant. Empty
  /// unless SpOptions::HostTrace was attached.
  obs::HostAttribution HostAttr;
  /// Per-worker pool utilization (body share of lane lifetime, percent).
  /// One sample per worker; empty unless HostTrace was attached.
  Histogram HostUtilizationHist;
};

/// Runs \p Prog under SuperPin with the Pintool \p Factory builds (one
/// instance per slice). Deterministic: identical inputs give a
/// bit-identical report.
SpRunReport runSuperPin(const vm::Program &Prog,
                        const pin::ToolFactory &Factory, const SpOptions &Opts,
                        const os::CostModel &Model);

} // namespace spin::sp

#endif // SUPERPIN_SUPERPIN_ENGINE_H
