//===- superpin/SpOptions.h - SuperPin configuration knobs ------*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SuperPin's configuration, mirroring the paper's command-line switches
/// (Section 5) plus the extensions this reproduction implements:
///
///   -sp 1          -> Enabled
///   -spmsec 1000   -> SliceMs
///   -spslices 8    -> MaxSlices
///   -spsysrecs 1000-> MaxSysRecs (0 disables record/playback)
///   -spmp N        -> HostWorkers (0 = serial; "auto" = host core count)
///
/// Extensions (all default-off or paper-default):
///   -spquickcheck  -> QuickCheck (ablation of the §4.4 two-register check)
///   -spmemsig      -> MemSignature (§4.4 proposed false-positive fix)
///   -spsharedcc    -> SharedCodeCache (§8 future work)
///   -spadaptive    -> AdaptiveSlices + AppDurationHintMs (§8 future work)
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_SUPERPIN_SPOPTIONS_H
#define SUPERPIN_SUPERPIN_SPOPTIONS_H

#include <cstdint>
#include <functional>
#include <string>

namespace spin::obs {
class HostTraceRecorder;
class TraceRecorder;
}

namespace spin::fault {
class FaultPlan;
}

namespace spin::prof {
class ProfileCollector;
}

namespace spin::sp {

class CaptureSink;

struct SpOptions {
  /// -sp: run under SuperPin (false degrades to serial Pin behaviour).
  bool Enabled = true;

  /// -spmsec: timeslice interval in virtual milliseconds.
  uint64_t SliceMs = 1000;

  /// -spslices: maximum number of simultaneously running slices; the
  /// master stalls when the limit is reached. Deliberately decoupled from
  /// HostWorkers: this knob shapes the *virtual* timeline (window
  /// boundaries depend on it), while HostWorkers only changes which host
  /// thread executes a slice body.
  uint32_t MaxSlices = 8;

  /// Sentinel for "-spmp auto": resolve to the host's core count.
  static constexpr uint32_t HostWorkersAuto = ~uint32_t(0);

  /// -spmp: host-parallel slice execution (src/host). 0 (the default)
  /// runs everything on the simulation thread, byte-identical to builds
  /// without the subsystem. N >= 1 executes live slice bodies on a pool
  /// of N std::threads; the virtual-time engine remains the oracle (each
  /// body's check/charge sequence is recorded and replayed against the
  /// slice's real ledger), so output is byte-identical to -spmp 0 for
  /// every N. HostWorkersAuto clamps to hardware_concurrency().
  uint32_t HostWorkers = 0;

  /// Test-only shim (host_test's adversarial slow-worker harness): runs on
  /// the worker thread immediately before each dispatched slice body, with
  /// the worker index and the job submission sequence number. Null in
  /// production. Determinism must never depend on it — the tests inject
  /// pathological delays here and assert byte-identical output.
  std::function<void(unsigned Worker, uint64_t JobSeq)> HostJobHook;

  /// -spsysrecs: maximum recorded syscalls per slice; 0 disables
  /// record/playback so every replayable syscall forces a new slice.
  uint64_t MaxSysRecs = 1000;

  /// Machine shape (the paper's host: 8 physical cores, 16 with HT).
  unsigned PhysCpus = 8;
  /// Schedulable contexts; > PhysCpus models hyperthreading.
  unsigned VirtCpus = 8;

  /// Workload CPI (cost of one guest instruction / baseline instruction).
  /// Memory-bound workloads (mcf) run high; branchy integer codes low.
  double Cpi = 1.0;

  // --- Extensions -------------------------------------------------------
  /// §4.4 quick two-register inlined check before the full state check.
  bool QuickCheck = true;
  /// §4.4 extension: include one memory word in the signature, fixing the
  /// documented memory-only loop-counter false positive.
  bool MemSignature = false;
  /// §8 future work: share one code cache across all slices.
  bool SharedCodeCache = false;
  /// §8 future work: shrink timeslices near the end of execution.
  bool AdaptiveSlices = false;
  /// Expected application duration used by AdaptiveSlices (0 = unknown,
  /// adaptivity disabled).
  uint64_t AppDurationHintMs = 0;
  /// Minimum adaptive timeslice in ms.
  uint64_t MinSliceMs = 50;

  // --- Static analysis integration (this reproduction's extension) ------
  /// Consult the ahead-of-time syscall-site map (analysis/Passes.h) so
  /// the control logic predicts slice-boundary classes at statically
  /// classified sites instead of discovering every class at trap time.
  /// Behavior-neutral: a site trapped with a different syscall number
  /// than the static one falls back to trap-time classification.
  bool StaticSyscallPrediction = true;
  /// Batch-seed each slice's code cache from static basic-block leaders
  /// before it starts executing (PinVmConfig::SeedCfg), trading one
  /// up-front JIT burst for the per-trace first-execution compile stalls.
  bool StaticTraceSeed = false;
  /// -spredux: instrumentation-redundancy suppression. Static loop
  /// analysis (analysis/Redundancy.h) classifies each basic block; hot
  /// traces are recompiled once with deferral marks on eligible call
  /// sites of Aggregatable tools, which then batch per-iteration counter
  /// calls and replay them as one Agg(Args, N) call per flush boundary.
  /// Tool output stays byte-identical with the flag off (the aggregate
  /// contract is Agg(a, N) == N applications of the plain call); only
  /// virtual-time cost changes. Honoured by both the SuperPin and the
  /// serial-Pin path.
  bool Redux = false;

  // --- Persistent capture & deferred replay (src/replay) ----------------
  /// -sprecord: when non-null, the engine streams every slice window,
  /// syscall-effects record, and merge result into this sink (see
  /// superpin/Capture.h; replay::CaptureWriter is the standard impl).
  /// Ignored when Enabled is false (serial Pin has no windows to capture).
  CaptureSink *Capture = nullptr;
  /// -spdefer: when the -spslices limit is hit, spill the just-closed
  /// slice window instead of stalling the master; spilled slices drain
  /// after the master exits. SleepTicks stays zero at the cost of a longer
  /// pipeline phase; Reporting gains spilled/drained counters.
  bool DeferSlices = false;

  // --- Observability (src/obs) ------------------------------------------
  /// -sptrace: when non-null, the engine records the run's timeline into
  /// this span-event recorder (master/slice lanes, fork/sleep/run/
  /// signature-search/merge/spill/drain, syscall record & playback, JIT
  /// compiles, scheduler parallelism). Purely additive: emission charges
  /// no virtual time, so reports are tick-identical with tracing on or
  /// off. Ignored when Enabled is false.
  obs::TraceRecorder *Trace = nullptr;
  /// -spprof: when non-null, the engine attributes every charged tick to
  /// the src/prof cause taxonomy, per lane (master + one per slice) and
  /// per guest basic block. Purely observational like Trace: attribution
  /// never charges virtual time, so runs are tick- and byte-identical
  /// with profiling on or off. Honoured by both the SuperPin and the
  /// serial-Pin path.
  prof::ProfileCollector *Profile = nullptr;
  /// -sphosttrace/-sphoststats: when non-null (and HostWorkers != 0),
  /// the engine records per-worker wall-clock spans and pool gauges into
  /// this host recorder (obs/HostTraceRecorder.h) and folds the merged
  /// attribution into the run report. Wall-clock only: attaching it
  /// never charges virtual time, so -spmp results are tick- and
  /// byte-identical with host tracing on or off.
  obs::HostTraceRecorder *HostTrace = nullptr;

  /// -spflightrec: when non-empty, arm the postmortem flight recorder
  /// (obs/FlightRecorder.h). The first containment event, breaker trip,
  /// or watchdog kill creates this directory; at run teardown the engine
  /// dumps a self-contained bundle there (retained trace window, counter
  /// snapshot, failing-slice event log, spin_doctor diagnosis) and names
  /// the directory on stderr. Clean runs create nothing. Purely
  /// observational: arming it never charges virtual time.
  std::string FlightDir;

  // --- Fault injection & recovery (src/fault) ---------------------------
  /// -spfault/-spfaultseed: when non-null and enabled(), the engine
  /// consults this plan per slice and injects the planned faults. A null
  /// or disabled plan leaves every run tick- and byte-identical to a
  /// build without fault support.
  const fault::FaultPlan *Fault = nullptr;
  /// -spretries: how many times a failed window is re-forked from its
  /// captured start state before it is quarantined for post-exit serial
  /// re-execution.
  uint32_t RetryBudget = 2;
  /// -spwatchdogmargin: extra instructions a slice may retire beyond its
  /// recorded window length before the runaway watchdog kills the attempt
  /// (only meaningful on retry/drain attempts, where the window length is
  /// known up front).
  uint64_t WatchdogMarginInsts = 20'000;
  /// Circuit breaker: once at least BreakerMinWindows windows have closed
  /// and the fraction that failed reaches BreakerFailRate, the engine
  /// stops running slices concurrently and routes every later window
  /// through the post-exit serial drain (serial-Pin semantics).
  double BreakerFailRate = 0.5;
  uint32_t BreakerMinWindows = 8;

  // --- Host fault containment (-spmp robustness) ------------------------
  /// -sphostwatchdog: wall-clock milliseconds the sim thread will starve
  /// on a dispatched body's charge stream before declaring the worker
  /// dead, cancelling the body, and re-executing the slice serially. 0
  /// (the default) derives a deadline from the virtual watchdog margin:
  /// 500ms + SliceMs * max(1, WatchdogMarginInsts / 1000). A false alarm
  /// is correctness-safe (containment re-executes and stays
  /// byte-identical); only wall time and fault counters change.
  /// HostWatchdogOff disables the watchdog entirely — untimed stream
  /// waits and no cancellation token — for debugger sessions where every
  /// worker looks hung, and for benchmarking the containment machinery
  /// itself. A disabled watchdog cannot contain a hung or silent worker.
  uint64_t HostWatchdogMs = 0;
  /// Sentinel for HostWatchdogMs: disable the host watchdog.
  static constexpr uint64_t HostWatchdogOff = ~uint64_t(0);
  /// Host circuit breaker: after this many worker deaths or watchdog
  /// timeouts in one run, stop dispatching bodies to the pool and degrade
  /// to sim-thread (serial) execution for the rest of the run, with a
  /// single warning. Output stays byte-identical throughout.
  uint32_t HostBreakerLimit = 3;

  /// Resolved -sphostwatchdog deadline in milliseconds (never 0).
  uint64_t hostWatchdogDeadlineMs() const {
    if (HostWatchdogMs)
      return HostWatchdogMs;
    uint64_t Scale = WatchdogMarginInsts / 1000;
    return 500 + SliceMs * (Scale ? Scale : 1);
  }

  /// Checks the option set for values the engine cannot honour
  /// (-spslices 0, -spmsec 0, -spsysrecs overflow, invalid -spmp worker
  /// counts, ...). Returns an empty string when valid, otherwise a
  /// one-line diagnostic naming the offending flag.
  std::string validate() const;
};

} // namespace spin::sp

#endif // SUPERPIN_SUPERPIN_SPOPTIONS_H
