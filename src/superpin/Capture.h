//===- superpin/Capture.h - Run-capture data model and sink -----*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The engine-side half of the persistent capture pipeline. The engine
/// depends only on the abstract CaptureSink here; the concrete writer and
/// the on-disk log format live in src/replay, which links against this
/// library (never the other way around).
///
/// A capture records, per slice window, everything the live engine hands a
/// slice (boundary kind, signature, the ordered syscall stream) *plus*
/// what the engine normally discards: effects of duplicable and
/// boundary syscalls, the master's start-state hash, and — at merge time —
/// the retired icount and shared-area snapshots. That closure is what lets
/// replay::ReplayEngine rebuild the master by fast-forwarding windows and
/// re-execute any slice with an arbitrary tool.
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_SUPERPIN_CAPTURE_H
#define SUPERPIN_SUPERPIN_CAPTURE_H

#include "os/Kernel.h"
#include "superpin/Engine.h"
#include "superpin/Signature.h"

#include <cstdint>
#include <vector>

namespace spin::os {
class Process;
}

namespace spin::sp {

/// Pages of the §4.1 memory bubble the master materializes at startup so
/// master and slice address-space mappings stay identical. Shared between
/// the live engine and the replay reconstruction.
constexpr uint64_t SpBubblePages = 64;

/// How the master handled one syscall inside a captured window.
enum class CapturedSysKind : uint8_t {
  Playback,  ///< replayable, recorded: slices apply the effects verbatim
  Duplicate, ///< duplicable: slices re-execute against forked kernel state
  Boundary,  ///< window-ending syscall: executed by the master only
};

/// One syscall of a captured window, in master execution order. Effects
/// are complete for every kind (unlike the live window, which records
/// effects only for playback entries) so replay can reconstruct the
/// master's post-syscall state without a live kernel decision.
struct CapturedSyscall {
  CapturedSysKind Kind = CapturedSysKind::Playback;
  os::SyscallEffects Effects;
};

/// Everything recorded about one slice: the window (known when the window
/// closes) plus the merge-time results (filled in by onSliceMerged).
struct SliceCaptureData {
  uint32_t Num = 0;
  uint64_t StartIndex = 0;     ///< master dynamic-instruction index
  uint64_t StartStateHash = 0; ///< hashMachineState at the slice's fork
  SliceEndKind EndKind = SliceEndKind::Signature;
  bool Spilled = false; ///< deferred to the log instead of run live
  uint64_t ExpectedInsts = 0;
  SliceSignature Sig; ///< valid for SliceEndKind::Signature
  std::vector<CapturedSyscall> Sys;

  // Merge-time results (parity reference for replay).
  uint64_t RetiredInsts = 0;
  std::vector<std::vector<uint8_t>> AreaSnapshots;
};

/// Receives capture events from a live runSuperPin. Install via
/// SpOptions::Capture; all hooks fire in deterministic virtual-time order
/// (windows close in slice order, merges run in slice order).
class CaptureSink {
public:
  virtual ~CaptureSink() = default;

  /// The run is starting; \p Prog and \p Opts are valid for its duration.
  virtual void onRunBegin(const vm::Program &Prog, const SpOptions &Opts) = 0;

  /// Slice \p Data.Num's window closed (its successor was spawned, or the
  /// application exited). Merge-time fields are still zero.
  virtual void onWindowCaptured(SliceCaptureData Data) = 0;

  /// Slice \p Num merged: \p RetiredInsts instructions retired under
  /// instrumentation, shared areas now hold \p AreaSnapshots.
  virtual void onSliceMerged(uint32_t Num, uint64_t RetiredInsts,
                             std::vector<std::vector<uint8_t>> AreaSnapshots) = 0;

  /// The run completed; \p Report is final.
  virtual void onRunEnd(const SpRunReport &Report) = 0;
};

/// Order-sensitive digest of the master-visible machine state: icount, the
/// current thread's architectural state, every parked thread pc, and the
/// scheduler state. Captured at each slice fork and re-derived by replay
/// after fast-forwarding, so a reconstruction bug surfaces as a hash
/// mismatch instead of silent divergence. Memory is deliberately excluded
/// (hashing it would defeat COW); memory divergence is caught downstream
/// by the syscall-sequence and signature parity checks.
uint64_t hashMachineState(const os::Process &Proc, uint64_t Icount);

} // namespace spin::sp

#endif // SUPERPIN_SUPERPIN_CAPTURE_H
