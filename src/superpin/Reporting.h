//===- superpin/Reporting.h - Run-report rendering --------------*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Human-readable rendering of SpRunReport: a summary block, a statistics
/// export, and an ASCII timeline in the spirit of the paper's Figure 1
/// (master on one lane, each slice's sleep/run/drain phases on its own
/// lane, time flowing left to right).
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_SUPERPIN_REPORTING_H
#define SUPERPIN_SUPERPIN_REPORTING_H

#include "obs/Doctor.h"
#include "superpin/Engine.h"

namespace spin {
class RawOstream;
class StatisticRegistry;
}

namespace spin::sp {

/// Prints the full run summary (time breakdown, slices, syscalls,
/// signature statistics).
void printReport(const SpRunReport &Report, const os::CostModel &Model,
                 RawOstream &OS);

/// Prints the -spmp host-execution section: the aggregate host line, a
/// column-aligned per-worker table (bodies run, body wall seconds), and —
/// when the report carries HostTraceRecorder attribution — the five-way
/// wall-time taxonomy shares plus the pool's dominant stall cause.
/// No-op when Report.HostWorkers == 0, keeping serial output byte-stable.
void printHostStats(const SpRunReport &Report, RawOstream &OS);

/// Exports the report's scalar metrics into \p Stats (names are stable
/// and dotted, e.g. "superpin.slices.timeout"). Host gauges ("host.*",
/// the utilization histogram) are emitted only when Report.HostWorkers
/// is nonzero, so the default name set is unchanged.
void exportStatistics(const SpRunReport &Report, StatisticRegistry &Stats);

/// Renders the Figure 1 timeline: one lane for the master and one per
/// slice (capped at \p MaxSlices lanes), with '.' = sleeping (waiting for
/// the successor's signature), '#' = executing instrumented code, '|' =
/// merge. \p Columns sets the horizontal resolution. A zero-length run
/// degenerates to a single-column timeline rather than printing nothing.
void printTimeline(const SpRunReport &Report, const os::CostModel &Model,
                   RawOstream &OS, unsigned Columns = 72,
                   unsigned MaxSlices = 24);

/// Writes the -spmetrics machine-readable document ("spmetrics-v1"): every
/// exportStatistics counter and histogram plus the Figure 6 phase
/// breakdown (wall/native/forkothers/sleep/pipeline) in ticks and seconds.
void writeRunMetricsJson(const SpRunReport &Report, const os::CostModel &Model,
                         RawOstream &OS);

/// Flattens \p Report into the obs::Doctor input for -spdoctor: the slice
/// schedule, the master phase totals, the parallelism knobs from \p Opts,
/// and — when \p Opts.Profile was attached — the spprof cause taxonomy per
/// lane. Pass the result to obs::diagnose().
obs::DoctorInput doctorInput(const SpRunReport &Report, const SpOptions &Opts);

} // namespace spin::sp

#endif // SUPERPIN_SUPERPIN_REPORTING_H
