//===- superpin/Signature.cpp - Slice-boundary signatures -----------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "superpin/Signature.h"

#include "os/Process.h"
#include "vm/Exec.h"

using namespace spin;
using namespace spin::os;
using namespace spin::sp;
using namespace spin::vm;

/// Scans forward from \p Pc for up to SigQuickScanInsts instructions (or
/// the first unconditional control transfer) collecting destination
/// registers; the first two distinct ones become the quick-check
/// registers. Mirrors the paper's recorder, which gives up after "a
/// specified block count" and uses defaults.
static void chooseQuickRegs(const Program &Prog, uint64_t Pc,
                            SliceSignature &Sig) {
  // The registers most likely to differ between loop iterations are
  // accumulators — destinations that also appear among their own sources
  // (counters, induction variables, chained pointers). Plain destinations
  // are a weaker fallback: a `movi rX, constant` ahead of the boundary
  // would make rX compare equal on every iteration and defeat the quick
  // check entirely.
  uint8_t SelfUpdate[2];
  unsigned NumSelf = 0;
  uint8_t PlainDest[2];
  unsigned NumPlain = 0;

  auto AddTo = [](uint8_t (&Arr)[2], unsigned &Count, uint8_t Reg) {
    if (Count >= 1 && Arr[0] == Reg)
      return;
    if (Count < 2)
      Arr[Count++] = Reg;
  };

  uint64_t Cursor = Pc;
  for (unsigned I = 0; I != SigQuickScanInsts && NumSelf < 2; ++I) {
    const Instruction *Inst = Prog.fetch(Cursor);
    if (!Inst)
      break;
    uint8_t Dest = 0xff;
    bool Self = false;
    switch (Inst->info().Format) {
    case OpFormat::R2:
      Dest = Inst->A;
      break;
    case OpFormat::R3:
      Dest = Inst->A;
      Self = Inst->A == Inst->B || Inst->A == Inst->C;
      break;
    case OpFormat::R2I:
      Dest = Inst->A;
      Self = Inst->A == Inst->B;
      break;
    case OpFormat::R1I:
      Dest = Inst->A; // movi: never self-updating
      break;
    case OpFormat::Mem:
      if (Inst->Op != Opcode::Incm) {
        Dest = Inst->A; // loads write rd
        Self = Inst->A == Inst->B; // pointer chase: r = [r]
      }
      break;
    case OpFormat::R1:
      if (Inst->Op == Opcode::Pop)
        Dest = Inst->A;
      break;
    case OpFormat::None:
    case OpFormat::MemStore:
    case OpFormat::JumpI:
    case OpFormat::Branch:
      break;
    }
    if (Dest != 0xff) {
      if (Self)
        AddTo(SelfUpdate, NumSelf, Dest);
      else
        AddTo(PlainDest, NumPlain, Dest);
    }
    // Keep scanning around the loop through direct jumps.
    if (Inst->Op == Opcode::Jmp) {
      Cursor = static_cast<uint64_t>(Inst->Imm);
      continue;
    }
    if (Inst->isUnconditional())
      break;
    Cursor += InstSize;
  }

  uint8_t Chosen[2];
  unsigned NumChosen = 0;
  for (unsigned I = 0; I != NumSelf && NumChosen < 2; ++I)
    AddTo(Chosen, NumChosen, SelfUpdate[I]);
  for (unsigned I = 0; I != NumPlain && NumChosen < 2; ++I)
    AddTo(Chosen, NumChosen, PlainDest[I]);
  if (NumChosen >= 1)
    Sig.QuickReg0 = Chosen[0];
  if (NumChosen >= 2)
    Sig.QuickReg1 = Chosen[1];
  Sig.QuickRegsChosen = NumChosen == 2;
}

/// Finds a memory word to sample for the -spmemsig extension: the first
/// store/incm reachable within the scan window, with its effective address
/// evaluated against the recorded register state.
static void chooseMemSig(const Process &Proc, SliceSignature &Sig) {
  const Program &Prog = Proc.program();
  uint64_t Pc = Sig.Pc;
  for (unsigned I = 0; I != SigQuickScanInsts; ++I) {
    const Instruction *Inst = Prog.fetch(Pc);
    if (!Inst)
      return;
    if (Inst->isMemWrite() && Inst->hasMemOperand()) {
      uint32_t Size;
      Sig.MemSigAddr = computeMemEA(*Inst, Proc.Cpu, Size);
      Sig.MemSigValue = Proc.Mem.read64(Sig.MemSigAddr);
      Sig.HasMemSig = true;
      return;
    }
    // Follow direct jumps (the interesting store is often at the loop
    // head, behind the backedge); give up at indirect control flow.
    if (Inst->Op == Opcode::Jmp) {
      Pc = static_cast<uint64_t>(Inst->Imm);
      continue;
    }
    if (Inst->isControlFlow() && Inst->isUnconditional())
      return;
    Pc += InstSize;
  }
}

SliceSignature spin::sp::recordSignature(const Process &Proc,
                                         bool WantMemSig) {
  SliceSignature Sig;
  Sig.Pc = Proc.Cpu.Pc;
  Sig.Regs = Proc.Cpu.Regs;
  uint64_t Sp = Proc.Cpu.sp();
  for (unsigned I = 0; I != SigStackWords; ++I)
    Sig.Stack[I] = Proc.Mem.read64(Sp + I * 8);
  chooseQuickRegs(Proc.program(), Sig.Pc, Sig);
  if (WantMemSig)
    chooseMemSig(Proc, Sig);
  if (Proc.isMultiThreaded()) {
    Sig.ThreadPcs = Proc.threadPcs();
    Sig.CurThread = Proc.currentThread();
    Sig.QuantumLeft = Proc.quantumLeft();
  }
  return Sig;
}

bool spin::sp::checkSignature(const SliceSignature &Sig, const Process &Proc,
                              const CostModel &Model, bool UseQuickCheck,
                              uint64_t EffectiveQuantumLeft,
                              TickLedger &Ledger, SignatureStats &Stats) {
  const vm::CpuState &S = Proc.Cpu;
  if (UseQuickCheck) {
    // The inlined INS_InsertIfCall: compare the two likely-changing
    // registers. This is the cost paid on *every* pass over the armed pc.
    Ledger.charge(Model.InlinedCheckCost);
    ++Stats.QuickChecks;
    if (S.Regs[Sig.QuickReg0] != Sig.Regs[Sig.QuickReg0] ||
        S.Regs[Sig.QuickReg1] != Sig.Regs[Sig.QuickReg1])
      return false;
  }
  // The INS_InsertThenCall full architectural comparison.
  Ledger.charge(Model.SigFullCheckCost);
  ++Stats.FullChecks;
  if (S.Regs != Sig.Regs)
    return false;
  // Stack comparison.
  Ledger.charge(Model.SigStackCheckCost);
  ++Stats.StackChecks;
  uint64_t Sp = S.sp();
  for (unsigned I = 0; I != SigStackWords; ++I)
    if (Proc.Mem.read64(Sp + I * 8) != Sig.Stack[I])
      return false;
  // Memory-signature extension.
  if (Sig.HasMemSig) {
    Ledger.charge(Model.SigMemCheckCost);
    ++Stats.MemChecks;
    if (Proc.Mem.read64(Sig.MemSigAddr) != Sig.MemSigValue)
      return false;
  }
  // Guest-thread extension: the boundary state includes the scheduler
  // position and every thread's pc.
  if (!Sig.ThreadPcs.empty()) {
    if (Proc.currentThread() != Sig.CurThread ||
        EffectiveQuantumLeft != Sig.QuantumLeft ||
        Proc.threadPcs() != Sig.ThreadPcs)
      return false;
  }
  ++Stats.Matches;
  return true;
}
