//===- superpin/Capture.cpp - Run-capture data model ----------------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "superpin/Capture.h"

#include "os/Process.h"

using namespace spin;
using namespace spin::sp;

/// FNV-1a over 64-bit lanes; plenty for divergence detection.
namespace {
struct Fnv64 {
  uint64_t State = 0xcbf29ce484222325ULL;
  void mix(uint64_t V) {
    for (int I = 0; I != 8; ++I) {
      State ^= (V >> (8 * I)) & 0xff;
      State *= 0x100000001b3ULL;
    }
  }
};
} // namespace

uint64_t spin::sp::hashMachineState(const os::Process &Proc, uint64_t Icount) {
  Fnv64 H;
  H.mix(Icount);
  H.mix(Proc.Cpu.Pc);
  for (uint64_t Reg : Proc.Cpu.Regs)
    H.mix(Reg);
  H.mix(Proc.Status == os::ProcStatus::Exited ? 1 : 0);
  H.mix(Proc.currentThread());
  H.mix(Proc.numLiveThreads());
  H.mix(Proc.quantumLeft());
  for (uint64_t Pc : Proc.threadPcs())
    H.mix(Pc);
  return H.State;
}
