//===- superpin/SpApi.h - Paper-style SuperPin tool API ---------*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A function-registration facade mirroring the paper's Section 5 API and
/// its Figure 2 icount example. A tool is a "main" function that registers
/// callbacks on an SpToolContext:
///
/// \code
///   ToolFactory F = makeFunctionTool("icount2", [](SpToolContext &Ctx) {
///     auto St = std::make_shared<State>();           // tool globals
///     Ctx.SP_Init([St](uint32_t) { St->Icount = 0; });    // ToolReset
///     St->Shared = (uint64_t *)Ctx.SP_CreateSharedArea(
///         &St->Icount, sizeof(uint64_t), AutoMerge::None);
///     Ctx.SP_AddSliceEndFunction(
///         [St](uint32_t) { *St->Shared += St->Icount; }); // Merge
///     Ctx.TRACE_AddInstrumentFunction([St](Trace &T) { ... });
///     Ctx.PIN_AddFiniFunction([St](RawOstream &OS) { ... });
///   });
/// \endcode
///
/// Exactly as in the paper, each SuperPin slice gets its own copy of the
/// Pintool: the main function runs once per slice instance, so per-slice
/// state lives in what it captures. SP_Init returns true under SuperPin
/// and false under serial Pin, and SP_CreateSharedArea degrades to the
/// local pointer serially.
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_SUPERPIN_SPAPI_H
#define SUPERPIN_SUPERPIN_SPAPI_H

#include "pin/Tool.h"

#include <functional>
#include <string>

namespace spin::sp {

/// Registration surface handed to a function-style tool's main.
class SpToolContext {
public:
  virtual ~SpToolContext();

  /// SP_Init: registers the slice-local reset function and reports whether
  /// SuperPin is active.
  virtual bool SP_Init(std::function<void(uint32_t)> ResetFn) = 0;

  /// SP_CreateSharedArea (see pin::SpServices::createSharedArea).
  virtual void *SP_CreateSharedArea(void *LocalData, size_t Size,
                                    pin::AutoMerge Mode) = 0;

  /// SP_AddSliceBeginFunction.
  virtual void
  SP_AddSliceBeginFunction(std::function<void(uint32_t)> Fn) = 0;

  /// SP_AddSliceEndFunction (the manual merge hook; slice order).
  virtual void SP_AddSliceEndFunction(std::function<void(uint32_t)> Fn) = 0;

  /// SP_EndSlice: terminate the current slice at the next boundary. Safe
  /// to call from analysis routines.
  virtual void SP_EndSlice() = 0;

  /// TRACE_AddInstrumentFunction.
  virtual void
  TRACE_AddInstrumentFunction(std::function<void(pin::Trace &)> Fn) = 0;

  /// PIN_AddFiniFunction.
  virtual void
  PIN_AddFiniFunction(std::function<void(RawOstream &)> Fn) = 0;
};

using SpToolMain = std::function<void(SpToolContext &)>;

/// Wraps a paper-style tool main into a ToolFactory usable with both
/// runSerialPin and runSuperPin.
pin::ToolFactory makeFunctionTool(std::string Name, SpToolMain Main);

} // namespace spin::sp

#endif // SUPERPIN_SUPERPIN_SPAPI_H
