//===- superpin/SpApi.cpp - Paper-style SuperPin tool API -----------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "superpin/SpApi.h"

#include <utility>
#include <vector>

using namespace spin;
using namespace spin::pin;
using namespace spin::sp;

SpToolContext::~SpToolContext() = default;

namespace {

/// Tool implementation that dispatches to registered std::functions.
class FunctionTool final : public Tool, public SpToolContext {
public:
  FunctionTool(SpServices &Services, std::string ToolName,
               const SpToolMain &Main)
      : Tool(Services), ToolName(std::move(ToolName)) {
    Main(*this);
  }

  // --- Tool ----------------------------------------------------------
  std::string_view name() const override { return ToolName; }

  void instrumentTrace(Trace &T) override {
    for (const auto &Fn : TraceFns)
      Fn(T);
  }

  void onSliceBegin(uint32_t SliceNum) override {
    if (ResetFn)
      ResetFn(SliceNum);
    for (const auto &Fn : SliceBeginFns)
      Fn(SliceNum);
  }

  void onSliceEnd(uint32_t SliceNum) override {
    for (const auto &Fn : SliceEndFns)
      Fn(SliceNum);
  }

  void onFini(RawOstream &OS) override {
    for (const auto &Fn : FiniFns)
      Fn(OS);
  }

  // --- SpToolContext ---------------------------------------------------
  bool SP_Init(std::function<void(uint32_t)> NewResetFn) override {
    ResetFn = std::move(NewResetFn);
    return services().isSuperPin();
  }

  void *SP_CreateSharedArea(void *LocalData, size_t Size,
                            AutoMerge Mode) override {
    return services().createSharedArea(LocalData, Size, Mode);
  }

  void SP_AddSliceBeginFunction(std::function<void(uint32_t)> Fn) override {
    SliceBeginFns.push_back(std::move(Fn));
  }

  void SP_AddSliceEndFunction(std::function<void(uint32_t)> Fn) override {
    SliceEndFns.push_back(std::move(Fn));
  }

  void SP_EndSlice() override { services().endSlice(); }

  void
  TRACE_AddInstrumentFunction(std::function<void(Trace &)> Fn) override {
    TraceFns.push_back(std::move(Fn));
  }

  void PIN_AddFiniFunction(std::function<void(RawOstream &)> Fn) override {
    FiniFns.push_back(std::move(Fn));
  }

private:
  std::string ToolName;
  std::function<void(uint32_t)> ResetFn;
  std::vector<std::function<void(Trace &)>> TraceFns;
  std::vector<std::function<void(uint32_t)>> SliceBeginFns;
  std::vector<std::function<void(uint32_t)>> SliceEndFns;
  std::vector<std::function<void(RawOstream &)>> FiniFns;
};

} // namespace

ToolFactory spin::sp::makeFunctionTool(std::string Name, SpToolMain Main) {
  return [Name = std::move(Name),
          Main = std::move(Main)](SpServices &Services) {
    return std::make_unique<FunctionTool>(Services, Name, Main);
  };
}
