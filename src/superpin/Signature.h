//===- superpin/Signature.h - Slice-boundary signatures ---------*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Section 4.4 signature mechanism. A timeout slice ends at an
/// arbitrary instruction; the boundary is identified by a signature of the
/// machine state recorded when the successor slice is spawned:
///
///  * the program counter (detection is only attempted there),
///  * the full architectural register file,
///  * the top 100 words of the stack,
///  * (extension, -spmemsig) one memory word written near the boundary,
///    which repairs the documented false positive of a loop whose only
///    changing state is in memory.
///
/// Detection layers costs exactly as the paper does: a quick inlined check
/// of the two registers "most likely to change" (INS_InsertIfCall), then a
/// full register comparison (INS_InsertThenCall), then the stack check.
/// The recorder picks the quick registers by scanning the code around the
/// boundary for register destinations within a bounded block count,
/// falling back to default registers when no candidates emerge.
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_SUPERPIN_SIGNATURE_H
#define SUPERPIN_SUPERPIN_SIGNATURE_H

#include "os/CostModel.h"
#include "os/Scheduler.h"
#include "vm/Program.h"

#include <array>
#include <cstdint>

namespace spin::os {
class Process;
}

namespace spin::sp {

struct SpOptions;

/// Words of stack state captured in a signature (paper: "top 100 words").
constexpr unsigned SigStackWords = 100;

/// Instructions the recorder scans for quick-register candidates
/// ("a specified block count" in the paper).
constexpr unsigned SigQuickScanInsts = 16;

/// A recorded slice-boundary signature.
struct SliceSignature {
  uint64_t Pc = 0;
  std::array<uint64_t, vm::NumRegs> Regs{};
  std::array<uint64_t, SigStackWords> Stack{};
  /// The two registers checked by the inlined quick check.
  uint8_t QuickReg0 = 1;
  uint8_t QuickReg1 = vm::RegSp;
  /// True if the recorder found real candidates (else defaults were used).
  bool QuickRegsChosen = false;
  /// Memory-signature extension (-spmemsig).
  bool HasMemSig = false;
  uint64_t MemSigAddr = 0;
  uint64_t MemSigValue = 0;

  /// Guest-thread extension (§8): pcs of every thread slot, the current
  /// thread, and the remaining scheduling quantum. For single-threaded
  /// processes this degenerates to one pc that the Pc field already
  /// carries.
  std::vector<uint64_t> ThreadPcs;
  uint32_t CurThread = 0;
  uint64_t QuantumLeft = 0;
};

/// Detection statistics (the paper reports the quick check escalating to a
/// full check only ~2% of the time, and stack checks usually running once).
struct SignatureStats {
  uint64_t QuickChecks = 0; ///< inlined two-register checks executed
  uint64_t FullChecks = 0;  ///< full register comparisons triggered
  uint64_t StackChecks = 0; ///< stack comparisons (after full check passed)
  uint64_t MemChecks = 0;   ///< memory-signature comparisons
  uint64_t Matches = 0;     ///< boundary detections

  void mergeFrom(const SignatureStats &Other) {
    QuickChecks += Other.QuickChecks;
    FullChecks += Other.FullChecks;
    StackChecks += Other.StackChecks;
    MemChecks += Other.MemChecks;
    Matches += Other.Matches;
  }
};

/// Captures the signature of \p Proc's current state (used at successor
/// spawn time). Scans code from Proc's pc for quick-register candidates
/// and, when \p WantMemSig, for a nearby memory write to sample.
SliceSignature recordSignature(const os::Process &Proc, bool WantMemSig);

/// Runs the layered detection check of \p Sig against \p Proc's current
/// state, charging modeled costs to \p Ledger and updating \p Stats.
///
/// \p UseQuickCheck false (ablation) skips the inlined check and always
/// pays for the full comparison. \p EffectiveQuantumLeft is the *live*
/// scheduling-quantum counter at the detection site (the executor's
/// in-flight instruction cap; Process::quantumLeft() itself is only
/// synchronized between run chunks). Ignored for single-threaded
/// signatures.
/// \returns true if every enabled layer matches (boundary reached).
bool checkSignature(const SliceSignature &Sig, const os::Process &Proc,
                    const os::CostModel &Model, bool UseQuickCheck,
                    uint64_t EffectiveQuantumLeft, os::TickLedger &Ledger,
                    SignatureStats &Stats);

} // namespace spin::sp

#endif // SUPERPIN_SUPERPIN_SIGNATURE_H
