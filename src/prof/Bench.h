//===- prof/Bench.h - BENCH_*.json telemetry schema & gate ------*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The machine-readable performance-trajectory format ("spbench-v1") that
/// bench/spbench emits as BENCH_<date>.json, plus the regression gate that
/// diffs a fresh document against the committed baseline.
///
/// Only deterministic virtual-time metrics are gated — slowdown-vs-native
/// and the attribution shares — because they are bit-reproducible across
/// hosts. Host wall seconds are recorded for context but never compared.
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_PROF_BENCH_H
#define SUPERPIN_PROF_BENCH_H

#include <string>
#include <vector>

namespace spin {
class JsonValue;
class RawOstream;
}

namespace spin::prof {

/// Current benchmark-telemetry schema identifier.
inline constexpr const char *BenchSchema = "spbench-v1";

/// Gate thresholds. A metric regresses when it worsens by more than
/// MaxRelative of its baseline value; attribution shares additionally need
/// an absolute movement above MinShareDelta so a microscopic share cannot
/// trip the relative test.
struct BenchGateConfig {
  double MaxRelative = 0.10;
  double MinShareDelta = 0.005;
};

/// One gated metric that moved past the thresholds.
struct BenchRegression {
  std::string Workload;
  std::string Metric;
  double Baseline = 0.0;
  double Current = 0.0;
};

/// Outcome of comparing a fresh document against a baseline.
struct BenchCompareResult {
  std::vector<BenchRegression> Regressions;
  /// Non-fatal observations (new workloads, baseline-only workloads).
  std::vector<std::string> Notes;

  bool ok() const { return Regressions.empty(); }
};

/// Compares the "workloads" sections of two spbench-v1 documents. A
/// schema mismatch or a malformed document reports as a regression (the
/// gate must fail closed).
BenchCompareResult compareBenchReports(const JsonValue &Baseline,
                                       const JsonValue &Current,
                                       const BenchGateConfig &Cfg = {});

/// Human-readable gate report ("PASS"/"FAIL" plus one line per finding).
void printCompareResult(const BenchCompareResult &R, RawOstream &OS);

} // namespace spin::prof

#endif // SUPERPIN_PROF_BENCH_H
