//===- prof/Bench.cpp - BENCH_*.json telemetry schema & gate --------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "prof/Bench.h"

#include "support/Json.h"
#include "support/RawOstream.h"
#include "support/StringExtras.h"

#include <set>

using namespace spin;
using namespace spin::prof;

static void addRegression(BenchCompareResult &R, std::string Workload,
                          std::string Metric, double Base, double Cur) {
  R.Regressions.push_back(
      {std::move(Workload), std::move(Metric), Base, Cur});
}

/// Numeric object member, or \p Default when absent / non-numeric.
static double numberOf(const JsonValue &Obj, std::string_view Key,
                       double Default = 0.0) {
  const JsonValue *V = Obj.get(Key);
  if (!V)
    return Default;
  switch (V->kind()) {
  case JsonValue::Kind::UInt:
  case JsonValue::Kind::Int:
  case JsonValue::Kind::Double:
    return V->asDouble();
  default:
    return Default;
  }
}

static const JsonValue *findWorkload(const JsonValue &Doc,
                                     const std::string &Name) {
  const JsonValue *Ws = Doc.get("workloads");
  if (!Ws || Ws->kind() != JsonValue::Kind::Array)
    return nullptr;
  for (const JsonValue &W : Ws->array())
    if (const JsonValue *N = W.get("name"))
      if (N->kind() == JsonValue::Kind::String && N->asString() == Name)
        return &W;
  return nullptr;
}

static std::vector<std::string> workloadNames(const JsonValue &Doc) {
  std::vector<std::string> Names;
  const JsonValue *Ws = Doc.get("workloads");
  if (!Ws || Ws->kind() != JsonValue::Kind::Array)
    return Names;
  for (const JsonValue &W : Ws->array())
    if (const JsonValue *N = W.get("name"))
      if (N->kind() == JsonValue::Kind::String)
        Names.push_back(N->asString());
  return Names;
}

BenchCompareResult spin::prof::compareBenchReports(const JsonValue &Baseline,
                                                   const JsonValue &Current,
                                                   const BenchGateConfig &Cfg) {
  BenchCompareResult R;

  // The gate fails closed: an unreadable or mismatched document counts as
  // a regression, never as a silent pass.
  for (const auto &[Doc, Which] :
       {std::pair{&Baseline, "baseline"}, {&Current, "current"}}) {
    const JsonValue *Schema = Doc->get("schema");
    if (!Schema || Schema->kind() != JsonValue::Kind::String ||
        Schema->asString() != BenchSchema) {
      addRegression(R, Which, "schema", 0, 0);
      return R;
    }
  }

  for (const std::string &Name : workloadNames(Baseline)) {
    const JsonValue *Base = findWorkload(Baseline, Name);
    const JsonValue *Cur = findWorkload(Current, Name);
    if (!Cur) {
      R.Notes.push_back("workload '" + Name +
                        "' present in baseline but not in current run");
      continue;
    }

    // Deterministic virtual slowdowns: worse means larger, gated at
    // MaxRelative over baseline.
    for (const char *Metric : {"slowdown_pin", "slowdown_sp"}) {
      double B = numberOf(*Base, Metric);
      double C = numberOf(*Cur, Metric);
      if (B > 0 && C > B * (1.0 + Cfg.MaxRelative))
        addRegression(R, Name, Metric, B, C);
    }

    // Attribution shares: gate each cause in either document. A share
    // regresses when it grows past both the relative and absolute
    // thresholds (the absolute floor keeps a 0.1% -> 0.2% move from
    // tripping the 10% relative test).
    const JsonValue *BaseAttr = Base->get("attribution");
    const JsonValue *CurAttr = Cur->get("attribution");
    std::set<std::string> CauseNames;
    for (const JsonValue *Attr : {BaseAttr, CurAttr})
      if (Attr && Attr->kind() == JsonValue::Kind::Object)
        for (const auto &[K, V] : Attr->members())
          CauseNames.insert(K);
    for (const std::string &CauseKey : CauseNames) {
      double B = BaseAttr ? numberOf(*BaseAttr, CauseKey) : 0.0;
      double C = CurAttr ? numberOf(*CurAttr, CauseKey) : 0.0;
      if (C > B * (1.0 + Cfg.MaxRelative) && C - B > Cfg.MinShareDelta)
        addRegression(R, Name, "attribution." + CauseKey, B, C);
    }
  }

  for (const std::string &Name : workloadNames(Current))
    if (!findWorkload(Baseline, Name))
      R.Notes.push_back("workload '" + Name +
                        "' is new (no baseline entry; not gated)");

  return R;
}

void spin::prof::printCompareResult(const BenchCompareResult &R,
                                    RawOstream &OS) {
  for (const std::string &Note : R.Notes)
    OS << "note: " << Note << '\n';
  for (const BenchRegression &Reg : R.Regressions)
    OS << "REGRESSION " << Reg.Workload << ' ' << Reg.Metric << ": "
       << formatFixed(Reg.Baseline, 4) << " -> " << formatFixed(Reg.Current, 4)
       << '\n';
  OS << "bench gate: " << (R.ok() ? "PASS" : "FAIL") << " ("
     << static_cast<uint64_t>(R.Regressions.size()) << " regression(s), "
     << static_cast<uint64_t>(R.Notes.size()) << " note(s))\n";
}
