//===- prof/Profile.h - Overhead-attribution profiler -----------*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The overhead-attribution profiler: charges every virtual tick a SuperPin
/// run consumes to a stable cause taxonomy, mirroring the paper's Section 6
/// overhead decomposition (JIT, instrumentation, signature search,
/// fork/playback) but per slice and per guest basic block.
///
/// Layering: attribution is purely observational. The engine charges its
/// TickLedgers exactly as before and *additionally* reports each charge
/// here, so runs with the profiler attached are tick- and byte-identical
/// to runs without it (the same contract Trace and Capture honour).
///
/// Every lane (the master plus one per slice) maintains the invariant
///
///   consumedTicks() == nativeTicks() + attributedTicks()
///
/// where consumed is the scheduler-visible total (the sum of per-step
/// TickLedger::used()), native is uninstrumented guest work (master lanes
/// only; slice execution is entirely instrumented and lands in the cause
/// buckets), and attributed is the sum over the cause taxonomy. Tests
/// assert the invariant exactly; the acceptance bound is 100% +/- 0.1%.
///
/// Exports: a versioned "spprof-v1" JSON document and a folded-stack file
/// (`frame;frame;frame <ticks>` lines) loadable by flamegraph.pl-style
/// tools.
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_PROF_PROFILE_H
#define SUPERPIN_PROF_PROFILE_H

#include "os/CostModel.h"

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

namespace spin {
class RawOstream;
class StatisticRegistry;
}

namespace spin::prof {

/// Current attribution-profile schema identifier.
inline constexpr const char *ProfileSchema = "spprof-v1";

/// The stable cause taxonomy. Dotted names (causeName) are append-only:
/// renaming or removing one is a schema break — dashboards and the
/// BENCH_*.json regression gate key on them.
enum class Cause : uint8_t {
  JitCompile,    ///< trace compilation (on-demand and batch seeding)
  JitExecute,    ///< code-cache execution: dispatch + per-inst VM overhead
  InstrAnalysis, ///< analysis calls and inlined InsertIfCall predicates
  SigSearch,     ///< §4.4 signature recording and detection checks
  SysPlayback,   ///< §4.2 syscall record, playback, and re-execution
  Fork,          ///< fork, COW copies, page allocs, spills, ptrace control
  Merge,         ///< §4.5 in-order slice merging
  RetryWaste,    ///< work discarded by failed attempts + recovery costs
};

inline constexpr unsigned NumCauses = 8;

/// The dotted schema name of \p C ("jit.compile", "sig.search", ...).
const char *causeName(Cause C);

inline unsigned causeIndex(Cause C) { return static_cast<unsigned>(C); }

/// Per-guest-basic-block cost record, keyed by the block's (trace head)
/// pc. InstrTicks is everything the instrumented execution paid that the
/// block triggered — dispatch, compile, per-instruction VM overhead,
/// analysis calls — while NativeTicks is what the same retired
/// instructions would have cost uninstrumented, so InstrTicks/NativeTicks
/// is the block's instrumentation slowdown.
struct BlockProfile {
  uint64_t Pc = 0;
  uint64_t Insts = 0;        ///< instructions retired in this block
  uint64_t Entries = 0;      ///< trace-head dispatches into this block
  os::Ticks InstrTicks = 0;  ///< instrumented cost charged to this block
  os::Ticks NativeTicks = 0; ///< uninstrumented cost of the same work

  void mergeFrom(const BlockProfile &O) {
    Insts += O.Insts;
    Entries += O.Entries;
    InstrTicks += O.InstrTicks;
    NativeTicks += O.NativeTicks;
  }
};

/// Attribution state of one execution lane (the master or one slice).
/// Charge sites report here; the engine's per-step loop reports the
/// consumed total via noteConsumed.
class SliceProfile {
public:
  void charge(Cause C, os::Ticks T) { Causes[causeIndex(C)] += T; }
  void noteNative(os::Ticks T) { Native += T; }
  void noteConsumed(os::Ticks T) { Consumed += T; }

  /// Accumulates block-level cost: \p Insts retired instructions,
  /// \p Instr instrumented ticks, \p NativeT equivalent native ticks, and
  /// \p Entries trace-head dispatches, all charged to block \p Pc.
  void noteBlock(uint64_t Pc, uint64_t Insts, os::Ticks Instr,
                 os::Ticks NativeT, uint64_t Entries) {
    BlockProfile &B = Blocks[Pc];
    B.Pc = Pc;
    B.Insts += Insts;
    B.Entries += Entries;
    B.InstrTicks += Instr;
    B.NativeTicks += NativeT;
  }

  /// Redundancy-suppression telemetry (-spredux): \p Suppressed deferred
  /// analysis calls, \p Flushes aggregate replays, and the net tick delta
  /// \p SavedDelta (positive on deferral, negative on repayment).
  void noteRedux(uint64_t Suppressed, uint64_t Flushes, int64_t SavedDelta) {
    ReduxSuppressed += Suppressed;
    ReduxFlushes += Flushes;
    ReduxSaved += SavedDelta;
  }

  /// Rewinds cause and block attribution to \p AttemptStart (a copy taken
  /// when the attempt began), folding everything charged since into
  /// retry.waste. Consumed and native totals are kept — the ticks were
  /// genuinely spent; only their cause was re-judged as waste.
  void rewindAttempt(const SliceProfile &AttemptStart);

  /// Folds another profile's attribution into this lane: causes, native,
  /// blocks, and redux telemetry are added; Consumed is deliberately NOT
  /// (host-parallel mode charges a slice body to a worker-local profile
  /// and folds it here at retire, while the consumed total accrues on the
  /// simulation thread as the body's recorded charges are replayed against
  /// the lane's real ledger — adding Body's zero consumed keeps the
  /// consumed == native + attributed invariant exact).
  void foldAttribution(const SliceProfile &Body);

  os::Ticks cause(Cause C) const { return Causes[causeIndex(C)]; }
  os::Ticks attributedTicks() const;
  os::Ticks nativeTicks() const { return Native; }
  os::Ticks consumedTicks() const { return Consumed; }
  uint64_t reduxSuppressed() const { return ReduxSuppressed; }
  uint64_t reduxFlushes() const { return ReduxFlushes; }
  /// Net ticks redundancy suppression saved, clamped at zero.
  os::Ticks reduxSavedTicks() const {
    return ReduxSaved > 0 ? static_cast<os::Ticks>(ReduxSaved) : 0;
  }
  const std::unordered_map<uint64_t, BlockProfile> &blocks() const {
    return Blocks;
  }

private:
  std::array<os::Ticks, NumCauses> Causes{};
  os::Ticks Native = 0;
  os::Ticks Consumed = 0;
  uint64_t ReduxSuppressed = 0;
  uint64_t ReduxFlushes = 0;
  int64_t ReduxSaved = 0;
  std::unordered_map<uint64_t, BlockProfile> Blocks;
};

/// The per-run collector: owns one SliceProfile per lane and merges them —
/// block records deduplicated by pc, so a basic block straddling a
/// signature boundary (executed by two adjacent slices) folds into one
/// entry — for the run-level exports.
class ProfileCollector {
public:
  /// The master lane (lazily created).
  SliceProfile &master() { return Master; }
  const SliceProfile &masterProfile() const { return Master; }

  /// Slice \p Num's lane, created on first use. References stay valid for
  /// the collector's lifetime.
  SliceProfile &slice(uint32_t Num) { return Slices[Num]; }
  const std::map<uint32_t, SliceProfile> &slices() const { return Slices; }
  const SliceProfile *findSlice(uint32_t Num) const;

  // Run-level aggregates over every lane.
  os::Ticks totalConsumed() const;
  os::Ticks totalNative() const;
  os::Ticks totalAttributed() const;
  os::Ticks totalCause(Cause C) const;
  uint64_t totalReduxSuppressed() const;
  uint64_t totalReduxFlushes() const;
  os::Ticks totalReduxSaved() const;

  /// All block records merged across lanes (dedup by pc), sorted by
  /// descending instrumented cost, ties by ascending pc.
  std::vector<BlockProfile> mergedBlocks() const;

  /// Writes the "spprof-v1" JSON document with the \p TopN hottest blocks.
  void writeJson(RawOstream &OS, unsigned TopN) const;

  /// Writes the folded-stack export: one
  /// "superpin;<lane>;<cause> <ticks>" line per non-zero bucket, the
  /// format flamegraph.pl and speedscope ingest directly.
  void writeFolded(RawOstream &OS) const;

  /// Exports run-level attribution as "prof.*" counters into \p Stats so
  /// profiles ride the spmetrics-v1 registry channel.
  void exportStatistics(StatisticRegistry &Stats) const;

private:
  SliceProfile Master;
  std::map<uint32_t, SliceProfile> Slices;

  template <typename Fn> void forEachLane(Fn F) const {
    F(std::string("master"), Master);
    for (const auto &[Num, P] : Slices)
      F("slice-" + std::to_string(Num), P);
  }
};

} // namespace spin::prof

#endif // SUPERPIN_PROF_PROFILE_H
