//===- prof/Profile.cpp - Overhead-attribution profiler -------------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "prof/Profile.h"

#include "support/Json.h"
#include "support/RawOstream.h"
#include "support/Statistic.h"

#include <algorithm>

using namespace spin;
using namespace spin::prof;

const char *spin::prof::causeName(Cause C) {
  switch (C) {
  case Cause::JitCompile:
    return "jit.compile";
  case Cause::JitExecute:
    return "jit.execute";
  case Cause::InstrAnalysis:
    return "instr.analysis";
  case Cause::SigSearch:
    return "sig.search";
  case Cause::SysPlayback:
    return "sys.playback";
  case Cause::Fork:
    return "fork";
  case Cause::Merge:
    return "merge";
  case Cause::RetryWaste:
    return "retry.waste";
  }
  return "unknown";
}

os::Ticks SliceProfile::attributedTicks() const {
  os::Ticks Sum = 0;
  for (os::Ticks T : Causes)
    Sum += T;
  return Sum;
}

void SliceProfile::rewindAttempt(const SliceProfile &AttemptStart) {
  os::Ticks Waste = 0;
  for (unsigned I = 0; I != NumCauses; ++I) {
    Waste += Causes[I] - AttemptStart.Causes[I];
    Causes[I] = AttemptStart.Causes[I];
  }
  Causes[causeIndex(Cause::RetryWaste)] += Waste;
  // The dead attempt's deferred calls never produced tool-visible output;
  // its redux telemetry is rewound with the rest of the attribution.
  ReduxSuppressed = AttemptStart.ReduxSuppressed;
  ReduxFlushes = AttemptStart.ReduxFlushes;
  ReduxSaved = AttemptStart.ReduxSaved;
  // Block costs of the dead attempt are discarded rather than kept: the
  // retry re-executes the same blocks, and double-counting them would
  // inflate per-block slowdowns. The ticks themselves survive in the
  // retry.waste bucket above.
  Blocks = AttemptStart.Blocks;
}

void SliceProfile::foldAttribution(const SliceProfile &Body) {
  for (unsigned I = 0; I != NumCauses; ++I)
    Causes[I] += Body.Causes[I];
  Native += Body.Native;
  ReduxSuppressed += Body.ReduxSuppressed;
  ReduxFlushes += Body.ReduxFlushes;
  ReduxSaved += Body.ReduxSaved;
  for (const auto &[Pc, B] : Body.Blocks) {
    BlockProfile &D = Blocks[Pc];
    D.Pc = Pc;
    D.mergeFrom(B);
  }
}

const SliceProfile *ProfileCollector::findSlice(uint32_t Num) const {
  auto It = Slices.find(Num);
  return It == Slices.end() ? nullptr : &It->second;
}

os::Ticks ProfileCollector::totalConsumed() const {
  os::Ticks Sum = 0;
  forEachLane([&](const std::string &, const SliceProfile &P) {
    Sum += P.consumedTicks();
  });
  return Sum;
}

os::Ticks ProfileCollector::totalNative() const {
  os::Ticks Sum = 0;
  forEachLane([&](const std::string &, const SliceProfile &P) {
    Sum += P.nativeTicks();
  });
  return Sum;
}

os::Ticks ProfileCollector::totalAttributed() const {
  os::Ticks Sum = 0;
  forEachLane([&](const std::string &, const SliceProfile &P) {
    Sum += P.attributedTicks();
  });
  return Sum;
}

os::Ticks ProfileCollector::totalCause(Cause C) const {
  os::Ticks Sum = 0;
  forEachLane(
      [&](const std::string &, const SliceProfile &P) { Sum += P.cause(C); });
  return Sum;
}

uint64_t ProfileCollector::totalReduxSuppressed() const {
  uint64_t Sum = 0;
  forEachLane([&](const std::string &, const SliceProfile &P) {
    Sum += P.reduxSuppressed();
  });
  return Sum;
}

uint64_t ProfileCollector::totalReduxFlushes() const {
  uint64_t Sum = 0;
  forEachLane([&](const std::string &, const SliceProfile &P) {
    Sum += P.reduxFlushes();
  });
  return Sum;
}

os::Ticks ProfileCollector::totalReduxSaved() const {
  os::Ticks Sum = 0;
  forEachLane([&](const std::string &, const SliceProfile &P) {
    Sum += P.reduxSavedTicks();
  });
  return Sum;
}

std::vector<BlockProfile> ProfileCollector::mergedBlocks() const {
  // Dedup across lanes by pc: the block at a signature boundary executes
  // in two adjacent slices and must appear once, with summed costs.
  std::unordered_map<uint64_t, BlockProfile> Merged;
  forEachLane([&](const std::string &, const SliceProfile &P) {
    for (const auto &[Pc, B] : P.blocks()) {
      BlockProfile &M = Merged[Pc];
      M.Pc = Pc;
      M.mergeFrom(B);
    }
  });
  std::vector<BlockProfile> Out;
  Out.reserve(Merged.size());
  for (const auto &[Pc, B] : Merged)
    Out.push_back(B);
  std::sort(Out.begin(), Out.end(),
            [](const BlockProfile &A, const BlockProfile &B) {
              if (A.InstrTicks != B.InstrTicks)
                return A.InstrTicks > B.InstrTicks;
              return A.Pc < B.Pc;
            });
  return Out;
}

static double shareOf(os::Ticks Part, os::Ticks Whole) {
  return Whole ? static_cast<double>(Part) / static_cast<double>(Whole) : 0.0;
}

void ProfileCollector::writeJson(RawOstream &OS, unsigned TopN) const {
  os::Ticks Attributed = totalAttributed();
  std::vector<BlockProfile> Blocks = mergedBlocks();

  JsonWriter J(OS);
  J.beginObject();
  J.field("schema", ProfileSchema);
  J.field("total_ticks", totalConsumed());
  J.field("native_ticks", totalNative());
  J.field("attributed_ticks", Attributed);

  J.key("causes").beginObject();
  for (unsigned I = 0; I != NumCauses; ++I) {
    Cause C = static_cast<Cause>(I);
    J.key(causeName(C)).beginObject();
    J.field("ticks", totalCause(C));
    J.field("share", shareOf(totalCause(C), Attributed));
    J.endObject();
  }
  J.endObject();

  J.key("redux").beginObject();
  J.field("calls_suppressed", totalReduxSuppressed());
  J.field("flushes", totalReduxFlushes());
  J.field("saved_ticks", totalReduxSaved());
  J.endObject();

  J.key("lanes").beginArray();
  forEachLane([&](const std::string &Name, const SliceProfile &P) {
    J.beginObject();
    J.field("name", std::string_view(Name));
    J.field("consumed_ticks", P.consumedTicks());
    J.field("native_ticks", P.nativeTicks());
    J.field("attributed_ticks", P.attributedTicks());
    J.key("causes").beginObject();
    for (unsigned I = 0; I != NumCauses; ++I) {
      Cause C = static_cast<Cause>(I);
      if (P.cause(C))
        J.field(causeName(C), P.cause(C));
    }
    J.endObject();
    J.endObject();
  });
  J.endArray();

  J.field("num_blocks", static_cast<uint64_t>(Blocks.size()));
  J.key("hot_blocks").beginArray();
  for (size_t I = 0; I != Blocks.size() && I != TopN; ++I) {
    const BlockProfile &B = Blocks[I];
    J.beginObject();
    J.field("pc", B.Pc);
    J.field("insts", B.Insts);
    J.field("entries", B.Entries);
    J.field("instr_ticks", B.InstrTicks);
    J.field("native_ticks", B.NativeTicks);
    J.field("slowdown", B.NativeTicks
                            ? static_cast<double>(B.InstrTicks) /
                                  static_cast<double>(B.NativeTicks)
                            : 0.0);
    J.endObject();
  }
  J.endArray();
  J.endObject();
  OS << '\n';
}

void ProfileCollector::writeFolded(RawOstream &OS) const {
  forEachLane([&](const std::string &Name, const SliceProfile &P) {
    if (P.nativeTicks())
      OS << "superpin;" << Name << ";native " << P.nativeTicks() << '\n';
    for (unsigned I = 0; I != NumCauses; ++I) {
      Cause C = static_cast<Cause>(I);
      if (P.cause(C))
        OS << "superpin;" << Name << ';' << causeName(C) << ' ' << P.cause(C)
           << '\n';
    }
  });
}

void ProfileCollector::exportStatistics(StatisticRegistry &Stats) const {
  Stats.counter("prof.total_ticks") += totalConsumed();
  Stats.counter("prof.native_ticks") += totalNative();
  Stats.counter("prof.attributed_ticks") += totalAttributed();
  for (unsigned I = 0; I != NumCauses; ++I) {
    Cause C = static_cast<Cause>(I);
    Stats.counter(std::string("prof.cause.") + causeName(C)) += totalCause(C);
  }
  Stats.counter("prof.lanes") += 1 + Slices.size();
  Stats.counter("prof.blocks") += mergedBlocks().size();
  Stats.counter("prof.redux.calls_suppressed") += totalReduxSuppressed();
  Stats.counter("prof.redux.flushes") += totalReduxFlushes();
  Stats.counter("prof.redux.saved_ticks") += totalReduxSaved();
}
