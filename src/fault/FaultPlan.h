//===- fault/FaultPlan.h - Deterministic fault-injection plans --*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded, fully deterministic fault-injection plans for the SuperPin
/// engine. A FaultPlan decides — per slice number, before the slice runs —
/// whether that slice experiences a fault and which kind. The decision is a
/// pure function of (plan seed, slice number), so two runs with the same
/// seed inject exactly the same faults regardless of scheduling, and a test
/// can pin a specific fault on a specific slice with an explicit FaultSpec.
///
/// The engine consumes the plan read-only; the plan never mutates during a
/// run and charges no virtual time. Fault kinds model the failure surface
/// of the paper's disposable instrumented slices: a slice that crashes
/// mid-window, a §4.4 signature that is never detected (runaway slice), a
/// §4.2 syscall-playback record whose effects were corrupted or dropped, a
/// spilled deferred window that is lost before the drain, and a slice that
/// stalls without retiring instructions.
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_FAULT_FAULTPLAN_H
#define SUPERPIN_FAULT_FAULTPLAN_H

#include <cstdint>
#include <map>
#include <optional>

namespace spin {
namespace fault {

/// The kinds of failure the plan can inject into one slice.
enum class FaultKind : uint8_t {
  /// The slice "crashes" (as under a buggy tool) once it has retired
  /// FaultSpec::AtInst instructions of its window.
  SliceCrash,
  /// Signature detection is suppressed for the attempt: the end-of-window
  /// hook is never armed, so the slice runs away past its window.
  SigSuppress,
  /// The recorded effects of the FaultSpec::SysIndex-th playback syscall
  /// are corrupted; playback verification must catch the divergence.
  PlaybackCorrupt,
  /// The FaultSpec::SysIndex-th playback record is dropped from the window,
  /// so playback desynchronises from the recorded syscall sequence.
  SysrecDrop,
  /// A window routed through the deferred/quarantine spill path is lost
  /// before the post-exit drain can run it.
  SpillLoss,
  /// The slice stalls: it burns its whole scheduling budget without
  /// retiring instructions until the stall watchdog kills the attempt.
  SliceStall,
};

/// Number of distinct FaultKind values (for seeded draws and matrices).
inline constexpr unsigned NumFaultKinds = 6;

/// Stable lower-case name for reports and traces, e.g. "slice-crash".
const char *faultKindName(FaultKind Kind);

/// One injected fault, pinned to one slice.
struct FaultSpec {
  FaultKind Kind = FaultKind::SliceCrash;
  /// Slice number (SliceInfo::Num) the fault applies to.
  uint32_t Slice = 0;
  /// For SliceCrash: the attempt dies after retiring this many window
  /// instructions (>= 1).
  uint64_t AtInst = 1;
  /// For PlaybackCorrupt / SysrecDrop: index of the playback record
  /// within the window that is corrupted or dropped.
  uint32_t SysIndex = 0;
  /// How many attempts of the slice the fault affects. 1 models a
  /// transient fault (the first retry succeeds); ~0u models a persistent
  /// fault that follows the window through retries and quarantine.
  uint32_t FailAttempts = 1;
};

/// A deterministic map from slice number to at-most-one FaultSpec.
///
/// Explicitly added specs (add()) always win over the seeded draw, so
/// tests can build exact matrices while fuzz-style sweeps use the seeded
/// constructor alone. An empty plan (no specs, Rate == 0) is "disabled"
/// and the engine treats it exactly like no plan at all.
class FaultPlan {
public:
  /// An empty, disabled plan.
  FaultPlan() = default;

  /// A seeded random plan: each slice independently faults with
  /// probability \p Rate, with kind and parameters drawn from a PRNG
  /// keyed on (Seed, slice number).
  FaultPlan(uint64_t Seed, double Rate);

  /// Pins \p Spec onto slice Spec.Slice, overriding any seeded draw.
  void add(const FaultSpec &Spec) { Explicit[Spec.Slice] = Spec; }

  /// The fault for slice \p SliceNum, if any. Pure: same answer every
  /// call, independent of call order across slices.
  std::optional<FaultSpec> forSlice(uint32_t SliceNum) const;

  /// True when the plan can ever inject a fault.
  bool enabled() const { return !Explicit.empty() || Rate > 0.0; }

  uint64_t seed() const { return Seed; }
  double rate() const { return Rate; }

private:
  uint64_t Seed = 0;
  double Rate = 0.0;
  std::map<uint32_t, FaultSpec> Explicit;
};

} // namespace fault
} // namespace spin

#endif // SUPERPIN_FAULT_FAULTPLAN_H
