//===- fault/FaultPlan.h - Deterministic fault-injection plans --*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded, fully deterministic fault-injection plans for the SuperPin
/// engine. A FaultPlan decides — per slice number, before the slice runs —
/// whether that slice experiences a fault and which kind. The decision is a
/// pure function of (plan seed, slice number), so two runs with the same
/// seed inject exactly the same faults regardless of scheduling, and a test
/// can pin a specific fault on a specific slice with an explicit FaultSpec.
///
/// The engine consumes the plan read-only; the plan never mutates during a
/// run and charges no virtual time. Fault kinds model the failure surface
/// of the paper's disposable instrumented slices: a slice that crashes
/// mid-window, a §4.4 signature that is never detected (runaway slice), a
/// §4.2 syscall-playback record whose effects were corrupted or dropped, a
/// spilled deferred window that is lost before the drain, and a slice that
/// stalls without retiring instructions.
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_FAULT_FAULTPLAN_H
#define SUPERPIN_FAULT_FAULTPLAN_H

#include <cstdint>
#include <map>
#include <optional>

namespace spin {
namespace fault {

/// The kinds of failure the plan can inject into one slice.
enum class FaultKind : uint8_t {
  /// The slice "crashes" (as under a buggy tool) once it has retired
  /// FaultSpec::AtInst instructions of its window.
  SliceCrash,
  /// Signature detection is suppressed for the attempt: the end-of-window
  /// hook is never armed, so the slice runs away past its window.
  SigSuppress,
  /// The recorded effects of the FaultSpec::SysIndex-th playback syscall
  /// are corrupted; playback verification must catch the divergence.
  PlaybackCorrupt,
  /// The FaultSpec::SysIndex-th playback record is dropped from the window,
  /// so playback desynchronises from the recorded syscall sequence.
  SysrecDrop,
  /// A window routed through the deferred/quarantine spill path is lost
  /// before the post-exit drain can run it.
  SpillLoss,
  /// The slice stalls: it burns its whole scheduling budget without
  /// retiring instructions until the stall watchdog kills the attempt.
  SliceStall,

  // Host-fault kinds: failures of the *host* execution substrate under
  // -spmp, not of the simulated slice. They only ever fire on a run that
  // actually dispatched the slice to a worker (a serial run of the same
  // seed is the clean baseline containment must reproduce byte-for-byte),
  // and they are drawn from a separate seeded stream (hostForSlice) so
  // adding them never perturbs the existing six-kind sim draw.

  /// The worker's slice body throws a C++ exception at body start; the
  /// host containment layer must catch it, publish a Fail terminal, and
  /// route recovery through the sim-side ladder.
  WorkerException,
  /// The worker hangs (cooperatively: it spins on the cancellation token
  /// instead of running the body) until the host watchdog cancels it.
  WorkerHang,
  /// The worker's charge stream is silently truncated after
  /// FaultSpec::AtInst events — terminal included — so the sim thread
  /// starves mid-replay and the watchdog must declare the body dead.
  StreamTruncation,
};

/// Number of distinct sim-side FaultKind values (for seeded draws and
/// matrices). Host kinds are deliberately outside this range: the seeded
/// sim draw must stay stable across the host-fault addition.
inline constexpr unsigned NumFaultKinds = 6;

/// Number of host-fault kinds (WorkerException..StreamTruncation).
inline constexpr unsigned NumHostFaultKinds = 3;

/// First host-fault kind, for iterating the host range.
inline constexpr FaultKind FirstHostFaultKind = FaultKind::WorkerException;

/// True for the host-execution fault kinds.
inline constexpr bool isHostFaultKind(FaultKind Kind) {
  return static_cast<unsigned>(Kind) >= NumFaultKinds;
}

/// Stable lower-case name for reports and traces, e.g. "slice-crash".
const char *faultKindName(FaultKind Kind);

/// One injected fault, pinned to one slice.
struct FaultSpec {
  FaultKind Kind = FaultKind::SliceCrash;
  /// Slice number (SliceInfo::Num) the fault applies to.
  uint32_t Slice = 0;
  /// For SliceCrash: the attempt dies after retiring this many window
  /// instructions (>= 1).
  uint64_t AtInst = 1;
  /// For PlaybackCorrupt / SysrecDrop: index of the playback record
  /// within the window that is corrupted or dropped.
  uint32_t SysIndex = 0;
  /// How many attempts of the slice the fault affects. 1 models a
  /// transient fault (the first retry succeeds); ~0u models a persistent
  /// fault that follows the window through retries and quarantine.
  uint32_t FailAttempts = 1;
};

/// A deterministic map from slice number to at-most-one FaultSpec.
///
/// Explicitly added specs (add()) always win over the seeded draw, so
/// tests can build exact matrices while fuzz-style sweeps use the seeded
/// constructor alone. An empty plan (no specs, Rate == 0) is "disabled"
/// and the engine treats it exactly like no plan at all.
class FaultPlan {
public:
  /// An empty, disabled plan.
  FaultPlan() = default;

  /// A seeded random plan: each slice independently faults with
  /// probability \p Rate, with kind and parameters drawn from a PRNG
  /// keyed on (Seed, slice number).
  FaultPlan(uint64_t Seed, double Rate);

  /// Pins \p Spec onto slice Spec.Slice, overriding any seeded draw.
  /// Host-fault kinds go through addHost() — the two draws are separate
  /// maps so a slice can carry both a sim fault and a host fault.
  void add(const FaultSpec &Spec) { Explicit[Spec.Slice] = Spec; }

  /// Pins a host-fault \p Spec (Kind must be a host kind) onto its slice,
  /// overriding any seeded host draw.
  void addHost(const FaultSpec &Spec) { ExplicitHost[Spec.Slice] = Spec; }

  /// Sets the seeded host-fault rate; drawn independently of the sim rate
  /// from a differently-salted PRNG stream.
  void setHostRate(double R) { HostRate = R; }

  /// The sim-side fault for slice \p SliceNum, if any. Pure: same answer
  /// every call, independent of call order across slices.
  std::optional<FaultSpec> forSlice(uint32_t SliceNum) const;

  /// The host-execution fault for slice \p SliceNum, if any. Pure, and
  /// drawn independently of forSlice. Only meaningful on runs that
  /// dispatch bodies to host workers; serial runs ignore it.
  std::optional<FaultSpec> hostForSlice(uint32_t SliceNum) const;

  /// True when the plan can ever inject a fault.
  bool enabled() const {
    return !Explicit.empty() || Rate > 0.0 || hostEnabled();
  }

  /// True when the plan can ever inject a host-execution fault.
  bool hostEnabled() const { return !ExplicitHost.empty() || HostRate > 0.0; }

  uint64_t seed() const { return Seed; }
  double rate() const { return Rate; }
  double hostRate() const { return HostRate; }

private:
  uint64_t Seed = 0;
  double Rate = 0.0;
  double HostRate = 0.0;
  std::map<uint32_t, FaultSpec> Explicit;
  std::map<uint32_t, FaultSpec> ExplicitHost;
};

} // namespace fault
} // namespace spin

#endif // SUPERPIN_FAULT_FAULTPLAN_H
