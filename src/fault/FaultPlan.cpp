//===- fault/FaultPlan.cpp - Deterministic fault-injection plans ----------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "fault/FaultPlan.h"

#include "support/Random.h"

using namespace spin;
using namespace spin::fault;

const char *spin::fault::faultKindName(FaultKind Kind) {
  switch (Kind) {
  case FaultKind::SliceCrash:
    return "slice-crash";
  case FaultKind::SigSuppress:
    return "sig-suppress";
  case FaultKind::PlaybackCorrupt:
    return "playback-corrupt";
  case FaultKind::SysrecDrop:
    return "sysrec-drop";
  case FaultKind::SpillLoss:
    return "spill-loss";
  case FaultKind::SliceStall:
    return "slice-stall";
  case FaultKind::WorkerException:
    return "worker-exception";
  case FaultKind::WorkerHang:
    return "worker-hang";
  case FaultKind::StreamTruncation:
    return "stream-truncation";
  }
  return "unknown";
}

FaultPlan::FaultPlan(uint64_t Seed, double Rate) : Seed(Seed), Rate(Rate) {}

std::optional<FaultSpec> FaultPlan::forSlice(uint32_t SliceNum) const {
  auto It = Explicit.find(SliceNum);
  if (It != Explicit.end())
    return It->second;
  if (Rate <= 0.0)
    return std::nullopt;

  // Key the PRNG on (Seed, SliceNum) so the draw for slice N is independent
  // of how many other slices were queried before it. The golden-ratio
  // multiplier decorrelates adjacent slice numbers before mixing.
  SplitMix64 Rng(Seed ^ (uint64_t(SliceNum) * 0x9e3779b97f4a7c15ULL +
                         0x7f4a7c15ULL));
  if (!Rng.nextBool(Rate))
    return std::nullopt;

  FaultSpec Spec;
  Spec.Slice = SliceNum;
  Spec.Kind = static_cast<FaultKind>(Rng.nextBelow(NumFaultKinds));
  Spec.AtInst = Rng.nextInRange(1, 40'000);
  Spec.SysIndex = static_cast<uint32_t>(Rng.nextBelow(4));
  // ~30% of seeded faults are persistent: they survive every retry and
  // follow the window into quarantine, exercising the whole ladder.
  Spec.FailAttempts = Rng.nextBool(0.3) ? ~0u : 1;
  return Spec;
}

std::optional<FaultSpec> FaultPlan::hostForSlice(uint32_t SliceNum) const {
  auto It = ExplicitHost.find(SliceNum);
  if (It != ExplicitHost.end())
    return It->second;
  if (HostRate <= 0.0)
    return std::nullopt;

  // A separate salt keeps the host draw independent of the sim draw for
  // the same (Seed, SliceNum) — adding a host rate never changes which
  // sim faults fire, so existing seeded sweeps stay bit-stable.
  SplitMix64 Rng(Seed ^ (uint64_t(SliceNum) * 0x9e3779b97f4a7c15ULL +
                         0x632be59bd9b4e019ULL));
  if (!Rng.nextBool(HostRate))
    return std::nullopt;

  FaultSpec Spec;
  Spec.Slice = SliceNum;
  Spec.Kind = static_cast<FaultKind>(
      NumFaultKinds + static_cast<unsigned>(Rng.nextBelow(NumHostFaultKinds)));
  // For StreamTruncation: how many charge events survive before the cut.
  Spec.AtInst = Rng.nextInRange(1, 64);
  Spec.SysIndex = 0;
  // Host faults hit the substrate, not the window: a retry (serial
  // re-execution on the sim thread) always runs clean, so the seeded draw
  // is transient by construction.
  Spec.FailAttempts = 1;
  return Spec;
}
