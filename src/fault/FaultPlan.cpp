//===- fault/FaultPlan.cpp - Deterministic fault-injection plans ----------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "fault/FaultPlan.h"

#include "support/Random.h"

using namespace spin;
using namespace spin::fault;

const char *spin::fault::faultKindName(FaultKind Kind) {
  switch (Kind) {
  case FaultKind::SliceCrash:
    return "slice-crash";
  case FaultKind::SigSuppress:
    return "sig-suppress";
  case FaultKind::PlaybackCorrupt:
    return "playback-corrupt";
  case FaultKind::SysrecDrop:
    return "sysrec-drop";
  case FaultKind::SpillLoss:
    return "spill-loss";
  case FaultKind::SliceStall:
    return "slice-stall";
  }
  return "unknown";
}

FaultPlan::FaultPlan(uint64_t Seed, double Rate) : Seed(Seed), Rate(Rate) {}

std::optional<FaultSpec> FaultPlan::forSlice(uint32_t SliceNum) const {
  auto It = Explicit.find(SliceNum);
  if (It != Explicit.end())
    return It->second;
  if (Rate <= 0.0)
    return std::nullopt;

  // Key the PRNG on (Seed, SliceNum) so the draw for slice N is independent
  // of how many other slices were queried before it. The golden-ratio
  // multiplier decorrelates adjacent slice numbers before mixing.
  SplitMix64 Rng(Seed ^ (uint64_t(SliceNum) * 0x9e3779b97f4a7c15ULL +
                         0x7f4a7c15ULL));
  if (!Rng.nextBool(Rate))
    return std::nullopt;

  FaultSpec Spec;
  Spec.Slice = SliceNum;
  Spec.Kind = static_cast<FaultKind>(Rng.nextBelow(NumFaultKinds));
  Spec.AtInst = Rng.nextInRange(1, 40'000);
  Spec.SysIndex = static_cast<uint32_t>(Rng.nextBelow(4));
  // ~30% of seeded faults are persistent: they survive every retry and
  // follow the window into quarantine, exercising the whole ladder.
  Spec.FailAttempts = Rng.nextBool(0.3) ? ~0u : 1;
  return Spec;
}
