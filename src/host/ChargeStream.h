//===- host/ChargeStream.h - Worker->sim virtual-time stream ----*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bridge that lets a slice body run on a real host thread while the
/// virtual-time engine stays the deterministic oracle.
///
/// The serial engine interleaves a slice's work with virtual time through
/// exactly two ledger operations: hasBudget() checks (which gate progress
/// and decide where a slice pauses between scheduler quanta) and charge()
/// calls (which are linear — between two checks only the sum matters).
/// Host-parallel mode exploits that: the worker executes the whole slice
/// body once against an always-budgeted recording ledger whose ChargeTap
/// emits the canonical check/charge sequence into this stream, and the
/// simulation thread replays the stream against the slice's *real* ledger,
/// reproducing the serial virtual timeline tick for tick — same pause
/// points, same window boundaries, same merge order, byte-identical tool
/// fini output.
///
/// Canonical form (what the recorder emits):
///  * ChargeRun {Sum, Count} — Count repetitions of "budget-gate, then
///    charge Sum ticks". Consecutive equal segments are run-length merged;
///    consecutive checks with no charge between them collapse to one
///    (no state changes between them, so they must agree); zero charges
///    are dropped (no state effect).
///  * Charge {Sum} — an ungated charge (before the first check; charges
///    never require budget, overflow just becomes debt).
///  * Done / Fail — terminal; the slice object now holds the body's end
///    state. Terminals are processed by the replayer immediately,
///    regardless of remaining budget, matching the serial loop-exit
///    semantics (`while (hasBudget() && !EndReached)` leaves the loop in
///    the same step either way).
///
/// Transport is a grow-on-demand chunked SPSC stream: the producer bump-
/// allocates events into 4 KiB chunk slabs from a per-stream arena and
/// never blocks (a bounded ring could deadlock: the sim thread blocks
/// replaying slice k while every worker blocks pushing into the full ring
/// of a later-replayed slice). The consumer blocks on a futex-style
/// atomic wait when it outruns the producer.
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_HOST_CHARGESTREAM_H
#define SUPERPIN_HOST_CHARGESTREAM_H

#include "obs/TraceRecorder.h"
#include "os/Scheduler.h"

#include <atomic>
#include <cassert>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

namespace spin::host {

/// Monotonic wall clock for host watchdog deadlines, in nanoseconds.
/// Host time only — never feeds virtual time.
inline uint64_t monotonicNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// One replayable unit of the recorded virtual-time schedule.
struct ChargeEvent {
  enum class Kind : uint8_t {
    ChargeRun, ///< Count x (budget-gate, charge Sum)
    Charge,    ///< ungated charge of Sum ticks
    Done,      ///< body finished normally (window end reached)
    Fail,      ///< body detected a slice failure (recovery runs sim-side)
    Gate,      ///< standalone budget-gate (no charge; precedes a Trace
               ///< marker whose gating check charged nothing yet)
    Trace,     ///< trace marker: Sum = event arg, Count = packed
               ///< obs::EventKind | obs::EventPhase << 8 (see packTrace)
  };
  uint64_t Sum = 0;
  uint32_t Count = 0;
  Kind EventKind = Kind::ChargeRun;

  /// Packs a trace marker's kind/phase into the Count field.
  static uint32_t packTrace(obs::EventKind K, obs::EventPhase Ph) {
    return static_cast<uint32_t>(K) | (static_cast<uint32_t>(Ph) << 8);
  }
  obs::EventKind traceKind() const {
    return static_cast<obs::EventKind>(Count & 0xff);
  }
  obs::EventPhase tracePhase() const {
    return static_cast<obs::EventPhase>((Count >> 8) & 0xff);
  }
};

/// Unbounded chunked single-producer/single-consumer event stream.
/// Producer: exactly one worker thread. Consumer: the simulation thread.
class ChargeStream {
  /// One slab: events are published by bumping the stream-wide Published
  /// counter (release), never by mutating the slab after the fact.
  struct Chunk {
    static constexpr uint32_t Cap = 256; // 4 KiB of events per slab
    ChargeEvent Events[Cap];
    std::atomic<Chunk *> Next{nullptr};
  };

public:
  ChargeStream() {
    Slabs.push_back(std::make_unique<Chunk>());
    Head = Tail = Slabs.back().get();
  }

  //===--- producer side (worker thread) ----------------------------------===//

  void push(const ChargeEvent &E) {
    uint32_t Idx = ProducerCount % Chunk::Cap;
    if (Idx == 0 && ProducerCount != 0) {
      Slabs.push_back(std::make_unique<Chunk>());
      Chunk *Fresh = Slabs.back().get();
      // Publish the link before any event in the new chunk becomes
      // visible through Published (release pairs with consumer acquire).
      Tail->Next.store(Fresh, std::memory_order_release);
      Tail = Fresh;
      if (GrowthHook)
        GrowthHook(Slabs.size() * sizeof(Chunk));
    }
    Tail->Events[Idx] = E;
    ++ProducerCount;
    Published.store(ProducerCount, std::memory_order_seq_cst);
    if (ConsumerWaiting.load(std::memory_order_seq_cst))
      Published.notify_one();
  }

  //===--- consumer side (simulation thread) ------------------------------===//

  /// Blocks until at least one unconsumed event is available, then returns
  /// a reference to it without consuming it. The producer always ends a
  /// stream with a terminal event, so this cannot block forever.
  const ChargeEvent &peek() {
    waitFor(Consumed + 1);
    // The chunk hop is deferred to here, NOT done in advance(): the
    // producer allocates and links the next chunk lazily, on the push of
    // its first event. Only once that event is published (checked by
    // waitFor just above; its seq_cst store happens after the release
    // store of Next) is the link guaranteed non-null.
    if (NeedHop) {
      Head = Head->Next.load(std::memory_order_acquire);
      assert(Head && "published event but chunk link missing");
      NeedHop = false;
    }
    return Head->Events[Consumed % Chunk::Cap];
  }

  /// Bounded peek: like peek(), but gives up after starving for
  /// \p TimeoutNs of wall time (host watchdog). Returns nullptr on
  /// timeout — the stream is untouched and a later peek()/peekFor() may
  /// still succeed, so a false alarm is recoverable. The timeout clock
  /// starts only when this wait actually starves (any published event
  /// resets it), making the watchdog a bound on producer silence, not on
  /// body length; the non-starved fast path never reads the wall clock.
  /// C++20 atomic waits have no timed variant, so the starved path polls
  /// with micro-sleeps — already a slow path, never on fault-free runs.
  const ChargeEvent *peekFor(uint64_t TimeoutNs) {
    if (!waitForTimeout(Consumed + 1, TimeoutNs))
      return nullptr;
    if (NeedHop) {
      Head = Head->Next.load(std::memory_order_acquire);
      assert(Head && "published event but chunk link missing");
      NeedHop = false;
    }
    return &Head->Events[Consumed % Chunk::Cap];
  }

  /// True if peek() would not block.
  bool available() const {
    return Published.load(std::memory_order_acquire) > Consumed;
  }

  /// Consumes the event last returned by peek().
  void advance() {
    assert(available() && "advance without a peeked event");
    ++Consumed;
    if (Consumed % Chunk::Cap == 0)
      NeedHop = true;
  }

  /// Events published so far (telemetry; producer side).
  uint64_t eventCount() const {
    return Published.load(std::memory_order_relaxed);
  }
  /// Arena footprint in bytes (telemetry).
  uint64_t arenaBytes() const { return Slabs.size() * sizeof(Chunk); }

  /// Observability shim: called on the producer thread each time the
  /// arena grows by a slab, with the new footprint in bytes. Must be set
  /// before the producer starts (the engine sets it at dispatch, before
  /// the worker job is submitted).
  void setGrowthHook(std::function<void(uint64_t)> Hook) {
    GrowthHook = std::move(Hook);
  }

  /// Observability shim: called on the consumer thread with true when a
  /// peek() outruns the producer and enters the blocking wait (after the
  /// brief spin fails), and false when the wait ends. Never fires on the
  /// non-starved fast path, so attaching it costs one predicted branch.
  /// Must be set before the consumer's first peek().
  void setStarveHook(std::function<void(bool)> Hook) {
    StarveHook = std::move(Hook);
  }

  /// Frees the event arena. Only legal once the producer has retired (its
  /// completion record was drained from the CompletionQueue) and the
  /// consumer has replayed the terminal event.
  void releaseArena() {
    Slabs.clear();
    Head = Tail = nullptr;
  }

private:
  void waitFor(uint64_t Target) {
    uint64_t P = Published.load(std::memory_order_acquire);
    if (P >= Target)
      return;
    // Brief spin: the producer is usually mid-burst.
    for (int I = 0; I < 256 && P < Target; ++I)
      P = Published.load(std::memory_order_acquire);
    if (P >= Target)
      return;
    if (StarveHook)
      StarveHook(true);
    while (P < Target) {
      ConsumerWaiting.store(true, std::memory_order_seq_cst);
      P = Published.load(std::memory_order_seq_cst);
      if (P >= Target) {
        ConsumerWaiting.store(false, std::memory_order_relaxed);
        break;
      }
      Published.wait(P, std::memory_order_seq_cst);
      ConsumerWaiting.store(false, std::memory_order_relaxed);
      P = Published.load(std::memory_order_acquire);
    }
    if (StarveHook)
      StarveHook(false);
  }

  /// Timeout-bounded wait; true when the target published, false when
  /// the wait starved for \p TimeoutNs first. The deadline is computed
  /// only after the brief spin fails, so the fast path costs no clock
  /// read.
  bool waitForTimeout(uint64_t Target, uint64_t TimeoutNs) {
    uint64_t P = Published.load(std::memory_order_acquire);
    if (P >= Target)
      return true;
    for (int I = 0; I < 256 && P < Target; ++I)
      P = Published.load(std::memory_order_acquire);
    if (P >= Target)
      return true;
    if (StarveHook)
      StarveHook(true);
    uint64_t DeadlineNs = monotonicNowNs() + TimeoutNs;
    bool Ok = true;
    while (P < Target) {
      if (monotonicNowNs() >= DeadlineNs) {
        Ok = false;
        break;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(50));
      P = Published.load(std::memory_order_acquire);
    }
    if (StarveHook)
      StarveHook(false);
    return Ok;
  }

  // Producer-owned.
  std::vector<std::unique_ptr<Chunk>> Slabs; ///< the per-stream arena
  Chunk *Tail = nullptr;
  uint64_t ProducerCount = 0;
  std::function<void(uint64_t)> GrowthHook; ///< set before producer starts

  // Shared.
  std::atomic<uint64_t> Published{0};
  std::atomic<bool> ConsumerWaiting{false};

  // Consumer-owned.
  std::function<void(bool)> StarveHook; ///< set before first peek()
  Chunk *Head = nullptr;
  uint64_t Consumed = 0;
  bool NeedHop = false; ///< crossed a chunk boundary; hop at next peek()
};

/// A ChargeTap that canonicalises a worker's raw check/charge sequence
/// into ChargeEvents (see file comment for the canonical form) and feeds
/// them to a ChargeStream. Attach to an always-budgeted recording ledger
/// via TickLedger::setTap().
class RecordingTap final : public os::ChargeTap {
public:
  explicit RecordingTap(ChargeStream &Out) : Out(Out) {}

  void onCheck() override {
    closeSegment();
    CurChecked = true;
  }

  void onCharge(os::Ticks Cost) override {
    if (Cost == 0)
      return; // no state effect; dropping keeps segments canonical
    CurSum += Cost;
  }

  /// Interleaves a trace marker into the stream at its exact position in
  /// the canonical check/charge sequence. The replayer re-emits it on the
  /// sim thread stamped with the replay-position virtual clock — which is
  /// exactly the timestamp (and ring position) the serial engine would
  /// have produced, so traces stay byte-identical across worker counts.
  void noteTrace(obs::EventKind K, obs::EventPhase Ph, uint64_t Arg) {
    // If the segment's opening check has gated no charge yet, the marker
    // needs an explicit Gate: folding it into a later ChargeRun would
    // stamp it one step early whenever the preceding charges exactly
    // exhausted the budget.
    bool NeedGate = CurChecked && CurSum == 0;
    closeSegment();
    flushRun();
    // Either way the pending check is now spent (Gate below, or the
    // segment close); a charge after the marker must not re-gate.
    CurChecked = false;
    if (NeedGate) {
      ChargeEvent G;
      G.EventKind = ChargeEvent::Kind::Gate;
      emit(G);
    }
    ChargeEvent E;
    E.EventKind = ChargeEvent::Kind::Trace;
    E.Sum = Arg;
    E.Count = ChargeEvent::packTrace(K, Ph);
    emit(E);
  }

  /// Flushes everything pending and appends the terminal event. Must be
  /// the recorder's last use of the stream.
  void finish(bool Failed) {
    closeSegment();
    CurChecked = false;
    flushRun();
    ChargeEvent T;
    T.EventKind = Failed ? ChargeEvent::Kind::Fail : ChargeEvent::Kind::Done;
    emit(T);
  }

  /// Fault injection (StreamTruncation): silently drop every event —
  /// including the terminal — once \p Events have been pushed. The body
  /// runs to completion but the consumer starves mid-stream, exactly the
  /// shape a worker dying between publishes would leave behind.
  void setTruncateAfter(uint64_t Events) { TruncateAfter = Events; }

  /// True once truncation actually dropped an event — the stream really
  /// is missing its tail (a body short enough to finish under the
  /// threshold emits its terminal and the injected fault is a no-op).
  bool truncated() const { return Dropped; }

private:
  void emit(const ChargeEvent &E) {
    if (Pushed >= TruncateAfter) {
      Dropped = true;
      return;
    }
    ++Pushed;
    Out.push(E);
  }

  /// Ends the current segment at a boundary (the next check, or finish).
  void closeSegment() {
    if (CurSum == 0) {
      // A check with no charges collapses into the next check (or into
      // the terminal, which is processed regardless of budget).
      return;
    }
    if (CurChecked) {
      if (RunCount != 0 && RunSum == CurSum &&
          RunCount != ~uint32_t(0)) { // RLE-merge equal gated segments
        ++RunCount;
      } else {
        flushRun();
        RunSum = CurSum;
        RunCount = 1;
      }
    } else {
      flushRun(); // keep stream order: pending run precedes this charge
      ChargeEvent E;
      E.EventKind = ChargeEvent::Kind::Charge;
      E.Sum = CurSum;
      E.Count = 1;
      emit(E);
    }
    CurSum = 0;
  }

  void flushRun() {
    if (RunCount == 0)
      return;
    ChargeEvent E;
    E.EventKind = ChargeEvent::Kind::ChargeRun;
    E.Sum = RunSum;
    E.Count = RunCount;
    emit(E);
    RunCount = 0;
  }

  ChargeStream &Out;
  uint64_t CurSum = 0;   ///< charges since the last boundary
  bool CurChecked = false; ///< current segment opened with a gate
  uint64_t RunSum = 0;   ///< pending RLE run of gated segments
  uint32_t RunCount = 0;
  uint64_t Pushed = 0;   ///< events pushed so far (truncation accounting)
  uint64_t TruncateAfter = ~uint64_t(0); ///< injected truncation threshold
  bool Dropped = false;  ///< truncation dropped at least one event
};

/// Replays a ChargeStream against the slice's real ledger on the
/// simulation thread. Drives the identical budget-gate/charge sequence the
/// serial engine would have produced; returns control to the scheduler at
/// exactly the serial pause points.
class StreamReplayer {
public:
  explicit StreamReplayer(ChargeStream &In) : In(In) {}

  enum class Step : uint8_t {
    NeedBudget, ///< gate refused: yield, resume here next scheduler step
    Done,       ///< terminal Done consumed
    Fail,       ///< terminal Fail consumed
    Starve,     ///< a wait starved past the timeout: worker presumed dead
  };

  /// Sink for Trace markers encountered mid-replay, invoked on the sim
  /// thread at the marker's replay position (stamp with the scheduler's
  /// current virtual time). Must be set before the first replay() when
  /// the stream may carry markers.
  void setTraceFn(
      std::function<void(obs::EventKind, obs::EventPhase, uint64_t)> Fn) {
    OnTrace = std::move(Fn);
  }

  /// Replays until the ledger runs dry at a gate or a terminal appears.
  /// May block (host time, never virtual time) waiting for the worker.
  /// With a nonzero \p TimeoutNs, any single wait that starves for that
  /// long with the producer silent returns Step::Starve instead of
  /// blocking forever — the host watchdog's detection point. The timeout
  /// bounds producer *silence*, not total body length: it restarts at
  /// every published event, so a healthy long body never trips it as long
  /// as it keeps publishing. The replayer stays resumable after a Starve
  /// (nothing was consumed), so a false alarm is recoverable.
  Step replay(os::TickLedger &Ledger, uint64_t TimeoutNs = 0) {
    while (true) {
      const ChargeEvent *PE;
      if (TimeoutNs) {
        PE = In.peekFor(TimeoutNs);
        if (!PE)
          return Step::Starve;
      } else {
        PE = &In.peek();
      }
      const ChargeEvent &E = *PE;
      switch (E.EventKind) {
      case ChargeEvent::Kind::ChargeRun:
        while (RunDone < E.Count) {
          if (!Ledger.hasBudget())
            return Step::NeedBudget; // gate re-evaluated next step
          Ledger.charge(E.Sum);
          ++RunDone;
        }
        RunDone = 0;
        In.advance();
        break;
      case ChargeEvent::Kind::Charge:
        Ledger.charge(E.Sum);
        In.advance();
        break;
      case ChargeEvent::Kind::Done:
        In.advance();
        return Step::Done;
      case ChargeEvent::Kind::Fail:
        In.advance();
        return Step::Fail;
      case ChargeEvent::Kind::Gate:
        if (!Ledger.hasBudget())
          return Step::NeedBudget; // nothing consumed; resumable
        In.advance();
        break;
      case ChargeEvent::Kind::Trace:
        if (OnTrace)
          OnTrace(E.traceKind(), E.tracePhase(), E.Sum);
        In.advance();
        break;
      }
    }
  }

private:
  ChargeStream &In;
  uint32_t RunDone = 0; ///< progress inside the current RLE run
  std::function<void(obs::EventKind, obs::EventPhase, uint64_t)> OnTrace;
};

} // namespace spin::host

#endif // SUPERPIN_HOST_CHARGESTREAM_H
