//===- host/WorkerPool.h - std::thread slice-body worker pool ---*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size pool of host threads that execute slice bodies submitted
/// by the simulation thread (-spmp <N>). Jobs are coarse — one per slice
/// window — and carry their own per-slice context; the pool only provides
/// threads, a FIFO queue, and a per-worker context (index + scratch
/// statistics). Determinism never depends on which worker runs a job or
/// in what order jobs finish: ordering-critical state flows through each
/// slice's ChargeStream and the CompletionQueue.
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_HOST_WORKERPOOL_H
#define SUPERPIN_HOST_WORKERPOOL_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace spin::host {

/// Per-worker slice context, passed to every job the worker runs.
struct WorkerContext {
  unsigned Worker = 0;   ///< worker index in [0, size())
  uint64_t JobsRun = 0;  ///< jobs this worker has completed (telemetry)
};

class WorkerPool {
public:
  /// A slice-body job. Runs on exactly one worker thread.
  using Job = std::function<void(WorkerContext &)>;

  /// Test shim: when set (before any submit), runs on the worker thread
  /// immediately before each job — host_test uses it to adversarially
  /// delay chosen workers and prove completion order does not depend on
  /// finish order. \p JobSeq is the submission sequence number.
  using JobHook = std::function<void(unsigned Worker, uint64_t JobSeq)>;

  /// Spawns \p N threads. \p N must be >= 1.
  explicit WorkerPool(unsigned N, JobHook Hook = nullptr);

  /// Drains the queue and joins every thread.
  ~WorkerPool();

  WorkerPool(const WorkerPool &) = delete;
  WorkerPool &operator=(const WorkerPool &) = delete;

  /// Enqueues a job (FIFO). Callable from the simulation thread only.
  void submit(Job J);

  unsigned size() const { return static_cast<unsigned>(Threads.size()); }

  /// Clamps a requested worker count: "auto" (represented as ~0u) becomes
  /// std::thread::hardware_concurrency() (at least 1).
  static unsigned clampWorkers(unsigned Requested);

private:
  void workerMain(unsigned Index);

  std::vector<std::thread> Threads;
  std::vector<WorkerContext> Contexts;
  JobHook Hook;

  std::mutex M;
  std::condition_variable Cv;
  std::deque<Job> Queue;
  uint64_t NextJobSeq = 0;
  bool Stopping = false;
};

} // namespace spin::host

#endif // SUPERPIN_HOST_WORKERPOOL_H
