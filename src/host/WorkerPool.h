//===- host/WorkerPool.h - std::thread slice-body worker pool ---*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size pool of host threads that execute slice bodies submitted
/// by the simulation thread (-spmp <N>). Jobs are coarse — one per slice
/// window — and carry their own per-slice context; the pool only provides
/// threads, a FIFO queue, and a per-worker context (index + scratch
/// statistics). Determinism never depends on which worker runs a job or
/// in what order jobs finish: ordering-critical state flows through each
/// slice's ChargeStream and the CompletionQueue.
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_HOST_WORKERPOOL_H
#define SUPERPIN_HOST_WORKERPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace spin::obs {
class HostTraceRecorder;
}

namespace spin::host {

/// Per-worker slice context, passed to every job the worker runs.
struct WorkerContext {
  unsigned Worker = 0;   ///< worker index in [0, size())
  uint64_t JobsRun = 0;  ///< jobs this worker has completed (telemetry)
  /// When host tracing is attached, a job may stamp the instant (recorder
  /// nowNs) its slice body finished; the pool then attributes the rest of
  /// the job (stream finish + completion publish) as retire time. Reset
  /// to 0 before every job; 0 means "whole job is body".
  uint64_t BodyEndNs = 0;
  /// Optional label the job gives its body span (the engine stores the
  /// slice number); the submission sequence is used when left at 0.
  uint64_t BodyArg = 0;
};

class WorkerPool {
public:
  /// A slice-body job. Runs on exactly one worker thread.
  using Job = std::function<void(WorkerContext &)>;

  /// Test shim: when set (before any submit), runs on the worker thread
  /// immediately before each job — host_test uses it to adversarially
  /// delay chosen workers and prove completion order does not depend on
  /// finish order. \p JobSeq is the submission sequence number.
  using JobHook = std::function<void(unsigned Worker, uint64_t JobSeq)>;

  /// Spawns \p N threads. \p N must be >= 1. When \p Rec is non-null the
  /// pool records per-worker wall-clock spans (idle / dispatch-wait /
  /// body / retire) and queue-depth samples into it; Rec->initLanes()
  /// must have been called for at least \p N workers beforehand.
  explicit WorkerPool(unsigned N, JobHook Hook = nullptr,
                      obs::HostTraceRecorder *Rec = nullptr);

  /// Drains the queue and joins every thread.
  ~WorkerPool();

  WorkerPool(const WorkerPool &) = delete;
  WorkerPool &operator=(const WorkerPool &) = delete;

  /// Enqueues a job (FIFO). Callable from the simulation thread only.
  void submit(Job J);

  unsigned size() const { return static_cast<unsigned>(Threads.size()); }

  /// Exceptions the pool's last-resort handler has swallowed (see
  /// workerMain). Nonzero means some job's own containment failed to
  /// catch — the lane was recycled rather than the process terminated.
  uint64_t exceptionsCaught() const {
    return CaughtExceptions.load(std::memory_order_relaxed);
  }

  /// Clamps a requested worker count: "auto" (represented as ~0u) becomes
  /// std::thread::hardware_concurrency() (at least 1); an explicit request
  /// is capped at MaxWorkersPerCore x hardware_concurrency() — thousands
  /// of slice-body threads only ever add context-switch overhead and
  /// memory, never parallelism. \p WasClamped (optional) reports whether
  /// the request was reduced, so callers can warn exactly once.
  static unsigned clampWorkers(unsigned Requested,
                               bool *WasClamped = nullptr);

  /// Oversubscription cap multiplier used by clampWorkers.
  static constexpr unsigned MaxWorkersPerCore = 4;

private:
  struct QueuedJob {
    Job J;
    uint64_t SubmitNs = 0; ///< recorder nowNs at submit (0 = untraced)
  };

  void workerMain(unsigned Index);

  std::vector<std::thread> Threads;
  std::vector<WorkerContext> Contexts;
  JobHook Hook;
  obs::HostTraceRecorder *Rec;

  std::mutex M;
  std::condition_variable Cv;
  std::deque<QueuedJob> Queue;
  uint64_t NextJobSeq = 0;
  bool Stopping = false;
  std::atomic<uint64_t> CaughtExceptions{0};
};

} // namespace spin::host

#endif // SUPERPIN_HOST_WORKERPOOL_H
