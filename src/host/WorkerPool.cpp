//===- host/WorkerPool.cpp - std::thread slice-body worker pool -----------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "host/WorkerPool.h"

#include <utility>

namespace spin::host {

WorkerPool::WorkerPool(unsigned N, JobHook Hook) : Hook(std::move(Hook)) {
  if (N == 0)
    N = 1;
  Contexts.resize(N);
  Threads.reserve(N);
  for (unsigned I = 0; I < N; ++I) {
    Contexts[I].Worker = I;
    Threads.emplace_back([this, I] { workerMain(I); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> Lock(M);
    Stopping = true;
  }
  Cv.notify_all();
  for (std::thread &T : Threads)
    T.join();
}

void WorkerPool::submit(Job J) {
  {
    std::lock_guard<std::mutex> Lock(M);
    Queue.push_back(std::move(J));
  }
  Cv.notify_one();
}

unsigned WorkerPool::clampWorkers(unsigned Requested) {
  if (Requested != ~0u)
    return Requested;
  unsigned Hw = std::thread::hardware_concurrency();
  return Hw == 0 ? 1 : Hw;
}

void WorkerPool::workerMain(unsigned Index) {
  WorkerContext &Ctx = Contexts[Index];
  while (true) {
    Job J;
    uint64_t Seq;
    {
      std::unique_lock<std::mutex> Lock(M);
      Cv.wait(Lock, [&] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        return; // Stopping and drained
      J = std::move(Queue.front());
      Queue.pop_front();
      Seq = NextJobSeq++;
    }
    if (Hook)
      Hook(Index, Seq);
    J(Ctx);
    ++Ctx.JobsRun;
  }
}

} // namespace spin::host
