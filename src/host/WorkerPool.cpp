//===- host/WorkerPool.cpp - std::thread slice-body worker pool -----------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "host/WorkerPool.h"

#include "obs/HostTraceRecorder.h"

#include <algorithm>
#include <utility>

namespace spin::host {

WorkerPool::WorkerPool(unsigned N, JobHook Hook, obs::HostTraceRecorder *Rec)
    : Hook(std::move(Hook)), Rec(Rec) {
  if (N == 0)
    N = 1;
  Contexts.resize(N);
  Threads.reserve(N);
  for (unsigned I = 0; I < N; ++I) {
    Contexts[I].Worker = I;
    Threads.emplace_back([this, I] { workerMain(I); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> Lock(M);
    Stopping = true;
  }
  Cv.notify_all();
  for (std::thread &T : Threads)
    T.join();
}

void WorkerPool::submit(Job J) {
  QueuedJob Q;
  Q.J = std::move(J);
  if (Rec) {
    Q.SubmitNs = Rec->nowNs();
    Rec->counterHere(obs::HostCounterKind::QueueDepth, Rec->addQueueDepth(+1));
  }
  {
    std::lock_guard<std::mutex> Lock(M);
    Queue.push_back(std::move(Q));
  }
  Cv.notify_one();
}

unsigned WorkerPool::clampWorkers(unsigned Requested, bool *WasClamped) {
  if (WasClamped)
    *WasClamped = false;
  unsigned Hw = std::thread::hardware_concurrency();
  if (Hw == 0)
    Hw = 1;
  if (Requested == ~0u)
    return Hw;
  unsigned Cap = Hw > (~0u / MaxWorkersPerCore) ? ~0u
                                                : Hw * MaxWorkersPerCore;
  if (Requested <= Cap)
    return Requested;
  if (WasClamped)
    *WasClamped = true;
  return Cap;
}

void WorkerPool::workerMain(unsigned Index) {
  WorkerContext &Ctx = Contexts[Index];
  // Contiguous attribution: every clock read closes one span and opens
  // the next, so per-kind wall time sums to the lane lifetime exactly.
  uint64_t Prev = 0;
  if (Rec) {
    Rec->bindThread(Index);
    Prev = Rec->nowNs();
    Rec->laneStarted(Index, Prev);
  }
  while (true) {
    QueuedJob Q;
    uint64_t Seq;
    {
      std::unique_lock<std::mutex> Lock(M);
      Cv.wait(Lock, [&] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        break; // Stopping and drained
      Q = std::move(Queue.front());
      Queue.pop_front();
      Seq = NextJobSeq++;
    }
    uint64_t Pick = 0;
    if (Rec) {
      Pick = Rec->nowNs();
      // Idle until the job was submitted, dispatch-wait from then until
      // pickup. SubmitNs precedes Pick in real time; clamp to [Prev,
      // Pick] so a job queued while this worker was busy charges the
      // whole gap to dispatch-wait.
      uint64_t Boundary = std::clamp(Q.SubmitNs, Prev, Pick);
      Rec->span(Index, obs::HostSpanKind::Idle, Prev, Boundary);
      Rec->span(Index, obs::HostSpanKind::DispatchWait, Boundary, Pick);
      Rec->counterHere(obs::HostCounterKind::QueueDepth,
                       Rec->addQueueDepth(-1));
      Ctx.BodyEndNs = 0;
      Ctx.BodyArg = 0;
    }
    if (Hook)
      Hook(Index, Seq);
    // Last-resort isolation: a job's own containment (the engine's
    // try/catch around the slice body) should make this unreachable, but
    // an escape here used to be std::terminate for the whole process. The
    // job's stream terminal and completion record were already published
    // (or the sim-side watchdog will declare the slice dead); either way
    // the worst a swallowed escape can cost is one slice, so recycle the
    // lane and keep serving.
    try {
      Q.J(Ctx);
    } catch (...) {
      CaughtExceptions.fetch_add(1, std::memory_order_relaxed);
    }
    ++Ctx.JobsRun;
    if (Rec) {
      uint64_t End = Rec->nowNs();
      uint64_t BodyEnd =
          Ctx.BodyEndNs ? std::clamp(Ctx.BodyEndNs, Pick, End) : End;
      uint64_t Arg = Ctx.BodyArg ? Ctx.BodyArg : Seq;
      Rec->span(Index, obs::HostSpanKind::Body, Pick, BodyEnd, Arg);
      Rec->span(Index, obs::HostSpanKind::Retire, BodyEnd, End, Arg);
      Prev = End;
    }
  }
  if (Rec) {
    uint64_t Stop = Rec->nowNs();
    Rec->span(Index, obs::HostSpanKind::Idle, Prev, Stop);
    Rec->laneStopped(Index, Stop);
  }
}

} // namespace spin::host
