//===- host/CompletionQueue.h - MPSC ordered slice completions --*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The many-producer/single-consumer slice-completion queue. Workers push
/// a completion record as the *last* action of a slice job (after the
/// terminal ChargeEvent); the simulation thread drains records strictly in
/// slice-merge order, regardless of the order host threads finish in —
/// this is what keeps the merge sequence (and therefore all shared-state
/// folds and the tool fini output) deterministic, and it doubles as the
/// retire barrier: once a slice's record is drained, its worker has
/// returned from every touch of the slice's ChargeStream, so the stream
/// arena can be freed.
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_HOST_COMPLETIONQUEUE_H
#define SUPERPIN_HOST_COMPLETIONQUEUE_H

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>

namespace spin::host {

/// What a worker reports when it retires a slice body.
struct SliceCompletion {
  uint32_t SliceNum = 0;     ///< slice (window) number
  uint32_t Worker = 0;       ///< worker index that ran the body
  bool Failed = false;       ///< body ended with a detected failure
  bool Exception = false;    ///< body threw; containment runs sim-side
  bool Cancelled = false;    ///< body exited through the cancel token
  bool Truncated = false;    ///< body's stream was truncated (injection)
  uint64_t StreamEvents = 0; ///< ChargeEvents published (telemetry)
  uint64_t ArenaBytes = 0;   ///< stream arena footprint (telemetry)
  double HostSeconds = 0;    ///< wall-clock seconds the body took
};

/// MPSC queue with keyed, ordered drain: producers push in any order;
/// the single consumer asks for specific slice numbers in merge order and
/// blocks until each arrives.
class CompletionQueue {
public:
  void push(const SliceCompletion &C) {
    {
      std::lock_guard<std::mutex> Lock(M);
      Ready.emplace(C.SliceNum, C);
    }
    Cv.notify_one();
  }

  /// Blocks until the record for \p SliceNum is present, removes and
  /// returns it. Host-time blocking only; never affects virtual time.
  SliceCompletion pop(uint32_t SliceNum) {
    std::unique_lock<std::mutex> Lock(M);
    Cv.wait(Lock, [&] { return Ready.count(SliceNum) != 0; });
    auto It = Ready.find(SliceNum);
    SliceCompletion C = It->second;
    Ready.erase(It);
    return C;
  }

  /// Bounded pop for containment paths: waits at most \p TimeoutMs for
  /// \p SliceNum's record. True (with \p Out filled) on arrival, false on
  /// timeout — the caller decides whether a missing record is fatal (a
  /// genuinely wedged worker) or just slow.
  bool popFor(uint32_t SliceNum, uint64_t TimeoutMs, SliceCompletion &Out) {
    std::unique_lock<std::mutex> Lock(M);
    if (!Cv.wait_for(Lock, std::chrono::milliseconds(TimeoutMs),
                     [&] { return Ready.count(SliceNum) != 0; }))
      return false;
    auto It = Ready.find(SliceNum);
    Out = It->second;
    Ready.erase(It);
    return true;
  }

  /// Non-blocking variant for tests and opportunistic drains.
  bool tryPop(uint32_t SliceNum, SliceCompletion &Out) {
    std::lock_guard<std::mutex> Lock(M);
    auto It = Ready.find(SliceNum);
    if (It == Ready.end())
      return false;
    Out = It->second;
    Ready.erase(It);
    return true;
  }

  /// Records currently queued (telemetry/tests).
  size_t pending() const {
    std::lock_guard<std::mutex> Lock(M);
    return Ready.size();
  }

private:
  mutable std::mutex M;
  std::condition_variable Cv;
  std::map<uint32_t, SliceCompletion> Ready;
};

} // namespace spin::host

#endif // SUPERPIN_HOST_COMPLETIONQUEUE_H
