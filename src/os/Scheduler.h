//===- os/Scheduler.h - Discrete-time multiprocessor simulator --*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic discrete-time multiprocessor. Tasks (the master
/// application, SuperPin slices, serial Pin runs) are cooperative SimTask
/// objects that consume granted ticks; the scheduler advances a virtual
/// wall clock in fixed quanta, selecting up to VirtCpus runnable tasks per
/// quantum and scaling their grants for SMT sharing and SMP memory-system
/// contention (paper Section 6.3: hyperthreading and SMP scalability
/// effects).
///
/// This substitutes for the paper's 8-way Xeon host: parallel wall-clock
/// behaviour is simulated in virtual time so all experiment shapes are
/// machine-independent and bit-reproducible (see DESIGN.md Section 2).
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_OS_SCHEDULER_H
#define SUPERPIN_OS_SCHEDULER_H

#include "os/CostModel.h"

#include <atomic>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace spin::obs {
class TraceRecorder;
}

namespace spin::os {

enum class TaskStatus : uint8_t {
  Runnable, ///< wants CPU
  Blocked,  ///< waits for an explicit wake()
  Exited,   ///< finished; never scheduled again
};

struct TaskStep {
  Ticks Used = 0;
  TaskStatus Status = TaskStatus::Runnable;
};

/// A cooperative simulated thread of execution.
class SimTask {
public:
  virtual ~SimTask();
  virtual std::string_view name() const = 0;

  /// Consumes up to \p Budget ticks of work. Implementations use a
  /// TickLedger to carry over actions whose cost exceeds the grant.
  virtual TaskStep step(Ticks Budget) = 0;
};

/// Observer of a TickLedger's charge/check sequence. Host-parallel mode
/// (src/host) records the sequence a worker thread produces against an
/// always-budgeted ledger, then replays the same sequence against the
/// slice's real ledger on the simulation thread; because charges are
/// linear, only the sums between budget checks matter, so the recording
/// coalesces them (see host/ChargeStream.h).
class ChargeTap {
public:
  virtual ~ChargeTap();
  /// hasBudget() was consulted.
  virtual void onCheck() = 0;
  /// charge(Cost) was applied.
  virtual void onCharge(Ticks Cost) = 0;
};

/// Grant-consumption bookkeeping for SimTask implementations. An action
/// whose cost exceeds the remaining grant is applied immediately but its
/// unpaid cost carries over as debt into the next step, so expensive
/// events (fork, signature record, JIT bursts) stretch over virtual time
/// without the task having to split them.
class TickLedger {
public:
  /// Starts a step with \p Budget ticks; outstanding debt is paid first.
  void beginStep(Ticks Budget) {
    this->Budget = Budget;
    Used = Debt < Budget ? Debt : Budget;
    Debt -= Used;
  }

  /// True while the task may take another action this step. A cancelled
  /// ledger reports no budget at every gate, which is how a host worker's
  /// body is asked to stop: the body's own budget-check loop exits at its
  /// next gate without any new unwinding path through the VM.
  bool hasBudget() const {
    if (Cancel && Cancel->load(std::memory_order_relaxed))
      return false;
    if (Tap)
      Tap->onCheck();
    return Debt == 0 && Used < Budget;
  }

  /// True once the attached cancellation token (if any) fired.
  bool cancelled() const {
    return Cancel && Cancel->load(std::memory_order_relaxed);
  }

  /// Remaining ticks in this step's grant (0 when in debt).
  Ticks remaining() const { return Debt == 0 ? Budget - Used : 0; }

  /// Charges \p Cost ticks; overflow beyond the grant becomes debt.
  void charge(Ticks Cost) {
    if (Tap)
      Tap->onCharge(Cost);
    TotalCharged += Cost;
    Ticks Avail = Budget - Used;
    if (Cost <= Avail) {
      Used += Cost;
      return;
    }
    Debt += Cost - Avail;
    Used = Budget;
  }

  Ticks used() const { return Used; }
  bool inDebt() const { return Debt != 0; }

  /// Lifetime sum of every charge(), independent of step grants and debt.
  /// used() deltas are unreliable across a charge that overflows into
  /// debt, so attribution code brackets opaque calls with this instead.
  Ticks totalCharged() const { return TotalCharged; }

  /// Attaches (or detaches, with nullptr) a charge/check observer. Only
  /// host-parallel recording ledgers set this; it is null on every ledger
  /// the scheduler steps directly.
  void setTap(ChargeTap *T) { Tap = T; }

  /// Attaches (or detaches, with nullptr) a cooperative cancellation
  /// token. Another thread stores true to make every subsequent
  /// hasBudget() return false; relaxed loads keep the fault-free cost to
  /// one predicted branch per gate. Only host-parallel recording ledgers
  /// set this.
  void setCancelToken(const std::atomic<bool> *T) { Cancel = T; }

private:
  Ticks Debt = 0;
  Ticks Budget = 0;
  Ticks Used = 0;
  Ticks TotalCharged = 0;
  ChargeTap *Tap = nullptr;
  const std::atomic<bool> *Cancel = nullptr;
};

/// The discrete-time multiprocessor.
class Scheduler {
public:
  using TaskId = uint32_t;

  /// \p PhysCpus physical cores; \p VirtCpus schedulable contexts
  /// (> PhysCpus models SMT/hyperthreading).
  Scheduler(const CostModel &Model, unsigned PhysCpus, unsigned VirtCpus);

  /// Adds a task (safe to call from inside a running task's step()).
  /// \p StartBlocked tasks wait for a wake() before first scheduling.
  TaskId addTask(std::unique_ptr<SimTask> Task, bool StartBlocked = false);

  /// Makes a blocked task runnable (no-op if runnable or exited).
  void wake(TaskId Id);

  /// True if the task has exited.
  bool hasExited(TaskId Id) const;

  /// Runs quanta until every task has exited. Reports a fatal error on
  /// deadlock (only blocked tasks remain) or livelock (no runnable task
  /// consumes any ticks for many consecutive rounds).
  void runToCompletion();

  /// Virtual wall clock.
  Ticks now() const { return Clock; }
  uint64_t nowMs() const { return Model.ticksToMs(Clock); }

  /// Total work ticks consumed by a task so far.
  Ticks cpuTime(TaskId Id) const;

  /// Peak number of tasks selected in one quantum (parallelism achieved).
  unsigned peakParallelism() const { return PeakParallel; }

  /// Attaches a trace recorder; the scheduler emits a "sched.parallelism"
  /// counter sample whenever the number of selected tasks changes.
  void setTrace(obs::TraceRecorder *Recorder) { Trace = Recorder; }

  const CostModel &costModel() const { return Model; }

private:
  struct Entry {
    std::unique_ptr<SimTask> Task;
    TaskStatus Status;
    Ticks CpuTicks = 0;
  };

  const CostModel &Model;
  unsigned PhysCpus;
  unsigned VirtCpus;
  Ticks Quantum;
  Ticks Clock = 0;
  std::vector<Entry> Tasks;
  size_t RotateCursor = 0;
  unsigned PeakParallel = 0;
  obs::TraceRecorder *Trace = nullptr;
  unsigned LastTracedParallel = ~0u;

  /// Per-task grant multiplier when K tasks run together.
  double speedFactor(unsigned K) const;
};

} // namespace spin::os

#endif // SUPERPIN_OS_SCHEDULER_H
