//===- os/Syscalls.h - Guest system-call ABI --------------------*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The guest system-call ABI and SuperPin's syscall taxonomy (paper §4.2).
///
/// Calling convention: syscall number in r0, arguments in r1..r3, result in
/// r0. The taxonomy determines how the control process treats each syscall
/// when the master performs it:
///
///  * Duplicable — a slice may simply re-execute the call against its own
///    (forked) kernel state and obtain identical results: `brk`, anonymous
///    `mmap` (deterministic placement), `munmap`, `rand` (per-process
///    PRNG state forks with the process).
///  * Replayable — results depend on global or external state; the control
///    process records register results and memory effects and slices play
///    them back: `read` (external input), `write` (slices must not emit
///    output twice), `gettimems` (slices run later than the master did),
///    `getpid` (slices have different pids).
///  * ForceSlice — the paper's "unsure about the effects" default: end the
///    current timeslice at this syscall: `open`, `close`, and the thread
///    syscalls (`thread_create`/`thread_exit`), so a slice's window always
///    covers a fixed thread population and the deterministic round-robin
///    schedule replays exactly (the §8 multithreading extension).
///  * Exit — terminates the process (and for the master, the run).
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_OS_SYSCALLS_H
#define SUPERPIN_OS_SYSCALLS_H

#include <cstdint>
#include <string_view>

namespace spin::os {

enum class Sys : uint64_t {
  Exit = 0,      ///< exit(code): terminate the process
  Write = 1,     ///< write(fd, buf, len) -> len
  Read = 2,      ///< read(fd, buf, len) -> bytes read
  Brk = 3,       ///< brk(addr) -> new break (addr==0 queries)
  MmapAnon = 4,  ///< mmap_anon(len) -> addr (deterministic placement)
  Munmap = 5,    ///< munmap(addr, len) -> 0
  GetTimeMs = 6, ///< gettimems() -> virtual wall clock in ms
  GetPid = 7,    ///< getpid() -> pid
  Rand = 8,      ///< rand() -> 64-bit pseudo-random value (per-process)
  Open = 9,      ///< open(path) -> fd; synthetic deterministic file
  Close = 10,    ///< close(fd) -> 0
  ThreadCreate = 11, ///< thread_create(pc, sp) -> tid (§8 extension)
  ThreadExit = 12,   ///< thread_exit(): ends the calling thread
  NumSyscalls
};

/// SuperPin's treatment of a master syscall (paper Section 4.2).
enum class SyscallClass : uint8_t {
  Duplicable, ///< slices re-execute against forked kernel state
  Replayable, ///< control records effects; slices play them back
  ForceSlice, ///< always start a new timeslice at this syscall
  Exit,       ///< process termination
};

/// Returns the SuperPin taxonomy class of \p Number. Unknown numbers
/// classify as ForceSlice (the paper's conservative default).
SyscallClass classifySyscall(uint64_t Number);

/// Returns a printable name ("read", "brk", ...; "unknown" otherwise).
std::string_view getSyscallName(uint64_t Number);

} // namespace spin::os

#endif // SUPERPIN_OS_SYSCALLS_H
