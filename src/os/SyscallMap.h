//===- os/SyscallMap.h - Static syscall-site map ----------------*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An ahead-of-time map of a program's syscall instructions, built by the
/// analysis library (Passes.h) and consumed by the SuperPin master: a site
/// whose syscall number is statically known carries its §4.2 taxonomy class
/// precomputed, so the control logic can predict slice boundaries at the
/// trap pc instead of classifying from scratch at every ptrace stop. The
/// runtime must still compare the trapped number against the static one —
/// a site reached with a different r0 (computed numbers) falls back to
/// trap-time classification, which keeps the prediction behavior-neutral.
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_OS_SYSCALLMAP_H
#define SUPERPIN_OS_SYSCALLMAP_H

#include "os/Syscalls.h"

#include <cstdint>
#include <unordered_map>

namespace spin::os {

/// One statically discovered syscall instruction.
struct SyscallSite {
  uint64_t Pc = 0;
  /// True when the syscall number (r0 at the site) resolved statically.
  bool NumberKnown = false;
  uint64_t Number = 0;              ///< valid when NumberKnown
  SyscallClass Class = SyscallClass::ForceSlice; ///< valid when NumberKnown
};

/// Static syscall sites keyed by pc.
class StaticSyscallMap {
public:
  void add(const SyscallSite &S) { Sites[S.Pc] = S; }

  /// The site at \p Pc, or nullptr if \p Pc is not a static syscall site.
  const SyscallSite *site(uint64_t Pc) const {
    auto It = Sites.find(Pc);
    return It == Sites.end() ? nullptr : &It->second;
  }

  uint64_t numSites() const { return Sites.size(); }

  uint64_t numClassified() const {
    uint64_t N = 0;
    for (const auto &[Pc, S] : Sites)
      N += S.NumberKnown;
    return N;
  }

  bool empty() const { return Sites.empty(); }

private:
  std::unordered_map<uint64_t, SyscallSite> Sites;
};

} // namespace spin::os

#endif // SUPERPIN_OS_SYSCALLMAP_H
