//===- os/Scheduler.cpp - Discrete-time multiprocessor simulator ----------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "os/Scheduler.h"

#include "obs/TraceRecorder.h"
#include "support/ErrorHandling.h"

#include <cassert>
#include <cmath>

using namespace spin;
using namespace spin::os;

SimTask::~SimTask() = default;
ChargeTap::~ChargeTap() = default;

Scheduler::Scheduler(const CostModel &Model, unsigned PhysCpus,
                     unsigned VirtCpus)
    : Model(Model), PhysCpus(PhysCpus), VirtCpus(VirtCpus),
      Quantum(Model.TicksPerMs / 10) {
  assert(PhysCpus >= 1 && VirtCpus >= PhysCpus && "bad CPU configuration");
  if (Quantum == 0)
    Quantum = 1;
}

Scheduler::TaskId Scheduler::addTask(std::unique_ptr<SimTask> Task,
                                     bool StartBlocked) {
  Tasks.push_back(Entry{std::move(Task), StartBlocked ? TaskStatus::Blocked
                                                      : TaskStatus::Runnable});
  return static_cast<TaskId>(Tasks.size() - 1);
}

void Scheduler::wake(TaskId Id) {
  assert(Id < Tasks.size() && "bad task id");
  if (Tasks[Id].Status == TaskStatus::Blocked)
    Tasks[Id].Status = TaskStatus::Runnable;
}

bool Scheduler::hasExited(TaskId Id) const {
  assert(Id < Tasks.size() && "bad task id");
  return Tasks[Id].Status == TaskStatus::Exited;
}

Ticks Scheduler::cpuTime(TaskId Id) const {
  assert(Id < Tasks.size() && "bad task id");
  return Tasks[Id].CpuTicks;
}

double Scheduler::speedFactor(unsigned K) const {
  assert(K >= 1 && "no tasks selected");
  double PerTask = 1.0;
  if (K > PhysCpus) {
    // SMT: K contexts share PhysCpus cores; total throughput is boosted by
    // SmtThroughput but divided among the sharers.
    PerTask = static_cast<double>(PhysCpus) * Model.SmtThroughput /
              static_cast<double>(K);
    if (PerTask > 1.0)
      PerTask = 1.0;
  }
  // SMP memory-system contention: every additional busy core taxes all.
  unsigned BusyCores = K < PhysCpus ? K : PhysCpus;
  PerTask /= 1.0 + Model.SmpTaxPerCpu * static_cast<double>(BusyCores - 1);
  return PerTask;
}

void Scheduler::runToCompletion() {
  unsigned IdleRounds = 0;
  while (true) {
    // Snapshot the runnable set (tasks added during this quantum run next
    // quantum). Start from a rotating cursor for round-robin fairness.
    size_t NumTasks = Tasks.size();
    std::vector<TaskId> Selected;
    Selected.reserve(VirtCpus);
    bool AnyBlocked = false;
    bool AnyAlive = false;
    for (size_t Off = 0; Off != NumTasks; ++Off) {
      TaskId Id = static_cast<TaskId>((RotateCursor + Off) % NumTasks);
      TaskStatus S = Tasks[Id].Status;
      if (S == TaskStatus::Exited)
        continue;
      AnyAlive = true;
      if (S == TaskStatus::Blocked) {
        AnyBlocked = true;
        continue;
      }
      if (Selected.size() < VirtCpus)
        Selected.push_back(Id);
    }
    if (!AnyAlive)
      return; // All tasks finished.
    if (Selected.empty()) {
      if (AnyBlocked) {
        std::string Msg = "scheduler deadlock: all live tasks blocked:";
        for (const Entry &E : Tasks)
          if (E.Status == TaskStatus::Blocked) {
            Msg += ' ';
            Msg += E.Task->name();
          }
        reportFatalError(Msg);
      }
      return;
    }
    RotateCursor = (RotateCursor + 1) % NumTasks;

    unsigned K = static_cast<unsigned>(Selected.size());
    if (K > PeakParallel)
      PeakParallel = K;
    if (Trace && K != LastTracedParallel) {
      Trace->counter(obs::EventKind::Parallelism, Clock, K);
      LastTracedParallel = K;
    }
    Ticks Grant = static_cast<Ticks>(
        std::floor(static_cast<double>(Quantum) * speedFactor(K)));
    if (Grant == 0)
      Grant = 1;

    Ticks TotalUsed = 0;
    for (TaskId Id : Selected) {
      // A task selected earlier in this quantum may have been blocked by a
      // peer or may have exited via a wake-handler; honor its new status.
      if (Tasks[Id].Status != TaskStatus::Runnable)
        continue;
      TaskStep Result = Tasks[Id].Task->step(Grant);
      assert(Result.Used <= Grant && "task overused its grant");
      Tasks[Id].CpuTicks += Result.Used;
      Tasks[Id].Status = Result.Status;
      TotalUsed += Result.Used;
    }

    Clock += Quantum;
    if (TotalUsed == 0) {
      if (++IdleRounds > 100000)
        reportFatalError("scheduler livelock: runnable tasks make no "
                         "progress");
    } else {
      IdleRounds = 0;
    }
  }
}
