//===- os/DirectRun.cpp - Run a guest program to completion ---------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "os/DirectRun.h"

#include "os/Kernel.h"
#include "os/Process.h"
#include "support/ErrorHandling.h"
#include "vm/Interpreter.h"

using namespace spin;
using namespace spin::os;
using namespace spin::vm;

DirectRunResult spin::os::runDirect(const Program &Prog, uint64_t MaxInsts) {
  Process Proc = Process::create(Prog);
  Interpreter Interp(Prog, Proc.Cpu, Proc.Mem);
  DirectRunResult Result;

  while (Proc.Status == ProcStatus::Running &&
         Interp.instructionsRetired() < MaxInsts) {
    // Chunks are capped by the guest-thread quantum so multithreaded
    // programs follow the deterministic round-robin schedule; an expired
    // quantum drains to the next basic-block boundary before rotating.
    uint64_t Budget = MaxInsts - Interp.instructionsRetired();
    RunResult R;
    if (Proc.quantumExpired()) {
      R = Interp.runToBlockEnd(Budget);
    } else {
      uint64_t Cap =
          Budget < Proc.quantumLeft() ? Budget : Proc.quantumLeft();
      R = Interp.run(Cap);
    }
    Proc.noteRetired(R.InstsExecuted);
    switch (R.Reason) {
    case StopReason::Syscall: {
      SystemContext Ctx;
      Ctx.NowMs = Interp.instructionsRetired() / 1000;
      Ctx.OutputBuf = &Result.Output;
      serviceSyscall(Proc, Ctx, nullptr);
      Interp.noteSyscallRetired();
      Proc.noteRetired(1);
      ++Result.Syscalls;
      break;
    }
    case StopReason::Halt:
      reportFatalError("guest program '" + Prog.Name +
                       "' executed halt (programs must exit via syscall)");
    case StopReason::BadPc:
      reportFatalError("guest program '" + Prog.Name +
                       "' jumped outside its text segment");
    case StopReason::Budget:
    case StopReason::BlockEnd:
      break;
    }
    if (Proc.quantumExpired() && (R.Reason == StopReason::BlockEnd ||
                                  R.Reason == StopReason::Syscall ||
                                  R.EndedAtBlockBoundary))
      Proc.rotateThread();
  }

  Result.Exited = Proc.Status == ProcStatus::Exited;
  Result.ExitCode = Proc.ExitCode;
  Result.Insts = Interp.instructionsRetired();
  return Result;
}
