//===- os/Kernel.h - Deterministic guest kernel -----------------*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulated kernel: services guest syscalls deterministically and can
/// report the full effects of each call (register result + memory writes)
/// so that SuperPin's control process can record them for slice playback
/// (paper Section 4.2).
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_OS_KERNEL_H
#define SUPERPIN_OS_KERNEL_H

#include "os/CostModel.h"
#include "os/Syscalls.h"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace spin {
class ByteReader;
class ByteWriter;
} // namespace spin

namespace spin::obs {
class TraceSink;
}

namespace spin::os {

class Process;

/// Environment the kernel needs beyond per-process state.
struct SystemContext {
  /// Virtual wall clock in milliseconds (from the scheduler).
  uint64_t NowMs = 0;
  /// When true, Write syscalls compute results but emit nothing (slices
  /// must not duplicate the master's output).
  bool SuppressOutput = false;
  /// Receives Write output when not suppressed; may be null.
  std::string *OutputBuf = nullptr;
  /// When non-null, serviceSyscall emits a "sys.service" instant on
  /// \p TraceLane at \p TraceNow (the caller's virtual timestamp).
  obs::TraceSink *Trace = nullptr;
  uint32_t TraceLane = 0;
  Ticks TraceNow = 0;
};

/// The recorded effects of one serviced syscall — everything a slice needs
/// to reproduce it without re-executing (paper Section 4.2's
/// record-and-playback records).
struct SyscallEffects {
  uint64_t Number = 0;
  uint64_t RetVal = 0;
  bool ProcessExited = false;
  /// Guest memory modified by the kernel (e.g. a read() buffer).
  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> MemWrites;

  /// Approximate record footprint in bytes (for stats).
  uint64_t sizeBytes() const;

  bool operator==(const SyscallEffects &Other) const = default;
};

/// Serializes \p Effects into \p W (the replay-log wire format: number,
/// retval, exit flag, then each memory write as address + byte blob).
void encodeSyscallEffects(const SyscallEffects &Effects, ByteWriter &W);

/// Decodes one record written by encodeSyscallEffects. On malformed input
/// the reader's error flag latches; check ByteReader::failed().
SyscallEffects decodeSyscallEffects(ByteReader &R);

/// Order-sensitive FNV-1a digest of \p Effects (number, retval, exit flag,
/// every memory write). Playback verification compares the digest taken at
/// record time against the record presented at playback time, so a
/// corrupted or swapped record is caught before its effects are applied.
uint64_t hashSyscallEffects(const SyscallEffects &Effects);

/// Services the syscall \p Proc's pc points at: executes its semantics,
/// writes the result to r0, advances pc past the syscall instruction, and
/// (if \p Effects is non-null) records the full effects.
///
/// \pre Proc.Cpu.Pc addresses a Syscall instruction.
void serviceSyscall(Process &Proc, const SystemContext &Ctx,
                    SyscallEffects *Effects);

/// Applies previously recorded \p Effects to \p Proc instead of
/// re-executing the syscall: sets r0, replays memory writes, advances pc.
/// This is the slice-side playback path.
void playbackSyscall(Process &Proc, const SyscallEffects &Effects);

/// Reads the syscall number a stopped process is about to execute (r0).
uint64_t pendingSyscallNumber(const Process &Proc);

} // namespace spin::os

#endif // SUPERPIN_OS_KERNEL_H
