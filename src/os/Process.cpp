//===- os/Process.cpp - Simulated guest process ---------------------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "os/Process.h"

#include <cassert>

using namespace spin;
using namespace spin::os;
using namespace spin::vm;

Process Process::create(const Program &Prog) {
  Process P(Prog);
  Prog.loadDataInto(P.Mem);
  // Leave a small red zone below StackTop so [sp + small] stays mapped.
  P.Cpu.setSp(AddressLayout::StackTop - 256);
  P.Cpu.Pc = Prog.EntryPc;
  P.Threads.resize(1);
  P.Threads[0].Live = true; // Slot contents live in Cpu while current.
  return P;
}

Process Process::fork(uint64_t ChildPid) const {
  Process Child(*Prog);
  Child.Cpu = Cpu;
  Child.Mem = Mem.fork();
  Child.Kern = Kern;
  Child.Kern.Pid = ChildPid;
  Child.Status = Status;
  Child.ExitCode = ExitCode;
  Child.Threads = Threads;
  Child.CurThread = CurThread;
  Child.LiveThreads = LiveThreads;
  Child.QuantumLeft = QuantumLeft;
  return Child;
}

Process Process::snapshot(uint64_t ChildPid) const {
  Process Child(*Prog);
  Child.Cpu = Cpu;
  Child.Mem = Mem.clone();
  Child.Kern = Kern;
  Child.Kern.Pid = ChildPid;
  Child.Status = Status;
  Child.ExitCode = ExitCode;
  Child.Threads = Threads;
  Child.CurThread = CurThread;
  Child.LiveThreads = LiveThreads;
  Child.QuantumLeft = QuantumLeft;
  return Child;
}

uint64_t Process::spawnThread(uint64_t Pc, uint64_t Sp) {
  ThreadSlot Slot;
  Slot.Cpu.Pc = Pc;
  Slot.Cpu.setSp(Sp);
  Slot.Live = true;
  Threads.push_back(Slot);
  ++LiveThreads;
  return Threads.size() - 1;
}

void Process::exitCurrentThread() {
  assert(Threads[CurThread].Live && "current thread already dead");
  Threads[CurThread].Live = false;
  --LiveThreads;
  if (LiveThreads == 0) {
    Status = ProcStatus::Exited;
    ExitCode = 0;
    return;
  }
  switchToNextThread();
}

void Process::switchToNextThread() {
  assert(LiveThreads >= 1 && "no live thread to switch to");
  // Park the current state (even if dead; harmless) and find the next
  // live slot in circular tid order.
  Threads[CurThread].Cpu = Cpu;
  uint32_t Next = CurThread;
  do {
    Next = (Next + 1) % Threads.size();
  } while (!Threads[Next].Live);
  CurThread = Next;
  Cpu = Threads[Next].Cpu;
  QuantumLeft = ThreadQuantum;
}

void Process::noteRetired(uint64_t Retired) {
  if (Status == ProcStatus::Exited)
    return;
  QuantumLeft = Retired < QuantumLeft ? QuantumLeft - Retired : 0;
  // Single-threaded: re-arm immediately (the quantum only matters when
  // there is someone to rotate to; keeping it a pure function of the
  // retired stream keeps forked replicas consistent).
  if (QuantumLeft == 0 && LiveThreads <= 1)
    QuantumLeft = ThreadQuantum;
}

std::vector<uint64_t> Process::threadPcs() const {
  std::vector<uint64_t> Pcs;
  Pcs.reserve(Threads.size());
  for (uint32_t I = 0; I != Threads.size(); ++I)
    Pcs.push_back(I == CurThread ? Cpu.Pc : Threads[I].Cpu.Pc);
  return Pcs;
}
