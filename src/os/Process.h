//===- os/Process.h - Simulated guest process -------------------*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A simulated process: CPU state, COW guest memory, and per-process kernel
/// state. Process::fork() is the substrate for SuperPin slice spawning —
/// it clones all three, sharing memory pages copy-on-write exactly as the
/// paper's fork() does.
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_OS_PROCESS_H
#define SUPERPIN_OS_PROCESS_H

#include "vm/GuestMemory.h"
#include "vm/Program.h"

#include <unordered_map>

namespace spin::os {

/// Per-process kernel-side state; forked by value with the process.
struct KernelState {
  uint64_t Pid = 1;
  uint64_t Brk = vm::AddressLayout::HeapBase;
  uint64_t MmapNext = vm::AddressLayout::MmapBase;
  uint64_t RngState = 0x5eedULL;
  uint64_t NextFd = 3;

  struct OpenFile {
    uint64_t Seed = 0;   ///< content generator seed (synthetic input file)
    uint64_t Offset = 0; ///< read cursor
  };
  std::unordered_map<uint64_t, OpenFile> Files;
};

enum class ProcStatus : uint8_t { Running, Exited };

/// A runnable guest process image, possibly with several guest threads.
///
/// Threads (the paper's Section 8 future work, implemented here) follow a
/// deterministic round-robin schedule: the current thread runs for
/// ThreadQuantum retired instructions, then control rotates to the next
/// live thread. Because the schedule is a pure function of the retired-
/// instruction stream — and SuperPin's correctness invariants already
/// guarantee master and slices retire identical streams — a forked slice
/// replays exactly the master's interleaving with no recording beyond the
/// (forked) scheduler state itself.
///
/// `Cpu` always holds the *current* thread's architectural state; parked
/// threads live in `Threads`. Single-threaded processes never touch any
/// of the thread machinery.
class Process {
public:
  /// Instructions a thread runs before the scheduler rotates.
  static constexpr uint64_t ThreadQuantum = 2000;

  /// Creates the initial process for \p Prog: data segment loaded, stack
  /// mapped, pc at the entry point, one thread.
  static Process create(const vm::Program &Prog);

  /// COW fork. The caller assigns the child's pid.
  Process fork(uint64_t ChildPid) const;

  /// Deep-copy checkpoint: like fork() but with physically duplicated
  /// memory (GuestMemory::clone), so holding the snapshot cannot change
  /// which of the source's future writes COW-copy. Used by host-fault
  /// containment, which must checkpoint without perturbing the virtual
  /// timeline.
  Process snapshot(uint64_t ChildPid) const;

  const vm::Program &program() const { return *Prog; }

  // --- Threads ----------------------------------------------------------

  /// Live threads (>= 1 while Running).
  unsigned numLiveThreads() const { return LiveThreads; }
  bool isMultiThreaded() const { return LiveThreads > 1; }

  /// Index of the thread currently loaded into Cpu.
  uint32_t currentThread() const { return CurThread; }

  /// Instructions left in the current thread's quantum.
  uint64_t quantumLeft() const { return QuantumLeft; }

  /// Creates a new thread starting at \p Pc with stack pointer \p Sp;
  /// returns its tid (its index). Called by the kernel.
  uint64_t spawnThread(uint64_t Pc, uint64_t Sp);

  /// Ends the current thread. If it was the last live thread the process
  /// exits with code 0. The scheduler rotates to the next live thread.
  /// Called by the kernel.
  void exitCurrentThread();

  /// Accounts \p Retired instructions against the current quantum
  /// (saturating at zero; single-threaded processes re-arm immediately).
  /// Never switches threads: executors rotate explicitly at the next
  /// dynamic basic-block boundary so preemption can't split a block —
  /// BBL-granularity tools must observe the same block stream in every
  /// engine.
  void noteRetired(uint64_t Retired);

  /// True when the quantum is spent and another live thread is waiting;
  /// the executor should rotate at the next block boundary.
  bool quantumExpired() const {
    return QuantumLeft == 0 && LiveThreads > 1 &&
           Status == ProcStatus::Running;
  }

  /// Parks the current thread, loads the next live one (round-robin),
  /// and re-arms the quantum. Executors must drop cached trace cursors.
  void rotateThread() { switchToNextThread(); }

  /// Pc of every live-or-dead thread slot (current thread's from Cpu);
  /// used by the slice-boundary signature.
  std::vector<uint64_t> threadPcs() const;

  vm::CpuState Cpu;
  vm::GuestMemory Mem;
  KernelState Kern;
  ProcStatus Status = ProcStatus::Running;
  int ExitCode = 0;

private:
  struct ThreadSlot {
    vm::CpuState Cpu;
    bool Live = false;
  };

  explicit Process(const vm::Program &Prog) : Prog(&Prog) {}

  /// Rotates to the next live thread after CurThread (parks Cpu, loads
  /// the successor, resets the quantum). No-op when single-threaded.
  void switchToNextThread();

  const vm::Program *Prog;
  std::vector<ThreadSlot> Threads; ///< slot per tid; slot 0 = main thread
  uint32_t CurThread = 0;
  unsigned LiveThreads = 1;
  uint64_t QuantumLeft = ThreadQuantum;
};

} // namespace spin::os

#endif // SUPERPIN_OS_PROCESS_H
