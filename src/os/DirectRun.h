//===- os/DirectRun.h - Run a guest program to completion -------*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Convenience entry point that runs a guest program under the plain
/// interpreter + kernel with no scheduler and no instrumentation. This is
/// the ground truth the correctness properties compare against.
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_OS_DIRECTRUN_H
#define SUPERPIN_OS_DIRECTRUN_H

#include <cstdint>
#include <string>

namespace spin::vm {
class Program;
}

namespace spin::os {

struct DirectRunResult {
  bool Exited = false; ///< false if the instruction cap was hit first
  int ExitCode = 0;
  uint64_t Insts = 0; ///< retired instructions (including syscalls)
  uint64_t Syscalls = 0;
  std::string Output;
};

/// Runs \p Prog until exit or until \p MaxInsts instructions retire.
/// The virtual clock seen through gettimems advances at 1000 baseline
/// instructions per millisecond (matching CostModel defaults).
DirectRunResult runDirect(const vm::Program &Prog,
                          uint64_t MaxInsts = 2'000'000'000ULL);

} // namespace spin::os

#endif // SUPERPIN_OS_DIRECTRUN_H
