//===- os/CostModel.h - Virtual-time cost parameters ------------*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// All virtual-time constants of the simulation, in one tunable structure.
///
/// The time unit is the **tick**: 100 ticks = the cost of one baseline
/// (CPI 1.0) guest instruction, so per-instruction costs can be expressed
/// with 1% granularity using integers (floating-point accumulation would
/// make run reports platform-sensitive). `TicksPerMs` fixes the virtual
/// wall clock: with the default 100,000 ticks/ms, a guest executes 1,000
/// baseline instructions per virtual millisecond, so the paper's default
/// 1-second timeslice covers one million instructions.
///
/// The defaults are calibrated so that the paper's headline ratios emerge
/// from mechanism (see DESIGN.md §2): per-instruction instrumentation
/// (icount1) costs ~11x native under serial Pin, basic-block
/// instrumentation (icount2) ~3x, and an 8-way machine turns those into
/// the Figure 3/5 shapes.
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_OS_COSTMODEL_H
#define SUPERPIN_OS_COSTMODEL_H

#include <cstdint>

namespace spin::os {

/// Virtual time in ticks (1/100 of a baseline instruction).
using Ticks = uint64_t;

struct CostModel {
  // --- Time base -------------------------------------------------------
  /// Ticks per baseline (CPI 1.0) guest instruction.
  Ticks TicksPerInst = 100;
  /// Ticks per virtual millisecond (1000 baseline instructions/ms).
  Ticks TicksPerMs = 100'000;

  // --- MiniPin engine (Section 6.3 "compilation slowdown") -------------
  /// Extra dispatch cost per guest instruction executed from the code
  /// cache (Pin's ~10-30% no-instrumentation overhead).
  Ticks PinDispatchPerInst = 25;
  /// JIT compilation cost per guest instruction compiled into a trace.
  Ticks JitCompilePerInst = 1'500;
  /// JIT cost per instruction when batch-seeding the code cache from
  /// static basic-block leaders: no dispatcher round-trip or context sync
  /// per trace, so it is cheaper than on-demand JitCompilePerInst.
  Ticks JitSeedPerInst = 750;
  /// Dispatcher cost per trace entry (code-cache lookup + context sync).
  Ticks TraceDispatchCost = 60;
  /// Cost of one analysis call (register save/restore + call), plus the
  /// per-argument marshalling increment.
  Ticks AnalysisCallBase = 900;
  Ticks AnalysisCallPerArg = 50;
  /// Cost of an inlined InsertIfCall predicate (no call, no spill).
  Ticks InlinedCheckCost = 150;
  /// Redundancy suppression (-spredux): per-iteration cost of a deferred
  /// (Batched) analysis call — the recompiled trace bumps an in-register
  /// pending counter instead of spilling into a full analysis call; the
  /// deferred work is repaid as one ordinary analysis call per pending
  /// site at each flush boundary.
  Ticks ReduxDeferCost = 5;
  /// Extra consistency-check cost per trace entry when slices share a
  /// code cache (the Section 8 future-work feature).
  Ticks SharedCacheCheckCost = 40;

  // --- Kernel and control process (Sections 4.2, 6.3) ------------------
  /// Kernel service time for one syscall.
  Ticks SyscallCost = 2'000;
  /// Control-process bookkeeping per ptrace stop of the master.
  Ticks PtraceStopCost = 1'500;
  /// Recording one syscall's effects (control side).
  Ticks SyscallRecordCost = 800;
  /// Playing back one recorded syscall inside a slice.
  Ticks SyscallPlaybackCost = 400;
  /// Spilling one deferred slice's window to the capture log (-spdefer)
  /// instead of stalling the master: base bookkeeping plus a per-byte
  /// serialization cost over the recorded effects.
  Ticks SpillSliceCost = 25'000;
  Ticks SpillPerByteCost = 1;

  // --- Fork and memory (Section 6.3 "fork overhead") --------------------
  /// Base cost of fork() (process bookkeeping, trampoline setup).
  Ticks ForkBaseCost = 300'000;
  /// Page-table entry copy per mapped page at fork time.
  Ticks ForkPerPageCost = 150;
  /// Copying one page on a COW fault.
  Ticks CowCopyPageCost = 2'500;
  /// Materializing a fresh zero page.
  Ticks PageAllocCost = 1'000;

  // --- Signature mechanism (Section 4.4) --------------------------------
  /// Recording a signature (registers + top 100 stack words).
  Ticks SigRecordCost = 20'000;
  /// Full architectural register comparison (the InsertThenCall body).
  Ticks SigFullCheckCost = 2'500;
  /// Top-100-stack-words comparison.
  Ticks SigStackCheckCost = 8'000;
  /// Memory-signature extension: extra per-detection-site cost when
  /// -spmemsig is enabled.
  Ticks SigMemCheckCost = 800;

  // --- Merging (Section 4.5) --------------------------------------------
  /// Base cost of one slice merge (shared-memory rendezvous).
  Ticks MergeBaseCost = 8'000;
  /// Per-byte cost of auto-merged shared areas.
  Ticks MergePerByteCost = 2;

  // --- Fault recovery (src/fault) ---------------------------------------
  /// Tearing down a failed slice attempt (watchdog kill, divergence
  /// abort): signal delivery plus address-space teardown bookkeeping.
  Ticks SliceKillCost = 5'000;
  /// Parking a retry-exhausted window for post-exit serial re-execution.
  Ticks QuarantineCost = 10'000;

  // --- Multiprocessor (Section 6.3 "SMP scalability", hyperthreading) ---
  /// Combined throughput of two SMT threads sharing one physical core,
  /// relative to one thread running alone (1.0 = no benefit from SMT).
  double SmtThroughput = 1.25;
  /// Each additional concurrently-busy CPU slows every task by this
  /// fraction (memory-system contention; the paper verified that a fully
  /// loaded SMP runs each copy slower).
  double SmpTaxPerCpu = 0.012;

  /// Converts a count of baseline instructions to ticks.
  Ticks instTicks(uint64_t Insts) const { return Insts * TicksPerInst; }

  /// Converts milliseconds of virtual time to ticks.
  Ticks msTicks(uint64_t Ms) const { return Ms * TicksPerMs; }

  /// Converts ticks to (truncated) virtual milliseconds.
  uint64_t ticksToMs(Ticks T) const { return T / TicksPerMs; }

  /// Converts ticks to virtual seconds as a double (for reports).
  double ticksToSeconds(Ticks T) const {
    return static_cast<double>(T) / (1000.0 * static_cast<double>(TicksPerMs));
  }
};

} // namespace spin::os

#endif // SUPERPIN_OS_COSTMODEL_H
