//===- os/Kernel.cpp - Deterministic guest kernel -------------------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "os/Kernel.h"

#include "obs/TraceRecorder.h"
#include "os/Process.h"
#include "support/BinaryStream.h"
#include "support/ErrorHandling.h"
#include "support/MathExtras.h"
#include "support/Random.h"
#include "vm/Instruction.h"

#include <cassert>

using namespace spin;
using namespace spin::os;
using namespace spin::vm;

SyscallClass spin::os::classifySyscall(uint64_t Number) {
  switch (static_cast<Sys>(Number)) {
  case Sys::Exit:
    return SyscallClass::Exit;
  case Sys::Brk:
  case Sys::MmapAnon:
  case Sys::Munmap:
  case Sys::Rand:
    return SyscallClass::Duplicable;
  case Sys::Write:
  case Sys::Read:
  case Sys::GetTimeMs:
  case Sys::GetPid:
    return SyscallClass::Replayable;
  case Sys::Open:
  case Sys::Close:
  case Sys::ThreadCreate:
  case Sys::ThreadExit:
  case Sys::NumSyscalls:
    break;
  }
  // Unknown syscalls (and thread lifecycle changes, whose slices need a
  // fixed thread population) take the paper's conservative default.
  return SyscallClass::ForceSlice;
}

std::string_view spin::os::getSyscallName(uint64_t Number) {
  switch (static_cast<Sys>(Number)) {
  case Sys::Exit:
    return "exit";
  case Sys::Write:
    return "write";
  case Sys::Read:
    return "read";
  case Sys::Brk:
    return "brk";
  case Sys::MmapAnon:
    return "mmap_anon";
  case Sys::Munmap:
    return "munmap";
  case Sys::GetTimeMs:
    return "gettimems";
  case Sys::GetPid:
    return "getpid";
  case Sys::Rand:
    return "rand";
  case Sys::Open:
    return "open";
  case Sys::Close:
    return "close";
  case Sys::ThreadCreate:
    return "thread_create";
  case Sys::ThreadExit:
    return "thread_exit";
  case Sys::NumSyscalls:
    break;
  }
  return "unknown";
}

uint64_t SyscallEffects::sizeBytes() const {
  uint64_t Size = 16; // number + retval
  for (const auto &[Addr, Bytes] : MemWrites) {
    (void)Addr;
    Size += 8 + Bytes.size();
  }
  return Size;
}

void spin::os::encodeSyscallEffects(const SyscallEffects &Effects,
                                    ByteWriter &W) {
  W.u64(Effects.Number);
  W.u64(Effects.RetVal);
  W.boolean(Effects.ProcessExited);
  W.u32(static_cast<uint32_t>(Effects.MemWrites.size()));
  for (const auto &[Addr, Bytes] : Effects.MemWrites) {
    W.u64(Addr);
    W.bytes(Bytes.data(), Bytes.size());
  }
}

SyscallEffects spin::os::decodeSyscallEffects(ByteReader &R) {
  SyscallEffects Effects;
  Effects.Number = R.u64();
  Effects.RetVal = R.u64();
  Effects.ProcessExited = R.boolean();
  uint32_t NumWrites = R.u32();
  for (uint32_t I = 0; I != NumWrites && !R.failed(); ++I) {
    uint64_t Addr = R.u64();
    Effects.MemWrites.emplace_back(Addr, R.bytes());
  }
  return Effects;
}

uint64_t spin::os::hashSyscallEffects(const SyscallEffects &Effects) {
  uint64_t Hash = 0xcbf29ce484222325ULL;
  auto Mix = [&Hash](uint64_t Value, unsigned Bytes = 8) {
    for (unsigned I = 0; I != Bytes; ++I) {
      Hash ^= (Value >> (I * 8)) & 0xff;
      Hash *= 0x100000001b3ULL;
    }
  };
  Mix(Effects.Number);
  Mix(Effects.RetVal);
  Mix(Effects.ProcessExited ? 1 : 0, 1);
  Mix(Effects.MemWrites.size());
  for (const auto &[Addr, Bytes] : Effects.MemWrites) {
    Mix(Addr);
    Mix(Bytes.size());
    for (uint8_t B : Bytes)
      Mix(B, 1);
  }
  return Hash;
}

uint64_t spin::os::pendingSyscallNumber(const Process &Proc) {
  return Proc.Cpu.Regs[0];
}

/// Deterministic content byte \p Offset of the synthetic file \p Seed.
static uint8_t fileByte(uint64_t Seed, uint64_t Offset) {
  uint64_t Z = Seed + Offset * 0x9e3779b97f4a7c15ULL;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  return static_cast<uint8_t>(Z >> 56);
}

void spin::os::serviceSyscall(Process &Proc, const SystemContext &Ctx,
                              SyscallEffects *Effects) {
  const Instruction *I = Proc.program().fetch(Proc.Cpu.Pc);
  assert(I && I->isSyscall() && "pc does not address a syscall");
  (void)I;

  uint64_t Number = Proc.Cpu.Regs[0];
  uint64_t A1 = Proc.Cpu.Regs[1];
  uint64_t A2 = Proc.Cpu.Regs[2];
  uint64_t A3 = Proc.Cpu.Regs[3];
  uint64_t Ret = 0;
  bool Exited = false;
  bool SwitchedThread = false;

  if (Ctx.Trace)
    Ctx.Trace->instant(Ctx.TraceLane, obs::EventKind::SysService, Ctx.TraceNow,
                       Number);

  if (Effects) {
    Effects->Number = Number;
    Effects->MemWrites.clear();
  }

  switch (static_cast<Sys>(Number)) {
  case Sys::Exit:
    Proc.Status = ProcStatus::Exited;
    Proc.ExitCode = static_cast<int>(A1);
    Ret = A1; // So playback can reproduce the exit code from RetVal.
    Exited = true;
    break;
  case Sys::Write: {
    // write(fd=A1, buf=A2, len=A3). fd is accepted but unused; all output
    // funnels to the context buffer.
    uint64_t Len = A3;
    if (!Ctx.SuppressOutput && Ctx.OutputBuf && Len > 0) {
      std::vector<uint8_t> Bytes(Len);
      Proc.Mem.readBytes(A2, Bytes.data(), Len);
      Ctx.OutputBuf->append(reinterpret_cast<const char *>(Bytes.data()),
                            Len);
    }
    Ret = Len;
    break;
  }
  case Sys::Read: {
    // read(fd=A1, buf=A2, len=A3) from a synthetic deterministic file.
    auto It = Proc.Kern.Files.find(A1);
    if (It == Proc.Kern.Files.end()) {
      Ret = ~uint64_t(0); // -1: bad fd
      break;
    }
    uint64_t Len = A3;
    std::vector<uint8_t> Bytes(Len);
    for (uint64_t K = 0; K != Len; ++K)
      Bytes[K] = fileByte(It->second.Seed, It->second.Offset + K);
    It->second.Offset += Len;
    if (Len > 0) {
      Proc.Mem.writeBytes(A2, Bytes.data(), Len);
      if (Effects)
        Effects->MemWrites.emplace_back(A2, std::move(Bytes));
    }
    Ret = Len;
    break;
  }
  case Sys::Brk:
    if (A1 != 0)
      Proc.Kern.Brk = A1;
    Ret = Proc.Kern.Brk;
    break;
  case Sys::MmapAnon: {
    uint64_t Len = alignTo(A1 ? A1 : 1, vm::PageSize);
    Ret = Proc.Kern.MmapNext;
    Proc.Kern.MmapNext += Len;
    break;
  }
  case Sys::Munmap:
    Proc.Mem.discardRange(alignDown(A1, vm::PageSize),
                          alignTo(A2, vm::PageSize));
    Ret = 0;
    break;
  case Sys::GetTimeMs:
    Ret = Ctx.NowMs;
    break;
  case Sys::GetPid:
    Ret = Proc.Kern.Pid;
    break;
  case Sys::Rand: {
    SplitMix64 Rng(Proc.Kern.RngState);
    Ret = Rng.next();
    Proc.Kern.RngState = Ret;
    break;
  }
  case Sys::Open: {
    // open(pathAddr=A1): the "file" is synthesized from a hash of the path.
    uint64_t Seed = 0xcbf29ce484222325ULL;
    for (uint64_t Addr = A1;; ++Addr) {
      uint8_t C = Proc.Mem.read8(Addr);
      if (C == 0)
        break;
      Seed = (Seed ^ C) * 0x100000001b3ULL;
      if (Addr - A1 > 4096)
        break; // Unterminated path: stop scanning.
    }
    uint64_t Fd = Proc.Kern.NextFd++;
    Proc.Kern.Files[Fd] = KernelState::OpenFile{Seed, 0};
    Ret = Fd;
    break;
  }
  case Sys::Close:
    Ret = Proc.Kern.Files.erase(A1) ? 0 : ~uint64_t(0);
    break;
  case Sys::ThreadCreate:
    Ret = Proc.spawnThread(/*Pc=*/A1, /*Sp=*/A2);
    break;
  case Sys::ThreadExit:
    // Advance past the syscall first so the parked pc is sane if the
    // slot is ever inspected, then retire the thread (which loads the
    // next live thread's state, or exits the process).
    Proc.Cpu.Pc += InstSize;
    Proc.exitCurrentThread();
    SwitchedThread = true;
    Exited = Proc.Status == ProcStatus::Exited;
    break;
  case Sys::NumSyscalls:
  default:
    Ret = ~uint64_t(0); // ENOSYS equivalent.
    break;
  }

  if (!SwitchedThread) {
    Proc.Cpu.Regs[0] = Ret;
    if (!Exited)
      Proc.Cpu.Pc += InstSize;
  }
  if (Effects) {
    Effects->RetVal = Ret;
    Effects->ProcessExited = Exited;
  }
}

void spin::os::playbackSyscall(Process &Proc, const SyscallEffects &Effects) {
  const Instruction *I = Proc.program().fetch(Proc.Cpu.Pc);
  assert(I && I->isSyscall() && "playback target is not a syscall");
  (void)I;
  assert(Proc.Cpu.Regs[0] == Effects.Number &&
         "slice diverged from master: different syscall number");
  for (const auto &[Addr, Bytes] : Effects.MemWrites)
    Proc.Mem.writeBytes(Addr, Bytes.data(), Bytes.size());
  Proc.Cpu.Regs[0] = Effects.RetVal;
  if (Effects.ProcessExited) {
    Proc.Status = ProcStatus::Exited;
    Proc.ExitCode = static_cast<int>(Effects.RetVal);
  } else {
    Proc.Cpu.Pc += InstSize;
  }
}
