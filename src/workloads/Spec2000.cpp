//===- workloads/Spec2000.cpp - SPEC2000-named workload suite -------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "workloads/Spec2000.h"

#include "support/ErrorHandling.h"

#include <cmath>

using namespace spin;
using namespace spin::vm;
using namespace spin::workloads;

/// Builds one suite entry. \p Funcs/\p Blocks/\p Alu set the code
/// footprint; \p Ws the working set; \p SysMask/\p Mix the syscall
/// behaviour (mask 2^n-1, syscall block every 2^n outer iterations).
static WorkloadInfo entry(const char *Name, double Cpi, uint64_t DurationMs,
                          unsigned Funcs, unsigned Blocks, unsigned Alu,
                          uint64_t Ws, uint64_t SysMask, SysMix Mix,
                          bool Diamond = true, bool Chase = false,
                          unsigned Inner = 8, uint64_t Seed = 0,
                          unsigned Chain = 0) {
  WorkloadInfo Info;
  Info.Name = Name;
  Info.Cpi = Cpi;
  Info.DurationMs = DurationMs;
  GenParams &P = Info.Params;
  P.Name = Name;
  P.NumFuncs = Funcs;
  P.BlocksPerFunc = Blocks;
  P.AluPerBlock = Alu;
  P.WorkingSetBytes = Ws;
  P.SyscallMask = SysMask;
  P.Mix = Mix;
  P.DiamondBranches = Diamond;
  P.PointerChase = Chase;
  P.InnerIters = Inner;
  P.ChainEvery = Chain;
  P.StoreEvery = 3;
  // Distinct seeds keep the suite's programs from being clones.
  P.Seed = Seed ? Seed : 0x9e3779b9u ^ (uint64_t(Name[0]) << 32 | Name[1]);
  return Info;
}

const std::vector<WorkloadInfo> &spin::workloads::spec2000Suite() {
  constexpr uint64_t KiB = 1024;
  static const std::vector<WorkloadInfo> Suite = {
      // name        cpi   ms     fn  blk alu  ws        mask  mix
      entry("ammp", 1.3, 8000, 15, 10, 5, 1024 * KiB, 0, SysMix::None,
            true, /*Chase=*/true),
      entry("applu", 1.5, 9000, 12, 12, 8, 1024 * KiB, 0, SysMix::None,
            /*Diamond=*/false, false, 16),
      entry("apsi", 1.2, 4500, 18, 10, 6, 512 * KiB, 0, SysMix::None),
      entry("art", 2.2, 2200, 6, 8, 4, 2048 * KiB, 0, SysMix::None,
            /*Diamond=*/false, false, 24),
      entry("bzip2", 0.9, 8000, 12, 10, 4, 256 * KiB, 63, SysMix::ReadWrite),
      entry("crafty", 0.7, 7000, 28, 10, 3, 64 * KiB, 0, SysMix::None,
            true, false, 8, 0, /*Chain=*/5),
      entry("eon", 0.8, 2600, 40, 10, 4, 128 * KiB, 255, SysMix::Mixed,
            true, false, 8, 0, /*Chain=*/4),
      entry("equake", 1.6, 6000, 10, 10, 5, 1024 * KiB, 0, SysMix::None,
            true, /*Chase=*/true),
      entry("facerec", 1.1, 12000, 14, 10, 6, 512 * KiB, 0, SysMix::None),
      entry("fma3d", 1.3, 8000, 36, 12, 6, 512 * KiB, 0, SysMix::None,
            /*Diamond=*/false),
      entry("galgel", 1.4, 7000, 16, 12, 7, 1024 * KiB, 0, SysMix::None),
      entry("gap", 0.9, 6000, 30, 10, 4, 256 * KiB, 127, SysMix::BrkHeavy,
            true, false, 8, 0, /*Chain=*/4),
      entry("gcc", 1.0, 10000, 70, 16, 5, 512 * KiB, 15, SysMix::BrkHeavy),
      entry("gzip", 0.85, 3000, 10, 8, 4, 256 * KiB, 31, SysMix::ReadWrite),
      entry("lucas", 1.5, 8000, 8, 10, 8, 2048 * KiB, 0, SysMix::None,
            /*Diamond=*/false, false, 24),
      entry("mcf", 3.2, 14000, 8, 8, 3, 4096 * KiB, 0, SysMix::None, true,
            /*Chase=*/true, 16),
      entry("mesa", 0.9, 3200, 35, 10, 4, 256 * KiB, 511, SysMix::Mixed),
      entry("mgrid", 1.7, 9000, 6, 12, 10, 2048 * KiB, 0, SysMix::None,
            /*Diamond=*/false, false, 24),
      entry("parser", 0.9, 7000, 35, 10, 4, 128 * KiB, 127, SysMix::Mixed,
            true, false, 8, 0, /*Chain=*/3),
      entry("perlbmk", 0.85, 8000, 45, 12, 4, 256 * KiB, 63,
            SysMix::BrkHeavy, true, false, 8, 0, /*Chain=*/3),
      entry("sixtrack", 1.0, 11000, 30, 10, 6, 256 * KiB, 0, SysMix::None),
      entry("swim", 2.0, 13000, 5, 10, 10, 4096 * KiB, 0, SysMix::None,
            /*Diamond=*/false, false, 32),
      entry("twolf", 1.1, 9000, 25, 12, 5, 512 * KiB, 0, SysMix::None),
      entry("vortex", 1.0, 8000, 45, 12, 4, 512 * KiB, 255,
            SysMix::OpenClose, true, false, 8, 0, /*Chain=*/4),
      entry("vpr", 1.0, 4000, 30, 10, 5, 256 * KiB, 255, SysMix::Mixed),
      entry("wupwise", 1.2, 8000, 12, 10, 6, 1024 * KiB, 0, SysMix::None),
  };
  return Suite;
}

const WorkloadInfo &spin::workloads::findWorkload(const std::string &Name) {
  for (const WorkloadInfo &Info : spec2000Suite())
    if (Name == Info.Name)
      return Info;
  reportFatalError("unknown workload '" + Name + "'");
}

Program spin::workloads::buildWorkload(const WorkloadInfo &Info,
                                       double Scale) {
  GenParams P = Info.Params;
  // DurationMs of native time at 1000 baseline-instructions/ms and the
  // workload's CPI determines the instruction budget.
  double Insts = static_cast<double>(Info.DurationMs) * 1000.0 / Info.Cpi;
  P.TargetInsts = static_cast<uint64_t>(std::llround(Insts * Scale));
  if (P.TargetInsts < 50'000)
    P.TargetInsts = 50'000;
  return generateWorkload(P);
}
