//===- workloads/Spec2000.h - SPEC2000-named workload suite -----*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The 26 SPEC2000-named synthetic workloads used by the paper's Figures
/// 3-5. Each entry substitutes for the real benchmark with a generated
/// program sharing its coarse character — CPI (memory-boundness), code
/// footprint, syscall behaviour, working-set size — which are exactly the
/// attributes the paper says drive per-benchmark variation (DESIGN.md §2).
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_WORKLOADS_SPEC2000_H
#define SUPERPIN_WORKLOADS_SPEC2000_H

#include "workloads/Generator.h"

#include <vector>

namespace spin::workloads {

struct WorkloadInfo {
  const char *Name;
  /// Native cycles per instruction: converts to the engine's per-
  /// instruction cost and captures memory-boundness (mcf high, crafty low).
  double Cpi;
  /// Approximate native duration at Scale = 1, in virtual milliseconds.
  uint64_t DurationMs;
  GenParams Params; ///< TargetInsts filled in by buildWorkload
};

/// The full suite, in the paper's alphabetical order.
const std::vector<WorkloadInfo> &spec2000Suite();

/// Looks up a suite entry by name; asserts that it exists.
const WorkloadInfo &findWorkload(const std::string &Name);

/// Generates the program for \p Info at duration Scale (0 < Scale <= 1
/// typical; instruction budget scales linearly).
vm::Program buildWorkload(const WorkloadInfo &Info, double Scale = 1.0);

} // namespace spin::workloads

#endif // SUPERPIN_WORKLOADS_SPEC2000_H
