//===- workloads/Generator.cpp - Synthetic workload generator -------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "workloads/Generator.h"

#include "os/Syscalls.h"
#include "support/MathExtras.h"
#include "support/Random.h"
#include "vm/ProgramBuilder.h"

#include <cassert>

using namespace spin;
using namespace spin::os;
using namespace spin::vm;
using namespace spin::workloads;

namespace {

// Register allocation convention of generated programs (documented in
// Generator.h): r12 is a dedicated zero, r4 the working-set base, r5 the
// LCG state, r6 the running checksum, r7/r8 the outer/inner counters,
// r9-r11 scratch, r13 the input fd, r14 the pointer-chase cursor.
constexpr Reg Zero{12}, WsBase{4}, Lcg{5}, Sum{6}, Outer{7}, Inner{8};
constexpr Reg S0{9}, S1{10}, S2{11}, Fd{13}, Chase{14};

class WorkloadEmitter {
public:
  explicit WorkloadEmitter(const GenParams &P)
      : P(P), B(P.Name), Rng(P.Seed) {}

  Program emit();

private:
  const GenParams &P;
  ProgramBuilder B;
  SplitMix64 Rng;

  uint64_t WsAddr = 0;
  uint64_t TableAddr = 0;
  uint64_t RBufAddr = 0;
  uint64_t OutBufAddr = 0;
  uint64_t PathAddr = 0;
  std::vector<uint64_t> FuncAddrs;

  uint64_t wsWords() const { return P.WorkingSetBytes / 8; }

  /// Words initialized by the startup loop (and covered by the pointer-
  /// chase ring). Capped so initialization stays a small fraction of the
  /// instruction budget: large working sets still spread stores across
  /// all their pages (COW/fork behaviour), but loads outside the
  /// initialized prefix simply read zeroes.
  uint64_t initWords() const {
    uint64_t Words = wsWords();
    if (Words > 32768)
      Words = 32768;
    uint64_t BudgetCap = P.TargetInsts / 20;
    if (BudgetCap < 1024)
      BudgetCap = 1024;
    if (Words > BudgetCap)
      Words = BudgetCap;
    // Power of two for ring/mask arithmetic.
    uint64_t Pow2 = 1;
    while (Pow2 * 2 <= Words)
      Pow2 *= 2;
    return Pow2;
  }

  void emitSyscall(Sys Number) {
    B.movi(Reg{0}, static_cast<int64_t>(Number));
    B.syscall();
  }

  /// Emits one body block; returns its exact dynamic instruction count
  /// (identical on both diamond paths by construction).
  uint64_t emitBlock(unsigned BlockIdx) {
    uint64_t Dyn = 0;
    // LCG step: r5 = r5 * A + C.
    B.muli(Lcg, Lcg, 6364136223846793005LL);
    B.addi(Lcg, Lcg, static_cast<int64_t>((Rng.next() | 1) & 0xffff));
    Dyn += 2;
    // Working-set address: r9 = r4 + (r5 & WordMask) * 8.
    B.andi(S0, Lcg, static_cast<int64_t>(wsWords() - 1));
    B.shli(S0, S0, 3);
    B.add(S0, S0, WsBase);
    Dyn += 3;
    // Memory operation.
    if (P.StoreEvery != 0 && BlockIdx % P.StoreEvery == P.StoreEvery - 1) {
      B.st64(S0, 0, Sum);
      Dyn += 1;
    } else {
      B.ld64(S1, S0, 0);
      B.xor_(Sum, Sum, S1);
      Dyn += 2;
    }
    // mcf-style dependent chase.
    if (P.PointerChase && BlockIdx % 2 == 0) {
      B.ld64(Chase, Chase, 0);
      B.xor_(Sum, Sum, Chase);
      Dyn += 2;
    }
    // ALU filler.
    for (unsigned I = 0; I != P.AluPerBlock; ++I) {
      switch (I % 4) {
      case 0:
        B.add(S1, S1, Lcg);
        break;
      case 1:
        B.xor_(S2, S1, Sum);
        break;
      case 2:
        B.sub(S1, S1, S2);
        break;
      case 3:
        B.mul(S2, S2, Lcg);
        break;
      }
      ++Dyn;
    }
    // Balanced diamond: both paths execute three instructions after the
    // two-instruction test, so the dynamic count is path-independent.
    if (P.DiamondBranches && BlockIdx % 2 == 1) {
      ProgramBuilder::LabelId Else = B.createLabel();
      ProgramBuilder::LabelId End = B.createLabel();
      B.andi(S2, Lcg, 1 << (BlockIdx % 5));
      B.beq(S2, Zero, Else);
      B.xori(Sum, Sum, 0x55);
      B.addi(S1, S1, 7);
      B.jmp(End);
      B.bind(Else);
      B.xori(Sum, Sum, 0xAA);
      B.addi(S1, S1, 3);
      B.nop();
      B.bind(End);
      Dyn += 5;
    }
    return Dyn;
  }

  /// Emits one generated function at \p FuncLabel; returns its dynamic
  /// cost per call (excluding the caller's call instruction). Functions
  /// are emitted in reverse index order so a chained callee's cost is
  /// known when its caller is emitted.
  uint64_t emitFunction(unsigned FuncIdx, ProgramBuilder::LabelId FuncLabel,
                        ProgramBuilder::LabelId NextLabel, uint64_t NextDyn) {
    B.bind(FuncLabel);
    FuncAddrs[FuncIdx] = B.currentAddress();
    uint64_t Dyn = 0;
    B.push(Inner);
    B.movi(Inner, P.InnerIters);
    Dyn += 2;
    ProgramBuilder::LabelId Loop = B.createLabel();
    B.bind(Loop);
    uint64_t BodyDyn = 0;
    for (unsigned Blk = 0; Blk != P.BlocksPerFunc; ++Blk)
      BodyDyn += emitBlock(Blk);
    B.addi(Inner, Inner, -1);
    B.bne(Inner, Zero, Loop);
    BodyDyn += 2;
    Dyn += P.InnerIters * BodyDyn;
    // Call-chain: tail-call the next function once per invocation (chain
    // segments are bounded by ChainEvery, so depth stays finite).
    bool Chains = P.ChainEvery != 0 && FuncIdx + 1 < P.NumFuncs &&
                  (FuncIdx % P.ChainEvery) != P.ChainEvery - 1;
    if (Chains) {
      B.call(NextLabel);
      Dyn += 1 + NextDyn;
    }
    B.pop(Inner);
    B.ret();
    Dyn += 2;
    return Dyn;
  }

  /// Emits the periodic syscall block; returns its dynamic count.
  uint64_t emitSysBlock() {
    switch (P.Mix) {
    case SysMix::None:
      return 0;
    case SysMix::BrkHeavy:
      // Query the break, grow it a page, touch the new top.
      B.movi(Reg{1}, 0);
      emitSyscall(Sys::Brk);
      B.addi(Reg{1}, Reg{0}, 4096);
      emitSyscall(Sys::Brk);
      B.st64(Reg{0}, -8, Sum);
      return 7;
    case SysMix::ReadWrite:
      B.mov(Reg{1}, Fd);
      B.movi(Reg{2}, static_cast<int64_t>(RBufAddr));
      B.movi(Reg{3}, 64);
      emitSyscall(Sys::Read);
      B.movi(S0, static_cast<int64_t>(RBufAddr));
      B.ld64(S1, S0, 0);
      B.xor_(Sum, Sum, S1);
      return 8;
    case SysMix::Mixed:
      // Time feeds scratch only: the checksum must not depend on the wall
      // clock (it differs across execution environments by design), but
      // the recorded result still exercises syscall playback.
      emitSyscall(Sys::GetTimeMs);
      B.xor_(S1, S1, Reg{0});
      emitSyscall(Sys::GetPid);
      B.xor_(Sum, Sum, Reg{0});
      emitSyscall(Sys::Rand);
      B.xor_(Sum, Sum, Reg{0});
      return 9;
    case SysMix::OpenClose:
      B.movi(Reg{1}, static_cast<int64_t>(PathAddr));
      emitSyscall(Sys::Open);
      B.mov(Reg{1}, Reg{0});
      emitSyscall(Sys::Close);
      return 6;
    }
    return 0;
  }

  /// Dynamic count of the working-set init loop (covers initWords()).
  uint64_t emitWsInit() {
    uint64_t Words = initWords();
    B.movi(Inner, static_cast<int64_t>(Words));
    ProgramBuilder::LabelId Loop = B.createLabel();
    B.bind(Loop);
    B.addi(Inner, Inner, -1);
    B.shli(S0, Inner, 3);
    B.add(S0, S0, WsBase);
    uint64_t PerIter;
    if (P.PointerChase) {
      // ws[i] = &ws[(i + stride) & mask]: a ring with a large odd stride
      // so consecutive chases jump across the initialized region.
      B.addi(S1, Inner, 97);
      B.andi(S1, S1, static_cast<int64_t>(Words - 1));
      B.shli(S1, S1, 3);
      B.add(S1, S1, WsBase);
      B.st64(S0, 0, S1);
      PerIter = 9;
    } else {
      B.st64(S0, 0, Inner);
      PerIter = 5;
    }
    B.bne(Inner, Zero, Loop);
    return 1 + Words * PerIter;
  }

  uint64_t sysPeriod() const { return P.SyscallMask + 1; }
};

Program WorkloadEmitter::emit() {
  assert(isPowerOf2(P.WorkingSetBytes) && "working set must be 2^n");
  assert((P.SyscallMask == 0 || isPowerOf2(P.SyscallMask + 1)) &&
         "syscall mask must be 2^n - 1");

  // Data segment.
  WsAddr = B.allocData(P.WorkingSetBytes, 4096);
  unsigned TableSlots = 1;
  while (TableSlots < P.NumFuncs)
    TableSlots *= 2;
  TableAddr = B.allocData(TableSlots * 8, 8);
  RBufAddr = B.allocData(64, 8);
  OutBufAddr = B.allocData(8, 8);
  PathAddr = B.allocData(16, 8);
  B.initDataBytes(PathAddr, "input.dat", 10);

  // Functions first (reverse order so chained callees precede callers);
  // "main" follows them.
  FuncAddrs.assign(P.NumFuncs, 0);
  std::vector<ProgramBuilder::LabelId> FuncLabels;
  for (unsigned F = 0; F != P.NumFuncs; ++F)
    FuncLabels.push_back(B.createLabel());
  std::vector<uint64_t> FuncDyns(P.NumFuncs, 0);
  for (unsigned F = P.NumFuncs; F-- != 0;) {
    ProgramBuilder::LabelId Next = F + 1 < P.NumFuncs ? FuncLabels[F + 1]
                                                      : FuncLabels[F];
    uint64_t NextDyn = F + 1 < P.NumFuncs ? FuncDyns[F + 1] : 0;
    FuncDyns[F] = emitFunction(F, FuncLabels[F], Next, NextDyn);
  }
  // Average dispatched cost over the jump-table slots (exact over each
  // full pass of the table).
  double FuncDyn = 0;
  for (unsigned Slot = 0; Slot != TableSlots; ++Slot)
    FuncDyn += static_cast<double>(FuncDyns[Slot % P.NumFuncs]);
  FuncDyn /= TableSlots;

  // Jump table: slot i -> function (i % NumFuncs).
  for (unsigned Slot = 0; Slot != TableSlots; ++Slot)
    B.initData64(TableAddr + Slot * 8, FuncAddrs[Slot % P.NumFuncs]);

  B.defineSymbol("main");
  uint64_t Prologue = 0;
  B.movi(Zero, 0);
  B.movi(WsBase, static_cast<int64_t>(WsAddr));
  B.movi(Lcg, static_cast<int64_t>(P.Seed | 1));
  B.movi(Sum, 0);
  B.movi(Chase, static_cast<int64_t>(WsAddr));
  Prologue += 5;
  Prologue += emitWsInit();
  bool NeedsFd = P.Mix == SysMix::ReadWrite;
  if (NeedsFd) {
    B.movi(Reg{1}, static_cast<int64_t>(PathAddr));
    emitSyscall(Sys::Open);
    B.mov(Fd, Reg{0});
    Prologue += 4;
  }

  // Solve the outer iteration count against the instruction budget.
  uint64_t SysDynPlaceholder = 0;
  switch (P.Mix) {
  case SysMix::None:
    SysDynPlaceholder = 0;
    break;
  case SysMix::BrkHeavy:
    SysDynPlaceholder = 7;
    break;
  case SysMix::ReadWrite:
    SysDynPlaceholder = 8;
    break;
  case SysMix::Mixed:
    SysDynPlaceholder = 9;
    break;
  case SysMix::OpenClose:
    SysDynPlaceholder = 6;
    break;
  }
  double PerIter = 6 /*dispatch+callr*/ + FuncDyn + 2 /*outer ctrl*/;
  if (P.SyscallMask != 0)
    PerIter += 2; // mask test
  double SysAmortized =
      P.SyscallMask != 0
          ? static_cast<double>(SysDynPlaceholder) / double(sysPeriod())
          : 0.0;
  uint64_t Epilogue = 10;
  uint64_t Budget =
      P.TargetInsts > Prologue + Epilogue
          ? P.TargetInsts - Prologue - Epilogue
          : static_cast<uint64_t>(PerIter) + 1;
  uint64_t OuterIters =
      static_cast<uint64_t>(static_cast<double>(Budget) /
                            (PerIter + SysAmortized));
  if (OuterIters == 0)
    OuterIters = 1;

  B.movi(Outer, static_cast<int64_t>(OuterIters));
  ProgramBuilder::LabelId OuterLoop = B.createLabel();
  B.bind(OuterLoop);
  // Dispatch through the jump table (indirect call).
  B.andi(S1, Outer, static_cast<int64_t>(TableSlots - 1));
  B.shli(S1, S1, 3);
  B.movi(S0, static_cast<int64_t>(TableAddr));
  B.add(S0, S0, S1);
  B.ld64(S0, S0, 0);
  B.callr(S0);
  if (P.SyscallMask != 0) {
    ProgramBuilder::LabelId Skip = B.createLabel();
    B.andi(S1, Outer, static_cast<int64_t>(P.SyscallMask));
    B.bne(S1, Zero, Skip);
    emitSysBlock();
    B.bind(Skip);
  }
  B.addi(Outer, Outer, -1);
  B.bne(Outer, Zero, OuterLoop);

  // Epilogue: write the checksum, then exit(0).
  B.movi(S0, static_cast<int64_t>(OutBufAddr));
  B.st64(S0, 0, Sum);
  B.movi(Reg{1}, 1);
  B.movi(Reg{2}, static_cast<int64_t>(OutBufAddr));
  B.movi(Reg{3}, 8);
  emitSyscall(Sys::Write);
  B.movi(Reg{1}, 0);
  emitSyscall(Sys::Exit);

  return B.take();
}

} // namespace

Program spin::workloads::generateWorkload(const GenParams &P) {
  WorkloadEmitter E(P);
  return E.emit();
}
