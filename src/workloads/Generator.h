//===- workloads/Generator.h - Synthetic workload generator -----*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parameterized guest-program generator behind the SPEC2000-named
/// workloads. Programs have a fixed shape — init, an outer driver loop
/// dispatching through a jump table to generated functions, periodic
/// syscall blocks, a final checksum write, exit — with per-benchmark
/// parameters controlling code footprint, memory behaviour, branchiness,
/// call depth, and syscall mix.
///
/// Two properties the experiments rely on:
///  * determinism — identical parameters produce an identical program
///    whose execution is identical (checksum output included);
///  * analytically balanced control flow — branch diamonds execute the
///    same instruction count on both sides, so the generator can compute
///    the dynamic instruction count of one outer iteration exactly and
///    size the program to its target instruction budget.
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_WORKLOADS_GENERATOR_H
#define SUPERPIN_WORKLOADS_GENERATOR_H

#include "vm/Program.h"

#include <string>

namespace spin::workloads {

/// Syscall flavor of a workload's periodic kernel interaction.
enum class SysMix : uint8_t {
  None,      ///< pure computation (FP-loop codes: swim, mgrid, ...)
  BrkHeavy,  ///< frequent brk growth (the paper's gcc motivation, §4.2)
  ReadWrite, ///< read from a synthetic input file + occasional writes
  Mixed,     ///< gettime/getpid/rand/write pot-pourri
  OpenClose, ///< periodic open/close: ForceSlice boundaries (§4.2 default)
};

struct GenParams {
  std::string Name = "workload";
  /// Approximate dynamic instructions (the generator sizes the outer loop
  /// to come within one iteration of this).
  uint64_t TargetInsts = 1'000'000;
  /// Code footprint: functions × blocks × filler ALU per block.
  unsigned NumFuncs = 16;
  unsigned BlocksPerFunc = 8;
  unsigned AluPerBlock = 4;
  /// Every Nth block stores instead of loading.
  unsigned StoreEvery = 3;
  /// Emit balanced branch diamonds inside blocks.
  bool DiamondBranches = true;
  /// mcf-style dependent pointer chasing through a ring in memory.
  bool PointerChase = false;
  /// Working set (power of two bytes).
  uint64_t WorkingSetBytes = 1 << 16;
  /// Run the syscall block when (outer-counter & (SyscallMask)) == 0;
  /// 0 disables periodic syscalls entirely.
  uint64_t SyscallMask = 0;
  SysMix Mix = SysMix::None;
  /// Inner loop iterations per function call.
  unsigned InnerIters = 8;
  /// Call-chain depth: after its loop, function i tail-calls function
  /// i+1 when (i % ChainEvery) != ChainEvery-1; 0 disables chaining
  /// (every function is a leaf). Call-heavy workloads (perlbmk, parser)
  /// use small values for deep dynamic call stacks.
  unsigned ChainEvery = 0;
  uint64_t Seed = 0x5eed;
};

/// Generates the program. Deterministic in \p P.
vm::Program generateWorkload(const GenParams &P);

} // namespace spin::workloads

#endif // SUPERPIN_WORKLOADS_GENERATOR_H
