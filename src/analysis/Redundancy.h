//===- analysis/Redundancy.h - Instrumentation-redundancy info --*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-block instrumentation-redundancy classification: for each basic
/// block of the static CFG, decides whether a tool callback's payload in
/// that block is loop-invariant (hoistable to a preheader), affine-
/// aggregatable (one `counter += trip x k` update at a flush boundary),
/// or must stay per-iteration (stateful).
///
/// The classification is *advisory*: the JIT (pin/Compiler.cpp, behind
/// PinVmConfig::Redux / -spredux) only batches analysis calls that are
/// additionally (a) declared aggregation-eligible by the tool
/// (Tool::instrKind()), (b) inserted through insertAggregableCall with
/// pure-immediate arguments, and (c) located in a block classified
/// Aggregatable or Hoistable here. Deferred calls are replayed as one
/// aggregate invocation at every tool-observable boundary, so tool output
/// stays byte-identical whether suppression is on or off — even when this
/// classification over- or under-approximates the real loop structure.
///
/// Conservatism rules (see the satellite regression tests):
///  * irreducible regions are never hoistable or aggregatable;
///  * single-block self-loops aggregate but never hoist (they have no
///    body distinct from the header, so there is no preheader insertion
///    point that runs once per iteration set);
///  * loops containing calls, indirect branches, or syscalls stay
///    stateful (a syscall is a tool-observable boundary every iteration,
///    and calls clobber any invariance argument).
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_ANALYSIS_REDUNDANCY_H
#define SUPERPIN_ANALYSIS_REDUNDANCY_H

#include "analysis/Loops.h"

#include <string>
#include <vector>

namespace spin::analysis {

/// What the JIT may do with immediate-payload analysis calls in a block.
enum class BlockRedux : uint8_t {
  Stateful,     ///< per-iteration; never suppress
  Aggregatable, ///< defer + aggregate at flush boundaries
  Hoistable,    ///< aggregatable, and invariant payloads could run once
                ///< per loop entry from a preheader
};

/// Schema-stable lowercase name ("stateful", "aggregatable", "hoistable").
const char *blockReduxName(BlockRedux K);

/// Classification of one block, with the reason string the spin_lint
/// -redux-report mode prints.
struct BlockReduxInfo {
  BlockRedux Kind = BlockRedux::Stateful;
  uint32_t LoopId = InvalidLoop; ///< innermost loop, if any
  std::string Why;
};

/// Dominators + loop forest + per-block classification for one program.
/// Holds a pointer to the Cfg, which must outlive this object (the
/// engines keep both inside the same ProgramAnalysis-scoped storage).
class RedundancyInfo {
public:
  explicit RedundancyInfo(const Cfg &G);

  const Cfg &cfg() const { return *G; }
  const DomTree &domTree() const { return DT; }
  const LoopForest &forest() const { return Forest; }

  const BlockReduxInfo &block(uint32_t Id) const { return Info[Id]; }
  uint32_t numBlocks() const { return static_cast<uint32_t>(Info.size()); }

  /// Classification of the block containing guest address \p Pc;
  /// Stateful for addresses outside the text segment.
  BlockRedux classifyPc(uint64_t Pc) const;

  /// Blocks eligible for suppression (Aggregatable or Hoistable).
  uint64_t numSuppressibleBlocks() const;

private:
  const Cfg *G;
  DomTree DT;
  LoopForest Forest;
  std::vector<BlockReduxInfo> Info;
};

} // namespace spin::analysis

#endif // SUPERPIN_ANALYSIS_REDUNDANCY_H
