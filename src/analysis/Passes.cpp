//===- analysis/Passes.cpp - Static analysis passes -----------------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "analysis/Passes.h"

#include "analysis/Dataflow.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>

using namespace spin;
using namespace spin::analysis;
using namespace spin::vm;

std::vector<Finding> spin::analysis::findUnreachableCode(const Cfg &G) {
  std::vector<Finding> Fs;
  uint32_t Id = 0;
  while (Id != G.numBlocks()) {
    if (G.block(Id).Reachable) {
      ++Id;
      continue;
    }
    uint64_t First = G.block(Id).FirstIndex;
    uint64_t Insts = 0;
    while (Id != G.numBlocks() && !G.block(Id).Reachable) {
      Insts += G.block(Id).NumInsts;
      ++Id;
    }
    Fs.push_back({"unreachable",
                  {First, "unreachable code (" + std::to_string(Insts) +
                              (Insts == 1 ? " instruction)"
                                          : " instructions)")}});
  }
  return Fs;
}

namespace {

/// Forward must-analysis: bitmask of registers definitely assigned on
/// every path from a root. Join is intersection; roots start with only sp
/// defined (the loader/thread-spawn guarantee).
struct DefinedRegsProblem {
  using State = uint16_t;
  State boundary(uint32_t) const {
    return static_cast<State>(1u << RegSp);
  }
  void transfer(const Instruction &I, uint64_t, State &S) const {
    S |= writtenRegs(I);
  }
  bool join(State &Dest, const State &Src) const {
    State Old = Dest;
    Dest = static_cast<State>(Dest & Src);
    return Dest != Old;
  }
};

} // namespace

std::vector<Finding> spin::analysis::findUninitRegReads(const Cfg &G) {
  std::vector<Finding> Fs;
  DefinedRegsProblem P;
  ForwardSolver<DefinedRegsProblem> Solver(G, P);
  Solver.solve();
  for (uint32_t Id = 0; Id != G.numBlocks(); ++Id) {
    if (!Solver.reached(Id))
      continue;
    uint16_t Defined = Solver.blockIn(Id);
    const BasicBlock &B = G.block(Id);
    for (uint64_t I = B.FirstIndex; I != B.endIndex(); ++I) {
      const Instruction &Inst = G.program().Text[I];
      uint16_t Unset = static_cast<uint16_t>(readRegs(Inst) & ~Defined);
      for (unsigned R = 0; R != NumRegs; ++R)
        if (Unset & (1u << R))
          Fs.push_back({"uninit-reg",
                        {I, "read of " + std::string(getRegName(R)) +
                                ", which may be uninitialized"}});
      Defined |= writtenRegs(Inst);
    }
  }
  return Fs;
}

namespace {

/// Frame depth in bytes relative to a function's entry sp; nullopt once
/// the analysis loses track (an unmodeled sp write or a merge of
/// conflicting depths).
using Depth = std::optional<int64_t>;

/// True when \p I writes sp as an explicit destination operand (as
/// opposed to the implicit push/pop/call/ret adjustment).
bool writesSpExplicitly(const Instruction &I) {
  switch (I.info().Format) {
  case OpFormat::R2:
  case OpFormat::R2I:
  case OpFormat::R3:
  case OpFormat::R1I:
    return I.A == RegSp;
  case OpFormat::Mem:
    return I.Op != Opcode::Incm && I.A == RegSp;
  case OpFormat::R1:
    return I.Op == Opcode::Pop && I.A == RegSp;
  default:
    return false;
  }
}

/// Walks one function (all blocks reachable from \p Entry without
/// following call, ret, or jr edges) tracking frame depth; reports pop
/// underflow and unbalanced returns into \p Fs, deduplicated globally
/// through \p Reported.
void analyzeFunctionStack(const Cfg &G, uint32_t Entry,
                          std::set<uint64_t> &Reported,
                          std::vector<Finding> &Fs) {
  const Program &Prog = G.program();
  // Lattice per block: absent -> known depth -> unknown (nullopt).
  std::map<uint32_t, Depth> DepthIn;
  std::vector<uint32_t> Work;
  DepthIn[Entry] = 0;
  Work.push_back(Entry);
  auto Report = [&](uint64_t I, std::string Msg) {
    if (Reported.insert(I).second)
      Fs.push_back({"stack", {I, std::move(Msg)}});
  };
  while (!Work.empty()) {
    uint32_t Id = Work.back();
    Work.pop_back();
    Depth D = DepthIn[Id];
    const BasicBlock &B = G.block(Id);
    for (uint64_t I = B.FirstIndex; I != B.endIndex(); ++I) {
      const Instruction &Inst = Prog.Text[I];
      switch (Inst.Op) {
      case Opcode::Push:
        if (D)
          *D += 8;
        break;
      case Opcode::Pop:
        if (Inst.A == RegSp) {
          D = std::nullopt; // pop sp: unmodeled
        } else if (D) {
          if (*D == 0) {
            Report(I, "pop with an empty stack frame (underflows into the "
                      "caller's frame)");
            D = std::nullopt;
          } else {
            *D -= 8;
          }
        }
        break;
      case Opcode::Ret:
        if (D && *D != 0)
          Report(I, "return with " + std::to_string(*D) +
                        " bytes still pushed on the stack frame");
        break;
      case Opcode::Addi:
        if (Inst.A == RegSp) {
          if (Inst.B == RegSp && D)
            *D -= Inst.Imm; // sp -= n reserves n bytes
          else
            D = std::nullopt;
        }
        break;
      default:
        if (writesSpExplicitly(Inst))
          D = std::nullopt;
        break;
      }
    }
    // Intra-function successors: calls continue only at their return
    // point; ret ends the walk; jr targets are over-approximated tail
    // calls, so the walk stops there too.
    const Instruction &Last = Prog.Text[B.lastIndex()];
    std::vector<uint32_t> Succs;
    if (Last.isCall()) {
      if (B.lastIndex() + 1 < Prog.Text.size())
        Succs.push_back(G.blockOfIndex(B.lastIndex() + 1));
    } else if (Last.isRet() || Last.Op == Opcode::Jr) {
      // terminal within this function
    } else {
      Succs = B.Succs;
    }
    for (uint32_t S : Succs) {
      auto It = DepthIn.find(S);
      if (It == DepthIn.end()) {
        DepthIn[S] = D;
        Work.push_back(S);
      } else if (It->second != D && It->second.has_value()) {
        It->second = std::nullopt; // conflicting or unknown depth
        Work.push_back(S);
      }
    }
  }
}

} // namespace

std::vector<Finding> spin::analysis::findStackImbalance(const Cfg &G) {
  std::vector<Finding> Fs;
  if (G.numBlocks() == 0)
    return Fs;
  const Program &Prog = G.program();
  std::set<uint32_t> Entries(G.roots().begin(), G.roots().end());
  bool HasIndirectCall = false;
  for (const BasicBlock &B : G.blocks()) {
    const Instruction &Last = Prog.Text[B.lastIndex()];
    if (!Last.isCall())
      continue;
    if (Last.isIndirect()) {
      HasIndirectCall = true;
    } else if (Prog.fetch(static_cast<uint64_t>(Last.Imm))) {
      Entries.insert(
          G.blockOfIndex(Program::indexOfAddress(
              static_cast<uint64_t>(Last.Imm))));
    }
  }
  if (HasIndirectCall)
    for (uint64_t T : G.indirectTargets())
      Entries.insert(G.blockOfIndex(T));
  std::set<uint64_t> Reported;
  for (uint32_t E : Entries)
    analyzeFunctionStack(G, E, Reported, Fs);
  std::sort(Fs.begin(), Fs.end(), [](const Finding &A, const Finding &B) {
    return A.Issue.InstIndex < B.Issue.InstIndex;
  });
  return Fs;
}

os::StaticSyscallMap spin::analysis::buildSyscallSiteMap(const Cfg &G) {
  os::StaticSyscallMap Map;
  const Program &Prog = G.program();
  for (uint64_t I = 0; I != Prog.Text.size(); ++I) {
    if (!Prog.Text[I].isSyscall())
      continue;
    os::SyscallSite Site;
    Site.Pc = Program::addressOfIndex(I);
    if (std::optional<uint64_t> Num = G.staticRegValue(I, 0)) {
      Site.NumberKnown = true;
      Site.Number = *Num;
      Site.Class = os::classifySyscall(*Num);
    }
    Map.add(Site);
  }
  return Map;
}

std::vector<Finding> spin::analysis::lintProgram(const Cfg &G,
                                                 const LintOptions &Opts) {
  std::vector<Finding> Fs;
  for (VerifyIssue &Issue : verifyProgram(G.program()))
    Fs.push_back({"verify", std::move(Issue)});
  if (G.program().Text.empty())
    return Fs;
  auto Append = [&Fs](std::vector<Finding> More) {
    for (Finding &F : More)
      Fs.push_back(std::move(F));
  };
  if (Opts.CheckUnreachable)
    Append(findUnreachableCode(G));
  if (Opts.CheckUninitRegs)
    Append(findUninitRegReads(G));
  if (Opts.CheckStackBalance)
    Append(findStackImbalance(G));
  return Fs;
}

std::vector<Finding> spin::analysis::lintProgram(const Program &Prog,
                                                 const LintOptions &Opts) {
  return lintProgram(buildCfg(Prog), Opts);
}

std::string spin::analysis::formatFinding(const Program &Prog,
                                          const Finding &F) {
  return "[" + F.Pass + "] " + formatVerifyIssue(Prog, F.Issue);
}

ProgramAnalysis spin::analysis::analyzeProgram(const Program &Prog) {
  ProgramAnalysis PA;
  PA.G = buildCfg(Prog);
  PA.SyscallSites = buildSyscallSiteMap(PA.G);
  return PA;
}
