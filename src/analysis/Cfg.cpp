//===- analysis/Cfg.cpp - Guest-program control-flow graph ----------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "analysis/Cfg.h"

#include "os/Syscalls.h"

#include <algorithm>
#include <set>

using namespace spin;
using namespace spin::analysis;
using namespace spin::vm;

uint16_t spin::analysis::readRegs(const Instruction &I) {
  uint16_t M = 0;
  auto Add = [&M](unsigned Reg) {
    if (Reg < NumRegs)
      M |= static_cast<uint16_t>(1u << Reg);
  };
  switch (I.info().Format) {
  case OpFormat::None:
    if (I.isSyscall())
      Add(0); // number in r0
    if (I.isRet())
      Add(RegSp);
    break;
  case OpFormat::R1:
    // jr/callr/push read A; pop only writes it.
    if (I.Op != Opcode::Pop)
      Add(I.A);
    if (I.Op == Opcode::Push || I.Op == Opcode::Pop || I.isCall())
      Add(RegSp);
    break;
  case OpFormat::R1I:
    break; // movi: immediate only
  case OpFormat::R2:
  case OpFormat::R2I:
    Add(I.B);
    break;
  case OpFormat::R3:
    Add(I.B);
    Add(I.C);
    break;
  case OpFormat::Mem:
    Add(I.B); // base; loads and incm leave A untouched as a source
    break;
  case OpFormat::MemStore:
    Add(I.A); // base
    Add(I.B); // stored value
    break;
  case OpFormat::JumpI:
    if (I.isCall())
      Add(RegSp);
    break;
  case OpFormat::Branch:
    Add(I.A);
    Add(I.B);
    break;
  }
  return M;
}

uint16_t spin::analysis::writtenRegs(const Instruction &I) {
  uint16_t M = 0;
  auto Add = [&M](unsigned Reg) {
    if (Reg < NumRegs)
      M |= static_cast<uint16_t>(1u << Reg);
  };
  switch (I.info().Format) {
  case OpFormat::None:
    if (I.isSyscall())
      Add(0); // result in r0
    if (I.isRet())
      Add(RegSp);
    break;
  case OpFormat::R1:
    if (I.Op == Opcode::Pop)
      Add(I.A);
    if (I.Op == Opcode::Push || I.Op == Opcode::Pop || I.isCall())
      Add(RegSp);
    break;
  case OpFormat::R1I:
  case OpFormat::R2:
  case OpFormat::R2I:
  case OpFormat::R3:
    Add(I.A);
    break;
  case OpFormat::Mem:
    if (I.Op != Opcode::Incm)
      Add(I.A); // loads; incm writes memory only
    break;
  case OpFormat::MemStore:
    break;
  case OpFormat::JumpI:
    if (I.isCall())
      Add(RegSp);
    break;
  case OpFormat::Branch:
    break;
  }
  return M;
}

std::optional<uint32_t> Cfg::blockOfPc(uint64_t Pc) const {
  if (!Prog->fetch(Pc))
    return std::nullopt;
  uint32_t B = BlockMap[Program::indexOfAddress(Pc)];
  if (Blocks[B].FirstIndex != Program::indexOfAddress(Pc))
    return std::nullopt;
  return B;
}

std::vector<uint64_t> Cfg::reachableLeaderPcs() const {
  std::vector<uint64_t> Pcs;
  for (const BasicBlock &B : Blocks)
    if (B.Reachable)
      Pcs.push_back(Program::addressOfIndex(B.FirstIndex));
  return Pcs; // Blocks are in index order, so this is ascending.
}

uint64_t Cfg::numReachableInsts() const {
  uint64_t N = 0;
  for (const BasicBlock &B : Blocks)
    if (B.Reachable)
      N += B.NumInsts;
  return N;
}

std::optional<uint64_t> Cfg::staticRegValue(uint64_t InstIndex,
                                            unsigned Reg) const {
  if (InstIndex >= Prog->Text.size() || Reg >= NumRegs)
    return std::nullopt;
  uint16_t Bit = static_cast<uint16_t>(1u << Reg);
  uint32_t B = BlockMap[InstIndex];
  uint64_t I = InstIndex;
  unsigned Hops = 0;
  while (true) {
    while (I != Blocks[B].FirstIndex) {
      const Instruction &Inst = Prog->Text[--I];
      if (writtenRegs(Inst) & Bit) {
        if (Inst.Op == Opcode::Movi)
          return static_cast<uint64_t>(Inst.Imm);
        return std::nullopt;
      }
      // A call in the middle of the scan (only possible when crossing into
      // a predecessor, handled below) would make the value unknowable.
    }
    const BasicBlock &Blk = Blocks[B];
    if (Blk.Preds.size() != 1 || ++Hops > 4)
      return std::nullopt;
    uint32_t P = Blk.Preds[0];
    if (P == B)
      return std::nullopt;
    // Entering via a call-return edge means a callee ran in between and
    // could have clobbered the register.
    if (Prog->Text[Blocks[P].lastIndex()].isCall())
      return std::nullopt;
    B = P;
    I = Blocks[B].endIndex();
  }
}

Cfg spin::analysis::buildCfg(const Program &Prog) {
  Cfg G;
  G.Prog = &Prog;
  const std::vector<Instruction> &Text = Prog.Text;
  const uint64_t N = Text.size();
  if (N == 0)
    return G;

  auto IsText = [&Prog](uint64_t Addr) {
    return Addr >= AddressLayout::TextBase && Addr < Prog.textEnd() &&
           (Addr % InstSize) == 0;
  };

  // 1. Indirect-target over-approximation: text-pointing symbols (the
  //    assembler records every label), movi immediates, and 8-byte data
  //    words holding text addresses (jump tables built via initData64).
  std::set<uint64_t> Candidates;
  for (const auto &[Name, Addr] : Prog.Symbols)
    if (IsText(Addr))
      Candidates.insert(Program::indexOfAddress(Addr));
  for (const Instruction &I : Text)
    if (I.Op == Opcode::Movi && IsText(static_cast<uint64_t>(I.Imm)))
      Candidates.insert(Program::indexOfAddress(static_cast<uint64_t>(I.Imm)));
  const std::vector<uint8_t> &Data = Prog.DataInit;
  for (uint64_t Off = 0; Off + 8 <= Data.size(); Off += 8) {
    uint64_t Word = 0;
    for (unsigned B = 0; B != 8; ++B)
      Word |= static_cast<uint64_t>(Data[Off + B]) << (8 * B);
    if (IsText(Word))
      Candidates.insert(Program::indexOfAddress(Word));
  }
  G.IndirectTargets.assign(Candidates.begin(), Candidates.end());

  // 2. Leaders: entry, direct targets, indirect candidates, and the
  //    instruction after any block terminator (control flow, syscall,
  //    halt — syscalls end a block so post-syscall pcs match the trace
  //    starts the JIT dispatcher sees).
  std::vector<bool> Leader(N, false);
  auto MarkLeader = [&](uint64_t Idx) {
    if (Idx < N)
      Leader[Idx] = true;
  };
  MarkLeader(0);
  if (IsText(Prog.EntryPc))
    MarkLeader(Program::indexOfAddress(Prog.EntryPc));
  for (uint64_t Idx : G.IndirectTargets)
    MarkLeader(Idx);
  for (uint64_t I = 0; I != N; ++I) {
    const Instruction &Inst = Text[I];
    if (Inst.isControlFlow() || Inst.isSyscall() || Inst.Op == Opcode::Halt)
      MarkLeader(I + 1);
    bool DirectTarget = Inst.isControlFlow() && !Inst.isIndirect();
    if (DirectTarget && IsText(static_cast<uint64_t>(Inst.Imm)))
      MarkLeader(Program::indexOfAddress(static_cast<uint64_t>(Inst.Imm)));
  }

  // 3. Blocks and the instruction-to-block map.
  G.BlockMap.assign(N, 0);
  for (uint64_t I = 0; I != N;) {
    uint64_t End = I + 1;
    while (End != N && !Leader[End])
      ++End;
    BasicBlock B;
    B.FirstIndex = I;
    B.NumInsts = static_cast<uint32_t>(End - I);
    uint32_t Id = static_cast<uint32_t>(G.Blocks.size());
    for (uint64_t J = I; J != End; ++J)
      G.BlockMap[J] = Id;
    G.Blocks.push_back(std::move(B));
    I = End;
  }

  auto AddEdge = [&G](uint32_t From, uint32_t To) {
    std::vector<uint32_t> &S = G.Blocks[From].Succs;
    if (std::find(S.begin(), S.end(), To) != S.end())
      return;
    S.push_back(To);
    G.Blocks[To].Preds.push_back(From);
  };
  auto BlockOfTarget = [&](uint64_t Addr) -> std::optional<uint32_t> {
    if (!IsText(Addr))
      return std::nullopt;
    return G.BlockMap[Program::indexOfAddress(Addr)];
  };

  // 4. Edges. Calls get both a target edge and a fall-through edge (the
  //    callee is assumed to return); ret is terminal; a syscall falls
  //    through unless its statically known number is exit/thread_exit.
  for (uint32_t Id = 0; Id != G.numBlocks(); ++Id) {
    const uint64_t LI = G.Blocks[Id].lastIndex();
    const Instruction &L = Text[LI];
    auto FallThrough = [&] {
      if (LI + 1 < N)
        AddEdge(Id, G.BlockMap[LI + 1]);
    };
    if (L.isSyscall()) {
      std::optional<uint64_t> Num = G.staticRegValue(LI, 0);
      bool NoReturn =
          Num && (*Num == static_cast<uint64_t>(os::Sys::Exit) ||
                  *Num == static_cast<uint64_t>(os::Sys::ThreadExit));
      if (!NoReturn)
        FallThrough();
      continue;
    }
    if (!L.isControlFlow()) {
      if (L.Op != Opcode::Halt)
        FallThrough();
      continue;
    }
    if (L.isRet())
      continue;
    if (L.isIndirect()) {
      for (uint64_t T : G.IndirectTargets)
        AddEdge(Id, G.BlockMap[T]);
    } else if (auto T = BlockOfTarget(static_cast<uint64_t>(L.Imm))) {
      AddEdge(Id, *T);
    }
    if (L.isCondBranch() || L.isCall())
      FallThrough();
  }

  // 5. Roots: the entry block plus thread entries. A thread_create site
  //    whose target register resolves statically contributes that target;
  //    an unresolvable one conservatively promotes every indirect-target
  //    candidate to a root.
  std::set<uint32_t> RootSet;
  if (IsText(Prog.EntryPc))
    RootSet.insert(G.BlockMap[Program::indexOfAddress(Prog.EntryPc)]);
  else
    RootSet.insert(0);
  for (uint64_t I = 0; I != N; ++I) {
    if (!Text[I].isSyscall())
      continue;
    std::optional<uint64_t> Num = G.staticRegValue(I, 0);
    if (!Num || *Num != static_cast<uint64_t>(os::Sys::ThreadCreate))
      continue;
    std::optional<uint64_t> Target = G.staticRegValue(I, 1);
    if (Target && IsText(*Target)) {
      RootSet.insert(G.BlockMap[Program::indexOfAddress(*Target)]);
    } else {
      for (uint64_t T : G.IndirectTargets)
        RootSet.insert(G.BlockMap[T]);
    }
  }
  G.Roots.assign(RootSet.begin(), RootSet.end());
  for (uint32_t R : G.Roots)
    G.Blocks[R].IsRoot = true;

  // 6. Reachability from the roots.
  std::vector<uint32_t> Work(G.Roots);
  for (uint32_t R : Work)
    G.Blocks[R].Reachable = true;
  while (!Work.empty()) {
    uint32_t B = Work.back();
    Work.pop_back();
    for (uint32_t S : G.Blocks[B].Succs)
      if (!G.Blocks[S].Reachable) {
        G.Blocks[S].Reachable = true;
        Work.push_back(S);
      }
  }
  return G;
}
