//===- analysis/Passes.h - Static analysis passes ---------------*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Concrete analyses over the Cfg:
///
///  * reachability  — blocks no root can reach (dead code);
///  * uninit-reg    — reads of registers not definitely assigned on every
///    path from the entry (lint semantics: although the hardware zeroes
///    registers at process/thread start, relying on that is almost always
///    a bug in guest code, so only sp counts as defined at a root);
///  * stack         — per-function push/pop/ret balance checking;
///  * syscall sites — enumerates static syscall pcs and pre-classifies the
///    resolvable ones via os::classifySyscall into an os::StaticSyscallMap.
///
/// lintProgram() is the one-call driver: vm::verifyProgram runs first as
/// pass zero (structural well-formedness), then the CFG passes.
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_ANALYSIS_PASSES_H
#define SUPERPIN_ANALYSIS_PASSES_H

#include "analysis/Cfg.h"
#include "os/SyscallMap.h"
#include "vm/Verifier.h"

#include <string>
#include <vector>

namespace spin::analysis {

/// One diagnostic from a lint pass.
struct Finding {
  std::string Pass;      ///< pass slug: "verify", "unreachable", ...
  vm::VerifyIssue Issue; ///< instruction index (or program-level) + message
};

struct LintOptions {
  bool CheckUnreachable = true;
  bool CheckUninitRegs = true;
  bool CheckStackBalance = true;
};

/// Blocks unreachable from every root; consecutive dead blocks merge into
/// one finding at the first dead instruction.
std::vector<Finding> findUnreachableCode(const Cfg &G);

/// Register reads not dominated by a write, on reachable paths only.
std::vector<Finding> findUninitRegReads(const Cfg &G);

/// Pop-below-frame and return-with-nonempty-frame, per function. Function
/// entries are the CFG roots, direct call targets, and — when the program
/// contains an indirect call — every indirect-target candidate. Depth
/// tracking gives up (silently) at writes to sp other than `addi sp, sp,
/// imm` and does not follow jr edges (indirect tail calls).
std::vector<Finding> findStackImbalance(const Cfg &G);

/// Enumerates syscall instructions; sites whose number resolves statically
/// (Cfg::staticRegValue on r0) are pre-classified via os::classifySyscall.
os::StaticSyscallMap buildSyscallSiteMap(const Cfg &G);

/// Runs pass zero (vm::verifyProgram) plus the selected CFG passes on a
/// prebuilt graph.
std::vector<Finding> lintProgram(const Cfg &G,
                                 const LintOptions &Opts = LintOptions());

/// Convenience overload: builds the CFG internally.
std::vector<Finding> lintProgram(const vm::Program &Prog,
                                 const LintOptions &Opts = LintOptions());

/// Renders a finding as "[pass] pc 0x... (disassembly): message".
std::string formatFinding(const vm::Program &Prog, const Finding &F);

/// The analysis results the engines consume, built once per program.
struct ProgramAnalysis {
  Cfg G;
  os::StaticSyscallMap SyscallSites;
};

/// Builds the CFG and the static syscall-site map for \p Prog.
ProgramAnalysis analyzeProgram(const vm::Program &Prog);

} // namespace spin::analysis

#endif // SUPERPIN_ANALYSIS_PASSES_H
