//===- analysis/Dataflow.h - Worklist dataflow framework --------*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small forward worklist dataflow solver over the analysis Cfg. A
/// Problem supplies:
///
///   using State = ...;                       // copyable block-entry fact
///   State boundary(uint32_t RootBlock);      // fact at a CFG root
///   void transfer(const vm::Instruction &I,  // fact through one inst
///                 uint64_t InstIndex, State &S);
///   bool join(State &Dest, const State &Src);// merge; true if Dest changed
///
/// The solver propagates from the CFG roots only, so unreachable blocks
/// keep no state (reached() distinguishes them). Termination requires the
/// usual monotonicity of transfer/join over a finite-height lattice.
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_ANALYSIS_DATAFLOW_H
#define SUPERPIN_ANALYSIS_DATAFLOW_H

#include "analysis/Cfg.h"

#include <deque>
#include <vector>

namespace spin::analysis {

template <typename Problem> class ForwardSolver {
public:
  using State = typename Problem::State;

  ForwardSolver(const Cfg &G, Problem &P) : G(G), P(P) {}

  void solve() {
    In.assign(G.numBlocks(), State());
    Seen.assign(G.numBlocks(), false);
    std::deque<uint32_t> Work;
    for (uint32_t R : G.roots()) {
      if (!Seen[R]) {
        In[R] = P.boundary(R);
        Seen[R] = true;
        Work.push_back(R);
      } else {
        P.join(In[R], P.boundary(R));
      }
    }
    while (!Work.empty()) {
      uint32_t B = Work.front();
      Work.pop_front();
      State S = flowThrough(B);
      for (uint32_t Succ : G.block(B).Succs) {
        if (!Seen[Succ]) {
          In[Succ] = S;
          Seen[Succ] = true;
          Work.push_back(Succ);
        } else if (P.join(In[Succ], S)) {
          Work.push_back(Succ);
        }
      }
    }
  }

  /// Entry state of \p Block (valid after solve(), for reached blocks).
  const State &blockIn(uint32_t Block) const { return In[Block]; }

  /// True if dataflow reached \p Block from a root.
  bool reached(uint32_t Block) const { return Seen[Block]; }

  /// Applies the transfer function across \p Block and returns its exit
  /// state. Also usable after solve() to re-walk a block's instructions.
  State flowThrough(uint32_t Block) const {
    State S = In[Block];
    const BasicBlock &Blk = G.block(Block);
    for (uint64_t I = Blk.FirstIndex; I != Blk.endIndex(); ++I)
      P.transfer(G.program().Text[I], I, S);
    return S;
  }

private:
  const Cfg &G;
  Problem &P;
  std::vector<State> In;
  std::vector<bool> Seen;
};

} // namespace spin::analysis

#endif // SUPERPIN_ANALYSIS_DATAFLOW_H
