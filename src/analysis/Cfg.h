//===- analysis/Cfg.h - Guest-program control-flow graph --------*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A static control-flow graph over a guest Program's text segment: basic
/// blocks at classic leader boundaries, successor/predecessor edges, and an
/// over-approximation of indirect-jump targets gathered from the assembler's
/// label table, movi immediates, and code addresses embedded in the
/// initialized data segment (the workload generators' jump tables).
///
/// The CFG is the substrate for the dataflow passes in Passes.h and for two
/// runtime consumers: the SuperPin master predicts slice boundaries from the
/// static syscall-site map, and PinVm can batch-seed its code cache from
/// reachable block leaders instead of compiling trace by trace on first
/// execution.
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_ANALYSIS_CFG_H
#define SUPERPIN_ANALYSIS_CFG_H

#include "vm/Program.h"

#include <optional>
#include <vector>

namespace spin::analysis {

/// Registers read by \p I, as a NumRegs-wide bitmask. Implicit stack-pointer
/// traffic (push/pop/call/callr/ret) is included; out-of-range register
/// operands (possible in hand-built Instruction streams) are ignored.
uint16_t readRegs(const vm::Instruction &I);

/// Registers written by \p I, same conventions as readRegs.
uint16_t writtenRegs(const vm::Instruction &I);

/// One basic block: a maximal straight-line run of instructions.
struct BasicBlock {
  uint64_t FirstIndex = 0; ///< instruction index of the leader
  uint32_t NumInsts = 0;
  std::vector<uint32_t> Succs;
  std::vector<uint32_t> Preds;
  /// Reachable from a root following CFG edges.
  bool Reachable = false;
  /// Program entry or a statically discovered thread entry point.
  bool IsRoot = false;

  uint64_t lastIndex() const { return FirstIndex + NumInsts - 1; }
  uint64_t endIndex() const { return FirstIndex + NumInsts; }
};

class Cfg {
public:
  const vm::Program &program() const { return *Prog; }

  uint32_t numBlocks() const { return static_cast<uint32_t>(Blocks.size()); }
  const BasicBlock &block(uint32_t Id) const { return Blocks[Id]; }
  const std::vector<BasicBlock> &blocks() const { return Blocks; }

  /// Block containing instruction index \p InstIndex.
  uint32_t blockOfIndex(uint64_t InstIndex) const {
    assert(InstIndex < BlockMap.size() && "instruction index out of range");
    return BlockMap[InstIndex];
  }

  /// Block whose leader is guest address \p Pc, if \p Pc is in text.
  std::optional<uint32_t> blockOfPc(uint64_t Pc) const;

  /// Root block ids: the entry block plus statically discovered thread
  /// entries (thread_create sites whose target pc resolves statically).
  const std::vector<uint32_t> &roots() const { return Roots; }

  /// Instruction indices that an indirect jump/call could target, sorted
  /// ascending: text-pointing symbols, movi immediates that are valid text
  /// addresses, and 8-byte words of the initialized data segment that are
  /// valid text addresses (jump tables).
  const std::vector<uint64_t> &indirectTargets() const {
    return IndirectTargets;
  }

  /// Guest addresses of every reachable block leader, ascending. This is
  /// the trace-seeding work list for PinVm.
  std::vector<uint64_t> reachableLeaderPcs() const;

  /// Instructions inside reachable blocks.
  uint64_t numReachableInsts() const;

  /// Statically resolves the value register \p Reg holds when the
  /// instruction at \p InstIndex executes, by scanning backward for a
  /// defining movi. The scan follows unique-predecessor edges a few blocks
  /// up but gives up at any other defining opcode, at a call boundary
  /// (the callee could clobber \p Reg), or at a merge point.
  std::optional<uint64_t> staticRegValue(uint64_t InstIndex,
                                         unsigned Reg) const;

private:
  friend Cfg buildCfg(const vm::Program &Prog);

  const vm::Program *Prog = nullptr;
  std::vector<BasicBlock> Blocks;
  std::vector<uint32_t> BlockMap; ///< instruction index -> block id
  std::vector<uint32_t> Roots;
  std::vector<uint64_t> IndirectTargets;
};

/// Builds the CFG of \p Prog. Safe on malformed programs (invalid direct
/// targets simply get no edge; vm::verifyProgram reports them).
Cfg buildCfg(const vm::Program &Prog);

} // namespace spin::analysis

#endif // SUPERPIN_ANALYSIS_CFG_H
