//===- analysis/Loops.cpp - Dominators and natural-loop forest ------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "analysis/Loops.h"

#include "analysis/Dataflow.h"

#include <algorithm>
#include <cassert>

using namespace spin;
using namespace spin::analysis;
using namespace spin::vm;

//===----------------------------------------------------------------------===//
// DomTree
//===----------------------------------------------------------------------===//

DomTree::DomTree(const Cfg &G) {
  uint32_t N = G.numBlocks();
  // Internal node N is the virtual super-root all real roots hang off;
  // internal node N+1 is the "not processed yet" sentinel.
  const uint32_t Virtual = N;
  const uint32_t Undef = N + 1;
  Idom.assign(N + 1, Undef);
  Rpo.assign(N + 1, InvalidBlock);
  Depth.assign(N + 1, 0);
  Idom[Virtual] = Virtual;
  Rpo[Virtual] = 0;

  // Postorder DFS from each root (roots in declaration order), numbered
  // globally so one reverse postorder covers all trees.
  std::vector<uint32_t> Postorder;
  Postorder.reserve(N);
  std::vector<uint8_t> Visited(N, 0);
  struct Frame {
    uint32_t Block;
    uint32_t NextSucc;
  };
  std::vector<Frame> Stack;
  for (uint32_t R : G.roots()) {
    if (Visited[R])
      continue;
    Visited[R] = 1;
    Stack.push_back({R, 0});
    while (!Stack.empty()) {
      Frame &F = Stack.back();
      const std::vector<uint32_t> &Succs = G.block(F.Block).Succs;
      if (F.NextSucc < Succs.size()) {
        uint32_t S = Succs[F.NextSucc++];
        if (!Visited[S]) {
          Visited[S] = 1;
          Stack.push_back({S, 0});
        }
        continue;
      }
      Postorder.push_back(F.Block);
      Stack.pop_back();
    }
  }
  uint32_t Num = static_cast<uint32_t>(Postorder.size());
  std::vector<uint32_t> RpoOrder(Num);
  for (uint32_t I = 0; I != Num; ++I) {
    uint32_t B = Postorder[I];
    Rpo[B] = Num - I; // 1..Num; the virtual root keeps 0.
    RpoOrder[Num - 1 - I] = B;
  }

  std::vector<uint8_t> IsRoot(N, 0);
  for (uint32_t R : G.roots()) {
    IsRoot[R] = 1;
    Idom[R] = Virtual;
  }

  // Cooper-Harvey-Kennedy fixpoint over the reverse postorder.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (uint32_t B : RpoOrder) {
      if (IsRoot[B])
        continue;
      uint32_t NewIdom = Undef;
      for (uint32_t P : G.block(B).Preds) {
        if (Rpo[P] == InvalidBlock || Idom[P] == Undef)
          continue; // unreached or not yet processed
        NewIdom = NewIdom == Undef ? P : intersect(P, NewIdom);
      }
      if (NewIdom != Undef && Idom[B] != NewIdom) {
        Idom[B] = NewIdom;
        Changed = true;
      }
    }
  }

  for (uint32_t B : RpoOrder)
    Depth[B] = Depth[Idom[B]] + 1;

  // Externalize: the virtual root becomes InvalidBlock, and Idom entries
  // left Undef (unreached blocks) too.
  for (uint32_t B = 0; B != N; ++B)
    if (Idom[B] == Virtual || Idom[B] == Undef)
      Idom[B] = InvalidBlock;
  Idom.resize(N);
  Rpo.resize(N);
  Depth.resize(N);
}

uint32_t DomTree::intersect(uint32_t A, uint32_t B) const {
  // Pre-externalization: Idom chains terminate at the virtual root, whose
  // Rpo is 0, so the classic two-finger walk converges there.
  while (A != B) {
    while (Rpo[A] > Rpo[B])
      A = Idom[A];
    while (Rpo[B] > Rpo[A])
      B = Idom[B];
  }
  return A;
}

bool DomTree::dominates(uint32_t A, uint32_t B) const {
  if (!reachable(A) || !reachable(B))
    return false;
  while (Depth[B] > Depth[A])
    B = Idom[B];
  return A == B;
}

//===----------------------------------------------------------------------===//
// Loop
//===----------------------------------------------------------------------===//

bool Loop::contains(uint32_t B) const {
  return std::binary_search(Blocks.begin(), Blocks.end(), B);
}

const Loop::InductionVar *Loop::findIV(uint8_t Reg) const {
  for (const InductionVar &IV : IVs)
    if (IV.Reg == Reg)
      return &IV;
  return nullptr;
}

//===----------------------------------------------------------------------===//
// LoopForest
//===----------------------------------------------------------------------===//

LoopForest::LoopForest(const Cfg &G, const DomTree &DT) {
  InnermostLoop.assign(G.numBlocks(), InvalidLoop);
  IrreducibleBlock.assign(G.numBlocks(), false);
  discoverLoops(G, DT);
  markIrreducible(G, DT);
  nestLoops();
  analyzeBodies(G);
  estimateTrips(G);
}

void LoopForest::discoverLoops(const Cfg &G, const DomTree &DT) {
  // Back edges T -> H (H dominates T, including H == T for self-loops),
  // grouped by header so shared-header loops merge into one Loop.
  std::vector<uint32_t> LoopOfHeader(G.numBlocks(), InvalidLoop);
  for (uint32_t T = 0; T != G.numBlocks(); ++T) {
    if (!DT.reachable(T))
      continue;
    for (uint32_t H : G.block(T).Succs) {
      if (!DT.reachable(H) || !DT.dominates(H, T))
        continue;
      uint32_t &Id = LoopOfHeader[H];
      if (Id == InvalidLoop) {
        Id = static_cast<uint32_t>(Loops.size());
        Loops.push_back(Loop());
        Loops.back().Header = H;
        Loops.back().Blocks.push_back(H);
      }
      Loop &L = Loops[Id];
      L.Latches.push_back(T);
      // Natural-loop flood: everything that reaches the latch backward
      // without passing the header (restricted to reachable blocks).
      std::vector<uint32_t> Work;
      auto Add = [&](uint32_t B) {
        if (B == H || L.contains(B))
          return;
        L.Blocks.insert(
            std::lower_bound(L.Blocks.begin(), L.Blocks.end(), B), B);
        Work.push_back(B);
      };
      Add(T);
      while (!Work.empty()) {
        uint32_t B = Work.back();
        Work.pop_back();
        for (uint32_t P : G.block(B).Preds)
          if (DT.reachable(P))
            Add(P);
      }
    }
  }
  for (Loop &L : Loops) {
    std::sort(L.Latches.begin(), L.Latches.end());
    L.Latches.erase(std::unique(L.Latches.begin(), L.Latches.end()),
                    L.Latches.end());
    L.SelfLoop = L.Blocks.size() == 1;
  }
}

void LoopForest::markIrreducible(const Cfg &G, const DomTree &DT) {
  // Iterative Tarjan SCC over the reachable subgraph.
  uint32_t N = G.numBlocks();
  std::vector<uint32_t> SccOf(N, InvalidBlock), Index(N, InvalidBlock),
      Low(N, 0);
  std::vector<uint8_t> OnStack(N, 0);
  std::vector<uint32_t> SccStack;
  uint32_t NextIndex = 0, NumSccs = 0;
  struct Frame {
    uint32_t Block;
    uint32_t NextSucc;
  };
  std::vector<Frame> Stack;
  for (uint32_t Start = 0; Start != N; ++Start) {
    if (!DT.reachable(Start) || Index[Start] != InvalidBlock)
      continue;
    Stack.push_back({Start, 0});
    Index[Start] = Low[Start] = NextIndex++;
    SccStack.push_back(Start);
    OnStack[Start] = 1;
    while (!Stack.empty()) {
      Frame &F = Stack.back();
      uint32_t B = F.Block;
      const std::vector<uint32_t> &Succs = G.block(B).Succs;
      if (F.NextSucc < Succs.size()) {
        uint32_t S = Succs[F.NextSucc++];
        if (!DT.reachable(S))
          continue;
        if (Index[S] == InvalidBlock) {
          Stack.push_back({S, 0});
          Index[S] = Low[S] = NextIndex++;
          SccStack.push_back(S);
          OnStack[S] = 1;
        } else if (OnStack[S]) {
          Low[B] = std::min(Low[B], Index[S]);
        }
        continue;
      }
      if (Low[B] == Index[B]) {
        uint32_t Scc = NumSccs++;
        while (true) {
          uint32_t M = SccStack.back();
          SccStack.pop_back();
          OnStack[M] = 0;
          SccOf[M] = Scc;
          if (M == B)
            break;
        }
      }
      Stack.pop_back();
      if (!Stack.empty())
        Low[Stack.back().Block] =
            std::min(Low[Stack.back().Block], Low[B]);
    }
  }

  // A retreating edge whose target does not dominate its source enters a
  // cycle at a non-header block: the whole SCC (which may also contain
  // reducible loops — conservatively marked along with it) is
  // irreducible. Cross edges between different SCCs retreat in RPO terms
  // without forming a cycle and are ignored.
  std::vector<uint8_t> SccCyclic(NumSccs, 0);
  std::vector<uint8_t> SccBad(NumSccs, 0);
  std::vector<uint32_t> SccCount(NumSccs, 0);
  for (uint32_t B = 0; B != N; ++B)
    if (SccOf[B] != InvalidBlock)
      ++SccCount[SccOf[B]];
  for (uint32_t T = 0; T != N; ++T) {
    if (!DT.reachable(T))
      continue;
    for (uint32_t H : G.block(T).Succs) {
      if (!DT.reachable(H) || SccOf[T] != SccOf[H])
        continue;
      if (T == H || SccCount[SccOf[T]] > 1)
        SccCyclic[SccOf[T]] = 1;
      if (DT.rpo(H) <= DT.rpo(T) && !DT.dominates(H, T))
        SccBad[SccOf[T]] = 1;
    }
  }
  for (uint32_t B = 0; B != N; ++B) {
    uint32_t Scc = SccOf[B];
    if (Scc != InvalidBlock && SccBad[Scc] && SccCyclic[Scc]) {
      IrreducibleBlock[B] = true;
      AnyIrreducible = true;
    }
  }
}

void LoopForest::nestLoops() {
  // Innermost-loop map: assign smaller loops first so the innermost wins.
  std::vector<uint32_t> BySize(Loops.size());
  for (uint32_t I = 0; I != Loops.size(); ++I)
    BySize[I] = I;
  std::sort(BySize.begin(), BySize.end(), [&](uint32_t A, uint32_t B) {
    return Loops[A].Blocks.size() < Loops[B].Blocks.size();
  });
  for (uint32_t Id : BySize)
    for (uint32_t B : Loops[Id].Blocks)
      if (InnermostLoop[B] == InvalidLoop)
        InnermostLoop[B] = Id;
  // Parent: the smallest strictly-larger loop containing our header
  // (reducible natural loops nest or are disjoint).
  for (uint32_t Id = 0; Id != Loops.size(); ++Id) {
    Loop &L = Loops[Id];
    uint32_t Best = InvalidLoop;
    for (uint32_t Other = 0; Other != Loops.size(); ++Other) {
      if (Other == Id || Loops[Other].Blocks.size() <= L.Blocks.size())
        continue;
      if (!Loops[Other].contains(L.Header))
        continue;
      if (Best == InvalidLoop ||
          Loops[Other].Blocks.size() < Loops[Best].Blocks.size())
        Best = Other;
    }
    L.Parent = Best;
  }
  for (uint32_t Id : BySize) {
    Loop &L = Loops[Id];
    L.Depth = L.Parent == InvalidLoop ? 1 : Loops[L.Parent].Depth + 1;
  }
}

void LoopForest::analyzeBodies(const Cfg &G) {
  const Program &Prog = G.program();
  for (Loop &L : Loops) {
    std::array<uint32_t, NumRegs> Writes{};
    std::array<uint64_t, NumRegs> WriteIndex{};
    std::array<const Instruction *, NumRegs> WriteInst{};
    for (uint32_t B : L.Blocks) {
      const BasicBlock &Blk = G.block(B);
      for (uint64_t I = Blk.FirstIndex; I != Blk.endIndex(); ++I) {
        const Instruction &Inst = Prog.Text[I];
        if (Inst.isCall() || Inst.isSyscall() ||
            (Inst.isIndirect() && Inst.isControlFlow()))
          L.HasCallOrSyscall = true;
        uint16_t Mask = writtenRegs(Inst);
        L.WrittenRegs |= Mask;
        for (unsigned R = 0; R != NumRegs; ++R)
          if (Mask & (1u << R)) {
            ++Writes[R];
            WriteIndex[R] = I;
            WriteInst[R] = &Inst;
          }
      }
    }
    if (L.HasCallOrSyscall) {
      // A callee or the kernel may write anything: no register is
      // provably invariant and no induction variable is trustworthy.
      L.WrittenRegs = static_cast<uint16_t>(~0u);
      continue;
    }
    for (unsigned R = 0; R != NumRegs; ++R) {
      if (Writes[R] != 1)
        continue;
      const Instruction &Inst = *WriteInst[R];
      if (Inst.Op == Opcode::Addi && Inst.A == R && Inst.B == R &&
          Inst.Imm != 0)
        L.IVs.push_back({static_cast<uint8_t>(R), Inst.Imm, WriteIndex[R]});
    }
  }
}

namespace {

/// Constant-register propagation for trip-count estimation, solved with
/// the Dataflow.h forward worklist framework. Lattice per register:
/// Const(v) or NonConst; boundary is all-NonConst (lint semantics: guest
/// code must not rely on zeroed registers at entry).
struct ConstPropProblem {
  enum : uint8_t { Const = 1, NonConst = 2 };
  struct State {
    std::array<uint8_t, NumRegs> Tag{};
    std::array<uint64_t, NumRegs> Val{};
  };

  State boundary(uint32_t) const {
    State S;
    S.Tag.fill(NonConst);
    return S;
  }

  void transfer(const Instruction &I, uint64_t, State &S) const {
    switch (I.Op) {
    case Opcode::Movi:
      if (I.A < NumRegs) {
        S.Tag[I.A] = Const;
        S.Val[I.A] = static_cast<uint64_t>(I.Imm);
      }
      return;
    case Opcode::Mov:
      if (I.A < NumRegs && I.B < NumRegs) {
        S.Tag[I.A] = S.Tag[I.B];
        S.Val[I.A] = S.Val[I.B];
      }
      return;
    case Opcode::Addi:
      if (I.A < NumRegs && I.B < NumRegs) {
        if (S.Tag[I.B] == Const) {
          S.Tag[I.A] = Const;
          S.Val[I.A] = S.Val[I.B] + static_cast<uint64_t>(I.Imm);
        } else {
          S.Tag[I.A] = NonConst;
        }
      }
      return;
    default:
      break;
    }
    if (I.isCall() || I.isSyscall() || I.isRet()) {
      S.Tag.fill(NonConst); // callee/kernel may write anything
      return;
    }
    uint16_t Mask = writtenRegs(I);
    for (unsigned R = 0; R != NumRegs; ++R)
      if (Mask & (1u << R))
        S.Tag[R] = NonConst;
  }

  bool join(State &Dest, const State &Src) const {
    bool Changed = false;
    for (unsigned R = 0; R != NumRegs; ++R) {
      if (Dest.Tag[R] == NonConst)
        continue;
      if (Src.Tag[R] == Const && Src.Val[R] == Dest.Val[R])
        continue;
      Dest.Tag[R] = NonConst;
      Changed = true;
    }
    return Changed;
  }
};

/// Evaluates the fused compare of \p Op on (\p A, \p B).
bool evalCompare(Opcode Op, uint64_t A, uint64_t B) {
  switch (Op) {
  case Opcode::Beq:
    return A == B;
  case Opcode::Bne:
    return A != B;
  case Opcode::Blt:
    return static_cast<int64_t>(A) < static_cast<int64_t>(B);
  case Opcode::Bge:
    return static_cast<int64_t>(A) >= static_cast<int64_t>(B);
  case Opcode::Bltu:
    return A < B;
  case Opcode::Bgeu:
    return A >= B;
  default:
    return false;
  }
}

} // namespace

void LoopForest::estimateTrips(const Cfg &G) {
  if (Loops.empty())
    return;
  ConstPropProblem Problem;
  ForwardSolver<ConstPropProblem> Solver(G, Problem);
  Solver.solve();
  const Program &Prog = G.program();

  for (Loop &L : Loops) {
    if (L.HasCallOrSyscall || L.Latches.size() != 1 || L.IVs.empty())
      continue;
    // Recognized shape: the single latch ends in `bCC ra, rb, header`
    // where one operand is an induction variable and the other is a
    // loop-invariant constant.
    const BasicBlock &Latch = G.block(L.Latches.front());
    const Instruction &Br = Prog.Text[Latch.lastIndex()];
    if (!Br.isCondBranch() ||
        static_cast<uint64_t>(Br.Imm) !=
            Program::addressOfIndex(G.block(L.Header).FirstIndex))
      continue;
    const Loop::InductionVar *IV = L.findIV(Br.A);
    uint8_t OtherReg = Br.B;
    bool IVFirst = true;
    if (!IV) {
      IV = L.findIV(Br.B);
      OtherReg = Br.A;
      IVFirst = false;
    }
    if (!IV || (L.WrittenRegs & (1u << OtherReg)))
      continue;
    // Entry state: join of the exit states of the header's out-of-loop
    // predecessors (the conceptual preheader edge).
    ConstPropProblem::State Entry;
    bool HaveEntry = false;
    for (uint32_t P : G.block(L.Header).Preds) {
      if (L.contains(P) || !Solver.reached(P))
        continue;
      ConstPropProblem::State Out = Solver.flowThrough(P);
      if (!HaveEntry) {
        Entry = Out;
        HaveEntry = true;
      } else {
        Problem.join(Entry, Out);
      }
    }
    if (!HaveEntry || Entry.Tag[IV->Reg] != ConstPropProblem::Const ||
        Entry.Tag[OtherReg] != ConstPropProblem::Const)
      continue;
    uint64_t V0 = Entry.Val[IV->Reg];
    uint64_t C = Entry.Val[OtherReg];
    // The body runs before the test: the count is the smallest K >= 1
    // for which the continue-condition turns false at IV = V0 + K*step.
    // Walk it directly (bounded); the estimate is advisory, so loops
    // beyond the bound simply report "unknown".
    constexpr uint64_t MaxWalk = 1'000'000;
    std::optional<uint64_t> Trip;
    uint64_t IVVal = V0;
    for (uint64_t K = 1; K <= MaxWalk; ++K) {
      IVVal += static_cast<uint64_t>(IV->Step);
      uint64_t A = IVFirst ? IVVal : C;
      uint64_t B = IVFirst ? C : IVVal;
      if (!evalCompare(Br.Op, A, B)) {
        Trip = K;
        break;
      }
    }
    L.EstTrip = Trip;
  }
}
