//===- analysis/Redundancy.cpp - Instrumentation-redundancy info ----------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "analysis/Redundancy.h"

using namespace spin;
using namespace spin::analysis;
using namespace spin::vm;

const char *spin::analysis::blockReduxName(BlockRedux K) {
  switch (K) {
  case BlockRedux::Stateful:
    return "stateful";
  case BlockRedux::Aggregatable:
    return "aggregatable";
  case BlockRedux::Hoistable:
    return "hoistable";
  }
  return "stateful";
}

RedundancyInfo::RedundancyInfo(const Cfg &G)
    : G(&G), DT(G), Forest(G, DT) {
  Info.resize(G.numBlocks());
  for (uint32_t B = 0; B != G.numBlocks(); ++B) {
    BlockReduxInfo &BI = Info[B];
    BI.LoopId = Forest.innermostLoopOf(B);
    if (!DT.reachable(B)) {
      BI.Why = "unreachable from every root";
      continue;
    }
    if (Forest.inIrreducibleRegion(B)) {
      BI.Why = "irreducible region: multiple cycle entries, no dominating "
               "header (conservative: never hoist or aggregate)";
      continue;
    }
    if (BI.LoopId == InvalidLoop) {
      BI.Why = "straight-line code outside any loop";
      continue;
    }
    const Loop &L = Forest.loop(BI.LoopId);
    if (L.HasCallOrSyscall) {
      BI.Why = "loop body contains a call/indirect branch/syscall: every "
               "iteration crosses a tool-observable or clobbering boundary";
      continue;
    }
    if (L.SelfLoop) {
      BI.Kind = BlockRedux::Aggregatable;
      BI.Why = "single-block self-loop: no preheader insertion point, so "
               "aggregate at flush boundaries but never hoist";
      continue;
    }
    BI.Kind = BlockRedux::Hoistable;
    BI.Why = "reducible loop (depth " + std::to_string(L.Depth) +
             "): invariant payloads hoistable to the preheader, counters "
             "aggregatable";
  }
}

BlockRedux RedundancyInfo::classifyPc(uint64_t Pc) const {
  const Program &Prog = G->program();
  if (Pc < AddressLayout::TextBase || (Pc % InstSize) != 0)
    return BlockRedux::Stateful;
  uint64_t Index = (Pc - AddressLayout::TextBase) / InstSize;
  if (Index >= Prog.Text.size())
    return BlockRedux::Stateful;
  return Info[G->blockOfIndex(Index)].Kind;
}

uint64_t RedundancyInfo::numSuppressibleBlocks() const {
  uint64_t N = 0;
  for (const BlockReduxInfo &BI : Info)
    if (BI.Kind != BlockRedux::Stateful)
      ++N;
  return N;
}
