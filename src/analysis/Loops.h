//===- analysis/Loops.h - Dominators and natural-loop forest ----*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dominator tree and natural-loop forest over the analysis Cfg, plus the
/// per-loop facts the redundancy classifier (Redundancy.h) consumes:
/// written-register masks, induction variables, and best-effort static
/// trip-count estimates (powered by a constant-register propagation
/// problem run through the Dataflow.h worklist solver).
///
/// Irreducible regions — cycles entered at more than one block, so no
/// header dominates the rest — are detected and marked separately: they
/// form no Loop entries and every block they touch is flagged so
/// downstream passes classify them conservatively (never hoist, never
/// aggregate). Single-block self-loops are ordinary Loop entries with
/// SelfLoop set; they have no body distinct from the header, so payloads
/// can be aggregated at loop exit but never hoisted to a preheader.
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_ANALYSIS_LOOPS_H
#define SUPERPIN_ANALYSIS_LOOPS_H

#include "analysis/Cfg.h"

#include <optional>
#include <vector>

namespace spin::analysis {

inline constexpr uint32_t InvalidBlock = ~uint32_t(0);
inline constexpr uint32_t InvalidLoop = ~uint32_t(0);

/// Immediate-dominator tree over the reachable blocks of a Cfg, computed
/// with the iterative Cooper-Harvey-Kennedy algorithm over a reverse
/// postorder. Multiple roots (thread entries) hang off a virtual
/// super-root, so dominance queries between blocks of different trees
/// answer false instead of looping.
class DomTree {
public:
  explicit DomTree(const Cfg &G);

  /// Immediate dominator of \p B; InvalidBlock for roots and blocks
  /// dataflow never reached.
  uint32_t idom(uint32_t B) const { return Idom[B]; }

  /// True when \p A dominates \p B (reflexive). Unreached blocks dominate
  /// nothing and are dominated by nothing.
  bool dominates(uint32_t A, uint32_t B) const;

  /// True when the dominator computation reached \p B from a root.
  bool reachable(uint32_t B) const { return Rpo[B] != InvalidBlock; }

  /// Reverse-postorder number of \p B (InvalidBlock if unreached). An
  /// edge T -> H with rpo(H) <= rpo(T) is retreating: either a back edge
  /// (H dominates T) or an entry into an irreducible region.
  uint32_t rpo(uint32_t B) const { return Rpo[B]; }

private:
  std::vector<uint32_t> Idom; ///< parent; InvalidBlock at roots/unreached
  std::vector<uint32_t> Rpo;
  std::vector<uint32_t> Depth; ///< tree depth; 0 at roots

  uint32_t intersect(uint32_t A, uint32_t B) const;
};

/// One natural loop: the blocks that can reach a back edge's source
/// without passing its header. Back edges sharing a header merge into a
/// single Loop (shared-header loops), as LLVM's LoopInfo does.
struct Loop {
  uint32_t Header = InvalidBlock;
  /// All member blocks including the header, sorted ascending.
  std::vector<uint32_t> Blocks;
  /// Back-edge sources, sorted ascending (== Header for a self-loop).
  std::vector<uint32_t> Latches;
  uint32_t Parent = InvalidLoop; ///< immediate enclosing loop
  uint32_t Depth = 1;            ///< 1 for outermost loops
  bool SelfLoop = false;         ///< single block branching to itself
  /// Loop body contains a call, indirect branch, or syscall: register
  /// invariance below is meaningless (everything is clobbered) and the
  /// redundancy classifier treats the loop as stateful.
  bool HasCallOrSyscall = false;
  /// Union of registers any member block writes (clobber-all when
  /// HasCallOrSyscall). Complement = loop-invariant registers.
  uint16_t WrittenRegs = 0;

  /// A register whose only in-loop write is `addi r, r, step`.
  struct InductionVar {
    uint8_t Reg = 0;
    int64_t Step = 0;
    uint64_t WriteIndex = 0; ///< instruction index of the addi
  };
  std::vector<InductionVar> IVs;

  /// Static trip-count estimate (body executions per loop entry) when the
  /// exit test is a recognized compare of an induction variable against a
  /// loop-invariant constant; nullopt otherwise. Advisory only — the
  /// runtime counts iterations dynamically and never trusts this.
  std::optional<uint64_t> EstTrip;

  bool contains(uint32_t B) const;
  const InductionVar *findIV(uint8_t Reg) const;
  uint16_t invariantRegs() const {
    return static_cast<uint16_t>(~WrittenRegs);
  }
};

/// The loop forest plus irreducible-region marking for one Cfg.
class LoopForest {
public:
  LoopForest(const Cfg &G, const DomTree &DT);

  const std::vector<Loop> &loops() const { return Loops; }
  const Loop &loop(uint32_t Id) const { return Loops[Id]; }
  uint32_t numLoops() const { return static_cast<uint32_t>(Loops.size()); }

  /// Innermost loop containing \p Block, or InvalidLoop.
  uint32_t innermostLoopOf(uint32_t Block) const {
    return InnermostLoop[Block];
  }

  /// True when \p Block belongs to a cycle with multiple entry blocks
  /// (no dominating header). Such regions form no Loop entries.
  bool inIrreducibleRegion(uint32_t Block) const {
    return IrreducibleBlock[Block];
  }

  /// Any irreducible region anywhere in the program.
  bool hasIrreducibleRegions() const { return AnyIrreducible; }

private:
  std::vector<Loop> Loops;
  std::vector<uint32_t> InnermostLoop;
  std::vector<bool> IrreducibleBlock;
  bool AnyIrreducible = false;

  void discoverLoops(const Cfg &G, const DomTree &DT);
  void markIrreducible(const Cfg &G, const DomTree &DT);
  void nestLoops();
  void analyzeBodies(const Cfg &G);
  void estimateTrips(const Cfg &G);
};

} // namespace spin::analysis

#endif // SUPERPIN_ANALYSIS_LOOPS_H
