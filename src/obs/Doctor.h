//===- obs/Doctor.h - spin_doctor run diagnosis -----------------*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bottleneck analyzer behind -spdoctor: turns one run's observed
/// slice schedule into a critical-path diagnosis (CriticalPath.h), then
/// into answers a user can act on — where every critical tick went (the
/// CpKind taxonomy, the five-way host-attribution view, and the spprof
/// 8-cause taxonomy when a profile was attached), an Amdahl-style scaling
/// model fitted from the measured serial fraction (predicted wall at 2x
/// and 4x the run's parallelism), the top bottlenecks, and the flags most
/// likely to help.
///
/// Attribution is exact by construction: the critical path partitions
/// [0, wall], so the per-kind ticks sum to the measured wall time with no
/// residual. Exported as a versioned "spdoctor-v1" JSON document and as a
/// human-readable report section.
///
/// Inputs are plain structs (not SpRunReport / ReplayReport) because obs/
/// sits below both engines; superpin/Reporting.h and spin_replay build
/// them from their reports.
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_OBS_DOCTOR_H
#define SUPERPIN_OBS_DOCTOR_H

#include "obs/CriticalPath.h"

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace spin {
class RawOstream;
}

namespace spin::obs {

/// Current diagnosis schema identifier.
inline constexpr const char *DoctorSchema = "spdoctor-v1";

/// One slice's observed schedule, straight from the live engine's
/// SliceInfo. CauseTicks, when the run carried a profiler, is the slice
/// lane's per-cause tick totals, parallel to DoctorInput::CauseNames.
struct DoctorSliceInput {
  uint32_t Num = 0;
  os::Ticks SpawnTime = 0;
  os::Ticks ReadyTime = 0;
  os::Ticks EndTime = 0;
  os::Ticks MergeTime = 0;
  uint32_t Attempts = 1;
  std::vector<uint64_t> CauseTicks;
};

/// A live SuperPin run, flattened for diagnosis. Slices must be sorted by
/// ascending Num (merge order). The three master phase totals split the
/// critical master-dispatch time into run / fork-overhead / stall shares
/// (the schedule records when the master forked, not why a gap was long).
struct DoctorInput {
  os::Ticks WallTicks = 0;
  os::Ticks MasterExitTicks = 0;
  os::Ticks NativeTicks = 0;
  os::Ticks ForkOthersTicks = 0;
  os::Ticks SleepTicks = 0;
  unsigned MaxSlices = 0;   ///< -spslices in effect (the parallelism knob)
  unsigned HostWorkers = 0; ///< resolved -spmp count (0 = serial host)
  /// spprof cause taxonomy in effect; empty when no profile was attached.
  std::vector<std::string> CauseNames;
  /// Master lane attribution (parallel to CauseNames) + its native ticks.
  std::vector<uint64_t> MasterCauseTicks;
  uint64_t MasterNativeCauseTicks = 0;
  std::vector<DoctorSliceInput> Slices;
};

/// A replay pipeline run: per slice, the serial-clock cost of master
/// reconstruction (prepare) and of the instrumented body. Replay's virtual
/// clock is serial by definition, so the diagnosis answers "what would
/// host workers buy" rather than "why wasn't the virtual run faster".
struct ReplayDoctorInput {
  os::Ticks WallTicks = 0;
  unsigned HostWorkers = 0;
  struct Slice {
    uint32_t Num = 0;
    os::Ticks PrepTicks = 0;
    os::Ticks BodyTicks = 0;
  };
  std::vector<Slice> Slices;
};

/// One named share of the critical time.
struct DoctorBucket {
  std::string Name;
  os::Ticks Ticks = 0;
  double Share = 0; ///< of CriticalTicks
};

struct DoctorBottleneck {
  std::string Kind; ///< cpKindName of the dominant edge kind
  os::Ticks Ticks = 0;
  double Share = 0;
  std::string Hint; ///< one-line "what this means / what to try"
};

struct DoctorReport {
  bool Valid = false;
  std::string Error;
  std::string Engine; ///< "live" or "replay"

  os::Ticks WallTicks = 0;
  /// Critical-path total; equals WallTicks (exact partition).
  os::Ticks CriticalTicks = 0;
  unsigned Slices = 0;
  unsigned MaxSlices = 0;
  unsigned HostWorkers = 0;

  /// Critical ticks per CpKind (live runs split the master-dispatch time
  /// into run/fork/stall by the reported phase ratios); sums to
  /// CriticalTicks.
  std::array<os::Ticks, NumCpKinds> KindTicks{};
  /// The same critical time mapped onto the five-way host-attribution
  /// taxonomy (host.body / host.dispatchwait / host.mergewait / host.idle
  /// / host.retire); sums to CriticalTicks.
  std::vector<DoctorBucket> HostBuckets;
  /// spprof 8-cause split of the critical time, plus the pseudo-buckets
  /// "native" (uninstrumented master work) and "wait" (critical time that
  /// is waiting, not execution). Empty when the run carried no profile.
  std::vector<DoctorBucket> CauseBuckets;

  /// Amdahl fit: Serial is critical time in inherently serial kinds
  /// (cpKindIsSerial), Parallel the rest; predicted wall at k-times this
  /// run's parallelism is Serial + Parallel / k.
  os::Ticks SerialTicks = 0;
  os::Ticks ParallelTicks = 0;
  double SerialFraction = 0;
  os::Ticks PredictedWall2x = 0;
  os::Ticks PredictedWall4x = 0;
  double PredictedSpeedup2x = 1.0;
  double PredictedSpeedup4x = 1.0;

  /// Top bottlenecks by critical share, largest first (at most 3).
  std::vector<DoctorBottleneck> Bottlenecks;
  /// Flags the bottleneck hints point at, deduplicated, dominant first.
  std::vector<std::string> RecommendedFlags;
};

/// Diagnoses a live run.
DoctorReport diagnose(const DoctorInput &In);

/// Diagnoses a replay pipeline run.
DoctorReport diagnoseReplay(const ReplayDoctorInput &In);

/// Writes the "spdoctor-v1" JSON document. \p TicksPerMs converts the
/// headline tick figures to milliseconds (os::CostModel::TicksPerMs).
void writeDoctorJson(const DoctorReport &R, os::Ticks TicksPerMs,
                     RawOstream &OS);

/// Prints the human-readable report section (top bottlenecks, predicted
/// scaling, recommended flags).
void printDoctorReport(const DoctorReport &R, os::Ticks TicksPerMs,
                       RawOstream &OS);

} // namespace spin::obs

#endif // SUPERPIN_OBS_DOCTOR_H
