//===- obs/FlightRecorder.cpp - Postmortem flight recorder ----------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "obs/FlightRecorder.h"

#include "obs/Metrics.h"
#include "obs/TraceRecorder.h"
#include "support/Json.h"
#include "support/RawOstream.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sys/stat.h>
#include <sys/types.h>

namespace spin::obs {

FlightRecorder::FlightRecorder(std::string Dir, os::Ticks TicksPerMs)
    : Dir(std::move(Dir)), TicksPerMs(TicksPerMs) {}

void FlightRecorder::recordEvent(std::string Kind, uint32_t Slice,
                                 uint32_t Attempt, os::Ticks Now,
                                 std::string Detail) {
  std::lock_guard<std::mutex> Lock(EventsLock);
  Events.push_back(
      {std::move(Kind), Slice, Attempt, Now, std::move(Detail)});
  ensureDir();
  Armed.store(true, std::memory_order_release);
}

void FlightRecorder::ensureDir() {
  if (DirReady || !Err.empty())
    return;
  if (::mkdir(Dir.c_str(), 0755) != 0 && errno != EEXIST) {
    Err = "cannot create flight-recorder directory '" + Dir +
          "': " + std::strerror(errno);
    return;
  }
  DirReady = true;
}

void FlightRecorder::writeFile(const std::string &Name,
                               const std::string &Text) {
  if (!DirReady)
    return;
  std::string Path = Dir + "/" + Name;
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F) {
    if (Err.empty())
      Err = "cannot write '" + Path + "': " + std::strerror(errno);
    return;
  }
  std::fwrite(Text.data(), 1, Text.size(), F);
  std::fclose(F);
  Files.push_back(Name);
}

void FlightRecorder::writeTrace(const TraceRecorder &Trace,
                                const HostTraceRecorder *Host) {
  if (!triggered())
    return;
  std::string Doc;
  {
    RawStringOstream OS(Doc);
    Trace.writeChromeTrace(OS, TicksPerMs, Host);
  }
  writeFile("trace.json", Doc);
}

void FlightRecorder::writeCounters(const StatisticRegistry &Stats) {
  if (!triggered())
    return;
  std::string Doc;
  {
    RawStringOstream OS(Doc);
    writeRegistryJson(Stats, OS);
  }
  writeFile("counters.json", Doc);
}

void FlightRecorder::writeDoctor(const DoctorReport &R) {
  if (!triggered())
    return;
  std::string Doc;
  {
    RawStringOstream OS(Doc);
    writeDoctorJson(R, TicksPerMs, OS);
  }
  writeFile("doctor.json", Doc);
}

void FlightRecorder::writeManifest() {
  if (!triggered())
    return;
  std::string Doc;
  {
    RawStringOstream OS(Doc);
    JsonWriter W(OS);
    W.beginObject();
    W.field("schema", "spflight-v1");
    W.field("events_recorded", static_cast<uint64_t>(Events.size()));
    W.key("events").beginArray();
    for (const Event &E : Events) {
      W.beginObject();
      W.field("kind", E.Kind);
      if (E.Slice != ~0u) {
        W.field("slice", static_cast<uint64_t>(E.Slice));
        W.field("attempt", static_cast<uint64_t>(E.Attempt));
      }
      W.field("ticks", static_cast<uint64_t>(E.Now));
      if (!E.Detail.empty())
        W.field("detail", E.Detail);
      W.endObject();
    }
    W.endArray();
    W.key("files").beginArray();
    for (const std::string &F : Files)
      W.value(F);
    W.endArray();
    W.endObject();
    OS << '\n';
  }
  writeFile("MANIFEST.json", Doc);
}

} // namespace spin::obs
