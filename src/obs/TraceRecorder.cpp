//===- obs/TraceRecorder.cpp - Span-event trace recorder ------------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "obs/TraceRecorder.h"

#include "obs/HostTraceRecorder.h"
#include "support/Json.h"
#include "support/RawOstream.h"

#include <chrono>

using namespace spin;
using namespace spin::obs;

const char *spin::obs::eventName(EventKind K) {
  switch (K) {
  case EventKind::MasterRun:
    return "master.run";
  case EventKind::MasterStall:
    return "master.stall";
  case EventKind::SliceFork:
    return "slice.fork";
  case EventKind::SliceSleep:
    return "slice.sleep";
  case EventKind::SliceRun:
    return "slice.run";
  case EventKind::SigSearch:
    return "sig.search";
  case EventKind::SliceMerge:
    return "slice.merge";
  case EventKind::DeferSpill:
    return "defer.spill";
  case EventKind::DeferDrain:
    return "defer.drain";
  case EventKind::SysService:
    return "sys.service";
  case EventKind::SysRecord:
    return "sys.record";
  case EventKind::SysPlayback:
    return "sys.playback";
  case EventKind::JitCompile:
    return "jit.compile";
  case EventKind::JitSeed:
    return "jit.seed";
  case EventKind::ReplayForward:
    return "replay.forward";
  case EventKind::ReplaySlice:
    return "replay.slice";
  case EventKind::ReplayParity:
    return "replay.parity";
  case EventKind::Parallelism:
    return "sched.parallelism";
  case EventKind::WatchdogKill:
    return "fault.watchdogkill";
  case EventKind::SliceRetry:
    return "fault.retry";
  case EventKind::SliceQuarantine:
    return "fault.quarantine";
  case EventKind::PlaybackDivergence:
    return "fault.divergence";
  case EventKind::BreakerTrip:
    return "fault.breaker";
  case EventKind::SlicesRetired:
    return "sp.slices.retired";
  case EventKind::LiveForks:
    return "sp.forks.live";
  case EventKind::DeferBacklog:
    return "sp.defer.backlog";
  }
  return "unknown";
}

const char *spin::obs::eventCategory(EventKind K) {
  switch (K) {
  case EventKind::MasterRun:
  case EventKind::MasterStall:
  case EventKind::SliceFork:
  case EventKind::DeferSpill:
    return "master";
  case EventKind::SliceSleep:
  case EventKind::SliceRun:
  case EventKind::SigSearch:
  case EventKind::SliceMerge:
  case EventKind::DeferDrain:
    return "slice";
  case EventKind::SysService:
  case EventKind::SysRecord:
  case EventKind::SysPlayback:
    return "os";
  case EventKind::JitCompile:
  case EventKind::JitSeed:
    return "jit";
  case EventKind::ReplayForward:
  case EventKind::ReplaySlice:
  case EventKind::ReplayParity:
    return "replay";
  case EventKind::Parallelism:
  case EventKind::SlicesRetired:
  case EventKind::LiveForks:
  case EventKind::DeferBacklog:
    return "sched";
  case EventKind::WatchdogKill:
  case EventKind::SliceRetry:
  case EventKind::SliceQuarantine:
  case EventKind::PlaybackDivergence:
  case EventKind::BreakerTrip:
    return "fault";
  }
  return "unknown";
}

TraceRecorder::TraceRecorder(size_t Capacity)
    : Capacity(Capacity ? Capacity : 1) {
  Buf.reserve(this->Capacity);
}

void TraceRecorder::push(uint32_t Lane, EventKind K, EventPhase Ph,
                         os::Ticks Ts, uint64_t Arg) {
  TraceEvent E;
  E.Ts = Ts;
  E.Arg = Arg;
  E.Lane = Lane;
  E.Kind = K;
  E.Phase = Ph;
  if (WallClock)
    E.WallNs = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  if (Buf.size() < Capacity) {
    Buf.push_back(E);
    return;
  }
  // Ring full: overwrite the oldest event.
  Buf[Head] = E;
  Head = (Head + 1) % Capacity;
  ++Dropped;
}

void TraceRecorder::setLaneName(uint32_t Lane, std::string Name) {
  if (LaneNames.size() <= Lane)
    LaneNames.resize(Lane + 1);
  LaneNames[Lane] = std::move(Name);
}

std::vector<TraceEvent> TraceRecorder::snapshot() const {
  std::vector<TraceEvent> Out;
  Out.reserve(Buf.size());
  for (size_t I = 0; I != Buf.size(); ++I)
    Out.push_back(Buf[(Head + I) % Buf.size()]);
  return Out;
}

void TraceRecorder::clear() {
  Buf.clear();
  Head = 0;
  Dropped = 0;
}

void TraceRecorder::writeChromeTrace(RawOstream &OS, os::Ticks TicksPerMs,
                                     const HostTraceRecorder *Host) const {
  // Chrome trace "ts" is microseconds; 1 virtual ms = TicksPerMs ticks.
  double UsPerTick = 1000.0 / static_cast<double>(TicksPerMs ? TicksPerMs : 1);
  JsonWriter W(OS);
  W.beginObject();
  W.field("displayTimeUnit", "ms");
  W.key("traceEvents");
  W.beginArray();

  auto Meta = [&](const char *Name, uint32_t Tid, bool HasTid) {
    W.beginObject();
    W.field("name", Name);
    W.field("ph", "M");
    W.field("pid", 1);
    if (HasTid)
      W.field("tid", Tid);
    // Caller writes args and closes the object.
  };
  Meta("process_name", 0, false);
  W.key("args").beginObject().field("name", ProcessName).endObject();
  W.endObject();
  for (uint32_t Lane = 0; Lane != LaneNames.size(); ++Lane) {
    if (LaneNames[Lane].empty())
      continue;
    Meta("thread_name", Lane, true);
    W.key("args").beginObject().field("name", LaneNames[Lane]).endObject();
    W.endObject();
    // Keep lanes in lane order (master on top) regardless of event order.
    Meta("thread_sort_index", Lane, true);
    W.key("args").beginObject().field("sort_index", Lane).endObject();
    W.endObject();
  }

  for (const TraceEvent &E : snapshot()) {
    W.beginObject();
    W.field("name", eventName(E.Kind));
    W.field("cat", eventCategory(E.Kind));
    switch (E.Phase) {
    case EventPhase::Begin:
      W.field("ph", "B");
      break;
    case EventPhase::End:
      W.field("ph", "E");
      break;
    case EventPhase::Instant:
      W.field("ph", "i");
      W.field("s", "t"); // thread-scoped instant
      break;
    case EventPhase::Counter:
      W.field("ph", "C");
      break;
    }
    W.field("pid", 1);
    W.field("tid", E.Lane);
    W.field("ts", static_cast<double>(E.Ts) * UsPerTick);
    W.key("args").beginObject();
    if (E.Phase == EventPhase::Counter)
      W.field("value", E.Arg);
    else
      W.field("arg", E.Arg);
    W.field("ticks", E.Ts);
    if (E.WallNs)
      W.field("wall_ns", E.WallNs);
    W.endObject();
    W.endObject();
  }

  // Self-describing truncation: the ring's dropped count rides in the
  // artifact itself, so a wrapped buffer is visible without the CLI run
  // that produced it (0 = the window is complete).
  W.beginObject();
  W.field("name", "obs.trace.dropped");
  W.field("cat", "meta");
  W.field("ph", "i");
  W.field("s", "p"); // process-scoped
  W.field("pid", 1);
  W.field("tid", 0);
  W.field("ts", 0.0);
  W.key("args").beginObject().field("dropped", Dropped).endObject();
  W.endObject();

  // Second axis: host wall-clock lanes from the -spmp worker pool. These
  // live on their own pid so Perfetto shows virtual determinism (pid 1)
  // and host concurrency (pid 2) side by side. Host timestamps are
  // epoch-relative nanoseconds rendered as trace microseconds.
  if (Host) {
    auto HostMeta = [&](const char *Name, uint32_t Tid, bool HasTid) {
      W.beginObject();
      W.field("name", Name);
      W.field("ph", "M");
      W.field("pid", 2);
      if (HasTid)
        W.field("tid", Tid);
    };
    HostMeta("process_name", 0, false);
    W.key("args").beginObject().field("name", "superpin-host").endObject();
    W.endObject();
    for (uint32_t Lane = 0; Lane != Host->lanes(); ++Lane) {
      HostMeta("thread_name", Lane, true);
      W.key("args").beginObject().field("name", Host->laneName(Lane));
      W.endObject();
      W.endObject();
      HostMeta("thread_sort_index", Lane, true);
      W.key("args").beginObject().field("sort_index", Lane).endObject();
      W.endObject();
    }

    auto HostEvent = [&](const char *Name, const char *Ph, uint32_t Tid,
                         uint64_t Ns) {
      W.beginObject();
      W.field("name", Name);
      W.field("cat", "host");
      W.field("ph", Ph);
      W.field("pid", 2);
      W.field("tid", Tid);
      W.field("ts", static_cast<double>(Ns) / 1000.0);
    };
    for (uint32_t Lane = 0; Lane != Host->lanes(); ++Lane) {
      for (const HostSpan &S : Host->spanSnapshot(Lane)) {
        HostEvent(hostSpanName(S.Kind), "B", Lane, S.BeginNs);
        W.key("args").beginObject();
        W.field("slice", S.Arg);
        W.field("ns", S.BeginNs);
        W.endObject();
        W.endObject();
        HostEvent(hostSpanName(S.Kind), "E", Lane, S.EndNs);
        W.key("args").beginObject();
        W.field("slice", S.Arg);
        W.field("ns", S.EndNs);
        W.endObject();
        W.endObject();
      }
    }
    for (const HostCounterSample &S : Host->counterSnapshot()) {
      HostEvent(hostCounterName(S.Kind), "C", 0, S.Ns);
      W.key("args").beginObject();
      W.field("value", S.Value);
      W.endObject();
      W.endObject();
    }
    // Fault-containment markers render as thread-scoped instants on the
    // lane that observed them (worker kills and cancels land on the sim
    // lane — detection is sim-side).
    for (const HostInstant &I : Host->instantSnapshot()) {
      HostEvent(hostInstantName(I.Kind), "i", I.Lane, I.Ns);
      W.field("s", "t");
      W.key("args").beginObject();
      W.field("arg", I.Arg);
      W.endObject();
      W.endObject();
    }
    // The host axis carries its own truncation marker, mirroring
    // obs.trace.dropped on the virtual axis.
    HostEvent("host.trace.droppedspans", "i", 0, 0);
    W.field("s", "p");
    W.key("args").beginObject();
    W.field("dropped", Host->droppedSpans());
    W.endObject();
    W.endObject();
  }

  W.endArray();
  W.endObject();
}
