//===- obs/CriticalPath.h - Span-graph critical-path analysis ---*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Critical-path extraction over a dependency DAG of timestamped events.
/// Nodes are observed completion instants (a fork, a window close, a slice
/// body end, a merge); edges are the dependencies that had to resolve
/// before the target instant could happen, tagged with what the engine was
/// doing while the dependency ran.
///
/// The analysis walks backward from the sink, at every node following the
/// *binding* predecessor — the one that completed last and therefore
/// actually determined the node's time. The walk partitions the interval
/// [t(source), t(sink)] into contiguous labeled segments, so per-kind
/// attribution sums to the measured span exactly (no residual bucket).
/// Every non-binding edge gets a slack value: how much later its source
/// could have completed without moving the target.
///
/// Lives in obs/ below the engines (depends only on support/ and the os/
/// tick type), so the live engine, the replay engine, and tests can all
/// feed it graphs; Doctor.h turns the result into a diagnosis.
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_OBS_CRITICALPATH_H
#define SUPERPIN_OBS_CRITICALPATH_H

#include "os/CostModel.h"

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace spin::obs {

/// What the run was doing while a dependency edge elapsed. The set covers
/// both engines: a live run uses all eight; replay uses MasterRun (window
/// reconstruction), SliceBody, and Drain. Names (cpKindName) are part of
/// the spdoctor-v1 schema and append-only.
enum class CpKind : uint8_t {
  MasterRun,   ///< master executing a window (dispatch edge)
  MasterStall, ///< master blocked at the -spslices limit
  Fork,        ///< fork + COW cost at slice spawn
  WindowWait,  ///< slice asleep until its window closed
  SliceBody,   ///< instrumented body execution (charge-replay edge)
  MergeWait,   ///< retire blocked on the in-order predecessor merge
  Merge,       ///< the merge itself
  Drain,       ///< post-exit pipeline drain + fini
};

inline constexpr unsigned NumCpKinds = 8;

/// Stable dotted name of \p K ("master.run", "slice.body", ...).
const char *cpKindName(CpKind K);

/// True for kinds that stay serial no matter how many slice slots or host
/// workers the run gets (master execution, forks, merges, fini); the
/// complement is the pool-limited time an Amdahl scale-up can shrink.
bool cpKindIsSerial(CpKind K);

struct CpNode {
  std::string Label; ///< "spawn#3", "merge#7", ... (report text)
  os::Ticks Time = 0; ///< observed completion time of this instant
};

struct CpEdge {
  uint32_t From = 0;
  uint32_t To = 0;
  CpKind Kind = CpKind::MasterRun;
  uint32_t Slice = ~0u; ///< owning slice number, ~0u = master/run-level
};

/// A dependency DAG under construction. Nodes carry observed times; edges
/// say which earlier instants gated which later ones.
class CpGraph {
public:
  uint32_t addNode(std::string Label, os::Ticks Time) {
    Nodes.push_back({std::move(Label), Time});
    return static_cast<uint32_t>(Nodes.size() - 1);
  }
  void addEdge(uint32_t From, uint32_t To, CpKind Kind, uint32_t Slice = ~0u) {
    Edges.push_back({From, To, Kind, Slice});
  }

  const std::vector<CpNode> &nodes() const { return Nodes; }
  const std::vector<CpEdge> &edges() const { return Edges; }

private:
  std::vector<CpNode> Nodes;
  std::vector<CpEdge> Edges;
};

/// One segment of the critical path, in source-to-sink order. The interval
/// [Begin, End] is the part of the run this edge's dependency gated.
struct CpSegment {
  uint32_t Edge = 0; ///< index into CpGraph::edges()
  os::Ticks Begin = 0;
  os::Ticks End = 0;
  os::Ticks ticks() const { return End - Begin; }
};

struct CpResult {
  bool Valid = false;
  std::string Error; ///< why the analysis failed, when !Valid

  /// t(sink) - t(source); equals the sum of Path segment durations.
  os::Ticks TotalTicks = 0;
  /// The critical path, source to sink.
  std::vector<CpSegment> Path;
  /// Critical ticks per edge kind; sums to TotalTicks.
  std::array<os::Ticks, NumCpKinds> KindTicks{};
  /// Per-edge slack, indexed like CpGraph::edges(): how much later the
  /// edge's source could have completed without delaying its target
  /// (0 for every edge whose source was the target's binding predecessor).
  std::vector<os::Ticks> Slack;
};

/// Runs the binding-predecessor walk from \p Sink back to \p Source.
/// Fails (Valid = false) when an index is out of range, the graph has a
/// cycle, a node reached by the walk has no predecessor and is not
/// \p Source, or an edge runs backward in time by more than 0 ticks
/// (observed schedules are monotone along dependencies).
/// Deterministic: ties between equally-late predecessors break toward the
/// lowest edge index.
CpResult analyzeCriticalPath(const CpGraph &G, uint32_t Source, uint32_t Sink);

} // namespace spin::obs

#endif // SUPERPIN_OBS_CRITICALPATH_H
