//===- obs/HostTraceRecorder.h - Wall-clock worker-pool tracing -*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Host-side wall-clock observability for the -spmp worker pool: every
/// worker thread records contiguous monotonic-clock spans into its own
/// lane (a fixed-capacity single-writer ring), and the simulation thread
/// records its merge-side waits into one extra "sim" lane. Lanes are
/// merged only at report time, so the hot path is an array store plus a
/// clock read — no locks, no allocation, no cross-thread contention.
///
/// Every worker wall nanosecond is attributed to exactly one of five
/// causes — body / dispatch-wait / merge-wait / idle / retire — with the
/// exact invariant (mirroring src/prof's per-lane tick invariant) that the
/// per-kind sums add up to the lane's lifetime. The invariant survives
/// ring overflow because per-kind totals are accumulated at record time;
/// only the exported span list is windowed.
///
/// Taxonomy:
///  - body:          executing a slice body (fork + instrumented run)
///  - dispatch-wait: a job was queued but the worker had not picked it up
///  - merge-wait:    worker idle while the sim thread was blocked draining
///                   another slice's charge stream or completion record
///                   (computed at report time by intersecting worker idle
///                   spans with the sim lane's blocked spans)
///  - idle:          no work available and the sim thread was not blocked
///  - retire:        stream finish + completion publish after the body
///
/// The recorder never charges virtual time: attaching it cannot change
/// -spmp results, only describe them.
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_OBS_HOSTTRACERECORDER_H
#define SUPERPIN_OBS_HOSTTRACERECORDER_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace spin::obs {

/// What a host wall-clock span was spent on. The first five kinds are the
/// worker attribution taxonomy; the Sim* kinds live on the sim lane and
/// mark intervals where the simulation thread was blocked on worker data.
enum class HostSpanKind : uint8_t {
  Body,         ///< worker: executing a slice body
  DispatchWait, ///< worker: job queued, not yet picked up
  MergeWait,    ///< worker: idle while the sim thread was merge-blocked
  Idle,         ///< worker: no work queued
  Retire,       ///< worker: stream finish + completion publish
  SimReplay,    ///< sim lane: replaying a slice's charge stream
  SimRetire,    ///< sim lane: blocked popping a slice completion
};

/// Stable dotted name for \p K (e.g. "host.body"). Part of the trace
/// schema; tests pin the names.
const char *hostSpanName(HostSpanKind K);

/// Shared host gauges sampled into counter tracks.
enum class HostCounterKind : uint8_t {
  QueueDepth,      ///< jobs submitted but not yet picked up
  InFlight,        ///< slices dispatched but not yet retired
  ArenaBytes,      ///< a charge stream's arena after a slab growth
  CompletionDepth, ///< completions published but not yet popped
};

/// Stable dotted name for \p K (e.g. "host.queue.depth").
const char *hostCounterName(HostCounterKind K);

/// Host-side point events: fault-containment markers (src/fault host
/// kinds, the -sphostwatchdog ladder, the host circuit breaker). Instants
/// carry no duration and never participate in the lane attribution
/// invariant.
enum class HostInstantKind : uint8_t {
  WorkerException, ///< a dispatched body died to a C++ exception
  WatchdogKill,    ///< sim thread declared a body dead on the wall clock
  BodyCancel,      ///< a body exited through the cooperative cancel token
  PoolDegrade,     ///< host circuit breaker degraded the run to sim-thread
};

/// Stable dotted name for \p K (e.g. "host.fault.watchdog"). Part of the
/// trace schema; tests pin the names.
const char *hostInstantName(HostInstantKind K);

/// One recorded wall-clock span, epoch-relative nanoseconds.
struct HostSpan {
  uint64_t BeginNs = 0;
  uint64_t EndNs = 0;
  uint64_t Arg = 0; ///< kind-specific payload (slice number)
  HostSpanKind Kind = HostSpanKind::Idle;
};

/// One counter sample (value as of \p Ns).
struct HostCounterSample {
  uint64_t Ns = 0;
  uint64_t Value = 0;
  HostCounterKind Kind = HostCounterKind::QueueDepth;
};

/// One recorded point event (epoch-relative ns).
struct HostInstant {
  uint64_t Ns = 0;
  uint64_t Arg = 0; ///< kind-specific payload (slice number, failure count)
  uint32_t Lane = 0;
  HostInstantKind Kind = HostInstantKind::WatchdogKill;
};

/// Per-worker wall-time attribution. All fields in nanoseconds since the
/// recorder epoch; the invariant attributedNs() == LifetimeNs is exact.
struct HostLaneAttribution {
  unsigned Worker = 0;
  uint64_t BodyNs = 0;
  uint64_t DispatchWaitNs = 0;
  uint64_t MergeWaitNs = 0;
  uint64_t IdleNs = 0;
  uint64_t RetireNs = 0;
  uint64_t LifetimeNs = 0; ///< lane stop - lane start
  uint64_t Bodies = 0;     ///< body spans recorded (jobs run)

  uint64_t attributedNs() const {
    return BodyNs + DispatchWaitNs + MergeWaitNs + IdleNs + RetireNs;
  }
  /// Body share of the lane lifetime in percent (0 when unstarted).
  double utilizationPct() const {
    return LifetimeNs ? 100.0 * static_cast<double>(BodyNs) /
                            static_cast<double>(LifetimeNs)
                      : 0.0;
  }
};

/// The merged report-time view: one entry per worker plus pool totals.
struct HostAttribution {
  std::vector<HostLaneAttribution> Workers;
  uint64_t PoolLifetimeNs = 0; ///< latest lane stop - earliest lane start

  /// The stall cause (non-body kind) with the largest summed share across
  /// workers; HostSpanKind::Body when there are no lanes.
  HostSpanKind dominantStall() const;
  /// Summed nanoseconds for \p K across all workers.
  uint64_t totalNs(HostSpanKind K) const;
};

/// Per-thread span/counter recorder for the host worker pool. One lane
/// per worker plus a final "sim" lane for the simulation thread; each
/// lane has exactly one writer, so recording needs no synchronization
/// (the merge happens after WorkerPool join, which publishes every lane
/// via the thread::join happens-before edge). Only the shared gauges
/// (queue depth, completion depth) are atomics.
class HostTraceRecorder {
public:
  static constexpr size_t DefaultSpansPerLane = 1 << 15;
  static constexpr size_t DefaultCountersPerLane = 1 << 12;

  explicit HostTraceRecorder(size_t SpansPerLane = DefaultSpansPerLane,
                             size_t CountersPerLane = DefaultCountersPerLane);

  /// Sizes the recorder for \p Workers worker lanes plus the sim lane.
  /// Must be called (once) before the pool threads start.
  void initLanes(unsigned Workers);

  unsigned workers() const { return WorkerCount; }
  /// Lane index of the simulation thread (== workers()).
  unsigned simLane() const { return WorkerCount; }
  unsigned lanes() const { return static_cast<unsigned>(Lanes.size()); }

  /// Nanoseconds since the recorder epoch (std::chrono::steady_clock).
  uint64_t nowNs() const;

  /// Binds the calling thread to \p Lane so counterHere() lands in the
  /// right ring. Workers bind at thread start; the engine binds the sim
  /// thread before dispatching.
  void bindThread(unsigned Lane);
  /// Lane bound to the calling thread, or -1.
  int boundLane() const;

  /// Marks the start / end of \p Lane's lifetime. Spans outside
  /// [start, stop] never occur; attribution uses stop - start.
  void laneStarted(unsigned Lane, uint64_t Ns);
  void laneStopped(unsigned Lane, uint64_t Ns);

  /// Records one span into \p Lane. Single writer per lane; zero-length
  /// spans still accumulate (zero) into the attribution totals but are
  /// not pushed into the ring.
  void span(unsigned Lane, HostSpanKind K, uint64_t BeginNs, uint64_t EndNs,
            uint64_t Arg = 0);

  /// Point event into \p Lane's ring (fault containment markers). Same
  /// single-writer-per-lane discipline as span().
  void instant(unsigned Lane, HostInstantKind K, uint64_t Ns,
               uint64_t Arg = 0);

  /// Counter sample into \p Lane's ring.
  void counter(unsigned Lane, HostCounterKind K, uint64_t Ns, uint64_t Value);
  /// Counter sample into the calling thread's bound lane (no-op when the
  /// thread is unbound — e.g. a pool used without host tracing).
  void counterHere(HostCounterKind K, uint64_t Value);

  /// Shared gauges: adjusts and returns the new value (clamped at 0).
  uint64_t addQueueDepth(int64_t Delta);
  uint64_t addCompletionDepth(int64_t Delta);

  /// Spans overwritten after a lane ring wrapped (sum over lanes).
  uint64_t droppedSpans() const;

  /// Retained spans of \p Lane, oldest first.
  std::vector<HostSpan> spanSnapshot(unsigned Lane) const;
  /// Retained counter samples across all lanes, sorted by time.
  std::vector<HostCounterSample> counterSnapshot() const;
  /// Retained point events across all lanes, sorted by time.
  std::vector<HostInstant> instantSnapshot() const;

  /// Lane display name ("worker-3", "sim").
  std::string laneName(unsigned Lane) const;

  /// Computes the merged attribution. Call only after every lane writer
  /// has stopped (pool destroyed, sim lane stopped). Worker MergeWait is
  /// carved out of Idle by intersecting retained idle spans with the sim
  /// lane's blocked spans; the per-lane sum stays exactly LifetimeNs.
  HostAttribution attribution() const;

private:
  struct Lane {
    std::vector<HostSpan> Spans; ///< ring storage
    size_t Head = 0;
    uint64_t DroppedSpans = 0;
    std::vector<HostCounterSample> Counters; ///< ring storage
    size_t CounterHead = 0;
    std::vector<HostInstant> Instants; ///< ring storage (fault markers)
    size_t InstantHead = 0;
    uint64_t StartNs = 0;
    uint64_t StopNs = 0;
    // Record-time per-kind totals: exact even when the span ring wraps.
    uint64_t KindNs[5] = {0, 0, 0, 0, 0};
    uint64_t Bodies = 0;
  };

  size_t SpansPerLane;
  size_t CountersPerLane;
  unsigned WorkerCount = 0;
  std::vector<Lane> Lanes;
  std::chrono::steady_clock::time_point Epoch;
  std::atomic<int64_t> QueueDepth{0};
  std::atomic<int64_t> CompletionDepth{0};
};

} // namespace spin::obs

#endif // SUPERPIN_OBS_HOSTTRACERECORDER_H
