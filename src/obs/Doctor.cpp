//===- obs/Doctor.cpp - spin_doctor run diagnosis -------------------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "obs/Doctor.h"

#include "obs/HostTraceRecorder.h"
#include "support/Json.h"
#include "support/RawOstream.h"
#include "support/StringExtras.h"

#include <algorithm>
#include <map>

namespace spin::obs {

namespace {

double shareOf(os::Ticks Part, os::Ticks Whole) {
  return Whole ? static_cast<double>(Part) / static_cast<double>(Whole) : 0.0;
}

/// The five-way host-attribution bucket a critical CpKind maps onto: what
/// the worker pool would be doing while that dependency elapsed.
HostSpanKind hostBucketOf(CpKind K) {
  switch (K) {
  case CpKind::SliceBody:
    return HostSpanKind::Body;
  case CpKind::MasterRun:
  case CpKind::Fork:
    return HostSpanKind::DispatchWait;
  case CpKind::MergeWait:
    return HostSpanKind::MergeWait;
  case CpKind::MasterStall:
  case CpKind::WindowWait:
    return HostSpanKind::Idle;
  case CpKind::Merge:
  case CpKind::Drain:
    return HostSpanKind::Retire;
  }
  return HostSpanKind::Idle;
}

struct Hint {
  const char *Text;
  std::vector<const char *> Flags;
};

Hint hintFor(CpKind K, bool Replay) {
  if (Replay) {
    switch (K) {
    case CpKind::MasterRun:
      return {"serial master reconstruction (fast-forward) bounds the "
              "pipeline; shorter capture windows shrink it, workers do not",
              {}};
    case CpKind::SliceBody:
      return {"instrumented body re-execution dominates; host workers "
              "pipeline it",
              {"-spmp"}};
    default:
      return {"merge / fini tail of the replay pipeline", {}};
    }
  }
  switch (K) {
  case CpKind::MasterRun:
    return {"the uninstrumented master is the floor; the run is "
            "application-limited (SuperPin's good case)",
            {}};
  case CpKind::MasterStall:
    return {"master stalled at the -spslices limit; raise -spslices or "
            "spill windows with -spdefer",
            {"-spslices", "-spdefer"}};
  case CpKind::Fork:
    return {"fork/COW overhead on the dispatch path; lengthen timeslices "
            "with -spmsec",
            {"-spmsec"}};
  case CpKind::WindowWait:
    return {"slices idle waiting for their window to close; shorten "
            "timeslices with -spmsec",
            {"-spmsec"}};
  case CpKind::SliceBody:
    return {"instrumented slice bodies gate retire; add parallelism "
            "(-spslices, -spmp) or cut instrumentation cost (-spredux)",
            {"-spslices", "-spmp", "-spredux"}};
  case CpKind::MergeWait:
    return {"in-order retire convoy: slices finish out of order and wait "
            "on predecessors; more slots smooth the pipeline",
            {"-spslices"}};
  case CpKind::Merge:
    return {"merge cost on the retire path; fewer, longer slices "
            "(-spmsec) amortize it",
            {"-spmsec"}};
  case CpKind::Drain:
    return {"post-exit drain tail (fini + remaining windows); more "
            "workers shorten it",
            {"-spmp"}};
  }
  return {"", {}};
}

/// Fills everything derivable from KindTicks: host view, Amdahl fit,
/// bottlenecks, and flag recommendations.
void finishReport(DoctorReport &R, bool Replay) {
  R.CriticalTicks = 0;
  for (os::Ticks T : R.KindTicks)
    R.CriticalTicks += T;

  // Five-way host-attribution view, in taxonomy order.
  static constexpr HostSpanKind HostOrder[] = {
      HostSpanKind::Body, HostSpanKind::DispatchWait, HostSpanKind::MergeWait,
      HostSpanKind::Idle, HostSpanKind::Retire};
  std::array<os::Ticks, 5> HostTicks{};
  for (unsigned I = 0; I < NumCpKinds; ++I)
    HostTicks[static_cast<unsigned>(
        hostBucketOf(static_cast<CpKind>(I)))] += R.KindTicks[I];
  for (HostSpanKind K : HostOrder)
    R.HostBuckets.push_back({hostSpanName(K),
                             HostTicks[static_cast<unsigned>(K)],
                             shareOf(HostTicks[static_cast<unsigned>(K)],
                                     R.CriticalTicks)});

  // Amdahl fit from the measured serial fraction.
  for (unsigned I = 0; I < NumCpKinds; ++I)
    (cpKindIsSerial(static_cast<CpKind>(I)) ? R.SerialTicks
                                            : R.ParallelTicks) +=
        R.KindTicks[I];
  R.SerialFraction = shareOf(R.SerialTicks, R.CriticalTicks);
  R.PredictedWall2x = R.SerialTicks + R.ParallelTicks / 2;
  R.PredictedWall4x = R.SerialTicks + R.ParallelTicks / 4;
  if (R.PredictedWall2x)
    R.PredictedSpeedup2x =
        static_cast<double>(R.WallTicks) /
        static_cast<double>(R.PredictedWall2x);
  if (R.PredictedWall4x)
    R.PredictedSpeedup4x =
        static_cast<double>(R.WallTicks) /
        static_cast<double>(R.PredictedWall4x);

  // Top 3 bottlenecks by critical share; ties keep taxonomy order.
  std::vector<unsigned> Kinds;
  for (unsigned I = 0; I < NumCpKinds; ++I)
    if (R.KindTicks[I])
      Kinds.push_back(I);
  std::stable_sort(Kinds.begin(), Kinds.end(), [&](unsigned A, unsigned B) {
    return R.KindTicks[A] > R.KindTicks[B];
  });
  if (Kinds.size() > 3)
    Kinds.resize(3);
  for (unsigned I : Kinds) {
    Hint H = hintFor(static_cast<CpKind>(I), Replay);
    R.Bottlenecks.push_back({cpKindName(static_cast<CpKind>(I)),
                             R.KindTicks[I],
                             shareOf(R.KindTicks[I], R.CriticalTicks),
                             H.Text});
    for (const char *F : H.Flags)
      if (std::find(R.RecommendedFlags.begin(), R.RecommendedFlags.end(),
                    F) == R.RecommendedFlags.end())
        R.RecommendedFlags.push_back(F);
  }
}

} // namespace

DoctorReport diagnose(const DoctorInput &In) {
  DoctorReport R;
  R.Engine = "live";
  R.WallTicks = In.WallTicks;
  R.Slices = static_cast<unsigned>(In.Slices.size());
  R.MaxSlices = In.MaxSlices;
  R.HostWorkers = In.HostWorkers;

  // Build the dependency DAG over the observed schedule. Every edge is a
  // real dependency: the master chain gates spawns, the successor's spawn
  // closes a window, the body gates its merge, and retire is in-order.
  // maybeEdge drops an edge whose observed times run backward (e.g. a
  // signature recorded a tick before the fork charge) — the remaining
  // parallel edge keeps the node reachable.
  CpGraph G;
  auto MaybeEdge = [&](uint32_t From, uint32_t To, CpKind K,
                       uint32_t Slice = ~0u) {
    if (G.nodes()[From].Time <= G.nodes()[To].Time)
      G.addEdge(From, To, K, Slice);
  };

  uint32_t Start = G.addNode("start", 0);
  size_t N = In.Slices.size();
  std::vector<uint32_t> Spawn(N), Ready(N), End(N), Merge(N);
  for (size_t I = 0; I < N; ++I) {
    const DoctorSliceInput &S = In.Slices[I];
    std::string Tag = std::to_string(S.Num);
    Spawn[I] = G.addNode("spawn#" + Tag, S.SpawnTime);
    Ready[I] = G.addNode("ready#" + Tag, S.ReadyTime);
    End[I] = G.addNode("end#" + Tag, S.EndTime);
    Merge[I] = G.addNode("merge#" + Tag, S.MergeTime);
  }
  uint32_t MasterExit = G.addNode("master-exit", In.MasterExitTicks);
  uint32_t RunEnd = G.addNode("run-end", In.WallTicks);

  if (N == 0) {
    MaybeEdge(Start, MasterExit, CpKind::MasterRun);
  } else {
    // Master dispatch chain: start -> spawn#0 -> ... -> master exit. The
    // per-gap kind is MasterRun; the run/fork/stall split happens on the
    // aggregate below (the schedule records when the master forked, not
    // why a gap was long).
    MaybeEdge(Start, Spawn[0], CpKind::MasterRun);
    for (size_t I = 0; I + 1 < N; ++I)
      MaybeEdge(Spawn[I], Spawn[I + 1], CpKind::MasterRun,
                In.Slices[I].Num);
    MaybeEdge(Spawn[N - 1], MasterExit, CpKind::MasterRun,
              In.Slices[N - 1].Num);

    for (size_t I = 0; I < N; ++I) {
      uint32_t Num = In.Slices[I].Num;
      // A window closes when its successor spawns (or the master exits);
      // the slice also has to exist. Whichever resolved later binds.
      MaybeEdge(Spawn[I], Ready[I], CpKind::WindowWait, Num);
      MaybeEdge(I + 1 < N ? Spawn[I + 1] : MasterExit, Ready[I],
                CpKind::WindowWait, Num);
      MaybeEdge(Ready[I], End[I], CpKind::SliceBody, Num);
      MaybeEdge(End[I], Merge[I], CpKind::Merge, Num);
      if (I > 0)
        MaybeEdge(Merge[I - 1], Merge[I], CpKind::MergeWait, Num);
    }
    MaybeEdge(Merge[N - 1], RunEnd, CpKind::Drain);
  }
  MaybeEdge(MasterExit, RunEnd, CpKind::Drain);

  CpResult Cp = analyzeCriticalPath(G, Start, RunEnd);
  if (!Cp.Valid) {
    R.Error = Cp.Error;
    return R;
  }
  R.KindTicks = Cp.KindTicks;

  // Split the critical master-dispatch time into run / fork / stall by
  // the run's reported phase ratios (Figure 6: the pre-exit master time
  // is exactly Native + ForkOthers + Sleep).
  os::Ticks MasterPhases =
      In.NativeTicks + In.ForkOthersTicks + In.SleepTicks;
  os::Ticks M = R.KindTicks[static_cast<unsigned>(CpKind::MasterRun)];
  if (M && MasterPhases) {
    os::Ticks ForkPart = static_cast<os::Ticks>(
        static_cast<double>(M) * shareOf(In.ForkOthersTicks, MasterPhases));
    os::Ticks StallPart = static_cast<os::Ticks>(
        static_cast<double>(M) * shareOf(In.SleepTicks, MasterPhases));
    R.KindTicks[static_cast<unsigned>(CpKind::MasterRun)] =
        M - ForkPart - StallPart;
    R.KindTicks[static_cast<unsigned>(CpKind::Fork)] += ForkPart;
    R.KindTicks[static_cast<unsigned>(CpKind::MasterStall)] += StallPart;
  }

  // spprof cause view: distribute each critical segment over the owning
  // lane's cause profile. Slice-body segments use the slice lane (fully
  // attributed by construction); master-chain segments use the master
  // lane's native + causes; waiting segments land in "wait".
  if (!In.CauseNames.empty()) {
    size_t C = In.CauseNames.size();
    std::vector<double> CauseAcc(C, 0.0);
    double NativeAcc = 0, WaitAcc = 0, UnattrAcc = 0;
    std::map<uint32_t, size_t> SliceIndex;
    for (size_t I = 0; I < N; ++I)
      SliceIndex[In.Slices[I].Num] = I;
    uint64_t MasterTotal = In.MasterNativeCauseTicks;
    for (uint64_t T : In.MasterCauseTicks)
      MasterTotal += T;
    for (const CpSegment &S : Cp.Path) {
      const CpEdge &E = G.edges()[S.Edge];
      double T = static_cast<double>(S.ticks());
      if (E.Kind == CpKind::SliceBody) {
        auto It = SliceIndex.find(E.Slice);
        uint64_t Total = 0;
        if (It != SliceIndex.end())
          for (uint64_t V : In.Slices[It->second].CauseTicks)
            Total += V;
        if (Total) {
          const std::vector<uint64_t> &CT = In.Slices[It->second].CauseTicks;
          for (size_t I = 0; I < C && I < CT.size(); ++I)
            CauseAcc[I] += T * shareOf(CT[I], Total);
        } else {
          UnattrAcc += T;
        }
      } else if (E.Kind == CpKind::MasterRun && MasterTotal) {
        NativeAcc += T * shareOf(In.MasterNativeCauseTicks, MasterTotal);
        for (size_t I = 0; I < C && I < In.MasterCauseTicks.size(); ++I)
          CauseAcc[I] += T * shareOf(In.MasterCauseTicks[I], MasterTotal);
      } else {
        WaitAcc += T;
      }
    }
    auto AddBucket = [&](const std::string &Name, double Ticks) {
      os::Ticks T = static_cast<os::Ticks>(Ticks + 0.5);
      if (T)
        R.CauseBuckets.push_back(
            {Name, T, shareOf(T, In.WallTicks ? In.WallTicks : 1)});
    };
    AddBucket("native", NativeAcc);
    for (size_t I = 0; I < C; ++I)
      AddBucket(In.CauseNames[I], CauseAcc[I]);
    AddBucket("wait", WaitAcc);
    AddBucket("unattributed", UnattrAcc);
  }

  finishReport(R, /*Replay=*/false);
  R.Valid = true;
  return R;
}

DoctorReport diagnoseReplay(const ReplayDoctorInput &In) {
  DoctorReport R;
  R.Engine = "replay";
  R.WallTicks = In.WallTicks;
  R.Slices = static_cast<unsigned>(In.Slices.size());
  R.HostWorkers = In.HostWorkers;

  // Replay's virtual clock is serial: prepare and body tiles alternate.
  // Rebuild that timeline as a chain; the diagnosis then says how much of
  // it a worker pool can pipeline (bodies) vs not (reconstruction).
  CpGraph G;
  uint32_t Start = G.addNode("start", 0);
  uint32_t Prev = Start;
  os::Ticks T = 0;
  for (const ReplayDoctorInput::Slice &S : In.Slices) {
    std::string Tag = std::to_string(S.Num);
    T += S.PrepTicks;
    uint32_t Prep = G.addNode("prep#" + Tag, T);
    G.addEdge(Prev, Prep, CpKind::MasterRun, S.Num);
    T += S.BodyTicks;
    uint32_t Body = G.addNode("body#" + Tag, T);
    G.addEdge(Prep, Body, CpKind::SliceBody, S.Num);
    Prev = Body;
  }
  os::Ticks Wall = In.WallTicks >= T ? In.WallTicks : T;
  R.WallTicks = Wall;
  uint32_t RunEnd = G.addNode("run-end", Wall);
  G.addEdge(Prev, RunEnd, CpKind::Drain);

  CpResult Cp = analyzeCriticalPath(G, Start, RunEnd);
  if (!Cp.Valid) {
    R.Error = Cp.Error;
    return R;
  }
  R.KindTicks = Cp.KindTicks;
  finishReport(R, /*Replay=*/true);
  R.Valid = true;
  return R;
}

static void writeBuckets(JsonWriter &W, std::string_view Key,
                         const std::vector<DoctorBucket> &Buckets) {
  W.key(Key).beginObject();
  for (const DoctorBucket &B : Buckets) {
    W.key(B.Name).beginObject();
    W.field("ticks", static_cast<uint64_t>(B.Ticks));
    W.field("share", B.Share);
    W.endObject();
  }
  W.endObject();
}

void writeDoctorJson(const DoctorReport &R, os::Ticks TicksPerMs,
                     RawOstream &OS) {
  JsonWriter W(OS);
  W.beginObject();
  W.field("schema", DoctorSchema);
  W.field("engine", R.Engine);
  W.field("valid", R.Valid);
  if (!R.Valid) {
    W.field("error", R.Error);
    W.endObject();
    OS << '\n';
    return;
  }
  double PerMs = TicksPerMs ? static_cast<double>(TicksPerMs) : 1.0;
  W.field("wall_ticks", static_cast<uint64_t>(R.WallTicks));
  W.field("wall_ms", static_cast<double>(R.WallTicks) / PerMs);
  W.field("critical_ticks", static_cast<uint64_t>(R.CriticalTicks));
  W.field("critical_coverage", shareOf(R.CriticalTicks, R.WallTicks));
  W.field("slices", static_cast<uint64_t>(R.Slices));
  W.field("max_slices", static_cast<uint64_t>(R.MaxSlices));
  W.field("host_workers", static_cast<uint64_t>(R.HostWorkers));
  W.key("critical").beginObject();
  for (unsigned I = 0; I < NumCpKinds; ++I) {
    W.key(cpKindName(static_cast<CpKind>(I))).beginObject();
    W.field("ticks", static_cast<uint64_t>(R.KindTicks[I]));
    W.field("share", shareOf(R.KindTicks[I], R.CriticalTicks));
    W.endObject();
  }
  W.endObject();
  writeBuckets(W, "host_attribution", R.HostBuckets);
  if (!R.CauseBuckets.empty())
    writeBuckets(W, "causes", R.CauseBuckets);
  W.key("amdahl").beginObject();
  W.field("serial_ticks", static_cast<uint64_t>(R.SerialTicks));
  W.field("parallel_ticks", static_cast<uint64_t>(R.ParallelTicks));
  W.field("serial_fraction", R.SerialFraction);
  W.field("predicted_wall_2x_ticks", static_cast<uint64_t>(R.PredictedWall2x));
  W.field("predicted_speedup_2x", R.PredictedSpeedup2x);
  W.field("predicted_wall_4x_ticks", static_cast<uint64_t>(R.PredictedWall4x));
  W.field("predicted_speedup_4x", R.PredictedSpeedup4x);
  W.endObject();
  W.key("bottlenecks").beginArray();
  for (const DoctorBottleneck &B : R.Bottlenecks) {
    W.beginObject();
    W.field("kind", B.Kind);
    W.field("ticks", static_cast<uint64_t>(B.Ticks));
    W.field("share", B.Share);
    W.field("hint", B.Hint);
    W.endObject();
  }
  W.endArray();
  W.key("recommended_flags").beginArray();
  for (const std::string &F : R.RecommendedFlags)
    W.value(F);
  W.endArray();
  W.endObject();
  OS << '\n';
}

void printDoctorReport(const DoctorReport &R, os::Ticks TicksPerMs,
                       RawOstream &OS) {
  OS << "spin_doctor (" << DoctorSchema << ", " << R.Engine << " engine)\n";
  if (!R.Valid) {
    OS << "  diagnosis unavailable: " << R.Error << "\n";
    return;
  }
  double PerMs = TicksPerMs ? static_cast<double>(TicksPerMs) : 1.0;
  OS << "  wall " << formatFixed(static_cast<double>(R.WallTicks) / PerMs, 2)
     << " ms (" << uint64_t(R.WallTicks) << " ticks), " << R.Slices
     << " slices, critical path covers "
     << formatFixed(100.0 * shareOf(R.CriticalTicks, R.WallTicks), 1)
     << "% of wall\n";
  OS << "  critical time:";
  bool First = true;
  for (unsigned I = 0; I < NumCpKinds; ++I) {
    if (!R.KindTicks[I])
      continue;
    OS << (First ? " " : " | ") << cpKindName(static_cast<CpKind>(I)) << " "
       << formatFixed(100.0 * shareOf(R.KindTicks[I], R.CriticalTicks), 1)
       << "%";
    First = false;
  }
  OS << "\n";
  if (!R.CauseBuckets.empty()) {
    OS << "  cause view (spprof):";
    First = true;
    for (const DoctorBucket &B : R.CauseBuckets) {
      OS << (First ? " " : " | ") << B.Name << " "
         << formatFixed(100.0 * B.Share, 1) << "%";
      First = false;
    }
    OS << "\n";
  }
  OS << "  top bottlenecks:\n";
  unsigned Rank = 1;
  for (const DoctorBottleneck &B : R.Bottlenecks)
    OS << "    " << Rank++ << ". " << B.Kind << " "
       << formatFixed(100.0 * B.Share, 1) << "% - " << B.Hint << "\n";
  OS << "  scaling (Amdahl, measured serial fraction "
     << formatFixed(R.SerialFraction, 2) << "): predicted wall at 2x "
     << formatFixed(static_cast<double>(R.PredictedWall2x) / PerMs, 2)
     << " ms (speedup " << formatFixed(R.PredictedSpeedup2x, 2)
     << "x), at 4x "
     << formatFixed(static_cast<double>(R.PredictedWall4x) / PerMs, 2)
     << " ms (speedup " << formatFixed(R.PredictedSpeedup4x, 2) << "x)\n";
  OS << "  recommended flags:";
  if (R.RecommendedFlags.empty()) {
    OS << " none (application-limited)";
  } else {
    for (const std::string &F : R.RecommendedFlags)
      OS << " " << F;
  }
  OS << "\n";
}

} // namespace spin::obs
