//===- obs/FlightRecorder.h - Postmortem flight recorder --------*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The postmortem flight recorder behind -spflightrec: when a run hits a
/// containment event — a worker exception, a watchdog kill, a circuit-
/// breaker trip, a host degradation — the engine records the event here,
/// and at teardown the recorder dumps a self-contained evidence bundle to
/// its directory:
///
///   MANIFEST.json  - "spflight-v1": trigger events + file inventory
///   trace.json     - the retained trace-ring window (Chrome trace JSON)
///   counters.json  - spmetrics-v1 counter/histogram snapshot
///   doctor.json    - the spdoctor-v1 diagnosis of the wounded run
///
/// A run with no triggering event writes nothing (the directory is only
/// created on the first event), so arming the recorder on every run is
/// free. All writes are best-effort: a filesystem error is remembered in
/// error() and reported once, never thrown — the recorder must not turn a
/// contained fault into a crash.
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_OBS_FLIGHTRECORDER_H
#define SUPERPIN_OBS_FLIGHTRECORDER_H

#include "obs/Doctor.h"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace spin {
class StatisticRegistry;
}

namespace spin::obs {

class HostTraceRecorder;
class TraceRecorder;

class FlightRecorder {
public:
  /// \p Dir is the bundle directory (created on the first event);
  /// \p TicksPerMs converts tick stamps in the dumped artifacts.
  FlightRecorder(std::string Dir, os::Ticks TicksPerMs);

  /// Records one triggering event: \p Kind is a stable identifier
  /// ("host.exception", "host.contained", "host.watchdog", "watchdog.kill",
  /// "breaker.trip", "host.degraded", ...), \p Slice the failing slice
  /// number (~0u =
  /// run-level), \p Attempt its attempt count at the time, \p Now the
  /// virtual clock, and \p Detail free-form context. The first event
  /// creates the bundle directory and arms the teardown dump. Thread-safe:
  /// containment events fire from worker threads as well as the sim
  /// thread (cold path — a mutex is fine).
  void recordEvent(std::string Kind, uint32_t Slice, uint32_t Attempt,
                   os::Ticks Now, std::string Detail);

  /// True once any event was recorded (the bundle will be written).
  bool triggered() const { return Armed.load(std::memory_order_acquire); }

  // Teardown dumps, called by the engine/CLI once the run has wound down.
  // Each is a no-op unless triggered().
  void writeTrace(const TraceRecorder &Trace,
                  const HostTraceRecorder *Host = nullptr);
  void writeCounters(const StatisticRegistry &Stats);
  void writeDoctor(const DoctorReport &R);
  /// Writes MANIFEST.json last: the trigger events, the failing-slice
  /// identity/attempt history, and the inventory of files actually
  /// written.
  void writeManifest();

  const std::string &dir() const { return Dir; }
  uint64_t eventCount() const { return Events.size(); }
  /// First filesystem error, empty when every write landed.
  const std::string &error() const { return Err; }

private:
  struct Event {
    std::string Kind;
    uint32_t Slice = ~0u;
    uint32_t Attempt = 0;
    os::Ticks Now = 0;
    std::string Detail;
  };

  void ensureDir();
  void writeFile(const std::string &Name, const std::string &Text);

  std::string Dir;
  os::Ticks TicksPerMs;
  std::mutex EventsLock; ///< guards Events + ensureDir during the run
  std::atomic<bool> Armed{false};
  std::vector<Event> Events;
  std::vector<std::string> Files; ///< bundle files written so far
  bool DirReady = false;
  std::string Err;
};

} // namespace spin::obs

#endif // SUPERPIN_OBS_FLIGHTRECORDER_H
