//===- obs/CriticalPath.cpp - Span-graph critical-path analysis -----------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "obs/CriticalPath.h"

#include <algorithm>

namespace spin::obs {

const char *cpKindName(CpKind K) {
  switch (K) {
  case CpKind::MasterRun:
    return "master.run";
  case CpKind::MasterStall:
    return "master.stall";
  case CpKind::Fork:
    return "fork";
  case CpKind::WindowWait:
    return "window.wait";
  case CpKind::SliceBody:
    return "slice.body";
  case CpKind::MergeWait:
    return "merge.wait";
  case CpKind::Merge:
    return "merge";
  case CpKind::Drain:
    return "drain";
  }
  return "unknown";
}

bool cpKindIsSerial(CpKind K) {
  switch (K) {
  case CpKind::MasterRun:
  case CpKind::Fork:
  case CpKind::Merge:
  case CpKind::Drain:
    return true;
  case CpKind::MasterStall:
  case CpKind::WindowWait:
  case CpKind::SliceBody:
  case CpKind::MergeWait:
    return false;
  }
  return true;
}

CpResult analyzeCriticalPath(const CpGraph &G, uint32_t Source,
                             uint32_t Sink) {
  CpResult R;
  const std::vector<CpNode> &Nodes = G.nodes();
  const std::vector<CpEdge> &Edges = G.edges();
  uint32_t N = static_cast<uint32_t>(Nodes.size());
  if (Source >= N || Sink >= N) {
    R.Error = "source or sink node index out of range";
    return R;
  }
  for (const CpEdge &E : Edges)
    if (E.From >= N || E.To >= N) {
      R.Error = "edge references a node index out of range";
      return R;
    }

  // Kahn toposort purely as a cycle check: the walk itself only needs
  // predecessor lists, but a cyclic "DAG" would loop it forever.
  {
    std::vector<uint32_t> InDeg(N, 0);
    for (const CpEdge &E : Edges)
      ++InDeg[E.To];
    std::vector<std::vector<uint32_t>> Succ(N);
    for (uint32_t I = 0; I < Edges.size(); ++I)
      Succ[Edges[I].From].push_back(Edges[I].To);
    std::vector<uint32_t> Ready;
    for (uint32_t I = 0; I < N; ++I)
      if (InDeg[I] == 0)
        Ready.push_back(I);
    uint32_t Seen = 0;
    while (!Ready.empty()) {
      uint32_t V = Ready.back();
      Ready.pop_back();
      ++Seen;
      for (uint32_t S : Succ[V])
        if (--InDeg[S] == 0)
          Ready.push_back(S);
    }
    if (Seen != N) {
      R.Error = "graph has a cycle";
      return R;
    }
  }

  // Per-node incoming edge lists, and each node's binding (latest-source)
  // predecessor. Ties break toward the lowest edge index so the result is
  // a pure function of the graph.
  std::vector<std::vector<uint32_t>> In(N);
  for (uint32_t I = 0; I < Edges.size(); ++I)
    In[Edges[I].To].push_back(I);
  std::vector<int64_t> Binding(N, -1);
  for (uint32_t V = 0; V < N; ++V)
    for (uint32_t EI : In[V]) {
      if (Nodes[Edges[EI].From].Time > Nodes[Edges[EI].To].Time) {
        R.Error = "edge '" + Nodes[Edges[EI].From].Label + "' -> '" +
                  Nodes[Edges[EI].To].Label + "' runs backward in time";
        return R;
      }
      if (Binding[V] < 0 ||
          Nodes[Edges[EI].From].Time > Nodes[Edges[Binding[V]].From].Time)
        Binding[V] = EI;
    }

  // Slack for every edge: distance from its source's completion to the
  // target's binding time (how much later the source could have been).
  R.Slack.resize(Edges.size(), 0);
  for (uint32_t V = 0; V < N; ++V) {
    if (Binding[V] < 0)
      continue;
    os::Ticks BindTime = Nodes[Edges[Binding[V]].From].Time;
    for (uint32_t EI : In[V])
      R.Slack[EI] = BindTime - Nodes[Edges[EI].From].Time;
  }

  // Binding-predecessor walk, sink back to source.
  std::vector<CpSegment> Rev;
  uint32_t V = Sink;
  while (V != Source) {
    if (Binding[V] < 0) {
      R.Error = "node '" + Nodes[V].Label +
                "' reached by the critical walk has no predecessor";
      return R;
    }
    uint32_t EI = static_cast<uint32_t>(Binding[V]);
    const CpEdge &E = Edges[EI];
    Rev.push_back({EI, Nodes[E.From].Time, Nodes[V].Time});
    V = E.From;
  }
  std::reverse(Rev.begin(), Rev.end());
  R.Path = std::move(Rev);

  for (const CpSegment &S : R.Path)
    R.KindTicks[static_cast<unsigned>(Edges[S.Edge].Kind)] += S.ticks();
  R.TotalTicks = Nodes[Sink].Time - Nodes[Source].Time;
  R.Valid = true;
  return R;
}

} // namespace spin::obs
