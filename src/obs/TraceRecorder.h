//===- obs/TraceRecorder.h - Span-event trace recorder ----------*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A structured trace of the run's timeline: begin/end spans, instants, and
/// counter samples, each stamped with deterministic cost-model ticks (plus
/// optional host wall time) and assigned to a lane — the master on lane 0,
/// each slice on its own lane — so the paper's Figure 1 story (master runs
/// native while slices sleep, execute, search for their signature, and
/// merge in order) becomes a loadable artifact instead of ASCII art.
///
/// Events land in a pre-sized ring buffer: recording is an array store
/// (no allocation, no locking — the engine is single-threaded discrete
/// time), and once the buffer wraps the oldest events are overwritten and
/// counted as dropped. writeChromeTrace() serializes the retained window
/// as Chrome trace-event JSON, loadable in Perfetto or chrome://tracing.
///
/// The recorder lives below every engine layer (it depends only on
/// support/), so os/, pin/, superpin/, and replay/ can all emit into one
/// timeline.
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_OBS_TRACERECORDER_H
#define SUPERPIN_OBS_TRACERECORDER_H

#include "os/CostModel.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace spin {
class RawOstream;
}

namespace spin::obs {

class HostTraceRecorder;

/// What happened. Kinds are stable identifiers: their names are part of
/// the trace schema (tests pin them).
enum class EventKind : uint8_t {
  MasterRun,     ///< span: the master application executing natively
  MasterStall,   ///< span: master sleeping at the -spslices limit
  SliceFork,     ///< instant (master lane): COW fork of a new slice
  SliceSleep,    ///< span (slice lane): waiting for the window to close
  SliceRun,      ///< span (slice lane): executing instrumented code
  SigSearch,     ///< span (slice lane): probing for the end signature
  SliceMerge,    ///< instant (slice lane): in-order result merge
  DeferSpill,    ///< instant (master lane): window spilled (-spdefer)
  DeferDrain,    ///< instant (slice lane): spilled slice resumed post-exit
  SysService,    ///< instant: kernel serviced a syscall
  SysRecord,     ///< instant (master lane): syscall effects recorded (§4.2)
  SysPlayback,   ///< instant (slice lane): recorded effects played back
  JitCompile,    ///< instant: one trace compiled on demand
  JitSeed,       ///< instant: static-CFG batch seed completed
  ReplayForward, ///< span (replay): master fast-forward through one window
  ReplaySlice,   ///< span (replay): one captured slice re-executed
  ReplayParity,  ///< instant (replay): parity verdict (arg: 1 = ok)
  Parallelism,   ///< counter: tasks running this scheduler quantum
  WatchdogKill,  ///< instant (slice lane): runaway/stalled attempt killed
  SliceRetry,    ///< instant (slice lane): window re-forked (arg: attempt)
  SliceQuarantine, ///< instant (slice lane): window parked for post-exit rerun
  PlaybackDivergence, ///< instant (slice lane): playback verification failed
  BreakerTrip,   ///< instant (master lane): circuit breaker engaged
  SlicesRetired, ///< counter: slices merged so far
  LiveForks,     ///< counter: slices concurrently alive (forked, unmerged)
  DeferBacklog,  ///< counter: spilled windows awaiting the post-exit drain
};

/// Stable dotted name for \p K (e.g. "slice.run").
const char *eventName(EventKind K);

/// Chrome trace category for \p K ("master", "slice", "os", "jit",
/// "replay", "sched").
const char *eventCategory(EventKind K);

enum class EventPhase : uint8_t { Begin, End, Instant, Counter };

struct TraceEvent {
  os::Ticks Ts = 0;     ///< deterministic virtual time
  uint64_t WallNs = 0;  ///< host wall time, 0 unless wall clock enabled
  uint64_t Arg = 0;     ///< kind-specific payload (count, number, flag)
  uint32_t Lane = 0;    ///< timeline lane (Chrome tid)
  EventKind Kind = EventKind::MasterRun;
  EventPhase Phase = EventPhase::Instant;
};

/// Where trace events go. The engine layers emit through this interface so
/// a dispatched slice body (-spmp) can be pointed at a per-slice staging
/// sink — its events are interleaved into the body's charge stream and
/// stitched into the master recorder by the sim thread at replay position,
/// keeping the exported trace byte-identical for every worker count.
class TraceSink {
public:
  virtual ~TraceSink() = default;

  /// Records one event. \p Ts is the emitter's virtual clock; staging
  /// sinks may ignore it (the replaying sim thread restamps).
  virtual void push(uint32_t Lane, EventKind K, EventPhase Ph, os::Ticks Ts,
                    uint64_t Arg) = 0;

  void begin(uint32_t Lane, EventKind K, os::Ticks Ts, uint64_t Arg = 0) {
    push(Lane, K, EventPhase::Begin, Ts, Arg);
  }
  void end(uint32_t Lane, EventKind K, os::Ticks Ts, uint64_t Arg = 0) {
    push(Lane, K, EventPhase::End, Ts, Arg);
  }
  void instant(uint32_t Lane, EventKind K, os::Ticks Ts, uint64_t Arg = 0) {
    push(Lane, K, EventPhase::Instant, Ts, Arg);
  }
  /// Counter sample (rendered as its own Chrome counter track).
  void counter(EventKind K, os::Ticks Ts, uint64_t Value) {
    push(0, K, EventPhase::Counter, Ts, Value);
  }
};

class TraceRecorder : public TraceSink {
public:
  static constexpr size_t DefaultCapacity = 1 << 16;
  static constexpr uint32_t MasterLane = 0;

  /// Lane of slice \p Num (lane 0 is the master).
  static uint32_t sliceLane(uint32_t Num) { return Num + 1; }

  explicit TraceRecorder(size_t Capacity = DefaultCapacity);

  /// Also stamp events with host wall time (std::chrono::steady_clock).
  /// Off by default: tick-only traces are bit-reproducible.
  void enableWallClock() { WallClock = true; }

  /// Appends to the ring (the TraceSink emission entry point).
  void push(uint32_t Lane, EventKind K, EventPhase Ph, os::Ticks Ts,
            uint64_t Arg) override;

  /// Names lane \p Lane in the exported trace ("master", "slice-3", ...).
  void setLaneName(uint32_t Lane, std::string Name);

  /// Process name in the exported trace (default "superpin").
  void setProcessName(std::string Name) { ProcessName = std::move(Name); }

  size_t size() const { return Buf.size(); }
  size_t capacity() const { return Capacity; }
  /// Events overwritten after the ring wrapped.
  uint64_t dropped() const { return Dropped; }

  /// Retained events, oldest first.
  std::vector<TraceEvent> snapshot() const;

  /// Forgets all events (lane names and capacity survive).
  void clear();

  /// Writes the retained events as a Chrome trace-event JSON document.
  /// \p TicksPerMs converts tick stamps to trace microseconds
  /// (os::CostModel::TicksPerMs). When \p Host is non-null the document
  /// is dual-axis: the virtual-time tracks stay on pid 1 and the host
  /// recorder's wall-clock worker lanes (tid = worker id) plus its
  /// counter tracks are emitted as a second process (pid 2). With a null
  /// \p Host the output is byte-identical to the single-axis export.
  void writeChromeTrace(RawOstream &OS, os::Ticks TicksPerMs,
                        const HostTraceRecorder *Host = nullptr) const;

private:
  size_t Capacity;
  std::vector<TraceEvent> Buf; ///< ring storage, wraps at Capacity
  size_t Head = 0;             ///< next write position once wrapped
  uint64_t Dropped = 0;
  bool WallClock = false;
  std::string ProcessName = "superpin";
  std::vector<std::string> LaneNames; ///< indexed by lane, "" = unnamed
};

} // namespace spin::obs

#endif // SUPERPIN_OBS_TRACERECORDER_H
