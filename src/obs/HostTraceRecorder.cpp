//===- obs/HostTraceRecorder.cpp - Wall-clock worker-pool tracing ---------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "obs/HostTraceRecorder.h"

#include <algorithm>
#include <cassert>

using namespace spin;
using namespace spin::obs;

const char *spin::obs::hostSpanName(HostSpanKind K) {
  switch (K) {
  case HostSpanKind::Body:
    return "host.body";
  case HostSpanKind::DispatchWait:
    return "host.dispatchwait";
  case HostSpanKind::MergeWait:
    return "host.mergewait";
  case HostSpanKind::Idle:
    return "host.idle";
  case HostSpanKind::Retire:
    return "host.retire";
  case HostSpanKind::SimReplay:
    return "host.sim.replay";
  case HostSpanKind::SimRetire:
    return "host.sim.retire";
  }
  return "unknown";
}

const char *spin::obs::hostInstantName(HostInstantKind K) {
  switch (K) {
  case HostInstantKind::WorkerException:
    return "host.fault.exception";
  case HostInstantKind::WatchdogKill:
    return "host.fault.watchdog";
  case HostInstantKind::BodyCancel:
    return "host.fault.cancel";
  case HostInstantKind::PoolDegrade:
    return "host.pool.degrade";
  }
  return "unknown";
}

const char *spin::obs::hostCounterName(HostCounterKind K) {
  switch (K) {
  case HostCounterKind::QueueDepth:
    return "host.queue.depth";
  case HostCounterKind::InFlight:
    return "host.inflight";
  case HostCounterKind::ArenaBytes:
    return "host.arena.bytes";
  case HostCounterKind::CompletionDepth:
    return "host.completion.depth";
  }
  return "unknown";
}

namespace {
// Which recorder (if any) the current thread is bound to, and its lane.
// Per-thread, not per-recorder: a thread serves one pool at a time.
thread_local const HostTraceRecorder *BoundRecorder = nullptr;
thread_local unsigned BoundLaneIdx = 0;
} // namespace

HostTraceRecorder::HostTraceRecorder(size_t SpansPerLane,
                                     size_t CountersPerLane)
    : SpansPerLane(SpansPerLane ? SpansPerLane : 1),
      CountersPerLane(CountersPerLane ? CountersPerLane : 1),
      Epoch(std::chrono::steady_clock::now()) {}

void HostTraceRecorder::initLanes(unsigned Workers) {
  assert(Lanes.empty() && "initLanes called twice");
  WorkerCount = Workers;
  Lanes.resize(static_cast<size_t>(Workers) + 1);
  for (Lane &L : Lanes) {
    L.Spans.reserve(SpansPerLane);
    L.Counters.reserve(CountersPerLane);
  }
}

uint64_t HostTraceRecorder::nowNs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - Epoch)
          .count());
}

void HostTraceRecorder::bindThread(unsigned Lane) {
  assert(Lane < Lanes.size() && "bindThread before initLanes");
  BoundRecorder = this;
  BoundLaneIdx = Lane;
}

int HostTraceRecorder::boundLane() const {
  return BoundRecorder == this ? static_cast<int>(BoundLaneIdx) : -1;
}

void HostTraceRecorder::laneStarted(unsigned Lane, uint64_t Ns) {
  assert(Lane < Lanes.size());
  Lanes[Lane].StartNs = Ns;
}

void HostTraceRecorder::laneStopped(unsigned Lane, uint64_t Ns) {
  assert(Lane < Lanes.size());
  Lanes[Lane].StopNs = Ns;
}

void HostTraceRecorder::span(unsigned Lane, HostSpanKind K, uint64_t BeginNs,
                             uint64_t EndNs, uint64_t Arg) {
  assert(Lane < Lanes.size());
  assert(BeginNs <= EndNs && "span runs backwards");
  struct Lane &L = Lanes[Lane];
  if (K < HostSpanKind::SimReplay) {
    L.KindNs[static_cast<size_t>(K)] += EndNs - BeginNs;
    if (K == HostSpanKind::Body)
      ++L.Bodies;
  }
  if (BeginNs == EndNs)
    return; // accounted, but not worth a ring slot
  HostSpan S;
  S.BeginNs = BeginNs;
  S.EndNs = EndNs;
  S.Arg = Arg;
  S.Kind = K;
  if (L.Spans.size() < SpansPerLane) {
    L.Spans.push_back(S);
    return;
  }
  L.Spans[L.Head] = S;
  L.Head = (L.Head + 1) % SpansPerLane;
  ++L.DroppedSpans;
}

void HostTraceRecorder::instant(unsigned Lane, HostInstantKind K, uint64_t Ns,
                                uint64_t Arg) {
  assert(Lane < Lanes.size());
  struct Lane &L = Lanes[Lane];
  HostInstant I;
  I.Ns = Ns;
  I.Arg = Arg;
  I.Lane = Lane;
  I.Kind = K;
  // Fault markers are rare; reuse the counter ring capacity as the cap.
  if (L.Instants.size() < CountersPerLane) {
    L.Instants.push_back(I);
    return;
  }
  L.Instants[L.InstantHead] = I;
  L.InstantHead = (L.InstantHead + 1) % CountersPerLane;
}

void HostTraceRecorder::counter(unsigned Lane, HostCounterKind K, uint64_t Ns,
                                uint64_t Value) {
  assert(Lane < Lanes.size());
  struct Lane &L = Lanes[Lane];
  HostCounterSample S;
  S.Ns = Ns;
  S.Value = Value;
  S.Kind = K;
  if (L.Counters.size() < CountersPerLane) {
    L.Counters.push_back(S);
    return;
  }
  L.Counters[L.CounterHead] = S;
  L.CounterHead = (L.CounterHead + 1) % CountersPerLane;
}

void HostTraceRecorder::counterHere(HostCounterKind K, uint64_t Value) {
  if (BoundRecorder != this)
    return;
  counter(BoundLaneIdx, K, nowNs(), Value);
}

uint64_t HostTraceRecorder::addQueueDepth(int64_t Delta) {
  int64_t V = QueueDepth.fetch_add(Delta, std::memory_order_relaxed) + Delta;
  return V < 0 ? 0 : static_cast<uint64_t>(V);
}

uint64_t HostTraceRecorder::addCompletionDepth(int64_t Delta) {
  int64_t V =
      CompletionDepth.fetch_add(Delta, std::memory_order_relaxed) + Delta;
  return V < 0 ? 0 : static_cast<uint64_t>(V);
}

uint64_t HostTraceRecorder::droppedSpans() const {
  uint64_t N = 0;
  for (const Lane &L : Lanes)
    N += L.DroppedSpans;
  return N;
}

std::vector<HostSpan> HostTraceRecorder::spanSnapshot(unsigned Lane) const {
  assert(Lane < Lanes.size());
  const struct Lane &L = Lanes[Lane];
  std::vector<HostSpan> Out;
  Out.reserve(L.Spans.size());
  for (size_t I = 0; I != L.Spans.size(); ++I)
    Out.push_back(L.Spans[(L.Head + I) % L.Spans.size()]);
  return Out;
}

std::vector<HostCounterSample> HostTraceRecorder::counterSnapshot() const {
  std::vector<HostCounterSample> Out;
  for (unsigned Lane = 0; Lane != Lanes.size(); ++Lane) {
    const struct Lane &L = Lanes[Lane];
    for (size_t I = 0; I != L.Counters.size(); ++I)
      Out.push_back(L.Counters[(L.CounterHead + I) % L.Counters.size()]);
  }
  std::stable_sort(Out.begin(), Out.end(),
                   [](const HostCounterSample &A, const HostCounterSample &B) {
                     return A.Ns < B.Ns;
                   });
  return Out;
}

std::vector<HostInstant> HostTraceRecorder::instantSnapshot() const {
  std::vector<HostInstant> Out;
  for (const Lane &L : Lanes)
    for (size_t I = 0; I != L.Instants.size(); ++I)
      Out.push_back(L.Instants[(L.InstantHead + I) % L.Instants.size()]);
  std::stable_sort(Out.begin(), Out.end(),
                   [](const HostInstant &A, const HostInstant &B) {
                     return A.Ns < B.Ns;
                   });
  return Out;
}

std::string HostTraceRecorder::laneName(unsigned Lane) const {
  if (Lane == simLane())
    return "sim";
  return "worker-" + std::to_string(Lane);
}

HostSpanKind HostAttribution::dominantStall() const {
  HostSpanKind Best = HostSpanKind::Body;
  uint64_t BestNs = 0;
  for (HostSpanKind K :
       {HostSpanKind::DispatchWait, HostSpanKind::MergeWait, HostSpanKind::Idle,
        HostSpanKind::Retire}) {
    uint64_t Ns = totalNs(K);
    if (Ns > BestNs) {
      BestNs = Ns;
      Best = K;
    }
  }
  return BestNs ? Best : HostSpanKind::Body;
}

uint64_t HostAttribution::totalNs(HostSpanKind K) const {
  uint64_t N = 0;
  for (const HostLaneAttribution &L : Workers) {
    switch (K) {
    case HostSpanKind::Body:
      N += L.BodyNs;
      break;
    case HostSpanKind::DispatchWait:
      N += L.DispatchWaitNs;
      break;
    case HostSpanKind::MergeWait:
      N += L.MergeWaitNs;
      break;
    case HostSpanKind::Idle:
      N += L.IdleNs;
      break;
    case HostSpanKind::Retire:
      N += L.RetireNs;
      break;
    default:
      break;
    }
  }
  return N;
}

namespace {
/// Sorted, disjoint interval list (ns). Built from the sim lane's blocked
/// spans; queried to carve merge-wait out of worker idle time.
struct IntervalSet {
  std::vector<std::pair<uint64_t, uint64_t>> Iv;

  void build(const std::vector<HostSpan> &Spans) {
    for (const HostSpan &S : Spans)
      if (S.Kind == HostSpanKind::SimReplay || S.Kind == HostSpanKind::SimRetire)
        Iv.emplace_back(S.BeginNs, S.EndNs);
    std::sort(Iv.begin(), Iv.end());
    // Coalesce overlapping/adjacent intervals.
    size_t Out = 0;
    for (size_t I = 0; I != Iv.size(); ++I) {
      if (Out && Iv[I].first <= Iv[Out - 1].second)
        Iv[Out - 1].second = std::max(Iv[Out - 1].second, Iv[I].second);
      else
        Iv[Out++] = Iv[I];
    }
    Iv.resize(Out);
  }

  /// Total overlap of [B, E) with the set.
  uint64_t overlap(uint64_t B, uint64_t E) const {
    uint64_t N = 0;
    auto It = std::upper_bound(
        Iv.begin(), Iv.end(), std::make_pair(B, ~uint64_t(0)),
        [](const auto &A, const auto &X) { return A.first < X.first; });
    if (It != Iv.begin())
      --It;
    for (; It != Iv.end() && It->first < E; ++It) {
      uint64_t Lo = std::max(B, It->first);
      uint64_t Hi = std::min(E, It->second);
      if (Lo < Hi)
        N += Hi - Lo;
    }
    return N;
  }
};
} // namespace

HostAttribution HostTraceRecorder::attribution() const {
  HostAttribution A;
  if (Lanes.empty())
    return A;

  IntervalSet SimBlocked;
  SimBlocked.build(spanSnapshot(simLane()));

  uint64_t MinStart = ~uint64_t(0), MaxStop = 0;
  for (unsigned W = 0; W != WorkerCount; ++W) {
    const Lane &L = Lanes[W];
    HostLaneAttribution LA;
    LA.Worker = W;
    LA.BodyNs = L.KindNs[static_cast<size_t>(HostSpanKind::Body)];
    LA.DispatchWaitNs = L.KindNs[static_cast<size_t>(HostSpanKind::DispatchWait)];
    LA.IdleNs = L.KindNs[static_cast<size_t>(HostSpanKind::Idle)];
    LA.RetireNs = L.KindNs[static_cast<size_t>(HostSpanKind::Retire)];
    LA.LifetimeNs = L.StopNs > L.StartNs ? L.StopNs - L.StartNs : 0;
    LA.Bodies = L.Bodies;
    // Carve merge-wait out of idle: the part of each retained idle span
    // during which the sim thread was blocked on worker data. The split
    // moves nanoseconds between the two buckets, so the per-lane sum is
    // untouched; dropped idle spans simply stay counted as idle.
    uint64_t Merge = 0;
    for (const HostSpan &S : spanSnapshot(W))
      if (S.Kind == HostSpanKind::Idle)
        Merge += SimBlocked.overlap(S.BeginNs, S.EndNs);
    if (Merge > LA.IdleNs)
      Merge = LA.IdleNs;
    LA.MergeWaitNs = Merge;
    LA.IdleNs -= Merge;
    if (L.StopNs || L.StartNs) {
      MinStart = std::min(MinStart, L.StartNs);
      MaxStop = std::max(MaxStop, L.StopNs);
    }
    A.Workers.push_back(LA);
  }
  if (MaxStop > MinStart && MinStart != ~uint64_t(0))
    A.PoolLifetimeNs = MaxStop - MinStart;
  return A;
}
