//===- obs/Metrics.cpp - Schema-stable metrics JSON export ----------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"

#include "support/Json.h"
#include "support/RawOstream.h"
#include "support/Statistic.h"

using namespace spin;
using namespace spin::obs;

static void writeCountersAndHistograms(const StatisticRegistry &Stats,
                                       JsonWriter &W) {
  W.key("counters").beginObject();
  for (const StatisticRegistry::Entry &E : Stats.entries())
    W.field(E.Name, E.Value);
  W.endObject();

  W.key("histograms").beginObject();
  for (const StatisticRegistry::HistEntry &H : Stats.histogramEntries()) {
    W.key(H.Name).beginObject();
    W.field("count", H.Hist.count());
    W.field("sum", H.Hist.sum());
    W.field("min", H.Hist.min());
    W.field("max", H.Hist.max());
    W.field("mean", H.Hist.mean());
    W.field("p50", H.Hist.quantileBound(0.50));
    W.field("p99", H.Hist.quantileBound(0.99));
    W.key("buckets").beginArray();
    for (unsigned I = 0; I != Histogram::NumBuckets; ++I) {
      if (H.Hist.bucketCount(I) == 0)
        continue;
      W.beginObject();
      W.field("lo", Histogram::bucketLow(I));
      W.field("hi", Histogram::bucketHigh(I));
      W.field("count", H.Hist.bucketCount(I));
      W.endObject();
    }
    W.endArray();
    W.endObject();
  }
  W.endObject();
}

void spin::obs::writeRegistryJson(const StatisticRegistry &Stats,
                                  RawOstream &OS) {
  JsonWriter W(OS);
  W.beginObject();
  W.field("schema", MetricsSchema);
  writeCountersAndHistograms(Stats, W);
  W.endObject();
  OS << '\n';
}

void spin::obs::writeMetricsJson(const StatisticRegistry &Stats,
                                 const std::vector<PhaseSample> &Phases,
                                 RawOstream &OS) {
  JsonWriter W(OS);
  W.beginObject();
  W.field("schema", MetricsSchema);
  writeCountersAndHistograms(Stats, W);
  W.key("phases").beginArray();
  for (const PhaseSample &P : Phases) {
    W.beginObject();
    W.field("name", P.Name);
    W.field("ticks", P.Ticks);
    W.field("seconds", P.Seconds);
    W.endObject();
  }
  W.endArray();
  W.endObject();
  OS << '\n';
}
