//===- obs/Metrics.h - Schema-stable metrics JSON export --------*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Machine-readable export of a StatisticRegistry — counters, histograms,
/// and an optional phase-timer breakdown — as one JSON document with a
/// versioned schema ("spmetrics-v1"). Dashboards and regression harnesses
/// key on the dotted metric names, which are append-only: renaming or
/// removing a name is a schema break (tests pin the engine's names).
///
/// Document shape:
///   {
///     "schema": "spmetrics-v1",
///     "counters":   { "<name>": <uint64>, ... },
///     "histograms": { "<name>": { "count","sum","min","max","mean",
///                                 "p50","p99",
///                                 "buckets": [{"lo","hi","count"}, ...] } },
///     "phases":     [ { "name", "ticks", "seconds" }, ... ]
///   }
///
/// Non-empty buckets only; integers stay integers (support/Json preserves
/// uint64 losslessly).
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_OBS_METRICS_H
#define SUPERPIN_OBS_METRICS_H

#include "os/CostModel.h"

#include <string>
#include <vector>

namespace spin {
class RawOstream;
class StatisticRegistry;
}

namespace spin::obs {

/// Current metrics document schema identifier.
inline constexpr const char *MetricsSchema = "spmetrics-v1";

/// One named phase of a run's wall-time breakdown.
struct PhaseSample {
  std::string Name;
  os::Ticks Ticks = 0;
  double Seconds = 0.0;
};

/// Writes the registry's counters and histograms (no phases) — the
/// -stats-json dump.
void writeRegistryJson(const StatisticRegistry &Stats, RawOstream &OS);

/// Writes the full metrics document: counters, histograms, and the phase
/// breakdown — the -spmetrics dump.
void writeMetricsJson(const StatisticRegistry &Stats,
                      const std::vector<PhaseSample> &Phases, RawOstream &OS);

} // namespace spin::obs

#endif // SUPERPIN_OBS_METRICS_H
