//===- bench/fig7_parallelism.cpp - Figure 7 reproduction -----------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Figure 7: impact of available processor parallelism — gcc runtime as
// the maximum number of running slices sweeps 1,2,4,8,12,16 on an 8-way
// machine extended to 16 contexts by hyperthreading.
// Paper result: little benefit at 2, dramatic improvement to 8 (the
// physical core count), modest beyond (SMT sharing also slows the
// master, so it is not quite real time).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace spin;
using namespace spin::bench;
using namespace spin::tools;
using namespace spin::workloads;

int main(int Argc, char **Argv) {
  BenchFlags Flags;
  Flags.parse(Argc, Argv);
  os::CostModel Model;
  const WorkloadInfo &Info = findWorkload(
      Flags.Only.value().empty() ? "gcc" : Flags.Only.value());
  vm::Program Prog = buildWorkload(Info, Flags.Scale);
  os::Ticks Native =
      pin::runNative(Prog, Model, instCost(Model, Info)).WallTicks;

  outs() << "Figure 7: max running slices vs runtime for " << Info.Name
         << " (icount1), 8 physical cores + SMT to 16\n\n";
  Table T;
  T.addColumn("MaxSlices");
  T.addColumn("Runtime(s)");
  T.addColumn("vs native");
  T.addColumn("Sleep(s)");
  T.addColumn("PeakPar");

  for (uint64_t Max : {1, 2, 4, 8, 12, 16}) {
    sp::SpOptions Opts = Flags.spOptions(Info);
    Opts.MaxSlices = static_cast<uint32_t>(Max);
    Opts.PhysCpus = 8;
    // The master occupies one context; SMT provides contexts beyond 8.
    Opts.VirtCpus = static_cast<unsigned>(Max) + 1 > 8
                        ? static_cast<unsigned>(Max) + 1
                        : 8;
    if (Opts.VirtCpus > 16)
      Opts.VirtCpus = 16;
    sp::SpRunReport Rep = sp::runSuperPin(
        Prog, makeIcountTool(IcountGranularity::Instruction), Opts, Model);
    T.startRow();
    T.cell(Max);
    T.cell(Model.ticksToSeconds(Rep.WallTicks), 2);
    T.cellPercent(double(Rep.WallTicks) / double(Native), 0);
    T.cell(Model.ticksToSeconds(Rep.SleepTicks), 2);
    T.cell(uint64_t(Rep.PeakParallelism));
  }
  emit(T, Flags);
  outs() << "\nNative run: " << formatFixed(Model.ticksToSeconds(Native), 2)
         << "s. Paper reference: improvement to 8 slices, modest beyond; "
            "at 16 the master shares a core (application limited).\n";
  return 0;
}
