//===- bench/fig7_parallelism.cpp - Figure 7 reproduction -----------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Figure 7: impact of available processor parallelism — gcc runtime as
// the maximum number of running slices sweeps 1,2,4,8,12,16 on an 8-way
// machine extended to 16 contexts by hyperthreading.
// Paper result: little benefit at 2, dramatic improvement to 8 (the
// physical core count), modest beyond (SMT sharing also slows the
// master, so it is not quite real time).
//
// -host 1 reproduces the figure on real hardware: the virtual-time sweep
// above *predicts* what parallel slice execution buys; the host sweep
// runs the same workload with -spmp worker counts 0,1,2,4,8 (0 = the
// serial engine) and prints measured wall-clock seconds next to the
// virtual-time model's prediction. The virtual runtime column is
// constant across worker counts by construction — host workers change
// which thread executes a slice body, never the modeled timeline.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "obs/HostTraceRecorder.h"

#include <chrono>
#include <thread>

using namespace spin;
using namespace spin::bench;
using namespace spin::tools;
using namespace spin::workloads;

/// Wall-clock seconds consumed by \p Fn.
template <typename Fn> static double measureSeconds(Fn &&F) {
  auto T0 = std::chrono::steady_clock::now();
  F();
  std::chrono::duration<double> D = std::chrono::steady_clock::now() - T0;
  return D.count();
}

/// The -host mode: sweep real -spmp worker counts under a fixed slice
/// limit and report measured wall seconds against the model's prediction.
static int runHostSweep(BenchFlags &Flags, const os::CostModel &Model,
                        const WorkloadInfo &Info, const vm::Program &Prog) {
  outs() << "Figure 7 (host): -spmp worker count vs measured wall time for "
         << Info.Name << " (icount1), "
         << std::thread::hardware_concurrency() << " host cores\n\n";
  Table T;
  T.addColumn("Workers");
  T.addColumn("Wall(s)");
  T.addColumn("vs serial");
  T.addColumn("Eff%");
  T.addColumn("Stall");
  T.addColumn("Model(s)");
  T.addColumn("Dispatched");

  double SerialWall = 0;
  for (unsigned Workers : {0u, 1u, 2u, 4u, 8u}) {
    sp::SpOptions Opts = Flags.spOptions(Info);
    Opts.HostWorkers = Workers;
    // Attribution recorder per point: efficiency says how much of the
    // ideal speedup the pool delivered; the dominant stall says where
    // the rest of the workers' wall time went.
    obs::HostTraceRecorder HostTrace;
    if (Workers)
      Opts.HostTrace = &HostTrace;
    sp::SpRunReport Rep;
    double Wall = measureSeconds([&] {
      Rep = sp::runSuperPin(
          Prog, makeIcountTool(IcountGranularity::Instruction), Opts, Model);
    });
    if (Workers == 0)
      SerialWall = Wall;
    T.startRow();
    T.cell(uint64_t(Workers));
    T.cell(Wall, 3);
    T.cellPercent(SerialWall > 0 ? Wall / SerialWall : 1.0, 0);
    if (Workers && SerialWall > 0 && Wall > 0)
      T.cellPercent(SerialWall / (Wall * double(Workers)), 0);
    else
      T.cell("-");
    T.cell(Workers ? obs::hostSpanName(Rep.HostAttr.dominantStall()) : "-");
    T.cell(Model.ticksToSeconds(Rep.WallTicks), 2);
    T.cell(Rep.HostDispatchedSlices);
  }
  emit(T, Flags);
  outs() << "\nModel(s) is the virtual-time prediction and is identical for "
            "every worker count; Wall(s) is measured host time (one sample, "
            "machine-dependent). Eff% = serial wall / (wall x workers): the "
            "fraction of ideal speedup realized; Stall is where the "
            "non-body worker time predominantly went.\n";
  return 0;
}

int main(int Argc, char **Argv) {
  BenchFlags Flags;
  Opt<bool> Host{Flags.Registry, "host", false,
                 "sweep real -spmp worker counts and measure wall-clock "
                 "seconds instead of sweeping the virtual slice limit"};
  Flags.parse(Argc, Argv);
  os::CostModel Model;
  const WorkloadInfo &Info = findWorkload(
      Flags.Only.value().empty() ? "gcc" : Flags.Only.value());
  vm::Program Prog = buildWorkload(Info, Flags.Scale);
  if (Host)
    return runHostSweep(Flags, Model, Info, Prog);
  os::Ticks Native =
      pin::runNative(Prog, Model, instCost(Model, Info)).WallTicks;

  outs() << "Figure 7: max running slices vs runtime for " << Info.Name
         << " (icount1), 8 physical cores + SMT to 16\n\n";
  Table T;
  T.addColumn("MaxSlices");
  T.addColumn("Runtime(s)");
  T.addColumn("vs native");
  T.addColumn("Sleep(s)");
  T.addColumn("PeakPar");

  for (uint64_t Max : {1, 2, 4, 8, 12, 16}) {
    sp::SpOptions Opts = Flags.spOptions(Info);
    Opts.MaxSlices = static_cast<uint32_t>(Max);
    Opts.PhysCpus = 8;
    // The master occupies one context; SMT provides contexts beyond 8.
    Opts.VirtCpus = static_cast<unsigned>(Max) + 1 > 8
                        ? static_cast<unsigned>(Max) + 1
                        : 8;
    if (Opts.VirtCpus > 16)
      Opts.VirtCpus = 16;
    sp::SpRunReport Rep = sp::runSuperPin(
        Prog, makeIcountTool(IcountGranularity::Instruction), Opts, Model);
    T.startRow();
    T.cell(Max);
    T.cell(Model.ticksToSeconds(Rep.WallTicks), 2);
    T.cellPercent(double(Rep.WallTicks) / double(Native), 0);
    T.cell(Model.ticksToSeconds(Rep.SleepTicks), 2);
    T.cell(uint64_t(Rep.PeakParallelism));
  }
  emit(T, Flags);
  outs() << "\nNative run: " << formatFixed(Model.ticksToSeconds(Native), 2)
         << "s. Paper reference: improvement to 8 slices, modest beyond; "
            "at 16 the master shares a core (application limited).\n";
  return 0;
}
