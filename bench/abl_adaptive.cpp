//===- bench/abl_adaptive.cpp - Redundancy-suppression ablation -----------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The -spredux ablation: loop-heavy workloads under SuperPin with static
// redundancy suppression off vs on, with the src/prof overhead
// attribution attached to both runs. The committed baseline attributes
// roughly half the instrumented time to instr.analysis — mostly redundant
// per-iteration counter calls in hot loops — so this is where the static
// loop analysis has to show up: the instr.analysis share and the runtime
// drop, the suppressed/recompiled counters light up, and the tool output
// stays byte-identical (checked here on every workload).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "prof/Profile.h"

using namespace spin;
using namespace spin::bench;
using namespace spin::tools;
using namespace spin::workloads;

int main(int Argc, char **Argv) {
  BenchFlags Flags;
  Flags.parse(Argc, Argv);
  os::CostModel Model;

  outs() << "Ablation: static redundancy suppression (-spredux, icount2)\n\n";
  Table T;
  T.addColumn("Benchmark", Table::Align::Left);
  T.addColumn("Redux", Table::Align::Left);
  T.addColumn("Runtime(s)");
  T.addColumn("Analysis%");
  T.addColumn("Suppressed");
  T.addColumn("Recompiled");
  T.addColumn("Saved(s)");
  T.addColumn("vs native");

  for (const char *Name : {"gcc", "swim", "eon", "mcf"}) {
    if (!Flags.selected(Name))
      continue;
    const WorkloadInfo &Info = findWorkload(Name);
    vm::Program Prog = buildWorkload(Info, Flags.Scale);
    os::Ticks Native =
        pin::runNative(Prog, Model, instCost(Model, Info)).WallTicks;
    sp::SpRunReport Reports[2];
    prof::ProfileCollector Profiles[2];
    for (int On = 0; On != 2; ++On) {
      sp::SpOptions Opts = Flags.spOptions(Info);
      Opts.Redux = On != 0;
      Opts.Profile = &Profiles[On];
      Reports[On] = sp::runSuperPin(
          Prog, makeIcountTool(IcountGranularity::BasicBlock), Opts, Model);
    }
    if (Reports[1].FiniOutput != Reports[0].FiniOutput)
      outs() << "WARNING: " << Name
             << ": -spredux changed tool output (must be byte-identical)\n";
    for (int On = 0; On != 2; ++On) {
      const sp::SpRunReport &R = Reports[On];
      const prof::ProfileCollector &P = Profiles[On];
      os::Ticks Attributed = P.totalAttributed();
      double Share =
          Attributed
              ? double(P.totalCause(prof::Cause::InstrAnalysis)) /
                    double(Attributed)
              : 0.0;
      T.startRow();
      T.cell(Name);
      T.cell(On ? "on" : "off");
      T.cell(Model.ticksToSeconds(R.WallTicks), 2);
      T.cellPercent(Share, 1);
      T.cell(R.CallsSuppressed);
      T.cell(R.TracesRecompiled);
      T.cell(Model.ticksToSeconds(R.ReduxSavedTicks), 2);
      T.cellPercent(double(R.WallTicks) / double(Native), 0);
    }
  }
  emit(T, Flags);
  outs() << "\nExpectation: with -spredux the instr.analysis share and the "
            "runtime drop while tool output stays byte-identical.\n";
  return 0;
}
