//===- bench/abl_adaptive.cpp - Adaptive timeslices (future work §8) ------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Section 8 proposes throttling the timeslice duration near the end of
// execution so the final slices are short and the pipeline drains
// quickly. This implements the realistic approximation the paper hints
// at: given an expected application duration, the control process shrinks
// slices as the end approaches.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace spin;
using namespace spin::bench;
using namespace spin::tools;
using namespace spin::workloads;

int main(int Argc, char **Argv) {
  BenchFlags Flags;
  Flags.parse(Argc, Argv);
  os::CostModel Model;

  outs() << "Future work (Section 8): adaptive timeslice throttling "
            "(icount2)\n\n";
  Table T;
  T.addColumn("Benchmark", Table::Align::Left);
  T.addColumn("Adaptive", Table::Align::Left);
  T.addColumn("Runtime(s)");
  T.addColumn("Pipeline(s)");
  T.addColumn("Slices");
  T.addColumn("vs native");

  for (const char *Name : {"gcc", "swim", "eon", "mcf"}) {
    if (!Flags.selected(Name))
      continue;
    const WorkloadInfo &Info = findWorkload(Name);
    vm::Program Prog = buildWorkload(Info, Flags.Scale);
    os::Ticks Native =
        pin::runNative(Prog, Model, instCost(Model, Info)).WallTicks;
    // First a fixed-slice run; its master-exit time seeds the duration
    // hint for the adaptive run (a profile-once-then-tune workflow).
    sp::SpOptions Opts = Flags.spOptions(Info);
    sp::SpRunReport Fixed = sp::runSuperPin(
        Prog, makeIcountTool(IcountGranularity::BasicBlock), Opts, Model);
    Opts.AdaptiveSlices = true;
    Opts.AppDurationHintMs = Model.ticksToMs(Fixed.MasterExitTicks);
    Opts.MinSliceMs = 10;
    sp::SpRunReport Adaptive = sp::runSuperPin(
        Prog, makeIcountTool(IcountGranularity::BasicBlock), Opts, Model);
    const std::pair<const char *, const sp::SpRunReport *> Rows[] = {
        {"no", &Fixed}, {"yes", &Adaptive}};
    for (const auto &[Label, Rep] : Rows) {
      T.startRow();
      T.cell(Name);
      T.cell(Label);
      T.cell(Model.ticksToSeconds(Rep->WallTicks), 2);
      T.cell(Model.ticksToSeconds(Rep->PipelineTicks), 2);
      T.cell(Rep->NumSlices);
      T.cellPercent(double(Rep->WallTicks) / double(Native), 0);
    }
  }
  emit(T, Flags);
  outs() << "\nExpectation: adaptive runs trade a few extra slices for a "
            "visibly shorter pipeline drain.\n";
  return 0;
}
