//===- bench/tab_overheads.cpp - Section 6.3 overhead decomposition -------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Section 6.3 discusses where SuperPin's remaining overhead lives:
// pipeline delay, compilation slowdown (per-slice cold code caches), and
// master slowdown (ptrace, fork/COW, scheduling, SMP contention). This
// table decomposes a representative subset of the suite.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace spin;
using namespace spin::bench;
using namespace spin::tools;
using namespace spin::workloads;

int main(int Argc, char **Argv) {
  BenchFlags Flags;
  Flags.parse(Argc, Argv);
  os::CostModel Model;

  outs() << "Section 6.3: SuperPin overhead decomposition (icount2)\n\n";
  Table T;
  T.addColumn("Benchmark", Table::Align::Left);
  T.addColumn("native(s)");
  T.addColumn("total(s)");
  T.addColumn("pipeline(s)");
  T.addColumn("sleep(s)");
  T.addColumn("fork&oth(s)");
  T.addColumn("compile(s)");
  T.addColumn("slices");
  T.addColumn("COW(m/s)");
  T.addColumn("ptrace");

  const char *Names[] = {"gcc", "crafty", "swim", "mcf", "gzip", "vortex"};
  for (const char *Name : Names) {
    if (!Flags.selected(Name))
      continue;
    const WorkloadInfo &Info = findWorkload(Name);
    vm::Program Prog = buildWorkload(Info, Flags.Scale);
    os::Ticks Native =
        pin::runNative(Prog, Model, instCost(Model, Info)).WallTicks;
    sp::SpRunReport Rep = sp::runSuperPin(
        Prog, makeIcountTool(IcountGranularity::BasicBlock),
        Flags.spOptions(Info), Model);
    // Ptrace overhead as a fraction of master time (paper: "less than a
    // few tenths of a percent").
    double Ptrace = double(Rep.MasterSyscalls * Model.PtraceStopCost) /
                    double(Rep.MasterExitTicks);
    T.startRow();
    T.cell(Name);
    T.cell(Model.ticksToSeconds(Native), 2);
    T.cell(Model.ticksToSeconds(Rep.WallTicks), 2);
    T.cell(Model.ticksToSeconds(Rep.PipelineTicks), 2);
    T.cell(Model.ticksToSeconds(Rep.SleepTicks), 2);
    T.cell(Model.ticksToSeconds(Rep.ForkOthersTicks), 2);
    T.cell(Model.ticksToSeconds(Rep.CompileTicks), 2);
    T.cell(Rep.NumSlices);
    T.cell(std::to_string(Rep.MasterCowCopies) + "/" +
           std::to_string(Rep.SliceCowCopies));
    T.cellPercent(Ptrace, 2);
  }
  emit(T, Flags);
  outs() << "\nPaper reference: ptrace overhead < a few tenths of a "
            "percent; compilation matters most for instrumentation-"
            "limited runs and large footprints (gcc).\n";
  return 0;
}
