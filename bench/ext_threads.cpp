//===- bench/ext_threads.cpp - Multithreading extension (§8) --------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Section 8's final future-work item: "we would like to provide
// multithreading support to our implementation. Though this will require
// deterministic replay of threads...". Implemented here: guest threads
// run under a deterministic round-robin schedule (rotating at dynamic
// basic-block boundaries) that forked slices replay exactly, with thread
// lifecycle syscalls as slice boundaries and thread-aware signatures.
//
// This bench instruments a fork-join style multithreaded guest with
// icount1 and compares native / serial Pin / SuperPin, verifying count
// preservation across the replayed interleaving.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "os/DirectRun.h"
#include "support/ErrorHandling.h"
#include "vm/Assembler.h"

using namespace spin;
using namespace spin::bench;
using namespace spin::tools;

/// A fork-join guest: main spawns \p Workers threads, each running a
/// compute loop over its own accumulator cell; main loops over its own
/// cell and then spin-joins on a completion counter.
static vm::Program makeThreadedGuest(unsigned Workers, unsigned Iters) {
  std::string Src = "main:\n  movi r10, 0\n  movi r9, " +
                    std::to_string(Workers) + "\n";
  for (unsigned W = 0; W != Workers; ++W)
    Src += "  movi r0, 4\n  movi r1, 65536\n  syscall\n"
           "  addi r2, r0, 65536\n  movi r1, worker" + std::to_string(W) +
           "\n  movi r0, 11\n  syscall\n";
  Src += R"(
  movi r4, cells
  movi r5, )" + std::to_string(Iters) + R"(
mloop:
  incm [r4+0]
  muli r3, r5, 2862933555777941757
  xor r6, r6, r3
  addi r5, r5, -1
  bne r5, r10, mloop
  movi r7, done
join:
  addi r8, r8, 1
  ld64 r3, [r7+0]
  bne r3, r9, join
  movi r0, 1
  movi r1, 1
  movi r2, cells
  movi r3, )" + std::to_string(8 * (Workers + 1)) + R"(
  syscall
  movi r0, 0
  movi r1, 0
  syscall
)";
  for (unsigned W = 0; W != Workers; ++W) {
    Src += "worker" + std::to_string(W) + ":\n" +
           "  movi r4, cells\n  addi r4, r4, " + std::to_string(8 * (W + 1)) +
           "\n  movi r5, " + std::to_string(Iters + W * 1000) + R"(
wloop)" + std::to_string(W) + R"(:
  incm [r4+0]
  muli r3, r5, 6364136223846793005
  xor r6, r6, r3
  addi r5, r5, -1
  bne r5, r10, wloop)" + std::to_string(W) + R"(
  movi r7, done
  incm [r7+0]
  movi r0, 12
  syscall
)";
  }
  Src += ".data\ncells: .space " + std::to_string(8 * (Workers + 1)) +
         "\ndone: .word64 0\n";
  std::string Err;
  auto Prog = vm::assemble(Src, "mtguest", Err);
  if (!Prog)
    reportFatalError("mtguest assembly failed: " + Err);
  return std::move(*Prog);
}

int main(int Argc, char **Argv) {
  BenchFlags Flags;
  Flags.parse(Argc, Argv);
  os::CostModel Model;

  outs() << "Extension (Section 8): multithreaded guests under SuperPin\n"
         << "(deterministic round-robin schedule, replayed by slices)\n\n";
  Table T;
  T.addColumn("Threads");
  T.addColumn("Native(s)");
  T.addColumn("Pin(s)");
  T.addColumn("SuperPin(s)");
  T.addColumn("Speedup");
  T.addColumn("Slices");
  T.addColumn("CountOK", Table::Align::Left);

  for (unsigned Workers : {1, 3, 7}) {
    vm::Program Prog =
        makeThreadedGuest(Workers, static_cast<unsigned>(
                                       300'000 * Flags.Scale.value()));
    os::DirectRunResult Native = os::runDirect(Prog);
    pin::RunReport NativeTimed = pin::runNative(Prog, Model, 100);
    auto PinCount = std::make_shared<IcountResult>();
    pin::RunReport Serial = pin::runSerialPin(
        Prog, Model, 100,
        makeIcountTool(IcountGranularity::Instruction, PinCount));
    sp::SpOptions Opts;
    Opts.SliceMs = Flags.SliceMs;
    Opts.MaxSlices = static_cast<uint32_t>(uint64_t(Flags.MaxSlices));
    auto SpCount = std::make_shared<IcountResult>();
    sp::SpRunReport Sp = sp::runSuperPin(
        Prog, makeIcountTool(IcountGranularity::Instruction, SpCount), Opts,
        Model);
    bool Ok = PinCount->Total == Native.Insts &&
              SpCount->Total == Native.Insts && Sp.PartitionOk &&
              Sp.Output == Native.Output;
    T.startRow();
    T.cell(uint64_t(Workers + 1));
    T.cell(Model.ticksToSeconds(NativeTimed.WallTicks), 2);
    T.cell(Model.ticksToSeconds(Serial.WallTicks), 2);
    T.cell(Model.ticksToSeconds(Sp.WallTicks), 2);
    T.cell(formatFixed(double(Serial.WallTicks) / double(Sp.WallTicks), 2) +
           "x");
    T.cell(Sp.NumSlices);
    T.cell(Ok ? "yes" : "NO");
  }
  emit(T, Flags);
  outs() << "\nThe paper left this as future work; the deterministic\n"
            "schedule makes slice replay exact (CountOK verifies icount\n"
            "and output equality against native execution).\n";
  return 0;
}
