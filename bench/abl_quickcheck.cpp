//===- bench/abl_quickcheck.cpp - Quick-check ablation ---------------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Section 4.4 ablation: the inlined two-register quick check
// (INS_InsertIfCall) exists so the expensive full-state comparison
// (INS_InsertThenCall) almost never runs. Disable it and measure the
// detection cost difference.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace spin;
using namespace spin::bench;
using namespace spin::tools;
using namespace spin::workloads;

int main(int Argc, char **Argv) {
  BenchFlags Flags;
  Flags.parse(Argc, Argv);
  os::CostModel Model;

  outs() << "Ablation (Section 4.4): inlined quick check on/off "
            "(icount2)\n\n";
  Table T;
  T.addColumn("Benchmark", Table::Align::Left);
  T.addColumn("Quick", Table::Align::Left);
  T.addColumn("Runtime(s)");
  T.addColumn("DetectCost(s)");
  T.addColumn("Full checks");

  for (const char *Name : {"crafty", "gcc", "swim", "twolf"}) {
    if (!Flags.selected(Name))
      continue;
    const WorkloadInfo &Info = findWorkload(Name);
    vm::Program Prog = buildWorkload(Info, Flags.Scale);
    for (bool Quick : {true, false}) {
      sp::SpOptions Opts = Flags.spOptions(Info);
      Opts.QuickCheck = Quick;
      sp::SpRunReport Rep = sp::runSuperPin(
          Prog, makeIcountTool(IcountGranularity::BasicBlock), Opts, Model);
      const sp::SignatureStats &S = Rep.Signature;
      os::Ticks DetectTicks = S.QuickChecks * Model.InlinedCheckCost +
                              S.FullChecks * Model.SigFullCheckCost +
                              S.StackChecks * Model.SigStackCheckCost;
      T.startRow();
      T.cell(Name);
      T.cell(Quick ? "on" : "off");
      T.cell(Model.ticksToSeconds(Rep.WallTicks), 2);
      T.cell(Model.ticksToSeconds(DetectTicks), 3);
      T.cell(S.FullChecks);
    }
  }
  emit(T, Flags);
  outs() << "\nExpectation: without the quick check every pass over the "
            "armed pc pays a full register comparison, inflating "
            "detection cost on hot boundaries.\n";
  return 0;
}
