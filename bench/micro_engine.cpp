//===- bench/micro_engine.cpp - Engine microbenchmarks --------------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// google-benchmark microbenchmarks of the engine's hot components (host
// performance, not virtual time): guest interpretation, instrumented
// execution, trace compilation, code-cache lookup, signature record and
// check, COW fork, and syscall record/playback.
//
//===----------------------------------------------------------------------===//

#include "os/DirectRun.h"
#include "os/Kernel.h"
#include "os/Process.h"
#include "pin/PinVm.h"
#include "pin/Tool.h"
#include "superpin/Signature.h"
#include "tools/Icount.h"
#include "vm/Assembler.h"
#include "vm/Interpreter.h"
#include "workloads/Generator.h"

#include "benchmark/benchmark.h"

using namespace spin;
using namespace spin::os;
using namespace spin::pin;
using namespace spin::vm;

static Program &microProgram() {
  static Program Prog = [] {
    workloads::GenParams P;
    P.Name = "micro";
    P.TargetInsts = 1u << 22;
    P.NumFuncs = 8;
    P.BlocksPerFunc = 8;
    P.WorkingSetBytes = 1 << 16;
    return workloads::generateWorkload(P);
  }();
  return Prog;
}

static void BM_Interpreter(benchmark::State &State) {
  Program &Prog = microProgram();
  for (auto _ : State) {
    State.PauseTiming();
    Process Proc = Process::create(Prog);
    Interpreter Interp(Prog, Proc.Cpu, Proc.Mem);
    State.ResumeTiming();
    RunResult R = Interp.run(200'000);
    benchmark::DoNotOptimize(R.InstsExecuted);
    State.SetItemsProcessed(State.items_processed() +
                            static_cast<int64_t>(R.InstsExecuted));
  }
}
BENCHMARK(BM_Interpreter);

static void BM_PinVmIcount(benchmark::State &State) {
  Program &Prog = microProgram();
  CostModel Model;
  bool PerInst = State.range(0) != 0;
  for (auto _ : State) {
    State.PauseTiming();
    Process Proc = Process::create(Prog);
    SpServices Services;
    auto Tool = tools::makeIcountTool(
        PerInst ? tools::IcountGranularity::Instruction
                : tools::IcountGranularity::BasicBlock)(Services);
    CodeCache Cache;
    PinVmConfig Cfg;
    PinVm Vm(Proc, Model, Tool.get(), Cache, Cfg);
    TickLedger Ledger;
    State.ResumeTiming();
    Ledger.beginStep(~uint64_t(0) >> 1);
    uint64_t Before = Vm.retired();
    while (Vm.retired() - Before < 100'000) {
      VmStop Stop = Vm.run(Ledger);
      if (Stop != VmStop::Syscall)
        break;
      SystemContext Ctx;
      serviceSyscall(Proc, Ctx, nullptr);
      Vm.noteSyscallRetired();
      if (Proc.Status == ProcStatus::Exited)
        break;
    }
    State.SetItemsProcessed(State.items_processed() +
                            static_cast<int64_t>(Vm.retired() - Before));
  }
}
BENCHMARK(BM_PinVmIcount)->Arg(1)->Arg(0);

static void BM_TraceCompile(benchmark::State &State) {
  Program &Prog = microProgram();
  CostModel Model;
  for (auto _ : State) {
    auto T = compileTrace(Prog, Prog.EntryPc, Model, nullptr);
    benchmark::DoNotOptimize(T->Steps.size());
  }
}
BENCHMARK(BM_TraceCompile);

static void BM_CodeCacheLookup(benchmark::State &State) {
  Program &Prog = microProgram();
  CostModel Model;
  CodeCache Cache;
  for (uint64_t I = 0; I != 256; ++I) {
    uint64_t Pc = Program::addressOfIndex(I * 7 % Prog.Text.size());
    if (!Cache.lookup(Pc))
      Cache.insert(compileTrace(Prog, Pc, Model, nullptr));
  }
  uint64_t I = 0;
  for (auto _ : State) {
    uint64_t Pc = Program::addressOfIndex(++I * 7 % Prog.Text.size());
    benchmark::DoNotOptimize(Cache.lookup(Pc));
  }
}
BENCHMARK(BM_CodeCacheLookup);

static void BM_SignatureRecord(benchmark::State &State) {
  Process Proc = Process::create(microProgram());
  for (auto _ : State) {
    sp::SliceSignature Sig = sp::recordSignature(Proc, true);
    benchmark::DoNotOptimize(Sig.Pc);
  }
}
BENCHMARK(BM_SignatureRecord);

static void BM_SignatureCheck(benchmark::State &State) {
  Process Proc = Process::create(microProgram());
  sp::SliceSignature Sig = sp::recordSignature(Proc, false);
  CostModel Model;
  sp::SignatureStats Stats;
  TickLedger Ledger;
  Ledger.beginStep(~uint64_t(0) >> 1);
  for (auto _ : State)
    benchmark::DoNotOptimize(
        sp::checkSignature(Sig, Proc, Model, true, Proc.quantumLeft(),
                           Ledger, Stats));
}
BENCHMARK(BM_SignatureCheck);

static void BM_ProcessFork(benchmark::State &State) {
  Program &Prog = microProgram();
  DirectRunResult Warm = runDirect(Prog, 100'000);
  (void)Warm;
  Process Proc = Process::create(Prog);
  // Touch some pages so the fork has a page table to copy.
  for (uint64_t I = 0; I != 64; ++I)
    Proc.Mem.write64(AddressLayout::HeapBase + I * PageSize, I);
  for (auto _ : State) {
    Process Child = Proc.fork(2);
    benchmark::DoNotOptimize(Child.Kern.Pid);
  }
}
BENCHMARK(BM_ProcessFork);

static void BM_CowTouchAfterFork(benchmark::State &State) {
  Program &Prog = microProgram();
  Process Proc = Process::create(Prog);
  for (uint64_t I = 0; I != 64; ++I)
    Proc.Mem.write64(AddressLayout::HeapBase + I * PageSize, I);
  for (auto _ : State) {
    State.PauseTiming();
    Process Child = Proc.fork(2);
    State.ResumeTiming();
    for (uint64_t I = 0; I != 64; ++I)
      Child.Mem.write64(AddressLayout::HeapBase + I * PageSize, I + 1);
  }
}
BENCHMARK(BM_CowTouchAfterFork);

static void BM_SyscallRecordPlayback(benchmark::State &State) {
  // read() into a buffer: service with effects recording, then playback.
  std::string Src = "main:\n  movi r1, 42\n  movi r0, 9\n  syscall\n"
                    "  mov r1, r0\n  movi r2, 65536\n  movi r3, 256\n"
                    "loop:\n  movi r0, 2\n  syscall\n  jmp loop\n";
  std::string Err;
  auto Prog = vm::assemble(Src, "sysbench", Err);
  Process Proc = Process::create(*Prog);
  Interpreter Interp(*Prog, Proc.Cpu, Proc.Mem);
  SystemContext Ctx;
  // Reach the first read syscall (after open).
  Interp.run(1000);
  serviceSyscall(Proc, Ctx, nullptr); // open
  Interp.run(1000);
  for (auto _ : State) {
    SyscallEffects Eff;
    serviceSyscall(Proc, Ctx, &Eff);
    Proc.Cpu.Pc -= InstSize; // Rewind to replay the same syscall.
    Proc.Cpu.Regs[0] = 2;
    playbackSyscall(Proc, Eff);
    Proc.Cpu.Pc -= InstSize;
    Proc.Cpu.Regs[0] = 2;
    benchmark::DoNotOptimize(Eff.RetVal);
  }
}
BENCHMARK(BM_SyscallRecordPlayback);

BENCHMARK_MAIN();
