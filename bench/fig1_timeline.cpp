//===- bench/fig1_timeline.cpp - Figure 1 reproduction --------------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Figure 1: SuperPin's execution model — the master application runs at
// full speed on one lane while forked instrumented timeslices sleep until
// the following slice records its signature, then execute in parallel and
// merge in order. Rendered as an ASCII Gantt chart from the actual slice
// lifecycle events of a run.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "superpin/Reporting.h"

using namespace spin;
using namespace spin::bench;
using namespace spin::tools;
using namespace spin::workloads;

int main(int Argc, char **Argv) {
  BenchFlags Flags;
  Flags.parse(Argc, Argv);
  os::CostModel Model;
  const WorkloadInfo &Info = findWorkload(
      Flags.Only.value().empty() ? "swim" : Flags.Only.value());
  // A small run keeps the chart legible: ~12 slices.
  vm::Program Prog = buildWorkload(Info, 0.12 * Flags.Scale);
  sp::SpOptions Opts = Flags.spOptions(Info);
  sp::SpRunReport Rep = sp::runSuperPin(
      Prog, makeIcountTool(IcountGranularity::Instruction), Opts, Model);

  outs() << "Figure 1: parallel instrumented timeslices (" << Info.Name
         << ", icount1, " << uint64_t(Flags.SliceMs) << "ms slices)\n\n";
  sp::printTimeline(Rep, Model, outs(), 100, 32);
  outs() << "\n";
  sp::printReport(Rep, Model, outs());
  outs().flush();
  return 0;
}
