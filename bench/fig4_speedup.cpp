//===- bench/fig4_speedup.cpp - Figure 4 reproduction ---------------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Figure 4: SuperPin speedup over serial Pin for icount1.
// Paper result: 3x to over 7x, with one outlier at 11.2x.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace spin;
using namespace spin::bench;
using namespace spin::tools;
using namespace spin::workloads;

int main(int Argc, char **Argv) {
  BenchFlags Flags;
  Flags.parse(Argc, Argv);
  os::CostModel Model;

  outs() << "Figure 4: icount1 SuperPin speedup over Pin\n\n";
  Table T;
  T.addColumn("Benchmark", Table::Align::Left);
  T.addColumn("Speedup");

  double Sum = 0;
  unsigned Count = 0;
  for (const WorkloadInfo &Info : spec2000Suite()) {
    if (!Flags.selected(Info.Name))
      continue;
    vm::Program Prog = buildWorkload(Info, Flags.Scale);
    TripleRun R =
        runTriple(Prog, Info, IcountGranularity::Instruction, Flags, Model);
    double Speedup = double(R.PinTicks) / double(R.Sp.WallTicks);
    T.startRow();
    T.cell(Info.Name);
    T.cell(formatFixed(Speedup, 2) + "x");
    Sum += Speedup;
    ++Count;
  }
  if (Count > 1) {
    T.startRow();
    T.cell("AVG");
    T.cell(formatFixed(Sum / Count, 2) + "x");
  }
  emit(T, Flags);
  outs() << "\nPaper reference: 3x to over 7x (one outlier 11.2x).\n";
  return 0;
}
