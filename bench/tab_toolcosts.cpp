//===- bench/tab_toolcosts.cpp - Per-tool SuperPin overhead ---------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Section 5's implicit question for tool writers: how do different
// instrumentation densities fare under SuperPin? One workload, every
// shipped tool, native-relative cost under serial Pin and SuperPin.
// The paper's framing: per-instruction tools are instrumentation-limited
// (speedup capped by core count), light tools approach real time.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "tools/BranchProfile.h"
#include "tools/CallGraph.h"
#include "tools/DCache.h"
#include "tools/ICache.h"
#include "tools/LoadValueProfile.h"
#include "tools/MemTrace.h"
#include "tools/OpcodeMix.h"
#include "tools/Syscount.h"

using namespace spin;
using namespace spin::bench;
using namespace spin::tools;
using namespace spin::workloads;

int main(int Argc, char **Argv) {
  BenchFlags Flags;
  Flags.parse(Argc, Argv);
  os::CostModel Model;
  const WorkloadInfo &Info = findWorkload(
      Flags.Only.value().empty() ? "twolf" : Flags.Only.value());
  vm::Program Prog = buildWorkload(Info, 0.5 * Flags.Scale.value());
  os::Ticks Native =
      pin::runNative(Prog, Model, instCost(Model, Info)).WallTicks;

  outs() << "Tool cost overview on " << Info.Name
         << " (relative to native)\n\n";
  Table T;
  T.addColumn("Tool", Table::Align::Left);
  T.addColumn("Pin");
  T.addColumn("SuperPin");
  T.addColumn("Speedup");

  struct Row {
    const char *Name;
    pin::ToolFactory Factory;
  };
  auto MemResult = std::make_shared<MemTraceResult>();
  const Row Rows[] = {
      {"icount1", makeIcountTool(IcountGranularity::Instruction)},
      {"icount2", makeIcountTool(IcountGranularity::BasicBlock)},
      {"opcodemix", makeOpcodeMixTool()},
      {"dcache", makeDCacheTool(DCacheConfig())},
      {"icache", makeICacheTool(CacheGeometry())},
      {"branch", makeBranchProfileTool()},
      {"callgraph", makeCallGraphTool(std::make_shared<CallGraphResult>())},
      {"loadvalues",
       makeLoadValueProfileTool(std::make_shared<LoadValueProfileResult>())},
      {"syscount", makeSyscountTool(std::make_shared<SyscountResult>())},
      {"memtrace", makeMemTraceTool(MemResult)},
  };
  for (const Row &R : Rows) {
    os::Ticks Pin =
        pin::runSerialPin(Prog, Model, instCost(Model, Info), R.Factory)
            .WallTicks;
    MemResult->Records.clear();
    sp::SpRunReport Sp =
        sp::runSuperPin(Prog, R.Factory, Flags.spOptions(Info), Model);
    MemResult->Records.clear();
    MemResult->Records.shrink_to_fit();
    T.startRow();
    T.cell(R.Name);
    T.cellPercent(double(Pin) / double(Native), 0);
    T.cellPercent(double(Sp.WallTicks) / double(Native), 0);
    T.cell(formatFixed(double(Pin) / double(Sp.WallTicks), 2) + "x");
  }
  emit(T, Flags);
  outs() << "\nHeavier instrumentation (icount1, opcodemix, memtrace, "
            "caches) is instrumentation-limited:\nSuperPin's speedup "
            "approaches the core count. Light tools (icount2, branch, "
            "syscount)\nrun near real time, as the paper reports.\n";
  return 0;
}
