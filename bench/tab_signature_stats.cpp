//===- bench/tab_signature_stats.cpp - Section 4.4 statistics -------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Section 4.4's reported statistics on the layered signature detector:
// "Only about 2% of the time does the quick detector trigger a full
// architectural state check. A stack check is usually only called once
// and succeeds."
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace spin;
using namespace spin::bench;
using namespace spin::tools;
using namespace spin::workloads;

int main(int Argc, char **Argv) {
  BenchFlags Flags;
  Flags.parse(Argc, Argv);
  os::CostModel Model;

  outs() << "Section 4.4: signature detection statistics (icount2, "
         << "timeslice " << uint64_t(Flags.SliceMs) << "ms)\n\n";
  Table T;
  T.addColumn("Benchmark", Table::Align::Left);
  T.addColumn("Quick");
  T.addColumn("Full");
  T.addColumn("Full/Quick");
  T.addColumn("Stack");
  T.addColumn("Matches");
  T.addColumn("Stack/Match");

  sp::SignatureStats Total;
  for (const WorkloadInfo &Info : spec2000Suite()) {
    if (!Flags.selected(Info.Name))
      continue;
    vm::Program Prog = buildWorkload(Info, Flags.Scale);
    sp::SpRunReport Rep = sp::runSuperPin(
        Prog, makeIcountTool(IcountGranularity::BasicBlock),
        Flags.spOptions(Info), Model);
    const sp::SignatureStats &S = Rep.Signature;
    if (S.QuickChecks == 0)
      continue; // No timeout slices for this configuration.
    T.startRow();
    T.cell(Info.Name);
    T.cell(S.QuickChecks);
    T.cell(S.FullChecks);
    T.cellPercent(double(S.FullChecks) / double(S.QuickChecks), 2);
    T.cell(S.StackChecks);
    T.cell(S.Matches);
    T.cell(S.Matches ? double(S.StackChecks) / double(S.Matches) : 0.0, 2);
    Total.mergeFrom(S);
  }
  T.startRow();
  T.cell("TOTAL");
  T.cell(Total.QuickChecks);
  T.cell(Total.FullChecks);
  T.cellPercent(Total.QuickChecks
                    ? double(Total.FullChecks) / double(Total.QuickChecks)
                    : 0.0,
                2);
  T.cell(Total.StackChecks);
  T.cell(Total.Matches);
  T.cell(Total.Matches ? double(Total.StackChecks) / double(Total.Matches)
                       : 0.0,
         2);
  emit(T, Flags);
  outs() << "\nPaper reference: the quick check escalates to a full check "
            "~2% of the time;\na stack check usually runs once per "
            "boundary and succeeds (Stack/Match ~1).\n";
  return 0;
}
