//===- bench/BenchCommon.h - Shared experiment harness ----------*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared flags and run helpers for the figure/table benchmark binaries.
///
/// Scaling note: the paper's machine executes ~2G instructions per real
/// second; the simulated machine defines 1 virtual second = 1M baseline
/// instructions (CostModel::TicksPerMs). All durations and timeslice
/// intervals are therefore scaled by the same factor: the suite's 5-10
/// virtual-second workloads stand in for SPEC2000's minutes, and the
/// default 100 ms timeslice stands in for the paper's 2 s (the ratio of
/// application duration to timeslice — which drives every figure's shape —
/// is preserved). Use -spmsec/-scale to explore other points.
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_BENCH_BENCHCOMMON_H
#define SUPERPIN_BENCH_BENCHCOMMON_H

#include "os/CostModel.h"
#include "pin/Runner.h"
#include "superpin/Engine.h"
#include "support/CommandLine.h"
#include "support/RawOstream.h"
#include "support/StringExtras.h"
#include "support/Table.h"
#include "tools/Icount.h"
#include "workloads/Spec2000.h"

#include <cmath>
#include <cstdlib>
#include <string>

namespace spin::bench {

/// Flags shared by all experiment binaries.
class BenchFlags {
public:
  OptionRegistry Registry;
  Opt<double> Scale{Registry, "scale", 1.0,
                    "workload duration scale factor"};
  Opt<uint64_t> SliceMs{Registry, "spmsec", 100,
                        "timeslice interval in virtual ms"};
  Opt<uint64_t> MaxSlices{Registry, "spslices", 8, "max running slices"};
  Opt<uint64_t> SysRecs{Registry, "spsysrecs", 1000,
                        "max syscall records per slice (0 disables)"};
  Opt<uint64_t> PhysCpus{Registry, "cpus", 8, "physical cores"};
  Opt<uint64_t> VirtCpus{Registry, "vcpus", 8,
                         "schedulable contexts (SMT when > cpus)"};
  Opt<bool> SpRedux{Registry, "spredux", false,
                    "suppress redundant analysis calls via static loop "
                    "analysis (byte-identical tool output)"};
  Opt<bool> Csv{Registry, "csv", false, "emit CSV instead of a table"};
  Opt<bool> Json{Registry, "json", false, "emit JSON instead of a table"};
  Opt<std::string> Only{Registry, "only", std::string(),
                        "run a single named workload"};
  Opt<bool> Help{Registry, "help", false, "print available options"};

  /// Parses argv; exits on error or -help 1.
  void parse(int Argc, const char *const *Argv) {
    std::string Err;
    if (!Registry.parse(Argc, Argv, Err)) {
      errs() << "error: " << Err << "\n";
      std::exit(1);
    }
    if (Help) {
      Registry.printHelp(outs());
      std::exit(0);
    }
  }

  /// True if \p Name should run under the -only filter.
  bool selected(std::string_view Name) const {
    const std::string &Filter = Only.value();
    return Filter.empty() || Filter == Name;
  }

  /// SpOptions for workload \p Info under these flags.
  sp::SpOptions spOptions(const workloads::WorkloadInfo &Info) const {
    sp::SpOptions Opts;
    Opts.SliceMs = SliceMs;
    Opts.MaxSlices = static_cast<uint32_t>(uint64_t(MaxSlices));
    Opts.MaxSysRecs = SysRecs;
    Opts.PhysCpus = static_cast<unsigned>(uint64_t(PhysCpus));
    Opts.VirtCpus = static_cast<unsigned>(uint64_t(VirtCpus));
    if (Opts.VirtCpus < Opts.PhysCpus)
      Opts.VirtCpus = Opts.PhysCpus;
    Opts.Cpi = Info.Cpi;
    Opts.Redux = SpRedux;
    return Opts;
  }
};

/// Per-instruction cost in ticks for a workload.
inline os::Ticks instCost(const os::CostModel &Model,
                          const workloads::WorkloadInfo &Info) {
  return static_cast<os::Ticks>(
      std::llround(Info.Cpi * static_cast<double>(Model.TicksPerInst)));
}

/// The three runs behind Figures 3-5 for one workload.
struct TripleRun {
  os::Ticks NativeTicks = 0;
  os::Ticks PinTicks = 0;
  sp::SpRunReport Sp;
  uint64_t IcountNative = 0; ///< serial tool count (sanity)
  uint64_t IcountSp = 0;     ///< merged SuperPin count (sanity)
};

/// Runs native, serial Pin, and SuperPin with an icount tool.
inline TripleRun runTriple(const vm::Program &Prog,
                           const workloads::WorkloadInfo &Info,
                           tools::IcountGranularity Granularity,
                           const BenchFlags &Flags,
                           const os::CostModel &Model) {
  TripleRun R;
  os::Ticks Cost = instCost(Model, Info);
  R.NativeTicks = pin::runNative(Prog, Model, Cost).WallTicks;
  auto PinCount = std::make_shared<tools::IcountResult>();
  R.PinTicks = pin::runSerialPin(Prog, Model, Cost,
                                 tools::makeIcountTool(Granularity, PinCount))
                   .WallTicks;
  auto SpCount = std::make_shared<tools::IcountResult>();
  R.Sp = sp::runSuperPin(Prog, tools::makeIcountTool(Granularity, SpCount),
                         Flags.spOptions(Info), Model);
  R.IcountNative = PinCount->Total;
  R.IcountSp = SpCount->Total;
  return R;
}

/// Prints \p T as a table, CSV, or JSON per the flags. Cells the bench
/// filled through the typed Table overloads (cell(uint64_t),
/// cell(double, Decimals)) come out of -json as JSON numbers, so
/// downstream harnesses (spbench, plotting scripts) never parse
/// stringified numerics.
inline void emit(const Table &T, const BenchFlags &Flags) {
  if (Flags.Json)
    T.printJson(outs());
  else if (Flags.Csv)
    T.printCsv(outs());
  else
    T.print(outs());
  outs().flush();
}

} // namespace spin::bench

#endif // SUPERPIN_BENCH_BENCHCOMMON_H
