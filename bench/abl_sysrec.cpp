//===- bench/abl_sysrec.cpp - Syscall record/playback ablation ------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Section 4.2 ablation: gcc-like workloads hit the kernel far too often
// for fork-per-syscall to be viable, which is why SuperPin grew the
// record-and-playback mechanism. Sweep -spsysrecs over {0, 1000} (and the
// paper's default) on syscall-heavy workloads and compare runtime and
// slice counts.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace spin;
using namespace spin::bench;
using namespace spin::tools;
using namespace spin::workloads;

int main(int Argc, char **Argv) {
  BenchFlags Flags;
  Flags.parse(Argc, Argv);
  os::CostModel Model;

  outs() << "Ablation (Section 4.2): record/playback vs fork-per-syscall "
            "(icount2)\n\n";
  Table T;
  T.addColumn("Benchmark", Table::Align::Left);
  T.addColumn("sysrecs");
  T.addColumn("Runtime(s)");
  T.addColumn("vs native");
  T.addColumn("Slices");
  T.addColumn("Played");
  T.addColumn("Forced");

  for (const char *Name : {"gcc", "gzip", "mesa", "bzip2"}) {
    if (!Flags.selected(Name))
      continue;
    const WorkloadInfo &Info = findWorkload(Name);
    vm::Program Prog = buildWorkload(Info, Flags.Scale);
    os::Ticks Native =
        pin::runNative(Prog, Model, instCost(Model, Info)).WallTicks;
    for (uint64_t Recs : {0, 1000}) {
      sp::SpOptions Opts = Flags.spOptions(Info);
      Opts.MaxSysRecs = Recs;
      sp::SpRunReport Rep = sp::runSuperPin(
          Prog, makeIcountTool(IcountGranularity::BasicBlock), Opts, Model);
      T.startRow();
      T.cell(Name);
      T.cell(Recs);
      T.cell(Model.ticksToSeconds(Rep.WallTicks), 2);
      T.cellPercent(double(Rep.WallTicks) / double(Native), 0);
      T.cell(Rep.NumSlices);
      T.cell(Rep.PlaybackSyscalls);
      T.cell(Rep.ForcedSliceSyscalls);
    }
  }
  emit(T, Flags);
  outs() << "\nExpectation: with recording disabled (sysrecs=0), syscall-"
            "heavy workloads fragment into many more slices and run "
            "slower — the paper's motivation for record/playback.\n";
  return 0;
}
